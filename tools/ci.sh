#!/usr/bin/env bash
# The full pre-merge gate: plain tier-1 (Release, -O2 -DNDEBUG — the
# configuration the tracked benchmark numbers come from), a throughput-
# bench smoke, then UBSan, then TSan.
#
#   tools/ci.sh            # everything
#   tools/ci.sh -j8        # extra args forwarded to every ctest
#
# Each stage uses its own build directory (build-ci, build-ubsan,
# build-tsan) so the three configurations never poison each other's
# caches.  Fails on the first stage that fails.
#
# The hot-path regression tests (byte-identity goldens, allocation guard)
# carry the additional ctest label `perf`; after touching the engine,
# `ctest --test-dir build-ci -L perf` re-runs just those.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

echo "== plain tier-1 (Release) =="
build_dir="${repo_root}/build-ci"
cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j"$(nproc)"
ctest --test-dir "${build_dir}" -L tier1 --output-on-failure "$@"

echo "== sim_throughput smoke =="
# DUFP_SMOKE: tiny profile, one repetition.  Validates that the bench
# runs and emits parseable JSON matching bench/sim_throughput_schema.json
# (structurally — no performance gate here; thresholds are a ROADMAP
# item until CI hardware is stable enough to gate on).
smoke_dir="${build_dir}/smoke-out"
rm -rf "${smoke_dir}"
DUFP_SMOKE=1 DUFP_OUT_DIR="${smoke_dir}" "${build_dir}/bench/sim_throughput"
python3 - "${smoke_dir}/BENCH_sim_throughput.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for key in ("schema_version", "bench", "smoke", "config", "baseline",
            "serial", "socket_threads_4", "speedup"):
    assert key in doc, f"missing key: {key}"
assert doc["schema_version"] == 2
assert doc["smoke"] is True
assert doc["serial"]["ticks"] > 0
# Event-leaping accounting: every tick must be classified exactly once
# (leapt on the calm fast path, stepped exactly, or batched in the
# socket-parallel engine) — a gap or an overlap here means the leaping
# engine dropped or double-counted simulated time.
for key in ("serial", "socket_threads_4"):
    leap = doc[key]["leap"]
    total = leap["leapt_ticks"] + leap["stepped_ticks"] + leap["batched_ticks"]
    assert total == int(doc[key]["ticks"]), (
        f"{key}: leap split {total} != ticks {doc[key]['ticks']}")
print("sim_throughput smoke: JSON OK, leap split accounts for every tick")
EOF

echo "== shard_scaling smoke =="
# Forks real worker processes on a shrunk grid and byte-compares the
# gathered outputs against a serial run — the bench itself exits
# non-zero on any byte drift, so this doubles as a cheap cross-process
# determinism gate.
DUFP_SMOKE=1 DUFP_OUT_DIR="${smoke_dir}" "${build_dir}/bench/shard_scaling"
python3 - "${smoke_dir}/BENCH_shard_scaling.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for key in ("schema_version", "bench", "smoke", "config",
            "single_process", "processes_2", "processes_4"):
    assert key in doc, f"missing key: {key}"
assert doc["config"]["host_cpus"] >= 1
assert doc["processes_2"]["identical_bytes"] is True
assert doc["processes_4"]["identical_bytes"] is True
print("shard_scaling smoke: JSON OK, gathered bytes identical")
EOF

echo "== chaos recovery smoke =="
# The failure-model gate (DESIGN.md § Failure model & recovery): a
# seeded DUFP_CHAOS worker self-SIGKILLs mid-record, a second worker
# completes every chunk the victim never claimed, `gather --partial`
# salvages the torn stream and writes a retry manifest, `run --resume`
# executes exactly the missing jobs — and the final gather must be
# byte-identical to an unfailed serial run.  One worker per phase keeps
# the whole drill deterministic (no claim races), so the exit codes are
# asserted exactly: 137 (SIGKILL), 6 (incomplete), 0, 0.
chaos_dir="${build_dir}/chaos-out"
rm -rf "${chaos_dir}"
mkdir -p "${chaos_dir}/claims"
shard_worker="${build_dir}/cli/dufp_shard_worker"
"${shard_worker}" spec > "${chaos_dir}/spec.json" 2> /dev/null
DUFP_QUIET=1 "${shard_worker}" serial --spec "${chaos_dir}/spec.json" \
    --out "${chaos_dir}/serial" 2> /dev/null
status=0
DUFP_QUIET=1 DUFP_CHAOS=0.3 DUFP_CHAOS_SEED=1 "${shard_worker}" run \
    --spec "${chaos_dir}/spec.json" --out "${chaos_dir}/w0.jsonl" \
    --chunk-size 4 --claim-dir "${chaos_dir}/claims" --owner w0 \
    2> /dev/null || status=$?
[[ "${status}" -eq 137 ]] || {
  echo "chaos smoke: expected the chaos worker to die by SIGKILL (137)," \
       "got ${status}" >&2
  exit 1
}
[[ -f "${chaos_dir}/w0.jsonl.partial" && ! -f "${chaos_dir}/w0.jsonl" ]] || {
  echo "chaos smoke: a killed worker must leave only a .partial stream" >&2
  exit 1
}
# The victim's lease is fresh, so a huge TTL keeps its chunk orphaned —
# the gap --resume exists to fill.
DUFP_QUIET=1 "${shard_worker}" run --spec "${chaos_dir}/spec.json" \
    --out "${chaos_dir}/w1.jsonl" --chunk-size 4 \
    --claim-dir "${chaos_dir}/claims" --owner w1 --lease-ttl 100000 \
    2> /dev/null
status=0
"${shard_worker}" gather --spec "${chaos_dir}/spec.json" \
    --out "${chaos_dir}/gathered" --partial \
    "${chaos_dir}/w0.jsonl.partial" "${chaos_dir}/w1.jsonl" \
    2> /dev/null || status=$?
[[ "${status}" -eq 6 && -f "${chaos_dir}/gathered.retry.json" ]] || {
  echo "chaos smoke: partial gather should exit 6 + write a retry" \
       "manifest (exit ${status})" >&2
  exit 1
}
DUFP_QUIET=1 "${shard_worker}" run --resume "${chaos_dir}/gathered.retry.json" \
    --out "${chaos_dir}/rescue.jsonl" 2> /dev/null
"${shard_worker}" gather --spec "${chaos_dir}/spec.json" \
    --out "${chaos_dir}/gathered" --partial \
    "${chaos_dir}/w0.jsonl.partial" "${chaos_dir}/w1.jsonl" \
    "${chaos_dir}/rescue.jsonl" 2> /dev/null
cmp "${chaos_dir}/gathered.csv" "${chaos_dir}/serial.csv" || {
  echo "chaos smoke: DETERMINISM VIOLATION: recovered gather differs" \
       "from serial" >&2
  exit 1
}
echo "chaos smoke: kill -> salvage -> resume -> bytes identical to serial"

echo "== supervise smoke =="
# The same storm under the supervisor: chaos workers die, get restarted
# with backoff, repeat offenders poison their chunks — and whatever is
# left unrecovered must be honestly reported via a retry manifest that a
# clean rescue run completes.  Worker/chunk interleaving is timing-
# dependent, so only the end-to-end property is asserted: supervised +
# (optional) rescue gathers byte-identical to serial.
sup_dir="${build_dir}/chaos-out/sup"
mkdir -p "${sup_dir}"
status=0
DUFP_QUIET=1 DUFP_CHAOS=0.3 DUFP_CHAOS_SEED=1 "${shard_worker}" supervise \
    --spec "${chaos_dir}/spec.json" --out-dir "${sup_dir}" --workers 2 \
    --chunk-size 4 --lease-ttl 100000 --max-restarts 3 \
    --gather "${sup_dir}/gathered" > "${sup_dir}/outputs.txt" \
    2> /dev/null || status=$?
sup_files=()
while IFS= read -r line; do sup_files+=("${line}"); done \
    < "${sup_dir}/outputs.txt"
if [[ "${status}" -eq 6 ]]; then
  DUFP_QUIET=1 "${shard_worker}" run \
      --resume "${sup_dir}/gathered.retry.json" \
      --out "${sup_dir}/rescue.jsonl" 2> /dev/null
  "${shard_worker}" gather --spec "${chaos_dir}/spec.json" \
      --out "${sup_dir}/gathered" --partial \
      "${sup_files[@]}" "${sup_dir}/rescue.jsonl" 2> /dev/null
elif [[ "${status}" -ne 0 ]]; then
  echo "supervise smoke: unexpected exit ${status}" >&2
  exit 1
fi
cmp "${sup_dir}/gathered.csv" "${chaos_dir}/serial.csv" || {
  echo "supervise smoke: DETERMINISM VIOLATION: supervised gather" \
       "differs from serial" >&2
  exit 1
}
echo "supervise smoke: supervised chaos run recovered, bytes identical"

echo "== tournament smoke =="
# Every registered policy on a tiny grid (1 app x 1 tolerance x 1 rep)
# through the shard engine, schema-checking the ranked leaderboard CSV:
# all policies present, ranks sequential from 1, violation/energy
# columns parse.  Catches a policy whose registration or factory broke
# without running the full tournament.
DUFP_SMOKE=1 DUFP_QUIET=1 DUFP_OUT_DIR="${smoke_dir}" \
    "${build_dir}/bench/tournament"
python3 - "${smoke_dir}/tournament.csv" <<'EOF'
import csv, sys
with open(sys.argv[1]) as f:
    rows = list(csv.DictReader(f))
expected_cols = {"rank", "policy", "cells", "violations",
                 "mean_slowdown_pct", "worst_slowdown_pct",
                 "mean_pkg_power_savings_pct", "mean_dram_power_savings_pct",
                 "mean_energy_change_pct"}
assert rows, "empty leaderboard"
assert expected_cols <= set(rows[0]), f"missing columns: {expected_cols - set(rows[0])}"
assert len(rows) >= 7, f"expected >= 7 ranked policies, got {len(rows)}"
assert [int(r["rank"]) for r in rows] == list(range(1, len(rows) + 1))
for legacy in ("DUF", "DUFP", "DUFP-F", "DNPC"):
    assert any(r["policy"] == legacy for r in rows), f"missing {legacy}"
for r in rows:
    int(r["violations"]); float(r["mean_energy_change_pct"])
print(f"tournament smoke: {len(rows)} policies ranked, CSV OK")
EOF

echo "== fleet smoke =="
# Fleet-scale hierarchical budgeting (DESIGN.md § Fleet-scale
# hierarchical power budgeting): the 2x2-rack reference fleet through
# every execution path.  The serial run is the golden; a 2-shard static
# run must gather to byte-identical outputs; dropping a shard must exit
# 6 and write a retry manifest whose resume run completes the bytes.
# All exit codes are asserted exactly.
fleet_dir="${build_dir}/fleet-out"
rm -rf "${fleet_dir}"
mkdir -p "${fleet_dir}"
"${shard_worker}" fleet-spec > "${fleet_dir}/spec.json" 2> /dev/null
DUFP_QUIET=1 "${shard_worker}" fleet-serial --spec "${fleet_dir}/spec.json" \
    --out "${fleet_dir}/serial" 2> /dev/null
for shard in 0 1; do
  DUFP_QUIET=1 "${shard_worker}" fleet-run --spec "${fleet_dir}/spec.json" \
      --out "${fleet_dir}/w${shard}.jsonl" --shard "${shard}" --shards 2 \
      2> /dev/null
done
"${shard_worker}" fleet-gather --spec "${fleet_dir}/spec.json" \
    --out "${fleet_dir}/gathered" \
    "${fleet_dir}/w0.jsonl" "${fleet_dir}/w1.jsonl" 2> /dev/null
for suffix in alloc.csv summary.csv prom; do
  cmp "${fleet_dir}/gathered.${suffix}" "${fleet_dir}/serial.${suffix}" || {
    echo "fleet smoke: DETERMINISM VIOLATION: sharded ${suffix} differs" \
         "from serial" >&2
    exit 1
  }
done
# Salvage + resume: shard 1's nodes are missing, the partial gather must
# say so via exit 6 + a manifest, and the resume run must fill the gap.
status=0
"${shard_worker}" fleet-gather --spec "${fleet_dir}/spec.json" \
    --out "${fleet_dir}/partial" --partial \
    "${fleet_dir}/w0.jsonl" 2> /dev/null || status=$?
[[ "${status}" -eq 6 && -f "${fleet_dir}/partial.retry.json" ]] || {
  echo "fleet smoke: partial fleet-gather should exit 6 + write a retry" \
       "manifest (exit ${status})" >&2
  exit 1
}
DUFP_QUIET=1 "${shard_worker}" fleet-run \
    --resume "${fleet_dir}/partial.retry.json" \
    --out "${fleet_dir}/rescue.jsonl" 2> /dev/null
"${shard_worker}" fleet-gather --spec "${fleet_dir}/spec.json" \
    --out "${fleet_dir}/partial" \
    "${fleet_dir}/w0.jsonl" "${fleet_dir}/rescue.jsonl" 2> /dev/null
cmp "${fleet_dir}/partial.alloc.csv" "${fleet_dir}/serial.alloc.csv" || {
  echo "fleet smoke: DETERMINISM VIOLATION: resumed gather differs from" \
       "serial" >&2
  exit 1
}
echo "fleet smoke: serial = sharded = salvage+resume, bytes identical"

echo "== fleet_scaling smoke =="
# Every registered fleet allocator on the 2x2x2 smoke fleet, serial vs
# supervised-sharded byte-compared inside the bench (it exits non-zero
# on drift), then the scorecard JSON/CSV schema-checked.
DUFP_SMOKE=1 DUFP_QUIET=1 DUFP_OUT_DIR="${smoke_dir}" \
    "${build_dir}/bench/fleet_scaling"
python3 - "${smoke_dir}/BENCH_fleet_scaling.json" \
    "${smoke_dir}/fleet_scaling.csv" <<'EOF'
import csv, json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema_version"] == 1
assert doc["bench"] == "fleet_scaling"
assert doc["smoke"] is True
for key in ("racks", "nodes_per_rack", "sockets_per_node", "sockets",
            "epochs", "budget_w", "traffic"):
    assert key in doc["config"], f"missing config key: {key}"
allocators = ("static-equal", "proportional", "fastcap")
for name in allocators:
    entry = doc[name]
    assert entry["identical_bytes"] is True, f"{name}: byte drift"
    assert entry["total_energy_j"] > 0
    assert 0.0 <= entry["violation_rate"] <= 1.0
    assert 0.0 < entry["jain_fairness"] <= 1.0
with open(sys.argv[2]) as f:
    rows = list(csv.DictReader(f))
assert len(rows) == len(allocators), f"expected {len(allocators)} rows"
expected_cols = {"allocator", "traffic", "budget_w", "total_energy_j",
                 "violation_rate", "jain_fairness", "mean_speed"}
assert expected_cols <= set(rows[0]), \
    f"missing columns: {expected_cols - set(rows[0])}"
assert {r["allocator"] for r in rows} == set(allocators)
print(f"fleet_scaling smoke: {len(rows)} allocators ranked, bytes"
      " identical, schema OK")
EOF

echo "== perf gate (sim_throughput, full run) =="
# A real (non-smoke) run of the tracked throughput bench, gated on the
# serial speedup over the pre-optimisation seed engine.  The tracked
# number is ~10x (BENCH_sim_throughput.json, event-leaping engine); the
# default floor of 6.0x leaves ~40% noise margin so shared CI hosts
# don't flake, while still catching any real hot-path regression (the
# pre-leaping engine measured ~2.2x and would fail this gate).
# Override per-host with DUFP_CI_MIN_SERIAL_SPEEDUP; the parallel gate
# only applies on multi-core hosts (on 1 CPU socket-threads measure
# overhead, not speedup).
perf_dir="${build_dir}/perf-out"
rm -rf "${perf_dir}"
DUFP_OUT_DIR="${perf_dir}" "${build_dir}/bench/sim_throughput"
min_serial="${DUFP_CI_MIN_SERIAL_SPEEDUP:-6.0}"
min_parallel="${DUFP_CI_MIN_PARALLEL_SPEEDUP:-1.0}"
python3 - "${perf_dir}/BENCH_sim_throughput.json" \
    "${min_serial}" "${min_parallel}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
min_serial, min_parallel = float(sys.argv[2]), float(sys.argv[3])
serial = doc["speedup"]["serial_vs_baseline"]
host_cpus = doc["config"]["host_cpus"]
assert serial >= min_serial, (
    f"perf gate: serial_vs_baseline {serial:.2f}x < floor {min_serial}x")
print(f"perf gate: serial_vs_baseline {serial:.2f}x >= {min_serial}x")
if host_cpus > 1:
    par = doc["speedup"]["parallel_vs_serial"]
    assert par >= min_parallel, (
        f"perf gate: parallel_vs_serial {par:.2f}x < floor {min_parallel}x")
    print(f"perf gate: parallel_vs_serial {par:.2f}x >= {min_parallel}x")
else:
    print(f"perf gate: host_cpus={host_cpus}, parallel gate skipped")
EOF

# Archive the gated numbers per commit so regressions can be bisected
# from history rather than re-measured.
history_dir="${repo_root}/out/bench_history"
mkdir -p "${history_dir}"
sha="$(git -C "${repo_root}" rev-parse --short HEAD 2>/dev/null || echo nogit)"
cp "${perf_dir}/BENCH_sim_throughput.json" "${history_dir}/${sha}.json"
echo "perf gate: archived ${history_dir}/${sha}.json"

echo "== tier-1 under UBSan =="
"${repo_root}/tools/run_tier1_ubsan.sh" "$@"

echo "== tier-1 under TSan =="
"${repo_root}/tools/run_tier1_tsan.sh" "$@"

echo "== ci: all stages passed =="
