#!/usr/bin/env bash
# The full pre-merge gate: plain tier-1 (Release, -O2 -DNDEBUG — the
# configuration the tracked benchmark numbers come from), a throughput-
# bench smoke, then UBSan, then TSan.
#
#   tools/ci.sh            # everything
#   tools/ci.sh -j8        # extra args forwarded to every ctest
#
# Each stage uses its own build directory (build-ci, build-ubsan,
# build-tsan) so the three configurations never poison each other's
# caches.  Fails on the first stage that fails.
#
# The hot-path regression tests (byte-identity goldens, allocation guard)
# carry the additional ctest label `perf`; after touching the engine,
# `ctest --test-dir build-ci -L perf` re-runs just those.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

echo "== plain tier-1 (Release) =="
build_dir="${repo_root}/build-ci"
cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j"$(nproc)"
ctest --test-dir "${build_dir}" -L tier1 --output-on-failure "$@"

echo "== sim_throughput smoke =="
# DUFP_SMOKE: tiny profile, one repetition.  Validates that the bench
# runs and emits parseable JSON matching bench/sim_throughput_schema.json
# (structurally — no performance gate here; thresholds are a ROADMAP
# item until CI hardware is stable enough to gate on).
smoke_dir="${build_dir}/smoke-out"
rm -rf "${smoke_dir}"
DUFP_SMOKE=1 DUFP_OUT_DIR="${smoke_dir}" "${build_dir}/bench/sim_throughput"
python3 - "${smoke_dir}/BENCH_sim_throughput.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for key in ("schema_version", "bench", "smoke", "config", "baseline",
            "serial", "socket_threads_4", "speedup"):
    assert key in doc, f"missing key: {key}"
assert doc["schema_version"] == 3
assert doc["smoke"] is True
assert doc["serial"]["ticks"] > 0
# Event-leaping accounting: every tick must be classified exactly once
# (leapt on the calm fast path, stepped exactly, or batched in the
# socket-parallel engine) — a gap or an overlap here means the leaping
# engine dropped or double-counted simulated time.  A row skipped on
# this host carries skipped_reason instead of a measurement (v3).
for key in ("serial", "socket_threads_4"):
    row = doc[key]
    if "skipped_reason" in row:
        assert key != "serial", "the serial row is never skipped"
        assert row["skipped_reason"] == "host_cpus==1"
        continue
    leap = row["leap"]
    total = leap["leapt_ticks"] + leap["stepped_ticks"] + leap["batched_ticks"]
    assert total == int(row["ticks"]), (
        f"{key}: leap split {total} != ticks {row['ticks']}")
print("sim_throughput smoke: JSON OK, leap split accounts for every tick")
EOF

echo "== shard_scaling smoke =="
# Forks real worker processes on a shrunk grid and byte-compares the
# gathered outputs against a serial run — the bench itself exits
# non-zero on any byte drift, so this doubles as a cheap cross-process
# determinism gate.
DUFP_SMOKE=1 DUFP_OUT_DIR="${smoke_dir}" "${build_dir}/bench/shard_scaling"
python3 - "${smoke_dir}/BENCH_shard_scaling.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for key in ("schema_version", "bench", "smoke", "config",
            "single_process", "processes_2", "processes_4"):
    assert key in doc, f"missing key: {key}"
assert doc["schema_version"] == 2
assert doc["config"]["host_cpus"] >= 1
# Every multi-process row carries exactly one of: a real speedup (multi-
# core host) or the skip marker (1 CPU — the row still byte-checks).
for key in ("processes_2", "processes_4"):
    row = doc[key]
    assert row["identical_bytes"] is True
    assert ("speedup_vs_single" in row) != ("skipped_reason" in row), (
        f"{key}: want exactly one of speedup_vs_single / skipped_reason")
    if "skipped_reason" in row:
        assert row["skipped_reason"] == "host_cpus==1"
print("shard_scaling smoke: JSON OK, gathered bytes identical")
EOF

echo "== chaos recovery smoke =="
# The failure-model gate (DESIGN.md § Failure model & recovery): a
# seeded DUFP_CHAOS worker self-SIGKILLs mid-record, a second worker
# completes every chunk the victim never claimed, `gather --partial`
# salvages the torn stream and writes a retry manifest, `run --resume`
# executes exactly the missing jobs — and the final gather must be
# byte-identical to an unfailed serial run.  One worker per phase keeps
# the whole drill deterministic (no claim races), so the exit codes are
# asserted exactly: 137 (SIGKILL), 6 (incomplete), 0, 0.
chaos_dir="${build_dir}/chaos-out"
rm -rf "${chaos_dir}"
mkdir -p "${chaos_dir}/claims"
shard_worker="${build_dir}/cli/dufp_shard_worker"
"${shard_worker}" spec > "${chaos_dir}/spec.json" 2> /dev/null
DUFP_QUIET=1 "${shard_worker}" serial --spec "${chaos_dir}/spec.json" \
    --out "${chaos_dir}/serial" 2> /dev/null
status=0
DUFP_QUIET=1 DUFP_CHAOS=0.3 DUFP_CHAOS_SEED=1 "${shard_worker}" run \
    --spec "${chaos_dir}/spec.json" --out "${chaos_dir}/w0.jsonl" \
    --chunk-size 4 --claim-dir "${chaos_dir}/claims" --owner w0 \
    2> /dev/null || status=$?
[[ "${status}" -eq 137 ]] || {
  echo "chaos smoke: expected the chaos worker to die by SIGKILL (137)," \
       "got ${status}" >&2
  exit 1
}
[[ -f "${chaos_dir}/w0.jsonl.partial" && ! -f "${chaos_dir}/w0.jsonl" ]] || {
  echo "chaos smoke: a killed worker must leave only a .partial stream" >&2
  exit 1
}
# The victim's lease is fresh, so a huge TTL keeps its chunk orphaned —
# the gap --resume exists to fill.
DUFP_QUIET=1 "${shard_worker}" run --spec "${chaos_dir}/spec.json" \
    --out "${chaos_dir}/w1.jsonl" --chunk-size 4 \
    --claim-dir "${chaos_dir}/claims" --owner w1 --lease-ttl 100000 \
    2> /dev/null
status=0
"${shard_worker}" gather --spec "${chaos_dir}/spec.json" \
    --out "${chaos_dir}/gathered" --partial \
    "${chaos_dir}/w0.jsonl.partial" "${chaos_dir}/w1.jsonl" \
    2> /dev/null || status=$?
[[ "${status}" -eq 6 && -f "${chaos_dir}/gathered.retry.json" ]] || {
  echo "chaos smoke: partial gather should exit 6 + write a retry" \
       "manifest (exit ${status})" >&2
  exit 1
}
DUFP_QUIET=1 "${shard_worker}" run --resume "${chaos_dir}/gathered.retry.json" \
    --out "${chaos_dir}/rescue.jsonl" 2> /dev/null
"${shard_worker}" gather --spec "${chaos_dir}/spec.json" \
    --out "${chaos_dir}/gathered" --partial \
    "${chaos_dir}/w0.jsonl.partial" "${chaos_dir}/w1.jsonl" \
    "${chaos_dir}/rescue.jsonl" 2> /dev/null
cmp "${chaos_dir}/gathered.csv" "${chaos_dir}/serial.csv" || {
  echo "chaos smoke: DETERMINISM VIOLATION: recovered gather differs" \
       "from serial" >&2
  exit 1
}
echo "chaos smoke: kill -> salvage -> resume -> bytes identical to serial"

echo "== supervise smoke =="
# The same storm under the supervisor: chaos workers die, get restarted
# with backoff, repeat offenders poison their chunks — and whatever is
# left unrecovered must be honestly reported via a retry manifest that a
# clean rescue run completes.  Worker/chunk interleaving is timing-
# dependent, so only the end-to-end property is asserted: supervised +
# (optional) rescue gathers byte-identical to serial.
sup_dir="${build_dir}/chaos-out/sup"
mkdir -p "${sup_dir}"
status=0
DUFP_QUIET=1 DUFP_CHAOS=0.3 DUFP_CHAOS_SEED=1 "${shard_worker}" supervise \
    --spec "${chaos_dir}/spec.json" --out-dir "${sup_dir}" --workers 2 \
    --chunk-size 4 --lease-ttl 100000 --max-restarts 3 \
    --gather "${sup_dir}/gathered" > "${sup_dir}/outputs.txt" \
    2> /dev/null || status=$?
sup_files=()
while IFS= read -r line; do sup_files+=("${line}"); done \
    < "${sup_dir}/outputs.txt"
if [[ "${status}" -eq 6 ]]; then
  DUFP_QUIET=1 "${shard_worker}" run \
      --resume "${sup_dir}/gathered.retry.json" \
      --out "${sup_dir}/rescue.jsonl" 2> /dev/null
  "${shard_worker}" gather --spec "${chaos_dir}/spec.json" \
      --out "${sup_dir}/gathered" --partial \
      "${sup_files[@]}" "${sup_dir}/rescue.jsonl" 2> /dev/null
elif [[ "${status}" -ne 0 ]]; then
  echo "supervise smoke: unexpected exit ${status}" >&2
  exit 1
fi
cmp "${sup_dir}/gathered.csv" "${chaos_dir}/serial.csv" || {
  echo "supervise smoke: DETERMINISM VIOLATION: supervised gather" \
       "differs from serial" >&2
  exit 1
}
echo "supervise smoke: supervised chaos run recovered, bytes identical"

echo "== tournament smoke =="
# Every registered policy on a tiny grid (1 app x 1 tolerance x 1 rep)
# through the shard engine, schema-checking the ranked leaderboard CSV:
# all policies present, ranks sequential from 1, violation/energy
# columns parse.  Catches a policy whose registration or factory broke
# without running the full tournament.
DUFP_SMOKE=1 DUFP_QUIET=1 DUFP_OUT_DIR="${smoke_dir}" \
    "${build_dir}/bench/tournament"
python3 - "${smoke_dir}/tournament.csv" <<'EOF'
import csv, sys
with open(sys.argv[1]) as f:
    rows = list(csv.DictReader(f))
expected_cols = {"rank", "policy", "cells", "violations",
                 "mean_slowdown_pct", "worst_slowdown_pct",
                 "mean_pkg_power_savings_pct", "mean_dram_power_savings_pct",
                 "mean_energy_change_pct"}
assert rows, "empty leaderboard"
assert expected_cols <= set(rows[0]), f"missing columns: {expected_cols - set(rows[0])}"
assert len(rows) >= 7, f"expected >= 7 ranked policies, got {len(rows)}"
assert [int(r["rank"]) for r in rows] == list(range(1, len(rows) + 1))
for legacy in ("DUF", "DUFP", "DUFP-F", "DNPC"):
    assert any(r["policy"] == legacy for r in rows), f"missing {legacy}"
for r in rows:
    int(r["violations"]); float(r["mean_energy_change_pct"])
print(f"tournament smoke: {len(rows)} policies ranked, CSV OK")
EOF

echo "== fleet smoke =="
# Fleet-scale hierarchical budgeting (DESIGN.md § Fleet-scale
# hierarchical power budgeting): the 2x2-rack reference fleet through
# every execution path.  The serial run is the golden; a 2-shard static
# run must gather to byte-identical outputs; dropping a shard must exit
# 6 and write a retry manifest whose resume run completes the bytes.
# All exit codes are asserted exactly.
fleet_dir="${build_dir}/fleet-out"
rm -rf "${fleet_dir}"
mkdir -p "${fleet_dir}"
"${shard_worker}" fleet-spec > "${fleet_dir}/spec.json" 2> /dev/null
DUFP_QUIET=1 "${shard_worker}" fleet-serial --spec "${fleet_dir}/spec.json" \
    --out "${fleet_dir}/serial" 2> /dev/null
for shard in 0 1; do
  DUFP_QUIET=1 "${shard_worker}" fleet-run --spec "${fleet_dir}/spec.json" \
      --out "${fleet_dir}/w${shard}.jsonl" --shard "${shard}" --shards 2 \
      2> /dev/null
done
"${shard_worker}" fleet-gather --spec "${fleet_dir}/spec.json" \
    --out "${fleet_dir}/gathered" \
    "${fleet_dir}/w0.jsonl" "${fleet_dir}/w1.jsonl" 2> /dev/null
for suffix in alloc.csv summary.csv prom; do
  cmp "${fleet_dir}/gathered.${suffix}" "${fleet_dir}/serial.${suffix}" || {
    echo "fleet smoke: DETERMINISM VIOLATION: sharded ${suffix} differs" \
         "from serial" >&2
    exit 1
  }
done
# Salvage + resume: shard 1's nodes are missing, the partial gather must
# say so via exit 6 + a manifest, and the resume run must fill the gap.
status=0
"${shard_worker}" fleet-gather --spec "${fleet_dir}/spec.json" \
    --out "${fleet_dir}/partial" --partial \
    "${fleet_dir}/w0.jsonl" 2> /dev/null || status=$?
[[ "${status}" -eq 6 && -f "${fleet_dir}/partial.retry.json" ]] || {
  echo "fleet smoke: partial fleet-gather should exit 6 + write a retry" \
       "manifest (exit ${status})" >&2
  exit 1
}
DUFP_QUIET=1 "${shard_worker}" fleet-run \
    --resume "${fleet_dir}/partial.retry.json" \
    --out "${fleet_dir}/rescue.jsonl" 2> /dev/null
"${shard_worker}" fleet-gather --spec "${fleet_dir}/spec.json" \
    --out "${fleet_dir}/partial" \
    "${fleet_dir}/w0.jsonl" "${fleet_dir}/rescue.jsonl" 2> /dev/null
cmp "${fleet_dir}/partial.alloc.csv" "${fleet_dir}/serial.alloc.csv" || {
  echo "fleet smoke: DETERMINISM VIOLATION: resumed gather differs from" \
       "serial" >&2
  exit 1
}
echo "fleet smoke: serial = sharded = salvage+resume, bytes identical"

echo "== fleet_scaling smoke =="
# Every registered fleet allocator on the 2x2x2 smoke fleet, serial vs
# supervised-sharded byte-compared inside the bench (it exits non-zero
# on drift), then the scorecard JSON/CSV schema-checked.
DUFP_SMOKE=1 DUFP_QUIET=1 DUFP_OUT_DIR="${smoke_dir}" \
    "${build_dir}/bench/fleet_scaling"
python3 - "${smoke_dir}/BENCH_fleet_scaling.json" \
    "${smoke_dir}/fleet_scaling.csv" <<'EOF'
import csv, json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema_version"] == 1
assert doc["bench"] == "fleet_scaling"
assert doc["smoke"] is True
for key in ("racks", "nodes_per_rack", "sockets_per_node", "sockets",
            "epochs", "budget_w", "traffic"):
    assert key in doc["config"], f"missing config key: {key}"
allocators = ("static-equal", "proportional", "fastcap")
for name in allocators:
    entry = doc[name]
    assert entry["identical_bytes"] is True, f"{name}: byte drift"
    assert entry["total_energy_j"] > 0
    assert 0.0 <= entry["violation_rate"] <= 1.0
    assert 0.0 < entry["jain_fairness"] <= 1.0
with open(sys.argv[2]) as f:
    rows = list(csv.DictReader(f))
assert len(rows) == len(allocators), f"expected {len(allocators)} rows"
expected_cols = {"allocator", "traffic", "budget_w", "total_energy_j",
                 "violation_rate", "jain_fairness", "mean_speed"}
assert expected_cols <= set(rows[0]), \
    f"missing columns: {expected_cols - set(rows[0])}"
assert {r["allocator"] for r in rows} == set(allocators)
print(f"fleet_scaling smoke: {len(rows)} allocators ranked, bytes"
      " identical, schema OK")
EOF

echo "== perf gate (sim_throughput, full run) =="
# A real (non-smoke) run of the tracked throughput bench, gated on the
# serial speedup over the pre-optimisation seed engine.  The tracked
# number is ~14.6x (BENCH_sim_throughput.json — event-leaping engine
# plus the untraced-run trace-row skip); the default floor of 9.0x
# leaves ~40% noise margin so shared CI hosts don't flake, while still
# catching any real hot-path regression (the pre-leaping engine
# measured ~2.2x and would fail this gate).
# Override per-host with DUFP_CI_MIN_SERIAL_SPEEDUP; the parallel gate
# only applies on multi-core hosts (on 1 CPU socket-threads measure
# overhead, not speedup).
perf_dir="${build_dir}/perf-out"
rm -rf "${perf_dir}"
DUFP_OUT_DIR="${perf_dir}" "${build_dir}/bench/sim_throughput"
min_serial="${DUFP_CI_MIN_SERIAL_SPEEDUP:-9.0}"
min_parallel="${DUFP_CI_MIN_PARALLEL_SPEEDUP:-1.0}"
python3 - "${perf_dir}/BENCH_sim_throughput.json" \
    "${min_serial}" "${min_parallel}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
min_serial, min_parallel = float(sys.argv[2]), float(sys.argv[3])
serial = doc["speedup"]["serial_vs_baseline"]
assert serial >= min_serial, (
    f"perf gate: serial_vs_baseline {serial:.2f}x < floor {min_serial}x")
print(f"perf gate: serial_vs_baseline {serial:.2f}x >= {min_serial}x")
# The bench itself decides whether the parallel row is meaningful on
# this host (schema v3); the gate keys on its marker, not on
# re-deriving the CPU count.
row = doc["socket_threads_4"]
if "skipped_reason" in row:
    print(f"perf gate: parallel gate skipped ({row['skipped_reason']})")
else:
    par = doc["speedup"]["parallel_vs_serial"]
    assert par >= min_parallel, (
        f"perf gate: parallel_vs_serial {par:.2f}x < floor {min_parallel}x")
    print(f"perf gate: parallel_vs_serial {par:.2f}x >= {min_parallel}x")
EOF

echo "== grid_throughput gate (batched lane engine) =="
# The tournament-shaped smoke grid, sequential (PR 9 execution model:
# run_once per job, shared cell cache off) vs the batched lane engine,
# byte-compared through the finalized evaluation CSV — the bench exits
# non-zero on any drift or a non-warm repeat, so this is also a
# grid-scale identity gate.  The speedup floor defaults to 1.5x — the
# tracked cold-batched number on the 1-CPU dev container is ~1.8-1.9x
# (all shared-table amortization; lane threading is skipped there), so
# the margin absorbs shared-host noise.  Override per-host with
# DUFP_CI_MIN_GRID_SPEEDUP.
DUFP_SMOKE=1 DUFP_QUIET=1 DUFP_OUT_DIR="${perf_dir}" \
    "${build_dir}/bench/grid_throughput"
min_grid="${DUFP_CI_MIN_GRID_SPEEDUP:-1.5}"
python3 - "${perf_dir}/BENCH_grid_throughput.json" "${min_grid}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
min_grid = float(sys.argv[2])
for key in ("schema_version", "bench", "smoke", "config", "sequential",
            "batched_cold", "batched_warm", "threaded", "speedup",
            "shared_cache", "per_job"):
    assert key in doc, f"missing key: {key}"
assert doc["schema_version"] == 1
for key in ("batched_cold", "batched_warm"):
    assert doc[key]["identical_bytes"] is True, f"{key}: byte drift"
threaded = doc["threaded"]
if "skipped_reason" in threaded:
    assert threaded["skipped_reason"] == "host_cpus==1"
else:
    assert threaded["identical_bytes"] is True, "threaded: byte drift"
# The cross-run amortization claim: a repeat of the identical grid must
# start fully warm — zero cold cell-edge builds, every lookup served.
warm = doc["batched_warm"]["cells"]
assert warm["cold_builds"] == 0, (
    f"warm repeat ran {warm['cold_builds']} cold edge builds (want 0)")
assert doc["sequential"]["cells"]["shared_hits"] == 0, (
    "sequential leg must run with the shared cache off")
cold = doc["speedup"]["batched_cold_vs_sequential"]
assert cold >= min_grid, (
    f"grid gate: batched_cold_vs_sequential {cold:.2f}x < floor {min_grid}x")
print(f"grid gate: batched_cold {cold:.2f}x >= {min_grid}x, warm repeat "
      f"fully warm, bytes identical")
EOF

# Archive the gated numbers per commit so regressions can be bisected
# from history rather than re-measured.
history_dir="${repo_root}/out/bench_history"
mkdir -p "${history_dir}"
sha="$(git -C "${repo_root}" rev-parse --short HEAD 2>/dev/null || echo nogit)"
cp "${perf_dir}/BENCH_sim_throughput.json" "${history_dir}/${sha}.json"
cp "${perf_dir}/BENCH_grid_throughput.json" \
    "${history_dir}/${sha}.grid_throughput.json"
echo "perf gate: archived ${history_dir}/${sha}.json and ${sha}.grid_throughput.json"

echo "== tier-1 under UBSan =="
"${repo_root}/tools/run_tier1_ubsan.sh" "$@"

echo "== tier-1 under TSan =="
"${repo_root}/tools/run_tier1_tsan.sh" "$@"

echo "== ci: all stages passed =="
