#!/usr/bin/env bash
# The full pre-merge gate: plain tier-1 (Release, -O2 -DNDEBUG — the
# configuration the tracked benchmark numbers come from), a throughput-
# bench smoke, then UBSan, then TSan.
#
#   tools/ci.sh            # everything
#   tools/ci.sh -j8        # extra args forwarded to every ctest
#
# Each stage uses its own build directory (build-ci, build-ubsan,
# build-tsan) so the three configurations never poison each other's
# caches.  Fails on the first stage that fails.
#
# The hot-path regression tests (byte-identity goldens, allocation guard)
# carry the additional ctest label `perf`; after touching the engine,
# `ctest --test-dir build-ci -L perf` re-runs just those.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

echo "== plain tier-1 (Release) =="
build_dir="${repo_root}/build-ci"
cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j"$(nproc)"
ctest --test-dir "${build_dir}" -L tier1 --output-on-failure "$@"

echo "== sim_throughput smoke =="
# DUFP_SMOKE: tiny profile, one repetition.  Validates that the bench
# runs and emits parseable JSON matching bench/sim_throughput_schema.json
# (structurally — no performance gate here; thresholds are a ROADMAP
# item until CI hardware is stable enough to gate on).
smoke_dir="${build_dir}/smoke-out"
rm -rf "${smoke_dir}"
DUFP_SMOKE=1 DUFP_OUT_DIR="${smoke_dir}" "${build_dir}/bench/sim_throughput"
python3 - "${smoke_dir}/BENCH_sim_throughput.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for key in ("schema_version", "bench", "smoke", "config", "baseline",
            "serial", "socket_threads_4", "speedup"):
    assert key in doc, f"missing key: {key}"
assert doc["schema_version"] == 1
assert doc["smoke"] is True
assert doc["serial"]["ticks"] > 0
print("sim_throughput smoke: JSON OK")
EOF

echo "== tier-1 under UBSan =="
"${repo_root}/tools/run_tier1_ubsan.sh" "$@"

echo "== tier-1 under TSan =="
"${repo_root}/tools/run_tier1_tsan.sh" "$@"

echo "== ci: all stages passed =="
