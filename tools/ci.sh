#!/usr/bin/env bash
# The full pre-merge gate: plain tier-1, then UBSan, then TSan.
#
#   tools/ci.sh            # everything
#   tools/ci.sh -j8        # extra args forwarded to every ctest
#
# Each stage uses its own build directory (build-ci, build-ubsan,
# build-tsan) so the three configurations never poison each other's
# caches.  Fails on the first stage that fails.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

echo "== plain tier-1 =="
build_dir="${repo_root}/build-ci"
cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j"$(nproc)"
ctest --test-dir "${build_dir}" -L tier1 --output-on-failure "$@"

echo "== tier-1 under UBSan =="
"${repo_root}/tools/run_tier1_ubsan.sh" "$@"

echo "== tier-1 under TSan =="
"${repo_root}/tools/run_tier1_tsan.sh" "$@"

echo "== ci: all stages passed =="
