#!/usr/bin/env bash
# Tier-1 test suite under ThreadSanitizer.
#
# Builds the tree in a separate build directory with
# -DDUFP_SANITIZE=thread (see the cache variable in the top-level
# CMakeLists.txt) and runs every test labeled tier1 with TSan configured
# to fail hard on the first report.  This is the check that guards the
# parallel experiment engine and the telemetry plane (relaxed-atomic
# instruments, SPSC flight recorders):
#
#   tools/run_tier1_tsan.sh            # configure + build + ctest
#   tools/run_tier1_tsan.sh -j8        # extra args forwarded to ctest
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-tsan"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDUFP_SANITIZE=thread
cmake --build "${build_dir}" -j"$(nproc)"

# halt_on_error turns any race report into a test failure instead of a
# log line that scrolls past.
export TSAN_OPTIONS="halt_on_error=1"

ctest --test-dir "${build_dir}" -L tier1 --output-on-failure "$@"
