#!/usr/bin/env bash
# Orchestrates a local multi-process sharded grid run (DESIGN.md
# § Sharded execution).  The same spec + JSONL contract works across
# machines: run `dufp_shard_worker run` per machine, move the shard
# files anywhere (scp, object store, ...), and `gather` on any host.
#
#   tools/shard_run.sh                          # reference grid, 2 shards
#   tools/shard_run.sh -n 4                     # 4 worker processes
#   tools/shard_run.sh -s my_spec.json -n 8
#   tools/shard_run.sh -n 4 -d 2                # dynamic, 2-job chunks
#   tools/shard_run.sh -n 3 -c                  # also run serial + diff
#
# Options:
#   -n SHARDS   worker process count                  (default 2)
#   -s SPEC     grid spec JSON (default: built-in reference grid)
#   -o OUTDIR   output directory                      (default out/shard)
#   -t THREADS  in-process threads per worker         (default 1)
#   -d CHUNK    dynamic chunk-claiming mode with this chunk size
#               (default: static round-robin)
#   -b BINARY   dufp_shard_worker path     (default build/cli/dufp_shard_worker)
#   -c          cross-check: also run the grid serially and byte-compare
#               the gathered outputs (proves determinism on this spec)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

shards=2
spec=""
out_dir="${repo_root}/out/shard"
threads=1
chunk=0
check=0
worker="${repo_root}/build/cli/dufp_shard_worker"

while getopts "n:s:o:t:d:b:c" opt; do
  case "${opt}" in
    n) shards="${OPTARG}" ;;
    s) spec="${OPTARG}" ;;
    o) out_dir="${OPTARG}" ;;
    t) threads="${OPTARG}" ;;
    d) chunk="${OPTARG}" ;;
    b) worker="${OPTARG}" ;;
    c) check=1 ;;
    *) exit 2 ;;
  esac
done

if [[ ! -x "${worker}" ]]; then
  echo "shard_run: ${worker} not built (cmake --build build -j)" >&2
  exit 1
fi

mkdir -p "${out_dir}"

# Interrupting an orchestrated run must not leave droppings that poison
# the next one: kill any workers still running, then sweep stale lease
# claims and torn `.jsonl.partial` streams.  Completed outputs (renamed
# `.jsonl`, `.done` markers, gathered CSVs) are left alone — and on a
# real salvage you would run `gather --partial` *before* rerunning.
pids=()
cleanup() {
  local status=$?
  for pid in "${pids[@]:-}"; do
    kill -9 "${pid}" 2> /dev/null || true
  done
  for pid in "${pids[@]:-}"; do
    wait "${pid}" 2> /dev/null || true
  done
  rm -f "${out_dir}"/*.jsonl.partial
  if [[ -d "${out_dir}/claims" ]]; then
    rm -f "${out_dir}/claims"/*.claim
  fi
  exit "${status}"
}
trap cleanup EXIT INT TERM

if [[ -z "${spec}" ]]; then
  spec="${out_dir}/spec.json"
  "${worker}" spec > "${spec}"
  echo "shard_run: wrote reference spec to ${spec}"
fi

extra_args=()
if [[ "${chunk}" -gt 0 ]]; then
  claim_dir="${out_dir}/claims"
  rm -rf "${claim_dir}"
  mkdir -p "${claim_dir}"
  extra_args=(--chunk-size "${chunk}" --claim-dir "${claim_dir}")
  echo "shard_run: dynamic mode, chunk size ${chunk}"
fi

# Launch every worker as its own process; each streams its JSONL
# independently, exactly as it would on separate machines.
files=()
for ((k = 0; k < shards; ++k)); do
  file="${out_dir}/shard${k}.jsonl"
  files+=("${file}")
  "${worker}" run --spec "${spec}" --out "${file}" \
    --shard "${k}" --shards "${shards}" --threads "${threads}" \
    "${extra_args[@]}" &
  pids+=($!)
done

failed=0
for pid in "${pids[@]}"; do
  wait "${pid}" || failed=1
done
if [[ "${failed}" -ne 0 ]]; then
  echo "shard_run: a worker failed; not gathering" >&2
  exit 1
fi

"${worker}" gather --spec "${spec}" --out "${out_dir}/gathered" "${files[@]}"
echo "shard_run: gathered ${shards} shards -> ${out_dir}/gathered.csv"

if [[ "${check}" -eq 1 ]]; then
  echo "shard_run: cross-checking against a serial in-process run"
  "${worker}" serial --spec "${spec}" --out "${out_dir}/serial"
  for produced in "${out_dir}/gathered".*; do
    ref="${out_dir}/serial${produced#"${out_dir}/gathered"}"
    [[ -f "${ref}" ]] || { echo "shard_run: missing ${ref}" >&2; exit 1; }
    cmp "${produced}" "${ref}" || {
      echo "shard_run: DETERMINISM VIOLATION: ${produced} != ${ref}" >&2
      exit 1
    }
  done
  echo "shard_run: gathered outputs byte-identical to serial"
fi
