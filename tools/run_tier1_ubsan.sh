#!/usr/bin/env bash
# Tier-1 test suite under UndefinedBehaviorSanitizer.
#
# Builds the tree in a separate build directory with
# -DDUFP_SANITIZE=undefined (see the cache variable in the top-level
# CMakeLists.txt) and runs every test labeled tier1 with UBSan configured
# to fail hard on the first report.  Intended both for CI and as a local
# pre-merge check:
#
#   tools/run_tier1_ubsan.sh            # configure + build + ctest
#   tools/run_tier1_ubsan.sh -j8        # extra args forwarded to ctest
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-ubsan"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDUFP_SANITIZE=undefined
cmake --build "${build_dir}" -j"$(nproc)"

# halt_on_error turns any UB report into a test failure instead of a log
# line that scrolls past; the stacktrace makes the report actionable.
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

ctest --test-dir "${build_dir}" -L tier1 --output-on-failure "$@"
