#include "sim/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace dufp::sim {
namespace {

std::vector<TickRecord> one_socket_record(float power) {
  TickRecord r;
  r.core_mhz = 2800.0f;
  r.uncore_mhz = 2400.0f;
  r.pkg_power_w = power;
  r.dram_power_w = 20.0f;
  r.cap_long_w = 125.0f;
  r.cap_short_w = 150.0f;
  r.flops_grate = 40.0f;
  r.speed = 1.0f;
  return {r};
}

TEST(VectorTraceSinkTest, KeepsEverythingAtDecimationOne) {
  VectorTraceSink sink(1);
  for (int i = 0; i < 10; ++i) {
    sink.on_tick(SimTime::from_millis(i), one_socket_record(100.0f + i));
  }
  EXPECT_EQ(sink.entries().size(), 10u);
}

TEST(VectorTraceSinkTest, DecimatesKeepingEveryNth) {
  VectorTraceSink sink(4);
  for (int i = 0; i < 10; ++i) {
    sink.on_tick(SimTime::from_millis(i), one_socket_record(float(i)));
  }
  ASSERT_EQ(sink.entries().size(), 3u);  // ticks 0, 4, 8
  EXPECT_EQ(sink.entries()[1].sockets[0].pkg_power_w, 4.0f);
}

TEST(VectorTraceSinkTest, SeriesExtractsField) {
  VectorTraceSink sink(1);
  for (int i = 0; i < 5; ++i) {
    sink.on_tick(SimTime::from_millis(i), one_socket_record(float(i * 10)));
  }
  const auto series = sink.series(
      0, [](const TickRecord& r) { return double(r.pkg_power_w); });
  EXPECT_EQ(series, (std::vector<double>{0, 10, 20, 30, 40}));
}

TEST(VectorTraceSinkTest, SeriesChecksSocketIndex) {
  VectorTraceSink sink(1);
  sink.on_tick(SimTime::zero(), one_socket_record(1.0f));
  EXPECT_THROW(
      sink.series(1, [](const TickRecord& r) { return double(r.speed); }),
      std::invalid_argument);
}

TEST(VectorTraceSinkTest, InvalidDecimationRejected) {
  EXPECT_THROW(VectorTraceSink(0), std::invalid_argument);
}

TEST(CsvTraceSinkTest, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "/dufp_trace_test.csv";
  {
    CsvTraceSink sink(path, 2);
    for (int i = 0; i < 4; ++i) {
      sink.on_tick(SimTime::from_millis(i), one_socket_record(float(i)));
    }
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line.substr(0, 13), "time_s,socket");
  int rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 2);  // ticks 0 and 2
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dufp::sim
