// When sockets finish at different times (asymmetric workloads), the
// finished sockets must idle correctly: low power, uncore at the window
// minimum, and no further progress accounted.
#include <gtest/gtest.h>

#include "sim/simulation.h"
#include "sim/trace.h"
#include "workloads/profiles.h"

namespace dufp::sim {
namespace {

TEST(IdleTailTest, FinishedSocketIdlesAtLowPower) {
  hw::MachineConfig machine;
  machine.sockets = 2;
  SimulationOptions opts;
  opts.seed = 13;
  // EP (~30 s) finishes well before CG (~40 s).
  std::vector<const workloads::WorkloadProfile*> apps{
      &workloads::profile(workloads::AppId::ep),
      &workloads::profile(workloads::AppId::cg)};
  Simulation s(machine, apps, opts);
  VectorTraceSink sink(100);  // 100 ms resolution
  s.set_trace_sink(&sink);
  const auto sum = s.run();

  // CG defines the machine run length.
  EXPECT_GT(sum.exec_seconds, 35.0);

  // Find the tail after EP finished and check socket 0's state there.
  bool saw_idle_tail = false;
  for (const auto& e : sink.entries()) {
    if (e.time.seconds() > sum.exec_seconds - 3.0) {
      const auto& ep_socket = e.sockets[0];
      const auto& cg_socket = e.sockets[1];
      saw_idle_tail = true;
      EXPECT_LT(ep_socket.pkg_power_w, 60.0);   // idle floor region
      EXPECT_EQ(ep_socket.uncore_mhz, 1200.0f);  // UFS drops when idle
      EXPECT_GT(cg_socket.pkg_power_w, 90.0);    // CG still working
    }
  }
  EXPECT_TRUE(saw_idle_tail);
}

TEST(IdleTailTest, FlopAccountingStopsAtCompletion) {
  hw::MachineConfig machine;
  machine.sockets = 2;
  SimulationOptions opts;
  opts.seed = 14;
  std::vector<const workloads::WorkloadProfile*> apps{
      &workloads::profile(workloads::AppId::ep),
      &workloads::profile(workloads::AppId::cg)};
  Simulation s(machine, apps, opts);

  // Run until EP (socket 0) completes, snapshot, then run to the end.
  while (!s.workload(0).finished() && s.step()) {
  }
  const double ep_flops_at_finish = s.socket(0).flops_total();
  while (s.step()) {
  }
  EXPECT_DOUBLE_EQ(s.socket(0).flops_total(), ep_flops_at_finish);
  EXPECT_GT(s.socket(1).flops_total(), 0.0);
}

}  // namespace
}  // namespace dufp::sim
