#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "powercap/zone.h"
#include "workloads/profiles.h"

namespace dufp::sim {
namespace {

workloads::PhaseSpec phase(const char* name, double seconds, double gflops,
                           double oi, double w_cpu, double w_mem) {
  workloads::PhaseSpec p;
  p.name = name;
  p.nominal_seconds = seconds;
  p.gflops_ref = gflops;
  p.oi = oi;
  p.w_cpu = w_cpu;
  p.w_mem = w_mem;
  p.w_unc = 0.0;
  p.w_fixed = 1.0 - w_cpu - w_mem;
  p.cpu_activity = 0.9;
  p.mem_activity = 0.6;
  return p;
}

workloads::WorkloadProfile small_profile() {
  workloads::WorkloadProfile w("small", "two short phases");
  w.add_phase(phase("compute", 0.5, 40.0, 10.0, 0.9, 0.02));
  w.add_phase(phase("memory", 0.5, 5.0, 0.1, 0.1, 0.8));
  w.loop(3, {"compute", "memory"});
  return w;
}

SimulationOptions fast_options() {
  SimulationOptions o;
  o.seed = 3;
  o.workload_jitter_sigma = 0.0;
  return o;
}

hw::MachineConfig one_socket() {
  hw::MachineConfig m;
  m.sockets = 1;
  return m;
}

TEST(SimulationTest, RunsToCompletionInNominalTime) {
  const auto prof = small_profile();
  Simulation s(one_socket(), prof, fast_options());
  const auto sum = s.run();
  // Unconstrained run at reference speed: wall == nominal (within one
  // tick of rounding).
  EXPECT_NEAR(sum.exec_seconds, 3.0, 0.01);
  EXPECT_TRUE(s.finished());
}

TEST(SimulationTest, EnergyEqualsPowerTimesTime) {
  const auto prof = small_profile();
  Simulation s(one_socket(), prof, fast_options());
  const auto sum = s.run();
  EXPECT_NEAR(sum.pkg_energy_j,
              sum.avg_pkg_power_w * sum.exec_seconds, 1e-6);
  EXPECT_NEAR(sum.total_energy_j(),
              sum.pkg_energy_j + sum.dram_energy_j, 1e-9);
}

TEST(SimulationTest, FlopAccountingMatchesProfile) {
  const auto prof = small_profile();
  Simulation s(one_socket(), prof, fast_options());
  const auto sum = s.run();
  // 3 x (0.5 s x 40 GFLOP/s + 0.5 s x 5 GFLOP/s) = 67.5 GFLOP.
  EXPECT_NEAR(sum.total_gflop, 67.5, 0.5);
}

TEST(SimulationTest, MultiSocketScalesTotals) {
  const auto prof = small_profile();
  hw::MachineConfig m;
  m.sockets = 4;
  Simulation s(m, prof, fast_options());
  const auto sum = s.run();
  EXPECT_NEAR(sum.total_gflop, 4 * 67.5, 2.0);
  EXPECT_GT(sum.avg_pkg_power_w, 300.0);  // 4 sockets
}

TEST(SimulationTest, StepReturnsFalseExactlyAtCompletion) {
  const auto prof = small_profile();
  Simulation s(one_socket(), prof, fast_options());
  long steps = 0;
  while (s.step()) ++steps;
  EXPECT_TRUE(s.finished());
  EXPECT_NEAR(static_cast<double>(steps), 3000.0, 10.0);
  EXPECT_NEAR(s.now().seconds(), 3.0, 0.01);
}

TEST(SimulationTest, PhaseTotalsExact) {
  const auto prof = small_profile();
  Simulation s(one_socket(), prof, fast_options());
  s.run();
  const auto& totals = s.phase_totals(0);
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_NEAR(totals[0].wall_seconds, 1.5, 0.01);
  EXPECT_NEAR(totals[1].wall_seconds, 1.5, 0.01);
  EXPECT_GT(totals[0].pkg_energy_j, 0.0);
  // Phase energies sum to the run total.
  Simulation s2(one_socket(), prof, fast_options());
  const auto sum = s2.run();
  EXPECT_NEAR(totals[0].pkg_energy_j + totals[1].pkg_energy_j,
              sum.pkg_energy_j, 0.5);
}

TEST(SimulationTest, PhaseListenersSeeEveryTransition) {
  const auto prof = small_profile();
  Simulation s(one_socket(), prof, fast_options());
  std::map<std::string, int> enters;
  std::map<std::string, int> exits;
  s.add_phase_listener([&](int socket, std::size_t phase_idx, bool entered) {
    // Names are resolved at the edge; the engine hands out interned
    // indices.
    const std::string name(prof.phase_name(phase_idx));
    EXPECT_EQ(socket, 0);
    (entered ? enters[name] : exits[name])++;
  });
  s.run();
  EXPECT_EQ(enters["compute"], 3);
  EXPECT_EQ(enters["memory"], 3);
  EXPECT_EQ(exits["compute"], 3);
  EXPECT_EQ(exits["memory"], 3);
}

TEST(SimulationTest, PeriodicCallbacksFireOnSchedule) {
  const auto prof = small_profile();
  Simulation s(one_socket(), prof, fast_options());
  std::vector<double> times;
  s.schedule_periodic(SimTime::from_millis(200),
                      [&](SimTime t) { times.push_back(t.seconds()); });
  s.run();
  ASSERT_GE(times.size(), 14u);
  EXPECT_NEAR(times[0], 0.2, 1e-9);
  EXPECT_NEAR(times[1], 0.4, 1e-9);
}

TEST(SimulationTest, PeriodicMustAlignWithTick) {
  const auto prof = small_profile();
  Simulation s(one_socket(), prof, fast_options());
  EXPECT_THROW(
      s.schedule_periodic(SimTime{1500}, [](SimTime) {}),
      std::invalid_argument);
}

TEST(SimulationTest, StaticCapExtendsExecutionAndCutsPower) {
  const auto prof = small_profile();

  Simulation base(one_socket(), prof, fast_options());
  const auto b = base.run();

  Simulation capped(one_socket(), prof, fast_options());
  powercap::PackageZone zone(capped.msr(0), 0);
  zone.set_power_limit_w(powercap::ConstraintId::long_term, 80.0);
  zone.set_power_limit_w(powercap::ConstraintId::short_term, 80.0);
  const auto c = capped.run();

  EXPECT_GT(c.exec_seconds, b.exec_seconds * 1.01);
  EXPECT_LT(c.avg_pkg_power_w, b.avg_pkg_power_w * 0.9);
}

TEST(SimulationTest, TraceSinkReceivesTicks) {
  const auto prof = small_profile();
  Simulation s(one_socket(), prof, fast_options());
  VectorTraceSink sink(1);
  s.set_trace_sink(&sink);
  s.run();
  EXPECT_NEAR(static_cast<double>(sink.entries().size()), 3000.0, 10.0);
  EXPECT_EQ(sink.entries().front().sockets.size(), 1u);
  EXPECT_GT(sink.entries().front().sockets[0].pkg_power_w, 0.0f);
}

TEST(SimulationTest, MaxSecondsGuardThrows) {
  const auto prof = small_profile();
  SimulationOptions o = fast_options();
  o.max_seconds = 0.5;  // run needs ~3 s
  Simulation s(one_socket(), prof, o);
  EXPECT_THROW(s.run(), std::runtime_error);
}

TEST(SimulationTest, BatchStatsAccountForEveryParallelTick) {
  // Jittered multi-socket run: the sockets finish at staggered ticks,
  // which is the historical worst case for the batch bound (a MIN over
  // per-socket finish estimates degraded the endgame into 1-tick batches
  // and serial fallback).  With the MAX bound — only the *last* finish
  // can end the run, and an individually-finished socket integrates idle
  // demand inside a batch exactly as the serial engine does — the tail
  // stays batched: the serial fallback is a handful of ticks at most and
  // at least one full-width batch runs (no periodics are registered, so
  // nothing but the finish bound and kMaxBatchTicks limits a batch).
  hw::MachineConfig m;
  m.sockets = 4;
  SimulationOptions o = fast_options();
  o.workload_jitter_sigma = 0.02;  // stagger the per-socket finish ticks
  o.socket_threads = 2;
  o.time_leap = false;  // pin the batcher itself; leap paths tested below
  const auto prof = small_profile();
  Simulation s(m, prof, o);
  const auto sum = s.run();
  const auto bs = s.batch_stats();
  const auto total_ticks =
      static_cast<std::int64_t>(std::llround(sum.exec_seconds * 1000.0));
  EXPECT_EQ(bs.batched_ticks + bs.serial_ticks, total_ticks);
  EXPECT_EQ(bs.stepped_ticks, bs.serial_ticks);
  EXPECT_EQ(bs.leapt_ticks, 0);
  EXPECT_GT(bs.batches, 0);
  EXPECT_LT(bs.serial_ticks, 64) << "endgame tail fell back to serial";
  EXPECT_GE(bs.max_batch, 256) << "batch window collapsed";
}

TEST(SimulationTest, TickAccountingInvariantWithLeapingEnabled) {
  // With the event-leaping fast paths on (the default), every simulated
  // tick is classified exactly once: covered by a leap / calm stretch,
  // stepped exactly, or stepped inside a parallel batch.
  for (const int threads : {1, 2}) {
    hw::MachineConfig m;
    m.sockets = 4;
    SimulationOptions o = fast_options();
    o.workload_jitter_sigma = 0.02;
    o.socket_threads = threads;
    const auto prof = small_profile();
    Simulation s(m, prof, o);
    const auto sum = s.run();
    const auto bs = s.batch_stats();
    const auto total_ticks =
        static_cast<std::int64_t>(std::llround(sum.exec_seconds * 1000.0));
    EXPECT_EQ(bs.leapt_ticks + bs.stepped_ticks + bs.batched_ticks,
              total_ticks)
        << "threads=" << threads;
    EXPECT_GT(bs.leapt_ticks, 0) << "fast path never engaged";
  }
}

TEST(SimulationTest, BatchStatsZeroAfterSerialRun) {
  const auto prof = small_profile();
  Simulation s(one_socket(), prof, fast_options());
  const auto sum = s.run();
  const auto bs = s.batch_stats();
  EXPECT_EQ(bs.batches, 0);
  EXPECT_EQ(bs.batched_ticks, 0);
  EXPECT_EQ(bs.serial_ticks, 0);
  EXPECT_EQ(bs.max_batch, 0);
  // The leap fields still account for every serial tick.
  const auto total_ticks =
      static_cast<std::int64_t>(std::llround(sum.exec_seconds * 1000.0));
  EXPECT_EQ(bs.leapt_ticks + bs.stepped_ticks, total_ticks);
}

TEST(SimulationTest, ForkRngIndependentPerTag) {
  const auto prof = small_profile();
  Simulation s(one_socket(), prof, fast_options());
  Rng a = s.fork_rng(1);
  Rng b = s.fork_rng(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

}  // namespace
}  // namespace dufp::sim
