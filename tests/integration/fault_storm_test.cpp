// Fault-storm robustness grid: every policy mode must survive a hostile
// substrate (transient EIO, denied writes, bit flips, stale/dropped
// samples, a forced energy wraparound) with no exception escaping the
// agent loop, deterministic health accounting for a fixed fault seed, and
// bit-identical results when injection is enabled but silent.
#include <gtest/gtest.h>

#include "faults/fault_plan.h"
#include "harness/runner.h"
#include "workloads/profiles.h"

namespace dufp::harness {
namespace {

RunConfig storm_config(PolicyMode mode, double rate, std::uint64_t fault_seed) {
  RunConfig cfg;
  cfg.profile = &workloads::profile(workloads::AppId::cg);
  cfg.machine.sockets = 1;
  cfg.seed = 21;
  cfg.mode = mode;
  cfg.tolerated_slowdown = 0.10;
  if (rate > 0.0) {
    cfg.faults = faults::FaultOptions::storm(rate, fault_seed);
  }
  return cfg;
}

std::uint64_t health_sum(const HealthTotals& h) {
  return h.actuation_retries + h.actuation_failures +
         h.sample_read_failures + h.samples_rejected + h.degradations +
         h.reengagements + h.intervals_degraded;
}

void expect_health_eq(const HealthTotals& a, const HealthTotals& b) {
  EXPECT_EQ(a.actuation_retries, b.actuation_retries);
  EXPECT_EQ(a.actuation_failures, b.actuation_failures);
  EXPECT_EQ(a.sample_read_failures, b.sample_read_failures);
  EXPECT_EQ(a.samples_rejected, b.samples_rejected);
  EXPECT_EQ(a.degradations, b.degradations);
  EXPECT_EQ(a.reengagements, b.reengagements);
  EXPECT_EQ(a.intervals_degraded, b.intervals_degraded);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
}

TEST(FaultStormTest, EveryPolicyModeSurvivesTheStorm) {
  for (const PolicyMode mode : {PolicyMode::duf, PolicyMode::dufp,
                                PolicyMode::dufpf, PolicyMode::dnpc}) {
    SCOPED_TRACE(policy_mode_name(mode));
    RunResult result;
    // "No exception escapes the agent loop": the run must complete.
    ASSERT_NO_THROW(result = run_once(storm_config(mode, 0.05, 7)));
    EXPECT_GT(result.summary.exec_seconds, 0.0);
    // The storm actually reached the substrate...
    ASSERT_EQ(result.fault_stats.size(), 1u);
    EXPECT_GT(result.health.faults_injected, 0u);
    // ... and the agent visibly absorbed some of it.
    EXPECT_GT(health_sum(result.health), 0u);
  }
}

TEST(FaultStormTest, HealthCountersDeterministicForFixedFaultSeed) {
  const auto a = run_once(storm_config(PolicyMode::dufp, 0.05, 7));
  const auto b = run_once(storm_config(PolicyMode::dufp, 0.05, 7));
  EXPECT_EQ(a.summary.exec_seconds, b.summary.exec_seconds);
  EXPECT_EQ(a.summary.pkg_energy_j, b.summary.pkg_energy_j);
  expect_health_eq(a.health, b.health);
  ASSERT_EQ(a.fault_stats.size(), b.fault_stats.size());
  for (int c = 0; c < faults::kFaultClassCount; ++c) {
    EXPECT_EQ(a.fault_stats[0].count(static_cast<faults::FaultClass>(c)),
              b.fault_stats[0].count(static_cast<faults::FaultClass>(c)));
  }
}

TEST(FaultStormTest, DifferentFaultSeedsProduceDifferentStorms) {
  const auto a = run_once(storm_config(PolicyMode::dufp, 0.05, 7));
  const auto b = run_once(storm_config(PolicyMode::dufp, 0.05, 8));
  bool any_diff = a.health.faults_injected != b.health.faults_injected;
  for (int c = 0; c < faults::kFaultClassCount; ++c) {
    any_diff = any_diff ||
               a.fault_stats[0].count(static_cast<faults::FaultClass>(c)) !=
                   b.fault_stats[0].count(static_cast<faults::FaultClass>(c));
  }
  EXPECT_TRUE(any_diff);
}

TEST(FaultStormTest, ZeroRateInjectionBitIdenticalToBaseline) {
  // Interposing the decorators with all rates at zero must not perturb
  // anything: no RNG draw, no measurement change, no decision change.
  const auto baseline = run_once(storm_config(PolicyMode::dufp, 0.0, 0));
  auto cfg = storm_config(PolicyMode::dufp, 0.0, 0);
  cfg.faults.enabled = true;  // decorators in place, every rate zero
  const auto quiet = run_once(cfg);
  EXPECT_EQ(baseline.summary.exec_seconds, quiet.summary.exec_seconds);
  EXPECT_EQ(baseline.summary.pkg_energy_j, quiet.summary.pkg_energy_j);
  EXPECT_EQ(baseline.summary.dram_energy_j, quiet.summary.dram_energy_j);
  ASSERT_EQ(quiet.agent_stats.size(), 1u);
  EXPECT_EQ(baseline.agent_stats[0].cap_decreases,
            quiet.agent_stats[0].cap_decreases);
  EXPECT_EQ(baseline.agent_stats[0].uncore_decreases,
            quiet.agent_stats[0].uncore_decreases);
  EXPECT_EQ(quiet.health.faults_injected, 0u);
  EXPECT_EQ(health_sum(quiet.health), 0u);
}

TEST(FaultStormTest, ForcedEnergyWrapIsMeasurementNeutral) {
  // A forced counter wraparound relabels the raw energy values but the
  // wrap-corrected deltas — and therefore every control decision — must
  // be bit-identical to the unwrapped run.
  const auto baseline = run_once(storm_config(PolicyMode::dufp, 0.0, 0));
  auto cfg = storm_config(PolicyMode::dufp, 0.0, 0);
  cfg.faults.enabled = true;
  cfg.faults.force_energy_wrap = true;
  cfg.faults.energy_wrap_lead_j = 2.0;  // wraps within the first seconds
  const auto wrapped = run_once(cfg);
  EXPECT_EQ(baseline.summary.exec_seconds, wrapped.summary.exec_seconds);
  EXPECT_EQ(baseline.summary.pkg_energy_j, wrapped.summary.pkg_energy_j);
  EXPECT_EQ(wrapped.health.samples_rejected, 0u);
  EXPECT_EQ(wrapped.health.sample_read_failures, 0u);
}

TEST(FaultStormTest, PersistentWriteDenialDegradesAndIsCounted) {
  // An msr-safe style outage (long EPERM bursts) must trip the watchdog:
  // the socket spends intervals in the fail-safe state and the run still
  // finishes.
  auto cfg = storm_config(PolicyMode::dufp, 0.0, 0);
  cfg.faults.enabled = true;
  cfg.faults.write_eperm = {0.05, 1 << 20};  // once tripped, denied forever
  cfg.faults.seed = 3;
  const auto result = run_once(cfg);
  EXPECT_GT(result.summary.exec_seconds, 0.0);
  EXPECT_GT(result.health.degradations, 0u);
  EXPECT_GT(result.health.intervals_degraded, 0u);
  EXPECT_GT(result.health.actuation_failures, 0u);
}

TEST(FaultStormTest, RepeatedRunsAggregateHealthAcrossRepetitions) {
  auto cfg = storm_config(PolicyMode::dufp, 0.05, 7);
  const auto agg = run_repeated(cfg, 3);
  EXPECT_EQ(agg.runs, 3);
  EXPECT_GT(agg.health.faults_injected, 0u);
  EXPECT_GT(health_sum(agg.health), 0u);
  EXPECT_GT(agg.exec_seconds.mean, 0.0);
}

}  // namespace
}  // namespace dufp::harness
