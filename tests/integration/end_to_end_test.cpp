// Full-stack behaviours that cut across every module: workload -> socket
// model -> RAPL firmware -> MSRs -> powercap/perfmon -> controllers.
#include <gtest/gtest.h>

#include "harness/runner.h"
#include "sim/trace.h"
#include "workloads/generator.h"
#include "workloads/profiles.h"

namespace dufp::harness {
namespace {

RunConfig config(workloads::AppId app, PolicyMode mode, double tol) {
  RunConfig cfg;
  cfg.profile = &workloads::profile(app);
  cfg.machine.sockets = 1;
  cfg.seed = 21;
  cfg.mode = mode;
  cfg.tolerated_slowdown = tol;
  return cfg;
}

TEST(EndToEndTest, DefaultRunsAreNotThrottledForMostApps) {
  // Default consumption sits near but mostly below the 125 W budget.
  for (auto app : {workloads::AppId::cg, workloads::AppId::ep,
                   workloads::AppId::mg}) {
    const auto res = run_once(config(app, PolicyMode::none, 0.0));
    EXPECT_LT(res.summary.avg_pkg_power_w, 126.0)
        << workloads::app_name(app);
    EXPECT_GT(res.summary.avg_pkg_power_w, 95.0)
        << workloads::app_name(app);
  }
}

TEST(EndToEndTest, HplIsTdpBound) {
  // HPL demands more than TDP; the firmware holds the long-term average
  // at the 125 W budget (the classic power-virus behaviour).
  const auto res = run_once(config(workloads::AppId::hpl, PolicyMode::none,
                                   0.0));
  EXPECT_GT(res.summary.avg_pkg_power_w, 118.0);
  EXPECT_LT(res.summary.avg_pkg_power_w, 127.0);
}

TEST(EndToEndTest, DufpNeverWorseThanDufOnPower) {
  // The paper's core claim: adding dynamic capping to uncore scaling
  // only adds savings.
  for (auto app : {workloads::AppId::cg, workloads::AppId::ep,
                   workloads::AppId::ft}) {
    const auto duf = run_once(config(app, PolicyMode::duf, 0.10));
    const auto dufp = run_once(config(app, PolicyMode::dufp, 0.10));
    EXPECT_LE(dufp.summary.avg_pkg_power_w,
              duf.summary.avg_pkg_power_w * 1.015)
        << workloads::app_name(app);
  }
}

TEST(EndToEndTest, CapsAreActuallyProgrammedDuringDufpRun) {
  const auto res = run_once(config(workloads::AppId::cg, PolicyMode::dufp,
                                   0.10));
  ASSERT_EQ(res.agent_stats.size(), 1u);
  const auto& st = res.agent_stats[0];
  EXPECT_GT(st.cap_decreases, 10u);
  EXPECT_GT(st.uncore_decreases, 2u);
  EXPECT_GT(st.intervals, 150u);
}

TEST(EndToEndTest, FrequencyTraceShowsCapEffect) {
  // Fig. 5's mechanism: with DUFP the core clock leaves the all-core max.
  auto cfg = config(workloads::AppId::cg, PolicyMode::dufp, 0.10);
  sim::VectorTraceSink sink(10);
  cfg.trace = &sink;
  run_once(cfg);
  double sum = 0.0;
  double count = 0.0;
  double minf = 1e9;
  for (const auto& e : sink.entries()) {
    sum += e.sockets[0].core_mhz;
    minf = std::min(minf, double(e.sockets[0].core_mhz));
    count += 1.0;
  }
  const double avg = sum / count;
  EXPECT_LT(avg, 2790.0);
  EXPECT_LT(minf, 2500.0);
}

TEST(EndToEndTest, ZeroToleranceKeepsSlowdownTiny) {
  for (auto app : {workloads::AppId::ep, workloads::AppId::mg}) {
    const auto base = run_once(config(app, PolicyMode::none, 0.0));
    const auto dufp = run_once(config(app, PolicyMode::dufp, 0.0));
    const double slowdown = percent_over(dufp.summary.exec_seconds,
                                         base.summary.exec_seconds);
    EXPECT_LT(slowdown, 2.5) << workloads::app_name(app);
  }
}

TEST(EndToEndTest, GeneratedWorkloadsRunUnderAllPolicies) {
  // Property test: DUFP must behave sanely on arbitrary valid workloads,
  // not just the ten calibrated profiles.
  Rng rng(99);
  for (int i = 0; i < 3; ++i) {
    workloads::GeneratorSpec spec;
    spec.phase_count = 3;
    spec.sequence_length = 30;
    spec.min_phase_seconds = 0.2;
    spec.max_phase_seconds = 1.0;
    const auto prof = workloads::generate_workload(
        spec, rng, "gen" + std::to_string(i));

    RunConfig cfg;
    cfg.profile = &prof;
    cfg.machine.sockets = 1;
    cfg.seed = 31 + static_cast<std::uint64_t>(i);

    cfg.mode = PolicyMode::none;
    const auto base = run_once(cfg);

    cfg.mode = PolicyMode::dufp;
    cfg.tolerated_slowdown = 0.10;
    const auto dufp = run_once(cfg);

    // Sanity: bounded slowdown (tolerance + phase-detection slack) and
    // no power increase.
    const double slowdown = percent_over(dufp.summary.exec_seconds,
                                         base.summary.exec_seconds);
    EXPECT_LT(slowdown, 16.0) << prof.name();
    EXPECT_GE(slowdown, -1.0) << prof.name();
    EXPECT_LE(dufp.summary.avg_pkg_power_w,
              base.summary.avg_pkg_power_w * 1.01)
        << prof.name();
  }
}

TEST(EndToEndTest, MsrTrafficStaysControlPlane) {
  // The agent runs at 5 Hz; MSR writes must stay a few per interval.
  auto cfg = config(workloads::AppId::cg, PolicyMode::dufp, 0.10);
  const auto res = run_once(cfg);
  const auto& st = res.agent_stats[0];
  const auto actions = st.cap_decreases + st.cap_increases +
                       st.cap_resets + st.uncore_decreases +
                       st.uncore_increases + st.uncore_resets;
  EXPECT_LT(actions, st.intervals * 3);
}

}  // namespace
}  // namespace dufp::harness
