// Reproducibility: identical seeds must give bit-identical results, and
// different seeds must differ (error bars would otherwise be fiction).
#include <gtest/gtest.h>

#include "harness/runner.h"
#include "workloads/profiles.h"

namespace dufp::harness {
namespace {

RunConfig config(std::uint64_t seed, PolicyMode mode) {
  RunConfig cfg;
  cfg.profile = &workloads::profile(workloads::AppId::cg);
  cfg.machine.sockets = 1;
  cfg.seed = seed;
  cfg.mode = mode;
  cfg.tolerated_slowdown = 0.10;
  return cfg;
}

TEST(DeterminismTest, SameSeedBitIdenticalDefaultRun) {
  const auto a = run_once(config(11, PolicyMode::none));
  const auto b = run_once(config(11, PolicyMode::none));
  EXPECT_EQ(a.summary.exec_seconds, b.summary.exec_seconds);
  EXPECT_EQ(a.summary.pkg_energy_j, b.summary.pkg_energy_j);
  EXPECT_EQ(a.summary.dram_energy_j, b.summary.dram_energy_j);
}

TEST(DeterminismTest, SameSeedBitIdenticalDufpRun) {
  const auto a = run_once(config(12, PolicyMode::dufp));
  const auto b = run_once(config(12, PolicyMode::dufp));
  EXPECT_EQ(a.summary.exec_seconds, b.summary.exec_seconds);
  EXPECT_EQ(a.summary.pkg_energy_j, b.summary.pkg_energy_j);
  ASSERT_EQ(a.agent_stats.size(), b.agent_stats.size());
  EXPECT_EQ(a.agent_stats[0].cap_decreases, b.agent_stats[0].cap_decreases);
  EXPECT_EQ(a.agent_stats[0].uncore_decreases,
            b.agent_stats[0].uncore_decreases);
  EXPECT_EQ(a.agent_stats[0].cap_resets, b.agent_stats[0].cap_resets);
}

TEST(DeterminismTest, DifferentSeedsDiffer) {
  const auto a = run_once(config(1, PolicyMode::none));
  const auto b = run_once(config(2, PolicyMode::none));
  EXPECT_NE(a.summary.exec_seconds, b.summary.exec_seconds);
}

TEST(DeterminismTest, SeedChangesAreSmallPerturbations) {
  const auto a = run_once(config(1, PolicyMode::none));
  const auto b = run_once(config(2, PolicyMode::none));
  EXPECT_NEAR(a.summary.exec_seconds, b.summary.exec_seconds,
              a.summary.exec_seconds * 0.03);
}

}  // namespace
}  // namespace dufp::harness
