// Asserts the qualitative shapes of the paper's evaluation (Sec. V) so a
// regression in the models or controllers that breaks the reproduction is
// caught by ctest, not only by eyeballing the figure benches.
//
// These run a reduced protocol (1 socket, 1 run per cell — the simulator
// is deterministic per seed) and assert *shapes* with generous margins,
// not absolute numbers.
#include <gtest/gtest.h>

#include "harness/runner.h"
#include "workloads/profiles.h"

namespace dufp::harness {
namespace {

using workloads::AppId;

struct Cell {
  double slowdown_pct;
  double pkg_savings_pct;
  double energy_change_pct;
  double dram_savings_pct;
};

Cell run_cell(AppId app, PolicyMode mode, double tol,
              std::uint64_t seed = 41) {
  RunConfig cfg;
  cfg.profile = &workloads::profile(app);
  cfg.machine.sockets = 1;
  cfg.seed = seed;
  cfg.mode = PolicyMode::none;
  const auto base = run_once(cfg);
  cfg.mode = mode;
  cfg.tolerated_slowdown = tol;
  const auto res = run_once(cfg);
  Cell c;
  c.slowdown_pct =
      percent_over(res.summary.exec_seconds, base.summary.exec_seconds);
  c.pkg_savings_pct = -percent_over(res.summary.avg_pkg_power_w,
                                    base.summary.avg_pkg_power_w);
  c.energy_change_pct = percent_over(res.summary.total_energy_j(),
                                     base.summary.total_energy_j());
  c.dram_savings_pct = -percent_over(res.summary.avg_dram_power_w,
                                     base.summary.avg_dram_power_w);
  return c;
}

TEST(PaperShapesTest, DufpProvidesPowerSavingsForAllApplications) {
  // Sec. V-H: "DUFP manages to reduce the power consumption of all
  // applications" (at 10 % tolerance).
  for (AppId app : workloads::all_apps()) {
    const auto c = run_cell(app, PolicyMode::dufp, 0.10);
    EXPECT_GT(c.pkg_savings_pct, 0.0) << workloads::app_name(app);
  }
}

TEST(PaperShapesTest, SlowdownRespectedForMostConfigurations) {
  // Sec. V-A: respected for ~85 % of configurations; violations stay
  // within ~3 points of the tolerance.
  int total = 0;
  int respected = 0;
  for (AppId app : workloads::all_apps()) {
    for (double tol : {0.05, 0.10, 0.20}) {
      const auto c = run_cell(app, PolicyMode::dufp, tol);
      ++total;
      if (c.slowdown_pct <= tol * 100.0 + 0.3) ++respected;
      EXPECT_LT(c.slowdown_pct, tol * 100.0 + 3.5)
          << workloads::app_name(app) << " @ " << tol;
    }
  }
  EXPECT_GE(static_cast<double>(respected) / total, 0.7);
}

TEST(PaperShapesTest, CgAt20MatchesHeadline) {
  // The paper's headline comparison (Sec. V-B): DUF ~9.66 %, DUFP
  // ~17.57 % — DUFP beats DUF by several points on CG at 20 %.
  const auto duf = run_cell(AppId::cg, PolicyMode::duf, 0.20);
  const auto dufp = run_cell(AppId::cg, PolicyMode::dufp, 0.20);
  EXPECT_GT(duf.pkg_savings_pct, 5.0);
  EXPECT_LT(duf.pkg_savings_pct, 14.0);
  EXPECT_GT(dufp.pkg_savings_pct, duf.pkg_savings_pct + 3.0);
  EXPECT_LT(dufp.pkg_savings_pct, 24.0);
}

TEST(PaperShapesTest, CgAt10SavesPowerAndEnergy) {
  // Sec. V-D: CG @10 % saves both power (~14 %) and total energy (~5 %).
  const auto c = run_cell(AppId::cg, PolicyMode::dufp, 0.10);
  EXPECT_GT(c.pkg_savings_pct, 6.0);
  EXPECT_LT(c.energy_change_pct, 0.5);
}

TEST(PaperShapesTest, EpDominatedByUncoreScaling) {
  // Sec. V-B: EP has the best savings, mostly from uncore scaling.
  const auto duf = run_cell(AppId::ep, PolicyMode::duf, 0.10);
  const auto dufp = run_cell(AppId::ep, PolicyMode::dufp, 0.10);
  EXPECT_GT(duf.pkg_savings_pct, 12.0);             // uncore alone is large
  EXPECT_GE(dufp.pkg_savings_pct, duf.pkg_savings_pct - 1.0);
  EXPECT_LT(dufp.pkg_savings_pct - duf.pkg_savings_pct, 8.0);
  EXPECT_LT(duf.slowdown_pct, 3.0);                  // and nearly free
}

TEST(PaperShapesTest, DufCannotSaveOnBtButDufpCan) {
  // Sec. V-B: BT @20 % — DUF 0.64 %, DUFP 5.14 %.
  const auto duf = run_cell(AppId::bt, PolicyMode::duf, 0.20);
  const auto dufp = run_cell(AppId::bt, PolicyMode::dufp, 0.20);
  EXPECT_LT(duf.pkg_savings_pct, 2.0);
  EXPECT_GT(dufp.pkg_savings_pct, 4.0);
}

TEST(PaperShapesTest, FtCappingRoughlyDoublesUncoreSavingsAt10) {
  // Sec. V-B: "the power savings with FT almost double with DUFP".
  const auto duf = run_cell(AppId::ft, PolicyMode::duf, 0.10);
  const auto dufp = run_cell(AppId::ft, PolicyMode::dufp, 0.10);
  EXPECT_GT(dufp.pkg_savings_pct, duf.pkg_savings_pct * 1.4);
}

TEST(PaperShapesTest, HplSavingsStayBelowSeven) {
  // Sec. V-F: CPU-intensive codes (HPL, BT) stay below ~7 % savings up
  // to moderate tolerance.
  const auto c = run_cell(AppId::hpl, PolicyMode::dufp, 0.10);
  EXPECT_LT(c.pkg_savings_pct, 8.0);
  EXPECT_GE(c.energy_change_pct, -2.0);  // no real energy gain either
}

TEST(PaperShapesTest, EnergyNeutralOrBetterUpToTenPercent) {
  // Sec. V-D: up to 10 % tolerance, no energy loss for most apps.
  int losses = 0;
  for (AppId app : workloads::all_apps()) {
    const auto c = run_cell(app, PolicyMode::dufp, 0.10);
    if (c.energy_change_pct > 1.0) ++losses;
  }
  EXPECT_LE(losses, 2);
}

TEST(PaperShapesTest, TwentyPercentToleranceCanLoseEnergy) {
  // Sec. V-D: at 20 % the slowdown outweighs the savings for several
  // memory-heavy apps (CG, LU, MG, LAMMPS).
  int near_or_loss = 0;
  for (AppId app : {AppId::cg, AppId::lu, AppId::mg, AppId::lammps}) {
    const auto c = run_cell(app, PolicyMode::dufp, 0.20);
    if (c.energy_change_pct > -2.0) ++near_or_loss;
  }
  EXPECT_GE(near_or_loss, 2);
}

TEST(PaperShapesTest, DramPowerSavingsTrackBandwidthReduction) {
  // Fig. 4: DRAM power savings for memory apps, best on CG @20 (~9 %).
  const auto cg = run_cell(AppId::cg, PolicyMode::dufp, 0.20);
  EXPECT_GT(cg.dram_savings_pct, 4.0);
  EXPECT_LT(cg.dram_savings_pct, 16.0);
  const auto ep = run_cell(AppId::ep, PolicyMode::dufp, 0.20);
  EXPECT_LT(ep.dram_savings_pct, 2.0);  // EP barely touches DRAM
}

TEST(PaperShapesTest, ZeroToleranceGivesBestEnergyForMostApps) {
  // Sec. V-H: "for most applications, 0 % tolerated slowdown offers the
  // best energy savings".
  int zero_best_or_close = 0;
  for (AppId app : {AppId::cg, AppId::ep, AppId::ft, AppId::hpl}) {
    const auto e0 = run_cell(app, PolicyMode::dufp, 0.0).energy_change_pct;
    const auto e20 =
        run_cell(app, PolicyMode::dufp, 0.20).energy_change_pct;
    if (e0 <= e20 + 1.5) ++zero_best_or_close;
  }
  EXPECT_GE(zero_best_or_close, 3);
}

}  // namespace
}  // namespace dufp::harness
