// Safety-net property tests: across arbitrary generated workloads and
// every policy, the system must never leave its physical envelope —
// actuators inside hardware ranges, power non-negative and bounded,
// energy consistent with power x time, counters monotone.
#include <gtest/gtest.h>

#include "harness/runner.h"
#include "msr/registers.h"
#include "perfmon/sim_counter_source.h"
#include "sim/trace.h"
#include "workloads/generator.h"
#include "workloads/profiles.h"

namespace dufp::harness {
namespace {

class InvariantSink final : public sim::TraceSink {
 public:
  void on_tick(SimTime, const std::vector<sim::TickRecord>& sockets) override {
    for (const auto& r : sockets) {
      min_core = std::min(min_core, double(r.core_mhz));
      max_core = std::max(max_core, double(r.core_mhz));
      min_uncore = std::min(min_uncore, double(r.uncore_mhz));
      max_uncore = std::max(max_uncore, double(r.uncore_mhz));
      min_cap = std::min(min_cap, double(r.cap_long_w));
      max_cap = std::max(max_cap, double(r.cap_long_w));
      max_power = std::max(max_power, double(r.pkg_power_w));
      min_power = std::min(min_power, double(r.pkg_power_w));
      min_speed = std::min(min_speed, double(r.speed));
    }
  }

  double min_core = 1e18, max_core = 0;
  double min_uncore = 1e18, max_uncore = 0;
  double min_cap = 1e18, max_cap = 0;
  double min_power = 1e18, max_power = 0;
  double min_speed = 1e18;
};

class InvariantSweep
    : public ::testing::TestWithParam<std::tuple<PolicyMode, int>> {};

TEST_P(InvariantSweep, PhysicalEnvelopeNeverViolated) {
  const auto [mode, seed] = GetParam();

  Rng rng(static_cast<std::uint64_t>(seed) * 1234567 + 1);
  workloads::GeneratorSpec spec;
  spec.phase_count = 4;
  spec.sequence_length = 25;
  spec.min_phase_seconds = 0.15;
  spec.max_phase_seconds = 1.2;
  const auto prof = workloads::generate_workload(
      spec, rng, "inv" + std::to_string(seed));

  RunConfig cfg;
  cfg.profile = &prof;
  cfg.machine.sockets = 1;
  cfg.seed = static_cast<std::uint64_t>(seed);
  cfg.mode = mode;
  cfg.tolerated_slowdown = 0.10;
  InvariantSink sink;
  cfg.trace = &sink;

  const auto res = run_once(cfg);

  // Actuators inside hardware ranges.
  EXPECT_GE(sink.min_core, 1000.0);
  EXPECT_LE(sink.max_core, 2800.0);
  EXPECT_GE(sink.min_uncore, 1200.0);
  EXPECT_LE(sink.max_uncore, 2400.0);

  // The cap never leaves [policy floor, hardware default].
  EXPECT_GE(sink.min_cap, 65.0 - 1e-6);
  EXPECT_LE(sink.max_cap, 125.0 + 1e-6);

  // Power plausible: above the idle floor, and the long-term average
  // must respect the budget even if instants exceed it briefly.
  EXPECT_GT(sink.min_power, 10.0);
  EXPECT_LT(sink.max_power, 160.0);  // short-term ceiling + slack
  EXPECT_LE(res.summary.avg_pkg_power_w, 126.5);

  // Progress is always forward.
  EXPECT_GT(sink.min_speed, 0.0);

  // Energy bookkeeping is exact.
  EXPECT_NEAR(res.summary.pkg_energy_j,
              res.summary.avg_pkg_power_w * res.summary.exec_seconds,
              1e-6 * res.summary.pkg_energy_j + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, InvariantSweep,
    ::testing::Combine(::testing::Values(PolicyMode::none, PolicyMode::duf,
                                         PolicyMode::dufp,
                                         PolicyMode::dufpf,
                                         PolicyMode::dnpc),
                       ::testing::Values(1, 2, 3)));

TEST(CounterInvariantsTest, CountersMonotoneThroughPolicyRun) {
  const auto& prof = workloads::profile(workloads::AppId::ft);
  RunConfig cfg;
  cfg.profile = &prof;
  cfg.machine.sockets = 1;
  cfg.seed = 9;
  cfg.mode = PolicyMode::dufp;
  cfg.tolerated_slowdown = 0.10;

  sim::SimulationOptions opts = cfg.sim;
  opts.seed = cfg.seed;
  sim::Simulation s(cfg.machine, prof, opts);
  perfmon::SimCounterSource src(s.socket(0), s.msr(0));

  std::uint64_t last_flops = 0;
  std::uint64_t last_bytes = 0;
  std::uint64_t last_aperf = 0;
  int ticks = 0;
  while (s.step() && ticks < 5000) {
    ++ticks;
    if (ticks % 100 != 0) continue;
    const auto flops = src.read(perfmon::Event::fp_ops);
    const auto bytes = src.read(perfmon::Event::dram_bytes);
    const auto aperf = src.read(perfmon::Event::aperf_cycles);
    ASSERT_GE(flops, last_flops);
    ASSERT_GE(bytes, last_bytes);
    ASSERT_GT(aperf, last_aperf);  // cycles always advance
    last_flops = flops;
    last_bytes = bytes;
    last_aperf = aperf;
  }
  EXPECT_GT(last_flops, 0ull);
}

}  // namespace
}  // namespace dufp::harness
