#include "faults/faulty_counter_source.h"

#include <gtest/gtest.h>

#include <array>

namespace dufp::faults {
namespace {

using perfmon::Event;
using perfmon::kEventCount;

/// Monotonic counters advancing by a fixed step per read; energy events
/// wrap at 1e9 like a small RAPL range.
class FakeSource final : public perfmon::CounterSource {
 public:
  std::uint64_t read(Event e) const override {
    const auto i = static_cast<std::size_t>(e);
    values_[i] += 1000;
    const std::uint64_t range = wrap_range(e);
    return range == 0 ? values_[i] : values_[i] % range;
  }
  std::uint64_t wrap_range(Event e) const override {
    return (e == Event::pkg_energy_uj || e == Event::dram_energy_uj)
               ? 1000000000ULL
               : 0ULL;
  }

 private:
  mutable std::array<std::uint64_t, kEventCount> values_{};
};

TEST(FaultyCounterSourceTest, DisarmedQuietOptionsArePassthrough) {
  FakeSource inner;
  FakeSource reference;
  FaultOptions opts;
  opts.enabled = true;  // no rates, no forced wrap
  FaultPlan plan(opts, Rng(1));
  FaultyCounterSource faulty(inner, plan);
  for (int i = 0; i < 100; ++i) {
    for (int e = 0; e < kEventCount; ++e) {
      EXPECT_EQ(faulty.read(static_cast<Event>(e)),
                reference.read(static_cast<Event>(e)));
    }
  }
  EXPECT_EQ(plan.stats().total(), 0u);
}

TEST(FaultyCounterSourceTest, DroppedSampleThrowsNamingTheEvent) {
  FakeSource inner;
  FaultOptions opts;
  opts.enabled = true;
  opts.dropped_sample = {1.0, 1};
  FaultPlan plan(opts, Rng(2));
  FaultyCounterSource faulty(inner, plan);
  faulty.arm();
  try {
    faulty.read(Event::fp_ops);
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("PAPI_DP_OPS"), std::string::npos);
  }
}

TEST(FaultyCounterSourceTest, StaleSampleRepeatsPreviousValue) {
  // The first read cannot be stale (no cached value yet); every later
  // read with the class firing repeats the cached one.
  FaultOptions stale;
  stale.enabled = true;
  stale.stale_sample = {1.0, 1};
  FakeSource inner;
  FaultPlan plan(stale, Rng(3));
  FaultyCounterSource faulty(inner, plan);
  faulty.arm();
  const std::uint64_t seed_read = faulty.read(Event::fp_ops);
  EXPECT_EQ(faulty.read(Event::fp_ops), seed_read);
  EXPECT_EQ(faulty.read(Event::fp_ops), seed_read);
  EXPECT_GE(plan.stats().count(FaultClass::stale_sample), 2u);
}

TEST(FaultyCounterSourceTest, ForcedWrapOffsetsOnlyWrappingEvents) {
  FakeSource inner;
  FakeSource reference;
  FaultOptions opts;
  opts.enabled = true;
  opts.force_energy_wrap = true;
  opts.energy_wrap_lead_j = 2.0;  // 2e6 uJ before the wrap
  FaultPlan plan(opts, Rng(4));
  FaultyCounterSource faulty(inner, plan);
  // Applied even before arm(): the offset is a deterministic relabelling
  // and must be consistent from the very first (baseline) read.
  const std::uint64_t range = 1000000000ULL;
  const std::uint64_t offset = range - 2000000ULL;
  const std::uint64_t got = faulty.read(Event::pkg_energy_uj);
  const std::uint64_t want = (reference.read(Event::pkg_energy_uj) + offset) % range;
  EXPECT_EQ(got, want);
  // Non-wrapping events untouched.
  EXPECT_EQ(faulty.read(Event::fp_ops), reference.read(Event::fp_ops));
}

TEST(FaultyCounterSourceTest, ForcedWrapActuallyWraps) {
  FakeSource inner;
  FaultOptions opts;
  opts.enabled = true;
  opts.force_energy_wrap = true;
  opts.energy_wrap_lead_j = 0.0015;  // 1500 uJ: wraps on the second read
  FaultPlan plan(opts, Rng(5));
  FaultyCounterSource faulty(inner, plan);
  const std::uint64_t before = faulty.read(Event::pkg_energy_uj);
  const std::uint64_t after = faulty.read(Event::pkg_energy_uj);
  EXPECT_LT(after, before);  // wrapped around zero
  // The delta across the wrap is still the true 1000-unit step.
  EXPECT_EQ(perfmon::counter_delta(before, after, 1000000000ULL), 1000u);
}

TEST(FaultyCounterSourceTest, WrapRangePassesThrough) {
  FakeSource inner;
  FaultOptions opts;
  opts.enabled = true;
  FaultPlan plan(opts, Rng(6));
  FaultyCounterSource faulty(inner, plan);
  EXPECT_EQ(faulty.wrap_range(Event::pkg_energy_uj), 1000000000ULL);
  EXPECT_EQ(faulty.wrap_range(Event::fp_ops), 0ULL);
}

}  // namespace
}  // namespace dufp::faults
