#include "faults/faulty_msr.h"

#include <gtest/gtest.h>

#include "msr/sim_msr.h"

namespace dufp::faults {
namespace {

using msr::MsrError;
using msr::SimulatedMsr;

constexpr std::uint32_t kReg = 0x620;

SimulatedMsr make_backend() {
  SimulatedMsr dev(4);
  dev.define_register(kReg, 0xABCD);
  return dev;
}

TEST(FaultyMsrTest, DisarmedIsPurePassthrough) {
  auto dev = make_backend();
  FaultPlan plan(FaultOptions::storm(1.0, 5), Rng(5));
  FaultyMsrDevice faulty(dev, plan);
  EXPECT_FALSE(faulty.armed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(faulty.read(0, kReg), 0xABCDu);
    EXPECT_NO_THROW(faulty.write(0, kReg, 0xABCD));
  }
  EXPECT_EQ(plan.stats().total(), 0u);
  EXPECT_EQ(faulty.core_count(), 4);
}

TEST(FaultyMsrTest, ReadEioThrowsMsrErrorWithRegister) {
  auto dev = make_backend();
  FaultOptions opts;
  opts.enabled = true;
  opts.read_eio = {1.0, 1};
  FaultPlan plan(opts, Rng(1));
  FaultyMsrDevice faulty(dev, plan);
  faulty.arm();
  try {
    faulty.read(0, kReg);
    FAIL() << "expected MsrError";
  } catch (const MsrError& e) {
    EXPECT_EQ(e.reg(), kReg);
    EXPECT_NE(std::string(e.what()).find("620"), std::string::npos);
  }
  EXPECT_EQ(plan.stats().count(FaultClass::read_eio), 1u);
}

TEST(FaultyMsrTest, BitFlipCorruptsExactlyOneBit) {
  auto dev = make_backend();
  FaultOptions opts;
  opts.enabled = true;
  opts.bit_flip = {1.0, 1};
  FaultPlan plan(opts, Rng(2));
  FaultyMsrDevice faulty(dev, plan);
  faulty.arm();
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t got = faulty.read(0, kReg);
    const std::uint64_t diff = got ^ 0xABCDu;
    EXPECT_NE(diff, 0u);
    EXPECT_EQ(diff & (diff - 1), 0u) << "more than one bit flipped";
  }
  // The backend itself was never corrupted.
  EXPECT_EQ(dev.peek(kReg), 0xABCDu);
}

TEST(FaultyMsrTest, WriteEpermBlocksTheStore) {
  auto dev = make_backend();
  FaultOptions opts;
  opts.enabled = true;
  opts.write_eperm = {1.0, 3};
  FaultPlan plan(opts, Rng(3));
  FaultyMsrDevice faulty(dev, plan);
  faulty.arm();
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW(faulty.write(0, kReg, 0x1), MsrError);
  }
  EXPECT_EQ(dev.peek(kReg), 0xABCDu);  // nothing reached the backend
  EXPECT_EQ(plan.stats().count(FaultClass::write_eperm), 3u);
}

TEST(FaultyMsrTest, WriteEioIsTransient) {
  auto dev = make_backend();
  FaultOptions opts;
  opts.enabled = true;
  opts.write_eio = {0.5, 1};
  FaultPlan plan(opts, Rng(4));
  FaultyMsrDevice faulty(dev, plan);
  faulty.arm();
  int failures = 0;
  int successes = 0;
  for (int i = 0; i < 200; ++i) {
    try {
      faulty.write(0, kReg, static_cast<std::uint64_t>(i));
      ++successes;
    } catch (const MsrError&) {
      ++failures;
    }
  }
  EXPECT_GT(failures, 0);
  EXPECT_GT(successes, 0);  // a 50% EIO rate lets retries through
}

TEST(FaultyMsrTest, LockedRegisterAlwaysFaultsOthersPass) {
  auto dev = make_backend();
  dev.define_register(0x610, 7);
  FaultOptions opts;
  opts.enabled = true;
  opts.locked_register = 0x610;
  FaultPlan plan(opts, Rng(6));
  FaultyMsrDevice faulty(dev, plan);
  faulty.arm();
  for (int i = 0; i < 10; ++i) {
    EXPECT_THROW(faulty.write(0, 0x610, 1), MsrError);
  }
  EXPECT_NO_THROW(faulty.write(0, kReg, 0x42));  // other registers fine
  EXPECT_EQ(dev.peek(0x610), 7u);
  EXPECT_EQ(dev.peek(kReg), 0x42u);
}

TEST(FaultyMsrTest, InnerErrorsStillPropagate) {
  auto dev = make_backend();
  FaultOptions opts;
  opts.enabled = true;
  FaultPlan plan(opts, Rng(8));
  FaultyMsrDevice faulty(dev, plan);
  faulty.arm();
  EXPECT_THROW(faulty.read(0, 0x9999), MsrError);   // unknown register
  EXPECT_THROW(faulty.read(99, kReg), MsrError);    // bad cpu index
}

}  // namespace
}  // namespace dufp::faults
