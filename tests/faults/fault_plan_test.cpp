#include "faults/fault_plan.h"

#include <gtest/gtest.h>

#include <vector>

namespace dufp::faults {
namespace {

TEST(FaultPlanTest, ZeroRatePlanNeverFiresAndDrawsNothing) {
  FaultOptions opts;
  opts.enabled = true;  // enabled but all rates zero
  FaultPlan plan(opts, Rng(42));
  for (int i = 0; i < 10000; ++i) {
    for (int c = 0; c < kFaultClassCount; ++c) {
      EXPECT_FALSE(plan.fire(static_cast<FaultClass>(c)));
    }
  }
  EXPECT_EQ(plan.stats().total(), 0u);

  // No RNG draw happened: the plan's stream is still at the start, in
  // lockstep with a fresh Rng of the same seed.  (flip_bit() is the only
  // way to observe the stream without injecting.)
  Rng fresh(42);
  FaultPlan probe(opts, Rng(42));
  for (int i = 0; i < 4; ++i) probe.fire(FaultClass::read_eio);
  EXPECT_EQ(probe.flip_bit(), static_cast<unsigned>(fresh.next_u64() & 63u));
}

TEST(FaultPlanTest, SameSeedSameDecisionSequence) {
  const FaultOptions opts = FaultOptions::storm(0.1, 99);
  FaultPlan a(opts, Rng(99));
  FaultPlan b(opts, Rng(99));
  for (int i = 0; i < 5000; ++i) {
    const auto c = static_cast<FaultClass>(i % kFaultClassCount);
    EXPECT_EQ(a.fire(c), b.fire(c)) << "diverged at op " << i;
  }
  EXPECT_EQ(a.stats().total(), b.stats().total());
  EXPECT_GT(a.stats().total(), 0u);  // a 10% storm over 5000 ops must hit
}

TEST(FaultPlanTest, DifferentSeedsDifferentSequences) {
  const FaultOptions opts = FaultOptions::storm(0.1, 0);
  FaultPlan a(opts, Rng(1));
  FaultPlan b(opts, Rng(2));
  int diverged = 0;
  for (int i = 0; i < 2000; ++i) {
    if (a.fire(FaultClass::read_eio) != b.fire(FaultClass::read_eio)) {
      ++diverged;
    }
  }
  EXPECT_GT(diverged, 0);
}

TEST(FaultPlanTest, BurstKeepsFiringWithoutNewDraws) {
  FaultOptions opts;
  opts.enabled = true;
  opts.write_eperm = {1.0, 5};  // always triggers, persists 5 ops
  FaultPlan plan(opts, Rng(7));
  // First op draws and triggers; the next four come from the burst.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(plan.fire(FaultClass::write_eperm)) << i;
  }
  EXPECT_EQ(plan.stats().count(FaultClass::write_eperm), 5u);
}

TEST(FaultPlanTest, BurstEndsAndRearms) {
  FaultOptions hot;
  hot.enabled = true;
  hot.read_eio = {1.0, 3};
  FaultPlan hot_plan(hot, Rng(7));
  EXPECT_TRUE(hot_plan.fire(FaultClass::read_eio));  // trigger, burst = 2
  EXPECT_TRUE(hot_plan.fire(FaultClass::read_eio));
  EXPECT_TRUE(hot_plan.fire(FaultClass::read_eio));
  // Burst exhausted; rate 1.0 immediately re-triggers (fresh draw).
  EXPECT_TRUE(hot_plan.fire(FaultClass::read_eio));
  EXPECT_EQ(hot_plan.stats().count(FaultClass::read_eio), 4u);
}

TEST(FaultPlanTest, BurstIsPerClass) {
  FaultOptions opts;
  opts.enabled = true;
  opts.read_eio = {1.0, 10};
  FaultPlan plan(opts, Rng(3));
  EXPECT_TRUE(plan.fire(FaultClass::read_eio));
  // An active read_eio burst must not leak into other classes.
  EXPECT_FALSE(plan.fire(FaultClass::write_eio));
  EXPECT_FALSE(plan.fire(FaultClass::stale_sample));
}

TEST(FaultPlanTest, StormPresetIsValidAndHot) {
  const auto opts = FaultOptions::storm(0.05, 11);
  EXPECT_TRUE(opts.validate().empty());
  EXPECT_TRUE(opts.enabled);
  EXPECT_TRUE(opts.any_fault());
  EXPECT_TRUE(opts.force_energy_wrap);
  EXPECT_DOUBLE_EQ(opts.read_eio.rate, 0.05);
  EXPECT_GT(opts.write_eperm.burst, 1);
}

TEST(FaultPlanTest, ValidateReportsEveryProblem) {
  FaultOptions opts;
  opts.read_eio = {-0.1, 1};
  opts.write_eio = {1.5, 1};
  opts.bit_flip = {0.1, 0};
  opts.force_energy_wrap = true;
  opts.energy_wrap_lead_j = -2.0;
  const auto problems = opts.validate();
  EXPECT_EQ(problems.size(), 4u);
  auto has = [&](const std::string& needle) {
    for (const auto& p : problems) {
      if (p.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("read_eio.rate"));
  EXPECT_TRUE(has("write_eio.rate"));
  EXPECT_TRUE(has("bit_flip.burst"));
  EXPECT_TRUE(has("energy_wrap_lead_j"));
}

TEST(FaultPlanTest, ConstructorRejectsInvalidOptions) {
  FaultOptions opts;
  opts.read_eio = {2.0, 1};
  EXPECT_THROW(FaultPlan(opts, Rng(0)), std::invalid_argument);
}

TEST(FaultPlanTest, DefaultOptionsAreQuiet) {
  const FaultOptions opts;
  EXPECT_FALSE(opts.enabled);
  EXPECT_FALSE(opts.any_fault());
  EXPECT_TRUE(opts.validate().empty());
}

TEST(FaultPlanTest, FaultClassNamesAreDistinct) {
  std::vector<std::string_view> names;
  for (int i = 0; i < kFaultClassCount; ++i) {
    names.push_back(fault_class_name(static_cast<FaultClass>(i)));
  }
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_NE(names[i], "unknown");
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
}

}  // namespace
}  // namespace dufp::faults
