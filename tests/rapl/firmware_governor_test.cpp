#include "rapl/firmware_governor.h"

#include <gtest/gtest.h>

#include "hwmodel/socket_model.h"

namespace dufp::rapl {
namespace {

hw::PhaseDemand hot_demand() {
  hw::PhaseDemand d;
  d.w_cpu = 0.9;
  d.w_mem = 0.05;
  d.w_unc = 0.0;
  d.w_fixed = 0.05;
  d.cpu_activity = 1.1;  // demands more than TDP at full clock
  d.mem_activity = 0.5;
  d.flops_rate_ref = 100e9;
  d.bytes_rate_ref = 10e9;
  return d;
}

class GovernorTest : public ::testing::Test {
 protected:
  GovernorTest() : socket_(cfg_, 0), gov_(socket_, params_) {}

  /// Runs the control loop for `ms` milliseconds against the socket.
  void run(int ms) {
    for (int i = 0; i < ms; ++i) {
      gov_.tick();
      const auto inst = socket_.evaluate();
      gov_.record_power(inst.pkg_power_w, 0.001);
    }
  }

  msr::PowerLimit limit(double both_w) {
    msr::PowerLimit pl;
    pl.long_term_w = both_w;
    pl.long_term_window_s = 1.0;
    pl.long_term_enabled = true;
    pl.short_term_w = both_w;
    pl.short_term_window_s = 0.01;
    pl.short_term_enabled = true;
    return pl;
  }

  hw::SocketConfig cfg_;
  GovernorParams params_;
  hw::SocketModel socket_;
  FirmwareGovernor gov_;
};

TEST_F(GovernorTest, StartsWithHardwareDefaults) {
  EXPECT_DOUBLE_EQ(gov_.limit().long_term_w, 125.0);
  EXPECT_DOUBLE_EQ(gov_.limit().short_term_w, 150.0);
  EXPECT_TRUE(gov_.limit().long_term_enabled);
}

TEST_F(GovernorTest, NoThrottlingWhenDemandBelowCap) {
  hw::PhaseDemand d = hot_demand();
  d.cpu_activity = 0.5;  // well under 125 W
  socket_.set_demand(d);
  run(500);
  EXPECT_DOUBLE_EQ(socket_.effective_core_mhz(), 2800.0);
}

TEST_F(GovernorTest, EnforcesTdpOnHotWorkload) {
  socket_.set_demand(hot_demand());
  run(2000);
  // Settled: long-window average must respect 125 W.
  EXPECT_LE(gov_.long_term_avg_w(), 125.0 + 1.0);
  EXPECT_LT(socket_.effective_core_mhz(), 2800.0);
}

TEST_F(GovernorTest, LowerCapLowersFrequency) {
  socket_.set_demand(hot_demand());
  gov_.set_limit(limit(100.0));
  run(2000);
  const double f100 = socket_.effective_core_mhz();
  gov_.set_limit(limit(80.0));
  run(2000);
  const double f80 = socket_.effective_core_mhz();
  EXPECT_LT(f80, f100);
  EXPECT_LE(gov_.long_term_avg_w(), 81.0);
}

TEST_F(GovernorTest, CapTakesTimeToBite) {
  // Sec. IV-D: the consumed power can exceed a freshly lowered cap for a
  // while — verify the settling takes at least a few milliseconds and
  // that power eventually complies.
  socket_.set_demand(hot_demand());
  run(1500);
  gov_.set_limit(limit(90.0));
  gov_.tick();
  const auto inst = socket_.evaluate();
  EXPECT_GT(inst.pkg_power_w, 90.0);  // not yet applied
  run(1500);
  EXPECT_LE(socket_.evaluate().pkg_power_w, 92.0);
}

TEST_F(GovernorTest, ThrottleSlewLimitsStepPerTick) {
  socket_.set_demand(hot_demand());
  run(100);
  const double before = gov_.current_limit_mhz();
  gov_.set_limit(limit(70.0));
  gov_.tick();
  EXPECT_GE(gov_.current_limit_mhz(),
            before - params_.throttle_slew_mhz - 1e-9);
}

TEST_F(GovernorTest, RecoversAfterCapRaise) {
  socket_.set_demand(hot_demand());
  gov_.set_limit(limit(80.0));
  run(2000);
  EXPECT_LT(socket_.effective_core_mhz(), 2500.0);
  gov_.set_limit(limit(200.0));
  run(3000);
  EXPECT_DOUBLE_EQ(socket_.effective_core_mhz(), 2800.0);
}

TEST_F(GovernorTest, ShortTermAllowsBurstsLongTermHolds) {
  // With a 150 W short-term and 125 W long-term, a cold start lets power
  // exceed 125 briefly, but the 1 s average converges below the limit.
  socket_.set_demand(hot_demand());
  double max_instant = 0.0;
  for (int i = 0; i < 3000; ++i) {
    gov_.tick();
    const auto inst = socket_.evaluate();
    max_instant = std::max(max_instant, inst.pkg_power_w);
    gov_.record_power(inst.pkg_power_w, 0.001);
  }
  EXPECT_GT(max_instant, 125.0);
  EXPECT_LE(gov_.long_term_avg_w(), 126.0);
}

TEST_F(GovernorTest, DisabledConstraintNotEnforced) {
  socket_.set_demand(hot_demand());
  msr::PowerLimit pl = limit(60.0);
  pl.long_term_enabled = false;
  pl.short_term_enabled = false;
  gov_.set_limit(pl);
  run(1000);
  EXPECT_DOUBLE_EQ(socket_.effective_core_mhz(), 2800.0);
}

TEST_F(GovernorTest, IdleSocketNeverThrottled) {
  socket_.set_demand(hw::PhaseDemand::make_idle());
  gov_.set_limit(limit(65.0));
  run(1000);
  EXPECT_DOUBLE_EQ(socket_.effective_core_mhz(), 2800.0);
}

}  // namespace
}  // namespace dufp::rapl
