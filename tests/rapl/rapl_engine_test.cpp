#include "rapl/rapl_engine.h"

#include <gtest/gtest.h>

#include "msr/registers.h"

namespace dufp::rapl {
namespace {

using namespace dufp::msr;

hw::PhaseDemand busy_demand() {
  hw::PhaseDemand d;
  d.w_cpu = 0.8;
  d.w_mem = 0.1;
  d.w_unc = 0.0;
  d.w_fixed = 0.1;
  d.cpu_activity = 1.0;
  d.mem_activity = 0.8;
  d.flops_rate_ref = 50e9;
  d.bytes_rate_ref = 30e9;
  return d;
}

class RaplEngineTest : public ::testing::Test {
 protected:
  RaplEngineTest() : socket_(cfg_, 0), dev_(cfg_.cores), engine_(socket_, dev_) {}

  void run(int ms) {
    for (int i = 0; i < ms; ++i) {
      engine_.tick();
      const auto inst = socket_.evaluate();
      socket_.accumulate(inst, 0.001);
      engine_.record(inst, 0.001);
    }
  }

  hw::SocketConfig cfg_;
  hw::SocketModel socket_;
  msr::SimulatedMsr dev_;
  RaplEngine engine_;
};

TEST_F(RaplEngineTest, InstallsExpectedRegisters) {
  for (std::uint32_t reg :
       {kMsrRaplPowerUnit, kMsrPkgPowerLimit, kMsrPkgEnergyStatus,
        kMsrPkgPowerInfo, kMsrDramPowerLimit, kMsrDramEnergyStatus,
        kMsrUncoreRatioLimit, kMsrUncorePerfStatus, kIa32Aperf,
        kIa32Mperf}) {
    EXPECT_TRUE(dev_.is_defined(reg)) << "reg 0x" << std::hex << reg;
  }
}

TEST_F(RaplEngineTest, UnitsAreSkylake) {
  const auto u = decode_rapl_units(dev_.read(0, kMsrRaplPowerUnit));
  EXPECT_EQ(u.power_unit_bits, 3u);
  EXPECT_EQ(u.energy_unit_bits, 14u);
}

TEST_F(RaplEngineTest, DefaultLimitMatchesTableI) {
  const auto pl = engine_.package_limit();
  EXPECT_DOUBLE_EQ(pl.long_term_w, 125.0);
  EXPECT_DOUBLE_EQ(pl.short_term_w, 150.0);
  EXPECT_TRUE(pl.long_term_enabled);
  EXPECT_TRUE(pl.short_term_enabled);
}

TEST_F(RaplEngineTest, PowerInfoReportsTdp) {
  const auto info =
      decode_power_info(dev_.read(0, kMsrPkgPowerInfo), engine_.units());
  EXPECT_DOUBLE_EQ(info.tdp_w, 125.0);
}

TEST_F(RaplEngineTest, WritingLimitMsrReprogramsGovernor) {
  PowerLimit pl = engine_.package_limit();
  pl.long_term_w = 95.0;
  pl.short_term_w = 95.0;
  dev_.write(0, kMsrPkgPowerLimit, encode_power_limit(pl, engine_.units()));
  EXPECT_DOUBLE_EQ(engine_.governor().limit().long_term_w, 95.0);

  socket_.set_demand(busy_demand());
  run(2000);
  EXPECT_LE(socket_.evaluate().pkg_power_w, 96.5);
}

TEST_F(RaplEngineTest, EnergyCounterAdvancesWithConsumption) {
  socket_.set_demand(busy_demand());
  const auto before = dev_.read(0, kMsrPkgEnergyStatus);
  run(500);  // 0.5 s at ~115 W -> ~57 J
  const auto after = dev_.read(0, kMsrPkgEnergyStatus);
  const double joules =
      energy_counter_delta(static_cast<std::uint32_t>(before),
                           static_cast<std::uint32_t>(after),
                           engine_.units());
  EXPECT_NEAR(joules, socket_.pkg_energy_j(), 0.01);
  EXPECT_GT(joules, 20.0);
}

TEST_F(RaplEngineTest, DramEnergyCounterAdvances) {
  socket_.set_demand(busy_demand());
  run(500);
  const auto raw = dev_.read(0, kMsrDramEnergyStatus);
  EXPECT_GT(raw, 0ull);
  const double joules = static_cast<double>(raw) *
                        engine_.units().joules_per_unit();
  EXPECT_NEAR(joules, socket_.dram_energy_j(), 0.01);
}

TEST_F(RaplEngineTest, UncoreRatioWriteClampsSocketWindow) {
  UncoreRatioLimit lim;
  lim.min_ratio = 16;
  lim.max_ratio = 16;
  dev_.write(0, kMsrUncoreRatioLimit, encode_uncore_ratio_limit(lim));
  socket_.set_demand(busy_demand());
  EXPECT_DOUBLE_EQ(socket_.effective_uncore_mhz(), 1600.0);
}

TEST_F(RaplEngineTest, UncorePerfStatusReflectsEffectiveClock) {
  socket_.set_demand(busy_demand());
  EXPECT_EQ(decode_uncore_perf_status(dev_.read(0, kMsrUncorePerfStatus)),
            24u);
  UncoreRatioLimit lim;
  lim.min_ratio = 14;
  lim.max_ratio = 14;
  dev_.write(0, kMsrUncoreRatioLimit, encode_uncore_ratio_limit(lim));
  EXPECT_EQ(decode_uncore_perf_status(dev_.read(0, kMsrUncorePerfStatus)),
            14u);
}

TEST_F(RaplEngineTest, DramLimitAcceptedButInactive) {
  // The paper's platform has no DRAM capping; writes must stick in the
  // register but change nothing in enforcement.
  PowerLimit pl;
  pl.long_term_w = 10.0;
  pl.long_term_enabled = true;
  dev_.write(0, kMsrDramPowerLimit, encode_power_limit(pl, engine_.units()));
  socket_.set_demand(busy_demand());
  run(200);
  EXPECT_GT(socket_.evaluate().dram_power_w, 10.0);
}

TEST_F(RaplEngineTest, AperfMperfReadable) {
  socket_.set_demand(busy_demand());
  run(100);
  EXPECT_GT(dev_.read(0, kIa32Aperf), 0ull);
  EXPECT_GT(dev_.read(3, kIa32Mperf), 0ull);
}

}  // namespace
}  // namespace dufp::rapl
