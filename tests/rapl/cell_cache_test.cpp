// Unit tests for the process-wide shared cell-edge cache: interning,
// bit-pattern keying, first-writer-wins inserts, the enable gate, and
// clear() semantics.  The cache is a process singleton, so every test
// clears it first and restores the enable state it found — the suite
// must not leak warmth into (or absorb warmth from) neighbouring tests.
#include "rapl/cell_cache.h"

#include <gtest/gtest.h>

#include "hwmodel/socket_config.h"

namespace dufp::rapl {
namespace {

class SharedCellCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = cache().enabled();
    cache().set_enabled(true);
    cache().clear();
  }
  void TearDown() override {
    cache().clear();
    cache().set_enabled(was_enabled_);
  }
  static SharedCellCache& cache() { return SharedCellCache::instance(); }

  bool was_enabled_ = false;
};

hw::PhaseDemand demand(double w_cpu = 0.5) {
  hw::PhaseDemand d;
  d.w_cpu = w_cpu;
  d.w_mem = 0.3;
  d.w_unc = 0.1;
  d.w_fixed = 1.0 - w_cpu - 0.3 - 0.1;
  d.flops_rate_ref = 30.0;
  d.bytes_rate_ref = 20.0;
  d.cpu_activity = 0.8;
  d.mem_activity = 0.6;
  d.idle = false;
  return d;
}

TEST_F(SharedCellCacheTest, InternIsStableAndDeduplicates) {
  const hw::SocketConfig a;
  const std::uint32_t id1 = cache().intern_config(a);
  const std::uint32_t id2 = cache().intern_config(a);
  EXPECT_EQ(id1, id2) << "identical configs must intern to one id";

  hw::SocketConfig b;
  b.power.static_w += 1.0;
  EXPECT_NE(cache().intern_config(b), id1)
      << "a power-model change must split the cache";

  // model_name is deliberately not part of the identity.
  hw::SocketConfig renamed;
  renamed.model_name = "same part, new sticker";
  EXPECT_EQ(cache().intern_config(renamed), id1);
}

TEST_F(SharedCellCacheTest, LookupMissThenInsertThenHit) {
  const std::uint32_t id = cache().intern_config(hw::SocketConfig{});
  const auto key =
      SharedCellCache::make_key(id, /*idx=*/3, 1200.0, 2400.0, demand());

  double edge = 0.0;
  EXPECT_FALSE(cache().lookup(key, &edge));
  cache().insert(key, 87.5);
  ASSERT_TRUE(cache().lookup(key, &edge));
  EXPECT_EQ(edge, 87.5);

  const auto s = cache().stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.inserts, 1u);
}

TEST_F(SharedCellCacheTest, FirstWriterWins) {
  const std::uint32_t id = cache().intern_config(hw::SocketConfig{});
  const auto key =
      SharedCellCache::make_key(id, /*idx=*/1, 1200.0, 2400.0, demand());
  cache().insert(key, 50.0);
  cache().insert(key, 99.0);  // a racing build computed the same bits anyway
  double edge = 0.0;
  ASSERT_TRUE(cache().lookup(key, &edge));
  EXPECT_EQ(edge, 50.0);
  EXPECT_EQ(cache().stats().inserts, 1u);
}

TEST_F(SharedCellCacheTest, KeysAreBitPatternSensitive) {
  const std::uint32_t id = cache().intern_config(hw::SocketConfig{});
  // Any differing input word — the P-state index, the window, a demand
  // field, the idle flag — must produce a distinct key.
  const auto base =
      SharedCellCache::make_key(id, 2, 1200.0, 2400.0, demand(0.5));
  EXPECT_NE(base, SharedCellCache::make_key(id, 3, 1200.0, 2400.0,
                                            demand(0.5)));
  EXPECT_NE(base, SharedCellCache::make_key(id, 2, 1300.0, 2400.0,
                                            demand(0.5)));
  EXPECT_NE(base, SharedCellCache::make_key(id, 2, 1200.0, 2400.0,
                                            demand(0.6)));
  hw::PhaseDemand idle = demand(0.5);
  idle.idle = true;
  EXPECT_NE(base, SharedCellCache::make_key(id, 2, 1200.0, 2400.0, idle));
  // -0.0 and +0.0 compare equal as doubles but are different bit
  // patterns: the cache must treat them as distinct (conservative — a
  // duplicate build, never a wrong edge).
  EXPECT_NE(SharedCellCache::make_key(id, 2, 0.0, 2400.0, demand(0.5)),
            SharedCellCache::make_key(id, 2, -0.0, 2400.0, demand(0.5)));
}

TEST_F(SharedCellCacheTest, DisabledCacheServesNothing) {
  const std::uint32_t id = cache().intern_config(hw::SocketConfig{});
  const auto key =
      SharedCellCache::make_key(id, 4, 1200.0, 2400.0, demand());
  cache().set_enabled(false);
  cache().insert(key, 42.0);
  double edge = 0.0;
  EXPECT_FALSE(cache().lookup(key, &edge));
  cache().set_enabled(true);
  EXPECT_FALSE(cache().lookup(key, &edge))
      << "a disabled-era insert must have been dropped";
}

TEST_F(SharedCellCacheTest, ClearDropsEdgesButKeepsConfigIds) {
  const std::uint32_t id = cache().intern_config(hw::SocketConfig{});
  const auto key =
      SharedCellCache::make_key(id, 5, 1200.0, 2400.0, demand());
  cache().insert(key, 13.0);
  cache().clear();
  double edge = 0.0;
  EXPECT_FALSE(cache().lookup(key, &edge));
  EXPECT_EQ(cache().stats().entries, 0u);
  // Interned ids survive a clear — governors hold them for the process
  // lifetime, and recycling one would alias configs under stale keys.
  EXPECT_EQ(cache().intern_config(hw::SocketConfig{}), id);
}

}  // namespace
}  // namespace dufp::rapl
