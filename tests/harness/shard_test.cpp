// The sharded execution layer's determinism contract: the same grid run
// serially, as 1 shard, as 3 shards, or in dynamic chunk-claiming mode
// produces byte-identical Evaluation CSV and telemetry export bytes —
// clean and under a fault storm — and malformed shard input is rejected
// loudly, never silently partially merged.
#include "harness/shard.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "harness/shard_codec.h"

namespace dufp::harness {
namespace {

GridSpec small_spec() {
  GridSpec spec;
  spec.name = "shard-test";
  spec.apps = {workloads::AppId::cg};
  spec.policies = {"DUF", "DUFP"};
  spec.tolerances = {0.10};
  spec.repetitions = 3;  // 3 cells (baseline + 2 modes x 1 tol) x 3 = 9 jobs
  spec.seed = 5;
  spec.sockets = 2;
  spec.telemetry = true;
  return spec;
}

GridSpec storm_spec() {
  GridSpec spec = small_spec();
  spec.name = "shard-test-storm";
  spec.fault_rate = 0.02;
  spec.fault_seed = 9;
  return spec;
}

std::string temp_path(const std::string& tag) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + info->test_suite_name() + "_" + info->name() +
         "_" + tag;
}

/// Runs one shard to a temp file and returns its path.
std::string run_shard_file(const GridSpec& spec, const ShardRunOptions& opts,
                           const std::string& tag) {
  const std::string path = temp_path(tag + ".jsonl");
  std::ofstream out(path, std::ios::binary);
  run_shard(spec, opts, out);
  return path;
}

std::vector<std::string> run_static_shards(const GridSpec& spec, int shards) {
  std::vector<std::string> files;
  for (int k = 0; k < shards; ++k) {
    ShardRunOptions opts;
    opts.shard = k;
    opts.shards = shards;
    files.push_back(
        run_shard_file(spec, opts, "s" + std::to_string(shards) + "_" +
                                       std::to_string(k)));
  }
  return files;
}

/// Every deterministic byte a gathered grid produces, concatenated:
/// the Evaluation CSV, the merged job-labelled Prometheus exposition,
/// and job 0's full telemetry snapshot (codec serialization).
std::string output_bytes(const GridOutputs& out) {
  std::string bytes = out.evaluation_csv;
  bytes += '\x1f';
  bytes += out.merged_prometheus;
  bytes += '\x1f';
  if (out.job0_telemetry.has_value()) {
    bytes += encode_snapshot(*out.job0_telemetry).dump();
  }
  return bytes;
}

void expect_all_modes_identical(const GridSpec& spec) {
  const std::string serial = output_bytes(run_grid_serial(spec));
  ASSERT_FALSE(serial.empty());

  const auto one = run_static_shards(spec, 1);
  EXPECT_EQ(output_bytes(finalize_grid(spec, gather_shards(spec, one))),
            serial)
      << "1-shard gather drifted from serial";

  const auto three = run_static_shards(spec, 3);
  EXPECT_EQ(output_bytes(finalize_grid(spec, gather_shards(spec, three))),
            serial)
      << "3-shard gather drifted from serial";

  // Dynamic chunk-claiming: two workers race on a shared claim
  // directory; whichever chunks each wins, the union must gather to the
  // same bytes.
  const std::string claim_dir = temp_path("claims");
  std::filesystem::remove_all(claim_dir);  // stale claims break reruns
  std::filesystem::create_directories(claim_dir);
  FileChunkClaimer claimer(claim_dir);
  std::vector<std::string> dynamic;
  for (int k = 0; k < 2; ++k) {
    ShardRunOptions opts;
    opts.shard = k;
    opts.shards = 2;
    opts.chunk_size = 2;
    opts.claimer = &claimer;
    dynamic.push_back(run_shard_file(spec, opts, "dyn" + std::to_string(k)));
  }
  EXPECT_EQ(output_bytes(finalize_grid(spec, gather_shards(spec, dynamic))),
            serial)
      << "dynamic-chunk gather drifted from serial";
}

TEST(ShardDeterminismTest, SerialOneShardThreeShardDynamicIdentical) {
  expect_all_modes_identical(small_spec());
}

TEST(ShardDeterminismTest, IdenticalUnderFaultStorm) {
  expect_all_modes_identical(storm_spec());
}

TEST(ShardSpecTest, CanonicalTextRoundTripsAndFingerprintIsStable) {
  const GridSpec spec = storm_spec();
  const GridSpec back = GridSpec::parse(spec.canonical_text());
  EXPECT_EQ(back.canonical_text(), spec.canonical_text());
  EXPECT_EQ(back.fingerprint(), spec.fingerprint());
  // Any spec field change must change the fingerprint (shard files from
  // a different grid must not gather).
  GridSpec other = spec;
  other.seed = 6;
  EXPECT_NE(other.fingerprint(), spec.fingerprint());
}

TEST(ShardSpecTest, RejectsInvalidSpecs) {
  GridSpec spec = small_spec();
  spec.policies = {"default"};
  EXPECT_THROW(GridSpec::parse(spec.canonical_text()), std::runtime_error);
  EXPECT_THROW(GridSpec::parse("{\"format\":\"other\"}"), std::runtime_error);
}

TEST(ShardSpecTest, AggregatesUnknownAndDuplicatePolicyProblems) {
  GridSpec spec = small_spec();
  spec.policies = {"DUF", "duf", "sasquatch"};
  try {
    GridSpec::parse(spec.canonical_text());
    FAIL() << "expected an aggregated policy-list error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("duplicate policy \"duf\""), std::string::npos)
        << what;
    EXPECT_NE(what.find("unknown policy \"sasquatch\""), std::string::npos)
        << what;
    EXPECT_NE(what.find("known:"), std::string::npos) << what;
  }
}

TEST(ShardSpecTest, ParseCanonicalizesAliasSpellings) {
  GridSpec spec = small_spec();
  spec.policies = {"dufpf", "Cuttlefish"};
  const GridSpec back = GridSpec::parse(spec.canonical_text());
  EXPECT_EQ(back.policies, (std::vector<std::string>{"DUFP-F", "cuttlefish"}));
}

TEST(ShardSpecTest, ReferenceFingerprintIsFrozen) {
  // The reference spec's canonical bytes are a wire contract: shard files
  // stamp this fingerprint, and a gatherer from another build must agree.
  // The policy-registry redesign kept the JSON key "modes" and the
  // canonical names precisely so these bytes never moved.
  const GridSpec spec = GridSpec::reference();
  EXPECT_EQ(spec.canonical_text(),
            "{\"format\":\"dufp-grid-spec\",\"version\":1,"
            "\"name\":\"reference\",\"apps\":[\"CG\",\"EP\"],"
            "\"modes\":[\"DUF\",\"DUFP\"],"
            "\"tolerances\":[0.050000000000000003,0.10000000000000001],"
            "\"repetitions\":3,\"seed\":1,\"sockets\":4,\"fault_rate\":0,"
            "\"fault_seed\":0,\"telemetry\":false}");
  EXPECT_EQ(strf("%016llx",
                 static_cast<unsigned long long>(spec.fingerprint())),
            "21edcce3c4c0b5a6");
}

TEST(ShardAssignTest, StaticRoundRobinPartitionsEveryJobExactlyOnce) {
  std::vector<int> owner(10, -1);
  for (int k = 0; k < 3; ++k) {
    for (const std::size_t j : shard_jobs_static(10, 3, k)) {
      ASSERT_LT(j, owner.size());
      EXPECT_EQ(owner[j], -1) << "job " << j << " assigned twice";
      owner[j] = k;
      EXPECT_EQ(j % 3, static_cast<std::size_t>(k));  // round-robin
    }
  }
  for (std::size_t j = 0; j < owner.size(); ++j) {
    EXPECT_NE(owner[j], -1) << "job " << j << " unassigned";
  }
  EXPECT_THROW(shard_jobs_static(10, 3, 3), std::invalid_argument);
  EXPECT_THROW(shard_jobs_static(10, 0, 0), std::invalid_argument);
}

TEST(ShardAssignTest, FileChunkClaimerClaimsEachChunkOnce) {
  const std::string dir = temp_path("claims");
  std::filesystem::remove_all(dir);  // stale claims break reruns
  std::filesystem::create_directories(dir);
  FileChunkClaimer a(dir);
  FileChunkClaimer b(dir);  // a second cooperating worker
  EXPECT_TRUE(a.try_claim(0));
  EXPECT_FALSE(b.try_claim(0));
  EXPECT_FALSE(a.try_claim(0));
  EXPECT_TRUE(b.try_claim(1));
  EXPECT_FALSE(a.try_claim(1));
}

// -- malformed input ---------------------------------------------------------

class ShardGatherErrorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = small_spec();
    spec_.telemetry = false;  // keep the error-path fixtures fast
    ShardRunOptions opts;
    file_ = run_shard_file(spec_, opts, "whole");
    std::ifstream in(file_, std::ios::binary);
    std::string line;
    while (std::getline(in, line)) lines_.push_back(line);
    ASSERT_GE(lines_.size(), 2u);
  }

  std::string write_lines(const std::vector<std::string>& lines,
                          const std::string& tag) {
    const std::string path = temp_path(tag + ".jsonl");
    std::ofstream out(path, std::ios::binary);
    for (const auto& l : lines) out << l << '\n';
    return path;
  }

  void expect_gather_error(const std::vector<std::string>& files,
                           const std::string& needle) {
    try {
      gather_shards(spec_, files);
      FAIL() << "expected std::runtime_error containing '" << needle << "'";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "actual error: " << e.what();
    }
  }

  GridSpec spec_;
  std::string file_;
  std::vector<std::string> lines_;  // header + one line per job
};

TEST_F(ShardGatherErrorTest, MalformedJsonNamesFileAndLine) {
  auto lines = lines_;
  lines[1] = "{\"job\":0,\"result\":{broken";
  expect_gather_error({write_lines(lines, "malformed")}, "2:");
}

TEST_F(ShardGatherErrorTest, TruncatedFileReportsMissingJobs) {
  auto lines = lines_;
  lines.resize(lines.size() - 2);  // drop the last two job records
  expect_gather_error({write_lines(lines, "truncated")}, "missing");
}

TEST_F(ShardGatherErrorTest, DuplicateJobRejected) {
  expect_gather_error({file_, file_}, "already gathered");
}

TEST_F(ShardGatherErrorTest, FingerprintMismatchRejected) {
  GridSpec other = spec_;
  other.seed = 99;
  try {
    gather_shards(other, {file_});
    FAIL() << "expected fingerprint mismatch";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("fingerprint"), std::string::npos);
  }
}

TEST_F(ShardGatherErrorTest, MissingHeaderRejected) {
  auto lines = lines_;
  lines.erase(lines.begin());  // job records with no header
  expect_gather_error({write_lines(lines, "headerless")}, "format");
  expect_gather_error({write_lines({}, "empty")}, "empty");
}

TEST_F(ShardGatherErrorTest, OutOfRangeJobRejected) {
  auto lines = lines_;
  // Rewrite a record's job index beyond the plan.
  const auto pos = lines[1].find("\"job\":");
  ASSERT_NE(pos, std::string::npos);
  lines[1].replace(pos, std::string("\"job\":0").size(), "\"job\":99");
  expect_gather_error({write_lines(lines, "range")}, "out of range");
}

// -- codec -------------------------------------------------------------------

TEST(ShardCodecTest, RunResultRoundTripsBitExactly) {
  GridSpec spec = storm_spec();
  const GridPlan gp = build_plan(spec);
  const auto results = gp.plan.run_jobs({0}, 1);
  const RunResult& r = results[0];
  const RunResult back =
      decode_run_result(json::parse(encode_run_result(r).dump()));

  EXPECT_EQ(back.summary.exec_seconds, r.summary.exec_seconds);
  EXPECT_EQ(back.summary.pkg_energy_j, r.summary.pkg_energy_j);
  EXPECT_EQ(back.summary.total_gflop, r.summary.total_gflop);
  EXPECT_EQ(back.health.faults_injected, r.health.faults_injected);
  ASSERT_EQ(back.agent_stats.size(), r.agent_stats.size());
  ASSERT_EQ(back.fault_stats.size(), r.fault_stats.size());
  for (std::size_t i = 0; i < r.fault_stats.size(); ++i) {
    EXPECT_EQ(back.fault_stats[i].injected, r.fault_stats[i].injected);
  }
  ASSERT_EQ(back.phase_totals.size(), r.phase_totals.size());
  for (const auto& [name, t] : r.phase_totals) {
    const auto it = back.phase_totals.find(name);
    ASSERT_NE(it, back.phase_totals.end());
    EXPECT_EQ(it->second.wall_seconds, t.wall_seconds);
    EXPECT_EQ(it->second.pkg_energy_j, t.pkg_energy_j);
  }
  ASSERT_EQ(back.telemetry.has_value(), r.telemetry.has_value());
  if (r.telemetry.has_value()) {
    // Byte-compare the snapshots through the codec's own serialization.
    EXPECT_EQ(encode_snapshot(*back.telemetry).dump(),
              encode_snapshot(*r.telemetry).dump());
  }
}

}  // namespace
}  // namespace dufp::harness
