// The parallel experiment engine's core guarantee: an ExperimentPlan run
// with 1 thread and with N threads produces bit-identical results.
#include "harness/plan.h"

#include <gtest/gtest.h>

#include <set>

#include "workloads/profiles.h"

namespace dufp::harness {
namespace {

RunConfig cg_config(PolicyMode mode = PolicyMode::none,
                    double tol = 0.0) {
  RunConfig cfg;
  cfg.profile = &workloads::profile(workloads::AppId::cg);
  cfg.machine.sockets = 1;  // short runs keep the tier-1 suite fast
  cfg.seed = 23;
  cfg.mode = mode;
  cfg.tolerated_slowdown = tol;
  return cfg;
}

void expect_identical(const TrimmedSummary& a, const TrimmedSummary& b) {
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.used, b.used);
}

void expect_identical(const RepeatedResult& a, const RepeatedResult& b) {
  EXPECT_EQ(a.runs, b.runs);
  expect_identical(a.exec_seconds, b.exec_seconds);
  expect_identical(a.avg_pkg_power_w, b.avg_pkg_power_w);
  expect_identical(a.avg_dram_power_w, b.avg_dram_power_w);
  expect_identical(a.pkg_energy_j, b.pkg_energy_j);
  expect_identical(a.dram_energy_j, b.dram_energy_j);
  expect_identical(a.total_energy_j, b.total_energy_j);
  ASSERT_EQ(a.mean_phase_totals.size(), b.mean_phase_totals.size());
  for (const auto& [name, t] : a.mean_phase_totals) {
    const auto it = b.mean_phase_totals.find(name);
    ASSERT_NE(it, b.mean_phase_totals.end()) << name;
    EXPECT_EQ(t.wall_seconds, it->second.wall_seconds);
    EXPECT_EQ(t.pkg_energy_j, it->second.pkg_energy_j);
    EXPECT_EQ(t.dram_energy_j, it->second.dram_energy_j);
  }
}

TEST(JobSeedTest, DeterministicAndDistinct) {
  EXPECT_EQ(job_seed(23, 0), job_seed(23, 0));
  std::set<std::uint64_t> seeds;
  for (int r = 0; r < 64; ++r) seeds.insert(job_seed(23, r));
  EXPECT_EQ(seeds.size(), 64u);  // no collisions across repetitions
  EXPECT_NE(job_seed(23, 0), job_seed(24, 0));  // base seed matters
}

TEST(PlanTest, EnumeratesJobsUpFront) {
  ExperimentPlan plan;
  plan.add_cell(cg_config(), 4);
  plan.add_cell(cg_config(PolicyMode::dufp, 0.10), 3);
  EXPECT_EQ(plan.cell_count(), 2u);
  EXPECT_EQ(plan.job_count(), 7u);
  EXPECT_FALSE(plan.finished());
  EXPECT_THROW(plan.result(0), std::logic_error);
}

TEST(PlanTest, JobEnumerationOrderIsTheDocumentedContract) {
  // Cell-major in add_cell order, repetition-minor (0..reps-1) — the
  // shard layer assigns jobs to shards by index and the gather merges by
  // index, so this ordering is a cross-process wire contract.
  ExperimentPlan plan;
  plan.add_cell(cg_config(), 3);
  plan.add_cell(cg_config(PolicyMode::dufp, 0.10), 2);
  ASSERT_EQ(plan.job_count(), 5u);
  const ExperimentPlan::CellId want_cell[] = {0, 0, 0, 1, 1};
  const int want_rep[] = {0, 1, 2, 0, 1};
  for (std::size_t i = 0; i < plan.job_count(); ++i) {
    EXPECT_EQ(plan.job(i).cell, want_cell[i]) << "job " << i;
    EXPECT_EQ(plan.job(i).repetition, want_rep[i]) << "job " << i;
  }
}

TEST(PlanTest, JobConfigAppliesTheDerivedSeed) {
  ExperimentPlan plan;
  plan.add_cell(cg_config(), 2);
  // job_config is the single seed-derivation point: a job's seed is a
  // pure function of (cell base seed, repetition), never of placement.
  EXPECT_EQ(plan.job_config(0).seed, job_seed(23, 0));
  EXPECT_EQ(plan.job_config(1).seed, job_seed(23, 1));
  EXPECT_EQ(plan.job_config(0).mode, PolicyMode::none);
  EXPECT_THROW(plan.job_config(2), std::out_of_range);
}

TEST(PlanTest, RunJobsPlusFinishWithEqualsRun) {
  // The gather path in miniature: execute the jobs in two disjoint
  // slices (out of order), reassemble by index, and finish the plan —
  // bit-identical to plan.run().
  auto build = [] {
    ExperimentPlan plan;
    plan.add_cell(cg_config(), 3);
    plan.add_cell(cg_config(PolicyMode::dufp, 0.10), 2);
    return plan;
  };
  ExperimentPlan whole = build();
  whole.run(1);

  ExperimentPlan sharded = build();
  const auto odd = sharded.run_jobs({3, 1}, 1);
  const auto even = sharded.run_jobs({0, 2, 4}, 1);
  std::vector<RunResult> merged(5);
  merged[3] = odd[0];
  merged[1] = odd[1];
  merged[0] = even[0];
  merged[2] = even[1];
  merged[4] = even[2];
  sharded.finish_with(std::move(merged));

  expect_identical(whole.result(0), sharded.result(0));
  expect_identical(whole.result(1), sharded.result(1));
}

TEST(PlanTest, FinishWithRejectsSizeMismatch) {
  ExperimentPlan plan;
  plan.add_cell(cg_config(), 2);
  std::vector<RunResult> too_few(1);
  EXPECT_THROW(plan.finish_with(std::move(too_few)), std::invalid_argument);
}

TEST(PlanTest, SerialAndParallelBitIdentical) {
  // The tentpole guarantee, on a short CG run: baseline + DUFP cells,
  // 4 repetitions, 1 worker vs 4 workers.
  auto build = [] {
    ExperimentPlan plan;
    plan.add_cell(cg_config(), 4);
    plan.add_cell(cg_config(PolicyMode::dufp, 0.10), 4);
    return plan;
  };
  ExperimentPlan serial = build();
  serial.run(1);
  ExperimentPlan parallel = build();
  parallel.run(4);

  expect_identical(serial.result(0), parallel.result(0));
  expect_identical(serial.result(1), parallel.result(1));
}

TEST(PlanTest, RunRepeatedIsAThinWrapperOverThePlan) {
  ExperimentPlan plan;
  const auto id = plan.add_cell(cg_config(), 3);
  plan.run(2);
  expect_identical(plan.result(id), run_repeated(cg_config(), 3));
}

TEST(PlanTest, RepetitionSeedsDiffer) {
  ExperimentPlan plan;
  const auto id = plan.add_cell(cg_config(), 4);
  plan.run(4);
  // Distinct derived seeds -> jitter makes the error bars non-degenerate.
  EXPECT_GT(plan.result(id).exec_seconds.max,
            plan.result(id).exec_seconds.min);
}

TEST(PlanTest, AddCellReportsEveryProblemAtOnce) {
  RunConfig bad;  // null profile
  bad.tolerated_slowdown = -0.5;
  bad.policy.interval = SimTime::from_millis(0);
  ExperimentPlan plan;
  try {
    plan.add_cell(bad, 2);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("profile is required"), std::string::npos) << msg;
    EXPECT_NE(msg.find("tolerated_slowdown"), std::string::npos) << msg;
    EXPECT_NE(msg.find("policy.interval"), std::string::npos) << msg;
  }
  EXPECT_THROW(plan.add_cell(cg_config(), 0), std::invalid_argument);
}

}  // namespace
}  // namespace dufp::harness
