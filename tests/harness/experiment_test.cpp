#include "harness/experiment.h"

#include <gtest/gtest.h>

namespace dufp::harness {
namespace {

TEST(ExperimentTest, PaperTolerances) {
  EXPECT_EQ(paper_tolerances(),
            (std::vector<double>{0.0, 0.05, 0.10, 0.20}));
}

TEST(ExperimentTest, DefaultRunConfigWiresProfile) {
  const auto& prof = workloads::profile(workloads::AppId::ep);
  const auto cfg = default_run_config(prof);
  EXPECT_EQ(cfg.profile, &prof);
  EXPECT_GE(cfg.machine.sockets, 1);
}

TEST(ExperimentTest, EvaluationDerivedMetrics) {
  // Build a tiny evaluation by hand and check the percentage math.
  RepeatedResult base;
  base.exec_seconds.mean = 100.0;
  base.avg_pkg_power_w.mean = 400.0;
  base.avg_dram_power_w.mean = 80.0;
  base.total_energy_j.mean = 48'000.0;

  RepeatedResult dufp;
  dufp.exec_seconds.mean = 105.0;
  dufp.exec_seconds.min = 104.0;
  dufp.exec_seconds.max = 106.0;
  dufp.avg_pkg_power_w.mean = 360.0;
  dufp.avg_dram_power_w.mean = 76.0;
  dufp.total_energy_j.mean = 45'600.0;

  EvaluationCell cell;
  cell.policy = "DUFP";
  cell.tolerance = 0.10;
  cell.result = dufp;
  Evaluation eval(workloads::AppId::cg, base, {cell});

  EXPECT_NEAR(eval.slowdown_pct(PolicyMode::dufp, 0.10), 5.0, 1e-9);
  EXPECT_NEAR(eval.slowdown_pct_min(PolicyMode::dufp, 0.10), 4.0, 1e-9);
  EXPECT_NEAR(eval.slowdown_pct_max(PolicyMode::dufp, 0.10), 6.0, 1e-9);
  EXPECT_NEAR(eval.pkg_power_savings_pct(PolicyMode::dufp, 0.10), 10.0,
              1e-9);
  EXPECT_NEAR(eval.dram_power_savings_pct(PolicyMode::dufp, 0.10), 5.0,
              1e-9);
  EXPECT_NEAR(eval.energy_change_pct(PolicyMode::dufp, 0.10), -5.0, 1e-9);
}

TEST(ExperimentTest, MissingCellThrows) {
  RepeatedResult base;
  base.exec_seconds.mean = 1.0;
  Evaluation eval(workloads::AppId::cg, base, {});
  EXPECT_THROW(eval.at(PolicyMode::duf, 0.05), std::invalid_argument);
}

TEST(ExperimentTest, EvaluateAppEndToEndSmallGrid) {
  // One app, one mode, one tolerance, two repetitions — a smoke test of
  // the full grid machinery (the figure benches run the real thing).
  setenv("DUFP_SOCKETS", "1", 1);
  setenv("DUFP_QUIET", "1", 1);
  const auto eval =
      evaluate_app(workloads::AppId::ep, {PolicyMode::duf}, {0.10}, 2, 3);
  unsetenv("DUFP_SOCKETS");
  unsetenv("DUFP_QUIET");

  // EP under DUF: significant power savings, tiny slowdown.
  EXPECT_GT(eval.pkg_power_savings_pct(PolicyMode::duf, 0.10), 8.0);
  EXPECT_LT(eval.slowdown_pct(PolicyMode::duf, 0.10), 5.0);
}

}  // namespace
}  // namespace dufp::harness
