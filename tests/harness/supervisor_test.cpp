// The ShardSupervisor's fork/monitor/restart machinery, driven through
// the child_override test seam (which replaces the worker body with a
// scripted exit code), plus the end-to-end crash drill: a seeded-chaos
// supervised run — workers SIGKILLing themselves mid-record — recovers
// via lease reclaim, restart, salvage, and resume to bytes identical
// to a serial run, clean and under a fault storm.
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "harness/shard.h"
#include "harness/shard_codec.h"
#include "harness/supervisor.h"

namespace dufp::harness {
namespace {

namespace fs = std::filesystem;

GridSpec small_spec() {
  GridSpec spec;
  spec.name = "supervisor-test";
  spec.apps = {workloads::AppId::cg};
  spec.policies = {"DUF", "DUFP"};
  spec.tolerances = {0.10};
  spec.repetitions = 3;  // 3 cells x 3 reps = 9 jobs
  spec.seed = 5;
  spec.sockets = 2;
  spec.telemetry = true;
  return spec;
}

GridSpec storm_spec() {
  GridSpec spec = small_spec();
  spec.name = "supervisor-test-storm";
  spec.fault_rate = 0.02;
  spec.fault_seed = 9;
  return spec;
}

std::string temp_dir(const std::string& tag) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string dir = ::testing::TempDir() + info->test_suite_name() +
                          "_" + info->name() + "_" + tag;
  fs::remove_all(dir);  // stale markers break reruns
  fs::create_directories(dir);
  return dir;
}

SupervisorOptions base_options(const std::string& dir) {
  SupervisorOptions options;
  options.out_dir = dir;
  options.workers = 2;
  options.chunk_size = 2;
  options.backoff_base_seconds = 0.001;  // keep scripted tests snappy
  options.backoff_max_seconds = 0.002;
  return options;
}

std::string output_bytes(const GridOutputs& out) {
  std::string bytes = out.evaluation_csv;
  bytes += '\x1f';
  bytes += out.merged_prometheus;
  bytes += '\x1f';
  if (out.job0_telemetry.has_value()) {
    bytes += encode_snapshot(*out.job0_telemetry).dump();
  }
  return bytes;
}

TEST(SupervisorTest, CleanWorkersRunOnceAndAreNotRestarted) {
  SupervisorOptions options = base_options(temp_dir("out"));
  options.child_override = [](int, int) { return 0; };
  const SupervisorReport report =
      supervise_shard_run(small_spec(), options);
  ASSERT_EQ(report.attempts.size(), 2u);
  for (const auto& a : report.attempts) {
    EXPECT_EQ(a.exit_class, WorkerExitClass::clean);
  }
  EXPECT_EQ(report.restarts, 0);
  EXPECT_FALSE(report.fatal);
}

TEST(SupervisorTest, RetryableFailuresRestartUpToTheBudget) {
  SupervisorOptions options = base_options(temp_dir("out"));
  options.max_restarts = 2;
  // Every worker dies on attempts 0 and 1, then succeeds on attempt 2.
  options.child_override = [](int, int attempt) {
    return attempt < 2 ? 4 : 0;
  };
  const SupervisorReport report =
      supervise_shard_run(small_spec(), options);
  ASSERT_EQ(report.attempts.size(), 6u);  // 2 workers x 3 attempts
  EXPECT_EQ(report.restarts, 4);
  int clean = 0;
  for (const auto& a : report.attempts) {
    clean += a.exit_class == WorkerExitClass::clean ? 1 : 0;
  }
  EXPECT_EQ(clean, 2);
  EXPECT_FALSE(report.fatal);
}

TEST(SupervisorTest, RestartBudgetExhaustionStopsHonestly) {
  SupervisorOptions options = base_options(temp_dir("out"));
  options.workers = 1;
  options.max_restarts = 1;
  options.child_override = [](int, int) { return 4; };  // never recovers
  const SupervisorReport report =
      supervise_shard_run(small_spec(), options);
  EXPECT_EQ(report.attempts.size(), 2u);  // initial + one restart
  EXPECT_FALSE(report.all_chunks_done);
  EXPECT_FALSE(report.fatal) << "exhaustion is incomplete, not fatal";
}

TEST(SupervisorTest, ConfigurationErrorsAreFatalNotRetried) {
  SupervisorOptions options = base_options(temp_dir("out"));
  options.workers = 1;
  options.max_restarts = 5;
  options.child_override = [](int, int) { return 3; };  // spec mismatch
  const SupervisorReport report =
      supervise_shard_run(small_spec(), options);
  ASSERT_EQ(report.attempts.size(), 1u) << "restarting a config error "
                                           "cannot help";
  EXPECT_EQ(report.attempts[0].exit_class, WorkerExitClass::fatal);
  EXPECT_TRUE(report.fatal);
  EXPECT_EQ(report.restarts, 0);
}

TEST(SupervisorTest, DeadWorkersLeasesAreReapedAndBlamedToPoison) {
  const std::string dir = temp_dir("out");
  SupervisorOptions options = base_options(dir);
  options.workers = 1;
  options.max_restarts = 1;
  options.poison_threshold = 2;
  // The scripted worker "holds" chunk 1's lease at death: plant a lease
  // owned by each attempt before it runs.  Attempt ids are w0.a0/w0.a1.
  std::ofstream(FileChunkClaimer::claim_path(dir, 1))
      << "owner=w0.a0\nheartbeat=00000000000000000001\n";
  options.child_override = [dir](int, int attempt) {
    if (attempt == 1) {
      std::ofstream(FileChunkClaimer::claim_path(dir, 1))
          << "owner=w0.a1\nheartbeat=00000000000000000001\n";
    }
    return 4;  // die holding the lease
  };
  const SupervisorReport report =
      supervise_shard_run(small_spec(), options);
  EXPECT_EQ(report.leases_released, 2);
  ASSERT_EQ(report.poisoned_chunks.size(), 1u)
      << "two deaths on one chunk must quarantine it";
  EXPECT_EQ(report.poisoned_chunks[0], 1);
  EXPECT_TRUE(fs::exists(FileChunkClaimer::poison_path(dir, 1)));
  EXPECT_FALSE(fs::exists(FileChunkClaimer::claim_path(dir, 1)))
      << "a reaped worker's lease must not wait out the TTL";
}

TEST(SupervisorTest, RejectsInvalidConfigurations) {
  SupervisorOptions options = base_options(temp_dir("out"));
  options.workers = 0;
  EXPECT_THROW(supervise_shard_run(small_spec(), options),
               std::invalid_argument);
  options = base_options(temp_dir("out2"));
  options.chunk_size = 0;
  EXPECT_THROW(supervise_shard_run(small_spec(), options),
               std::invalid_argument);
  options = base_options(temp_dir("out3"));
  options.out_dir += "/nope";
  EXPECT_THROW(supervise_shard_run(small_spec(), options),
               std::runtime_error);
}

// -- the end-to-end crash drill ---------------------------------------------

/// Supervised chaos run, then salvage + (if needed) in-process resume +
/// final gather; the result must be byte-identical to a serial run.
void expect_chaos_run_recovers(const GridSpec& spec) {
  const std::string serial = output_bytes(run_grid_serial(spec));
  const std::string dir = temp_dir("out");

  SupervisorOptions options = base_options(dir);
  options.max_restarts = 3;
  options.backoff_base_seconds = 0.001;
  options.chaos.kill_rate = 0.3;
  options.chaos.seed = 1;
  const SupervisorReport report = supervise_shard_run(spec, options);

  // The storm is real: the seeded schedule must actually have killed
  // workers (otherwise this test is testing nothing).
  int killed = 0;
  for (const auto& a : report.attempts) {
    killed += a.signal != 0 ? 1 : 0;
  }
  ASSERT_GT(killed, 0) << "chaos rate 0.3 must kill at least one worker";
  EXPECT_FALSE(report.fatal);

  GatherOptions gopts;
  gopts.partial = true;
  GatherReport gathered =
      gather_shards_report(spec, report.output_files, gopts);
  if (!gathered.complete()) {
    // Whatever the supervisor could not recover (poisoned chunks,
    // exhausted restarts) flows through the manifest + resume path.
    const RetryManifest manifest = make_retry_manifest(spec, gathered);
    const std::string rescue = dir + "/rescue.jsonl";
    {
      std::ofstream out(rescue, std::ios::binary);
      ShardRunOptions resume;
      resume.job_filter = &manifest.missing;
      run_shard(manifest.spec, resume, out);
    }
    std::vector<std::string> files = report.output_files;
    files.push_back(rescue);
    gathered = gather_shards_report(spec, files, gopts);
  }
  ASSERT_TRUE(gathered.complete());
  EXPECT_EQ(
      output_bytes(finalize_grid(spec, std::move(gathered.results))),
      serial)
      << "a killed-and-recovered run must gather to unfailed bytes";
}

TEST(SupervisorChaosTest, KilledWorkersRecoverToSerialBytes) {
  expect_chaos_run_recovers(small_spec());
}

TEST(SupervisorChaosTest, KilledWorkersRecoverToSerialBytesUnderFaultStorm) {
  expect_chaos_run_recovers(storm_spec());
}

}  // namespace
}  // namespace dufp::harness
