// Harness-level behaviour of the extension policy modes (DUFP-F, DNPC).
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/policy.h"
#include "harness/runner.h"
#include "workloads/profiles.h"

namespace dufp::harness {
namespace {

RunConfig config(workloads::AppId app, PolicyMode mode, double tol) {
  RunConfig cfg;
  cfg.profile = &workloads::profile(app);
  cfg.machine.sockets = 1;
  cfg.seed = 51;
  cfg.mode = mode;
  cfg.tolerated_slowdown = tol;
  return cfg;
}

TEST(ModesTest, ModeNamesForExtensions) {
  EXPECT_EQ(policy_mode_name(PolicyMode::dufpf), "DUFP-F");
  EXPECT_EQ(policy_mode_name(PolicyMode::dnpc), "DNPC");
}

TEST(ModesTest, OneEnumServesEveryLayer) {
  // The unified enum round-trips through its string forms.
  for (PolicyMode m : {PolicyMode::none, PolicyMode::duf, PolicyMode::dufp,
                       PolicyMode::dufpf, PolicyMode::dnpc}) {
    EXPECT_EQ(core::policy_mode_from_string(core::to_string(m)), m);
  }
  EXPECT_EQ(core::policy_mode_from_string("none"), PolicyMode::none);
  EXPECT_EQ(core::policy_mode_from_string("Default"), PolicyMode::none);
  EXPECT_EQ(core::policy_mode_from_string("dufpf"), PolicyMode::dufpf);
  EXPECT_EQ(core::policy_mode_from_string(" dufp "), PolicyMode::dufp);
  EXPECT_THROW(core::policy_mode_from_string("turbo"),
               std::invalid_argument);
}

TEST(ModesTest, DufpfActuallyPinsPstates) {
  const auto res =
      run_once(config(workloads::AppId::cg, PolicyMode::dufpf, 0.10));
  ASSERT_EQ(res.agent_stats.size(), 1u);
  EXPECT_GT(res.agent_stats[0].pstate_pins, 0u);
}

TEST(ModesTest, PlainDufpNeverTouchesPstates) {
  const auto res =
      run_once(config(workloads::AppId::cg, PolicyMode::dufp, 0.10));
  EXPECT_EQ(res.agent_stats[0].pstate_pins, 0u);
  EXPECT_EQ(res.agent_stats[0].pstate_releases, 0u);
}

TEST(ModesTest, DufpfTracksDufpClosely) {
  const auto dufp =
      run_once(config(workloads::AppId::cg, PolicyMode::dufp, 0.10));
  const auto dufpf =
      run_once(config(workloads::AppId::cg, PolicyMode::dufpf, 0.10));
  // The extension must not change the qualitative outcome.
  EXPECT_NEAR(dufpf.summary.avg_pkg_power_w, dufp.summary.avg_pkg_power_w,
              dufp.summary.avg_pkg_power_w * 0.03);
  EXPECT_NEAR(dufpf.summary.exec_seconds, dufp.summary.exec_seconds,
              dufp.summary.exec_seconds * 0.03);
}

TEST(ModesTest, DnpcCapsButHasNoUncoreLever) {
  const auto base =
      run_once(config(workloads::AppId::ep, PolicyMode::none, 0.0));
  const auto dnpc =
      run_once(config(workloads::AppId::ep, PolicyMode::dnpc, 0.10));
  const auto dufp =
      run_once(config(workloads::AppId::ep, PolicyMode::dufp, 0.10));
  // DNPC saves something on EP (the cap tracks its frequency model)...
  EXPECT_LT(dnpc.summary.avg_pkg_power_w, base.summary.avg_pkg_power_w);
  // ...but far less than DUFP with its uncore actuator.
  EXPECT_GT(dnpc.summary.avg_pkg_power_w,
            dufp.summary.avg_pkg_power_w * 1.04);
  // And it never touches the uncore.
  EXPECT_EQ(dnpc.agent_stats[0].uncore_decreases, 0u);
}

TEST(ModesTest, DnpcForfeitsSavingsOnMemoryBoundCode) {
  // The paper's Sec. VI critique: a frequency-linear model predicts
  // slowdown that memory-bound code does not experience.
  const auto base =
      run_once(config(workloads::AppId::mg, PolicyMode::none, 0.0));
  const auto dnpc =
      run_once(config(workloads::AppId::mg, PolicyMode::dnpc, 0.10));
  const auto dufp =
      run_once(config(workloads::AppId::mg, PolicyMode::dufp, 0.10));
  const double dnpc_savings = 1.0 - dnpc.summary.avg_pkg_power_w /
                                        base.summary.avg_pkg_power_w;
  const double dufp_savings = 1.0 - dufp.summary.avg_pkg_power_w /
                                        base.summary.avg_pkg_power_w;
  EXPECT_LT(dnpc_savings, dufp_savings);
}

}  // namespace
}  // namespace dufp::harness
