#include "harness/runner.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/options.h"
#include "workloads/profiles.h"

namespace dufp::harness {
namespace {

RunConfig small_config(workloads::AppId app = workloads::AppId::cg) {
  RunConfig cfg;
  cfg.profile = &workloads::profile(app);
  cfg.machine.sockets = 1;  // keep unit tests fast
  cfg.seed = 5;
  return cfg;
}

TEST(RunnerTest, ModeNames) {
  EXPECT_EQ(policy_mode_name(PolicyMode::none), "default");
  EXPECT_EQ(policy_mode_name(PolicyMode::duf), "DUF");
  EXPECT_EQ(policy_mode_name(PolicyMode::dufp), "DUFP");
}

TEST(RunnerTest, PercentOver) {
  EXPECT_NEAR(percent_over(110.0, 100.0), 10.0, 1e-9);
  EXPECT_NEAR(percent_over(90.0, 100.0), -10.0, 1e-9);
  EXPECT_THROW(percent_over(1.0, 0.0), std::invalid_argument);
}

TEST(RunnerTest, MissingProfileRejected) {
  RunConfig cfg;
  EXPECT_THROW(run_once(cfg), std::invalid_argument);
}

TEST(RunnerTest, ValidateAcceptsDefaultConfig) {
  EXPECT_TRUE(small_config().validate().empty());
}

TEST(RunnerTest, ValidateReportsAllProblemsNotJustTheFirst) {
  RunConfig cfg;  // null profile
  cfg.tolerated_slowdown = 1.5;
  cfg.policy.interval = SimTime::from_millis(0);
  cfg.sim.tick = SimTime::from_millis(-1);
  cfg.machine.sockets = 0;
  cfg.static_cap_w = -10.0;
  const auto problems = cfg.validate();
  EXPECT_GE(problems.size(), 6u);

  auto has = [&](const std::string& needle) {
    for (const auto& p : problems) {
      if (p.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("profile"));
  EXPECT_TRUE(has("tolerated_slowdown"));
  EXPECT_TRUE(has("policy.interval"));
  EXPECT_TRUE(has("sim.tick"));
  EXPECT_TRUE(has("machine.sockets"));
  EXPECT_TRUE(has("static_cap_w"));
}

TEST(RunnerTest, ValidateCatchesBadWatchdogKnobs) {
  auto cfg = small_config();
  cfg.policy.max_actuation_attempts = 0;
  cfg.policy.watchdog_failure_threshold = -1;
  cfg.policy.watchdog_backoff_intervals = 0;
  cfg.policy.watchdog_backoff_max_intervals = 0;
  const auto problems = cfg.validate();
  auto has = [&](const std::string& needle) {
    for (const auto& p : problems) {
      if (p.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("max_actuation_attempts"));
  EXPECT_TRUE(has("watchdog_failure_threshold"));
  EXPECT_TRUE(has("watchdog_backoff_intervals"));
}

TEST(RunnerTest, ValidateCatchesBadFaultOptions) {
  auto cfg = small_config();
  cfg.faults.enabled = true;
  cfg.faults.read_eio = {1.5, 1};
  cfg.faults.stale_sample = {0.1, 0};
  const auto problems = cfg.validate();
  EXPECT_GE(problems.size(), 2u);
  bool prefixed = false;
  for (const auto& p : problems) {
    if (p.rfind("faults.", 0) == 0) prefixed = true;
  }
  EXPECT_TRUE(prefixed) << "fault problems carry the faults. prefix";
  EXPECT_THROW(run_once(cfg), std::invalid_argument);
}

TEST(RunnerTest, ValidateCatchesUnknownPhaseCap) {
  auto cfg = small_config();
  cfg.phase_cap = PhaseCapSpec{"no_such_phase", 75.0};
  const auto problems = cfg.validate();
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("no_such_phase"), std::string::npos);
}

TEST(RunnerTest, RunOnceThrowsWithEveryProblemListed) {
  auto cfg = small_config();
  cfg.phase_cap = PhaseCapSpec{"no_such_phase", -5.0};
  cfg.tolerated_slowdown = -0.1;
  try {
    run_once(cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no_such_phase"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cap_w"), std::string::npos) << msg;
    EXPECT_NE(msg.find("tolerated_slowdown"), std::string::npos) << msg;
  }
}

TEST(RunnerTest, DefaultRunProducesSummary) {
  const auto res = run_once(small_config());
  EXPECT_GT(res.summary.exec_seconds, 30.0);
  EXPECT_GT(res.summary.avg_pkg_power_w, 80.0);
  EXPECT_GT(res.summary.avg_dram_power_w, 5.0);
  EXPECT_GT(res.summary.total_gflop, 100.0);
  EXPECT_TRUE(res.agent_stats.empty());  // no controller in mode none
}

TEST(RunnerTest, DufpRunAttachesOneAgentPerSocket) {
  auto cfg = small_config();
  cfg.machine.sockets = 2;
  cfg.mode = PolicyMode::dufp;
  cfg.tolerated_slowdown = 0.10;
  const auto res = run_once(cfg);
  ASSERT_EQ(res.agent_stats.size(), 2u);
  EXPECT_GT(res.agent_stats[0].intervals, 50u);
  EXPECT_GT(res.agent_stats[0].cap_decreases, 0u);
}

TEST(RunnerTest, StaticCapSlowsAndSaves) {
  const auto base = run_once(small_config());
  auto cfg = small_config();
  cfg.static_cap_w = 100.0;
  const auto capped = run_once(cfg);
  EXPECT_GT(capped.summary.exec_seconds, base.summary.exec_seconds);
  EXPECT_LT(capped.summary.avg_pkg_power_w,
            base.summary.avg_pkg_power_w * 0.93);
}

TEST(RunnerTest, PhaseCapAppliesOnlyToNamedPhase) {
  // Fig. 1b/1c: capping CG's memory prologue must cut the prologue's
  // power without touching total execution time.
  const auto base = run_once(small_config());
  auto cfg = small_config();
  cfg.phase_cap = PhaseCapSpec{"init", 95.0};
  const auto partial = run_once(cfg);

  const auto& init_base = base.phase_totals.at("init");
  const auto& init_capped = partial.phase_totals.at("init");
  const double base_power = init_base.pkg_energy_j / init_base.wall_seconds;
  const double capped_power =
      init_capped.pkg_energy_j / init_capped.wall_seconds;
  EXPECT_LT(capped_power, base_power * 0.88);

  // Total time essentially unchanged (the prologue is memory-bound).
  EXPECT_NEAR(partial.summary.exec_seconds, base.summary.exec_seconds,
              base.summary.exec_seconds * 0.01);

  // The solve loop's power is untouched.
  const auto& solve_base = base.phase_totals.at("solve");
  const auto& solve_capped = partial.phase_totals.at("solve");
  EXPECT_NEAR(solve_capped.pkg_energy_j / solve_capped.wall_seconds,
              solve_base.pkg_energy_j / solve_base.wall_seconds, 2.0);
}

TEST(RunnerTest, UnknownPhaseCapRejected) {
  auto cfg = small_config();
  cfg.phase_cap = PhaseCapSpec{"no_such_phase", 75.0};
  EXPECT_THROW(run_once(cfg), std::invalid_argument);
}

TEST(RunnerTest, RepeatedRunsAggregate) {
  auto cfg = small_config();
  const auto agg = run_repeated(cfg, 4);
  EXPECT_EQ(agg.runs, 4);
  EXPECT_EQ(agg.exec_seconds.used, 2u);  // 4 runs - fastest - slowest
  EXPECT_GT(agg.exec_seconds.mean, 30.0);
  EXPECT_LE(agg.exec_seconds.min, agg.exec_seconds.mean);
  EXPECT_GE(agg.exec_seconds.max, agg.exec_seconds.mean);
  EXPECT_GT(agg.total_energy_j.mean, 0.0);
  EXPECT_FALSE(agg.mean_phase_totals.empty());
}

TEST(RunnerTest, SeedsVaryAcrossRepetitions) {
  auto cfg = small_config();
  const auto agg = run_repeated(cfg, 4);
  // Jitter makes runs differ: error bars must have non-zero width.
  EXPECT_GT(agg.exec_seconds.max, agg.exec_seconds.min);
}

TEST(RunnerTest, BenchOptionsDefaults) {
  // (Environment not set in the test harness.)
  unsetenv("DUFP_REPS");
  unsetenv("DUFP_SOCKETS");
  unsetenv("DUFP_THREADS");
  unsetenv("DUFP_QUIET");
  const auto opts = BenchOptions::from_env();
  EXPECT_EQ(opts.repetitions, 10);
  EXPECT_EQ(opts.sockets, 4);
  EXPECT_EQ(opts.threads, 0);
  EXPECT_FALSE(opts.quiet);
  EXPECT_GE(opts.resolved_threads(), 1);
}

TEST(RunnerTest, BenchOptionsReadEnvironment) {
  setenv("DUFP_REPS", "3", 1);
  setenv("DUFP_SOCKETS", "2", 1);
  setenv("DUFP_THREADS", "8", 1);
  setenv("DUFP_QUIET", "1", 1);
  const auto opts = BenchOptions::from_env();
  unsetenv("DUFP_REPS");
  unsetenv("DUFP_SOCKETS");
  unsetenv("DUFP_THREADS");
  unsetenv("DUFP_QUIET");
  EXPECT_EQ(opts.repetitions, 3);
  EXPECT_EQ(opts.sockets, 2);
  EXPECT_EQ(opts.threads, 8);
  EXPECT_EQ(opts.resolved_threads(), 8);
  EXPECT_TRUE(opts.quiet);
}

}  // namespace
}  // namespace dufp::harness
