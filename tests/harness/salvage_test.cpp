// Salvageable gather + retry manifests (DESIGN.md § Failure model &
// recovery): partial mode recovers every complete record from damaged
// shard files, reports exactly what is missing, and the emitted retry
// manifest drives a resume run whose gathered bytes are identical to a
// run that never failed.
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/shard.h"
#include "harness/shard_codec.h"

namespace dufp::harness {
namespace {

GridSpec small_spec() {
  GridSpec spec;
  spec.name = "salvage-test";
  spec.apps = {workloads::AppId::cg};
  spec.policies = {"DUF", "DUFP"};
  spec.tolerances = {0.10};
  spec.repetitions = 3;  // 3 cells x 3 reps = 9 jobs
  spec.seed = 5;
  spec.sockets = 2;
  spec.telemetry = true;
  return spec;
}

std::string temp_path(const std::string& tag) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + info->test_suite_name() + "_" + info->name() +
         "_" + tag;
}

std::string run_shard_file(const GridSpec& spec, const ShardRunOptions& opts,
                           const std::string& tag) {
  const std::string path = temp_path(tag + ".jsonl");
  std::ofstream out(path, std::ios::binary);
  run_shard(spec, opts, out);
  return path;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string write_text(const std::string& text, const std::string& tag) {
  const std::string path = temp_path(tag + ".jsonl");
  std::ofstream out(path, std::ios::binary);
  out << text;
  return path;
}

/// Every deterministic byte a gathered grid produces (see shard_test).
std::string output_bytes(const GridOutputs& out) {
  std::string bytes = out.evaluation_csv;
  bytes += '\x1f';
  bytes += out.merged_prometheus;
  bytes += '\x1f';
  if (out.job0_telemetry.has_value()) {
    bytes += encode_snapshot(*out.job0_telemetry).dump();
  }
  return bytes;
}

/// The file's bytes cut mid-way through its final record — what a
/// SIGKILLed worker's torn `.partial` stream looks like.
std::string truncate_mid_record(const std::string& whole,
                                const std::string& tag) {
  const auto lines = read_lines(whole);
  std::string torn;
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
    torn += lines[i];
    torn += '\n';
  }
  torn += lines.back().substr(0, lines.back().size() / 2);  // no newline
  return write_text(torn, tag);
}

TEST(SalvageGatherTest, PartialModeSalvagesTruncatedFileAndReportsMissing) {
  const GridSpec spec = small_spec();
  const std::string whole = run_shard_file(spec, {}, "whole");
  const std::string torn = truncate_mid_record(whole, "torn");

  // Strict gather refuses the damage loudly...
  EXPECT_THROW(gather_shards(spec, {torn}), std::runtime_error);

  // ...partial mode keeps every record before the tear.
  GatherOptions opts;
  opts.partial = true;
  const GatherReport report = gather_shards_report(spec, {torn}, opts);
  const std::size_t jobs = build_plan(spec).plan.job_count();
  EXPECT_EQ(report.job_count, jobs);
  EXPECT_FALSE(report.complete());
  ASSERT_EQ(report.missing.size(), 1u) << "only the torn record is lost";
  EXPECT_EQ(report.missing[0], jobs - 1);
  EXPECT_EQ(report.records, jobs - 1);
  ASSERT_FALSE(report.notes.empty());
  EXPECT_EQ(report.notes[0].file, torn);
  EXPECT_EQ(report.notes[0].line, static_cast<int>(jobs + 1));
}

TEST(SalvageGatherTest, PartialModeSkipsUnreadableAndHeaderlessFiles) {
  const GridSpec spec = small_spec();
  const std::string whole = run_shard_file(spec, {}, "whole");
  const std::string headerless = write_text("", "headerless");
  GatherOptions opts;
  opts.partial = true;
  const GatherReport report = gather_shards_report(
      spec, {headerless, temp_path("does_not_exist.jsonl"), whole}, opts);
  EXPECT_TRUE(report.complete()) << "the intact file carries the whole grid";
  EXPECT_EQ(report.notes.size(), 2u);  // one per damaged input
}

TEST(SalvageGatherTest, IdempotentDuplicatesDroppedDivergentDuplicatesFatal) {
  const GridSpec spec = small_spec();
  const std::string whole = run_shard_file(spec, {}, "whole");
  GatherOptions opts;
  opts.partial = true;

  // A reclaimed chunk legitimately re-emits its jobs with identical
  // bytes: tolerated, counted.
  const GatherReport report =
      gather_shards_report(spec, {whole, whole}, opts);
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.duplicates, report.job_count);

  // Two *different* results for one job is a determinism violation —
  // fatal even in salvage mode.  Forge one by re-labelling job 1's
  // (valid, decodable) record as job 0.
  const auto lines = read_lines(whole);
  ASSERT_GE(lines.size(), 3u);
  std::string forged = lines[2];
  const auto pos = forged.find("\"job\":1");
  ASSERT_NE(pos, std::string::npos);
  forged.replace(pos, std::string("\"job\":1").size(), "\"job\":0");
  const std::string tampered =
      write_text(lines[0] + '\n' + forged + '\n', "tampered");
  EXPECT_THROW(gather_shards_report(spec, {whole, tampered}, opts),
               std::runtime_error);
}

TEST(SalvageGatherTest, StrictMissingErrorListsJobsAndExpectedShards) {
  GridSpec spec = small_spec();
  spec.telemetry = false;
  spec.repetitions = 9;  // 3 cells x 9 reps = 27 jobs; 18 missing > the cap
  ShardRunOptions opts;
  opts.shards = 3;  // shard 0 of 3: header says shards=3
  const std::string one = run_shard_file(spec, opts, "shard0");
  try {
    gather_shards(spec, {one});
    FAIL() << "expected a missing-jobs error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("job 1 (shard 1)"), std::string::npos) << what;
    EXPECT_NE(what.find("job 2 (shard 2)"), std::string::npos) << what;
    EXPECT_EQ(what.find("job 0 "), std::string::npos)
        << "job 0 was gathered: " << what;
    EXPECT_NE(what.find("more"), std::string::npos)
        << "12 missing jobs listed beyond the cap: " << what;
    EXPECT_NE(what.find("--partial"), std::string::npos)
        << "the error must point at the salvage path: " << what;
  }
}

TEST(SalvageGatherTest, RetryManifestRoundTripsAndRejectsTampering) {
  const GridSpec spec = small_spec();
  const std::string whole = run_shard_file(spec, {}, "whole");
  const std::string torn = truncate_mid_record(whole, "torn");
  GatherOptions opts;
  opts.partial = true;
  const GatherReport report = gather_shards_report(spec, {torn}, opts);
  ASSERT_FALSE(report.complete());

  const RetryManifest manifest = make_retry_manifest(spec, report);
  EXPECT_EQ(manifest.missing, report.missing);
  const RetryManifest back = RetryManifest::parse(manifest.canonical_text());
  EXPECT_EQ(back.missing, manifest.missing);
  EXPECT_EQ(back.spec.fingerprint(), spec.fingerprint());

  // The embedded fingerprint is a tamper guard: a manifest whose spec
  // was edited after the fact must not silently resume a different grid.
  std::string text = manifest.canonical_text();
  const auto pos = text.find("\"spec_fingerprint\":\"");
  ASSERT_NE(pos, std::string::npos);
  text[pos + std::string("\"spec_fingerprint\":\"").size()] ^= 1;
  EXPECT_THROW(RetryManifest::parse(text), std::runtime_error);

  // A complete report has nothing to retry.
  GatherReport done = gather_shards_report(spec, {whole}, opts);
  EXPECT_THROW(make_retry_manifest(spec, done), std::logic_error);
}

TEST(SalvageGatherTest, ResumeGathersToBytesIdenticalToUnfailedRun) {
  const GridSpec spec = small_spec();
  const std::string serial = output_bytes(run_grid_serial(spec));

  const std::string whole = run_shard_file(spec, {}, "whole");
  const std::string torn = truncate_mid_record(whole, "torn");
  GatherOptions opts;
  opts.partial = true;
  const GatherReport report = gather_shards_report(spec, {torn}, opts);
  ASSERT_FALSE(report.complete());
  const RetryManifest manifest = make_retry_manifest(spec, report);

  // `run --resume` executes exactly the manifest's missing jobs...
  ShardRunOptions resume;
  resume.job_filter = &manifest.missing;
  const std::string rescue = run_shard_file(manifest.spec, resume, "rescue");

  // ...and the combined gather is byte-identical to a run that never
  // failed.
  GatherReport final_report =
      gather_shards_report(spec, {torn, rescue}, opts);
  ASSERT_TRUE(final_report.complete());
  EXPECT_EQ(output_bytes(finalize_grid(spec, std::move(final_report.results))),
            serial);
}

TEST(SalvageGatherTest, JobFilterValidatesItsIndices) {
  const GridSpec spec = small_spec();
  const std::vector<std::size_t> descending = {3, 1};
  const std::vector<std::size_t> out_of_range = {0, 999};
  ShardRunOptions opts;
  std::ostringstream sink;
  opts.job_filter = &descending;
  EXPECT_THROW(run_shard(spec, opts, sink), std::invalid_argument);
  opts.job_filter = &out_of_range;
  EXPECT_THROW(run_shard(spec, opts, sink), std::invalid_argument);
}

}  // namespace
}  // namespace dufp::harness
