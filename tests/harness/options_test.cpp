// Strict environment parsing: a typo in a DUFP_* knob must fail loudly
// with every problem listed, never silently fall back to a default that
// then masquerades as a paper-protocol run.
#include "harness/options.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace dufp::harness {
namespace {

class OptionsEnvTest : public ::testing::Test {
 protected:
  void SetUp() override { clear(); }
  void TearDown() override { clear(); }

  static void clear() {
    unsetenv("DUFP_REPS");
    unsetenv("DUFP_SOCKETS");
    unsetenv("DUFP_THREADS");
    unsetenv("DUFP_QUIET");
    unsetenv("DUFP_FAULT_RATE");
    unsetenv("DUFP_FAULT_SEED");
    unsetenv("DUFP_OUT_DIR");
    unsetenv("DUFP_TELEMETRY");
    unsetenv("DUFP_POLICIES");
    unsetenv("DUFP_CHAOS");
    unsetenv("DUFP_CHAOS_SEED");
    unsetenv("DUFP_FLEET_RACKS");
    unsetenv("DUFP_FLEET_NODES");
    unsetenv("DUFP_FLEET_ALLOCATOR");
    unsetenv("DUFP_FLEET_BUDGET");
    unsetenv("DUFP_FLEET_TRAFFIC");
    unsetenv("DUFP_FLEET_TRAFFIC_SEED");
  }

  static std::string error_of_from_env() {
    try {
      BenchOptions::from_env();
    } catch (const std::invalid_argument& e) {
      return e.what();
    }
    return {};
  }
};

TEST_F(OptionsEnvTest, DefaultsWhenUnset) {
  const auto o = BenchOptions::from_env();
  EXPECT_EQ(o.repetitions, 10);
  EXPECT_EQ(o.sockets, 4);
  EXPECT_EQ(o.threads, 0);
  EXPECT_FALSE(o.quiet);
  EXPECT_DOUBLE_EQ(o.fault_rate, 0.0);
  EXPECT_EQ(o.fault_seed, 0u);
  EXPECT_EQ(o.out_dir, "out");
  EXPECT_FALSE(o.telemetry);
}

TEST_F(OptionsEnvTest, OutDirOverrideAndPathJoin) {
  setenv("DUFP_OUT_DIR", "/tmp/dufp_options_test_out", 1);
  const auto o = BenchOptions::from_env();
  EXPECT_EQ(o.out_dir, "/tmp/dufp_options_test_out");
  // out_path creates the directory and joins the filename onto it.
  EXPECT_EQ(o.out_path("x.csv"), "/tmp/dufp_options_test_out/x.csv");
}

TEST_F(OptionsEnvTest, EmptyOutDirRejected) {
  setenv("DUFP_OUT_DIR", "", 1);
  const auto msg = error_of_from_env();
  EXPECT_NE(msg.find("DUFP_OUT_DIR"), std::string::npos) << msg;
  EXPECT_NE(msg.find("non-empty"), std::string::npos) << msg;
}

TEST_F(OptionsEnvTest, TelemetryIsPresenceFlag) {
  setenv("DUFP_TELEMETRY", "1", 1);
  EXPECT_TRUE(BenchOptions::from_env().telemetry);
}

TEST_F(OptionsEnvTest, ValidValuesParse) {
  setenv("DUFP_REPS", "3", 1);
  setenv("DUFP_SOCKETS", "2", 1);
  setenv("DUFP_THREADS", "0", 1);
  setenv("DUFP_FAULT_RATE", "0.05", 1);
  setenv("DUFP_FAULT_SEED", "12345678901234567890", 1);  // > 2^63
  const auto o = BenchOptions::from_env();
  EXPECT_EQ(o.repetitions, 3);
  EXPECT_EQ(o.sockets, 2);
  EXPECT_EQ(o.threads, 0);
  EXPECT_DOUBLE_EQ(o.fault_rate, 0.05);
  EXPECT_EQ(o.fault_seed, 12345678901234567890ULL);
}

TEST_F(OptionsEnvTest, NonNumericRepsRejected) {
  setenv("DUFP_REPS", "ten", 1);
  const auto msg = error_of_from_env();
  EXPECT_NE(msg.find("DUFP_REPS"), std::string::npos) << msg;
  EXPECT_NE(msg.find("ten"), std::string::npos) << msg;
}

TEST_F(OptionsEnvTest, TrailingJunkRejected) {
  setenv("DUFP_SOCKETS", "4x", 1);
  const auto msg = error_of_from_env();
  EXPECT_NE(msg.find("DUFP_SOCKETS"), std::string::npos) << msg;
}

TEST_F(OptionsEnvTest, ThreadsAbcRejected) {
  setenv("DUFP_THREADS", "abc", 1);
  const auto msg = error_of_from_env();
  EXPECT_NE(msg.find("DUFP_THREADS"), std::string::npos) << msg;
  EXPECT_NE(msg.find("not an integer"), std::string::npos) << msg;
}

TEST_F(OptionsEnvTest, BelowMinimumRejectedNotDefaulted) {
  setenv("DUFP_REPS", "0", 1);
  const auto msg = error_of_from_env();
  EXPECT_NE(msg.find("DUFP_REPS"), std::string::npos) << msg;
  EXPECT_NE(msg.find(">= 1"), std::string::npos) << msg;
}

TEST_F(OptionsEnvTest, NegativeThreadsRejected) {
  setenv("DUFP_THREADS", "-2", 1);
  const auto msg = error_of_from_env();
  EXPECT_NE(msg.find("DUFP_THREADS"), std::string::npos) << msg;
}

TEST_F(OptionsEnvTest, FaultRateOutOfRangeRejected) {
  setenv("DUFP_FAULT_RATE", "1.5", 1);
  EXPECT_NE(error_of_from_env().find("DUFP_FAULT_RATE"), std::string::npos);
  setenv("DUFP_FAULT_RATE", "-0.1", 1);
  EXPECT_NE(error_of_from_env().find("[0, 1]"), std::string::npos);
  setenv("DUFP_FAULT_RATE", "half", 1);
  EXPECT_NE(error_of_from_env().find("not a number"), std::string::npos);
}

TEST_F(OptionsEnvTest, ChaosKnobsParseAndValidateLikeFaultKnobs) {
  setenv("DUFP_CHAOS", "0.25", 1);
  setenv("DUFP_CHAOS_SEED", "7", 1);
  const auto o = BenchOptions::from_env();
  EXPECT_DOUBLE_EQ(o.chaos_kill_rate, 0.25);
  EXPECT_EQ(o.chaos_seed, 7u);

  setenv("DUFP_CHAOS", "1.5", 1);
  EXPECT_NE(error_of_from_env().find("DUFP_CHAOS"), std::string::npos);
  setenv("DUFP_CHAOS", "0.25", 1);
  setenv("DUFP_CHAOS_SEED", "-1", 1);
  EXPECT_NE(error_of_from_env().find("DUFP_CHAOS_SEED"), std::string::npos);
}

TEST_F(OptionsEnvTest, NegativeFaultSeedRejected) {
  // strtoull would silently wrap "-1" to 2^64-1; the parser must not.
  setenv("DUFP_FAULT_SEED", "-1", 1);
  const auto msg = error_of_from_env();
  EXPECT_NE(msg.find("DUFP_FAULT_SEED"), std::string::npos) << msg;
}

TEST_F(OptionsEnvTest, AllProblemsAggregatedIntoOneError) {
  setenv("DUFP_REPS", "zero", 1);
  setenv("DUFP_SOCKETS", "-3", 1);
  setenv("DUFP_THREADS", "4.5", 1);
  setenv("DUFP_FAULT_RATE", "2", 1);
  const auto msg = error_of_from_env();
  EXPECT_NE(msg.find("DUFP_REPS"), std::string::npos) << msg;
  EXPECT_NE(msg.find("DUFP_SOCKETS"), std::string::npos) << msg;
  EXPECT_NE(msg.find("DUFP_THREADS"), std::string::npos) << msg;
  EXPECT_NE(msg.find("DUFP_FAULT_RATE"), std::string::npos) << msg;
}

TEST_F(OptionsEnvTest, PoliciesUnsetMeansEmptyList) {
  EXPECT_TRUE(BenchOptions::from_env().policies.empty());
}

TEST_F(OptionsEnvTest, PoliciesParseCanonicalizesAliasSpellings) {
  setenv("DUFP_POLICIES", " duf , DUFP-F ,cuttlefish", 1);
  const auto o = BenchOptions::from_env();
  EXPECT_EQ(o.policies,
            (std::vector<std::string>{"DUF", "DUFP-F", "cuttlefish"}));
}

TEST_F(OptionsEnvTest, PoliciesUnknownAndDuplicateAggregated) {
  setenv("DUFP_POLICIES", "DUF,duf,sasquatch", 1);
  const auto msg = error_of_from_env();
  EXPECT_NE(msg.find("DUFP_POLICIES"), std::string::npos) << msg;
  EXPECT_NE(msg.find("duplicate policy \"duf\""), std::string::npos) << msg;
  EXPECT_NE(msg.find("unknown policy \"sasquatch\""), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("known:"), std::string::npos) << msg;
}

TEST_F(OptionsEnvTest, PoliciesEmptyTokenAndEmptyListRejected) {
  setenv("DUFP_POLICIES", "DUF,,DUFP", 1);
  EXPECT_NE(error_of_from_env().find("empty policy name"), std::string::npos);
  setenv("DUFP_POLICIES", "", 1);
  EXPECT_NE(error_of_from_env().find("at least one policy"),
            std::string::npos);
}

TEST_F(OptionsEnvTest, FleetDefaultsWhenUnset) {
  const auto o = BenchOptions::from_env();
  EXPECT_EQ(o.fleet_racks, 2);
  EXPECT_EQ(o.fleet_nodes_per_rack, 2);
  EXPECT_TRUE(o.fleet_allocator.empty());  // empty = caller default
  EXPECT_DOUBLE_EQ(o.fleet_budget_w, 0.0);
  EXPECT_EQ(o.fleet_traffic_profile, "diurnal");
  EXPECT_EQ(o.fleet_traffic_seed, 1u);
}

TEST_F(OptionsEnvTest, FleetKnobsParse) {
  setenv("DUFP_FLEET_RACKS", "8", 1);
  setenv("DUFP_FLEET_NODES", "16", 1);
  setenv("DUFP_FLEET_ALLOCATOR", "fastcap", 1);
  setenv("DUFP_FLEET_BUDGET", "96000", 1);
  setenv("DUFP_FLEET_TRAFFIC", "heavy-tail", 1);
  setenv("DUFP_FLEET_TRAFFIC_SEED", "42", 1);
  const auto o = BenchOptions::from_env();
  EXPECT_EQ(o.fleet_racks, 8);
  EXPECT_EQ(o.fleet_nodes_per_rack, 16);
  EXPECT_EQ(o.fleet_allocator, "fastcap");
  EXPECT_DOUBLE_EQ(o.fleet_budget_w, 96000.0);
  EXPECT_EQ(o.fleet_traffic_profile, "heavy-tail");
  EXPECT_EQ(o.fleet_traffic_seed, 42u);
}

TEST_F(OptionsEnvTest, FleetAllocatorCanonicalizesAliasSpellings) {
  setenv("DUFP_FLEET_ALLOCATOR", "  FAIR  ", 1);  // fastcap alias
  EXPECT_EQ(BenchOptions::from_env().fleet_allocator, "fastcap");
}

TEST_F(OptionsEnvTest, FleetUnknownAllocatorListsRegisteredNames) {
  setenv("DUFP_FLEET_ALLOCATOR", "wishful", 1);
  const auto msg = error_of_from_env();
  EXPECT_NE(msg.find("DUFP_FLEET_ALLOCATOR"), std::string::npos) << msg;
  EXPECT_NE(msg.find("unknown fleet allocator \"wishful\""),
            std::string::npos)
      << msg;
  EXPECT_NE(msg.find("known:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("proportional"), std::string::npos) << msg;
  EXPECT_NE(msg.find("fastcap"), std::string::npos) << msg;
  EXPECT_NE(msg.find("static-equal"), std::string::npos) << msg;
}

TEST_F(OptionsEnvTest, FleetUnknownTrafficListsKnownProfiles) {
  setenv("DUFP_FLEET_TRAFFIC", "tidal", 1);
  const auto msg = error_of_from_env();
  EXPECT_NE(msg.find("DUFP_FLEET_TRAFFIC"), std::string::npos) << msg;
  EXPECT_NE(msg.find("unknown traffic profile \"tidal\""), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("diurnal"), std::string::npos) << msg;
}

TEST_F(OptionsEnvTest, FleetProblemsAggregateWithTheOtherKnobs) {
  setenv("DUFP_REPS", "zero", 1);
  setenv("DUFP_FLEET_RACKS", "0", 1);
  setenv("DUFP_FLEET_BUDGET", "-5", 1);
  setenv("DUFP_FLEET_TRAFFIC_SEED", "-1", 1);
  const auto msg = error_of_from_env();
  EXPECT_NE(msg.find("DUFP_REPS"), std::string::npos) << msg;
  EXPECT_NE(msg.find("DUFP_FLEET_RACKS"), std::string::npos) << msg;
  EXPECT_NE(msg.find("DUFP_FLEET_BUDGET"), std::string::npos) << msg;
  EXPECT_NE(msg.find("DUFP_FLEET_TRAFFIC_SEED"), std::string::npos) << msg;
}

TEST_F(OptionsEnvTest, IntegerOverflowRejected) {
  setenv("DUFP_REPS", "99999999999999999999", 1);
  const auto msg = error_of_from_env();
  EXPECT_NE(msg.find("out of range"), std::string::npos) << msg;
}

}  // namespace
}  // namespace dufp::harness
