// The lease protocol behind crash-resilient dynamic sharding
// (DESIGN.md § Failure model & recovery): a live owner's chunk is
// never stolen, a dead owner's chunk is reclaimable after the TTL,
// stealing grants ownership to exactly one claimant, a stalled owner
// detects the theft before emitting, and completed / poisoned chunks
// stay off-limits forever.
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "harness/chaos.h"
#include "harness/shard.h"

namespace dufp::harness {
namespace {

namespace fs = std::filesystem;

std::string temp_dir() {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string dir = ::testing::TempDir() + info->test_suite_name() +
                          "_" + info->name() + "_claims";
  fs::remove_all(dir);  // stale state breaks reruns
  fs::create_directories(dir);
  return dir;
}

/// Makes chunk `c`'s lease look like its owner died `age` ago: the
/// staleness signal is the claim file's mtime, so rewinding it is
/// exactly what a crashed worker's abandoned lease looks like — no
/// sleeping in tests.
void age_lease(const std::string& dir, int c, std::chrono::seconds age) {
  const auto path = FileChunkClaimer::claim_path(dir, c);
  fs::last_write_time(path, fs::last_write_time(path) - age);
}

TEST(LeaseTest, FreshLeaseIsNeverStolen) {
  const std::string dir = temp_dir();
  FileChunkClaimer alive(dir, {"alive", /*ttl_seconds=*/0.5});
  FileChunkClaimer rival(dir, {"rival", /*ttl_seconds=*/0.5});
  ASSERT_TRUE(alive.try_claim(0));
  EXPECT_FALSE(rival.try_claim(0));  // heartbeat is fresh: hands off
  EXPECT_TRUE(alive.still_owner(0));
}

TEST(LeaseTest, CrashOrphanedLeaseReclaimableAfterTtl) {
  const std::string dir = temp_dir();
  {
    FileChunkClaimer dead(dir, {"dead", 1.0});
    ASSERT_TRUE(dead.try_claim(0));
  }  // destructor closes the fd but leaves the lease — a crash, in effect
  age_lease(dir, 0, std::chrono::seconds(60));

  FileChunkClaimer heir(dir, {"heir", 1.0});
  EXPECT_TRUE(heir.try_claim(0)) << "stale lease must be stealable";
  EXPECT_TRUE(heir.still_owner(0));
  const auto lease = FileChunkClaimer::read_lease(
      FileChunkClaimer::claim_path(dir, 0));
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->owner, "heir");
}

TEST(LeaseTest, TtlZeroDisablesStealing) {
  const std::string dir = temp_dir();
  FileChunkClaimer a(dir, {"a", /*ttl_seconds=*/0.0});
  ASSERT_TRUE(a.try_claim(0));
  age_lease(dir, 0, std::chrono::seconds(3600));
  FileChunkClaimer b(dir, {"b", 0.0});
  EXPECT_FALSE(b.try_claim(0)) << "ttl <= 0 is the permanent-claim mode";
}

TEST(LeaseTest, StealRaceHasExactlyOneWinner) {
  const std::string dir = temp_dir();
  FileChunkClaimer stalled(dir, {"stalled", 1.0});
  ASSERT_TRUE(stalled.try_claim(0));
  age_lease(dir, 0, std::chrono::seconds(60));

  // Two rivals go after the same stale lease.  The rename(2)-based
  // steal is atomic, so whoever claims first owns it and the second
  // finds a *fresh* lease it must respect.
  FileChunkClaimer first(dir, {"first", 1.0});
  FileChunkClaimer second(dir, {"second", 1.0});
  EXPECT_TRUE(first.try_claim(0));
  EXPECT_FALSE(second.try_claim(0));

  // The stalled owner is not dead — it must notice the theft and drop
  // its duplicate work instead of completing.
  EXPECT_FALSE(stalled.still_owner(0));
  EXPECT_FALSE(stalled.complete(0)) << "a stale owner must not complete";
  EXPECT_TRUE(first.still_owner(0));
  EXPECT_TRUE(first.complete(0));
}

TEST(LeaseTest, RenewKeepsLeaseAliveAndBumpsHeartbeat) {
  const std::string dir = temp_dir();
  FileChunkClaimer a(dir, {"a", 1.0});
  ASSERT_TRUE(a.try_claim(0));
  const auto before = FileChunkClaimer::read_lease(
      FileChunkClaimer::claim_path(dir, 0));
  ASSERT_TRUE(before.has_value());
  age_lease(dir, 0, std::chrono::seconds(60));
  a.renew();  // the in-place rewrite restores the mtime and bumps the count
  const auto after = FileChunkClaimer::read_lease(
      FileChunkClaimer::claim_path(dir, 0));
  ASSERT_TRUE(after.has_value());
  EXPECT_GT(after->heartbeat, before->heartbeat);
  FileChunkClaimer rival(dir, {"rival", 1.0});
  EXPECT_FALSE(rival.try_claim(0)) << "a renewed lease is fresh again";
}

TEST(LeaseTest, CompletedChunksAreNeverReclaimed) {
  const std::string dir = temp_dir();
  FileChunkClaimer a(dir, {"a", 1.0});
  ASSERT_TRUE(a.try_claim(0));
  ASSERT_TRUE(a.complete(0));
  EXPECT_TRUE(fs::exists(FileChunkClaimer::done_path(dir, 0)));
  EXPECT_FALSE(fs::exists(FileChunkClaimer::claim_path(dir, 0)));
  FileChunkClaimer b(dir, {"b", 1.0});
  EXPECT_FALSE(b.try_claim(0)) << "done chunks must not re-run";
  EXPECT_FALSE(a.try_claim(0));
}

TEST(LeaseTest, PoisonedChunksAreRefusedAndReported) {
  const std::string dir = temp_dir();
  std::ofstream(FileChunkClaimer::poison_path(dir, 2)) << "deaths=2\n";
  FileChunkClaimer a(dir, {"a", 1.0});
  EXPECT_TRUE(a.try_claim(0));
  EXPECT_FALSE(a.try_claim(2)) << "quarantined chunks stay quarantined";
  ASSERT_EQ(a.poisoned_seen().size(), 1u);
  EXPECT_EQ(a.poisoned_seen()[0], 2);
}

TEST(LeaseTest, ReleaseAllDropsOwnLeasesOnly) {
  const std::string dir = temp_dir();
  FileChunkClaimer a(dir, {"a", 1.0});
  FileChunkClaimer b(dir, {"b", 1.0});
  ASSERT_TRUE(a.try_claim(0));
  ASSERT_TRUE(a.try_claim(1));
  ASSERT_TRUE(b.try_claim(2));
  a.release_all();
  EXPECT_FALSE(fs::exists(FileChunkClaimer::claim_path(dir, 0)));
  EXPECT_FALSE(fs::exists(FileChunkClaimer::claim_path(dir, 1)));
  EXPECT_TRUE(fs::exists(FileChunkClaimer::claim_path(dir, 2)))
      << "release_all must not touch another owner's lease";
  FileChunkClaimer c(dir, {"c", 1.0});
  EXPECT_TRUE(c.try_claim(0));  // released chunks are claimable again
}

TEST(LeaseTest, DefaultOwnerDerivesFromPid) {
  const std::string dir = temp_dir();
  FileChunkClaimer a(dir);  // PR-5 call shape still compiles and works
  EXPECT_FALSE(a.owner().empty());
  EXPECT_EQ(a.owner().rfind("pid", 0), 0u) << a.owner();
}

// -- chaos schedule determinism ---------------------------------------------

TEST(ChaosPlanTest, KillScheduleIsAPureFunctionOfSeedWorkerAttempt) {
  ChaosOptions opts;
  opts.kill_rate = 0.5;
  opts.seed = 42;
  opts.worker = 1;
  opts.attempt = 2;
  const ChaosPlan plan_a(opts);
  const ChaosPlan plan_b(opts);
  ASSERT_TRUE(plan_a.enabled());
  bool any_kill = false;
  bool any_live = false;
  for (std::uint64_t pos = 0; pos < 64; ++pos) {
    EXPECT_EQ(plan_a.should_kill(pos), plan_b.should_kill(pos))
        << "same (seed, worker, attempt) must agree at position " << pos;
    any_kill |= plan_a.should_kill(pos);
    any_live |= !plan_a.should_kill(pos);
  }
  EXPECT_TRUE(any_kill) << "rate 0.5 over 64 positions should kill somewhere";
  EXPECT_TRUE(any_live);

  // A restarted attempt gets a *different* schedule, so a job that
  // happened to land on a kill point is not killed forever.
  ChaosOptions retry = opts;
  retry.attempt = 3;
  const ChaosPlan plan_c(retry);
  bool differs = false;
  for (std::uint64_t pos = 0; pos < 64 && !differs; ++pos) {
    differs = plan_a.should_kill(pos) != plan_c.should_kill(pos);
  }
  EXPECT_TRUE(differs) << "attempt must salt the kill stream";
}

TEST(ChaosPlanTest, DisabledPlanNeverKills) {
  const ChaosPlan plan{ChaosOptions{}};
  EXPECT_FALSE(plan.enabled());
  for (std::uint64_t pos = 0; pos < 16; ++pos) {
    EXPECT_FALSE(plan.should_kill(pos));
  }
}

}  // namespace
}  // namespace dufp::harness
