// Phase B of a fleet run: one node's simulation under its precomputed
// budget schedule.  The pinned properties: per-epoch records line up
// with the plan, the node's power stays within what its per-socket caps
// allow, and the whole run is a deterministic pure function of
// (spec, node, plan) — bit-exact through the wire codec.
#include "fleet/node_run.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "fleet/plan.h"
#include "fleet/spec.h"

namespace dufp::fleet {
namespace {

FleetSpec small_spec() {
  FleetSpec spec = FleetSpec::reference();  // 2 x 2 x 4 sockets, 4 epochs
  spec.epoch_seconds = 0.5;
  spec.global_budget_w = 0.78 * 16 * 125.0;
  return spec;
}

TEST(NodeRunTest, EpochRecordsLineUpWithThePlan) {
  const FleetSpec spec = small_spec();
  const AllocationPlan plan = plan_allocations(spec);
  const FleetNodeResult result = run_fleet_node(spec, 2, plan);

  ASSERT_EQ(result.epochs.size(), 4u);
  for (std::size_t e = 0; e < result.epochs.size(); ++e) {
    const EpochRecord& rec = result.epochs[e];
    EXPECT_DOUBLE_EQ(rec.alloc_w, plan.node_w[e][2]);
    EXPECT_DOUBLE_EQ(rec.demand_w, plan.node_demand_w[e][2]);
    EXPECT_DOUBLE_EQ(rec.intensity, plan.node_intensity[e][2]);
    EXPECT_GT(rec.wall_seconds, 0.0);
    EXPECT_GT(rec.pkg_energy_j, 0.0);
    EXPECT_GE(rec.dram_energy_j, 0.0);
  }
  EXPECT_GT(result.exec_seconds, 0.0);
  EXPECT_GT(result.pkg_energy_j, 0.0);
  EXPECT_GT(result.avg_speed, 0.0);
  EXPECT_LE(result.avg_speed, 1.5);
  EXPECT_DOUBLE_EQ(result.total_energy_j(),
                   result.pkg_energy_j + result.dram_energy_j);
  EXPECT_EQ(result.faults_injected, 0u);
}

TEST(NodeRunTest, NodePowerStaysWithinTheSocketCapCeiling) {
  // The node-level balancer keeps every socket cap in
  // [min_cap_w, max_cap_w]; mean package power per socket in an epoch can
  // therefore never meaningfully exceed the ceiling.
  const FleetSpec spec = small_spec();
  const AllocationPlan plan = plan_allocations(spec);
  for (const std::size_t node : {std::size_t{0}, std::size_t{3}}) {
    const FleetNodeResult result = run_fleet_node(spec, node, plan);
    const double sockets =
        static_cast<double>(spec.topology.sockets_per_node);
    for (const EpochRecord& rec : result.epochs) {
      const double mean_socket_w =
          rec.pkg_energy_j / rec.wall_seconds / sockets;
      EXPECT_LE(mean_socket_w, spec.max_cap_w * 1.05)
          << "node " << node;
      EXPECT_GT(mean_socket_w, 0.0);
    }
  }
}

TEST(NodeRunTest, DeterministicAndBitExactThroughTheCodec) {
  const FleetSpec spec = small_spec();
  const AllocationPlan plan = plan_allocations(spec);
  const FleetNodeResult a = run_fleet_node(spec, 1, plan);
  const FleetNodeResult b = run_fleet_node(spec, 1, plan);
  const std::string a_bytes = encode_node_result(a).dump();
  EXPECT_EQ(a_bytes, encode_node_result(b).dump());
  // decode(encode(x)) re-encodes to the same bytes: doubles travel as
  // IEEE-754 hex, so nothing is lost to decimal formatting.
  EXPECT_EQ(encode_node_result(decode_node_result(encode_node_result(a)))
                .dump(),
            a_bytes);
}

TEST(NodeRunTest, DifferentNodesSeeDifferentSeedsAndTraffic) {
  const FleetSpec spec = small_spec();
  const AllocationPlan plan = plan_allocations(spec);
  const FleetNodeResult a = run_fleet_node(spec, 0, plan);
  const FleetNodeResult b = run_fleet_node(spec, 3, plan);
  EXPECT_NE(encode_node_result(a).dump(), encode_node_result(b).dump());
}

TEST(NodeRunTest, FaultStormIsDeterministicAndCounted) {
  FleetSpec spec = small_spec();
  spec.fault_rate = 0.5;
  spec.fault_seed = 9;
  const AllocationPlan plan = plan_allocations(spec);
  const FleetNodeResult a = run_fleet_node(spec, 0, plan);
  const FleetNodeResult b = run_fleet_node(spec, 0, plan);
  EXPECT_EQ(encode_node_result(a).dump(), encode_node_result(b).dump());
  EXPECT_GT(a.faults_injected, 0u);
}

TEST(NodeRunTest, LaneBatchedNodesMatchSequentialBytes) {
  // The whole fleet through the lane engine (one wave of 4 interleaved
  // node simulations, plus a width-3 wave split) against per-node
  // sequential runs, byte-compared through the wire codec.
  const FleetSpec spec = small_spec();
  const AllocationPlan plan = plan_allocations(spec);
  std::vector<std::size_t> nodes{0, 1, 2, 3};

  std::vector<std::string> want;
  for (const std::size_t n : nodes) {
    want.push_back(encode_node_result(run_fleet_node(spec, n, plan)).dump());
  }
  for (const int lanes : {4, 3}) {
    const std::vector<FleetNodeResult> batched =
        run_fleet_nodes(spec, nodes, plan, /*time_leap=*/true, lanes);
    ASSERT_EQ(batched.size(), nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      EXPECT_EQ(encode_node_result(batched[i]).dump(), want[i])
          << "node " << nodes[i] << " drifted at lane width " << lanes;
    }
  }
}

TEST(NodeRunTest, OutOfRangeNodeThrows) {
  const FleetSpec spec = small_spec();
  const AllocationPlan plan = plan_allocations(spec);
  try {
    run_fleet_node(spec, 4, plan);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what())
                  .find("node 4 out of range (fleet has 4 nodes)"),
              std::string::npos)
        << e.what();
  }
}

TEST(NodeRunTest, InvalidSpecAggregatesProblems) {
  FleetSpec bad = small_spec();
  const AllocationPlan plan = plan_allocations(small_spec());
  bad.epochs = 0;
  bad.policy = "sasquatch";
  try {
    run_fleet_node(bad, 0, plan);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("run_fleet_node: invalid spec"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("epochs must be >= 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("unknown policy \"sasquatch\""), std::string::npos)
        << msg;
  }
}

}  // namespace
}  // namespace dufp::fleet
