// Phase A of a fleet run: the allocation plan must conserve power at
// every level of the tree in every epoch (no layer ever mints watts),
// keep every node inside its per-socket cap bounds, and be a pure
// function of the spec — the property the sharded determinism guarantee
// rests on.
#include "fleet/plan.h"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "fleet/spec.h"
#include "fleet/traffic.h"

namespace dufp::fleet {
namespace {

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

FleetSpec spec_with(const std::string& allocator,
                    const std::string& traffic = "diurnal") {
  FleetSpec spec = FleetSpec::reference();
  spec.topology = {3, 4, 4};  // 12 nodes, 48 sockets
  spec.epochs = 8;
  spec.allocator = allocator;
  spec.traffic_profile = traffic;
  // 80% of uncapped (48 x 125 = 6000 W): contended but above the floor.
  spec.global_budget_w = 4800.0;
  return spec;
}

TEST(PlanTest, ShapesMatchTheSpec) {
  const FleetSpec spec = spec_with("proportional");
  const AllocationPlan plan = plan_allocations(spec);
  EXPECT_DOUBLE_EQ(plan.budget_w, 4800.0);
  ASSERT_EQ(plan.rack_w.size(), 8u);
  ASSERT_EQ(plan.node_w.size(), 8u);
  ASSERT_EQ(plan.node_demand_w.size(), 8u);
  ASSERT_EQ(plan.node_intensity.size(), 8u);
  for (std::size_t e = 0; e < 8; ++e) {
    EXPECT_EQ(plan.rack_w[e].size(), 3u);
    EXPECT_EQ(plan.node_w[e].size(), 12u);
  }
}

TEST(PlanTest, ConservationHoldsAtEveryLevelAndEpoch) {
  for (const auto& allocator :
       FleetAllocatorRegistry::instance().names()) {
    for (const char* traffic : {"diurnal", "heavy-tail", "flat"}) {
      const FleetSpec spec = spec_with(allocator, traffic);
      const AllocationPlan plan = plan_allocations(spec);
      for (std::size_t e = 0; e < plan.rack_w.size(); ++e) {
        // Cluster level: racks never exceed the global cap.
        EXPECT_LE(sum(plan.rack_w[e]), plan.budget_w + 1e-6)
            << allocator << "/" << traffic << " epoch " << e;
        // Rack level: each rack's nodes never exceed the rack's grant.
        for (int r = 0; r < spec.topology.racks; ++r) {
          double rack_nodes = 0.0;
          for (int slot = 0; slot < spec.topology.nodes_per_rack; ++slot) {
            rack_nodes += plan.node_w[e][spec.topology.node_index(r, slot)];
          }
          EXPECT_LE(rack_nodes, plan.rack_w[e][static_cast<std::size_t>(r)] +
                                    1e-6)
              << allocator << "/" << traffic << " epoch " << e << " rack "
              << r;
        }
      }
    }
  }
}

TEST(PlanTest, NodeAllocationsStayWithinPerSocketCapBounds) {
  // A node's grant divided by its sockets is what the node-level
  // BudgetBalancer hands each socket — it must always fit in
  // [min_cap_w, max_cap_w].
  for (const auto& allocator :
       FleetAllocatorRegistry::instance().names()) {
    const FleetSpec spec = spec_with(allocator, "heavy-tail");
    const double sockets =
        static_cast<double>(spec.topology.sockets_per_node);
    const AllocationPlan plan = plan_allocations(spec);
    for (std::size_t e = 0; e < plan.node_w.size(); ++e) {
      for (const double node_w : plan.node_w[e]) {
        EXPECT_GE(node_w / sockets, spec.min_cap_w - 1e-9) << allocator;
        EXPECT_LE(node_w / sockets, spec.max_cap_w + 1e-9) << allocator;
      }
    }
  }
}

TEST(PlanTest, DemandFollowsTheTrafficModel) {
  const FleetSpec spec = spec_with("static-equal");
  const AllocationPlan plan = plan_allocations(spec);
  const double node_min =
      spec.min_cap_w * static_cast<double>(spec.topology.sockets_per_node);
  const double node_max =
      spec.max_cap_w * static_cast<double>(spec.topology.sockets_per_node);
  TrafficModel traffic({spec.traffic_profile, spec.traffic_seed});
  for (std::size_t e = 0; e < plan.node_demand_w.size(); ++e) {
    for (std::size_t n = 0; n < plan.node_demand_w[e].size(); ++n) {
      const double intensity = traffic.intensity(n, static_cast<int>(e));
      EXPECT_DOUBLE_EQ(plan.node_intensity[e][n], intensity);
      EXPECT_DOUBLE_EQ(plan.node_demand_w[e][n],
                       node_min + intensity * (node_max - node_min));
    }
  }
}

TEST(PlanTest, PureFunctionOfTheSpec) {
  const FleetSpec spec = spec_with("proportional", "heavy-tail");
  const AllocationPlan a = plan_allocations(spec);
  const AllocationPlan b = plan_allocations(spec);
  EXPECT_EQ(a.rack_w, b.rack_w);
  EXPECT_EQ(a.node_w, b.node_w);
  EXPECT_EQ(a.node_demand_w, b.node_demand_w);
  EXPECT_EQ(a.node_intensity, b.node_intensity);
}

TEST(PlanTest, InvalidSpecAggregatesEveryProblem) {
  FleetSpec spec = FleetSpec::reference();
  spec.allocator = "wishful";
  spec.epochs = 0;
  spec.min_cap_w = 200.0;  // above max_cap_w
  try {
    plan_allocations(spec);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("plan_allocations: invalid spec"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("unknown allocator \"wishful\""), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("epochs must be >= 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("min_cap_w"), std::string::npos) << msg;
  }
}

// A broken allocator must never silently mint watts: every violation of
// the allocate() contract is a std::logic_error naming the allocator and
// the tree node where it happened.
class MaliciousAllocator final : public FleetAllocator {
 public:
  enum Mode { kWrongSize, kOverBudget, kBelowFloor, kAboveCeiling };
  explicit MaliciousAllocator(Mode mode) : mode_(mode) {}

  std::vector<double> allocate(
      double budget_w, const std::vector<ChildSignal>& children) override {
    std::vector<double> alloc;
    for (const auto& c : children) alloc.push_back(c.min_w);
    switch (mode_) {
      case kWrongSize:
        alloc.pop_back();
        break;
      case kOverBudget:
        // Every child at its (legal) ceiling: bounds pass, the sum mints
        // watts above the budget.
        for (std::size_t i = 0; i < alloc.size(); ++i) {
          alloc[i] = children[i].max_w;
        }
        break;
      case kBelowFloor:
        alloc[0] = children[0].min_w - 1.0;
        break;
      case kAboveCeiling:
        alloc[0] = children[0].max_w + 1.0;
        break;
    }
    return alloc;
  }

 private:
  Mode mode_;
};

std::string contract_error_of(MaliciousAllocator::Mode mode) {
  MaliciousAllocator alloc(mode);
  const std::vector<ChildSignal> children = {{100, 65, 125, 0},
                                             {100, 65, 125, 0}};
  try {
    checked_allocate(alloc, "malicious", "rack 1", 200.0, children);
  } catch (const std::logic_error& e) {
    return e.what();
  }
  return {};
}

TEST(PlanTest, ContractViolationsThrowNamingAllocatorAndTreeNode) {
  for (const auto mode :
       {MaliciousAllocator::kWrongSize, MaliciousAllocator::kOverBudget,
        MaliciousAllocator::kBelowFloor,
        MaliciousAllocator::kAboveCeiling}) {
    const std::string msg = contract_error_of(mode);
    ASSERT_FALSE(msg.empty()) << "mode " << mode << " did not throw";
    EXPECT_NE(msg.find("fleet allocator \"malicious\" violated its contract "
                       "at rack 1"),
              std::string::npos)
        << msg;
  }
  EXPECT_NE(contract_error_of(MaliciousAllocator::kWrongSize)
                .find("returned 1 allocations for 2 children"),
            std::string::npos);
  EXPECT_NE(contract_error_of(MaliciousAllocator::kOverBudget)
                .find("children sum to 250 W, above the 200 W budget"),
            std::string::npos);
  EXPECT_NE(contract_error_of(MaliciousAllocator::kBelowFloor)
                .find("outside its bounds [65, 125]"),
            std::string::npos);
}

TEST(PlanTest, HonestAllocationsPassTheContractCheck) {
  // checked_allocate returns the allocation untouched when it is legal.
  class Honest final : public FleetAllocator {
    std::vector<double> allocate(
        double /*budget_w*/,
        const std::vector<ChildSignal>& children) override {
      std::vector<double> alloc;
      for (const auto& c : children) alloc.push_back(c.min_w);
      return alloc;
    }
  };
  Honest honest;
  const std::vector<ChildSignal> children = {{100, 65, 125, 0},
                                             {100, 65, 125, 0}};
  const auto out =
      checked_allocate(honest, "honest", "cluster", 200.0, children);
  EXPECT_EQ(out, (std::vector<double>{65.0, 65.0}));
}

}  // namespace
}  // namespace dufp::fleet
