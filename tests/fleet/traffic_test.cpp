// Traffic determinism: intensity is a pure function of (profile, seed,
// node, epoch) — the property that lets any process evaluate any subset
// of the fleet in any order and derive the identical allocation plan.
#include "fleet/traffic.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace dufp::fleet {
namespace {

TEST(TrafficTest, KnownProfilesAreRegistered) {
  const auto& names = TrafficModel::profiles();
  EXPECT_EQ(names, (std::vector<std::string>{"diurnal", "heavy-tail",
                                             "flat"}));
  for (const auto& name : names) EXPECT_TRUE(TrafficModel::is_known(name));
  EXPECT_FALSE(TrafficModel::is_known("tidal"));
  EXPECT_EQ(TrafficModel::known_profiles(), "diurnal, heavy-tail, flat");
}

TEST(TrafficTest, UnknownProfileThrowsListingKnownOnes) {
  try {
    TrafficModel model({"tidal", 1});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("tidal"), std::string::npos) << msg;
    EXPECT_NE(msg.find("diurnal"), std::string::npos) << msg;
  }
}

TEST(TrafficTest, IntensityIsInUnitRange) {
  for (const auto& profile : TrafficModel::profiles()) {
    TrafficModel model({profile, 7});
    for (std::size_t node = 0; node < 64; ++node) {
      for (int epoch = 0; epoch < 24; ++epoch) {
        const double x = model.intensity(node, epoch);
        EXPECT_GE(x, 0.0) << profile << " node " << node << " epoch "
                          << epoch;
        EXPECT_LE(x, 1.0) << profile << " node " << node << " epoch "
                          << epoch;
      }
    }
  }
}

TEST(TrafficTest, PureFunctionOfNodeAndEpoch) {
  // Same (profile, seed): identical samples from independent instances,
  // in any evaluation order — no hidden sequential stream.
  for (const auto& profile : TrafficModel::profiles()) {
    TrafficModel a({profile, 3});
    TrafficModel b({profile, 3});
    // b evaluated backwards, a forwards.
    std::vector<double> forward;
    for (std::size_t node = 0; node < 8; ++node) {
      for (int epoch = 0; epoch < 6; ++epoch) {
        forward.push_back(a.intensity(node, epoch));
      }
    }
    std::size_t k = forward.size();
    for (std::size_t node = 8; node-- > 0;) {
      for (int epoch = 6; epoch-- > 0;) {
        --k;
        EXPECT_EQ(forward[k], b.intensity(node, epoch)) << profile;
      }
    }
  }
}

TEST(TrafficTest, SeedsAndNodesDecorrelate) {
  TrafficModel a({"diurnal", 1});
  TrafficModel b({"diurnal", 2});
  int diff_seed = 0;
  int diff_node = 0;
  for (int epoch = 0; epoch < 12; ++epoch) {
    if (a.intensity(0, epoch) != b.intensity(0, epoch)) ++diff_seed;
    if (a.intensity(0, epoch) != a.intensity(1, epoch)) ++diff_node;
  }
  EXPECT_GT(diff_seed, 0);  // different seeds, different streams
  EXPECT_GT(diff_node, 0);  // per-node phase offsets / streams
}

TEST(TrafficTest, ProfilesHaveDistinctShapes) {
  TrafficModel diurnal({"diurnal", 1});
  TrafficModel flat({"flat", 1});
  int differs = 0;
  for (int epoch = 0; epoch < 12; ++epoch) {
    if (diurnal.intensity(0, epoch) != flat.intensity(0, epoch)) ++differs;
  }
  EXPECT_GT(differs, 0);
}

TEST(TrafficTest, HeavyTailBurstsAboveQuietFloor) {
  // Pareto bursts over a quiet floor: across enough samples both a calm
  // epoch and a burst epoch must show up.
  TrafficModel model({"heavy-tail", 5});
  double lo = 1.0;
  double hi = 0.0;
  for (std::size_t node = 0; node < 32; ++node) {
    for (int epoch = 0; epoch < 16; ++epoch) {
      const double x = model.intensity(node, epoch);
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
  }
  EXPECT_LT(lo, 0.5);
  EXPECT_GT(hi, 0.7);
}

}  // namespace
}  // namespace dufp::fleet
