// The fleet allocator registry (the single authority on which allocators
// exist) and the built-in allocators' contract: size preserved, per-child
// bounds respected, sum within budget.
#include "fleet/allocator.h"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace dufp::fleet {
namespace {

std::vector<ChildSignal> children_of(std::vector<double> demands,
                                     double min_w = 65.0,
                                     double max_w = 125.0) {
  std::vector<ChildSignal> out;
  for (const double d : demands) out.push_back({d, min_w, max_w, 0.0});
  return out;
}

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

void expect_contract(const std::vector<double>& alloc, double budget_w,
                     const std::vector<ChildSignal>& children) {
  ASSERT_EQ(alloc.size(), children.size());
  for (std::size_t i = 0; i < alloc.size(); ++i) {
    EXPECT_GE(alloc[i], children[i].min_w - 1e-9) << "child " << i;
    EXPECT_LE(alloc[i], children[i].max_w + 1e-9) << "child " << i;
  }
  EXPECT_LE(sum(alloc), budget_w + 1e-6);
}

TEST(FleetAllocatorRegistryTest, BuiltinsInRegistrationOrder) {
  const auto names = FleetAllocatorRegistry::instance().names();
  EXPECT_EQ(names, (std::vector<std::string>{"static-equal", "proportional",
                                             "fastcap"}));
  EXPECT_EQ(FleetAllocatorRegistry::instance().known_names(),
            "static-equal, proportional, fastcap");
}

TEST(FleetAllocatorRegistryTest, LookupIsCaseInsensitiveAndAliasAware) {
  const auto& registry = FleetAllocatorRegistry::instance();
  EXPECT_EQ(registry.at("FastCap").name, "fastcap");
  EXPECT_EQ(registry.at("fair").name, "fastcap");      // alias
  EXPECT_EQ(registry.at("EQUAL").name, "static-equal");
  EXPECT_EQ(registry.at("proportional-demand").name, "proportional");
  EXPECT_TRUE(registry.contains("static"));
  EXPECT_FALSE(registry.contains("nope"));
}

TEST(FleetAllocatorRegistryTest, UnknownNameListsEveryRegisteredAllocator) {
  try {
    FleetAllocatorRegistry::instance().at("wishful");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown fleet allocator \"wishful\""),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("static-equal, proportional, fastcap"),
              std::string::npos)
        << msg;
  }
}

TEST(FleetAllocatorRegistryTest, AddRejectsCollisionsAndBrokenEntries) {
  FleetAllocatorRegistry registry;
  register_builtin_allocators(registry);
  // Collides (case-insensitively) with an existing canonical name.
  EXPECT_THROW(registry.add({"FASTCAP", "", {}, [] {
                  return FleetAllocatorRegistry::instance().create(
                      "static-equal");
                }}),
               std::invalid_argument);
  // Collides with an alias.
  EXPECT_THROW(registry.add({"mine", "", {"fair"}, [] {
                  return FleetAllocatorRegistry::instance().create(
                      "static-equal");
                }}),
               std::invalid_argument);
  EXPECT_THROW(registry.add({"", "", {}, nullptr}), std::invalid_argument);
  EXPECT_THROW(registry.add({"no-factory", "", {}, nullptr}),
               std::invalid_argument);
}

TEST(FleetAllocatorRegistryTest, LocalRegistryExtensionDoesNotTouchGlobal) {
  FleetAllocatorRegistry registry;
  register_builtin_allocators(registry);
  registry.add({"all-to-first", "grants child 0 everything it can take",
                {},
                [] {
                  class AllToFirst final : public FleetAllocator {
                    std::vector<double> allocate(
                        double budget_w,
                        const std::vector<ChildSignal>& children) override {
                      std::vector<double> alloc;
                      for (const auto& c : children) alloc.push_back(c.min_w);
                      if (!alloc.empty()) alloc[0] = children[0].max_w;
                      return clamp_to_budget(budget_w, children, alloc);
                    }
                  };
                  return std::make_unique<AllToFirst>();
                }});
  EXPECT_TRUE(registry.contains("all-to-first"));
  EXPECT_FALSE(FleetAllocatorRegistry::instance().contains("all-to-first"));
  const auto children = children_of({100, 100, 100});
  expect_contract(registry.create("all-to-first")->allocate(300, children),
                  300, children);
}

TEST(ClampToBudgetTest, ClampsIntoBoundsAndScalesAboveFloors) {
  const auto children = children_of({0, 0, 0});  // bounds [65, 125]
  // Out-of-bounds entries get clamped...
  auto alloc = clamp_to_budget(1000.0, children, {10.0, 500.0, 100.0});
  EXPECT_DOUBLE_EQ(alloc[0], 65.0);
  EXPECT_DOUBLE_EQ(alloc[1], 125.0);
  EXPECT_DOUBLE_EQ(alloc[2], 100.0);
  // ...and an over-budget sum is shrunk in the share above each floor,
  // floors untouched: sum 290 over budget 260 -> scale (260-195)/95.
  alloc = clamp_to_budget(260.0, children, {65.0, 125.0, 100.0});
  EXPECT_NEAR(sum(alloc), 260.0, 1e-9);
  EXPECT_DOUBLE_EQ(alloc[0], 65.0);  // at its floor, untouched
  EXPECT_GT(alloc[1], alloc[2]);     // ordering above floors preserved
  expect_contract(alloc, 260.0, children);
}

TEST(BuiltinAllocatorsTest, AllSatisfyTheContractAcrossBudgets) {
  const auto children = children_of({70.0, 125.0, 90.0, 110.0});
  for (const auto& name : FleetAllocatorRegistry::instance().names()) {
    auto alloc = FleetAllocatorRegistry::instance().create(name);
    // From the floor-only budget to beyond everyone's ceiling.
    for (const double budget : {260.0, 300.0, 380.0, 450.0, 600.0}) {
      expect_contract(alloc->allocate(budget, children), budget, children);
    }
  }
}

TEST(BuiltinAllocatorsTest, StaticEqualIgnoresDemand) {
  auto alloc = FleetAllocatorRegistry::instance().create("static-equal");
  const auto out = alloc->allocate(400.0, children_of({125.0, 65.0, 70.0,
                                                       125.0}));
  for (const double w : out) EXPECT_DOUBLE_EQ(w, 100.0);
}

TEST(BuiltinAllocatorsTest, FastCapRedistributesUnusedShareToStarved) {
  // Child 0 is satisfied at 70 W; water-filling must flow its unused
  // equal share to the starved children instead of stranding it.
  auto alloc = FleetAllocatorRegistry::instance().create("fastcap");
  const auto children = children_of({70.0, 125.0, 125.0});
  const auto out = alloc->allocate(320.0, children);
  expect_contract(out, 320.0, children);
  EXPECT_NEAR(out[0], 70.0, 1e-9);   // capped at its demand
  EXPECT_NEAR(out[1], 125.0, 1e-9);  // full satiation from the freed share
  EXPECT_NEAR(out[2], 125.0, 1e-9);
}

TEST(BuiltinAllocatorsTest, ProportionalFavorsDepressedChildren) {
  auto alloc = FleetAllocatorRegistry::instance().create("proportional");
  std::vector<ChildSignal> children = children_of({125.0, 125.0});
  children[0].depression = 0.9;  // starved last epoch
  children[1].depression = 0.0;
  const auto out = alloc->allocate(200.0, children);
  expect_contract(out, 200.0, children);
  EXPECT_GT(out[0], out[1]);
}

}  // namespace
}  // namespace dufp::fleet
