// FleetSpec is the self-contained identity of a fleet experiment: its
// canonical JSON must round-trip exactly, its fingerprint must pin the
// wire contract, and validation must aggregate every problem house-style.
#include "fleet/spec.h"

#include <gtest/gtest.h>

#include <string>

#include "harness/wire.h"

namespace dufp::fleet {
namespace {

TEST(FleetSpecTest, CanonicalTextRoundTripsExactly) {
  FleetSpec spec = FleetSpec::reference();
  spec.topology = {3, 5, 8};
  spec.allocator = "fastcap";
  spec.traffic_profile = "heavy-tail";
  spec.traffic_seed = 42;
  spec.global_budget_w = 9000.0;
  spec.fault_rate = 0.125;
  const std::string text = spec.canonical_text();
  const FleetSpec back = FleetSpec::parse(text);
  EXPECT_EQ(back.canonical_text(), text);
  EXPECT_EQ(back.fingerprint(), spec.fingerprint());
}

TEST(FleetSpecTest, ParseCanonicalizesAliasAndCaseSpellings) {
  FleetSpec spec = FleetSpec::reference();
  spec.allocator = "FAIR";  // fastcap alias, wrong case
  const FleetSpec back = FleetSpec::parse(spec.canonical_text());
  EXPECT_EQ(back.allocator, "fastcap");
}

TEST(FleetSpecTest, ResolvedBudgetDerivesFromCeilingsWhenZero) {
  FleetSpec spec = FleetSpec::reference();
  spec.global_budget_w = 0.0;  // sentinel: derive from the fleet
  // 2 x 2 x 4 sockets x 125 W ceiling = the uncapped fleet.
  EXPECT_DOUBLE_EQ(spec.resolved_budget_w(), 16 * 125.0);
  spec.global_budget_w = 1560.0;
  EXPECT_DOUBLE_EQ(spec.resolved_budget_w(), 1560.0);
}

TEST(FleetSpecTest, WrongFormatAndVersionRejected) {
  const std::string text = FleetSpec::reference().canonical_text();

  std::string wrong_format = text;
  const auto fpos = wrong_format.find("\"dufp-fleet-spec\"");
  ASSERT_NE(fpos, std::string::npos);
  wrong_format.replace(fpos, std::string("\"dufp-fleet-spec\"").size(),
                       "\"dufp-shard-spec\"");
  EXPECT_THROW(FleetSpec::parse(wrong_format), harness::ShardFormatError);

  std::string wrong_version = text;
  const auto vpos = wrong_version.find("\"version\":1");
  ASSERT_NE(vpos, std::string::npos);
  wrong_version.replace(vpos, std::string("\"version\":1").size(),
                        "\"version\":999");
  EXPECT_THROW(FleetSpec::parse(wrong_version), harness::ShardFormatError);
}

TEST(FleetSpecTest, ValidateAggregatesEveryProblem) {
  FleetSpec spec = FleetSpec::reference();
  spec.name = "";
  spec.topology.racks = 0;
  spec.allocator = "wishful";
  spec.traffic_profile = "tidal";
  spec.policy = "sasquatch";
  spec.epochs = 0;
  spec.tolerated_slowdown = 2.0;
  const auto problems = spec.validate();
  const std::string joined = [&] {
    std::string out;
    for (const auto& p : problems) out += p + "; ";
    return out;
  }();
  EXPECT_GE(problems.size(), 7u) << joined;
  EXPECT_NE(joined.find("name is empty"), std::string::npos) << joined;
  EXPECT_NE(joined.find("racks must be >= 1"), std::string::npos) << joined;
  EXPECT_NE(joined.find("unknown allocator \"wishful\""), std::string::npos)
      << joined;
  EXPECT_NE(joined.find("unknown traffic profile \"tidal\""),
            std::string::npos)
      << joined;
  EXPECT_NE(joined.find("unknown policy \"sasquatch\""), std::string::npos)
      << joined;
}

TEST(FleetSpecTest, BudgetBelowTheFleetFloorRejected) {
  FleetSpec spec = FleetSpec::reference();  // 16 sockets, 65 W floors
  spec.global_budget_w = 500.0;             // < 16 x 65 = 1040
  const auto problems = spec.validate();
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("must cover the fleet's 16 socket floors"),
            std::string::npos)
      << problems[0];
  EXPECT_NE(problems[0].find(">= 1040"), std::string::npos) << problems[0];
}

TEST(FleetSpecTest, ReferenceSpecIsValid) {
  EXPECT_TRUE(FleetSpec::reference().validate().empty());
}

}  // namespace
}  // namespace dufp::fleet
