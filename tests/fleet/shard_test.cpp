// The fleet determinism golden: serial, statically sharded and
// dynamically claimed executions of the same FleetSpec must produce
// byte-identical finalized outputs — with and without a fault storm —
// and the operational surface (salvage, resume manifests, rack/node
// attribution) must match the experiment grids' contract.
#include "fleet/shard.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fleet/spec.h"

namespace dufp::fleet {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string dir = ::testing::TempDir() + info->test_suite_name() +
                          std::string("_") + info->name() + "_" + tag;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

FleetSpec small_spec() {
  FleetSpec spec = FleetSpec::reference();  // 2 x 2 x 4 sockets, 4 epochs
  spec.epoch_seconds = 0.5;
  return spec;
}

/// Runs `shards` static workers in-process and returns their wire bytes.
std::vector<std::string> run_static_shards(const FleetSpec& spec,
                                           int shards) {
  std::vector<std::string> files;
  for (int shard = 0; shard < shards; ++shard) {
    harness::ShardRunOptions options;
    options.shard = shard;
    options.shards = shards;
    std::ostringstream out;
    run_fleet_shard(spec, options, out);
    files.push_back(out.str());
  }
  return files;
}

std::vector<std::string> write_files(const std::string& dir,
                                     const std::vector<std::string>& blobs) {
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < blobs.size(); ++i) {
    const std::string path = dir + "/shard" + std::to_string(i) + ".jsonl";
    std::ofstream(path, std::ios::binary) << blobs[i];
    paths.push_back(path);
  }
  return paths;
}

FleetOutputs gather_and_finalize(const FleetSpec& spec,
                                 const std::vector<std::string>& files,
                                 bool partial = false) {
  harness::GatherOptions options;
  options.partial = partial;
  const FleetGatherReport report = gather_fleet_report(spec, files, options);
  EXPECT_TRUE(report.complete());
  return finalize_fleet(spec, report.results);
}

void expect_identical(const FleetOutputs& a, const FleetOutputs& b) {
  EXPECT_EQ(a.allocation_csv, b.allocation_csv);
  EXPECT_EQ(a.summary_csv, b.summary_csv);
  EXPECT_EQ(a.prometheus, b.prometheus);
}

TEST(FleetShardTest, SerialAndStaticShardsAreByteIdentical) {
  const FleetSpec spec = small_spec();
  const FleetOutputs serial = run_fleet_serial(spec);
  const std::string dir = temp_dir("wire");
  const FleetOutputs sharded = gather_and_finalize(
      spec, write_files(dir, run_static_shards(spec, 2)));
  expect_identical(serial, sharded);
  EXPECT_GT(serial.total_energy_j, 0.0);
  EXPECT_GT(serial.jain_fairness, 0.5);
  EXPECT_LE(serial.jain_fairness, 1.0);
}

TEST(FleetShardTest, DynamicChunkClaimingMatchesSerialBytes) {
  const FleetSpec spec = small_spec();
  const FleetOutputs serial = run_fleet_serial(spec);

  const std::string claim_dir = temp_dir("claims");
  std::vector<std::string> blobs;
  for (int shard = 0; shard < 2; ++shard) {
    harness::FileChunkClaimer claimer(claim_dir,
                                      {"w" + std::to_string(shard), 30.0});
    harness::ShardRunOptions options;
    options.shard = shard;
    options.shards = 2;
    options.chunk_size = 1;
    options.claimer = &claimer;
    std::ostringstream out;
    run_fleet_shard(spec, options, out);
    blobs.push_back(out.str());
  }
  const std::string dir = temp_dir("wire");
  expect_identical(serial, gather_and_finalize(spec, write_files(dir, blobs)));
}

TEST(FleetShardTest, FaultStormStaysByteIdenticalAcrossSharding) {
  FleetSpec spec = small_spec();
  spec.fault_rate = 0.3;
  spec.fault_seed = 11;
  const FleetOutputs serial = run_fleet_serial(spec);
  const std::string dir = temp_dir("wire");
  const FleetOutputs sharded = gather_and_finalize(
      spec, write_files(dir, run_static_shards(spec, 3)));
  expect_identical(serial, sharded);
  // The storm must actually have fired: the summary's trailing
  // faults_injected,degradations columns cannot both be zero.
  EXPECT_EQ(serial.summary_csv.find(",0,0\n"), std::string::npos)
      << serial.summary_csv;
}

TEST(FleetShardTest, MissingJobsNameRackAndNode) {
  const FleetSpec spec = small_spec();
  auto blobs = run_static_shards(spec, 2);
  blobs.pop_back();  // shard 1 (nodes 1 and 3) never reported
  const std::string dir = temp_dir("wire");
  try {
    gather_fleet_report(spec, write_files(dir, blobs));
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("2 of 4 jobs missing"), std::string::npos) << msg;
    EXPECT_NE(msg.find("job 1 = rack 0 / node 1 (shard 1)"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("job 3 = rack 1 / node 1 (shard 1)"),
              std::string::npos)
        << msg;
  }
}

TEST(FleetShardTest, SalvageAndResumeReproduceTheFullRunBytes) {
  const FleetSpec spec = small_spec();
  const FleetOutputs serial = run_fleet_serial(spec);

  // Lose one shard, salvage the rest.
  auto blobs = run_static_shards(spec, 2);
  blobs.pop_back();
  const std::string dir = temp_dir("wire");
  auto files = write_files(dir, blobs);
  harness::GatherOptions partial;
  partial.partial = true;
  const FleetGatherReport report = gather_fleet_report(spec, files, partial);
  EXPECT_FALSE(report.complete());
  EXPECT_EQ(report.missing, (std::vector<std::size_t>{1, 3}));

  // The manifest round-trips and drives a resume run of just the holes.
  const FleetRetryManifest manifest = make_fleet_retry_manifest(spec, report);
  const FleetRetryManifest back =
      FleetRetryManifest::parse(manifest.canonical_text());
  EXPECT_EQ(back.missing, manifest.missing);
  EXPECT_EQ(back.spec.fingerprint(), spec.fingerprint());

  harness::ShardRunOptions resume;
  resume.job_filter = &back.missing;
  std::ostringstream out;
  run_fleet_shard(back.spec, resume, out);
  files.push_back(dir + "/resume.jsonl");
  std::ofstream(files.back(), std::ios::binary) << out.str();

  expect_identical(serial, gather_and_finalize(spec, files));
}

TEST(FleetShardTest, RetryManifestTamperGuard) {
  const FleetSpec spec = small_spec();
  FleetRetryManifest manifest;
  manifest.spec = spec;
  manifest.missing = {1, 3};
  std::string text = manifest.canonical_text();

  // Editing the embedded spec without refreshing the fingerprint is a
  // tamper, not a different experiment.
  const auto pos = text.find("\"fleet-reference\"");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::string("\"fleet-reference\"").size(),
               "\"fleet-doctored!\"");
  try {
    FleetRetryManifest::parse(text);
    FAIL() << "expected ShardFormatError";
  } catch (const harness::ShardFormatError& e) {
    EXPECT_NE(std::string(e.what())
                  .find("does not match its recorded fingerprint"),
              std::string::npos)
        << e.what();
  }

  // Out-of-order or out-of-range missing lists are rejected too.
  FleetRetryManifest bad = manifest;
  bad.missing = {3, 1};
  EXPECT_THROW(FleetRetryManifest::parse(bad.canonical_text()),
               harness::ShardFormatError);
  bad.missing = {1, 99};
  EXPECT_THROW(FleetRetryManifest::parse(bad.canonical_text()),
               harness::ShardFormatError);
}

TEST(FleetShardTest, FinalizeRejectsShapeMismatches) {
  const FleetSpec spec = small_spec();
  EXPECT_THROW(finalize_fleet(spec, {}), std::invalid_argument);
  std::vector<FleetNodeResult> results(spec.topology.node_count());
  // Right node count, wrong epoch count in node 2.
  for (auto& r : results) r.epochs.resize(4);
  results[2].epochs.resize(3);
  try {
    finalize_fleet(spec, results);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what())
                  .find("node 2 has 3 epoch records, spec has 4 epochs"),
              std::string::npos)
        << e.what();
  }
}

TEST(FleetShardTest, ThousandSocketFleetShardsByteIdentically) {
  // The acceptance-scale shape: 8 racks x 8 nodes x 16 sockets = 1024
  // sockets, shrunk to one short epoch pair so the tier-1 suite stays
  // fast.  Serial and 4-way sharded execution must agree byte for byte.
  FleetSpec spec;
  spec.name = "fleet-1k";
  spec.topology = {8, 8, 16};
  spec.epochs = 2;
  spec.epoch_seconds = 0.1;
  spec.allocator = "fastcap";
  spec.global_budget_w = 0.8 * 1024 * 125.0;
  ASSERT_EQ(spec.topology.socket_count(), 1024u);
  ASSERT_TRUE(spec.validate().empty());

  const FleetOutputs serial = run_fleet_serial(spec);
  const std::string dir = temp_dir("wire");
  const FleetOutputs sharded = gather_and_finalize(
      spec, write_files(dir, run_static_shards(spec, 4)));
  expect_identical(serial, sharded);
  // 64 nodes x 2 epochs of allocation rows plus the header.
  std::size_t lines = 0;
  for (const char c : serial.allocation_csv) lines += c == '\n';
  EXPECT_EQ(lines, 1u + 64u * 2u);
}

}  // namespace
}  // namespace dufp::fleet
