#include "common/string_util.h"

#include <gtest/gtest.h>

namespace dufp {
namespace {

TEST(TrimTest, StripsWhitespace) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("\tabc\n"), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(SplitTest, SplitsOnDelimiter) {
  EXPECT_EQ(split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, PreservesEmptyFields) {
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(IEqualsTest, CaseInsensitive) {
  EXPECT_TRUE(iequals("LAMMPS", "lammps"));
  EXPECT_TRUE(iequals("Cg", "cG"));
  EXPECT_FALSE(iequals("abc", "abd"));
  EXPECT_FALSE(iequals("abc", "ab"));
}

TEST(ToLowerTest, Lowercases) {
  EXPECT_EQ(to_lower("DUFP.Slowdown"), "dufp.slowdown");
}

TEST(StrfTest, FormatsLikePrintf) {
  EXPECT_EQ(strf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(strf("%.2f W", 12.345), "12.35 W");
}

TEST(StrfTest, LongOutput) {
  const std::string s = strf("%0128d", 5);
  EXPECT_EQ(s.size(), 128u);
}

TEST(ParseDoubleTest, PlainNumbers) {
  double v = 0;
  EXPECT_TRUE(parse_double("12.5", v));
  EXPECT_DOUBLE_EQ(v, 12.5);
  EXPECT_TRUE(parse_double("-3", v));
  EXPECT_DOUBLE_EQ(v, -3.0);
}

TEST(ParseDoubleTest, UnitSuffixAllowed) {
  double v = 0;
  EXPECT_TRUE(parse_double("110W", v));
  EXPECT_DOUBLE_EQ(v, 110.0);
  EXPECT_TRUE(parse_double("2.4GHz", v));
  EXPECT_DOUBLE_EQ(v, 2.4);
  EXPECT_TRUE(parse_double("5%", v));
  EXPECT_DOUBLE_EQ(v, 5.0);
}

TEST(ParseDoubleTest, WhitespaceTolerated) {
  double v = 0;
  EXPECT_TRUE(parse_double("  7.5  ", v));
  EXPECT_DOUBLE_EQ(v, 7.5);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  double v = 0;
  EXPECT_FALSE(parse_double("", v));
  EXPECT_FALSE(parse_double("abc", v));
  EXPECT_FALSE(parse_double("1.5x2", v));
  EXPECT_FALSE(parse_double("12..5", v));
}

TEST(ParseU64Test, ParsesNonNegative) {
  unsigned long long v = 0;
  EXPECT_TRUE(parse_u64("42", v));
  EXPECT_EQ(v, 42ull);
  EXPECT_TRUE(parse_u64(" 0 ", v));
  EXPECT_EQ(v, 0ull);
}

TEST(ParseU64Test, RejectsNegativeAndGarbage) {
  unsigned long long v = 0;
  EXPECT_FALSE(parse_u64("-1", v));
  EXPECT_FALSE(parse_u64("12.5", v));
  EXPECT_FALSE(parse_u64("", v));
  EXPECT_FALSE(parse_u64("x", v));
}

}  // namespace
}  // namespace dufp
