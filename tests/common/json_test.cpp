#include "common/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

namespace dufp::json {
namespace {

TEST(JsonTest, RoundTripsAnObjectByteExactly) {
  const std::string text =
      R"({"format":"dufp-shard-result","version":1,"jobs":[0,1,2],)"
      R"("ok":true,"note":null,"x":-3.25e2})";
  const Value v = parse(text);
  EXPECT_EQ(v.dump(), text);  // insertion order + raw number tokens
}

TEST(JsonTest, TypedAccessors) {
  const Value v = parse(R"({"u":18446744073709551615,"i":-42,"d":1.5,)"
                        R"("s":"hi","b":false,"a":[1,2]})");
  EXPECT_EQ(v.at("u").as_u64(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(v.at("i").as_i64(), -42);
  EXPECT_DOUBLE_EQ(v.at("d").as_double(), 1.5);
  EXPECT_EQ(v.at("s").as_string(), "hi");
  EXPECT_FALSE(v.at("b").as_bool());
  EXPECT_EQ(v.at("a").as_array().size(), 2u);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(v.at("missing"), std::runtime_error);
  EXPECT_THROW(v.at("s").as_double(), std::runtime_error);
  EXPECT_THROW(v.at("i").as_u64(), std::runtime_error);
}

TEST(JsonTest, StringEscapes) {
  Value v = Value::make_object();
  v.add("k", Value::make_string("a\"b\\c\nd\te\x01"));
  const std::string text = v.dump();
  EXPECT_EQ(text, "{\"k\":\"a\\\"b\\\\c\\nd\\te\\u0001\"}");
  EXPECT_EQ(parse(text).at("k").as_string(), "a\"b\\c\nd\te\x01");
}

TEST(JsonTest, ParseErrorsCarryOffset) {
  try {
    parse(R"({"a":1,})");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
  EXPECT_THROW(parse(""), std::runtime_error);
  EXPECT_THROW(parse("{\"a\":1} junk"), std::runtime_error);
  EXPECT_THROW(parse("[1,2"), std::runtime_error);
  EXPECT_THROW(parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(parse("tru"), std::runtime_error);
}

TEST(JsonTest, HexDoubleIsBitExact) {
  const double values[] = {0.0,
                           -0.0,
                           1.0,
                           -1.0 / 3.0,
                           3.14159265358979312e100,
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max(),
                           std::numeric_limits<double>::infinity()};
  for (const double v : values) {
    const std::string hex = double_to_hex(v);
    ASSERT_EQ(hex.size(), 16u);
    const double back = hex_to_double(hex);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(v), std::bit_cast<std::uint64_t>(back));
  }
  // NaN payloads survive too (bit pattern, not value, is transported).
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(std::bit_cast<std::uint64_t>(nan),
            std::bit_cast<std::uint64_t>(hex_to_double(double_to_hex(nan))));
  EXPECT_EQ(double_to_hex(-0.0), "8000000000000000");
  EXPECT_THROW(hex_to_double("123"), std::runtime_error);
  EXPECT_THROW(hex_to_double("zzzzzzzzzzzzzzzz"), std::runtime_error);
}

TEST(JsonTest, Fnv1aMatchesReferenceVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ULL);
}

}  // namespace
}  // namespace dufp::json
