#include "common/units.h"

#include <gtest/gtest.h>

namespace dufp {
namespace {

TEST(UnitsTest, FrequencyConversions) {
  EXPECT_DOUBLE_EQ(mhz_to_ghz(2400.0), 2.4);
  EXPECT_DOUBLE_EQ(ghz_to_mhz(1.2), 1200.0);
}

TEST(UnitsTest, TimeConversions) {
  EXPECT_DOUBLE_EQ(us_to_seconds(1'500'000), 1.5);
  EXPECT_EQ(seconds_to_us(0.2), 200'000);
  EXPECT_EQ(seconds_to_us(-0.2), -200'000);
}

TEST(UnitsTest, SecondsToMicrosRounds) {
  EXPECT_EQ(seconds_to_us(0.0000005), 1);   // rounds up
  EXPECT_EQ(seconds_to_us(0.0000004), 0);   // rounds down
}

TEST(UnitsTest, PowerConversions) {
  EXPECT_DOUBLE_EQ(uw_to_watts(125'000'000ull), 125.0);
  EXPECT_EQ(watts_to_uw(110.5), 110'500'000ull);
}

TEST(UnitsTest, PowerRoundTrip) {
  for (double w : {1.0, 65.0, 110.06, 150.0}) {
    EXPECT_NEAR(uw_to_watts(watts_to_uw(w)), w, 1e-6);
  }
}

TEST(UnitsTest, EnergyConversions) {
  EXPECT_DOUBLE_EQ(uj_to_joules(2'500'000ull), 2.5);
}

TEST(UnitsTest, RateConversions) {
  EXPECT_DOUBLE_EQ(flops_to_gflops(96e9), 96.0);
  EXPECT_DOUBLE_EQ(bps_to_gbps(85e9), 85.0);
}

TEST(UnitsTest, WrapDeltaNoWrap) {
  EXPECT_EQ(wrap_delta(100, 250, 1000), 150u);
  EXPECT_EQ(wrap_delta(100, 100, 1000), 0u);  // after == before
}

TEST(UnitsTest, WrapDeltaAcrossTheBoundary) {
  // RAPL-style 32-bit raw counter: 2^32 - 5 .. 10 is a 15-unit step.
  const std::uint64_t range = 1ULL << 32;
  EXPECT_EQ(wrap_delta(range - 5, 10, range), 15u);
  // Landing exactly on zero at the wrap point.
  EXPECT_EQ(wrap_delta(range - 1, 0, range), 1u);
  // Maximal single-wrap delta: full revolution minus one.
  EXPECT_EQ(wrap_delta(1, 0, range), range - 1);
}

TEST(UnitsTest, WrapDeltaZeroRangeMeansNoWrap) {
  // A 64-bit counter never wraps in practice: plain subtraction.
  EXPECT_EQ(wrap_delta(7, 1000007, 0), 1000000u);
}

TEST(UnitsTest, WrapDeltaIsConstexpr) {
  static_assert(wrap_delta(90, 10, 100) == 20);
  static_assert(wrap_delta(10, 90, 100) == 80);
  SUCCEED();
}

}  // namespace
}  // namespace dufp
