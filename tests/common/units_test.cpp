#include "common/units.h"

#include <gtest/gtest.h>

namespace dufp {
namespace {

TEST(UnitsTest, FrequencyConversions) {
  EXPECT_DOUBLE_EQ(mhz_to_ghz(2400.0), 2.4);
  EXPECT_DOUBLE_EQ(ghz_to_mhz(1.2), 1200.0);
}

TEST(UnitsTest, TimeConversions) {
  EXPECT_DOUBLE_EQ(us_to_seconds(1'500'000), 1.5);
  EXPECT_EQ(seconds_to_us(0.2), 200'000);
  EXPECT_EQ(seconds_to_us(-0.2), -200'000);
}

TEST(UnitsTest, SecondsToMicrosRounds) {
  EXPECT_EQ(seconds_to_us(0.0000005), 1);   // rounds up
  EXPECT_EQ(seconds_to_us(0.0000004), 0);   // rounds down
}

TEST(UnitsTest, PowerConversions) {
  EXPECT_DOUBLE_EQ(uw_to_watts(125'000'000ull), 125.0);
  EXPECT_EQ(watts_to_uw(110.5), 110'500'000ull);
}

TEST(UnitsTest, PowerRoundTrip) {
  for (double w : {1.0, 65.0, 110.06, 150.0}) {
    EXPECT_NEAR(uw_to_watts(watts_to_uw(w)), w, 1e-6);
  }
}

TEST(UnitsTest, EnergyConversions) {
  EXPECT_DOUBLE_EQ(uj_to_joules(2'500'000ull), 2.5);
}

TEST(UnitsTest, RateConversions) {
  EXPECT_DOUBLE_EQ(flops_to_gflops(96e9), 96.0);
  EXPECT_DOUBLE_EQ(bps_to_gbps(85e9), 85.0);
}

}  // namespace
}  // namespace dufp
