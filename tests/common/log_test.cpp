#include "common/log.h"

#include <gtest/gtest.h>

namespace dufp {
namespace {

TEST(LogTest, SingletonIdentity) {
  EXPECT_EQ(&Logger::instance(), &Logger::instance());
}

TEST(LogTest, LevelFilterStored) {
  Logger& log = Logger::instance();
  const LogLevel before = log.level();
  log.set_level(LogLevel::error);
  EXPECT_EQ(log.level(), LogLevel::error);
  log.set_level(LogLevel::off);
  EXPECT_EQ(log.level(), LogLevel::off);
  log.set_level(before);
}

TEST(LogTest, HelpersDoNotThrowAtAnyLevel) {
  Logger& log = Logger::instance();
  const LogLevel before = log.level();
  for (LogLevel level : {LogLevel::debug, LogLevel::off}) {
    log.set_level(level);
    EXPECT_NO_THROW(log_debug("debug message"));
    EXPECT_NO_THROW(log_info("info message"));
    EXPECT_NO_THROW(log_warn("warn message"));
    EXPECT_NO_THROW(log_error("error message"));
  }
  log.set_level(before);
}

TEST(LogTest, LevelOrderingIsMonotonic) {
  EXPECT_LT(static_cast<int>(LogLevel::debug),
            static_cast<int>(LogLevel::info));
  EXPECT_LT(static_cast<int>(LogLevel::info),
            static_cast<int>(LogLevel::warn));
  EXPECT_LT(static_cast<int>(LogLevel::warn),
            static_cast<int>(LogLevel::error));
  EXPECT_LT(static_cast<int>(LogLevel::error),
            static_cast<int>(LogLevel::off));
}

}  // namespace
}  // namespace dufp
