#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace dufp {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, DoublesInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.uniform(-3.0, 5.0);
    EXPECT_GE(d, -3.0);
    EXPECT_LT(d, 5.0);
  }
}

TEST(RngTest, UniformMeanNearCenter) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(0.0, 1.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(13);
  const int n = 200'000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(RngTest, GaussianWithParamsScales) {
  Rng rng(17);
  const int n = 100'000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(42);
  Rng f1 = parent.fork(1);
  Rng f2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (f1.next_u64() == f2.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ForkWithSameTagFromSameStateMatches) {
  Rng a(5);
  Rng b(5);
  Rng fa = a.fork(9);
  Rng fb = b.fork(9);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

TEST(RngTest, NoShortCycles) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10'000; ++i) seen.insert(rng.next_u64());
  EXPECT_EQ(seen.size(), 10'000u);
}

}  // namespace
}  // namespace dufp
