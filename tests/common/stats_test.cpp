#include "common/stats.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dufp {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squares = 32 -> 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, ClearResets) {
  RunningStats s;
  s.add(1.0);
  s.clear();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(RunningStatsTest, NumericallyStableOnOffsetData) {
  RunningStats s;
  const double offset = 1e9;
  for (double v : {offset + 1, offset + 2, offset + 3}) s.add(v);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(TimeWeightedMeanTest, WeightsProperly) {
  TimeWeightedMean m;
  m.add(100.0, 1.0);
  m.add(50.0, 3.0);
  EXPECT_DOUBLE_EQ(m.mean(), (100.0 + 150.0) / 4.0);
  EXPECT_DOUBLE_EQ(m.total_weight(), 4.0);
}

TEST(TimeWeightedMeanTest, EmptyIsZero) {
  TimeWeightedMean m;
  EXPECT_EQ(m.mean(), 0.0);
}

TEST(TimeWeightedMeanTest, RejectsNegativeWeight) {
  TimeWeightedMean m;
  EXPECT_THROW(m.add(1.0, -0.1), std::invalid_argument);
}

TEST(TrimmedSummaryTest, FollowsPaperProtocol) {
  // 10 runs; the lowest and highest key (execution time) are dropped; the
  // paper then averages the remaining 8 (Sec. V).
  std::vector<double> key{10, 1, 5, 6, 7, 2, 3, 9, 8, 4};
  std::vector<double> values = key;  // trim on the values themselves
  const auto s = trimmed_summary(key, values);
  EXPECT_EQ(s.used, 8u);
  EXPECT_DOUBLE_EQ(s.mean, (2 + 3 + 4 + 5 + 6 + 7 + 8 + 9) / 8.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(TrimmedSummaryTest, TrimsByKeyNotValue) {
  // The run with the fastest/slowest *time* is dropped, whatever its power.
  std::vector<double> time{1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> power{100.0, 90.0, 80.0, 70.0, 60.0};
  const auto s = trimmed_summary(time, power);
  EXPECT_EQ(s.used, 3u);
  EXPECT_DOUBLE_EQ(s.mean, (90.0 + 80.0 + 70.0) / 3.0);
}

TEST(TrimmedSummaryTest, FewerThanThreeRunsNotTrimmed) {
  const auto one = trimmed_summary({5.0});
  EXPECT_EQ(one.used, 1u);
  EXPECT_DOUBLE_EQ(one.mean, 5.0);

  const auto two = trimmed_summary({5.0, 7.0});
  EXPECT_EQ(two.used, 2u);
  EXPECT_DOUBLE_EQ(two.mean, 6.0);
}

TEST(TrimmedSummaryTest, MismatchedSizesThrow) {
  EXPECT_THROW(trimmed_summary({1.0, 2.0}, {1.0}), std::invalid_argument);
}

TEST(TrimmedSummaryTest, EmptyThrows) {
  EXPECT_THROW(trimmed_summary({}), std::invalid_argument);
}

TEST(PercentileTest, InterpolatesLinearly) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 1.75);
}

TEST(PercentileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({42.0}, 73), 42.0);
}

TEST(PercentileTest, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 50), 2.0);
}

TEST(PercentileTest, OutOfRangePThrows) {
  EXPECT_THROW(percentile({1.0}, -1), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101), std::invalid_argument);
}

}  // namespace
}  // namespace dufp
