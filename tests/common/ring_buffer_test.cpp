#include "common/ring_buffer.h"

#include <gtest/gtest.h>

#include <vector>

namespace dufp {
namespace {

TEST(RingBufferTest, StartsEmpty) {
  RingBuffer<int> rb(4);
  EXPECT_TRUE(rb.empty());
  EXPECT_FALSE(rb.full());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 4u);
}

TEST(RingBufferTest, ZeroCapacityRejected) {
  EXPECT_THROW(RingBuffer<int>(0), std::invalid_argument);
}

TEST(RingBufferTest, PushUntilFull) {
  RingBuffer<int> rb(3);
  EXPECT_FALSE(rb.push(1));
  EXPECT_FALSE(rb.push(2));
  EXPECT_FALSE(rb.push(3));
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.oldest(), 1);
  EXPECT_EQ(rb.newest(), 3);
}

TEST(RingBufferTest, EvictsOldestWhenFull) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  rb.push(3);
  EXPECT_TRUE(rb.push(4));  // evicts 1
  EXPECT_EQ(rb.oldest(), 2);
  EXPECT_EQ(rb.newest(), 4);
  EXPECT_EQ(rb.size(), 3u);
}

TEST(RingBufferTest, FromNewestIndexing) {
  RingBuffer<int> rb(4);
  for (int i = 1; i <= 6; ++i) rb.push(i);  // holds 3,4,5,6
  EXPECT_EQ(rb.from_newest(0), 6);
  EXPECT_EQ(rb.from_newest(1), 5);
  EXPECT_EQ(rb.from_newest(3), 3);
}

TEST(RingBufferTest, FromOldestIndexing) {
  RingBuffer<int> rb(4);
  for (int i = 1; i <= 6; ++i) rb.push(i);
  EXPECT_EQ(rb.from_oldest(0), 3);
  EXPECT_EQ(rb.from_oldest(3), 6);
}

TEST(RingBufferTest, OutOfRangeAccessThrows) {
  RingBuffer<int> rb(4);
  rb.push(1);
  EXPECT_THROW(rb.from_newest(1), std::invalid_argument);
  EXPECT_THROW(rb.from_oldest(1), std::invalid_argument);
}

TEST(RingBufferTest, ForEachVisitsOldestToNewest) {
  RingBuffer<int> rb(3);
  for (int i = 1; i <= 5; ++i) rb.push(i);  // 3,4,5
  std::vector<int> seen;
  rb.for_each([&](int v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{3, 4, 5}));
}

TEST(RingBufferTest, ClearEmpties) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(9);
  EXPECT_EQ(rb.newest(), 9);
  EXPECT_EQ(rb.oldest(), 9);
}

TEST(WindowedMeanTest, PartialWindow) {
  WindowedMean m(4);
  m.add(2.0);
  m.add(4.0);
  EXPECT_DOUBLE_EQ(m.mean(), 3.0);
  EXPECT_FALSE(m.full());
}

TEST(WindowedMeanTest, SlidesWhenFull) {
  WindowedMean m(2);
  m.add(1.0);
  m.add(3.0);
  m.add(5.0);  // window now {3,5}
  EXPECT_DOUBLE_EQ(m.mean(), 4.0);
  EXPECT_TRUE(m.full());
}

TEST(WindowedMeanTest, EmptyMeanIsZero) {
  WindowedMean m(3);
  EXPECT_EQ(m.mean(), 0.0);
}

TEST(WindowedMeanTest, LongStreamStaysExact) {
  // O(1) update must not drift: compare against a direct computation.
  WindowedMean m(10);
  double direct[10] = {};
  for (int i = 0; i < 10'000; ++i) {
    const double v = (i * 37 % 101) * 0.5;
    m.add(v);
    direct[i % 10] = v;
    if (i >= 9) {
      double sum = 0.0;
      for (double d : direct) sum += d;
      ASSERT_NEAR(m.mean(), sum / 10.0, 1e-9);
    }
  }
}

TEST(WindowedMeanTest, ClearResets) {
  WindowedMean m(2);
  m.add(10.0);
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.mean(), 0.0);
}

}  // namespace
}  // namespace dufp
