#include "common/config.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dufp {
namespace {

TEST(ConfigTest, ParsesKeyValues) {
  const auto cfg = Config::parse("a = 1\nb= two\n c =3.5\n");
  EXPECT_EQ(cfg.get_string("a", ""), "1");
  EXPECT_EQ(cfg.get_string("b", ""), "two");
  EXPECT_DOUBLE_EQ(cfg.get_double("c", 0), 3.5);
}

TEST(ConfigTest, CommentsAndBlanksIgnored) {
  const auto cfg = Config::parse("# comment\n\na = 1  # trailing\n");
  EXPECT_EQ(cfg.get_string("a", ""), "1");
  EXPECT_FALSE(cfg.has("comment"));
}

TEST(ConfigTest, KeysAreCaseInsensitive) {
  const auto cfg = Config::parse("DUFP.Slowdown = 0.05\n");
  EXPECT_TRUE(cfg.has("dufp.slowdown"));
  EXPECT_DOUBLE_EQ(cfg.get_double("DUFP.SLOWDOWN", 0), 0.05);
}

TEST(ConfigTest, MissingKeyReturnsDefault) {
  const Config cfg;
  EXPECT_EQ(cfg.get_string("nope", "def"), "def");
  EXPECT_DOUBLE_EQ(cfg.get_double("nope", 1.5), 1.5);
  EXPECT_EQ(cfg.get_int("nope", 7), 7);
  EXPECT_TRUE(cfg.get_bool("nope", true));
  EXPECT_FALSE(cfg.get("nope").has_value());
}

TEST(ConfigTest, MalformedLineThrowsWithLineNumber) {
  try {
    Config::parse("a = 1\nbad line\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ConfigTest, EmptyKeyThrows) {
  EXPECT_THROW(Config::parse(" = 1\n"), std::runtime_error);
}

TEST(ConfigTest, BadNumberThrowsNotDefaults) {
  const auto cfg = Config::parse("x = banana\n");
  EXPECT_THROW(cfg.get_double("x", 0), std::runtime_error);
  EXPECT_THROW(cfg.get_int("x", 0), std::runtime_error);
}

TEST(ConfigTest, BoolParsing) {
  const auto cfg = Config::parse(
      "t1=1\nt2=true\nt3=YES\nt4=on\nf1=0\nf2=false\nf3=No\nf4=off\n");
  for (const char* k : {"t1", "t2", "t3", "t4"}) {
    EXPECT_TRUE(cfg.get_bool(k, false)) << k;
  }
  for (const char* k : {"f1", "f2", "f3", "f4"}) {
    EXPECT_FALSE(cfg.get_bool(k, true)) << k;
  }
}

TEST(ConfigTest, BadBoolThrows) {
  const auto cfg = Config::parse("x = maybe\n");
  EXPECT_THROW(cfg.get_bool("x", false), std::runtime_error);
}

TEST(ConfigTest, SetOverrides) {
  Config cfg;
  cfg.set("k", "1");
  cfg.set("K", "2");
  EXPECT_EQ(cfg.get_string("k", ""), "2");
}

TEST(ConfigTest, KeysSorted) {
  const auto cfg = Config::parse("b=1\na=2\nc=3\n");
  EXPECT_EQ(cfg.keys(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ConfigTest, ValueWithEqualsSign) {
  const auto cfg = Config::parse("cmd = a=b\n");
  EXPECT_EQ(cfg.get_string("cmd", ""), "a=b");
}

TEST(ConfigTest, LoadMissingFileThrows) {
  EXPECT_THROW(Config::load("/nonexistent/path/cfg.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace dufp
