#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace dufp {
namespace {

TEST(ThreadPoolTest, RunsTasksAndReturnsValues) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int {
    throw std::runtime_error("job failed");
  });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The worker survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, SingleWorkerPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(ThreadPoolTest, BoundedQueueBlocksProducerUntilSpaceFrees) {
  ThreadPool pool(1, /*queue_capacity=*/1);
  std::promise<void> release;
  auto gate = release.get_future().share();

  // Occupy the only worker, then fill the single queue slot.
  auto running = pool.submit([gate] { gate.wait(); });
  auto queued = pool.submit([] {});

  // A third submit must block until the worker drains the queue.
  std::atomic<bool> submitted{false};
  std::thread producer([&] {
    pool.submit([] {}).wait();
    submitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(submitted.load());

  release.set_value();
  producer.join();
  EXPECT_TRUE(submitted.load());
  running.get();
  queued.get();
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> executed{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2, /*queue_capacity=*/64);
    for (int i = 0; i < 40; ++i) {
      futures.push_back(pool.submit([&executed] { ++executed; }));
    }
    pool.shutdown();
    EXPECT_EQ(executed.load(), 40);
    EXPECT_THROW(pool.submit([] {}), std::runtime_error);
  }  // destructor after explicit shutdown: no double-join
  for (auto& f : futures) f.get();
}

TEST(ThreadPoolTest, StressManySmallTasks) {
  std::atomic<long> sum{0};
  {
    ThreadPool pool(8, 128);
    std::vector<std::future<void>> futures;
    futures.reserve(1000);
    for (int i = 1; i <= 1000; ++i) {
      futures.push_back(pool.submit([&sum, i] { sum += i; }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(sum.load(), 500'500);
}

}  // namespace
}  // namespace dufp
