#include "common/expect.h"

#include <gtest/gtest.h>

namespace dufp {
namespace {

TEST(ExpectTest, PassingConditionIsSilent) {
  EXPECT_NO_THROW(DUFP_EXPECT(1 + 1 == 2));
  EXPECT_NO_THROW(DUFP_ASSERT(true));
}

TEST(ExpectTest, FailingExpectThrowsInvalidArgument) {
  EXPECT_THROW(DUFP_EXPECT(false), std::invalid_argument);
}

TEST(ExpectTest, FailingAssertThrowsLogicError) {
  EXPECT_THROW(DUFP_ASSERT(false), std::logic_error);
}

TEST(ExpectTest, MessageNamesExpressionAndLocation) {
  try {
    DUFP_EXPECT(2 < 1);
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("expect_test.cpp"), std::string::npos);
  }
}

TEST(ExpectTest, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  auto once = [&] {
    ++calls;
    return true;
  };
  DUFP_EXPECT(once());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace dufp
