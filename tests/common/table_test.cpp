#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dufp {
namespace {

TEST(FmtDoubleTest, Precision) {
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_double(1.0, 0), "1");
  EXPECT_EQ(fmt_double(-0.5, 1), "-0.5");
}

TEST(TextTableTest, EmptyHeaderRejected) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTableTest, RowWidthMustMatchHeader) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(TextTableTest, NumericRowHelper) {
  TextTable t({"app", "x", "y"});
  t.add_row("CG", {1.234, 5.678}, 1);
  EXPECT_EQ(t.row_count(), 1u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("CG"), std::string::npos);
  EXPECT_NE(s.find("1.2"), std::string::npos);
  EXPECT_NE(s.find("5.7"), std::string::npos);
}

TEST(TextTableTest, NumericRowHelperSizeChecked) {
  TextTable t({"app", "x", "y"});
  EXPECT_THROW(t.add_row("CG", {1.0}), std::invalid_argument);
}

TEST(TextTableTest, ColumnsAligned) {
  TextTable t({"a", "long header"});
  t.add_row({"very long cell", "x"});
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();

  // Every rendered line has the same width.
  std::size_t width = std::string::npos;
  std::size_t start = 0;
  int lines = 0;
  while (start < out.size()) {
    const auto end = out.find('\n', start);
    const std::string line = out.substr(start, end - start);
    if (width == std::string::npos) width = line.size();
    EXPECT_EQ(line.size(), width);
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, 5);  // sep, header, sep, row, sep
}

TEST(TextTableTest, SeparatorsPresent) {
  TextTable t({"h"});
  t.add_row({"v"});
  const std::string s = t.to_string();
  EXPECT_EQ(s.find("+"), 0u);
  EXPECT_NE(s.find("| h"), std::string::npos);
  EXPECT_NE(s.find("| v"), std::string::npos);
}

}  // namespace
}  // namespace dufp
