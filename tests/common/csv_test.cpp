#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace dufp {
namespace {

TEST(CsvEscapeTest, PlainFieldUntouched) {
  EXPECT_EQ(csv_escape("abc"), "abc");
  EXPECT_EQ(csv_escape("1.5"), "1.5");
}

TEST(CsvEscapeTest, CommaQuoted) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscapeTest, QuotesDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscapeTest, NewlinesQuoted) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriterTest, WritesRowsToStream) {
  std::ostringstream oss;
  CsvWriter w(oss);
  w.write_row({"a", "b,c"});
  w.write_row({"1", "2"});
  EXPECT_EQ(oss.str(), "a,\"b,c\"\n1,2\n");
  EXPECT_EQ(w.rows_written(), 2u);
}

TEST(CsvWriterTest, NumericRowHelper) {
  std::ostringstream oss;
  CsvWriter w(oss);
  w.write_row("CG", {1.5, 2.25}, 2);
  EXPECT_EQ(oss.str(), "CG,1.50,2.25\n");
}

TEST(CsvWriterTest, FileTargetWorks) {
  const std::string path = testing::TempDir() + "/dufp_csv_test.csv";
  {
    CsvWriter w(path);
    w.write_row({"x", "y"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, UnopenablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_zzz/file.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace dufp
