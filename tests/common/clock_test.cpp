#include "common/clock.h"

#include <gtest/gtest.h>

namespace dufp {
namespace {

TEST(SimTimeTest, DefaultIsZero) {
  EXPECT_EQ(SimTime{}.micros(), 0);
  EXPECT_EQ(SimTime::zero().micros(), 0);
}

TEST(SimTimeTest, FromSecondsRoundTrips) {
  const SimTime t = SimTime::from_seconds(1.5);
  EXPECT_EQ(t.micros(), 1'500'000);
  EXPECT_DOUBLE_EQ(t.seconds(), 1.5);
}

TEST(SimTimeTest, FromSecondsRoundsToNearestMicro) {
  EXPECT_EQ(SimTime::from_seconds(0.0000014).micros(), 1);
  EXPECT_EQ(SimTime::from_seconds(0.0000016).micros(), 2);
}

TEST(SimTimeTest, FromMillis) {
  EXPECT_EQ(SimTime::from_millis(200).micros(), 200'000);
}

TEST(SimTimeTest, ArithmeticAndOrdering) {
  const SimTime a = SimTime::from_millis(10);
  const SimTime b = SimTime::from_millis(3);
  EXPECT_EQ((a + b).micros(), 13'000);
  EXPECT_EQ((a - b).micros(), 7'000);
  EXPECT_LT(b, a);
  EXPECT_EQ(a, SimTime::from_millis(10));

  SimTime c = a;
  c += b;
  EXPECT_EQ(c.micros(), 13'000);
}

TEST(SimTimeTest, ToStringFormatsSeconds) {
  EXPECT_EQ(SimTime::from_seconds(1.25).to_string(), "1.250s");
}

TEST(SimClockTest, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.now(), SimTime::zero());
  clock.advance(SimTime::from_millis(1));
  clock.advance(SimTime::from_millis(2));
  EXPECT_EQ(clock.now().micros(), 3'000);
}

TEST(SimClockTest, AdvanceReturnsNewTime) {
  SimClock clock;
  EXPECT_EQ(clock.advance(SimTime::from_millis(5)).micros(), 5'000);
}

TEST(SimClockTest, RejectsNonPositiveStep) {
  SimClock clock;
  EXPECT_THROW(clock.advance(SimTime::zero()), std::invalid_argument);
  EXPECT_THROW(clock.advance(SimTime{-1}), std::invalid_argument);
}

}  // namespace
}  // namespace dufp
