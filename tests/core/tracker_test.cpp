#include "core/tracker.h"

#include <gtest/gtest.h>

#include <limits>

namespace dufp::core {
namespace {

perfmon::Sample sample(double gflops, double gbps, double power = 100.0) {
  perfmon::Sample s;
  s.flops_rate = gflops * 1e9;
  s.bytes_rate = gbps * 1e9;
  s.pkg_power_w = power;
  s.interval_s = 0.2;
  return s;
}

TEST(ToleranceZoneTest, BandsAtNormalTolerance) {
  const double tol = 0.10;
  const double eps = 0.015;
  EXPECT_EQ(classify_drop(0.00, tol, eps), ToleranceZone::within);
  EXPECT_EQ(classify_drop(0.08, tol, eps), ToleranceZone::within);
  EXPECT_EQ(classify_drop(0.09, tol, eps), ToleranceZone::boundary);
  EXPECT_EQ(classify_drop(0.10, tol, eps), ToleranceZone::boundary);
  EXPECT_EQ(classify_drop(0.11, tol, eps), ToleranceZone::beyond);
}

TEST(ToleranceZoneTest, ZeroToleranceFlooredByEpsilon) {
  // At 0 % tolerance, sub-noise drops must still allow decreases (EP's
  // uncore would otherwise never move) and only > epsilon drops violate.
  const double eps = 0.015;
  EXPECT_EQ(classify_drop(0.004, 0.0, eps), ToleranceZone::within);
  EXPECT_EQ(classify_drop(0.010, 0.0, eps), ToleranceZone::boundary);
  EXPECT_EQ(classify_drop(0.020, 0.0, eps), ToleranceZone::beyond);
}

class PhaseTrackerTest : public ::testing::Test {
 protected:
  PolicyConfig policy_;
  PhaseTracker tracker_{policy_};
};

TEST_F(PhaseTrackerTest, FirstSampleIsNotAPhaseChange) {
  const auto u = tracker_.update(sample(50, 25));
  EXPECT_FALSE(u.phase_change);
  EXPECT_EQ(u.phase_class, PhaseClass::cpu);  // oi = 2
  EXPECT_DOUBLE_EQ(u.flops_drop, 0.0);
}

TEST_F(PhaseTrackerTest, ClassifiesByOperationalIntensity) {
  EXPECT_EQ(tracker_.update(sample(5, 50)).phase_class,
            PhaseClass::memory);  // oi = 0.1
}

TEST_F(PhaseTrackerTest, HighlyMemoryAndHighlyCpuFlags) {
  auto u = tracker_.update(sample(0.5, 50));  // oi = 0.01
  EXPECT_TRUE(u.highly_memory);
  EXPECT_FALSE(u.highly_cpu);

  PhaseTracker t2(policy_);
  u = t2.update(sample(96, 0.24));  // oi = 400
  EXPECT_TRUE(u.highly_cpu);
  EXPECT_FALSE(u.highly_memory);
}

TEST_F(PhaseTrackerTest, OiClassFlipIsPhaseChange) {
  tracker_.update(sample(5, 50));            // memory
  const auto u = tracker_.update(sample(60, 25));  // oi 2.4: cpu
  EXPECT_TRUE(u.phase_change);
}

TEST_F(PhaseTrackerTest, FlopsDoublingWithinClassIsPhaseChange) {
  tracker_.update(sample(5, 50));                   // memory, oi 0.1
  const auto u = tracker_.update(sample(11, 50));   // oi 0.22: same class
  EXPECT_TRUE(u.phase_change);  // flops jumped 2.2x
}

TEST_F(PhaseTrackerTest, SubDoublingVariationIsNotPhaseChange) {
  tracker_.update(sample(5, 50));
  const auto u = tracker_.update(sample(9, 50));  // 1.8x
  EXPECT_FALSE(u.phase_change);
}

TEST_F(PhaseTrackerTest, PhaseChangeResetsMaxima) {
  tracker_.update(sample(50, 25));
  tracker_.update(sample(60, 25));  // ratchet to 60
  tracker_.update(sample(5, 60));   // phase change to memory
  const auto u = tracker_.update(sample(4, 48));
  EXPECT_NEAR(u.flops_drop, 1.0 - 4.0 / 5.0, 1e-9);
}

TEST_F(PhaseTrackerTest, DropsMeasuredAgainstRatchetedMaxima) {
  tracker_.update(sample(50, 25));
  tracker_.update(sample(55, 30));  // new maxima
  const auto u = tracker_.update(sample(44, 24));
  EXPECT_NEAR(u.flops_drop, 1.0 - 44.0 / 55.0, 1e-9);
  EXPECT_NEAR(u.bw_drop, 1.0 - 24.0 / 30.0, 1e-9);
}

TEST_F(PhaseTrackerTest, CurrentMaximumHasZeroDrop) {
  tracker_.update(sample(50, 25));
  const auto u = tracker_.update(sample(52, 26));
  EXPECT_DOUBLE_EQ(u.flops_drop, 0.0);
  EXPECT_DOUBLE_EQ(u.bw_drop, 0.0);
}

TEST_F(PhaseTrackerTest, NegligibleBandwidthIgnoredByGuard) {
  // EP-style traffic (~0.24 GB/s): relative drops are noise and must not
  // register (bw_floor_bytes_per_s).
  tracker_.update(sample(96, 0.24));
  const auto u = tracker_.update(sample(96, 0.12));  // "50 % drop" of noise
  EXPECT_DOUBLE_EQ(u.bw_drop, 0.0);
}

TEST_F(PhaseTrackerTest, MeaningfulBandwidthTracked) {
  tracker_.update(sample(50, 40));
  const auto u = tracker_.update(sample(50, 20));
  EXPECT_NEAR(u.bw_drop, 0.5, 1e-9);
}

TEST_F(PhaseTrackerTest, GarbageSampleIsNeutralAndDoesNotPoisonRatchets) {
  tracker_.update(sample(50, 25));  // cpu phase, maxima 50/25
  perfmon::Sample bad;
  bad.flops_rate = std::numeric_limits<double>::quiet_NaN();
  bad.bytes_rate = 25e9;
  bad.interval_s = 0.2;
  auto u = tracker_.update(bad);
  EXPECT_FALSE(u.phase_change);
  EXPECT_EQ(u.phase_class, PhaseClass::cpu);  // held, not re-derived
  EXPECT_DOUBLE_EQ(u.flops_drop, 0.0);
  EXPECT_FALSE(u.highly_memory);
  EXPECT_FALSE(u.highly_cpu);

  bad.flops_rate = -5e9;  // negative rates are corruption too
  bad.bytes_rate = 25e9;
  u = tracker_.update(bad);
  EXPECT_FALSE(u.phase_change);

  // The ratchets survived: drops are still measured against 50 GFLOPS.
  const auto good = tracker_.update(sample(40, 25));
  EXPECT_NEAR(good.flops_drop, 1.0 - 40.0 / 50.0, 1e-9);
  EXPECT_DOUBLE_EQ(tracker_.max_flops(), 50e9);
}

TEST_F(PhaseTrackerTest, GarbageFirstSampleDoesNotSeedAPhase) {
  perfmon::Sample bad;
  bad.flops_rate = std::numeric_limits<double>::infinity();
  bad.bytes_rate = 1e9;
  bad.interval_s = 0.2;
  const auto u = tracker_.update(bad);
  EXPECT_FALSE(u.phase_change);
  // The first real sample afterwards behaves like a true first sample.
  const auto first = tracker_.update(sample(50, 25));
  EXPECT_FALSE(first.phase_change);
  EXPECT_DOUBLE_EQ(first.flops_drop, 0.0);
}

TEST_F(PhaseTrackerTest, RestartPhaseForcesFreshMaxima) {
  tracker_.update(sample(50, 25));
  tracker_.restart_phase();
  const auto u = tracker_.update(sample(10, 25));
  EXPECT_FALSE(u.phase_change);  // first sample of the new phase
  EXPECT_DOUBLE_EQ(u.flops_drop, 0.0);
  EXPECT_DOUBLE_EQ(tracker_.max_flops(), 10e9);
}

TEST_F(PhaseTrackerTest, InvalidThresholdOrderingRejected) {
  PolicyConfig bad;
  bad.oi_highly_memory = 2.0;  // above the class boundary
  EXPECT_THROW(PhaseTracker{bad}, std::invalid_argument);
}

// OI boundary sweep: classification must be exact at the thresholds.
struct OiCase {
  double oi;
  bool memory;
  bool highly_memory;
  bool highly_cpu;
};

class TrackerOiSweep : public ::testing::TestWithParam<OiCase> {};

TEST_P(TrackerOiSweep, Classification) {
  PolicyConfig policy;
  PhaseTracker t(policy);
  const auto& c = GetParam();
  const auto u = t.update(sample(c.oi * 50.0, 50.0));
  EXPECT_EQ(u.phase_class == PhaseClass::memory, c.memory) << c.oi;
  EXPECT_EQ(u.highly_memory, c.highly_memory) << c.oi;
  EXPECT_EQ(u.highly_cpu, c.highly_cpu) << c.oi;
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, TrackerOiSweep,
    ::testing::Values(OiCase{0.005, true, true, false},
                      OiCase{0.019, true, true, false},
                      OiCase{0.021, true, false, false},
                      OiCase{0.5, true, false, false},
                      OiCase{0.999, true, false, false},
                      OiCase{1.001, false, false, false},
                      OiCase{50.0, false, false, false},
                      OiCase{99.0, false, false, false},
                      OiCase{101.0, false, false, true},
                      OiCase{400.0, false, false, true}));

}  // namespace
}  // namespace dufp::core
