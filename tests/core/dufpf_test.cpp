// Tests for the DUFP-F extension (Sec. VII future work): direct core
// frequency management while the cap is active.
#include <gtest/gtest.h>

#include "core/dufp.h"

namespace dufp::core {
namespace {

perfmon::Sample sample(double gflops, double gbps, double power,
                       double core_mhz) {
  perfmon::Sample s;
  s.flops_rate = gflops * 1e9;
  s.bytes_rate = gbps * 1e9;
  s.pkg_power_w = power;
  s.core_mhz = core_mhz;
  s.interval_s = 0.2;
  return s;
}

class DufpfTest : public ::testing::Test {
 protected:
  DufpfTest() {
    policy_.tolerated_slowdown = 0.10;
    policy_.cap_cooldown_intervals = 0;
    policy_.uncore_cooldown_intervals = 0;
    policy_.manage_core_frequency = true;
  }

  DufpController make() { return DufpController(policy_, uncore_, caps_); }

  PolicyConfig policy_;
  UncoreLimits uncore_;
  CapLimits caps_;
};

TEST_F(DufpfTest, NoPstateActionWhileCapInactive) {
  auto c = make();
  // First interval: cap still at default before this decision applies.
  const auto d = c.decide(sample(50, 25, 100.0, 2800.0));
  EXPECT_EQ(d.pstate_request_mhz, 0.0);
  EXPECT_FALSE(d.pstate_release);
}

TEST_F(DufpfTest, PinsAtObservedClockPlusHeadroomOnSteadyHold) {
  auto c = make();
  c.decide(sample(50, 25, 100.0, 2800.0));  // decrease -> cap 120
  c.decide(sample(50, 25, 100.0, 2800.0));  // decrease -> cap 115
  // Boundary-zone sample: controller holds -> pin at observed + headroom.
  const auto d = c.decide(sample(45.2, 25, 98.0, 2500.0));
  EXPECT_TRUE(d.cap_action == CapAction::hold);
  EXPECT_DOUBLE_EQ(d.pstate_request_mhz, 2600.0);
  EXPECT_FALSE(d.pstate_release);
}

TEST_F(DufpfTest, ReleasesOnCapReset) {
  auto c = make();
  c.decide(sample(96, 0.24, 100.0, 2800.0));  // oi 400, decrease
  for (int i = 0; i < 4; ++i) c.decide(sample(96, 0.24, 100.0, 2800.0));
  // Highly-CPU violation resets the cap -> the pstate must be released.
  const auto d = c.decide(sample(80, 0.2, 90.0, 2300.0));
  EXPECT_EQ(d.cap_action, CapAction::reset);
  EXPECT_TRUE(d.pstate_release);
}

TEST_F(DufpfTest, ReleasesOnCapIncrease) {
  auto c = make();
  c.decide(sample(50, 25, 100.0, 2800.0));  // cap 120
  c.decide(sample(50, 25, 100.0, 2800.0));  // cap 115
  const auto d = c.decide(sample(40, 25, 95.0, 2400.0));  // violated
  EXPECT_EQ(d.cap_action, CapAction::increase);
  EXPECT_TRUE(d.pstate_release);
}

TEST_F(DufpfTest, NoPinWhileActivelyDecreasing) {
  auto c = make();
  c.decide(sample(50, 25, 100.0, 2800.0));
  const auto d = c.decide(sample(50, 25, 100.0, 2800.0));
  EXPECT_EQ(d.cap_action, CapAction::decrease);
  EXPECT_EQ(d.pstate_request_mhz, 0.0);  // still probing: leave it free
}

TEST_F(DufpfTest, DisabledFlagProducesNoPstateActions) {
  policy_.manage_core_frequency = false;
  auto c = make();
  c.decide(sample(50, 25, 100.0, 2800.0));
  c.decide(sample(50, 25, 100.0, 2800.0));
  const auto d = c.decide(sample(45.2, 25, 98.0, 2500.0));
  EXPECT_EQ(d.pstate_request_mhz, 0.0);
  EXPECT_FALSE(d.pstate_release);
}

}  // namespace
}  // namespace dufp::core
