#include "core/policy_registry.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace dufp::core {
namespace {

PolicySetup setup() {
  PolicySetup s;
  s.config.tolerated_slowdown = 0.10;
  return s;
}

std::unique_ptr<Policy> null_factory(const PolicySetup&) { return nullptr; }

TEST(PolicyRegistryTest, GlobalRegistryListsLegacyThenZoo) {
  const auto names = PolicyRegistry::instance().names();
  const std::vector<std::string> expected{
      "DUF",         "DUFP",      "DUFP-F",     "DNPC",       "performance",
      "powersave",   "fixed-uncore", "cuttlefish", "profile-apply"};
  EXPECT_EQ(names, expected);
}

TEST(PolicyRegistryTest, CreateRoundTripsEveryRegisteredName) {
  const auto& registry = PolicyRegistry::instance();
  for (const auto& name : registry.names()) {
    const auto policy = registry.create(name, setup());
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(policy->name(), name);
  }
}

TEST(PolicyRegistryTest, LookupIsCaseInsensitiveAndAliasAware) {
  const auto& registry = PolicyRegistry::instance();
  EXPECT_EQ(registry.at("duf").name, "DUF");
  EXPECT_EQ(registry.at("Dufp").name, "DUFP");
  EXPECT_EQ(registry.at("dufpf").name, "DUFP-F");
  EXPECT_EQ(registry.at("DUFP-F").name, "DUFP-F");
  EXPECT_EQ(registry.at("fixed_uncore").name, "fixed-uncore");
  EXPECT_EQ(registry.at("  dnpc  ").name, "DNPC");  // names are trimmed
  EXPECT_TRUE(registry.contains("CUTTLEFISH"));
  EXPECT_FALSE(registry.contains("sasquatch"));
  EXPECT_EQ(registry.find("sasquatch"), nullptr);
}

TEST(PolicyRegistryTest, UnknownNameErrorListsEveryRegisteredPolicy) {
  try {
    PolicyRegistry::instance().at("sasquatch");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown policy \"sasquatch\""), std::string::npos)
        << msg;
    for (const auto& name : PolicyRegistry::instance().names()) {
      EXPECT_NE(msg.find(name), std::string::npos) << msg;
    }
  }
}

TEST(PolicyRegistryTest, AddRejectsCollisionsAndIncompleteEntries) {
  PolicyRegistry local;
  local.add({"alpha", "", {"a"}, null_factory, nullptr});

  // Same name, different case.
  EXPECT_THROW(local.add({"ALPHA", "", {}, null_factory, nullptr}),
               std::invalid_argument);
  // Alias colliding with an existing name, and name with an alias.
  EXPECT_THROW(local.add({"beta", "", {"Alpha"}, null_factory, nullptr}),
               std::invalid_argument);
  EXPECT_THROW(local.add({"A", "", {}, null_factory, nullptr}),
               std::invalid_argument);
  // No name / no factory.
  EXPECT_THROW(local.add({"", "", {}, null_factory, nullptr}),
               std::invalid_argument);
  EXPECT_THROW(local.add({"gamma", "", {}, nullptr, nullptr}),
               std::invalid_argument);

  // The failed adds must not have left partial entries behind.
  EXPECT_EQ(local.names(), std::vector<std::string>{"alpha"});
}

TEST(PolicyRegistryTest, ConfigDefaultsHookAppliesPerPolicyOverrides) {
  const auto& registry = PolicyRegistry::instance();
  PolicyConfig cfg;
  cfg.manage_core_frequency = false;

  // DUFP-F is the frequency-managing variant; the hook is what replaced
  // the enum special case in the Agent and the runner.
  EXPECT_TRUE(
      registry.apply_config_defaults("DUFP-F", cfg).manage_core_frequency);
  EXPECT_FALSE(
      registry.apply_config_defaults("DUFP", cfg).manage_core_frequency);
  EXPECT_THROW(registry.apply_config_defaults("sasquatch", cfg),
               std::invalid_argument);
}

TEST(PolicyRegistryTest, LocalRegistryReproducesBuiltinPopulation) {
  // Tests that need a mutable registry build their own; the two
  // registration functions must reproduce the global population exactly.
  PolicyRegistry local;
  register_legacy_policies(local);
  register_zoo_policies(local);
  EXPECT_EQ(local.names(), PolicyRegistry::instance().names());
  EXPECT_EQ(local.known_names(), PolicyRegistry::instance().known_names());
}

}  // namespace
}  // namespace dufp::core
