#include "core/dnpc.h"

#include <gtest/gtest.h>

namespace dufp::core {
namespace {

perfmon::Sample sample(double core_mhz, double power = 100.0) {
  perfmon::Sample s;
  s.core_mhz = core_mhz;
  s.pkg_power_w = power;
  s.flops_rate = 1e9;
  s.bytes_rate = 1e9;
  s.interval_s = 0.2;
  return s;
}

class DnpcTest : public ::testing::Test {
 protected:
  DnpcTest() { policy_.tolerated_slowdown = 0.10; }

  DnpcController make() { return DnpcController(policy_, limits_); }

  PolicyConfig policy_;
  DnpcLimits limits_;
};

TEST_F(DnpcTest, StartsAtDefaultCap) {
  auto c = make();
  EXPECT_DOUBLE_EQ(c.cap_w(), 125.0);
}

TEST_F(DnpcTest, LearnsFMaxFromObservations) {
  auto c = make();
  c.decide(sample(2800.0));
  EXPECT_NEAR(c.estimated_degradation(2520.0), 0.10, 1e-9);
  EXPECT_DOUBLE_EQ(c.estimated_degradation(2800.0), 0.0);
}

TEST_F(DnpcTest, HintedFMaxUsedImmediately) {
  limits_.max_core_mhz = 2800.0;
  auto c = make();
  EXPECT_NEAR(c.estimated_degradation(2100.0), 0.25, 1e-9);
}

TEST_F(DnpcTest, DecreasesWhilePredictedDegradationLow) {
  limits_.max_core_mhz = 2800.0;
  auto c = make();
  const auto d = c.decide(sample(2800.0));  // est 0 < 10 %
  EXPECT_TRUE(d.changed);
  EXPECT_DOUBLE_EQ(d.cap_w, 120.0);
}

TEST_F(DnpcTest, IncreasesWhenPredictedDegradationHigh) {
  limits_.max_core_mhz = 2800.0;
  auto c = make();
  c.decide(sample(2800.0));  // cap 120
  const auto d = c.decide(sample(2400.0));  // est 14.3 % > 11.5 %
  EXPECT_TRUE(d.changed);
  EXPECT_DOUBLE_EQ(c.cap_w(), 125.0);
}

TEST_F(DnpcTest, HoldsInsideDeadBand) {
  limits_.max_core_mhz = 2800.0;
  auto c = make();
  // est = 1 - 2520/2800 = 0.10 exactly: inside [tol-eps, tol+eps].
  const auto d = c.decide(sample(2520.0));
  EXPECT_FALSE(d.changed);
}

TEST_F(DnpcTest, RespectsFloorAndCeiling) {
  limits_.max_core_mhz = 2800.0;
  auto c = make();
  for (int i = 0; i < 40; ++i) c.decide(sample(2800.0));
  EXPECT_DOUBLE_EQ(c.cap_w(), 65.0);
  for (int i = 0; i < 40; ++i) c.decide(sample(1500.0));
  EXPECT_DOUBLE_EQ(c.cap_w(), 125.0);
}

TEST_F(DnpcTest, SettlesWhereFrequencyModelPredictsTolerance) {
  // Synthetic plant: frequency responds linearly to the cap.
  limits_.max_core_mhz = 2800.0;
  auto c = make();
  auto freq_for_cap = [](double cap) {
    return 2800.0 * (cap - 45.0) / 80.0;  // 125 W -> 2800, 65 W -> 700
  };
  for (int i = 0; i < 60; ++i) c.decide(sample(freq_for_cap(c.cap_w())));
  const double est = c.estimated_degradation(freq_for_cap(c.cap_w()));
  EXPECT_NEAR(est, 0.10, 0.06);  // parks near the degradation limit
}

TEST_F(DnpcTest, BlindToActualPerformance) {
  // The paper's critique: DNPC sees only frequency.  A memory-bound
  // application whose FLOPS are untouched still makes DNPC raise the cap
  // once the clock dips, leaving free savings unused.
  limits_.max_core_mhz = 2800.0;
  auto c = make();
  for (int i = 0; i < 10; ++i) {
    auto s = sample(2300.0);      // est 17.9 % "degradation"...
    s.flops_rate = 50e9;          // ...while real throughput is unchanged
    c.decide(s);
  }
  EXPECT_DOUBLE_EQ(c.cap_w(), 125.0);  // gave all headroom back
}

TEST_F(DnpcTest, InvalidLimitsRejected) {
  DnpcLimits bad;
  bad.min_cap_w = 130.0;
  EXPECT_THROW(DnpcController(policy_, bad), std::invalid_argument);
}

}  // namespace
}  // namespace dufp::core
