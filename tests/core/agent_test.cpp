#include "core/agent.h"

#include <gtest/gtest.h>

#include "faults/fault_plan.h"
#include "faults/faulty_msr.h"
#include "hwmodel/socket_model.h"
#include "msr/sim_msr.h"
#include "perfmon/sim_counter_source.h"
#include "rapl/rapl_engine.h"

namespace dufp::core {
namespace {

hw::PhaseDemand demand(double w_cpu, double w_mem, double gflops,
                       double gbps, double cpu_act, double mem_act) {
  hw::PhaseDemand d;
  d.w_cpu = w_cpu;
  d.w_mem = w_mem;
  d.w_unc = 0.0;
  d.w_fixed = 1.0 - w_cpu - w_mem;
  d.flops_rate_ref = gflops * 1e9;
  d.bytes_rate_ref = gbps * 1e9;
  d.cpu_activity = cpu_act;
  d.mem_activity = mem_act;
  return d;
}

/// A fully wired single-socket rig driven manually at 1 ms ticks.
class AgentTest : public ::testing::Test {
 protected:
  AgentTest()
      : socket_(cfg_, 0),
        dev_(cfg_.cores),
        engine_(socket_, dev_),
        zone_(dev_, 0),
        uncore_(dev_) {}

  Agent make_agent(PolicyMode mode, double tolerance) {
    PolicyConfig policy;
    policy.tolerated_slowdown = tolerance;
    perfmon::SamplerOptions so;
    so.noise_sigma = 0.0;
    perfmon::IntervalSampler sampler(source_, cfg_.core_base_mhz, Rng(3),
                                     so);
    return Agent(mode, policy, zone_, uncore_, std::move(sampler));
  }

  /// Advances `intervals` control intervals (200 ms each) of simulated
  /// execution under the current demand.
  void run(Agent& agent, int intervals) {
    for (int i = 0; i < intervals; ++i) {
      for (int ms = 0; ms < 200; ++ms) {
        engine_.tick();
        const auto inst = socket_.evaluate();
        socket_.accumulate(inst, 0.001);
        engine_.record(inst, 0.001);
        now_ += SimTime::from_millis(1);
      }
      agent.on_interval(now_);
    }
  }

  hw::SocketConfig cfg_;
  hw::SocketModel socket_;
  msr::SimulatedMsr dev_;
  rapl::RaplEngine engine_;
  powercap::PackageZone zone_;
  powercap::UncoreControl uncore_;
  perfmon::SimCounterSource source_{socket_, dev_};
  SimTime now_ = SimTime::zero();
};

TEST_F(AgentTest, CapturesHardwareDefaults) {
  auto agent = make_agent(PolicyMode::dufp, 0.10);
  EXPECT_DOUBLE_EQ(agent.default_long_w(), 125.0);
  EXPECT_DOUBLE_EQ(agent.default_short_w(), 150.0);
}

TEST_F(AgentTest, FirstIntervalOnlyEstablishesBaseline) {
  auto agent = make_agent(PolicyMode::dufp, 0.10);
  socket_.set_demand(demand(0.9, 0.05, 50, 5, 1.0, 0.3));
  run(agent, 1);
  EXPECT_EQ(agent.stats().intervals, 0u);
  EXPECT_FALSE(agent.last_sample().has_value());
  EXPECT_DOUBLE_EQ(uncore_.window_max_mhz(), 2400.0);
}

TEST_F(AgentTest, DufModePinsUncoreDownOnInsensitiveWorkload) {
  auto agent = make_agent(PolicyMode::duf, 0.10);
  socket_.set_demand(demand(0.9, 0.01, 96, 0.24, 1.0, 0.1));  // EP-like
  run(agent, 20);
  EXPECT_LT(uncore_.window_max_mhz(), 1500.0);
  EXPECT_DOUBLE_EQ(uncore_.window_min_mhz(), uncore_.window_max_mhz());
  EXPECT_GT(agent.stats().uncore_decreases, 8u);
  // DUF mode never touches the cap.
  EXPECT_DOUBLE_EQ(zone_.power_limit_w(powercap::ConstraintId::long_term),
                   125.0);
  EXPECT_EQ(agent.stats().cap_decreases, 0u);
}

TEST_F(AgentTest, DufpModeLowersCap) {
  auto agent = make_agent(PolicyMode::dufp, 0.10);
  socket_.set_demand(demand(0.3, 0.6, 10, 80, 0.9, 1.0));  // CG-like
  run(agent, 12);
  EXPECT_LT(zone_.power_limit_w(powercap::ConstraintId::long_term), 125.0);
  // Decreases program both constraints to the same value.
  EXPECT_DOUBLE_EQ(zone_.power_limit_w(powercap::ConstraintId::long_term),
                   zone_.power_limit_w(powercap::ConstraintId::short_term));
  EXPECT_GT(agent.stats().cap_decreases, 3u);
}

TEST_F(AgentTest, StatsCountIntervals) {
  auto agent = make_agent(PolicyMode::dufp, 0.10);
  socket_.set_demand(demand(0.5, 0.4, 20, 30, 0.9, 0.9));
  run(agent, 5);
  EXPECT_EQ(agent.stats().intervals, 4u);  // first was baseline
  EXPECT_TRUE(agent.last_sample().has_value());
  EXPECT_GT(agent.last_sample()->pkg_power_w, 50.0);
}

TEST_F(AgentTest, PhaseChangeResetsCapAndUncore) {
  auto agent = make_agent(PolicyMode::dufp, 0.10);
  socket_.set_demand(demand(0.2, 0.7, 5, 60, 0.8, 1.0));  // memory (oi .08)
  run(agent, 10);
  const double cap_before =
      zone_.power_limit_w(powercap::ConstraintId::long_term);
  EXPECT_LT(cap_before, 125.0);
  // Switch to a compute phase: OI class flips -> reset.
  socket_.set_demand(demand(0.9, 0.02, 60, 6, 1.0, 0.3));
  run(agent, 2);
  EXPECT_GE(agent.stats().cap_resets, 1u);
  // The reset restored the defaults; the controller may already have
  // started probing the new phase, so allow one step of re-descent.
  EXPECT_GE(zone_.power_limit_w(powercap::ConstraintId::long_term), 120.0);
  EXPECT_GT(zone_.power_limit_w(powercap::ConstraintId::long_term),
            cap_before);
  EXPECT_GE(uncore_.window_max_mhz(), 2300.0);
}

TEST_F(AgentTest, ResetRestoresTimeWindows) {
  auto agent = make_agent(PolicyMode::dufp, 0.10);
  const auto default_window = zone_.time_window_us(0);
  socket_.set_demand(demand(0.2, 0.7, 5, 60, 0.8, 1.0));
  run(agent, 10);
  socket_.set_demand(demand(0.9, 0.02, 60, 6, 1.0, 0.3));
  run(agent, 2);
  EXPECT_EQ(zone_.time_window_us(0), default_window);
}

TEST_F(AgentTest, InteractionRule2RetriesUncoreResetWhenNotAtMax) {
  auto agent = make_agent(PolicyMode::dufp, 0.10);
  socket_.set_demand(demand(0.2, 0.7, 5, 60, 0.8, 1.0));
  run(agent, 10);
  // Make the uncore appear stuck below max (the cap's effect still
  // visible, as the paper describes): override the perf-status register.
  dev_.define_dynamic(msr::kMsrUncorePerfStatus,
                      [](int) { return msr::encode_uncore_perf_status(20); });
  socket_.set_demand(demand(0.9, 0.02, 60, 6, 1.0, 0.3));  // phase change
  run(agent, 2);
  EXPECT_GE(agent.stats().uncore_reset_retries, 1u);
}

TEST_F(AgentTest, ShortTermTightenedWhenPowerBelowCap) {
  auto agent = make_agent(PolicyMode::dufp, 0.10);
  socket_.set_demand(demand(0.5, 0.3, 20, 30, 0.6, 0.5));  // ~90 W
  run(agent, 3);
  EXPECT_GE(agent.stats().short_term_tightenings, 1u);
}

TEST_F(AgentTest, DufpRespectsToleranceOnCgLikeWorkload) {
  auto agent = make_agent(PolicyMode::dufp, 0.10);
  socket_.set_demand(demand(0.3, 0.6, 10, 80, 0.9, 1.0));
  run(agent, 40);
  // Steady state: the observed FLOPS stay within tolerance + error band.
  const auto inst = socket_.evaluate();
  EXPECT_GT(inst.speed, 1.0 - 0.10 - 0.02);
}

// ---------------------------------------------------------------------------
// Watchdog / fail-safe behaviour under an injected MSR outage.
// ---------------------------------------------------------------------------

/// The AgentTest rig with a FaultyMsrDevice between the agent's actuation
/// paths and the simulated hardware.  The fault pattern is a permanent
/// msr-safe style write denial while armed; tests arm/disarm it to model
/// an outage with a bounded duration.
class AgentWatchdogTest : public ::testing::Test {
 protected:
  static faults::FaultOptions write_outage() {
    faults::FaultOptions o;
    o.enabled = true;
    o.write_eperm = {1.0, 1 << 30};  // denied until disarmed
    return o;
  }

  AgentWatchdogTest()
      : socket_(cfg_, 0),
        dev_(cfg_.cores),
        engine_(socket_, dev_),
        plan_(write_outage(), Rng(17)),
        fdev_(dev_, plan_),
        zone_(fdev_, 0),
        uncore_(fdev_),
        source_(socket_, fdev_),
        default_uncore_min_(uncore_.window_min_mhz()),
        default_uncore_max_(uncore_.window_max_mhz()) {}

  Agent make_agent(PolicyMode mode) {
    PolicyConfig policy;
    policy.tolerated_slowdown = 0.10;
    policy.watchdog_failure_threshold = 3;
    policy.watchdog_backoff_intervals = 2;  // fast re-engagement for tests
    policy.watchdog_backoff_max_intervals = 8;
    perfmon::SamplerOptions so;
    so.noise_sigma = 0.0;
    perfmon::IntervalSampler sampler(source_, cfg_.core_base_mhz, Rng(3), so);
    return Agent(mode, policy, zone_, uncore_, std::move(sampler));
  }

  void run(Agent& agent, int intervals) {
    for (int i = 0; i < intervals; ++i) {
      for (int ms = 0; ms < 200; ++ms) {
        engine_.tick();
        const auto inst = socket_.evaluate();
        socket_.accumulate(inst, 0.001);
        engine_.record(inst, 0.001);
        now_ += SimTime::from_millis(1);
      }
      agent.on_interval(now_);
    }
  }

  hw::SocketConfig cfg_;
  hw::SocketModel socket_;
  msr::SimulatedMsr dev_;
  rapl::RaplEngine engine_;
  faults::FaultPlan plan_;
  faults::FaultyMsrDevice fdev_;
  powercap::PackageZone zone_;
  powercap::UncoreControl uncore_;
  perfmon::SimCounterSource source_{socket_, fdev_};
  double default_uncore_min_;
  double default_uncore_max_;
  SimTime now_ = SimTime::zero();
};

TEST_F(AgentWatchdogTest, OutageDegradesThenFailSafeThenReengages) {
  auto agent = make_agent(PolicyMode::dufp);
  socket_.set_demand(demand(0.3, 0.6, 10, 80, 0.9, 1.0));  // CG-like

  // Healthy warm-up: the controller pulls the cap and uncore down.
  run(agent, 10);
  EXPECT_LT(zone_.power_limit_w(powercap::ConstraintId::long_term), 125.0);
  const auto healthy_cap_decreases = agent.stats().cap_decreases;
  EXPECT_GT(healthy_cap_decreases, 0u);
  EXPECT_FALSE(agent.degraded());

  // Outage: every write is denied.  No exception may escape, and after
  // the threshold the watchdog must degrade the socket.
  fdev_.arm();
  run(agent, 12);
  EXPECT_TRUE(agent.degraded());
  EXPECT_EQ(agent.stats().health.degradations, 1u);
  EXPECT_GT(agent.stats().health.actuation_failures, 0u);
  EXPECT_GT(agent.stats().health.intervals_degraded, 0u);

  // Outage ends.  The degraded agent keeps retrying the fail-safe state:
  // the very next interval must restore the hardware defaults.
  fdev_.set_armed(false);
  run(agent, 1);
  EXPECT_DOUBLE_EQ(zone_.power_limit_w(powercap::ConstraintId::long_term),
                   agent.default_long_w());
  EXPECT_DOUBLE_EQ(zone_.power_limit_w(powercap::ConstraintId::short_term),
                   agent.default_short_w());
  EXPECT_DOUBLE_EQ(uncore_.window_min_mhz(), default_uncore_min_);
  EXPECT_DOUBLE_EQ(uncore_.window_max_mhz(), default_uncore_max_);

  // After the backoff expires the probe succeeds and control resumes.
  run(agent, 6);
  EXPECT_FALSE(agent.degraded());
  EXPECT_EQ(agent.stats().health.reengagements, 1u);

  // And the controller actually controls again.
  run(agent, 15);
  EXPECT_GT(agent.stats().cap_decreases, healthy_cap_decreases);
  EXPECT_LT(zone_.power_limit_w(powercap::ConstraintId::long_term), 125.0);
}

TEST_F(AgentWatchdogTest, ReengageProbeFailuresBackOffExponentially) {
  auto agent = make_agent(PolicyMode::dufp);
  socket_.set_demand(demand(0.3, 0.6, 10, 80, 0.9, 1.0));
  run(agent, 6);
  fdev_.arm();
  run(agent, 40);  // long outage: several re-engagement probes fail
  EXPECT_TRUE(agent.degraded());
  EXPECT_GT(agent.stats().health.reengage_failures, 1u);
  EXPECT_EQ(agent.stats().health.reengagements, 0u);
  // Backoff doubling means probe count grows logarithmically: with
  // backoff 2 doubling to max 8, 40 intervals see at most ~7 probes.
  EXPECT_LT(agent.stats().health.reengage_failures, 8u);
}

TEST_F(AgentWatchdogTest, SamplerOutageAloneDoesNotTripTheWatchdog) {
  // Reads fail (no samples at all) but no actuation is ever attempted, so
  // the agent must stay engaged: a blind controller holding steady is not
  // a broken actuation path.
  faults::FaultOptions o;
  o.enabled = true;
  o.read_eio = {1.0, 1};
  faults::FaultPlan read_plan(o, Rng(5));
  faults::FaultyMsrDevice rdev(dev_, read_plan);
  perfmon::SimCounterSource rsource(socket_, rdev);
  PolicyConfig policy;
  policy.tolerated_slowdown = 0.10;
  perfmon::SamplerOptions so;
  so.noise_sigma = 0.0;
  perfmon::IntervalSampler sampler(rsource, cfg_.core_base_mhz, Rng(3), so);
  Agent agent(PolicyMode::dufp, policy, zone_, uncore_, std::move(sampler));

  socket_.set_demand(demand(0.3, 0.6, 10, 80, 0.9, 1.0));
  rdev.arm();
  run(agent, 10);
  EXPECT_FALSE(agent.degraded());
  EXPECT_EQ(agent.stats().intervals, 0u);  // never saw a sample
  EXPECT_GE(agent.stats().health.sample_read_failures, 10u);
  EXPECT_EQ(agent.stats().health.degradations, 0u);
}

TEST_F(AgentWatchdogTest, TransientWriteErrorsAreRetriedAndAbsorbed) {
  faults::FaultOptions o;
  o.enabled = true;
  o.write_eio = {0.5, 1};  // every write flips a deterministic coin
  faults::FaultPlan flaky_plan(o, Rng(23));
  faults::FaultyMsrDevice flaky(dev_, flaky_plan);
  powercap::PackageZone zone(flaky, 0);
  powercap::UncoreControl uncore(flaky);
  PolicyConfig policy;
  policy.tolerated_slowdown = 0.10;
  perfmon::SamplerOptions so;
  so.noise_sigma = 0.0;
  perfmon::IntervalSampler sampler(source_, cfg_.core_base_mhz, Rng(3), so);
  Agent agent(PolicyMode::dufp, policy, zone, uncore, std::move(sampler));

  socket_.set_demand(demand(0.3, 0.6, 10, 80, 0.9, 1.0));
  flaky.arm();
  run(agent, 20);
  // Retries happened and mostly succeeded: the controller still made
  // progress on the cap despite a 50% per-write failure rate.
  EXPECT_GT(agent.stats().health.actuation_retries, 0u);
  EXPECT_GT(agent.stats().cap_decreases, 0u);
}

}  // namespace
}  // namespace dufp::core
