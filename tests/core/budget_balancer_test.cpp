#include "core/budget_balancer.h"

#include <gtest/gtest.h>

#include "sim/simulation.h"
#include "workloads/profiles.h"

namespace dufp::core {
namespace {

/// Two-socket machine: socket 0 runs hot compute (HPL, above-TDP
/// demand), socket 1 the lower-power memory-bound MG — under an equal
/// split the HPL socket is throttled much deeper, which is the signal
/// the balancer reacts to.
struct Rig {
  explicit Rig(double budget_w) {
    hw::MachineConfig machine;
    machine.sockets = 2;
    sim::SimulationOptions opts;
    opts.seed = 33;
    std::vector<const workloads::WorkloadProfile*> apps{
        &workloads::profile(workloads::AppId::hpl),
        &workloads::profile(workloads::AppId::mg)};
    simulation = std::make_unique<sim::Simulation>(machine, apps, opts);
    for (int i = 0; i < 2; ++i) {
      zones.push_back(std::make_unique<powercap::PackageZone>(
          simulation->msr(i), i));
    }
    BalancerConfig cfg;
    cfg.machine_budget_w = budget_w;
    balancer = std::make_unique<BudgetBalancer>(
        cfg,
        std::vector<powercap::PackageZone*>{zones[0].get(), zones[1].get()},
        std::vector<const msr::MsrDevice*>{&simulation->msr(0),
                                           &simulation->msr(1)},
        machine.socket.core_max_mhz, machine.socket.core_base_mhz);
    simulation->schedule_periodic(
        SimTime::from_millis(200),
        [this](SimTime now) { balancer->on_interval(now); });
  }

  std::unique_ptr<sim::Simulation> simulation;
  std::vector<std::unique_ptr<powercap::PackageZone>> zones;
  std::unique_ptr<BudgetBalancer> balancer;
};

TEST(BudgetBalancerTest, StartsWithEqualSplit) {
  Rig rig(200.0);
  EXPECT_DOUBLE_EQ(rig.balancer->allocation_w()[0], 100.0);
  EXPECT_DOUBLE_EQ(rig.balancer->allocation_w()[1], 100.0);
}

TEST(BudgetBalancerTest, ShiftsBudgetTowardThrottledSocket) {
  Rig rig(200.0);  // 100 W each: HPL is starved, MG barely notices
  for (int i = 0; i < 25'000 && rig.simulation->step(); ++i) {
  }
  const auto& alloc = rig.balancer->allocation_w();
  // The compute-hungry socket ends with the bigger share.
  EXPECT_GT(alloc[0], alloc[1] + 2.0);
  // Budget conserved (within the per-socket clamps).
  EXPECT_LE(alloc[0] + alloc[1], 200.0 + 1.0);
  EXPECT_GT(rig.balancer->intervals(), 50u);
}

TEST(BudgetBalancerTest, CapsActuallyProgrammed) {
  Rig rig(200.0);
  for (int i = 0; i < 5'000 && rig.simulation->step(); ++i) {
  }
  for (int s = 0; s < 2; ++s) {
    const double cap = rig.zones[static_cast<std::size_t>(s)]->power_limit_w(
        powercap::ConstraintId::long_term);
    EXPECT_LT(cap, 125.0);
    EXPECT_GE(cap, 65.0);
    EXPECT_NEAR(cap, rig.balancer->allocation_w()[static_cast<std::size_t>(s)],
                1.0);
  }
}

TEST(BudgetBalancerTest, GenerousBudgetLeavesSocketsUnthrottled) {
  Rig rig(250.0);  // 125 W each: the hardware default
  for (int i = 0; i < 10'000 && rig.simulation->step(); ++i) {
  }
  for (double a : rig.balancer->allocation_w()) {
    EXPECT_GT(a, 110.0);
    EXPECT_LE(a, 125.0 + 1e-9);
  }
}

TEST(BudgetBalancerTest, InvalidConfigRejected) {
  hw::MachineConfig machine;
  machine.sockets = 1;
  sim::SimulationOptions opts;
  sim::Simulation s(machine, workloads::profile(workloads::AppId::cg), opts);
  powercap::PackageZone zone(s.msr(0), 0);
  BalancerConfig cfg;
  cfg.machine_budget_w = 30.0;  // below one socket's floor
  EXPECT_THROW(
      BudgetBalancer(cfg, {&zone}, {&s.msr(0)}, 2800.0, 2100.0),
      std::invalid_argument);
}

TEST(AsymmetricSimulationTest, PerSocketProfilesRun) {
  hw::MachineConfig machine;
  machine.sockets = 2;
  sim::SimulationOptions opts;
  opts.seed = 5;
  std::vector<const workloads::WorkloadProfile*> apps{
      &workloads::profile(workloads::AppId::ep),
      &workloads::profile(workloads::AppId::mg)};
  sim::Simulation s(machine, apps, opts);
  EXPECT_EQ(s.workload(0).profile().name(), "EP");
  EXPECT_EQ(s.workload(1).profile().name(), "MG");
  const auto sum = s.run();
  EXPECT_GT(sum.exec_seconds, 25.0);
  EXPECT_GT(sum.total_gflop, 100.0);
}

TEST(AsymmetricSimulationTest, SizeMismatchRejected) {
  hw::MachineConfig machine;
  machine.sockets = 2;
  std::vector<const workloads::WorkloadProfile*> apps{
      &workloads::profile(workloads::AppId::ep)};
  EXPECT_THROW(sim::Simulation(machine, apps, sim::SimulationOptions{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dufp::core
