#include <gtest/gtest.h>

#include <memory>

#include "core/policy_registry.h"

namespace dufp::core {
namespace {

/// Builds a measurement sample; oi is set through flops/bytes — the
/// tests use (50, 100) for a memory-class phase (oi 0.5) and (400, 1)
/// for a cpu-class one (oi 400).
perfmon::Sample sample(double gflops, double gbps, double power = 100.0) {
  perfmon::Sample s;
  s.flops_rate = gflops * 1e9;
  s.bytes_rate = gbps * 1e9;
  s.pkg_power_w = power;
  s.interval_s = 0.2;
  return s;
}

class PolicyZooTest : public ::testing::Test {
 protected:
  PolicyZooTest() {
    setup_.config.tolerated_slowdown = 0.10;
    setup_.config.uncore_cooldown_intervals = 1;
    setup_.config.cap_cooldown_intervals = 1;
  }

  std::unique_ptr<Policy> make(std::string_view name) {
    return PolicyRegistry::instance().create(name, setup_);
  }

  PolicySetup setup_;  // uncore 1200-2400, caps 125/150, floor 65
};

TEST_F(PolicyZooTest, PerformanceNeverActs) {
  auto p = make("performance");
  for (int i = 0; i < 5; ++i) {
    const auto d = p->observe(sample(50, 100));
    EXPECT_EQ(d.uncore.action, UncoreAction::none);
    EXPECT_EQ(d.cap_action, CapAction::none);
    EXPECT_FALSE(d.phase_change);
  }
}

TEST_F(PolicyZooTest, PowersaveFloorsBothKnobsOnceThenHolds) {
  auto p = make("powersave");
  const auto first = p->observe(sample(50, 100));
  EXPECT_EQ(first.uncore.action, UncoreAction::decrease);
  EXPECT_DOUBLE_EQ(first.uncore.target_mhz, 1200.0);
  EXPECT_EQ(first.cap_action, CapAction::decrease);
  EXPECT_DOUBLE_EQ(first.cap_long_w, 65.0);
  EXPECT_DOUBLE_EQ(first.cap_short_w, 65.0);

  const auto second = p->observe(sample(50, 100));
  EXPECT_EQ(second.uncore.action, UncoreAction::none);
  EXPECT_EQ(second.cap_action, CapAction::none);
}

TEST_F(PolicyZooTest, FixedUncorePinsMidWindowOnStepGrid) {
  auto p = make("fixed-uncore");
  const auto first = p->observe(sample(50, 100));
  // Mid of [1200, 2400] is 1800, already on the 100 MHz step grid.
  EXPECT_EQ(first.uncore.action, UncoreAction::decrease);
  EXPECT_DOUBLE_EQ(first.uncore.target_mhz, 1800.0);
  EXPECT_EQ(first.cap_action, CapAction::none);
  EXPECT_EQ(p->observe(sample(50, 100)).uncore.action, UncoreAction::none);
}

TEST_F(PolicyZooTest, CuttlefishAlternatesKnobsWhileWithinTolerance) {
  auto p = make("cuttlefish");
  // Constant rates: zero drop, free to descend.  The rotation starts on
  // the uncore and alternates.
  auto d = p->observe(sample(50, 100));
  EXPECT_EQ(d.uncore.action, UncoreAction::decrease);
  EXPECT_DOUBLE_EQ(d.uncore.target_mhz, 2300.0);
  EXPECT_EQ(d.cap_action, CapAction::none);

  d = p->observe(sample(50, 100));
  EXPECT_EQ(d.uncore.action, UncoreAction::none);
  EXPECT_EQ(d.cap_action, CapAction::decrease);
  EXPECT_DOUBLE_EQ(d.cap_long_w, 120.0);

  d = p->observe(sample(50, 100));
  EXPECT_EQ(d.uncore.action, UncoreAction::decrease);
  EXPECT_DOUBLE_EQ(d.uncore.target_mhz, 2200.0);
}

TEST_F(PolicyZooTest, CuttlefishBacksOffTheKnobThatMovedLast) {
  auto p = make("cuttlefish");
  p->observe(sample(50, 100));  // uncore -> 2300
  p->observe(sample(50, 100));  // cap -> 120
  // 20 % FLOPS drop: beyond the 10 % budget; the cap moved last, so it
  // is the blamed knob and steps back up.
  const auto d = p->observe(sample(40, 80));
  EXPECT_EQ(d.cap_action, CapAction::increase);
  EXPECT_DOUBLE_EQ(d.cap_long_w, 125.0);
  EXPECT_EQ(d.blame, ViolationBlame::cap);
  EXPECT_EQ(d.uncore.action, UncoreAction::none);
}

TEST_F(PolicyZooTest, CuttlefishViolationBeforeAnyMoveIsUnattributed) {
  auto p = make("cuttlefish");
  // First interval establishes the phase maxima without moving yet only
  // when the drop is immediately beyond — which cannot happen on the very
  // first sample (drop is measured against it).  Second sample violates
  // before the first move has cleared the cooldown path: force it by
  // dropping 20 % right after the first descent is undone by a phase
  // change (cooldown holds the knobs still).
  p->observe(sample(50, 100));        // descend uncore
  p->observe(sample(400, 1));      // OI class flip: phase change, reset
  const auto d = p->observe(sample(300, 0.75));  // 25 % drop, nothing moved
  EXPECT_EQ(d.blame, ViolationBlame::unattributed);
  EXPECT_EQ(d.uncore.action, UncoreAction::none);
  EXPECT_EQ(d.cap_action, CapAction::none);
}

TEST_F(PolicyZooTest, CuttlefishPhaseChangeResetsBothKnobs) {
  auto p = make("cuttlefish");
  p->observe(sample(50, 100));
  p->observe(sample(50, 100));
  // OI flips from memory (oi = 0.5) to cpu (oi = 400): phase change.
  const auto d = p->observe(sample(400, 1));
  EXPECT_TRUE(d.phase_change);
  EXPECT_EQ(d.uncore.action, UncoreAction::reset);
  EXPECT_DOUBLE_EQ(d.uncore.target_mhz, 2400.0);
  EXPECT_EQ(d.cap_action, CapAction::reset);
  EXPECT_TRUE(d.cap_reset);
}

TEST_F(PolicyZooTest, ProfileApplyCalibratesUncoreFirstThenCap) {
  auto p = make("profile-apply");
  // Within tolerance throughout: 12 steps walk the uncore 2400 -> 1200,
  // the 13th starts on the cap.
  for (int i = 1; i <= 12; ++i) {
    const auto d = p->observe(sample(50, 100));
    EXPECT_EQ(d.uncore.action, UncoreAction::decrease) << i;
    EXPECT_DOUBLE_EQ(d.uncore.target_mhz, 2400.0 - 100.0 * i) << i;
    EXPECT_EQ(d.cap_action, CapAction::none) << i;
  }
  const auto d = p->observe(sample(50, 100));
  EXPECT_EQ(d.uncore.action, UncoreAction::none);
  EXPECT_EQ(d.cap_action, CapAction::decrease);
  EXPECT_DOUBLE_EQ(d.cap_long_w, 120.0);
}

TEST_F(PolicyZooTest, ProfileApplyFreezesOnViolationAndReappliesPerClass) {
  auto p = make("profile-apply");
  for (int i = 0; i < 12; ++i) p->observe(sample(50, 100));  // uncore floor
  p->observe(sample(50, 100));  // cap -> 120
  p->observe(sample(50, 100));  // cap -> 115

  // Violation mid-cap-descent: undo one cap step, blame it, freeze the
  // class at (1200 MHz, 120 W).
  auto d = p->observe(sample(40, 80));
  EXPECT_EQ(d.cap_action, CapAction::increase);
  EXPECT_DOUBLE_EQ(d.cap_long_w, 120.0);
  EXPECT_EQ(d.blame, ViolationBlame::cap);

  // Frozen: later within-tolerance intervals of the class hold still.
  d = p->observe(sample(50, 100));
  EXPECT_EQ(d.uncore.action, UncoreAction::none);
  EXPECT_EQ(d.cap_action, CapAction::none);

  // New (cpu) class: uncalibrated, so the policy restarts from the top.
  d = p->observe(sample(400, 1));
  EXPECT_TRUE(d.phase_change);
  EXPECT_EQ(d.uncore.action, UncoreAction::reset);
  EXPECT_TRUE(d.cap_reset);

  // Back to the memory class: the frozen settings re-apply in ONE
  // interval — no second calibration descent.
  d = p->observe(sample(50, 100));
  EXPECT_TRUE(d.phase_change);
  EXPECT_EQ(d.uncore.action, UncoreAction::decrease);
  EXPECT_DOUBLE_EQ(d.uncore.target_mhz, 1200.0);
  EXPECT_EQ(d.cap_action, CapAction::decrease);
  EXPECT_DOUBLE_EQ(d.cap_long_w, 120.0);
}

TEST_F(PolicyZooTest, ProfileApplyFreezesAtTheToleranceBoundary) {
  auto p = make("profile-apply");
  p->observe(sample(50, 100));  // uncore -> 2300
  // Drop in (tol - eps, tol]: the boundary IS the calibration target.
  p->observe(sample(45.25, 100));  // 9.5 % drop
  const auto d = p->observe(sample(50, 100));
  EXPECT_EQ(d.uncore.action, UncoreAction::none);
  EXPECT_EQ(d.cap_action, CapAction::none);
}

TEST_F(PolicyZooTest, ZooPoliciesRespectTheHardwareEnvelope) {
  // Every knob a zoo policy requests stays inside the PolicySetup
  // envelope, across a descent long enough to bottom out.
  for (const auto name :
       {"powersave", "fixed-uncore", "cuttlefish", "profile-apply"}) {
    auto p = make(name);
    for (int i = 0; i < 60; ++i) {
      const auto d = p->observe(sample(50, 100));
      if (d.uncore.action == UncoreAction::decrease ||
          d.uncore.action == UncoreAction::increase) {
        EXPECT_GE(d.uncore.target_mhz, 1200.0) << name;
        EXPECT_LE(d.uncore.target_mhz, 2400.0) << name;
      }
      if (d.cap_action == CapAction::decrease ||
          d.cap_action == CapAction::increase) {
        EXPECT_GE(d.cap_long_w, 65.0) << name;
        EXPECT_LE(d.cap_long_w, 125.0) << name;
      }
    }
  }
}

}  // namespace
}  // namespace dufp::core
