#include "core/dufp.h"

#include <gtest/gtest.h>

namespace dufp::core {
namespace {

/// Builds a measurement sample; oi is set through flops/bytes.
perfmon::Sample sample(double gflops, double gbps, double power) {
  perfmon::Sample s;
  s.flops_rate = gflops * 1e9;
  s.bytes_rate = gbps * 1e9;
  s.pkg_power_w = power;
  s.interval_s = 0.2;
  return s;
}

class DufpTest : public ::testing::Test {
 protected:
  DufpTest() {
    policy_.tolerated_slowdown = 0.10;
    policy_.cap_cooldown_intervals = 0;  // keep unit tests single-purpose
    policy_.uncore_cooldown_intervals = 0;
  }

  DufpController make() { return DufpController(policy_, uncore_, caps_); }

  PolicyConfig policy_;
  UncoreLimits uncore_;
  CapLimits caps_;  // 125/150 default, 65 floor
};

TEST_F(DufpTest, StartsAtHardwareDefaults) {
  auto c = make();
  EXPECT_DOUBLE_EQ(c.cap_long_w(), 125.0);
  EXPECT_DOUBLE_EQ(c.cap_short_w(), 150.0);
}

TEST_F(DufpTest, FirstDecisionTightensShortTermWhenPowerBelowCap) {
  auto c = make();
  // Fresh controller behaves like the instant after a reset: the paper
  // checks consumption vs the cap and pulls short := long (Sec. III).
  // The same interval then proceeds to probe downward, so both
  // constraints end one step below the default.
  const auto d = c.decide(sample(50, 25, 110.0));
  EXPECT_TRUE(d.tighten_short_term);
  EXPECT_DOUBLE_EQ(c.cap_short_w(), c.cap_long_w());
  EXPECT_DOUBLE_EQ(c.cap_long_w(), 120.0);
}

TEST_F(DufpTest, DecreaseSetsBothConstraintsEqual) {
  auto c = make();
  c.decide(sample(50, 25, 110.0));  // tighten + first decrease (120)
  const auto d = c.decide(sample(50, 25, 110.0));
  EXPECT_EQ(d.cap_action, CapAction::decrease);
  EXPECT_DOUBLE_EQ(d.cap_long_w, 115.0);
  EXPECT_DOUBLE_EQ(d.cap_short_w, 115.0);
}

TEST_F(DufpTest, StepIsFiveWatts) {
  auto c = make();
  c.decide(sample(50, 25, 100.0));  // 120
  c.decide(sample(50, 25, 100.0));  // 115
  c.decide(sample(50, 25, 100.0));  // 110
  EXPECT_DOUBLE_EQ(c.cap_long_w(), 110.0);
}

TEST_F(DufpTest, NeverDecreasesBelowFloor) {
  auto c = make();
  for (int i = 0; i < 40; ++i) c.decide(sample(50, 25, 60.0));
  EXPECT_DOUBLE_EQ(c.cap_long_w(), 65.0);
  const auto d = c.decide(sample(50, 25, 60.0));
  EXPECT_EQ(d.cap_action, CapAction::hold);
}

TEST_F(DufpTest, HighlyMemoryPhaseDecreasesDespiteFlopsDrop) {
  auto c = make();
  c.decide(sample(0.5, 50, 110.0));  // oi 0.01: highly memory
  // Massive apparent FLOPS drop — ignored on the free-capping path.
  const auto d = c.decide(sample(0.2, 50, 110.0));
  EXPECT_EQ(d.cap_action, CapAction::decrease);
}

TEST_F(DufpTest, ViolationStepsCapBackUp) {
  auto c = make();
  c.decide(sample(50, 25, 100.0));  // cap 120
  c.decide(sample(50, 25, 100.0));  // cap 115
  const auto d = c.decide(sample(40, 25, 95.0));  // 20 % drop, oi 1.6
  EXPECT_EQ(d.cap_action, CapAction::increase);
  EXPECT_DOUBLE_EQ(c.cap_long_w(), 120.0);
}

TEST_F(DufpTest, IncreaseReachingDefaultBecomesReset) {
  auto c = make();
  c.decide(sample(50, 25, 100.0));  // cap 120
  const auto d = c.decide(sample(40, 25, 95.0));  // +5 reaches default
  EXPECT_EQ(d.cap_action, CapAction::reset);
  EXPECT_TRUE(d.cap_reset);
  EXPECT_DOUBLE_EQ(c.cap_long_w(), 125.0);
  EXPECT_DOUBLE_EQ(c.cap_short_w(), 150.0);
}

TEST_F(DufpTest, HighlyCpuViolationResetsOutright) {
  auto c = make();
  c.decide(sample(96, 0.24, 100.0));  // oi 400
  for (int i = 0; i < 5; ++i) c.decide(sample(96, 0.24, 100.0));
  EXPECT_LT(c.cap_long_w(), 125.0);
  const auto d = c.decide(sample(80, 0.2, 90.0));  // 17 % drop
  EXPECT_EQ(d.cap_action, CapAction::reset);
  EXPECT_DOUBLE_EQ(c.cap_long_w(), 125.0);
}

TEST_F(DufpTest, HighlyCpuBandwidthDropAlsoResets) {
  policy_.bw_floor_bytes_per_s = 0.0;  // make the tiny traffic meaningful
  auto c = make();
  c.decide(sample(200, 1.5, 100.0));  // oi ~133 > 100
  c.decide(sample(200, 1.5, 100.0));
  // FLOPS fine, bandwidth down 20 %: Sec. III applies the slowdown to
  // memory bandwidth for highly CPU-intensive phases.
  const auto d = c.decide(sample(200, 1.2, 100.0));
  EXPECT_EQ(d.cap_action, CapAction::reset);
}

TEST_F(DufpTest, BoundaryZoneHolds) {
  auto c = make();
  c.decide(sample(50, 25, 100.0));
  c.decide(sample(50, 25, 100.0));
  const auto d = c.decide(sample(45.2, 25, 98.0));  // drop 9.6 %: boundary
  EXPECT_EQ(d.cap_action, CapAction::hold);
}

TEST_F(DufpTest, PhaseChangeResetsCapAndRequestsUncoreVerify) {
  auto c = make();
  c.decide(sample(5, 50, 110.0));   // memory phase
  c.decide(sample(5, 50, 110.0));   // decrease
  const auto d = c.decide(sample(60, 25, 115.0));  // class flip
  EXPECT_EQ(d.cap_action, CapAction::reset);
  EXPECT_TRUE(d.verify_uncore_reset);
  EXPECT_EQ(d.uncore.action, UncoreAction::reset);
  EXPECT_DOUBLE_EQ(c.cap_long_w(), 125.0);
}

TEST_F(DufpTest, OvershootGuardResets) {
  policy_.overshoot_margin_w = 3.0;
  auto c = make();
  c.decide(sample(50, 25, 100.0));  // cap 120
  c.decide(sample(50, 25, 100.0));  // cap 115
  c.decide(sample(50, 25, 100.0));  // cap 110
  // The cap is not being honoured: reset (Sec. IV-D).
  const auto d = c.decide(sample(50, 25, 124.0));
  EXPECT_EQ(d.cap_action, CapAction::reset);
  EXPECT_TRUE(d.cap_reset);
}

TEST_F(DufpTest, OvershootWithinMarginTolerated) {
  policy_.overshoot_margin_w = 3.0;
  auto c = make();
  c.decide(sample(50, 25, 100.0));  // cap 120
  // Settling transient: +2 W above the fresh cap stays within the margin.
  const auto d = c.decide(sample(50, 25, 122.0));
  EXPECT_NE(d.cap_action, CapAction::reset);
}

TEST_F(DufpTest, PostResetShortTermTightening) {
  auto c = make();
  c.decide(sample(96, 0.24, 100.0));
  c.decide(sample(96, 0.24, 100.0));
  c.decide(sample(80, 0.2, 90.0));  // highly-cpu reset
  // Next interval: consumption below the default cap -> short := long
  // (the interval then continues into a fresh probe).
  const auto d = c.decide(sample(96, 0.24, 100.0));
  EXPECT_TRUE(d.tighten_short_term);
  EXPECT_DOUBLE_EQ(c.cap_short_w(), c.cap_long_w());
}

TEST_F(DufpTest, PostResetNoTighteningWhenPowerAtCap) {
  auto c = make();
  c.decide(sample(96, 0.24, 130.0));  // above the cap: no tighten
  EXPECT_DOUBLE_EQ(c.cap_short_w(), 150.0);
}

TEST_F(DufpTest, InteractionRule1RaisesCapWhenUncoreIncreaseDidNotHelp) {
  policy_.uncore_cooldown_intervals = 0;
  auto c = make();
  // Build a memory phase where bandwidth violations force uncore
  // increases while FLOPS stay within tolerance.
  c.decide(sample(5, 50, 110.0));
  c.decide(sample(5, 50, 110.0));     // uncore probes down
  c.decide(sample(4.9, 40, 108.0));   // bw -20 %: uncore increases
  EXPECT_TRUE(c.duf().last_action_was_increase());
  const double cap_before = c.cap_long_w();
  // Next interval FLOPS did not improve: rule 1 — raise the cap.
  const auto d = c.decide(sample(4.9, 44, 108.0));
  EXPECT_TRUE(d.cap_action == CapAction::increase ||
              d.cap_action == CapAction::reset);
  EXPECT_GE(c.cap_long_w(), cap_before);
}

TEST_F(DufpTest, CapCooldownDelaysReprobing) {
  policy_.cap_cooldown_intervals = 3;
  auto c = make();
  c.decide(sample(50, 25, 100.0));
  c.decide(sample(50, 25, 100.0));        // decrease (cap 120)
  c.decide(sample(40, 25, 95.0));         // violation -> reset + cooldown
  int holds = 0;
  for (int i = 0; i < 3; ++i) {
    if (c.decide(sample(50, 25, 100.0)).cap_action == CapAction::hold) {
      ++holds;
    }
  }
  EXPECT_EQ(holds, 3);
  EXPECT_EQ(c.decide(sample(50, 25, 100.0)).cap_action,
            CapAction::decrease);
}

TEST_F(DufpTest, ForeignViolationHeldNotEscalated) {
  policy_.attribution_window_intervals = 2;
  policy_.persistent_violation_intervals = 100;
  auto c = make();
  c.decide(sample(50, 25, 100.0));  // cap 120
  // Park the cap in the boundary zone for several intervals (drop 9.6 %:
  // "equivalent to the slowdown", holds without moving).
  for (int i = 0; i < 5; ++i) c.decide(sample(45.2, 25, 100.0));
  // A violation long after the last cap move (uncore's fault): hold.
  const auto d = c.decide(sample(40, 25, 95.0));
  EXPECT_EQ(d.cap_action, CapAction::hold);
  EXPECT_DOUBLE_EQ(c.cap_long_w(), 120.0);
}

TEST_F(DufpTest, InvalidCapLimitsRejected) {
  CapLimits bad;
  bad.min_cap_w = 130.0;  // above the default long term
  EXPECT_THROW(DufpController(policy_, uncore_, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace dufp::core
