#include "core/duf.h"

#include <gtest/gtest.h>

namespace dufp::core {
namespace {

PhaseTracker::Update update(double flops_drop, double bw_drop = 0.0,
                            bool phase_change = false,
                            bool highly_cpu = false) {
  PhaseTracker::Update u;
  u.flops_drop = flops_drop;
  u.bw_drop = bw_drop;
  u.phase_change = phase_change;
  u.highly_cpu = highly_cpu;
  u.oi = highly_cpu ? 400.0 : 0.5;
  u.phase_class = highly_cpu ? PhaseClass::cpu : PhaseClass::memory;
  return u;
}

class DufTest : public ::testing::Test {
 protected:
  DufTest() {
    policy_.tolerated_slowdown = 0.10;
    policy_.uncore_cooldown_intervals = 3;
    policy_.attribution_window_intervals = 2;
    policy_.persistent_violation_intervals = 4;
  }

  DufController make() { return DufController(policy_, limits_); }

  PolicyConfig policy_;
  UncoreLimits limits_;  // 1200-2400 default
};

TEST_F(DufTest, StartsAtMaximum) {
  auto duf = make();
  EXPECT_DOUBLE_EQ(duf.target_mhz(), 2400.0);
}

TEST_F(DufTest, DecreasesWhileWithinTolerance) {
  auto duf = make();
  auto d = duf.decide(update(0.0));
  EXPECT_EQ(d.action, UncoreAction::decrease);
  EXPECT_DOUBLE_EQ(d.target_mhz, 2300.0);
  d = duf.decide(update(0.02));
  EXPECT_EQ(d.action, UncoreAction::decrease);
  EXPECT_DOUBLE_EQ(d.target_mhz, 2200.0);
}

TEST_F(DufTest, StopsAtMinimum) {
  auto duf = make();
  for (int i = 0; i < 20; ++i) duf.decide(update(0.0));
  EXPECT_DOUBLE_EQ(duf.target_mhz(), 1200.0);
  const auto d = duf.decide(update(0.0));
  EXPECT_EQ(d.action, UncoreAction::hold);
}

TEST_F(DufTest, HoldsAtBoundaryZone) {
  auto duf = make();
  // drop in (tol - eps, tol]: "equivalent to the slowdown".
  const auto d = duf.decide(update(0.095));
  EXPECT_EQ(d.action, UncoreAction::hold);
  EXPECT_DOUBLE_EQ(duf.target_mhz(), 2400.0);
}

TEST_F(DufTest, BacksOffWhenOwnProbeViolates) {
  auto duf = make();
  duf.decide(update(0.0));  // 2300 — just probed
  const auto d = duf.decide(update(0.15));
  EXPECT_EQ(d.action, UncoreAction::increase);
  EXPECT_DOUBLE_EQ(d.target_mhz, 2400.0);
}

TEST_F(DufTest, CooldownBlocksImmediateReprobe) {
  auto duf = make();
  duf.decide(update(0.0));   // 2300
  duf.decide(update(0.15));  // violated -> 2400, cooldown 3
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(duf.decide(update(0.0)).action, UncoreAction::hold) << i;
  }
  EXPECT_EQ(duf.decide(update(0.0)).action, UncoreAction::decrease);
}

TEST_F(DufTest, ForeignViolationNotAttributed) {
  auto duf = make();
  duf.decide(update(0.0));  // 2300
  // Several boundary-zone intervals: the probe is old news now and the
  // controller holds in place.
  for (int i = 0; i < 4; ++i) duf.decide(update(0.095));
  // A violation appears (caused elsewhere, e.g. the power cap): hold, do
  // not retreat.
  const auto d = duf.decide(update(0.15));
  EXPECT_EQ(d.action, UncoreAction::hold);
  EXPECT_DOUBLE_EQ(duf.target_mhz(), 2300.0);
}

TEST_F(DufTest, PersistentViolationForcesBackOff) {
  auto duf = make();
  duf.decide(update(0.0));  // 2300
  for (int i = 0; i < 4; ++i) duf.decide(update(0.095));
  // Violation persists 4 consecutive intervals -> back off even though
  // unattributed.
  DufController::Decision d;
  for (int i = 0; i < 4; ++i) d = duf.decide(update(0.15));
  EXPECT_EQ(d.action, UncoreAction::increase);
}

TEST_F(DufTest, HighlyCpuFlopsViolationLeftToCapPath) {
  auto duf = make();
  duf.decide(update(0.0, 0.0, false, /*highly_cpu=*/true));  // 2300
  // FLOPS-only violation on an OI>100 phase: the uncore cannot be the
  // culprit — hold.
  const auto d = duf.decide(update(0.15, 0.0, false, true));
  EXPECT_EQ(d.action, UncoreAction::hold);
}

TEST_F(DufTest, HighlyCpuBandwidthViolationStillBacksOff) {
  auto duf = make();
  duf.decide(update(0.0, 0.0, false, true));
  const auto d = duf.decide(update(0.15, 0.2, false, true));
  EXPECT_EQ(d.action, UncoreAction::increase);
}

TEST_F(DufTest, BandwidthGuardAppliesToAllPhases) {
  auto duf = make();
  duf.decide(update(0.0));  // probe to 2300
  // FLOPS fine, bandwidth beyond tolerance -> treated as a violation.
  const auto d = duf.decide(update(0.02, 0.20));
  EXPECT_EQ(d.action, UncoreAction::increase);
}

TEST_F(DufTest, PhaseChangeResets) {
  auto duf = make();
  for (int i = 0; i < 5; ++i) duf.decide(update(0.0));
  EXPECT_LT(duf.target_mhz(), 2400.0);
  const auto d = duf.decide(update(0.0, 0.0, /*phase_change=*/true));
  EXPECT_EQ(d.action, UncoreAction::reset);
  EXPECT_DOUBLE_EQ(d.target_mhz, 2400.0);
}

TEST_F(DufTest, ResetClearsCooldown) {
  auto duf = make();
  duf.decide(update(0.0));
  duf.decide(update(0.15));  // cooldown armed
  duf.decide(update(0.0, 0.0, true));  // phase change
  EXPECT_EQ(duf.decide(update(0.0)).action, UncoreAction::decrease);
}

TEST_F(DufTest, LastActionIncreaseFlagForInteractionRule) {
  auto duf = make();
  duf.decide(update(0.0));
  EXPECT_FALSE(duf.last_action_was_increase());
  duf.decide(update(0.15));
  EXPECT_TRUE(duf.last_action_was_increase());
  duf.decide(update(0.0));
  EXPECT_FALSE(duf.last_action_was_increase());
}

TEST_F(DufTest, ForceResetRestoresMax) {
  auto duf = make();
  for (int i = 0; i < 6; ++i) duf.decide(update(0.0));
  duf.force_reset();
  EXPECT_DOUBLE_EQ(duf.target_mhz(), 2400.0);
}

TEST_F(DufTest, InvalidLimitsRejected) {
  UncoreLimits bad;
  bad.min_mhz = 2400.0;
  bad.max_mhz = 1200.0;
  EXPECT_THROW(DufController(policy_, bad), std::invalid_argument);
}

TEST_F(DufTest, InvalidToleranceRejected) {
  policy_.tolerated_slowdown = 1.5;
  EXPECT_THROW(make(), std::invalid_argument);
}

// Tolerance sweep: the resting uncore frequency must decrease
// monotonically as the tolerance grows, for a synthetic phase whose drop
// grows linearly as the uncore descends.
class DufToleranceSweep : public ::testing::TestWithParam<double> {};

TEST_P(DufToleranceSweep, RestingPointScalesWithTolerance) {
  PolicyConfig policy;
  policy.tolerated_slowdown = GetParam();
  UncoreLimits limits;
  DufController duf(policy, limits);

  // Synthetic response: 3 % drop per 100 MHz below 2400.
  auto drop_at = [&](double mhz) { return (2400.0 - mhz) / 100.0 * 0.03; };
  for (int i = 0; i < 60; ++i) {
    duf.decide(update(drop_at(duf.target_mhz())));
  }
  const double expected_drop = policy.tolerated_slowdown;
  const double resting_drop = drop_at(duf.target_mhz());
  // Rests within ~1.5 steps of the tolerance boundary, never beyond the
  // violation band.
  EXPECT_LE(resting_drop, expected_drop + policy.epsilon + 1e-9);
  if (expected_drop > 0.05) {
    EXPECT_GE(resting_drop, expected_drop - 0.06);
  }
}

INSTANTIATE_TEST_SUITE_P(Tolerances, DufToleranceSweep,
                         ::testing::Values(0.0, 0.05, 0.10, 0.20));

}  // namespace
}  // namespace dufp::core
