// Flight-recorder ring semantics: capacity rounding, ordered snapshots,
// overwrite-oldest wraparound and the monotonic recorded() cursor.
#include "telemetry/flight_recorder.h"

#include <gtest/gtest.h>

namespace dufp::telemetry {
namespace {

Event ev(std::int64_t t) {
  Event e;
  e.t_us = t;
  e.kind = EventKind::sample_accepted;
  e.a = static_cast<double>(t);
  return e;
}

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlightRecorder(0).capacity(), 2u);
  EXPECT_EQ(FlightRecorder(1).capacity(), 2u);
  EXPECT_EQ(FlightRecorder(2).capacity(), 2u);
  EXPECT_EQ(FlightRecorder(3).capacity(), 4u);
  EXPECT_EQ(FlightRecorder(256).capacity(), 256u);
  EXPECT_EQ(FlightRecorder(300).capacity(), 512u);
}

TEST(FlightRecorderTest, SnapshotBeforeWrapReturnsAllInOrder) {
  FlightRecorder r(8);
  for (int i = 0; i < 5; ++i) r.record(ev(i));
  const auto snap = r.snapshot();
  ASSERT_EQ(snap.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(snap[static_cast<size_t>(i)].t_us, i);
  EXPECT_EQ(r.recorded(), 5u);
}

TEST(FlightRecorderTest, WrapOverwritesOldestKeepsNewest) {
  FlightRecorder r(4);
  for (int i = 0; i < 11; ++i) r.record(ev(i));
  const auto snap = r.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  // The last capacity() events, oldest -> newest.
  EXPECT_EQ(snap[0].t_us, 7);
  EXPECT_EQ(snap[1].t_us, 8);
  EXPECT_EQ(snap[2].t_us, 9);
  EXPECT_EQ(snap[3].t_us, 10);
  EXPECT_EQ(r.recorded(), 11u);
}

TEST(FlightRecorderTest, EmptySnapshotIsEmpty) {
  FlightRecorder r(16);
  EXPECT_TRUE(r.snapshot().empty());
  EXPECT_EQ(r.recorded(), 0u);
}

TEST(FlightRecorderTest, PayloadSurvivesTheRing) {
  FlightRecorder r(2);
  Event e;
  e.t_us = 123456;
  e.kind = EventKind::actuation;
  e.socket = 1;
  e.code = static_cast<std::uint16_t>(ActuationOp::cap_long);
  e.a = 95.0;
  e.b = 120.0;
  r.record(e);
  const auto snap = r.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].t_us, 123456);
  EXPECT_EQ(snap[0].kind, EventKind::actuation);
  EXPECT_EQ(snap[0].socket, 1);
  EXPECT_EQ(snap[0].code, static_cast<std::uint16_t>(ActuationOp::cap_long));
  EXPECT_DOUBLE_EQ(snap[0].a, 95.0);
  EXPECT_DOUBLE_EQ(snap[0].b, 120.0);
}

}  // namespace
}  // namespace dufp::telemetry
