// Exporter contracts: byte-exact golden files for the Prometheus text
// exposition and the Chrome trace JSON (the two formats external tools
// parse), plus the escaping / name-grammar helpers.
//
// Golden files live in tests/telemetry/golden/ (DUFP_TELEMETRY_GOLDEN_DIR
// is injected by CMake).  To regenerate after an intentional format
// change: DUFP_UPDATE_GOLDEN=1 ctest -R Export, then review the diff.
#include "telemetry/export.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace dufp::telemetry {
namespace {

/// A small but representative snapshot: every metric type, labels that
/// need escaping, two sockets of events covering every payload shape, and
/// one fail-open dump.
TelemetrySnapshot golden_snapshot() {
  MetricsRegistry reg;
  Counter c = reg.counter("dufp_agent_intervals_total",
                          "Control intervals executed.",
                          {{"socket", "0"}, {"mode", "DUFP"}});
  c.inc(42);
  Gauge g = reg.gauge("dufp_run_pkg_power_watts",
                      "Average package power over the run.");
  g.set(112.5);
  Histogram h = reg.histogram("dufp_agent_pkg_power_watts",
                              "Per-interval package power.", {60.0, 120.0},
                              {{"socket", "0"}});
  h.observe(55.0);
  h.observe(100.0);
  h.observe(130.0);
  Gauge esc = reg.gauge("dufp_escape_check",
                        "Help with a backslash \\ in it.",
                        {{"path", "a\\b\"c\nd"}});
  esc.set(1.0);

  TelemetrySnapshot snap;
  snap.metrics = reg.collect();

  auto ev = [](std::int64_t t, EventKind k, std::uint16_t socket,
               std::uint16_t code, double a, double b) {
    Event e;
    e.t_us = t;
    e.kind = k;
    e.socket = socket;
    e.code = code;
    e.a = a;
    e.b = b;
    return e;
  };
  snap.events.resize(2);
  snap.events[0] = {
      ev(200000, EventKind::sample_accepted, 0, 0, 105.25, 2794.0),
      ev(200050, EventKind::actuation, 0,
         static_cast<std::uint16_t>(ActuationOp::uncore), 2200.0, 0.0),
      ev(400000, EventKind::actuation, 0,
         static_cast<std::uint16_t>(ActuationOp::cap_long), 115.0, 150.0),
      ev(600000, EventKind::fail_open, 0, 0, 0.0, 0.0),
  };
  snap.events[1] = {
      ev(200010, EventKind::sample_rejected, 1, 0, 0.0, 0.0),
      ev(400020, EventKind::fault_injected, 1, 3, 0.0, 0.0),
  };

  FlightDump dump;
  dump.socket = 0;
  dump.at_us = 600000;
  dump.events = {snap.events[0][2], snap.events[0][3]};
  snap.dumps.push_back(dump);
  return snap;
}

std::string golden_path(const std::string& file) {
  return std::string(DUFP_TELEMETRY_GOLDEN_DIR) + "/" + file;
}

void expect_matches_golden(const std::string& produced,
                           const std::string& file) {
  const std::string path = golden_path(file);
  if (std::getenv("DUFP_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << produced;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with DUFP_UPDATE_GOLDEN=1)";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(produced, want.str()) << "output drifted from " << path;
}

TEST(ExportGoldenTest, PrometheusExposition) {
  std::ostringstream os;
  write_prometheus(golden_snapshot().metrics, os);
  expect_matches_golden(os.str(), "exposition.prom");
}

TEST(ExportGoldenTest, ChromeTraceJson) {
  std::ostringstream os;
  write_chrome_trace(golden_snapshot(), os);
  expect_matches_golden(os.str(), "trace.json");
}

TEST(ExportGoldenTest, Jsonl) {
  std::ostringstream os;
  write_jsonl(golden_snapshot(), os);
  expect_matches_golden(os.str(), "events.jsonl");
}

TEST(ExportTest, PrometheusOutputIsDeterministic) {
  std::ostringstream a;
  std::ostringstream b;
  write_prometheus(golden_snapshot().metrics, a);
  write_prometheus(golden_snapshot().metrics, b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(ExportTest, ChromeTraceTimestampsNonDecreasing) {
  std::ostringstream os;
  write_chrome_trace(golden_snapshot(), os);
  const std::string out = os.str();
  // Scan the "ts": fields of the instant events; they must be sorted.
  std::int64_t last = -1;
  std::size_t pos = 0;
  int seen = 0;
  while ((pos = out.find("\"ts\":", pos)) != std::string::npos) {
    pos += 5;
    const std::int64_t ts = std::strtoll(out.c_str() + pos, nullptr, 10);
    if (ts != 0) {  // metadata records sit at ts 0 before the stream
      EXPECT_GE(ts, last);
      last = ts;
      ++seen;
    }
  }
  EXPECT_EQ(seen, 6);  // all six instant events present
}

TEST(ExportTest, PrometheusLabelEscaping) {
  EXPECT_EQ(prometheus_escape_label("plain"), "plain");
  EXPECT_EQ(prometheus_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(prometheus_escape_label("a\"b"), "a\\\"b");
  EXPECT_EQ(prometheus_escape_label("a\nb"), "a\\nb");
}

TEST(ExportTest, PrometheusNameGrammar) {
  EXPECT_TRUE(valid_prometheus_name("dufp_agent_intervals_total"));
  EXPECT_TRUE(valid_prometheus_name("a:b_c9"));
  EXPECT_FALSE(valid_prometheus_name(""));
  EXPECT_FALSE(valid_prometheus_name("9leading"));
  EXPECT_FALSE(valid_prometheus_name("has-dash"));
  EXPECT_FALSE(valid_prometheus_name("has space"));
}

TEST(ExportTest, SanitizeProducesValidNames) {
  EXPECT_EQ(sanitize_prometheus_name("dufp_ok"), "dufp_ok");
  EXPECT_EQ(sanitize_prometheus_name("has-dash"), "has_dash");
  EXPECT_EQ(sanitize_prometheus_name("9lead"), "_9lead");
  EXPECT_TRUE(valid_prometheus_name(sanitize_prometheus_name("x y-z.9")));
}

TEST(ExportTest, JsonEscape) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(ExportTest, EveryMetricNameInGoldenSetIsValid) {
  for (const auto& m : golden_snapshot().metrics) {
    EXPECT_TRUE(valid_prometheus_name(sanitize_prometheus_name(m.name)))
        << m.name;
  }
}

}  // namespace
}  // namespace dufp::telemetry
