// Telemetry wired through the harness: enabling it must be bit-identical
// to the disabled run (it draws no randomness and changes no decision),
// every watchdog fail-open must produce a bounded flight dump, and the
// registry must agree with the agents' own stats snapshots.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "core/budget_balancer.h"
#include "faults/fault_plan.h"
#include "harness/runner.h"
#include "sim/simulation.h"
#include "telemetry/telemetry.h"
#include "workloads/profiles.h"

namespace dufp::harness {
namespace {

RunConfig base_config(PolicyMode mode) {
  RunConfig cfg;
  cfg.profile = &workloads::profile(workloads::AppId::cg);
  cfg.machine.sockets = 1;
  cfg.seed = 21;
  cfg.mode = mode;
  cfg.tolerated_slowdown = 0.10;
  return cfg;
}

/// The fail-open recipe: a permanently tripped msr-safe style write
/// denial degrades the socket deterministically.
RunConfig degrading_config() {
  RunConfig cfg = base_config(PolicyMode::dufp);
  cfg.faults.enabled = true;
  cfg.faults.write_eperm = {0.05, 1 << 20};
  cfg.faults.seed = 3;
  return cfg;
}

double metric_value(const telemetry::TelemetrySnapshot& snap,
                    const std::string& name) {
  double total = 0.0;
  bool found = false;
  for (const auto& m : snap.metrics) {
    if (m.name == name) {
      total += m.value;
      found = true;
    }
  }
  EXPECT_TRUE(found) << "metric not registered: " << name;
  return total;
}

TEST(TelemetryRunTest, EnabledRunBitIdenticalToDisabled) {
  const auto off = run_once(base_config(PolicyMode::dufp));
  auto cfg = base_config(PolicyMode::dufp);
  cfg.telemetry.enabled = true;
  const auto on = run_once(cfg);

  EXPECT_EQ(off.summary.exec_seconds, on.summary.exec_seconds);
  EXPECT_EQ(off.summary.pkg_energy_j, on.summary.pkg_energy_j);
  EXPECT_EQ(off.summary.dram_energy_j, on.summary.dram_energy_j);
  ASSERT_EQ(off.agent_stats.size(), on.agent_stats.size());
  for (std::size_t i = 0; i < off.agent_stats.size(); ++i) {
    EXPECT_EQ(off.agent_stats[i].intervals, on.agent_stats[i].intervals);
    EXPECT_EQ(off.agent_stats[i].uncore_decreases,
              on.agent_stats[i].uncore_decreases);
    EXPECT_EQ(off.agent_stats[i].uncore_increases,
              on.agent_stats[i].uncore_increases);
    EXPECT_EQ(off.agent_stats[i].cap_decreases,
              on.agent_stats[i].cap_decreases);
    EXPECT_EQ(off.agent_stats[i].cap_increases,
              on.agent_stats[i].cap_increases);
    EXPECT_EQ(off.agent_stats[i].short_term_tightenings,
              on.agent_stats[i].short_term_tightenings);
  }
  EXPECT_FALSE(off.telemetry.has_value());
  ASSERT_TRUE(on.telemetry.has_value());
}

TEST(TelemetryRunTest, EnabledRunBitIdenticalUnderAFaultStorm) {
  // Same discipline with injection active: telemetry must not perturb the
  // fault streams either.
  const auto off = run_once(degrading_config());
  auto cfg = degrading_config();
  cfg.telemetry.enabled = true;
  const auto on = run_once(cfg);
  EXPECT_EQ(off.summary.exec_seconds, on.summary.exec_seconds);
  EXPECT_EQ(off.summary.pkg_energy_j, on.summary.pkg_energy_j);
  EXPECT_EQ(off.health.degradations, on.health.degradations);
  EXPECT_EQ(off.health.actuation_failures, on.health.actuation_failures);
  EXPECT_EQ(off.health.faults_injected, on.health.faults_injected);
}

TEST(TelemetryRunTest, RegistryAgreesWithAgentStats) {
  auto cfg = base_config(PolicyMode::dufp);
  cfg.telemetry.enabled = true;
  const auto res = run_once(cfg);
  ASSERT_TRUE(res.telemetry.has_value());
  const auto& snap = *res.telemetry;
  ASSERT_EQ(res.agent_stats.size(), 1u);
  const auto& st = res.agent_stats[0];

  EXPECT_EQ(metric_value(snap, "dufp_agent_intervals_total"),
            static_cast<double>(st.intervals));
  EXPECT_EQ(metric_value(snap, "dufp_agent_uncore_decreases_total"),
            static_cast<double>(st.uncore_decreases));
  EXPECT_EQ(metric_value(snap, "dufp_agent_cap_decreases_total"),
            static_cast<double>(st.cap_decreases));
  // Accepted samples are exactly the intervals that produced a decision.
  EXPECT_EQ(metric_value(snap, "dufp_sampler_samples_total"),
            static_cast<double>(st.intervals));
  // Run-summary gauges registered by the harness after the run.
  EXPECT_EQ(metric_value(snap, "dufp_run_exec_seconds"),
            res.summary.exec_seconds);
  EXPECT_EQ(metric_value(snap, "dufp_run_pkg_energy_joules"),
            res.summary.pkg_energy_j);
  // An active agent leaves a non-empty flight ring.
  ASSERT_EQ(snap.events.size(), 1u);
  EXPECT_FALSE(snap.events[0].empty());
  EXPECT_TRUE(std::is_sorted(snap.events[0].begin(), snap.events[0].end(),
                             [](const telemetry::Event& a,
                                const telemetry::Event& b) {
                               return a.t_us < b.t_us;
                             }));
}

TEST(TelemetryRunTest, EveryFailOpenProducesABoundedDump) {
  auto cfg = degrading_config();
  cfg.telemetry.enabled = true;
  const auto res = run_once(cfg);
  ASSERT_TRUE(res.telemetry.has_value());
  const auto& snap = *res.telemetry;
  ASSERT_GT(res.health.degradations, 0u);

  // dumps taken + dumps suppressed == watchdog fail-opens.
  const double taken = metric_value(snap, "dufp_flight_dumps_total");
  const double suppressed =
      metric_value(snap, "dufp_flight_dumps_suppressed_total");
  EXPECT_EQ(taken + suppressed, static_cast<double>(res.health.degradations));
  EXPECT_EQ(snap.dumps.size(), static_cast<std::size_t>(taken));
  ASSERT_FALSE(snap.dumps.empty());
  for (const auto& d : snap.dumps) {
    EXPECT_EQ(d.socket, 0);
    EXPECT_GT(d.at_us, 0);
    ASSERT_FALSE(d.events.empty());
    EXPECT_LE(d.events.size(), cfg.telemetry.flight_capacity);
    // The newest event in the dump is the fail_open itself.
    EXPECT_EQ(d.events.back().kind, telemetry::EventKind::fail_open);
  }
}

TEST(TelemetryRunTest, MaxDumpsBoundsRetention) {
  auto cfg = degrading_config();
  cfg.telemetry.enabled = true;
  cfg.telemetry.max_dumps = 1;
  const auto res = run_once(cfg);
  ASSERT_TRUE(res.telemetry.has_value());
  EXPECT_LE(res.telemetry->dumps.size(), 1u);
  if (res.health.degradations > 1u) {
    EXPECT_GT(metric_value(*res.telemetry,
                           "dufp_flight_dumps_suppressed_total"),
              0.0);
  }
}

TEST(TelemetryRunTest, ConfigValidation) {
  telemetry::TelemetryConfig bad;
  bad.flight_capacity = 0;
  EXPECT_FALSE(bad.validate().empty());
  EXPECT_THROW(telemetry::Telemetry(bad, 1), std::invalid_argument);

  // The harness prefixes nested problems with "telemetry.".
  auto cfg = base_config(PolicyMode::dufp);
  cfg.telemetry.enabled = true;
  cfg.telemetry.flight_capacity = 0;
  const auto problems = cfg.validate();
  ASSERT_FALSE(problems.empty());
  bool prefixed = false;
  for (const auto& p : problems) {
    prefixed = prefixed || p.rfind("telemetry.", 0) == 0;
  }
  EXPECT_TRUE(prefixed);
  EXPECT_THROW(run_once(cfg), std::invalid_argument);
}

TEST(TelemetryRunTest, BudgetBalancerRegistersAndRecords) {
  // The balancer rides the machine-level plane: interval counter,
  // per-socket allocation gauges, balancer_realloc events.
  hw::MachineConfig machine;
  machine.sockets = 2;
  sim::SimulationOptions opts;
  opts.seed = 33;
  std::vector<const workloads::WorkloadProfile*> apps{
      &workloads::profile(workloads::AppId::hpl),
      &workloads::profile(workloads::AppId::mg)};
  sim::Simulation s(machine, apps, opts);
  std::vector<std::unique_ptr<powercap::PackageZone>> zones;
  for (int i = 0; i < 2; ++i) {
    zones.push_back(std::make_unique<powercap::PackageZone>(s.msr(i), i));
  }
  core::BalancerConfig bal_cfg;
  bal_cfg.machine_budget_w = 200.0;
  core::BudgetBalancer balancer(
      bal_cfg, {zones[0].get(), zones[1].get()}, {&s.msr(0), &s.msr(1)},
      machine.socket.core_max_mhz, machine.socket.core_base_mhz);

  telemetry::TelemetryConfig tcfg;
  tcfg.enabled = true;
  telemetry::Telemetry telem(tcfg, 2);
  balancer.set_telemetry(&telem);
  s.schedule_periodic(SimTime::from_millis(200),
                      [&](SimTime now) { balancer.on_interval(now); });
  for (int i = 0; i < 5'000 && s.step(); ++i) {
  }
  const auto snap = telem.snapshot();
  EXPECT_EQ(metric_value(snap, "dufp_balancer_intervals_total"),
            static_cast<double>(balancer.intervals()));
  EXPECT_GT(balancer.intervals(), 0u);
  double alloc_sum = 0.0;
  for (const auto& m : snap.metrics) {
    if (m.name == "dufp_balancer_allocation_watts") alloc_sum += m.value;
  }
  EXPECT_DOUBLE_EQ(alloc_sum,
                   balancer.allocation_w()[0] + balancer.allocation_w()[1]);
  // Both sockets' rings saw balancer_realloc events.
  for (int i = 0; i < 2; ++i) {
    const auto events = telem.socket(i).recorder().snapshot();
    bool any = false;
    for (const auto& e : events) {
      any = any || e.kind == telemetry::EventKind::balancer_realloc;
    }
    EXPECT_TRUE(any) << "socket " << i;
  }
}

TEST(TelemetryRunTest, DisabledConfigIsNeverConstructed) {
  // telemetry.enabled=false with an otherwise-invalid telemetry config
  // must not trip validation — nothing below the switch is constructed.
  auto cfg = base_config(PolicyMode::dufp);
  cfg.telemetry.enabled = false;
  cfg.telemetry.flight_capacity = 0;
  EXPECT_TRUE(cfg.validate().empty());
  const auto res = run_once(cfg);
  EXPECT_FALSE(res.telemetry.has_value());
}

}  // namespace
}  // namespace dufp::harness
