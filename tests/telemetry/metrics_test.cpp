// MetricsRegistry semantics: instrument arithmetic, the shared-cell
// attach contract (component handle and registry exposition read the same
// value), duplicate-series rejection and deterministic collection order.
#include "telemetry/metrics.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dufp::telemetry {
namespace {

TEST(CounterTest, StandAloneCountsThroughPrivateCell) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
}

TEST(CounterTest, CopiesShareTheCell) {
  Counter a;
  Counter b = a;
  a.inc(2);
  b.inc(3);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(b.value(), 5u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(42.5);
  EXPECT_DOUBLE_EQ(g.value(), 42.5);
  g.add(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), 40.0);
}

TEST(HistogramTest, BucketsAreInclusiveUpperBoundsPlusInf) {
  Histogram h({1.0, 2.0, 5.0});
  h.observe(0.5);   // <= 1.0
  h.observe(1.0);   // <= 1.0 (inclusive)
  h.observe(1.5);   // <= 2.0
  h.observe(5.0);   // <= 5.0
  h.observe(100.0); // +Inf
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 5.0 + 100.0);
}

TEST(HistogramTest, NoBoundsMeansSingleInfBucket) {
  Histogram h;
  h.observe(3.0);
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0], 1u);
}

TEST(MetricsRegistryTest, CreateAndAttachSharesTheCell) {
  MetricsRegistry reg;
  Counter c = reg.counter("dufp_x_total", "X events.");
  c.inc(7);
  const auto samples = reg.collect();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].type, MetricType::counter);
  EXPECT_EQ(samples[0].name, "dufp_x_total");
  EXPECT_DOUBLE_EQ(samples[0].value, 7.0);
}

TEST(MetricsRegistryTest, AttachExistingInstrumentKeepsHistory) {
  // A component counts before telemetry is wired; attaching must expose
  // the already-accumulated value, not reset it.
  Counter c;
  c.inc(3);
  MetricsRegistry reg;
  reg.attach("dufp_pre_total", "Counted before attach.", {}, c);
  c.inc(2);
  const auto samples = reg.collect();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_DOUBLE_EQ(samples[0].value, 5.0);
  EXPECT_EQ(c.value(), 5u);  // component view reads the same cell
}

TEST(MetricsRegistryTest, DuplicateSeriesThrows) {
  MetricsRegistry reg;
  reg.counter("dufp_dup_total", "A.", {{"socket", "0"}});
  EXPECT_THROW(reg.counter("dufp_dup_total", "A.", {{"socket", "0"}}),
               std::invalid_argument);
  // Same name with different labels is a distinct series.
  EXPECT_NO_THROW(reg.counter("dufp_dup_total", "A.", {{"socket", "1"}}));
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistryTest, CollectSortsByNameThenLabels) {
  MetricsRegistry reg;
  reg.counter("dufp_b_total", "B.", {{"socket", "1"}});
  reg.gauge("dufp_a", "A.");
  reg.counter("dufp_b_total", "B.", {{"socket", "0"}});
  const auto samples = reg.collect();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "dufp_a");
  EXPECT_EQ(samples[1].name, "dufp_b_total");
  ASSERT_EQ(samples[1].labels.size(), 1u);
  EXPECT_EQ(samples[1].labels[0].second, "0");
  EXPECT_EQ(samples[2].labels[0].second, "1");
}

TEST(MetricsRegistryTest, HistogramSampleCarriesBucketsSumCount) {
  MetricsRegistry reg;
  Histogram h = reg.histogram("dufp_h", "H.", {10.0, 20.0});
  h.observe(5.0);
  h.observe(15.0);
  h.observe(25.0);
  const auto samples = reg.collect();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].type, MetricType::histogram);
  ASSERT_EQ(samples[0].bucket_bounds.size(), 2u);
  ASSERT_EQ(samples[0].bucket_counts.size(), 3u);
  EXPECT_EQ(samples[0].bucket_counts[0], 1u);
  EXPECT_EQ(samples[0].bucket_counts[1], 1u);
  EXPECT_EQ(samples[0].bucket_counts[2], 1u);
  EXPECT_EQ(samples[0].count, 3u);
  EXPECT_DOUBLE_EQ(samples[0].sum, 45.0);
}

}  // namespace
}  // namespace dufp::telemetry
