#include "msr/sim_msr.h"

#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "msr/registers.h"

namespace dufp::msr {
namespace {

TEST(SimulatedMsrTest, StorageRegisterReadsBack) {
  SimulatedMsr dev(16);
  dev.define_register(0x610, 0xABCD);
  EXPECT_EQ(dev.read(0, 0x610), 0xABCDull);
  dev.write(3, 0x610, 0x42);
  EXPECT_EQ(dev.read(7, 0x610), 0x42ull);  // package scope: any core
}

TEST(SimulatedMsrTest, UnknownRegisterFaults) {
  SimulatedMsr dev(4);
  EXPECT_THROW(dev.read(0, 0x999), MsrError);
  EXPECT_THROW(dev.write(0, 0x999, 1), MsrError);
}

TEST(SimulatedMsrTest, BadCpuIndexFaults) {
  SimulatedMsr dev(4);
  dev.define_register(0x10, 0);
  EXPECT_THROW(dev.read(-1, 0x10), MsrError);
  EXPECT_THROW(dev.read(4, 0x10), MsrError);
  EXPECT_THROW(dev.write(4, 0x10, 1), MsrError);
}

TEST(SimulatedMsrTest, ReadOnlyRegisterRejectsWrites) {
  SimulatedMsr dev(4);
  dev.define_register(0x606, 0x000a0e03, /*writable=*/false);
  EXPECT_THROW(dev.write(0, 0x606, 0), MsrError);
  EXPECT_EQ(dev.read(0, 0x606), 0x000a0e03ull);
}

TEST(SimulatedMsrTest, DynamicRegisterComputesPerRead) {
  SimulatedMsr dev(4);
  std::uint64_t counter = 0;
  dev.define_dynamic(0x611, [&](int) { return ++counter; });
  EXPECT_EQ(dev.read(0, 0x611), 1ull);
  EXPECT_EQ(dev.read(0, 0x611), 2ull);
}

TEST(SimulatedMsrTest, DynamicRegisterSeesCpuIndex) {
  SimulatedMsr dev(4);
  dev.define_dynamic(0xE8, [](int cpu) { return std::uint64_t(cpu) * 10; });
  EXPECT_EQ(dev.read(2, 0xE8), 20ull);
  EXPECT_EQ(dev.read(3, 0xE8), 30ull);
}

TEST(SimulatedMsrTest, DynamicRegisterIsReadOnly) {
  SimulatedMsr dev(4);
  dev.define_dynamic(0x611, [](int) { return 0ull; });
  EXPECT_THROW(dev.write(0, 0x611, 5), MsrError);
}

TEST(SimulatedMsrTest, WriteObserversFireInOrder) {
  SimulatedMsr dev(4);
  dev.define_register(0x610, 0);
  std::vector<int> order;
  dev.on_write(0x610, [&](int, std::uint64_t) { order.push_back(1); });
  dev.on_write(0x610, [&](int, std::uint64_t) { order.push_back(2); });
  dev.write(0, 0x610, 7);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(dev.read(0, 0x610), 7ull);
}

TEST(SimulatedMsrTest, ObserverSeesValueAndCpu) {
  SimulatedMsr dev(8);
  dev.define_register(0x620, 0);
  int seen_cpu = -1;
  std::uint64_t seen_val = 0;
  dev.on_write(0x620, [&](int cpu, std::uint64_t v) {
    seen_cpu = cpu;
    seen_val = v;
  });
  dev.write(5, 0x620, 0x1818);
  EXPECT_EQ(seen_cpu, 5);
  EXPECT_EQ(seen_val, 0x1818ull);
}

TEST(SimulatedMsrTest, PokeDoesNotFireObservers) {
  SimulatedMsr dev(4);
  dev.define_register(0x610, 0);
  int fired = 0;
  dev.on_write(0x610, [&](int, std::uint64_t) { ++fired; });
  dev.poke(0x610, 9);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(dev.peek(0x610), 9ull);
}

TEST(SimulatedMsrTest, AccessCounters) {
  SimulatedMsr dev(4);
  dev.define_register(0x610, 0);
  dev.read(0, 0x610);
  dev.read(0, 0x610);
  dev.write(0, 0x610, 1);
  EXPECT_EQ(dev.read_count(), 2ull);
  EXPECT_EQ(dev.write_count(), 1ull);
}

TEST(SimulatedMsrTest, IsDefined) {
  SimulatedMsr dev(4);
  dev.define_register(0x10, 0);
  EXPECT_TRUE(dev.is_defined(0x10));
  EXPECT_FALSE(dev.is_defined(0x11));
}

TEST(MsrErrorTest, MessageContainsRegisterHex) {
  const MsrError e(0x620, "nope");
  EXPECT_NE(std::string(e.what()).find("620"), std::string::npos);
  EXPECT_EQ(e.reg(), 0x620u);
}

// ---------------------------------------------------------------------------
// Error-path diagnostics: every fault names the offending register in hex
// so a log line is actionable without a debugger.
// ---------------------------------------------------------------------------

std::string error_text(const std::function<void()>& op) {
  try {
    op();
  } catch (const MsrError& e) {
    return e.what();
  }
  return {};
}

TEST(SimulatedMsrTest, UnknownRegisterErrorNamesTheRegister) {
  SimulatedMsr dev(4);
  const auto read_msg = error_text([&] { dev.read(0, 0x1A4); });
  EXPECT_NE(read_msg.find("1a4"), std::string::npos) << read_msg;
  const auto write_msg = error_text([&] { dev.write(0, 0x1A4, 1); });
  EXPECT_NE(write_msg.find("1a4"), std::string::npos) << write_msg;
}

TEST(SimulatedMsrTest, ReadOnlyWriteErrorNamesTheRegister) {
  SimulatedMsr dev(4);
  dev.define_register(0x606, 0x000a0e03, /*writable=*/false);
  const auto msg = error_text([&] { dev.write(0, 0x606, 0); });
  EXPECT_NE(msg.find("606"), std::string::npos) << msg;
}

TEST(SimulatedMsrTest, BadCpuErrorNamesTheRegister) {
  SimulatedMsr dev(4);
  dev.define_register(0x10, 0);
  const auto msg = error_text([&] { dev.read(99, 0x10); });
  EXPECT_NE(msg.find("10"), std::string::npos) << msg;
}

TEST(SimulatedMsrTest, WriteGuardVetoLeavesStateUntouched) {
  SimulatedMsr dev(4);
  dev.define_register(0x610, 0x1234);
  int observer_fired = 0;
  dev.on_write(0x610, [&](int, std::uint64_t) { ++observer_fired; });
  dev.set_write_guard(0x610, [](int, std::uint64_t v) {
    if (v == 0xBAD) throw MsrError(0x610, "guard veto");
  });
  // Vetoed store: value unchanged, observers not fired, counter unmoved.
  EXPECT_THROW(dev.write(0, 0x610, 0xBAD), MsrError);
  EXPECT_EQ(dev.peek(0x610), 0x1234ull);
  EXPECT_EQ(observer_fired, 0);
  EXPECT_EQ(dev.write_count(), 0ull);
  // A permitted store still goes through normally.
  dev.write(0, 0x610, 0x42);
  EXPECT_EQ(dev.peek(0x610), 0x42ull);
  EXPECT_EQ(observer_fired, 1);
  EXPECT_EQ(dev.write_count(), 1ull);
}

}  // namespace
}  // namespace dufp::msr
