#include "msr/registers.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dufp::msr {
namespace {

TEST(RaplUnitsTest, SkylakeDefaults) {
  const RaplUnits u;
  EXPECT_DOUBLE_EQ(u.watts_per_unit(), 0.125);
  EXPECT_DOUBLE_EQ(u.joules_per_unit(), 1.0 / 16384.0);
  EXPECT_DOUBLE_EQ(u.seconds_per_unit(), 1.0 / 1024.0);
}

TEST(RaplUnitsTest, EncodeDecodeRoundTrip) {
  RaplUnits u;
  u.power_unit_bits = 3;
  u.energy_unit_bits = 14;
  u.time_unit_bits = 10;
  const auto raw = encode_rapl_units(u);
  const auto back = decode_rapl_units(raw);
  EXPECT_EQ(back.power_unit_bits, 3u);
  EXPECT_EQ(back.energy_unit_bits, 14u);
  EXPECT_EQ(back.time_unit_bits, 10u);
}

TEST(RaplUnitsTest, KnownRawValue) {
  // Skylake-SP reads 0x000a0e03 from MSR 0x606.
  EXPECT_EQ(encode_rapl_units(RaplUnits{}), 0x000a0e03ull);
}

TEST(TimeWindowTest, EncodeDecodeNearRoundTrip) {
  const RaplUnits u;
  for (double s : {0.001, 0.00976, 0.1, 0.5, 0.999424, 2.0, 10.0}) {
    const auto field = encode_time_window(s, u);
    const double back = decode_time_window(field, u);
    // The format quantizes to 2^Y * (1 + Z/4): successive representable
    // values differ by at most 25 %.
    EXPECT_NEAR(back, s, s * 0.15) << "window " << s;
  }
}

TEST(TimeWindowTest, PaperDefaultWindows) {
  const RaplUnits u;
  // 1 s long-term window: 2^10 * 1 * (1/1024 s) = 1.0 exactly.
  const auto f1 = encode_time_window(1.0, u);
  EXPECT_DOUBLE_EQ(decode_time_window(f1, u), 1.0);
  // 10 ms short-term window: closest representable is 2^3 * 1.25 / 1024.
  const auto f2 = encode_time_window(0.01, u);
  EXPECT_NEAR(decode_time_window(f2, u), 0.01, 0.002);
}

TEST(TimeWindowTest, FieldIsSevenBits) {
  const RaplUnits u;
  EXPECT_LE(encode_time_window(1e6, u), 0x7Fu);
}

TEST(PowerLimitTest, RoundTripBothConstraints) {
  const RaplUnits u;
  PowerLimit pl;
  pl.long_term_w = 125.0;
  pl.long_term_window_s = 1.0;
  pl.long_term_enabled = true;
  pl.long_term_clamped = true;
  pl.short_term_w = 150.0;
  pl.short_term_window_s = 0.01;
  pl.short_term_enabled = true;
  pl.short_term_clamped = false;

  const auto back = decode_power_limit(encode_power_limit(pl, u), u);
  EXPECT_DOUBLE_EQ(back.long_term_w, 125.0);
  EXPECT_DOUBLE_EQ(back.short_term_w, 150.0);
  EXPECT_TRUE(back.long_term_enabled);
  EXPECT_TRUE(back.long_term_clamped);
  EXPECT_TRUE(back.short_term_enabled);
  EXPECT_FALSE(back.short_term_clamped);
  EXPECT_FALSE(back.locked);
  EXPECT_DOUBLE_EQ(back.long_term_window_s, 1.0);
}

TEST(PowerLimitTest, PowerQuantizedToEighthWatt) {
  const RaplUnits u;
  PowerLimit pl;
  pl.long_term_w = 100.06;  // closest representable: 100.0
  const auto back = decode_power_limit(encode_power_limit(pl, u), u);
  EXPECT_NEAR(back.long_term_w, 100.06, 0.0625);
  EXPECT_DOUBLE_EQ(back.long_term_w * 8.0,
                   std::round(back.long_term_w * 8.0));
}

TEST(PowerLimitTest, LockBitSurvives) {
  const RaplUnits u;
  PowerLimit pl;
  pl.locked = true;
  EXPECT_TRUE(decode_power_limit(encode_power_limit(pl, u), u).locked);
}

TEST(PowerLimitTest, FieldsDoNotBleed) {
  const RaplUnits u;
  PowerLimit pl;
  pl.long_term_w = 4095.875;  // max representable in 15 bits at 1/8 W
  pl.short_term_w = 0.0;
  const auto back = decode_power_limit(encode_power_limit(pl, u), u);
  EXPECT_DOUBLE_EQ(back.long_term_w, 4095.875);
  EXPECT_DOUBLE_EQ(back.short_term_w, 0.0);
}

TEST(PowerLimitTest, OverRangeClamps) {
  const RaplUnits u;
  PowerLimit pl;
  pl.long_term_w = 1e9;
  const auto back = decode_power_limit(encode_power_limit(pl, u), u);
  EXPECT_DOUBLE_EQ(back.long_term_w, 4095.875);
}

TEST(PowerInfoTest, RoundTrip) {
  const RaplUnits u;
  PowerInfo info;
  info.tdp_w = 125.0;
  info.min_power_w = 60.0;
  info.max_power_w = 250.0;
  const auto back = decode_power_info(encode_power_info(info, u), u);
  EXPECT_DOUBLE_EQ(back.tdp_w, 125.0);
  EXPECT_DOUBLE_EQ(back.min_power_w, 60.0);
  EXPECT_DOUBLE_EQ(back.max_power_w, 250.0);
}

TEST(EnergyCounterTest, SimpleDelta) {
  const RaplUnits u;
  EXPECT_DOUBLE_EQ(energy_counter_delta(0, 16384, u), 1.0);  // 2^14 units
}

TEST(EnergyCounterTest, WrapsAt32Bits) {
  const RaplUnits u;
  const std::uint32_t before = 0xFFFFFF00u;
  const std::uint32_t after = 0x00000100u;
  // 0x200 units across the wrap.
  EXPECT_DOUBLE_EQ(energy_counter_delta(before, after, u),
                   512.0 / 16384.0);
}

TEST(EnergyCounterTest, JoulesToUnits) {
  const RaplUnits u;
  EXPECT_EQ(joules_to_energy_units(1.0, u), 16384ull);
  EXPECT_EQ(joules_to_energy_units(0.0, u), 0ull);
}

TEST(UncoreRatioTest, RoundTrip) {
  UncoreRatioLimit l;
  l.max_ratio = 24;
  l.min_ratio = 12;
  const auto back = decode_uncore_ratio_limit(encode_uncore_ratio_limit(l));
  EXPECT_EQ(back.max_ratio, 24u);
  EXPECT_EQ(back.min_ratio, 12u);
}

TEST(UncoreRatioTest, PinnedWindow) {
  UncoreRatioLimit l;
  l.max_ratio = 18;
  l.min_ratio = 18;
  const auto back = decode_uncore_ratio_limit(encode_uncore_ratio_limit(l));
  EXPECT_EQ(back.max_ratio, back.min_ratio);
}

TEST(UncoreRatioTest, ReversedWindowRejected) {
  UncoreRatioLimit l;
  l.max_ratio = 12;
  l.min_ratio = 24;
  EXPECT_THROW(encode_uncore_ratio_limit(l), std::invalid_argument);
}

TEST(UncoreRatioTest, MhzConversions) {
  EXPECT_DOUBLE_EQ(uncore_ratio_to_mhz(24), 2400.0);
  EXPECT_EQ(uncore_mhz_to_ratio(2400.0), 24u);
  EXPECT_EQ(uncore_mhz_to_ratio(2449.0), 24u);  // rounds
  EXPECT_EQ(uncore_mhz_to_ratio(2450.0), 25u);
}

TEST(UncorePerfStatusTest, RoundTrip) {
  EXPECT_EQ(decode_uncore_perf_status(encode_uncore_perf_status(17)), 17u);
}

}  // namespace
}  // namespace dufp::msr
