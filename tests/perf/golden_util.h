// Shared fixture for the hot-path regression suite (ctest label `perf`):
// the reference grid every golden below runs on, plus byte-exact golden
// file handling in the style of tests/telemetry.
//
// Golden files live in tests/perf/golden/ (DUFP_PERF_GOLDEN_DIR is
// injected by CMake).  They were generated from the pre-optimization
// engine (PR 3 state) and pin the determinism contract of the hot-path
// rework: the optimized serial engine and the socket-parallel engine must
// reproduce them byte for byte.  To regenerate after an *intentional*
// output change: DUFP_UPDATE_GOLDEN=1 ctest -L perf, then review the diff.
#pragma once

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/string_util.h"
#include "harness/runner.h"
#include "workloads/workload.h"

namespace dufp::perf_test {

/// The reference workload: an NPB-like alternation of a compute-bound, a
/// bandwidth-bound, and a mixed phase (0.25 s nominal each, two cycles).
/// Small enough to trace at full 1 ms resolution, rich enough to exercise
/// phase splits, the phase-cap listener, and both controller paths.
inline workloads::WorkloadProfile golden_profile() {
  workloads::WorkloadProfile w("golden-mix",
                               "compute/memory/mixed alternation");
  workloads::PhaseSpec stride;
  stride.name = "stride";
  stride.nominal_seconds = 0.25;
  stride.gflops_ref = 55.0;
  stride.oi = 8.0;
  stride.w_cpu = 0.85;
  stride.w_mem = 0.05;
  stride.w_unc = 0.05;
  stride.w_fixed = 0.05;
  stride.cpu_activity = 0.95;
  stride.mem_activity = 0.3;
  w.add_phase(stride);

  workloads::PhaseSpec sweep;
  sweep.name = "sweep";
  sweep.nominal_seconds = 0.25;
  sweep.gflops_ref = 9.0;
  sweep.oi = 0.12;
  sweep.w_cpu = 0.15;
  sweep.w_mem = 0.70;
  sweep.w_unc = 0.10;
  sweep.w_fixed = 0.05;
  sweep.cpu_activity = 0.55;
  sweep.mem_activity = 0.9;
  w.add_phase(sweep);

  workloads::PhaseSpec mix;
  mix.name = "mix";
  mix.nominal_seconds = 0.25;
  mix.gflops_ref = 30.0;
  mix.oi = 1.5;
  mix.w_cpu = 0.45;
  mix.w_mem = 0.35;
  mix.w_unc = 0.10;
  mix.w_fixed = 0.10;
  mix.cpu_activity = 0.8;
  mix.mem_activity = 0.7;
  w.add_phase(mix);

  w.loop(2, {"stride", "sweep", "mix"});
  return w;
}

/// The reference run: 4 sockets, DUFP agents at the paper's interval, and
/// a partial cap on the bandwidth-bound phase (the Fig. 1b mechanism) so
/// the phase-listener path carries real actuation.
inline harness::RunConfig golden_config(
    const workloads::WorkloadProfile& profile) {
  harness::RunConfig cfg;
  cfg.profile = &profile;
  cfg.machine.sockets = 4;
  cfg.mode = harness::PolicyMode::dufp;
  cfg.tolerated_slowdown = 0.10;
  cfg.seed = 7;
  cfg.phase_cap = harness::PhaseCapSpec{"sweep", 95.0};
  return cfg;
}

/// The same grid under a deterministic fault storm (MSR + counter faults),
/// which stresses the listener's best-effort writes and the agents'
/// degradation machinery.
inline harness::RunConfig golden_storm_config(
    const workloads::WorkloadProfile& profile) {
  harness::RunConfig cfg = golden_config(profile);
  cfg.faults = faults::FaultOptions::storm(0.015, 9);
  return cfg;
}

inline std::string golden_path(const std::string& file) {
  return std::string(DUFP_PERF_GOLDEN_DIR) + "/" + file;
}

inline std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

inline void expect_matches_golden(const std::string& produced,
                                  const std::string& file) {
  const std::string path = golden_path(file);
  if (std::getenv("DUFP_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << produced;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with DUFP_UPDATE_GOLDEN=1)";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(produced, want.str()) << "output drifted from " << path;
}

/// Full-precision textual digest of a run: every double is printed with
/// %.17g so a single ULP of drift anywhere in the engine fails the byte
/// compare.
inline std::string summary_text(const harness::RunResult& res) {
  std::string out;
  const auto& s = res.summary;
  out += strf("exec_seconds=%.17g\n", s.exec_seconds);
  out += strf("pkg_energy_j=%.17g\n", s.pkg_energy_j);
  out += strf("dram_energy_j=%.17g\n", s.dram_energy_j);
  out += strf("total_gflop=%.17g\n", s.total_gflop);
  out += strf("total_gbytes=%.17g\n", s.total_gbytes);
  for (const auto& [name, t] : res.phase_totals) {
    out += strf("phase=%s wall=%.17g pkg=%.17g dram=%.17g\n", name.c_str(),
                t.wall_seconds, t.pkg_energy_j, t.dram_energy_j);
  }
  for (const auto& a : res.agent_stats) {
    out += strf("agent cap_dec=%llu cap_resets=%llu unc_dec=%llu\n",
                static_cast<unsigned long long>(a.cap_decreases),
                static_cast<unsigned long long>(a.cap_resets),
                static_cast<unsigned long long>(a.uncore_decreases));
  }
  out += strf("health faults=%llu retries=%llu failures=%llu degraded=%llu\n",
              static_cast<unsigned long long>(res.health.faults_injected),
              static_cast<unsigned long long>(res.health.actuation_retries),
              static_cast<unsigned long long>(res.health.actuation_failures),
              static_cast<unsigned long long>(res.health.degradations));
  return out;
}

/// A writable temp-file path unique to the current test.  Parameterized
/// test names contain '/', which must not become directory separators.
inline std::string temp_path(const std::string& tag) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  std::string name = std::string(info->test_suite_name()) + "_" +
                     info->name() + "_" + tag;
  for (auto& c : name) {
    if (c == '/') c = '_';
  }
  return ::testing::TempDir() + name;
}

}  // namespace dufp::perf_test
