// Byte-identical golden regression for the simulation hot path.
//
// The golden CSVs/summaries in tests/perf/golden were produced by the
// pre-optimization engine; these tests pin the optimized engine (serial
// and, once available, socket-parallel) to the exact same bytes for the
// same seeds — the repo's determinism contract extended to the hot-path
// rework.
#include <gtest/gtest.h>

#include <sstream>

#include "golden_util.h"
#include "sim/trace.h"
#include "telemetry/export.h"

namespace dufp::perf_test {
namespace {

std::string run_trace_csv(const harness::RunConfig& base,
                          const std::string& tag) {
  harness::RunConfig cfg = base;
  const std::string path = temp_path(tag + ".csv");
  {
    sim::CsvTraceSink sink(path, /*decimation=*/1);
    cfg.trace = &sink;
    harness::run_once(cfg);
  }
  return read_file(path);
}

harness::RunConfig parallel(harness::RunConfig cfg, int threads = 4) {
  cfg.sim.socket_threads = threads;
  return cfg;
}

/// Every deterministic byte the telemetry subsystem can emit for a run:
/// Prometheus exposition, Chrome trace JSON, and JSONL events.  Fault
/// events are stamped through Simulation::now(), so under parallel
/// stepping this exercises the worker-thread mid-batch time override.
std::string telemetry_text(const harness::RunResult& res) {
  EXPECT_TRUE(res.telemetry.has_value());
  if (!res.telemetry.has_value()) return {};
  std::ostringstream out;
  telemetry::write_prometheus(res.telemetry->metrics, out);
  telemetry::write_chrome_trace(*res.telemetry, out);
  telemetry::write_jsonl(*res.telemetry, out);
  return out.str();
}

TEST(GoldenTraceTest, SerialTraceMatchesPreChangeGolden) {
  const auto profile = golden_profile();
  expect_matches_golden(run_trace_csv(golden_config(profile), "serial"),
                        "trace_reference.csv");
}

TEST(GoldenTraceTest, SerialSummaryMatchesPreChangeGolden) {
  const auto profile = golden_profile();
  expect_matches_golden(summary_text(harness::run_once(golden_config(profile))),
                        "summary_reference.txt");
}

TEST(GoldenTraceTest, FaultStormTraceMatchesPreChangeGolden) {
  const auto profile = golden_profile();
  expect_matches_golden(run_trace_csv(golden_storm_config(profile), "storm"),
                        "trace_storm.csv");
}

TEST(GoldenTraceTest, FaultStormSummaryMatchesPreChangeGolden) {
  const auto profile = golden_profile();
  expect_matches_golden(
      summary_text(harness::run_once(golden_storm_config(profile))),
      "summary_storm.txt");
}

// -- socket-parallel stepping against the same pre-change goldens ------------

TEST(GoldenTraceTest, ParallelTraceMatchesPreChangeGolden) {
  const auto profile = golden_profile();
  expect_matches_golden(
      run_trace_csv(parallel(golden_config(profile)), "par"),
      "trace_reference.csv");
}

TEST(GoldenTraceTest, ParallelSummaryMatchesPreChangeGolden) {
  const auto profile = golden_profile();
  expect_matches_golden(
      summary_text(harness::run_once(parallel(golden_config(profile)))),
      "summary_reference.txt");
}

TEST(GoldenTraceTest, ParallelFaultStormTraceMatchesPreChangeGolden) {
  const auto profile = golden_profile();
  expect_matches_golden(
      run_trace_csv(parallel(golden_storm_config(profile)), "par_storm"),
      "trace_storm.csv");
}

TEST(GoldenTraceTest, ParallelFaultStormSummaryMatchesPreChangeGolden) {
  const auto profile = golden_profile();
  expect_matches_golden(
      summary_text(harness::run_once(parallel(golden_storm_config(profile)))),
      "summary_storm.txt");
}

// Two threads force batches whose sockets are stepped by a *pool smaller
// than the socket count* — the work-queue order differs from both serial
// and 4-thread runs, and the bytes still must not.
TEST(GoldenTraceTest, TwoThreadTraceMatchesPreChangeGolden) {
  const auto profile = golden_profile();
  expect_matches_golden(
      run_trace_csv(parallel(golden_storm_config(profile), 2), "par2"),
      "trace_storm.csv");
}

TEST(GoldenTraceTest, SerialAndParallelTelemetryBytesAreIdentical) {
  const auto profile = golden_profile();
  harness::RunConfig cfg = golden_storm_config(profile);
  cfg.telemetry.enabled = true;
  const std::string serial_text =
      telemetry_text(harness::run_once(cfg));
  const std::string parallel_text =
      telemetry_text(harness::run_once(parallel(cfg)));
  ASSERT_FALSE(serial_text.empty());
  EXPECT_EQ(serial_text, parallel_text)
      << "telemetry (incl. fault-event timestamps from worker threads) "
         "drifted under socket-parallel stepping";
}

}  // namespace
}  // namespace dufp::perf_test
