// A/B byte-identity matrix for the event-leaping engine (DESIGN.md §7b).
//
// Every test runs the same configuration twice — `time_leap` on vs off —
// and compares every observable byte: full-resolution trace CSV, the
// %.17g summary digest, telemetry (Prometheus + Chrome trace + JSONL),
// and the fleet wire codec.  The leap engine's claim is not "close": it
// is bit-exact, because the fast paths execute exactly the additions the
// stepper would.  Any single-ULP drift anywhere fails these compares.
//
// The matrix mirrors the hot-path risk surface: plain reference run,
// deterministic fault storm, replayed dense trace, socket-parallel with
// a pool smaller than the socket count, and a whole fleet node.  Two
// adversarial shapes close it out: an event on *every* tick (the leap
// planner must yield entirely to the exact stepper) and a non-1-ms tick
// (periodic deadlines divide by tick_us — the off-by-one bait).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "fleet/node_run.h"
#include "fleet/plan.h"
#include "fleet/spec.h"
#include "golden_util.h"
#include "sim/simulation.h"
#include "sim/trace.h"
#include "telemetry/export.h"
#include "workloads/trace_replay.h"

namespace dufp::perf_test {
namespace {

/// Every deterministic byte one harness run emits: trace CSV at full
/// resolution, the %.17g summary digest, and (when enabled) the three
/// telemetry exports.
std::string run_digest(harness::RunConfig cfg, const std::string& tag) {
  const std::string path = temp_path(tag + ".csv");
  std::string out;
  {
    sim::CsvTraceSink sink(path, /*decimation=*/1);
    cfg.trace = &sink;
    const harness::RunResult res = harness::run_once(cfg);
    out += summary_text(res);
    if (res.telemetry.has_value()) {
      std::ostringstream t;
      telemetry::write_prometheus(res.telemetry->metrics, t);
      telemetry::write_chrome_trace(*res.telemetry, t);
      telemetry::write_jsonl(*res.telemetry, t);
      out += t.str();
    }
  }
  out += read_file(path);
  return out;
}

/// Runs `cfg` leap-on and leap-off and byte-compares the digests; also
/// pins that the A/B pair really was an A/B pair (the on-run took a fast
/// path, the off-run took none).
void expect_leap_identity(harness::RunConfig cfg, const std::string& tag,
                          bool expect_leaps = true) {
  cfg.sim.time_leap = true;
  const harness::RunResult on = harness::run_once(cfg);
  cfg.sim.time_leap = false;
  const harness::RunResult off = harness::run_once(cfg);
  EXPECT_EQ(off.batch_stats.leapt_ticks, 0)
      << "time_leap=false must disable the leap path";
  if (expect_leaps) {
    EXPECT_GT(on.batch_stats.leapt_ticks, 0)
        << "fast path never engaged — the A/B compare proved nothing";
  }
  EXPECT_EQ(on.batch_stats.leapt_ticks + on.batch_stats.stepped_ticks +
                on.batch_stats.batched_ticks,
            off.batch_stats.stepped_ticks + off.batch_stats.batched_ticks)
      << "the two runs simulated different tick counts";

  cfg.sim.time_leap = true;
  const std::string on_bytes = run_digest(cfg, tag + "_on");
  cfg.sim.time_leap = false;
  const std::string off_bytes = run_digest(cfg, tag + "_off");
  ASSERT_FALSE(on_bytes.empty());
  EXPECT_EQ(on_bytes, off_bytes)
      << "event leaping changed observable bytes (" << tag << ")";
}

TEST(LeapIdentityTest, PlainRunBytesIdentical) {
  const auto profile = golden_profile();
  expect_leap_identity(golden_config(profile), "plain");
}

TEST(LeapIdentityTest, FaultStormBytesIdentical) {
  const auto profile = golden_profile();
  expect_leap_identity(golden_storm_config(profile), "storm");
}

TEST(LeapIdentityTest, TelemetryBytesIdentical) {
  const auto profile = golden_profile();
  harness::RunConfig cfg = golden_storm_config(profile);
  cfg.telemetry.enabled = true;
  expect_leap_identity(cfg, "telemetry");
}

// A measured-style replayed trace: every 0.2 s row becomes its own phase
// segment, the densest event stream the replay module produces — segment
// splits land inside ticks and the leap horizon must respect each one.
TEST(LeapIdentityTest, TraceReplayBytesIdentical) {
  constexpr const char* kTraceCsv =
      "seconds,gflops,gbps,cpu_activity,mem_activity\n"
      "0.2,55.0,10.0,0.95,0.30\n"
      "0.2,9.0,80.0,0.55,0.90\n"
      "0.2,30.0,45.0,0.80,0.70\n"
      "0.2,48.0,15.0,0.90,0.40\n"
      "0.2,12.0,70.0,0.60,0.85\n"
      "0.2,22.0,30.0,0.75,0.60\n"
      "0.2,55.0,10.0,0.95,0.30\n"
      "0.2,9.0,80.0,0.55,0.90\n"
      "0.2,30.0,45.0,0.80,0.70\n"
      "0.2,48.0,15.0,0.90,0.40\n"
      "0.2,12.0,70.0,0.60,0.85\n"
      "0.2,22.0,30.0,0.75,0.60\n";
  std::istringstream in(kTraceCsv);
  const workloads::WorkloadProfile profile = workloads::profile_from_trace(
      workloads::parse_trace_csv(in), {}, "leap-replay");
  harness::RunConfig cfg;
  cfg.profile = &profile;
  cfg.machine.sockets = 4;
  cfg.mode = harness::PolicyMode::dufp;
  cfg.tolerated_slowdown = 0.10;
  cfg.seed = 7;
  expect_leap_identity(cfg, "replay");
}

// Two worker threads over four sockets: the work-queue interleaving
// differs from both serial and 4-thread runs, and the leap planner runs
// interleaved with parallel batches.
TEST(LeapIdentityTest, TwoThreadSocketParallelBytesIdentical) {
  const auto profile = golden_profile();
  harness::RunConfig cfg = golden_storm_config(profile);
  cfg.sim.socket_threads = 2;
  expect_leap_identity(cfg, "par2");
}

// A whole fleet node through the bit-exact wire codec: epoch records,
// energies, speeds, fault counters — the shard layer's job identity
// contract must not depend on the engine's fast paths.
TEST(LeapIdentityTest, FleetNodeRunBytesIdentical) {
  fleet::FleetSpec spec = fleet::FleetSpec::reference();
  spec.epoch_seconds = 0.5;
  spec.global_budget_w = 0.78 * 16 * 125.0;
  const fleet::AllocationPlan plan = fleet::plan_allocations(spec);
  for (const std::size_t node : {std::size_t{0}, std::size_t{2}}) {
    const fleet::FleetNodeResult on =
        fleet::run_fleet_node(spec, node, plan, /*time_leap=*/true);
    const fleet::FleetNodeResult off =
        fleet::run_fleet_node(spec, node, plan, /*time_leap=*/false);
    EXPECT_EQ(fleet::encode_node_result(on).dump(),
              fleet::encode_node_result(off).dump())
        << "fleet node " << node << " drifted under event leaping";
  }
}

// ---------------------------------------------------------------------------
// Adversarial shapes on the engine directly.

workloads::WorkloadProfile tiny_profile() {
  workloads::WorkloadProfile w("leap-tiny", "two-phase alternation");
  workloads::PhaseSpec a;
  a.name = "compute";
  a.nominal_seconds = 0.5;
  a.gflops_ref = 40.0;
  a.oi = 10.0;
  a.w_cpu = 0.9;
  a.w_mem = 0.02;
  a.w_unc = 0.0;
  a.w_fixed = 0.08;
  a.cpu_activity = 0.9;
  a.mem_activity = 0.6;
  w.add_phase(a);
  workloads::PhaseSpec b = a;
  b.name = "memory";
  b.gflops_ref = 5.0;
  b.oi = 0.1;
  b.w_cpu = 0.1;
  b.w_mem = 0.8;
  b.w_fixed = 0.1;
  w.add_phase(b);
  w.loop(2, {"compute", "memory"});
  return w;
}

void expect_same_summary(const sim::RunSummary& x, const sim::RunSummary& y) {
  EXPECT_EQ(x.exec_seconds, y.exec_seconds);
  EXPECT_EQ(x.pkg_energy_j, y.pkg_energy_j);
  EXPECT_EQ(x.dram_energy_j, y.dram_energy_j);
  EXPECT_EQ(x.total_gflop, y.total_gflop);
  EXPECT_EQ(x.total_gbytes, y.total_gbytes);
}

// An event fires on *every* tick: the leap planner and the calm-stretch
// gate must both yield — every tick goes through the exact stepper — and
// the outputs still match the leap-off engine bit for bit.
TEST(LeapIdentityTest, EveryTickEventForcesExactPath) {
  const auto prof = tiny_profile();
  hw::MachineConfig m;
  m.sockets = 2;

  auto run = [&](bool leap) {
    sim::SimulationOptions o;
    o.seed = 3;
    o.workload_jitter_sigma = 0.0;
    o.time_leap = leap;
    sim::Simulation s(m, prof, o);
    std::int64_t fires = 0;
    s.schedule_periodic(o.tick, [&fires](SimTime) { ++fires; });
    const sim::RunSummary sum = s.run();
    return std::make_tuple(sum, s.batch_stats(), fires);
  };

  const auto [on_sum, on_bs, on_fires] = run(true);
  const auto [off_sum, off_bs, off_fires] = run(false);

  EXPECT_EQ(on_bs.leapt_ticks, 0)
      << "leapt across a tick whose deadline it should have seen";
  EXPECT_EQ(on_bs.stepped_ticks,
            on_bs.leapt_ticks + on_bs.stepped_ticks + on_bs.batched_ticks)
      << "an every-tick event must force the exact stepper for all ticks";
  EXPECT_GT(on_fires, 0);
  EXPECT_EQ(on_fires, off_fires);
  expect_same_summary(on_sum, off_sum);
}

// Non-1-ms tick: periodic deadlines are multiples of the interval and the
// countdown divides by tick_us — this pins that the division stays exact
// (no off-by-one) when tick != 1 ms, that every firing lands exactly on
// its deadline, and that leaping still engages and changes nothing.
TEST(LeapIdentityTest, NonMillisecondTickPeriodicFiringsExact) {
  const auto prof = tiny_profile();
  hw::MachineConfig m;
  m.sockets = 2;

  for (const std::int64_t tick_ms : {2, 5}) {
    auto run = [&](bool leap) {
      sim::SimulationOptions o;
      o.tick = SimTime::from_millis(tick_ms);
      o.seed = 3;
      o.workload_jitter_sigma = 0.0;
      o.time_leap = leap;
      sim::Simulation s(m, prof, o);
      std::vector<std::int64_t> fire_us;
      // 40 ms leaves a leap-eligible gap at both tick sizes (19 ticks at
      // 2 ms, 7 at 5 ms — both above the 4-tick leap minimum).
      s.schedule_periodic(SimTime::from_millis(40),
                          [&fire_us](SimTime t) {
                            fire_us.push_back(t.micros());
                          });
      const sim::RunSummary sum = s.run();
      return std::make_tuple(sum, s.batch_stats(), fire_us);
    };

    const auto [on_sum, on_bs, on_fires] = run(true);
    const auto [off_sum, off_bs, off_fires] = run(false);

    ASSERT_FALSE(on_fires.empty());
    for (std::size_t i = 0; i < on_fires.size(); ++i) {
      EXPECT_EQ(on_fires[i], static_cast<std::int64_t>(i + 1) * 40000)
          << "periodic missed its deadline at tick=" << tick_ms << "ms";
    }
    EXPECT_EQ(on_fires, off_fires);
    EXPECT_EQ(on_bs.leapt_ticks + on_bs.stepped_ticks + on_bs.batched_ticks,
              off_bs.stepped_ticks);
    EXPECT_GT(on_bs.leapt_ticks, 0)
        << "leap never engaged at tick=" << tick_ms << "ms";
    expect_same_summary(on_sum, off_sum);
  }
}

}  // namespace
}  // namespace dufp::perf_test
