// Byte-identical golden regression for the four legacy policies across
// the policy-API seam.
//
// The goldens in tests/perf/golden were produced by the pre-redesign
// agent (enum-switch dispatch inside core::Agent); these tests pin the
// registry-backed Policy port of DUF / DUFP / DUFP-F / DNPC to the exact
// same bytes for the same seeds — summaries, full traces under a fault
// storm, and the complete telemetry surface (Prometheus + Chrome trace +
// JSONL).  Any behavioural drift in the port fails a byte compare here.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "golden_util.h"
#include "sim/trace.h"
#include "telemetry/export.h"

namespace dufp::perf_test {
namespace {

struct PolicyCase {
  harness::PolicyMode mode;
  const char* tag;  ///< golden-file infix
};

class GoldenPoliciesTest : public ::testing::TestWithParam<PolicyCase> {};

harness::RunConfig mode_config(const workloads::WorkloadProfile& profile,
                               harness::PolicyMode mode) {
  harness::RunConfig cfg = golden_config(profile);
  cfg.mode = mode;
  return cfg;
}

harness::RunConfig mode_storm_config(const workloads::WorkloadProfile& profile,
                                     harness::PolicyMode mode) {
  harness::RunConfig cfg = golden_storm_config(profile);
  cfg.mode = mode;
  return cfg;
}

TEST_P(GoldenPoliciesTest, SerialSummaryMatchesPreRedesignGolden) {
  const auto profile = golden_profile();
  const auto p = GetParam();
  expect_matches_golden(
      summary_text(harness::run_once(mode_config(profile, p.mode))),
      std::string("policy_") + p.tag + "_summary.txt");
}

TEST_P(GoldenPoliciesTest, FaultStormTraceMatchesPreRedesignGolden) {
  const auto profile = golden_profile();
  const auto p = GetParam();
  harness::RunConfig cfg = mode_storm_config(profile, p.mode);
  const std::string path = temp_path(std::string(p.tag) + "_storm.csv");
  {
    sim::CsvTraceSink sink(path, /*decimation=*/1);
    cfg.trace = &sink;
    harness::run_once(cfg);
  }
  expect_matches_golden(read_file(path),
                        std::string("policy_") + p.tag + "_storm_trace.csv");
}

TEST_P(GoldenPoliciesTest, FaultStormTelemetryBytesMatchPreRedesignGolden) {
  const auto profile = golden_profile();
  const auto p = GetParam();
  harness::RunConfig cfg = mode_storm_config(profile, p.mode);
  cfg.telemetry.enabled = true;
  const auto res = harness::run_once(cfg);
  ASSERT_TRUE(res.telemetry.has_value());
  std::ostringstream out;
  telemetry::write_prometheus(res.telemetry->metrics, out);
  telemetry::write_chrome_trace(*res.telemetry, out);
  telemetry::write_jsonl(*res.telemetry, out);
  expect_matches_golden(out.str(),
                        std::string("policy_") + p.tag + "_telemetry.txt");
}

INSTANTIATE_TEST_SUITE_P(
    LegacyPolicies, GoldenPoliciesTest,
    ::testing::Values(PolicyCase{harness::PolicyMode::duf, "duf"},
                      PolicyCase{harness::PolicyMode::dufp, "dufp"},
                      PolicyCase{harness::PolicyMode::dufpf, "dufpf"},
                      PolicyCase{harness::PolicyMode::dnpc, "dnpc"}),
    [](const ::testing::TestParamInfo<PolicyCase>& info) {
      return std::string(info.param.tag);
    });

}  // namespace
}  // namespace dufp::perf_test
