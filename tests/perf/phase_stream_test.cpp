// Phase-listener enter/exit streams, pinned byte-for-byte against the
// pre-interning engine: the switch from string-keyed to index-keyed
// transitions must not add, drop, or reorder a single event — including
// under a fault storm, where a phase-triggered cap write consumes the
// per-socket fault decision stream in event order.
//
// The listeners here resolve indices back to names through the profile,
// which is exactly the "names live at the edges" contract: the streams
// must still match goldens recorded from the string-keyed engine.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "faults/fault_plan.h"
#include "faults/faulty_msr.h"
#include "golden_util.h"
#include "powercap/zone.h"

namespace dufp::perf_test {
namespace {

std::string run_stream(const harness::RunConfig& base) {
  harness::RunConfig cfg = base;
  std::string stream;
  sim::SimulationOptions sim_opts = cfg.sim;
  sim_opts.seed = cfg.seed;
  sim::Simulation s(cfg.machine, *cfg.profile, sim_opts);
  const auto& profile = *cfg.profile;
  s.add_phase_listener(
      [&](int socket, std::size_t phase_idx, bool entered) {
        stream += strf("%d,%s,%d\n", socket,
                       std::string(profile.phase_name(phase_idx)).c_str(),
                       entered ? 1 : 0);
      });
  s.run();
  return stream;
}

/// The storm variant re-creates the runner's wiring in miniature: each
/// socket's MSR device is wrapped in a FaultyMsrDevice, and the listener
/// itself performs the best-effort phase-cap writes through it — so the
/// event *stream* and the fault-stream consumption are coupled exactly as
/// in the Fig. 1b/1c experiments.
std::string run_storm_stream(const harness::RunConfig& base) {
  harness::RunConfig cfg = base;
  std::string stream;
  sim::SimulationOptions sim_opts = cfg.sim;
  sim_opts.seed = cfg.seed;
  sim::Simulation s(cfg.machine, *cfg.profile, sim_opts);
  const auto& profile = *cfg.profile;
  const std::size_t sweep_idx = profile.phase_index("sweep");
  const int n = s.socket_count();

  std::vector<std::unique_ptr<faults::FaultPlan>> plans;
  std::vector<std::unique_ptr<faults::FaultyMsrDevice>> fdevs;
  std::vector<std::unique_ptr<powercap::PackageZone>> zones;
  for (int i = 0; i < n; ++i) {
    Rng base_rng(cfg.faults.seed);
    Rng per_run = base_rng.fork(cfg.seed);
    plans.push_back(std::make_unique<faults::FaultPlan>(
        cfg.faults, per_run.fork(static_cast<std::uint64_t>(i))));
    fdevs.push_back(std::make_unique<faults::FaultyMsrDevice>(
        s.msr(i), *plans.back()));
    zones.push_back(
        std::make_unique<powercap::PackageZone>(*fdevs.back(), i));
  }

  s.add_phase_listener([&](int socket, std::size_t phase_idx, bool entered) {
    const std::string phase(profile.phase_name(phase_idx));
    stream += strf("%d,%s,%d\n", socket, phase.c_str(), entered ? 1 : 0);
    if (phase_idx != sweep_idx) return;
    auto& z = *zones[static_cast<std::size_t>(socket)];
    try {
      const double cap = entered ? 95.0 : 125.0;
      z.set_power_limit_w(powercap::ConstraintId::long_term, cap);
      z.set_power_limit_w(powercap::ConstraintId::short_term,
                          entered ? cap : 150.0);
    } catch (const msr::MsrError&) {
      stream += strf("%d,%s,write-faulted\n", socket, phase.c_str());
    }
  });
  for (auto& d : fdevs) d->arm();
  s.run();
  return stream;
}

/// Socket-parallel stepping fires listeners on worker threads, so the
/// cross-socket interleaving of a shared stream is not defined — but each
/// socket's own event sequence is part of the determinism contract.  This
/// helper collects per-socket streams (socket-confined, as the engine
/// requires) for comparison against the serial golden projected per
/// socket.
std::vector<std::string> run_parallel_streams(const harness::RunConfig& base,
                                              int threads) {
  harness::RunConfig cfg = base;
  sim::SimulationOptions sim_opts = cfg.sim;
  sim_opts.seed = cfg.seed;
  sim_opts.socket_threads = threads;
  sim::Simulation s(cfg.machine, *cfg.profile, sim_opts);
  const auto& profile = *cfg.profile;
  std::vector<std::string> streams(
      static_cast<std::size_t>(s.socket_count()));
  s.add_phase_listener(
      [&](int socket, std::size_t phase_idx, bool entered) {
        streams[static_cast<std::size_t>(socket)] +=
            strf("%d,%s,%d\n", socket,
                 std::string(profile.phase_name(phase_idx)).c_str(),
                 entered ? 1 : 0);
      });
  s.run();
  return streams;
}

/// Lines of `stream` whose socket field equals `socket`.
std::string project_socket(const std::string& stream, int socket) {
  const std::string prefix = strf("%d,", socket);
  std::string out;
  std::stringstream ss(stream);
  std::string line;
  while (std::getline(ss, line)) {
    if (line.rfind(prefix, 0) == 0) out += line + "\n";
  }
  return out;
}

TEST(PhaseStreamTest, StreamMatchesPreInterningGolden) {
  const auto profile = golden_profile();
  expect_matches_golden(run_stream(golden_config(profile)),
                        "phase_stream_reference.txt");
}

TEST(PhaseStreamTest, StormStreamMatchesPreInterningGolden) {
  const auto profile = golden_profile();
  expect_matches_golden(run_storm_stream(golden_storm_config(profile)),
                        "phase_stream_storm.txt");
}

TEST(PhaseStreamTest, EveryEnterHasMatchingExit) {
  const auto profile = golden_profile();
  const std::string stream = run_stream(golden_config(profile));
  int enters = 0;
  int exits = 0;
  std::stringstream ss(stream);
  std::string line;
  while (std::getline(ss, line)) {
    if (!line.empty() && line.back() == '1') ++enters;
    if (!line.empty() && line.back() == '0') ++exits;
  }
  // 4 sockets x 2 cycles x 3 phases, every visit entered and left.
  EXPECT_EQ(enters, 24);
  EXPECT_EQ(exits, 24);
}

TEST(PhaseStreamTest, ParallelPerSocketStreamsMatchSerialGolden) {
  const auto profile = golden_profile();
  const std::string golden =
      read_file(golden_path("phase_stream_reference.txt"));
  ASSERT_FALSE(golden.empty());
  const auto streams =
      run_parallel_streams(golden_config(profile), /*threads=*/4);
  ASSERT_EQ(streams.size(), 4u);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(streams[static_cast<std::size_t>(s)],
              project_socket(golden, s))
        << "socket " << s << " event stream drifted under parallel stepping";
  }
}

}  // namespace
}  // namespace dufp::perf_test
