// Trace-replay goldens: the socket-parallel engine on a *replayed* trace
// profile (dense 200 ms sampling, the DUF measurement cadence) must match
// the serial engine byte for byte, and the batch window must stay wide.
//
// Replayed traces were the ROADMAP's batching worst-case suspect: a phase
// change every 200 ms row.  Profiling showed phase boundaries never bound
// a batch (tick integration splits at them regardless of batching) — the
// real limiter was the MIN-over-sockets finish bound collapsing the
// jittered endgame into 1-tick batches.  These tests pin both facts: the
// bytes (against checked-in goldens) and the batch-size floor.
#include <gtest/gtest.h>

#include <sstream>

#include "golden_util.h"
#include "sim/simulation.h"
#include "sim/trace.h"
#include "workloads/trace_replay.h"

namespace dufp::perf_test {
namespace {

// A measured-style trace: 30 rows of 0.2 s, cycling through six distinct
// behaviours (compute-bound, bandwidth-bound, and mixes).  Consecutive
// rows always differ by more than the 10% merge tolerance, so every row
// becomes its own phase segment — the densest phase stream the replay
// module can produce.
constexpr const char* kDenseTraceCsv =
    "seconds,gflops,gbps,cpu_activity,mem_activity\n"
    "0.2,55.0,10.0,0.95,0.30\n"
    "0.2,9.0,80.0,0.55,0.90\n"
    "0.2,30.0,45.0,0.80,0.70\n"
    "0.2,48.0,15.0,0.90,0.40\n"
    "0.2,12.0,70.0,0.60,0.85\n"
    "0.2,22.0,30.0,0.75,0.60\n"
    "0.2,55.0,10.0,0.95,0.30\n"
    "0.2,9.0,80.0,0.55,0.90\n"
    "0.2,30.0,45.0,0.80,0.70\n"
    "0.2,48.0,15.0,0.90,0.40\n"
    "0.2,12.0,70.0,0.60,0.85\n"
    "0.2,22.0,30.0,0.75,0.60\n"
    "0.2,55.0,10.0,0.95,0.30\n"
    "0.2,9.0,80.0,0.55,0.90\n"
    "0.2,30.0,45.0,0.80,0.70\n"
    "0.2,48.0,15.0,0.90,0.40\n"
    "0.2,12.0,70.0,0.60,0.85\n"
    "0.2,22.0,30.0,0.75,0.60\n"
    "0.2,55.0,10.0,0.95,0.30\n"
    "0.2,9.0,80.0,0.55,0.90\n"
    "0.2,30.0,45.0,0.80,0.70\n"
    "0.2,48.0,15.0,0.90,0.40\n"
    "0.2,12.0,70.0,0.60,0.85\n"
    "0.2,22.0,30.0,0.75,0.60\n"
    "0.2,55.0,10.0,0.95,0.30\n"
    "0.2,9.0,80.0,0.55,0.90\n"
    "0.2,30.0,45.0,0.80,0.70\n"
    "0.2,48.0,15.0,0.90,0.40\n"
    "0.2,12.0,70.0,0.60,0.85\n"
    "0.2,22.0,30.0,0.75,0.60\n";

workloads::WorkloadProfile replayed_profile() {
  std::istringstream in(kDenseTraceCsv);
  return workloads::profile_from_trace(workloads::parse_trace_csv(in), {},
                                       "golden-replay");
}

/// The reference-run shape (4 sockets, DUFP at 10%, seed 7) on the
/// replayed profile.  No phase cap: replay phase names are synthetic.
harness::RunConfig replay_config(const workloads::WorkloadProfile& profile) {
  harness::RunConfig cfg;
  cfg.profile = &profile;
  cfg.machine.sockets = 4;
  cfg.mode = harness::PolicyMode::dufp;
  cfg.tolerated_slowdown = 0.10;
  cfg.seed = 7;
  return cfg;
}

std::string replay_trace_csv(harness::RunConfig cfg, const std::string& tag) {
  const std::string path = temp_path(tag + ".csv");
  {
    sim::CsvTraceSink sink(path, /*decimation=*/1);
    cfg.trace = &sink;
    harness::run_once(cfg);
  }
  return read_file(path);
}

TEST(GoldenReplayTest, SerialTraceMatchesGolden) {
  const auto profile = replayed_profile();
  expect_matches_golden(replay_trace_csv(replay_config(profile), "serial"),
                        "trace_replay.csv");
}

TEST(GoldenReplayTest, SerialSummaryMatchesGolden) {
  const auto profile = replayed_profile();
  expect_matches_golden(
      summary_text(harness::run_once(replay_config(profile))),
      "summary_replay.txt");
}

TEST(GoldenReplayTest, ParallelTraceMatchesGolden) {
  const auto profile = replayed_profile();
  harness::RunConfig cfg = replay_config(profile);
  cfg.sim.socket_threads = 4;
  expect_matches_golden(replay_trace_csv(cfg, "par"), "trace_replay.csv");
}

TEST(GoldenReplayTest, ParallelSummaryMatchesGolden) {
  const auto profile = replayed_profile();
  harness::RunConfig cfg = replay_config(profile);
  cfg.sim.socket_threads = 2;  // pool smaller than socket count
  expect_matches_golden(summary_text(harness::run_once(cfg)),
                        "summary_replay.txt");
}

// The batch-size floor on the replay path, at the engine level (run_once
// hides the Simulation object): with the 200 ms controller cadence the
// periodic deadline — not the per-200 ms phase stream — must bound the
// batches, and the jittered endgame must not fall back to serial.
TEST(GoldenReplayTest, ReplayedTraceKeepsFullBatchWindow) {
  const auto profile = replayed_profile();
  hw::MachineConfig machine;
  machine.sockets = 4;
  sim::SimulationOptions opts;
  opts.seed = 7;
  opts.socket_threads = 4;
  sim::Simulation s(machine, profile, opts);
  // Stand-in for the DUFP controller loop: a 200 ms periodic that does
  // nothing but constrain the batch window the way a real agent does.
  s.schedule_periodic(SimTime::from_millis(200), [](SimTime) {});
  s.run();
  const auto& bs = s.batch_stats();
  ASSERT_GT(bs.batches, 0);
  EXPECT_EQ(bs.max_batch, 200) << "periodic deadline should bound batches";
  EXPECT_LT(bs.serial_ticks, 64) << "endgame tail fell back to serial";
  // Average batch near the periodic interval: dense phase changes must
  // not shrink the window (they never bound a batch).
  EXPECT_GE(bs.batched_ticks / bs.batches, 150);
}

}  // namespace
}  // namespace dufp::perf_test
