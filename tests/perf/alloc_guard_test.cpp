// Allocation guard for the simulation hot path: the steady-state tick
// must perform ZERO heap allocations.  This is enforced, not aspired to —
// this binary replaces the global allocation functions with counting
// versions and asserts the count does not move across hundreds of
// step() calls that include phase transitions, listener firings, RAPL
// governor work, and periodic callbacks.
//
// The replacement is binary-local (which is why this test lives in its
// own executable, see tests/CMakeLists.txt) and forwards to malloc/free,
// so it composes with UBSan and TSan, which intercept at the malloc
// layer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "golden_util.h"
#include "sim/simulation.h"

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t) {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, std::align_val_t) {
  return counted_alloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace dufp::perf_test {
namespace {

TEST(AllocGuardTest, SteadyStateTickIsAllocationFree) {
  const auto profile = golden_profile();
  const harness::RunConfig cfg = golden_config(profile);
  sim::SimulationOptions opts = cfg.sim;
  opts.seed = cfg.seed;
  sim::Simulation s(cfg.machine, profile, opts);

  // Attach the hot-path consumers a real run wires up: a phase listener
  // (index-keyed, so it costs no strings) and a controller-style periodic
  // at the paper's interval.  Both bodies are allocation-free, like the
  // engine demands of its own tick.
  std::uint64_t transitions = 0;
  s.add_phase_listener([&](int, std::size_t phase_idx, bool entered) {
    transitions += phase_idx + (entered ? 1 : 0);
  });
  std::uint64_t intervals = 0;
  s.schedule_periodic(SimTime::from_millis(200),
                      [&](SimTime) { ++intervals; });

  // Warm-up: first tick announces phases, governor windows fill, lazy
  // library state (locale, gtest internals) settles.
  for (int i = 0; i < 50; ++i) s.step();

  // Measured window: 500 ticks = two full phase boundaries and two
  // periodic firings on the golden profile.
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 500; ++i) s.step();
  const std::uint64_t delta =
      g_alloc_count.load(std::memory_order_relaxed) - before;

  EXPECT_EQ(delta, 0u)
      << "the steady-state simulation tick allocated " << delta
      << " times in 500 ticks — the hot path regressed";
  // The instrumented callbacks really ran inside the measured window.
  EXPECT_GT(transitions, 0u);
  EXPECT_GE(intervals, 2u);
}

TEST(AllocGuardTest, LeapAndStretchPathsAreAllocationFree) {
  // Same guard over the event-leaping engine: run() dispatches between
  // the full leap (execute_leap), the calm-tick stretch (fast_stretch)
  // and the exact stepper, and none of them may touch the heap — the SoA
  // lanes, the stretch scratch and the governor's cell-edge ways are all
  // sized at construction.
  const auto profile = golden_profile();
  const harness::RunConfig cfg = golden_config(profile);
  sim::SimulationOptions opts = cfg.sim;
  opts.seed = cfg.seed;
  ASSERT_TRUE(opts.time_leap);
  sim::Simulation s(cfg.machine, profile, opts);
  std::uint64_t intervals = 0;
  s.schedule_periodic(SimTime::from_millis(200),
                      [&](SimTime) { ++intervals; });

  // Warm-up as above, then let run() finish the workload through the
  // fast paths with the counter armed.
  for (int i = 0; i < 50; ++i) s.step();
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  s.run();
  const std::uint64_t delta =
      g_alloc_count.load(std::memory_order_relaxed) - before;

  EXPECT_EQ(delta, 0u)
      << "the leaping engine allocated " << delta
      << " times after warm-up — a fast path regressed";
  const sim::BatchStats bs = s.batch_stats();
  EXPECT_GT(bs.leapt_ticks, 0) << "the guard never saw a fast-path tick";
  EXPECT_GT(bs.leaps, 0);
  EXPECT_GT(intervals, 0u);
}

TEST(AllocGuardTest, CountingHooksAreLive) {
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  auto* p = new int(7);
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  delete p;
  EXPECT_GT(after, before) << "operator new replacement is not in effect; "
                              "the zero-allocation assertion above is void";
}

}  // namespace
}  // namespace dufp::perf_test
