// Byte-identity matrix for the batched multi-run lane engine
// (DESIGN.md §7f): K configs executed as interleaved lanes of one
// MultiSim pass must produce results byte-identical to K sequential
// run_once calls — summaries, phase totals, agent stats, health
// counters, telemetry exports, and full-resolution traces.
//
// The matrix covers the coupling surfaces batching introduces: the
// process-wide shared cell cache (a hit must replay the identical bits
// the local bisection would produce), the fused cross-lane leap sweep
// (slab adds must not perturb neighbouring lanes), wave remainders
// (non-power-of-two K), and lanes of very different lengths (a finished
// lane's dead slab storage under later fused sweeps).
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "golden_util.h"
#include "harness/runner.h"
#include "rapl/cell_cache.h"
#include "sim/multi_sim.h"
#include "sim/trace.h"
#include "telemetry/export.h"
#include "workloads/trace_replay.h"

namespace dufp::perf_test {
namespace {

/// Every deterministic byte of an already-executed run (no trace file —
/// traced lanes have their own compare below).
std::string result_digest(const harness::RunResult& res) {
  std::string out = summary_text(res);
  if (res.telemetry.has_value()) {
    std::ostringstream t;
    telemetry::write_prometheus(res.telemetry->metrics, t);
    telemetry::write_chrome_trace(*res.telemetry, t);
    telemetry::write_jsonl(*res.telemetry, t);
    out += t.str();
  }
  return out;
}

/// Sequential reference: run_once per config, in order.
std::vector<std::string> sequential_digests(
    const std::vector<harness::RunConfig>& configs) {
  std::vector<std::string> out;
  out.reserve(configs.size());
  for (const auto& cfg : configs) {
    out.push_back(result_digest(harness::run_once(cfg)));
  }
  return out;
}

/// Batched execution through run_batch at the given lane width, digest
/// per config.
std::vector<std::string> batched_digests(
    const std::vector<harness::RunConfig>& configs, int lanes,
    int threads = 1) {
  harness::BatchOptions opts;
  opts.lanes = lanes;
  opts.threads = threads;
  const std::vector<harness::RunResult> results =
      harness::run_batch(configs, opts);
  std::vector<std::string> out;
  out.reserve(results.size());
  for (const auto& res : results) out.push_back(result_digest(res));
  return out;
}

void expect_batch_identity(const std::vector<harness::RunConfig>& configs,
                           int lanes, int threads = 1) {
  const std::vector<std::string> want = sequential_digests(configs);
  const std::vector<std::string> got = batched_digests(configs, lanes, threads);
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_FALSE(want[i].empty());
    EXPECT_EQ(got[i], want[i])
        << "lane " << i << " drifted from its sequential run (lanes=" << lanes
        << ", threads=" << threads << ")";
  }
}

/// A K-config grid over the golden reference run: distinct seeds and
/// tolerances so every lane follows a genuinely different trajectory.
std::vector<harness::RunConfig> golden_grid(
    const workloads::WorkloadProfile& profile, std::size_t k,
    bool storm = false) {
  std::vector<harness::RunConfig> configs;
  for (std::size_t i = 0; i < k; ++i) {
    harness::RunConfig cfg =
        storm ? golden_storm_config(profile) : golden_config(profile);
    cfg.seed = 7 + i;
    cfg.tolerated_slowdown = 0.05 + 0.05 * static_cast<double>(i % 3);
    configs.push_back(cfg);
  }
  return configs;
}

TEST(MultiRunIdentityTest, PlainGridMatchesSequential) {
  const auto profile = golden_profile();
  expect_batch_identity(golden_grid(profile, 4), /*lanes=*/4);
}

TEST(MultiRunIdentityTest, FaultStormGridMatchesSequential) {
  const auto profile = golden_profile();
  expect_batch_identity(golden_grid(profile, 4, /*storm=*/true), /*lanes=*/4);
}

TEST(MultiRunIdentityTest, TelemetryBytesMatchSequential) {
  const auto profile = golden_profile();
  auto configs = golden_grid(profile, 3, /*storm=*/true);
  for (auto& cfg : configs) cfg.telemetry.enabled = true;
  expect_batch_identity(configs, /*lanes=*/3);
}

// Five configs through three lanes: a full wave of 3 plus a remainder
// wave of 2 — the non-power-of-two shape the wave scheduler must handle.
TEST(MultiRunIdentityTest, NonPowerOfTwoLaneCountMatches) {
  const auto profile = golden_profile();
  expect_batch_identity(golden_grid(profile, 5), /*lanes=*/3);
}

// Two lane groups on worker threads: whole-lane ownership means the
// interleaving across groups is arbitrary, and the bytes must not care.
TEST(MultiRunIdentityTest, ThreadedLaneGroupsMatchSequential) {
  const auto profile = golden_profile();
  expect_batch_identity(golden_grid(profile, 4), /*lanes=*/4, /*threads=*/2);
}

// A replayed measured-style trace per lane, each with its *own* CSV
// sink: run_batch refuses trace configs (sinks may be shared), so this
// drives MultiSim directly through prepare_run — interleaved traced
// lanes must emit byte-identical CSV streams.
TEST(MultiRunIdentityTest, ReplayedTraceLanesMatchSequential) {
  constexpr const char* kTraceCsv =
      "seconds,gflops,gbps,cpu_activity,mem_activity\n"
      "0.2,55.0,10.0,0.95,0.30\n"
      "0.2,9.0,80.0,0.55,0.90\n"
      "0.2,30.0,45.0,0.80,0.70\n"
      "0.2,48.0,15.0,0.90,0.40\n"
      "0.2,12.0,70.0,0.60,0.85\n"
      "0.2,22.0,30.0,0.75,0.60\n";
  std::istringstream in(kTraceCsv);
  const workloads::WorkloadProfile profile = workloads::profile_from_trace(
      workloads::parse_trace_csv(in), {}, "batch-replay");

  constexpr std::size_t kLanes = 3;
  std::vector<harness::RunConfig> configs;
  for (std::size_t i = 0; i < kLanes; ++i) {
    harness::RunConfig cfg;
    cfg.profile = &profile;
    cfg.machine.sockets = 4;
    cfg.mode = harness::PolicyMode::dufp;
    cfg.tolerated_slowdown = 0.10;
    cfg.seed = 11 + i;
    configs.push_back(cfg);
  }

  // Sequential reference, one trace file per config (the sink must be
  // destroyed — flushed — before the file is read back).
  std::vector<std::string> want;
  for (std::size_t i = 0; i < kLanes; ++i) {
    const std::string path = temp_path(strf("seq_%zu.csv", i));
    harness::RunConfig cfg = configs[i];
    harness::RunResult res;
    {
      sim::CsvTraceSink sink(path, /*decimation=*/1);
      cfg.trace = &sink;
      res = harness::run_once(cfg);
    }
    want.push_back(summary_text(res) + read_file(path));
  }

  // Interleaved: prepare every lane, drive them through one MultiSim.
  std::vector<std::string> got;
  {
    std::vector<std::string> paths;
    std::vector<std::unique_ptr<sim::CsvTraceSink>> sinks;
    std::vector<harness::PreparedRun> lanes;
    std::vector<sim::Simulation*> sims;
    for (std::size_t i = 0; i < kLanes; ++i) {
      paths.push_back(temp_path(strf("lane_%zu.csv", i)));
      sinks.push_back(
          std::make_unique<sim::CsvTraceSink>(paths.back(), /*decimation=*/1));
      harness::RunConfig cfg = configs[i];
      cfg.trace = sinks.back().get();
      lanes.push_back(harness::prepare_run(cfg));
      sims.push_back(&lanes.back().simulation());
    }
    sim::MultiSim multi(std::move(sims));
    multi.run_all();
    for (std::size_t i = 0; i < kLanes; ++i) {
      const harness::RunResult res = lanes[i].finish();
      sinks[i].reset();  // flush before reading back
      got.push_back(summary_text(res) + read_file(paths[i]));
    }
  }

  for (std::size_t i = 0; i < kLanes; ++i) {
    ASSERT_FALSE(want[i].empty());
    EXPECT_EQ(got[i], want[i]) << "traced lane " << i << " drifted";
  }
}

// Lanes of very different lengths: the short lane finishes waves early
// and its dead slab storage sits under later fused sweeps — which must
// not perturb it or the survivors.
TEST(MultiRunIdentityTest, OneLaneFinishesEarlyMatches) {
  const auto long_profile = golden_profile();
  workloads::WorkloadProfile short_profile("golden-short", "one cycle only");
  {
    const auto src = golden_profile();
    for (const auto& p : src.phases()) short_profile.add_phase(p);
    short_profile.then("stride");  // a fraction of the long lanes' work
  }

  std::vector<harness::RunConfig> configs = golden_grid(long_profile, 3);
  harness::RunConfig short_cfg = golden_config(short_profile);
  short_cfg.seed = 23;
  configs.insert(configs.begin() + 1, short_cfg);

  expect_batch_identity(configs, /*lanes=*/4);
}

// The fuse knob is observability-free: lanes advanced through the fused
// slab sweep and lanes leaping one-by-one emit identical bytes.
TEST(MultiRunIdentityTest, FusedAndUnfusedLeapsMatch) {
  const auto profile = golden_profile();
  const auto configs = golden_grid(profile, 3);

  auto run_with_fuse = [&](bool fuse) {
    std::vector<harness::PreparedRun> lanes;
    std::vector<sim::Simulation*> sims;
    for (const auto& cfg : configs) {
      lanes.push_back(harness::prepare_run(cfg));
      sims.push_back(&lanes.back().simulation());
    }
    sim::MultiSimOptions opts;
    opts.fuse_leaps = fuse;
    sim::MultiSim multi(std::move(sims), opts);
    multi.run_all();
    std::vector<std::string> digests;
    for (auto& lane : lanes) digests.push_back(result_digest(lane.finish()));
    return digests;
  };

  const auto fused = run_with_fuse(true);
  const auto unfused = run_with_fuse(false);
  ASSERT_EQ(fused.size(), unfused.size());
  for (std::size_t i = 0; i < fused.size(); ++i) {
    EXPECT_EQ(fused[i], unfused[i]) << "fused sweep changed lane " << i;
  }
}

// The cross-run amortization claim, measured: with the shared cache
// enabled, a repeat of the same config starts fully warm — zero cold
// cell-edge builds — and still produces identical bytes.
TEST(MultiRunIdentityTest, RepeatedConfigRunsWarm) {
  auto& shared = rapl::SharedCellCache::instance();
  const bool was_enabled = shared.enabled();
  shared.set_enabled(true);
  shared.clear();

  const auto profile = golden_profile();
  const harness::RunConfig cfg = golden_config(profile);
  const harness::RunResult first = harness::run_once(cfg);
  const harness::RunResult second = harness::run_once(cfg);

  EXPECT_GT(first.cell_stats.cold_builds, 0u)
      << "cold run built nothing — the warm check proves nothing";
  EXPECT_EQ(second.cell_stats.cold_builds, 0u)
      << "repetition 2 of an identical config must start fully warm";
  EXPECT_GT(second.cell_stats.shared_hits + second.cell_stats.local_hits, 0u);
  EXPECT_EQ(result_digest(first), result_digest(second));

  shared.set_enabled(was_enabled);
}

}  // namespace
}  // namespace dufp::perf_test
