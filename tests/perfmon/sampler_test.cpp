#include "perfmon/sampler.h"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>

#include "hwmodel/socket_model.h"
#include "msr/sim_msr.h"
#include "perfmon/sim_counter_source.h"
#include "rapl/rapl_engine.h"

namespace dufp::perfmon {
namespace {

/// Hand-rolled counter source for exact-delta tests.
class FakeSource final : public CounterSource {
 public:
  std::uint64_t read(Event e) const override {
    return values_[static_cast<std::size_t>(e)];
  }
  std::uint64_t wrap_range(Event e) const override {
    return e == Event::pkg_energy_uj || e == Event::dram_energy_uj
               ? wrap_
               : 0;
  }

  void set(Event e, std::uint64_t v) {
    values_[static_cast<std::size_t>(e)] = v;
  }
  void set_wrap(std::uint64_t w) { wrap_ = w; }

 private:
  std::array<std::uint64_t, kEventCount> values_{};
  std::uint64_t wrap_ = 1'000'000'000ull;
};

SamplerOptions noiseless() {
  SamplerOptions o;
  o.noise_sigma = 0.0;
  return o;
}

TEST(SamplerTest, FirstSampleEstablishesBaseline) {
  FakeSource src;
  IntervalSampler s(src, 2100.0, Rng(1), noiseless());
  EXPECT_FALSE(s.sample(SimTime::from_millis(200)).has_value());
  EXPECT_TRUE(s.sample(SimTime::from_millis(400)).has_value());
}

TEST(SamplerTest, RatesComputedFromDeltas) {
  FakeSource src;
  IntervalSampler s(src, 2100.0, Rng(1), noiseless());
  s.sample(SimTime::from_millis(0));
  src.set(Event::fp_ops, 10'000'000'000ull);       // 10 GFLOP in 0.2 s
  src.set(Event::dram_bytes, 4'000'000'000ull);    // 4 GB
  src.set(Event::pkg_energy_uj, 20'000'000ull);    // 20 J
  src.set(Event::dram_energy_uj, 5'000'000ull);    // 5 J
  const auto smp = s.sample(SimTime::from_millis(200));
  ASSERT_TRUE(smp.has_value());
  EXPECT_DOUBLE_EQ(smp->interval_s, 0.2);
  EXPECT_DOUBLE_EQ(smp->flops_rate, 50e9);
  EXPECT_DOUBLE_EQ(smp->bytes_rate, 20e9);
  EXPECT_DOUBLE_EQ(smp->pkg_power_w, 100.0);
  EXPECT_DOUBLE_EQ(smp->dram_power_w, 25.0);
}

TEST(SamplerTest, OperationalIntensity) {
  Sample s;
  s.flops_rate = 50e9;
  s.bytes_rate = 20e9;
  EXPECT_DOUBLE_EQ(s.operational_intensity(), 2.5);
}

TEST(SamplerTest, OperationalIntensityGuardsZeroTraffic) {
  Sample s;
  s.flops_rate = 50e9;
  s.bytes_rate = 0.0;
  EXPECT_GT(s.operational_intensity(), 1e9);  // degenerates high, not NaN
}

TEST(SamplerTest, CoreClockFromAperfMperf) {
  FakeSource src;
  IntervalSampler s(src, 2100.0, Rng(1), noiseless());
  s.sample(SimTime::from_millis(0));
  // 0.2 s at 2.5 GHz actual, 2.1 GHz reference.
  src.set(Event::aperf_cycles, 500'000'000ull);
  src.set(Event::mperf_cycles, 420'000'000ull);
  const auto smp = s.sample(SimTime::from_millis(200));
  EXPECT_NEAR(smp->core_mhz, 2500.0, 1e-6);
}

TEST(SamplerTest, EnergyWrapHandled) {
  FakeSource src;
  src.set_wrap(1000);
  src.set(Event::pkg_energy_uj, 990);
  IntervalSampler s(src, 2100.0, Rng(1), noiseless());
  s.sample(SimTime::from_millis(0));
  src.set(Event::pkg_energy_uj, 10);  // wrapped: delta 20 uJ
  const auto smp = s.sample(SimTime::from_millis(200));
  EXPECT_NEAR(smp->pkg_power_w, 20e-6 / 0.2, 1e-12);
}

TEST(SamplerTest, ResetForgetsBaseline) {
  FakeSource src;
  IntervalSampler s(src, 2100.0, Rng(1), noiseless());
  s.sample(SimTime::from_millis(0));
  s.reset();
  EXPECT_FALSE(s.sample(SimTime::from_millis(200)).has_value());
}

TEST(SamplerTest, NonAdvancingTimeRejected) {
  FakeSource src;
  IntervalSampler s(src, 2100.0, Rng(1), noiseless());
  s.sample(SimTime::from_millis(200));
  EXPECT_THROW(s.sample(SimTime::from_millis(200)), std::invalid_argument);
}

TEST(SamplerTest, NoiseIsBoundedAndUnbiased) {
  FakeSource src;
  SamplerOptions o;
  o.noise_sigma = 0.01;
  IntervalSampler s(src, 2100.0, Rng(7), o);
  s.sample(SimTime::from_millis(0));
  double sum = 0.0;
  int n = 0;
  std::uint64_t flops = 0;
  for (int i = 1; i <= 2000; ++i) {
    flops += 1'000'000'000ull;
    src.set(Event::fp_ops, flops);
    const auto smp = s.sample(SimTime::from_millis(200 * (i)));
    const double rate = smp->flops_rate / 5e9;  // truth = 1.0
    EXPECT_GT(rate, 1.0 - 0.05);
    EXPECT_LT(rate, 1.0 + 0.05);
    sum += rate;
    ++n;
  }
  EXPECT_NEAR(sum / n, 1.0, 0.002);
}

TEST(SamplerTest, DeterministicGivenSeed) {
  FakeSource src;
  SamplerOptions o;
  o.noise_sigma = 0.01;
  auto run = [&](std::uint64_t seed) {
    IntervalSampler s(src, 2100.0, Rng(seed), o);
    s.sample(SimTime::from_millis(0));
    src.set(Event::fp_ops, 1'000'000'000ull);
    return s.sample(SimTime::from_millis(200))->flops_rate;
  };
  src.set(Event::fp_ops, 0);
  const double a = run(5);
  src.set(Event::fp_ops, 0);
  const double b = run(5);
  EXPECT_DOUBLE_EQ(a, b);
}

// ---------------------------------------------------------------------------
// Hardening: counter-read failures and garbage samples must be absorbed,
// counted, and recovered from within a bounded number of intervals.
// ---------------------------------------------------------------------------

/// FakeSource that throws on demand, modelling a flaky perf backend.
class ThrowingSource final : public CounterSource {
 public:
  std::uint64_t read(Event e) const override {
    if (throwing_) throw std::runtime_error("injected read failure");
    return inner_.read(e);
  }
  std::uint64_t wrap_range(Event e) const override {
    return inner_.wrap_range(e);
  }

  FakeSource& inner() { return inner_; }
  void set_throwing(bool t) { throwing_ = t; }

 private:
  FakeSource inner_;
  bool throwing_ = false;
};

TEST(SamplerTest, ReadFailureCountedAndBaselineKept) {
  ThrowingSource src;
  IntervalSampler s(src, 2100.0, Rng(1), noiseless());
  s.sample(SimTime::from_millis(0));

  src.set_throwing(true);
  EXPECT_FALSE(s.sample(SimTime::from_millis(200)).has_value());
  EXPECT_FALSE(s.sample(SimTime::from_millis(400)).has_value());
  EXPECT_EQ(s.health().read_failures, 2u);
  EXPECT_EQ(s.health().samples_rejected, 0u);

  // The baseline survived the outage: because the counters are monotonic
  // the next good sample spans the whole 0..600 ms window and the rates
  // are still exact.
  src.set_throwing(false);
  src.inner().set(Event::fp_ops, 30'000'000'000ull);  // 30 GFLOP in 0.6 s
  const auto smp = s.sample(SimTime::from_millis(600));
  ASSERT_TRUE(smp.has_value());
  EXPECT_DOUBLE_EQ(smp->interval_s, 0.6);
  EXPECT_DOUBLE_EQ(smp->flops_rate, 50e9);
}

TEST(SamplerTest, NonMonotonicCounterRejectedThenRecovers) {
  FakeSource src;
  IntervalSampler s(src, 2100.0, Rng(1), noiseless());
  src.set(Event::fp_ops, 10'000'000'000ull);
  s.sample(SimTime::from_millis(0));

  // A non-wrapping counter running backwards is corruption, not a wrap.
  src.set(Event::fp_ops, 5'000'000'000ull);
  EXPECT_FALSE(s.sample(SimTime::from_millis(200)).has_value());
  EXPECT_EQ(s.health().samples_rejected, 1u);

  // Bounded recovery: the sampler re-baselined onto the suspect read, so
  // one interval later a consistent stream yields a good sample again.
  src.set(Event::fp_ops, 15'000'000'000ull);  // 10 GFLOP over 0.2 s
  const auto smp = s.sample(SimTime::from_millis(400));
  ASSERT_TRUE(smp.has_value());
  EXPECT_DOUBLE_EQ(smp->flops_rate, 50e9);
}

TEST(SamplerTest, EnergyReadingBeyondWrapRangeRejected) {
  FakeSource src;
  src.set_wrap(1000);
  src.set(Event::pkg_energy_uj, 990);
  IntervalSampler s(src, 2100.0, Rng(1), noiseless());
  s.sample(SimTime::from_millis(0));
  // A raw value at/above the wrap range cannot come from this counter.
  src.set(Event::pkg_energy_uj, 5000);
  EXPECT_FALSE(s.sample(SimTime::from_millis(200)).has_value());
  EXPECT_EQ(s.health().samples_rejected, 1u);
}

TEST(SamplerTest, ResetClearsNothingButBaseline) {
  ThrowingSource src;
  IntervalSampler s(src, 2100.0, Rng(1), noiseless());
  s.sample(SimTime::from_millis(0));
  src.set_throwing(true);
  s.sample(SimTime::from_millis(200));
  EXPECT_EQ(s.health().read_failures, 1u);
  s.reset();
  // Health is cumulative accounting; reset() only forgets the baseline.
  EXPECT_EQ(s.health().read_failures, 1u);
}

TEST(SimCounterSourceTest, ReadsSocketGroundTruthThroughMsrs) {
  hw::SocketConfig cfg;
  hw::SocketModel socket(cfg, 0);
  msr::SimulatedMsr dev(cfg.cores);
  rapl::RaplEngine engine(socket, dev);
  SimCounterSource src(socket, dev);

  hw::PhaseDemand d;
  d.w_cpu = 0.7;
  d.w_mem = 0.2;
  d.w_fixed = 0.1;
  d.cpu_activity = 0.9;
  d.mem_activity = 0.8;
  d.flops_rate_ref = 30e9;
  d.bytes_rate_ref = 15e9;
  socket.set_demand(d);
  socket.accumulate(socket.evaluate(), 1.0);

  EXPECT_NEAR(static_cast<double>(src.read(Event::fp_ops)), 30e9, 1e6);
  EXPECT_NEAR(static_cast<double>(src.read(Event::dram_bytes)), 15e9, 1e6);
  EXPECT_GT(src.read(Event::pkg_energy_uj), 50'000'000ull);  // > 50 J
  EXPECT_GT(src.read(Event::dram_energy_uj), 1'000'000ull);
  EXPECT_GT(src.read(Event::aperf_cycles), 0ull);
  EXPECT_EQ(src.wrap_range(Event::fp_ops), 0ull);
  EXPECT_EQ(src.wrap_range(Event::pkg_energy_uj), 262'144'000'000ull);
}

}  // namespace
}  // namespace dufp::perfmon
