#include "perfmon/events.h"

#include <gtest/gtest.h>

namespace dufp::perfmon {
namespace {

TEST(EventNameTest, AllEventsNamed) {
  for (int i = 0; i < kEventCount; ++i) {
    EXPECT_NE(event_name(static_cast<Event>(i)), "UNKNOWN");
  }
}

TEST(EventNameTest, PapiStyleNames) {
  EXPECT_EQ(event_name(Event::fp_ops), "PAPI_DP_OPS");
  EXPECT_EQ(event_name(Event::pkg_energy_uj), "rapl::PACKAGE_ENERGY");
}

TEST(CounterDeltaTest, NonWrappingCounter) {
  EXPECT_EQ(counter_delta(100, 250, 0), 150ull);
  EXPECT_EQ(counter_delta(100, 100, 0), 0ull);
}

TEST(CounterDeltaTest, NonWrappingCounterRequiresMonotonic) {
  EXPECT_THROW(counter_delta(200, 100, 0), std::invalid_argument);
}

TEST(CounterDeltaTest, WrappingCounterSimple) {
  EXPECT_EQ(counter_delta(10, 30, 1000), 20ull);
}

TEST(CounterDeltaTest, WrappingCounterAcrossWrap) {
  EXPECT_EQ(counter_delta(990, 5, 1000), 15ull);
}

TEST(CounterDeltaTest, ValuesMustBeBelowRange) {
  EXPECT_THROW(counter_delta(1000, 5, 1000), std::invalid_argument);
  EXPECT_THROW(counter_delta(5, 1000, 1000), std::invalid_argument);
}

}  // namespace
}  // namespace dufp::perfmon
