#include "workloads/profiles.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "hwmodel/power_model.h"
#include "hwmodel/socket_config.h"

namespace dufp::workloads {
namespace {

TEST(ProfilesTest, AllTenPaperApplicationsPresent) {
  EXPECT_EQ(all_apps().size(), 10u);
  for (const char* name :
       {"BT", "CG", "EP", "FT", "LU", "MG", "SP", "UA", "HPL", "LAMMPS"}) {
    EXPECT_NO_THROW(app_by_name(name)) << name;
  }
}

TEST(ProfilesTest, LookupIsCaseInsensitive) {
  EXPECT_EQ(app_by_name("lammps"), AppId::lammps);
  EXPECT_EQ(app_by_name("cg"), AppId::cg);
}

TEST(ProfilesTest, UnknownNameThrows) {
  EXPECT_THROW(app_by_name("IS"), std::invalid_argument);
}

TEST(ProfilesTest, NamesRoundTrip) {
  for (AppId id : all_apps()) {
    EXPECT_EQ(app_by_name(app_name(id)), id);
  }
}

TEST(ProfilesTest, EveryProfileValidates) {
  for (AppId id : all_apps()) {
    EXPECT_NO_THROW(profile(id).validate()) << app_name(id);
  }
}

TEST(ProfilesTest, DurationsInPaperRangeScaledDown) {
  // The paper targets 20-400 s runs; our profiles use scaled-down runs in
  // the 25-45 s band so a full 10-repetition figure stays interactive.
  for (AppId id : all_apps()) {
    const double t = profile(id).nominal_total_seconds();
    EXPECT_GE(t, 20.0) << app_name(id);
    EXPECT_LE(t, 60.0) << app_name(id);
  }
}

TEST(ProfilesTest, BandwidthDemandsWithinMachineEnvelope) {
  const hw::MachineConfig machine;
  const double peak = machine.socket.memory.peak_bw_gbps;
  for (AppId id : all_apps()) {
    for (const auto& p : profile(id).phases()) {
      EXPECT_LE(p.bytes_rate_ref_gbps(), peak)
          << app_name(id) << "/" << p.name;
    }
  }
}

TEST(ProfilesTest, ReferencePowerWithinPackageEnvelope) {
  // No phase may demand less than the idle floor or wildly above TDP —
  // above-TDP demand is allowed (the firmware caps it, as with real HPL)
  // but must stay plausible.
  const hw::SocketConfig cfg;
  const hw::PowerModel model(cfg.power, cfg.cores, cfg.f_ref_mhz(),
                             cfg.fu_ref_mhz());
  for (AppId id : all_apps()) {
    for (const auto& p : profile(id).phases()) {
      const double w =
          model.package_power_w(cfg.core_max_mhz, cfg.uncore_max_mhz,
                                p.demand());
      EXPECT_GT(w, 60.0) << app_name(id) << "/" << p.name;
      EXPECT_LT(w, 1.3 * cfg.tdp_w) << app_name(id) << "/" << p.name;
    }
  }
}

TEST(ProfilesTest, CgHasMemoryPrologue) {
  // Sec. II-A: CG starts with a highly memory-intensive phase (~5 % of
  // execution) — the phase the motivation experiment caps.
  const auto& cg = profile(AppId::cg);
  const auto& first = cg.phase(cg.sequence().front());
  EXPECT_EQ(first.name, "init");
  EXPECT_LT(first.oi, 0.02);
  const double frac = first.nominal_seconds / cg.nominal_total_seconds();
  EXPECT_GT(frac, 0.02);
  EXPECT_LT(frac, 0.10);
}

TEST(ProfilesTest, EpIsHighlyComputeIntensive) {
  const auto& ep = profile(AppId::ep);
  const auto& main_phase = ep.phase(ep.phase_index("rng_kernel"));
  EXPECT_GT(main_phase.oi, 100.0);
  EXPECT_GT(main_phase.w_cpu, 0.9);
}

TEST(ProfilesTest, FtAlternatesAcrossOiClassBoundary) {
  const auto& ft = profile(AppId::ft);
  const auto& compute = ft.phase(ft.phase_index("fft_compute"));
  const auto& transpose = ft.phase(ft.phase_index("transpose"));
  EXPECT_GT(compute.oi, 1.0);
  EXPECT_LT(transpose.oi, 1.0);
}

TEST(ProfilesTest, UaAlternatesComputeAndMemory) {
  const auto& ua = profile(AppId::ua);
  const auto& seq = ua.sequence();
  // 1 compute followed by several memory iterations (Sec. V-A).
  const std::size_t compute = ua.phase_index("ua_compute");
  int runs_of_memory = 0;
  int current = 0;
  for (std::size_t idx : seq) {
    if (idx == compute) {
      if (current > 0) ++runs_of_memory;
      current = 0;
    } else {
      ++current;
    }
  }
  EXPECT_GT(runs_of_memory, 5);
  EXPECT_GT(ua.phase(compute).oi, 1.0);
  EXPECT_LT(ua.phase(ua.phase_index("ua_memory")).oi, 1.0);
}

TEST(ProfilesTest, LammpsBurstsAreSubInterval) {
  // The neighbour-rebuild bursts must be shorter than the 200 ms
  // measurement interval — that is the paper's explanation for the missed
  // power spikes (Sec. V-A).
  const auto& lmp = profile(AppId::lammps);
  const auto& burst = lmp.phase(lmp.phase_index("neigh_rebuild"));
  EXPECT_LT(burst.nominal_seconds, 0.2);
  EXPECT_GT(burst.cpu_activity, 1.0);  // a genuine power spike
}

TEST(ProfilesTest, MgCycleShorterThanInterval) {
  const auto& mg = profile(AppId::mg);
  double cycle = 0.0;
  for (const auto& p : mg.phases()) cycle += p.nominal_seconds;
  EXPECT_LT(cycle, 0.2);
}

TEST(ProfilesTest, BtSweepsDifferInTrafficNotFlops) {
  // BT's bandwidth swings (not FLOPS swings) are what pin DUF's uncore.
  const auto& bt = profile(AppId::bt);
  double min_f = 1e18;
  double max_f = 0.0;
  double min_b = 1e18;
  double max_b = 0.0;
  for (const auto& p : bt.phases()) {
    min_f = std::min(min_f, p.gflops_ref);
    max_f = std::max(max_f, p.gflops_ref);
    min_b = std::min(min_b, p.bytes_rate_ref_gbps());
    max_b = std::max(max_b, p.bytes_rate_ref_gbps());
  }
  EXPECT_LT(max_f / min_f, 1.3);
  EXPECT_GT(max_b / min_b, 1.8);
}

TEST(ProfilesTest, NoRepeatedIntraClassFlopsDoubling) {
  // A one-off FLOPS doubling (CG's prologue -> solve) is a legitimate
  // phase change even without an OI class flip; what no NPB application
  // does is *flap* — double repeatedly inside its steady loop, which
  // would reset the controllers every iteration.
  for (AppId id : all_apps()) {
    const auto& w = profile(id);
    const auto& seq = w.sequence();
    int doublings = 0;
    for (std::size_t i = 1; i < seq.size(); ++i) {
      const auto& prev = w.phase(seq[i - 1]);
      const auto& cur = w.phase(seq[i]);
      const bool class_change = (prev.oi < 1.0) != (cur.oi < 1.0);
      if (!class_change && cur.gflops_ref >= 2.0 * prev.gflops_ref) {
        ++doublings;
      }
    }
    EXPECT_LE(doublings, 1) << app_name(id);
  }
}

TEST(ProfilesTest, ProfileReferencesAreStable) {
  const auto& a = profile(AppId::cg);
  const auto& b = profile(AppId::cg);
  EXPECT_EQ(&a, &b);  // cached singleton
}

}  // namespace
}  // namespace dufp::workloads
