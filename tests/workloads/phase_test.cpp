#include "workloads/phase.h"

#include <gtest/gtest.h>

namespace dufp::workloads {
namespace {

PhaseSpec valid_phase() {
  PhaseSpec p;
  p.name = "p";
  p.nominal_seconds = 1.0;
  p.gflops_ref = 10.0;
  p.oi = 0.5;
  p.w_cpu = 0.4;
  p.w_mem = 0.4;
  p.w_unc = 0.1;
  p.w_fixed = 0.1;
  p.cpu_activity = 0.9;
  p.mem_activity = 0.8;
  return p;
}

TEST(PhaseSpecTest, ValidPhasePasses) {
  EXPECT_NO_THROW(valid_phase().validate());
}

TEST(PhaseSpecTest, DemandDerivesRates) {
  const auto d = valid_phase().demand();
  EXPECT_DOUBLE_EQ(d.flops_rate_ref, 10e9);
  EXPECT_DOUBLE_EQ(d.bytes_rate_ref, 20e9);  // 10 GFLOP/s / 0.5 flop/byte
  EXPECT_DOUBLE_EQ(d.w_cpu, 0.4);
  EXPECT_FALSE(d.idle);
}

TEST(PhaseSpecTest, BytesRateHelper) {
  EXPECT_DOUBLE_EQ(valid_phase().bytes_rate_ref_gbps(), 20.0);
}

TEST(PhaseSpecTest, RejectsEmptyName) {
  auto p = valid_phase();
  p.name = "";
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(PhaseSpecTest, RejectsNonPositiveDuration) {
  auto p = valid_phase();
  p.nominal_seconds = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(PhaseSpecTest, RejectsNonPositiveRates) {
  auto p = valid_phase();
  p.gflops_ref = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = valid_phase();
  p.oi = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(PhaseSpecTest, RejectsWeightsNotSummingToOne) {
  auto p = valid_phase();
  p.w_fixed = 0.3;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(PhaseSpecTest, RejectsNegativeWeights) {
  auto p = valid_phase();
  p.w_cpu = -0.1;
  p.w_fixed = 0.6;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(PhaseSpecTest, ActivityBoundsAllowAvxHeadroom) {
  auto p = valid_phase();
  p.cpu_activity = 1.3;  // AVX-512 power virus: allowed up to 1.5
  EXPECT_NO_THROW(p.validate());
  p.cpu_activity = 1.6;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(PhaseSpecTest, ErrorMessageNamesPhase) {
  auto p = valid_phase();
  p.name = "transpose";
  p.oi = 0.0;
  try {
    p.validate();
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("transpose"), std::string::npos);
  }
}

}  // namespace
}  // namespace dufp::workloads
