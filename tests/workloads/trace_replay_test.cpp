#include "workloads/trace_replay.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dufp::workloads {
namespace {

std::vector<TraceSample> parse(const std::string& csv) {
  std::istringstream in(csv);
  return parse_trace_csv(in);
}

TEST(TraceParseTest, ParsesMinimalColumns) {
  const auto t = parse(
      "seconds,gflops,gbps\n"
      "0.5,40,20\n"
      "1.0,5,80\n");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t[0].seconds, 0.5);
  EXPECT_DOUBLE_EQ(t[0].gflops, 40.0);
  EXPECT_DOUBLE_EQ(t[1].gbps, 80.0);
  EXPECT_DOUBLE_EQ(t[0].cpu_activity, 0.9);  // default
}

TEST(TraceParseTest, OptionalActivityColumns) {
  const auto t = parse(
      "seconds,gflops,gbps,cpu_activity,mem_activity\n"
      "0.5,40,20,1.0,0.3\n");
  EXPECT_DOUBLE_EQ(t[0].cpu_activity, 1.0);
  EXPECT_DOUBLE_EQ(t[0].mem_activity, 0.3);
}

TEST(TraceParseTest, ColumnsLocatedByNameNotPosition) {
  const auto t = parse(
      "gbps,seconds,gflops\n"
      "20,0.5,40\n");
  EXPECT_DOUBLE_EQ(t[0].gflops, 40.0);
  EXPECT_DOUBLE_EQ(t[0].gbps, 20.0);
}

TEST(TraceParseTest, BlankLinesSkipped) {
  const auto t = parse("seconds,gflops,gbps\n\n0.5,40,20\n\n");
  EXPECT_EQ(t.size(), 1u);
}

TEST(TraceParseTest, MissingHeaderColumnRejected) {
  std::istringstream in("seconds,gflops\n0.5,40\n");
  EXPECT_THROW(parse_trace_csv(in), std::runtime_error);
}

TEST(TraceParseTest, BadNumberReportsLine) {
  try {
    parse("seconds,gflops,gbps\n0.5,forty,20\n");
    FAIL();
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(TraceParseTest, NonPositiveDurationRejected) {
  EXPECT_THROW(parse("seconds,gflops,gbps\n0,40,20\n"),
               std::runtime_error);
}

TEST(TraceParseTest, MissingFileRejected) {
  EXPECT_THROW(load_trace_csv("/nonexistent/trace.csv"),
               std::runtime_error);
}

TEST(TraceReplayTest, EmptyTraceRejected) {
  EXPECT_THROW(profile_from_trace({}), std::invalid_argument);
}

TEST(TraceReplayTest, SimilarSamplesMergeIntoOnePhase) {
  std::vector<TraceSample> t;
  for (int i = 0; i < 10; ++i) {
    t.push_back({0.2, 40.0 + (i % 2), 20.0, 0.9, 0.8});
  }
  const auto w = profile_from_trace(t);
  EXPECT_EQ(w.phases().size(), 1u);
  EXPECT_NEAR(w.nominal_total_seconds(), 2.0, 1e-9);
}

TEST(TraceReplayTest, DistinctBehavioursBecomeDistinctPhases) {
  std::vector<TraceSample> t{
      {1.0, 60.0, 10.0, 1.0, 0.3},  // compute
      {1.0, 5.0, 80.0, 0.7, 1.0},   // memory
      {1.0, 60.0, 10.0, 1.0, 0.3},  // compute again -> same phase kind
  };
  const auto w = profile_from_trace(t);
  EXPECT_EQ(w.phases().size(), 2u);
  EXPECT_EQ(w.sequence().size(), 3u);
  EXPECT_EQ(w.sequence().front(), w.sequence().back());
}

TEST(TraceReplayTest, OiDerivedFromRates) {
  const auto w = profile_from_trace({{1.0, 40.0, 20.0, 0.9, 0.8}});
  EXPECT_NEAR(w.phase(0).oi, 2.0, 1e-9);
}

TEST(TraceReplayTest, MemoryShareFollowsBandwidth) {
  ReplayOptions opt;
  opt.peak_bw_gbps = 96.0;
  const auto heavy = profile_from_trace({{1.0, 8.0, 90.0, 0.8, 1.0}}, opt);
  const auto light = profile_from_trace({{1.0, 60.0, 9.0, 1.0, 0.3}}, opt);
  EXPECT_GT(heavy.phase(0).w_mem, 0.6);
  EXPECT_LT(light.phase(0).w_mem, 0.15);
  EXPECT_GT(light.phase(0).w_cpu, 0.7);
}

TEST(TraceReplayTest, ProducedProfileValidates) {
  std::vector<TraceSample> t;
  for (int i = 0; i < 30; ++i) {
    t.push_back({0.2, i % 3 == 0 ? 60.0 : 8.0,
                 i % 3 == 0 ? 10.0 : 85.0, 0.9, 0.9});
  }
  const auto w = profile_from_trace(t, {}, "replayed");
  EXPECT_NO_THROW(w.validate());
  EXPECT_EQ(w.name(), "replayed");
  // Runnable end to end:
  WorkloadInstance inst(w, Rng(1), 0.0);
  inst.advance(1e9);
  EXPECT_TRUE(inst.finished());
}

}  // namespace
}  // namespace dufp::workloads
