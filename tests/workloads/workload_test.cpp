#include "workloads/workload.h"

#include <gtest/gtest.h>

namespace dufp::workloads {
namespace {

PhaseSpec make_phase(const std::string& name, double seconds) {
  PhaseSpec p;
  p.name = name;
  p.nominal_seconds = seconds;
  p.gflops_ref = 10.0;
  p.oi = 1.0;
  p.w_cpu = 0.5;
  p.w_mem = 0.3;
  p.w_unc = 0.1;
  p.w_fixed = 0.1;
  return p;
}

WorkloadProfile two_phase_profile() {
  WorkloadProfile w("test", "test profile");
  w.add_phase(make_phase("a", 1.0));
  w.add_phase(make_phase("b", 2.0));
  w.then("a").then("b").then("a", 2);
  return w;
}

TEST(WorkloadProfileTest, BuilderSequences) {
  const auto w = two_phase_profile();
  EXPECT_EQ(w.sequence().size(), 4u);
  EXPECT_DOUBLE_EQ(w.nominal_total_seconds(), 1.0 + 2.0 + 1.0 + 1.0);
}

TEST(WorkloadProfileTest, LoopExpands) {
  WorkloadProfile w("loop", "");
  w.add_phase(make_phase("x", 0.5));
  w.add_phase(make_phase("y", 0.5));
  w.loop(3, {"x", "y"});
  EXPECT_EQ(w.sequence().size(), 6u);
  EXPECT_DOUBLE_EQ(w.nominal_total_seconds(), 3.0);
}

TEST(WorkloadProfileTest, DuplicatePhaseNameRejected) {
  WorkloadProfile w("dup", "");
  w.add_phase(make_phase("x", 1.0));
  EXPECT_THROW(w.add_phase(make_phase("x", 2.0)), std::invalid_argument);
}

TEST(WorkloadProfileTest, UnknownPhaseNameRejected) {
  WorkloadProfile w("u", "");
  w.add_phase(make_phase("x", 1.0));
  EXPECT_THROW(w.then("y"), std::invalid_argument);
  EXPECT_THROW(w.loop(2, {"x", "y"}), std::invalid_argument);
  EXPECT_THROW(w.phase_index("z"), std::invalid_argument);
}

TEST(WorkloadProfileTest, ValidationCatchesEmptyProfiles) {
  WorkloadProfile unnamed;
  EXPECT_THROW(unnamed.validate(), std::invalid_argument);

  WorkloadProfile no_sequence("n", "");
  no_sequence.add_phase(make_phase("x", 1.0));
  EXPECT_THROW(no_sequence.validate(), std::invalid_argument);
}

TEST(WorkloadInstanceTest, WalksSequence) {
  const auto w = two_phase_profile();
  WorkloadInstance inst(w, Rng(1), /*jitter_sigma=*/0.0);
  EXPECT_FALSE(inst.finished());
  EXPECT_EQ(inst.current_phase().name, "a");
  inst.advance(1.0);
  EXPECT_EQ(inst.current_phase().name, "b");
  inst.advance(2.0);
  EXPECT_EQ(inst.current_phase().name, "a");
  inst.advance(2.0);
  EXPECT_TRUE(inst.finished());
}

TEST(WorkloadInstanceTest, AdvanceAcrossMultipleEntries) {
  const auto w = two_phase_profile();
  WorkloadInstance inst(w, Rng(1), 0.0);
  inst.advance(4.5);  // into the final 'a'
  EXPECT_FALSE(inst.finished());
  EXPECT_EQ(inst.position(), 3u);
  EXPECT_NEAR(inst.remaining_in_phase(), 0.5, 1e-12);
}

TEST(WorkloadInstanceTest, PartialAdvanceTracksRemaining) {
  const auto w = two_phase_profile();
  WorkloadInstance inst(w, Rng(1), 0.0);
  inst.advance(0.25);
  EXPECT_NEAR(inst.remaining_in_phase(), 0.75, 1e-12);
  EXPECT_NEAR(inst.consumed_nominal_seconds(), 0.25, 1e-12);
}

TEST(WorkloadInstanceTest, FinishedInstanceIsIdle) {
  const auto w = two_phase_profile();
  WorkloadInstance inst(w, Rng(1), 0.0);
  inst.advance(100.0);
  EXPECT_TRUE(inst.finished());
  EXPECT_TRUE(inst.current_demand().idle);
  EXPECT_THROW(inst.current_phase(), std::invalid_argument);
  EXPECT_THROW(inst.remaining_in_phase(), std::invalid_argument);
}

TEST(WorkloadInstanceTest, NegativeAdvanceRejected) {
  const auto w = two_phase_profile();
  WorkloadInstance inst(w, Rng(1), 0.0);
  EXPECT_THROW(inst.advance(-0.1), std::invalid_argument);
}

TEST(WorkloadInstanceTest, ZeroJitterMatchesNominal) {
  const auto w = two_phase_profile();
  WorkloadInstance inst(w, Rng(1), 0.0);
  EXPECT_DOUBLE_EQ(inst.total_nominal_seconds(),
                   w.nominal_total_seconds());
}

TEST(WorkloadInstanceTest, JitterPerturbsDurations) {
  const auto w = two_phase_profile();
  WorkloadInstance a(w, Rng(1), 0.02);
  WorkloadInstance b(w, Rng(2), 0.02);
  EXPECT_NE(a.total_nominal_seconds(), b.total_nominal_seconds());
  // ... but only slightly.
  EXPECT_NEAR(a.total_nominal_seconds(), w.nominal_total_seconds(),
              w.nominal_total_seconds() * 0.1);
}

TEST(WorkloadInstanceTest, SameSeedReplaysExactly) {
  const auto w = two_phase_profile();
  WorkloadInstance a(w, Rng(7), 0.02);
  WorkloadInstance b(w, Rng(7), 0.02);
  EXPECT_DOUBLE_EQ(a.total_nominal_seconds(), b.total_nominal_seconds());
}

TEST(WorkloadInstanceTest, ExtremeJitterSigmaRejected) {
  const auto w = two_phase_profile();
  EXPECT_THROW(WorkloadInstance(w, Rng(1), 0.5), std::invalid_argument);
}

TEST(WorkloadInstanceTest, TotalStepsMatchesSequence) {
  const auto w = two_phase_profile();
  WorkloadInstance inst(w, Rng(1), 0.0);
  EXPECT_EQ(inst.total_steps(), 4u);
}

}  // namespace
}  // namespace dufp::workloads
