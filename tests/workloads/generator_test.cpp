#include "workloads/generator.h"

#include <gtest/gtest.h>

namespace dufp::workloads {
namespace {

TEST(GeneratorTest, ProducesValidProfiles) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const auto w = generate_workload(GeneratorSpec{}, rng);
    EXPECT_NO_THROW(w.validate());
  }
}

TEST(GeneratorTest, RespectsSpecCounts) {
  GeneratorSpec spec;
  spec.phase_count = 7;
  spec.sequence_length = 23;
  Rng rng(2);
  const auto w = generate_workload(spec, rng, "g");
  EXPECT_EQ(w.phases().size(), 7u);
  EXPECT_EQ(w.sequence().size(), 23u);
  EXPECT_EQ(w.name(), "g");
}

TEST(GeneratorTest, RespectsDurationBounds) {
  GeneratorSpec spec;
  spec.min_phase_seconds = 0.5;
  spec.max_phase_seconds = 1.5;
  Rng rng(3);
  const auto w = generate_workload(spec, rng);
  for (const auto& p : w.phases()) {
    EXPECT_GE(p.nominal_seconds, 0.5);
    EXPECT_LE(p.nominal_seconds, 1.5);
  }
}

TEST(GeneratorTest, RespectsBandwidthEnvelope) {
  GeneratorSpec spec;
  spec.max_gbps = 50.0;
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    const auto w = generate_workload(spec, rng);
    for (const auto& p : w.phases()) {
      EXPECT_LE(p.bytes_rate_ref_gbps(), spec.max_gbps * 1.0001)
          << p.name;
    }
  }
}

TEST(GeneratorTest, MemoryBoundFractionZeroMakesAllComputeBound) {
  GeneratorSpec spec;
  spec.memory_bound_fraction = 0.0;
  Rng rng(5);
  const auto w = generate_workload(spec, rng);
  for (const auto& p : w.phases()) EXPECT_GE(p.oi, 1.0) << p.name;
}

TEST(GeneratorTest, MemoryBoundFractionOneMakesAllMemoryBound) {
  GeneratorSpec spec;
  spec.memory_bound_fraction = 1.0;
  Rng rng(6);
  const auto w = generate_workload(spec, rng);
  for (const auto& p : w.phases()) EXPECT_LT(p.oi, 1.0) << p.name;
}

TEST(GeneratorTest, DeterministicGivenRngState) {
  GeneratorSpec spec;
  Rng a(9);
  Rng b(9);
  const auto wa = generate_workload(spec, a);
  const auto wb = generate_workload(spec, b);
  ASSERT_EQ(wa.phases().size(), wb.phases().size());
  for (std::size_t i = 0; i < wa.phases().size(); ++i) {
    EXPECT_DOUBLE_EQ(wa.phases()[i].gflops_ref, wb.phases()[i].gflops_ref);
    EXPECT_DOUBLE_EQ(wa.phases()[i].oi, wb.phases()[i].oi);
  }
  EXPECT_EQ(wa.sequence(), wb.sequence());
}

TEST(GeneratorTest, InvalidSpecRejected) {
  Rng rng(1);
  GeneratorSpec bad;
  bad.phase_count = 0;
  EXPECT_THROW(generate_workload(bad, rng), std::invalid_argument);

  bad = GeneratorSpec{};
  bad.min_phase_seconds = 2.0;
  bad.max_phase_seconds = 1.0;
  EXPECT_THROW(generate_workload(bad, rng), std::invalid_argument);

  bad = GeneratorSpec{};
  bad.memory_bound_fraction = 1.5;
  EXPECT_THROW(generate_workload(bad, rng), std::invalid_argument);
}

}  // namespace
}  // namespace dufp::workloads
