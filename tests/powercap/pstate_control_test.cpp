#include "powercap/pstate_control.h"

#include <gtest/gtest.h>

#include "hwmodel/socket_model.h"
#include "msr/sim_msr.h"
#include "rapl/rapl_engine.h"

namespace dufp::powercap {
namespace {

class PstateControlTest : public ::testing::Test {
 protected:
  PstateControlTest()
      : socket_(cfg_, 0), dev_(cfg_.cores), engine_(socket_, dev_),
        ctl_(dev_) {
    hw::PhaseDemand d;
    d.w_cpu = 0.9;
    d.w_mem = 0.05;
    d.w_fixed = 0.05;
    d.flops_rate_ref = 1e9;
    d.bytes_rate_ref = 1e9;
    socket_.set_demand(d);
  }

  hw::SocketConfig cfg_;
  hw::SocketModel socket_;
  msr::SimulatedMsr dev_;
  rapl::RaplEngine engine_;
  PstateControl ctl_;
};

TEST_F(PstateControlTest, InitialRequestIsMaximum) {
  EXPECT_DOUBLE_EQ(ctl_.requested_mhz(), 2800.0);
}

TEST_F(PstateControlTest, RequestLowersEffectiveClock) {
  ctl_.set_mhz(2100.0);
  EXPECT_DOUBLE_EQ(ctl_.requested_mhz(), 2100.0);
  EXPECT_DOUBLE_EQ(socket_.effective_core_mhz(), 2100.0);
}

TEST_F(PstateControlTest, ReleaseRestoresMaximum) {
  ctl_.set_mhz(1500.0);
  ctl_.release(2800.0);
  EXPECT_DOUBLE_EQ(socket_.effective_core_mhz(), 2800.0);
}

TEST_F(PstateControlTest, RequestQuantizedTo100Mhz) {
  ctl_.set_mhz(2149.0);
  EXPECT_DOUBLE_EQ(ctl_.requested_mhz(), 2100.0);
  ctl_.set_mhz(2150.0);
  EXPECT_DOUBLE_EQ(ctl_.requested_mhz(), 2200.0);
}

TEST_F(PstateControlTest, RaplLimitStillWins) {
  // The effective clock is min(user request, RAPL limit).
  ctl_.set_mhz(2500.0);
  socket_.set_core_freq_limit_mhz(1800.0);
  EXPECT_DOUBLE_EQ(socket_.effective_core_mhz(), 1800.0);
  socket_.set_core_freq_limit_mhz(2800.0);
  EXPECT_DOUBLE_EQ(socket_.effective_core_mhz(), 2500.0);
}

TEST_F(PstateControlTest, NonPositiveRequestRejected) {
  EXPECT_THROW(ctl_.set_mhz(0.0), std::invalid_argument);
}

TEST_F(PstateControlTest, PerfCtlEncodingRoundTrip) {
  using namespace dufp::msr;
  for (unsigned ratio : {10u, 21u, 28u}) {
    EXPECT_EQ(decode_perf_ctl(encode_perf_ctl(ratio)), ratio);
  }
  EXPECT_THROW(encode_perf_ctl(256), std::invalid_argument);
}

}  // namespace
}  // namespace dufp::powercap
