#include "powercap/zone.h"

#include <gtest/gtest.h>

#include <string>

#include "common/units.h"
#include "hwmodel/socket_model.h"
#include "msr/registers.h"
#include "msr/sim_msr.h"
#include "rapl/rapl_engine.h"

namespace dufp::powercap {
namespace {

class ZoneTest : public ::testing::Test {
 protected:
  ZoneTest()
      : socket_(cfg_, 0),
        dev_(cfg_.cores),
        engine_(socket_, dev_),
        pkg_(dev_, 0),
        dram_(dev_, 0) {}

  hw::SocketConfig cfg_;
  hw::SocketModel socket_;
  msr::SimulatedMsr dev_;
  rapl::RaplEngine engine_;
  PackageZone pkg_;
  DramZone dram_;
};

TEST_F(ZoneTest, NamesFollowIntelRaplConvention) {
  EXPECT_EQ(pkg_.name(), "intel-rapl:0");
  EXPECT_EQ(dram_.name(), "intel-rapl:0:0");
  EXPECT_EQ(PackageZone(dev_, 2).name(), "intel-rapl:2");
}

TEST_F(ZoneTest, ConstraintNames) {
  EXPECT_EQ(pkg_.num_constraints(), 2);
  EXPECT_EQ(pkg_.constraint_name(0), "long_term");
  EXPECT_EQ(pkg_.constraint_name(1), "short_term");
  EXPECT_EQ(dram_.num_constraints(), 1);
  EXPECT_EQ(dram_.constraint_name(0), "long_term");
  EXPECT_THROW(pkg_.constraint_name(2), std::invalid_argument);
}

TEST_F(ZoneTest, DefaultLimitsMatchTableI) {
  EXPECT_DOUBLE_EQ(pkg_.power_limit_w(ConstraintId::long_term), 125.0);
  EXPECT_DOUBLE_EQ(pkg_.power_limit_w(ConstraintId::short_term), 150.0);
}

TEST_F(ZoneTest, MicrowattInterfaceRoundTrips) {
  pkg_.set_power_limit_uw(0, 110'000'000ull);
  EXPECT_EQ(pkg_.power_limit_uw(0), 110'000'000ull);
  // Quantized to 1/8 W internally, so an off-grid value is rounded.
  pkg_.set_power_limit_uw(0, 110'060'000ull);
  const double w = uw_to_watts(pkg_.power_limit_uw(0));
  EXPECT_NEAR(w, 110.06, 0.0625);
}

TEST_F(ZoneTest, WattConvenienceSettersWork) {
  pkg_.set_power_limit_w(ConstraintId::long_term, 95.0);
  pkg_.set_power_limit_w(ConstraintId::short_term, 95.0);
  EXPECT_DOUBLE_EQ(pkg_.power_limit_w(ConstraintId::long_term), 95.0);
  EXPECT_DOUBLE_EQ(pkg_.power_limit_w(ConstraintId::short_term), 95.0);
  // The governor received both.
  EXPECT_DOUBLE_EQ(engine_.governor().limit().long_term_w, 95.0);
  EXPECT_DOUBLE_EQ(engine_.governor().limit().short_term_w, 95.0);
}

TEST_F(ZoneTest, SettingOneConstraintPreservesTheOther) {
  pkg_.set_power_limit_w(ConstraintId::long_term, 100.0);
  EXPECT_DOUBLE_EQ(pkg_.power_limit_w(ConstraintId::short_term), 150.0);
}

TEST_F(ZoneTest, TimeWindows) {
  // Defaults: ~1 s long term, ~10 ms short term (Table I text).
  EXPECT_NEAR(pkg_.time_window_s(ConstraintId::long_term), 1.0, 0.05);
  EXPECT_NEAR(pkg_.time_window_s(ConstraintId::short_term), 0.01, 0.003);
  pkg_.set_time_window_us(0, 500'000);
  EXPECT_NEAR(pkg_.time_window_s(ConstraintId::long_term), 0.5, 0.1);
}

TEST_F(ZoneTest, EnergyCounterReflectsConsumption) {
  hw::PhaseDemand d;
  d.w_cpu = 0.8;
  d.w_mem = 0.1;
  d.w_fixed = 0.1;
  d.cpu_activity = 1.0;
  d.mem_activity = 0.5;
  d.flops_rate_ref = 10e9;
  d.bytes_rate_ref = 20e9;
  socket_.set_demand(d);
  const auto e0 = pkg_.energy_uj();
  socket_.accumulate(socket_.evaluate(), 1.0);
  const auto e1 = pkg_.energy_uj();
  EXPECT_NEAR(uj_to_joules(e1 - e0), socket_.pkg_energy_j(), 0.01);

  const auto d0 = dram_.energy_uj();
  socket_.accumulate(socket_.evaluate(), 1.0);
  EXPECT_GT(dram_.energy_uj(), d0);
}

TEST_F(ZoneTest, MaxEnergyRangeIs32BitTimesUnit) {
  // 2^32 * (1/2^14) J = 262144 J = 2.62144e11 uJ.
  EXPECT_EQ(pkg_.max_energy_range_uj(), 262'144'000'000ull);
  EXPECT_EQ(dram_.max_energy_range_uj(), pkg_.max_energy_range_uj());
}

TEST_F(ZoneTest, EnableFlags) {
  EXPECT_TRUE(pkg_.enabled());
  pkg_.set_enabled(false);
  EXPECT_FALSE(pkg_.enabled());
  pkg_.set_enabled(true);
  EXPECT_TRUE(pkg_.enabled());
}

TEST_F(ZoneTest, TdpReported) { EXPECT_DOUBLE_EQ(pkg_.tdp_w(), 125.0); }

TEST_F(ZoneTest, DramZoneIsInert) {
  EXPECT_FALSE(dram_.enabled());
  dram_.set_enabled(true);  // no-op by design
  EXPECT_FALSE(dram_.enabled());
  dram_.set_power_limit_w(ConstraintId::long_term, 12.0);
  EXPECT_DOUBLE_EQ(dram_.power_limit_w(ConstraintId::long_term), 12.0);
  dram_.set_time_window_us(0, 1'000'000);
  EXPECT_NEAR(static_cast<double>(dram_.time_window_us(0)), 1e6, 2e5);
}

TEST_F(ZoneTest, InvalidConstraintIndexThrows) {
  EXPECT_THROW(pkg_.power_limit_uw(2), std::invalid_argument);
  EXPECT_THROW(dram_.power_limit_uw(1), std::invalid_argument);
  EXPECT_THROW(pkg_.set_power_limit_uw(5, 1), std::invalid_argument);
}

TEST_F(ZoneTest, NonPositiveWattLimitRejected) {
  EXPECT_THROW(pkg_.set_power_limit_w(ConstraintId::long_term, 0.0),
               std::invalid_argument);
}

TEST_F(ZoneTest, EnergyDeltaHandlesSingleWrap) {
  const std::uint64_t range = pkg_.max_energy_range_uj();
  EXPECT_EQ(pkg_.energy_delta_uj(100, 400), 300u);
  // 500 uJ before the wrap point to 700 uJ after it: 1200 uJ elapsed.
  EXPECT_EQ(pkg_.energy_delta_uj(range - 500, 700), 1200u);
  // Naive subtraction would have produced a ~2.6e11 uJ monster here.
  EXPECT_LT(pkg_.energy_delta_uj(range - 1, 0), range);
}

TEST_F(ZoneTest, LockedPowerLimitRegisterRejectsWrites) {
  // Set the PL lock bit (bit 63) the way locked BIOSes leave it; from
  // then on every limit write must fault and leave the limits untouched.
  dev_.poke(msr::kMsrPkgPowerLimit,
            dev_.peek(msr::kMsrPkgPowerLimit) | (1ULL << 63));
  EXPECT_THROW(pkg_.set_power_limit_w(ConstraintId::long_term, 100.0),
               msr::MsrError);
  EXPECT_DOUBLE_EQ(pkg_.power_limit_w(ConstraintId::long_term), 125.0);
  try {
    pkg_.set_power_limit_w(ConstraintId::short_term, 90.0);
    FAIL() << "expected MsrError";
  } catch (const msr::MsrError& e) {
    EXPECT_NE(std::string(e.what()).find("lock"), std::string::npos);
  }
}

}  // namespace
}  // namespace dufp::powercap
