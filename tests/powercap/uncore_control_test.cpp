#include "powercap/uncore_control.h"

#include <gtest/gtest.h>

#include "hwmodel/socket_model.h"
#include "msr/sim_msr.h"
#include "rapl/rapl_engine.h"

namespace dufp::powercap {
namespace {

class UncoreControlTest : public ::testing::Test {
 protected:
  UncoreControlTest()
      : socket_(cfg_, 0), dev_(cfg_.cores), engine_(socket_, dev_),
        ctl_(dev_) {
    hw::PhaseDemand d;
    d.w_cpu = 0.5;
    d.w_mem = 0.4;
    d.w_fixed = 0.1;
    d.flops_rate_ref = 1e9;
    d.bytes_rate_ref = 1e9;
    d.mem_activity = 1.0;
    socket_.set_demand(d);  // busy: default UFS pegs the window max
  }

  hw::SocketConfig cfg_;
  hw::SocketModel socket_;
  msr::SimulatedMsr dev_;
  rapl::RaplEngine engine_;
  UncoreControl ctl_;
};

TEST_F(UncoreControlTest, InitialWindowIsHardwareRange) {
  EXPECT_DOUBLE_EQ(ctl_.window_min_mhz(), 1200.0);
  EXPECT_DOUBLE_EQ(ctl_.window_max_mhz(), 2400.0);
}

TEST_F(UncoreControlTest, PinSetsBothBounds) {
  ctl_.pin_mhz(1800.0);
  EXPECT_DOUBLE_EQ(ctl_.window_min_mhz(), 1800.0);
  EXPECT_DOUBLE_EQ(ctl_.window_max_mhz(), 1800.0);
  EXPECT_DOUBLE_EQ(socket_.effective_uncore_mhz(), 1800.0);
}

TEST_F(UncoreControlTest, CurrentMhzReadsPerfStatus) {
  ctl_.pin_mhz(1500.0);
  EXPECT_DOUBLE_EQ(ctl_.current_mhz(), 1500.0);
  ctl_.pin_mhz(2400.0);
  EXPECT_DOUBLE_EQ(ctl_.current_mhz(), 2400.0);
}

TEST_F(UncoreControlTest, WindowAllowsRange) {
  ctl_.set_window_mhz(1400.0, 2000.0);
  EXPECT_DOUBLE_EQ(ctl_.window_min_mhz(), 1400.0);
  EXPECT_DOUBLE_EQ(ctl_.window_max_mhz(), 2000.0);
  // Busy socket pegs the max of the window.
  EXPECT_DOUBLE_EQ(socket_.effective_uncore_mhz(), 2000.0);
}

TEST_F(UncoreControlTest, InvalidWindowRejected) {
  EXPECT_THROW(ctl_.set_window_mhz(2000.0, 1500.0), std::invalid_argument);
  EXPECT_THROW(ctl_.set_window_mhz(0.0, 1500.0), std::invalid_argument);
}

TEST_F(UncoreControlTest, RatioGranularityIs100Mhz) {
  ctl_.pin_mhz(1849.0);  // rounds to ratio 18
  EXPECT_DOUBLE_EQ(ctl_.window_max_mhz(), 1800.0);
}

}  // namespace
}  // namespace dufp::powercap
