#include "hwmodel/power_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "hwmodel/socket_config.h"

namespace dufp::hw {
namespace {

PhaseDemand compute_demand() {
  PhaseDemand d;
  d.w_cpu = 0.95;
  d.w_mem = 0.0;
  d.w_unc = 0.0;
  d.w_fixed = 0.05;
  d.cpu_activity = 1.0;
  d.mem_activity = 0.1;
  return d;
}

PhaseDemand memory_demand() {
  PhaseDemand d;
  d.w_cpu = 0.1;
  d.w_mem = 0.8;
  d.w_unc = 0.05;
  d.w_fixed = 0.05;
  d.cpu_activity = 0.7;
  d.mem_activity = 1.0;
  return d;
}

class PowerModelTest : public ::testing::Test {
 protected:
  SocketConfig cfg_;
  PowerModel model_{cfg_.power, cfg_.cores, cfg_.f_ref_mhz(),
                    cfg_.fu_ref_mhz()};
};

TEST_F(PowerModelTest, ReferencePointNearTdp) {
  // A compute-heavy phase at the reference point should land close to the
  // 125 W TDP of the Gold 6130 (the paper notes default runs sit near the
  // budget).
  const double p =
      model_.package_power_w(2800.0, 2400.0, compute_demand());
  EXPECT_GT(p, 105.0);
  EXPECT_LT(p, 130.0);
}

TEST_F(PowerModelTest, MonotoneInCoreFrequency) {
  const auto d = compute_demand();
  double prev = 0.0;
  for (double f = 1000.0; f <= 2800.0; f += 100.0) {
    const double p = model_.package_power_w(f, 2400.0, d);
    EXPECT_GT(p, prev) << "at " << f;
    prev = p;
  }
}

TEST_F(PowerModelTest, MonotoneInUncoreFrequency) {
  const auto d = memory_demand();
  double prev = 0.0;
  for (double f = 1200.0; f <= 2400.0; f += 100.0) {
    const double p = model_.package_power_w(2800.0, f, d);
    EXPECT_GT(p, prev) << "at " << f;
    prev = p;
  }
}

TEST_F(PowerModelTest, DiminishingReturnsBelowVoltageFloor) {
  // Per 100 MHz, the watts saved above the voltage floor exceed the watts
  // saved below it (the Sec. IV-A rationale for the 65 W cap floor).
  const auto d = compute_demand();
  const double high = model_.package_power_w(2800.0, 2400.0, d) -
                      model_.package_power_w(2700.0, 2400.0, d);
  const double low = model_.package_power_w(1300.0, 2400.0, d) -
                     model_.package_power_w(1200.0, 2400.0, d);
  EXPECT_GT(high, low * 1.5);
}

TEST_F(PowerModelTest, UncoreSpanSupportsEpStory) {
  // Dropping the uncore from max to min on a compute phase must recover
  // roughly 15-25 % of package power — EP's headline result.
  const auto d = compute_demand();
  const double at_max = model_.package_power_w(2800.0, 2400.0, d);
  const double at_min = model_.package_power_w(2800.0, 1200.0, d);
  const double saving = (at_max - at_min) / at_max;
  EXPECT_GT(saving, 0.12);
  EXPECT_LT(saving, 0.30);
}

TEST_F(PowerModelTest, ActivityRaisesCorePower) {
  auto lo = compute_demand();
  lo.cpu_activity = 0.5;
  const auto hi = compute_demand();
  EXPECT_LT(model_.core_power_w(2800.0, lo), model_.core_power_w(2800.0, hi));
}

TEST_F(PowerModelTest, TrafficRaisesUncorePowerIndependentlyOfClock) {
  auto idle = compute_demand();
  idle.mem_activity = 0.0;
  auto busy = compute_demand();
  busy.mem_activity = 1.0;
  const double delta_at_max = model_.uncore_power_w(2400.0, busy) -
                              model_.uncore_power_w(2400.0, idle);
  const double delta_at_min = model_.uncore_power_w(1200.0, busy) -
                              model_.uncore_power_w(1200.0, idle);
  // IMC/PHY power is traffic-proportional, not clock-proportional.
  EXPECT_NEAR(delta_at_max, delta_at_min, 1e-9);
  EXPECT_NEAR(delta_at_max, cfg_.power.uncore_act_w, 1e-9);
}

TEST_F(PowerModelTest, DramPowerLinearInBandwidth) {
  const double p0 = model_.dram_power_w(0.0);
  const double p1 = model_.dram_power_w(50e9);
  const double p2 = model_.dram_power_w(100e9);
  EXPECT_DOUBLE_EQ(p0, cfg_.power.dram_background_w);
  EXPECT_NEAR(p2 - p1, p1 - p0, 1e-9);
}

TEST_F(PowerModelTest, InverseMatchesForward) {
  const auto d = compute_demand();
  const double unconstrained = model_.package_power_w(2800.0, 2400.0, d);
  for (double target = 70.0; target <= unconstrained - 2.0; target += 5.0) {
    const double f = model_.core_mhz_for_power(target, 2400.0, d);
    ASSERT_TRUE(std::isfinite(f));
    EXPECT_NEAR(model_.package_power_w(f, 2400.0, d), target, 0.01)
        << "target " << target;
  }
}

TEST_F(PowerModelTest, InverseInLinearRegion) {
  const auto d = compute_demand();
  // Target well below the voltage-floor knee power.
  const double f = model_.core_mhz_for_power(50.0, 1200.0, d);
  if (f > 0.0 && std::isfinite(f)) {
    EXPECT_NEAR(model_.package_power_w(f, 1200.0, d), 50.0, 0.5);
  }
}

TEST_F(PowerModelTest, InverseSaturatesAboveDemand) {
  const auto d = compute_demand();
  const double unconstrained = model_.package_power_w(2800.0, 2400.0, d);
  EXPECT_DOUBLE_EQ(
      model_.core_mhz_for_power(unconstrained + 50.0, 2400.0, d), 2800.0);
}

TEST_F(PowerModelTest, InverseZeroWhenImpossible) {
  const auto d = compute_demand();
  EXPECT_DOUBLE_EQ(model_.core_mhz_for_power(5.0, 2400.0, d), 0.0);
}

TEST_F(PowerModelTest, RejectsNonPositiveFrequency) {
  const auto d = compute_demand();
  EXPECT_THROW(model_.package_power_w(0.0, 2400.0, d),
               std::invalid_argument);
  EXPECT_THROW(model_.package_power_w(2800.0, -1.0, d),
               std::invalid_argument);
}

// Parameterized sweep: the forward/inverse pair must agree at every
// operating point and activity level.
struct InverseCase {
  double uncore_mhz;
  double activity;
};

class PowerModelInverseSweep
    : public ::testing::TestWithParam<InverseCase> {};

TEST_P(PowerModelInverseSweep, RoundTrip) {
  const SocketConfig cfg;
  const PowerModel model(cfg.power, cfg.cores, cfg.f_ref_mhz(),
                         cfg.fu_ref_mhz());
  PhaseDemand d = compute_demand();
  d.cpu_activity = GetParam().activity;
  const double fu = GetParam().uncore_mhz;
  // Stop one step below the reference clock: at the top the inverse is
  // defined to clamp, not to round-trip.
  for (double f = 1000.0; f <= 2600.0; f += 200.0) {
    const double p = model.package_power_w(f, fu, d);
    const double back = model.core_mhz_for_power(p, fu, d);
    ASSERT_TRUE(std::isfinite(back));
    EXPECT_NEAR(back, f, 1.0) << "f=" << f << " fu=" << fu;
  }
}

INSTANTIATE_TEST_SUITE_P(
    OperatingPoints, PowerModelInverseSweep,
    ::testing::Values(InverseCase{1200.0, 0.5}, InverseCase{1200.0, 1.0},
                      InverseCase{1800.0, 0.7}, InverseCase{2400.0, 0.5},
                      InverseCase{2400.0, 1.0}, InverseCase{2400.0, 1.2}));

}  // namespace
}  // namespace dufp::hw
