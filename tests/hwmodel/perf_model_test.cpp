#include "hwmodel/perf_model.h"

#include <gtest/gtest.h>

#include "hwmodel/socket_config.h"

namespace dufp::hw {
namespace {

PhaseDemand mem_demand(double w_mem = 0.8) {
  PhaseDemand d;
  d.w_cpu = 0.1;
  d.w_mem = w_mem;
  d.w_unc = 0.05;
  d.w_fixed = 1.0 - 0.1 - w_mem - 0.05;
  d.mem_activity = 1.0;
  return d;
}

PhaseDemand cpu_demand() {
  PhaseDemand d;
  d.w_cpu = 0.95;
  d.w_mem = 0.0;
  d.w_unc = 0.0;
  d.w_fixed = 0.05;
  d.mem_activity = 0.05;
  return d;
}

class PerfModelTest : public ::testing::Test {
 protected:
  SocketConfig cfg_;
  PerfModel model_{cfg_.memory, cfg_.f_ref_mhz(), cfg_.fu_ref_mhz()};
};

TEST_F(PerfModelTest, ReferenceSpeedIsOne) {
  EXPECT_NEAR(model_.speed(2800.0, 2400.0, mem_demand()), 1.0, 1e-9);
  EXPECT_NEAR(model_.speed(2800.0, 2400.0, cpu_demand()), 1.0, 1e-9);
}

TEST_F(PerfModelTest, BandwidthSaturatesAboveFuSat) {
  // Above the saturation uncore frequency the DRAM channels are the
  // bottleneck: the last 200 MHz of uncore are free.
  const double at_sat = model_.bandwidth_bps(2800.0, cfg_.memory.fu_sat_mhz);
  const double at_max = model_.bandwidth_bps(2800.0, 2400.0);
  EXPECT_DOUBLE_EQ(at_sat, at_max);
}

TEST_F(PerfModelTest, BandwidthLinearBelowSaturation) {
  const double b20 = model_.bandwidth_bps(2800.0, 2000.0);
  const double b10 = model_.bandwidth_bps(2800.0, 1000.0);
  EXPECT_NEAR(b20 / b10, 2.0, 1e-9);
}

TEST_F(PerfModelTest, LowCoreClockCostsBandwidth) {
  // Memory-level parallelism shrinks with core frequency — the paper's
  // rationale for the 65 W minimum cap (Sec. IV-A).
  const double full = model_.bandwidth_bps(2800.0, 2400.0);
  const double slow = model_.bandwidth_bps(1000.0, 2400.0);
  EXPECT_LT(slow, full);
  EXPECT_GT(slow, 0.5 * full);
}

TEST_F(PerfModelTest, CpuPhaseInsensitiveToUncore) {
  const double fast = model_.speed(2800.0, 2400.0, cpu_demand());
  const double slow = model_.speed(2800.0, 1200.0, cpu_demand());
  EXPECT_GT(slow / fast, 0.99);  // EP's story
}

TEST_F(PerfModelTest, MemPhaseLessSensitiveToCoreClockThanCpuPhase) {
  const double mem_ratio = model_.speed(2000.0, 2400.0, mem_demand()) /
                           model_.speed(2800.0, 2400.0, mem_demand());
  const double cpu_ratio = model_.speed(2000.0, 2400.0, cpu_demand()) /
                           model_.speed(2800.0, 2400.0, cpu_demand());
  // The w_cpu=0.1 component plus the lost memory-level parallelism cost
  // some speed, but far less than a compute phase loses.
  EXPECT_GT(mem_ratio, 0.80);
  EXPECT_GT(mem_ratio, cpu_ratio + 0.10);
}

TEST_F(PerfModelTest, CpuPhaseScalesWithCoreClock) {
  const double half = model_.speed(1400.0, 2400.0, cpu_demand());
  // w_cpu = 0.95 at half clock: dilation = 0.95*2 + 0.05 = 1.95.
  EXPECT_NEAR(1.0 / half, 1.95, 1e-6);
}

TEST_F(PerfModelTest, UncoreLatencyComponent) {
  PhaseDemand d;
  d.w_cpu = 0.0;
  d.w_mem = 0.0;
  d.w_unc = 1.0;
  d.w_fixed = 0.0;
  const double s = model_.speed(2800.0, 1200.0, d);
  EXPECT_NEAR(1.0 / s, 2.0, 1e-9);  // pure uncore-latency work
}

TEST_F(PerfModelTest, DilationIsInverseSpeed) {
  const auto d = mem_demand();
  const double s = model_.speed(2100.0, 1800.0, d);
  const double dil = model_.dilation(2100.0, 1800.0, d);
  EXPECT_NEAR(s * dil, 1.0, 1e-12);
}

TEST_F(PerfModelTest, SpeedMonotoneInBothClocks) {
  const auto d = mem_demand(0.5);
  double prev = 0.0;
  for (double f = 1000.0; f <= 2800.0; f += 300.0) {
    const double s = model_.speed(f, 2000.0, d);
    EXPECT_GT(s, prev);
    prev = s;
  }
  prev = 0.0;
  for (double fu = 1200.0; fu <= 2200.0; fu += 200.0) {
    const double s = model_.speed(2800.0, fu, d);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST_F(PerfModelTest, TrafficFactorOneAtReference) {
  EXPECT_DOUBLE_EQ(model_.traffic_factor(2400.0, mem_demand()), 1.0);
}

TEST_F(PerfModelTest, TrafficFactorDropsWithUncoreOnBusyMemory) {
  const double f = model_.traffic_factor(1200.0, mem_demand());
  EXPECT_LT(f, 1.0);
  EXPECT_NEAR(f, 1.0 - cfg_.memory.prefetch_coeff * 0.5, 1e-9);
}

TEST_F(PerfModelTest, TrafficFactorNegligibleOnQuietMemory) {
  // EP-style phases: prefetchers are idle, so the factor stays ~1 and the
  // bandwidth guard sees no artificial drop.
  const double f = model_.traffic_factor(1200.0, cpu_demand());
  EXPECT_GT(f, 0.999);
}

TEST_F(PerfModelTest, RejectsNonPositiveClocks) {
  EXPECT_THROW(model_.speed(0.0, 2400.0, mem_demand()),
               std::invalid_argument);
  EXPECT_THROW(model_.bandwidth_bps(2800.0, 0.0), std::invalid_argument);
}

// Property sweep: dilation decomposition must equal the weighted sum of
// its components for arbitrary weight mixes.
class PerfModelWeightSweep : public ::testing::TestWithParam<double> {};

TEST_P(PerfModelWeightSweep, DecompositionExact) {
  const SocketConfig cfg;
  const PerfModel model(cfg.memory, cfg.f_ref_mhz(), cfg.fu_ref_mhz());
  const double w_cpu = GetParam();
  PhaseDemand d;
  d.w_cpu = w_cpu;
  d.w_mem = (1.0 - w_cpu) * 0.6;
  d.w_unc = (1.0 - w_cpu) * 0.2;
  d.w_fixed = 1.0 - d.w_cpu - d.w_mem - d.w_unc;

  const double fc = 2100.0;
  const double fu = 1700.0;
  const double expected =
      d.w_cpu * (2800.0 / fc) +
      d.w_mem * (model.ref_bandwidth_bps() / model.bandwidth_bps(fc, fu)) +
      d.w_unc * (2400.0 / fu) + d.w_fixed;
  EXPECT_NEAR(model.dilation(fc, fu, d), expected, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Weights, PerfModelWeightSweep,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5, 0.7, 0.9,
                                           1.0));

}  // namespace
}  // namespace dufp::hw
