#include "hwmodel/socket_model.h"

#include <gtest/gtest.h>

namespace dufp::hw {
namespace {

PhaseDemand demand(double w_cpu, double w_mem, double cpu_act,
                   double mem_act) {
  PhaseDemand d;
  d.w_cpu = w_cpu;
  d.w_mem = w_mem;
  d.w_unc = 0.0;
  d.w_fixed = 1.0 - w_cpu - w_mem;
  d.flops_rate_ref = 50e9;
  d.bytes_rate_ref = 25e9;
  d.cpu_activity = cpu_act;
  d.mem_activity = mem_act;
  return d;
}

class SocketModelTest : public ::testing::Test {
 protected:
  SocketConfig cfg_;
  SocketModel socket_{cfg_, 0};
};

TEST_F(SocketModelTest, InitialStateIsUnconstrained) {
  EXPECT_DOUBLE_EQ(socket_.core_freq_limit_mhz(), 2800.0);
  EXPECT_DOUBLE_EQ(socket_.uncore_window_min_mhz(), 1200.0);
  EXPECT_DOUBLE_EQ(socket_.uncore_window_max_mhz(), 2400.0);
}

TEST_F(SocketModelTest, QuantizesCoreFrequency) {
  EXPECT_DOUBLE_EQ(socket_.quantize_core_mhz(2749.0), 2700.0);
  EXPECT_DOUBLE_EQ(socket_.quantize_core_mhz(2751.0), 2800.0);
  EXPECT_DOUBLE_EQ(socket_.quantize_core_mhz(5000.0), 2800.0);
  EXPECT_DOUBLE_EQ(socket_.quantize_core_mhz(100.0), 1000.0);
}

TEST_F(SocketModelTest, QuantizesUncoreFrequency) {
  EXPECT_DOUBLE_EQ(socket_.quantize_uncore_mhz(1849.0), 1800.0);
  EXPECT_DOUBLE_EQ(socket_.quantize_uncore_mhz(9999.0), 2400.0);
  EXPECT_DOUBLE_EQ(socket_.quantize_uncore_mhz(0.0), 1200.0);
}

TEST_F(SocketModelTest, IdleDemandDropsUncoreToWindowMin) {
  socket_.set_demand(PhaseDemand::make_idle());
  EXPECT_DOUBLE_EQ(socket_.effective_uncore_mhz(), 1200.0);
}

TEST_F(SocketModelTest, BusyDemandPegsUncoreAtWindowMax) {
  // The conservative default Skylake UFS behaviour the paper criticizes.
  socket_.set_demand(demand(0.5, 0.4, 0.9, 0.9));
  EXPECT_DOUBLE_EQ(socket_.effective_uncore_mhz(), 2400.0);
  socket_.set_uncore_window_mhz(1200.0, 1800.0);
  EXPECT_DOUBLE_EQ(socket_.effective_uncore_mhz(), 1800.0);
}

TEST_F(SocketModelTest, PinnedUncoreWindow) {
  socket_.set_demand(demand(0.5, 0.4, 0.9, 0.9));
  socket_.set_uncore_window_mhz(1700.0, 1700.0);
  EXPECT_DOUBLE_EQ(socket_.effective_uncore_mhz(), 1700.0);
}

TEST_F(SocketModelTest, ReversedUncoreWindowNormalized) {
  socket_.set_uncore_window_mhz(2200.0, 1400.0);
  EXPECT_LE(socket_.uncore_window_min_mhz(), socket_.uncore_window_max_mhz());
}

TEST_F(SocketModelTest, CoreLimitCapsEffectiveClock) {
  socket_.set_demand(demand(0.9, 0.05, 1.0, 0.2));
  socket_.set_core_freq_limit_mhz(2100.0);
  EXPECT_DOUBLE_EQ(socket_.effective_core_mhz(), 2100.0);
  socket_.set_core_freq_limit_mhz(9999.0);
  EXPECT_DOUBLE_EQ(socket_.effective_core_mhz(), 2800.0);
}

TEST_F(SocketModelTest, EvaluateIsConsistent) {
  const auto d = demand(0.6, 0.3, 0.9, 0.8);
  socket_.set_demand(d);
  const auto inst = socket_.evaluate();
  EXPECT_DOUBLE_EQ(inst.core_mhz, 2800.0);
  EXPECT_DOUBLE_EQ(inst.uncore_mhz, 2400.0);
  EXPECT_NEAR(inst.speed, 1.0, 1e-9);
  EXPECT_NEAR(inst.flops_rate, 50e9, 1e-3);
  EXPECT_NEAR(inst.bytes_rate, 25e9, 1e-3);
  EXPECT_GT(inst.pkg_power_w, 50.0);
  EXPECT_GT(inst.dram_power_w, 0.0);
}

TEST_F(SocketModelTest, ThrottlingSlowsAndSavesPower) {
  socket_.set_demand(demand(0.9, 0.05, 1.0, 0.3));
  const auto full = socket_.evaluate();
  socket_.set_core_freq_limit_mhz(1800.0);
  const auto limited = socket_.evaluate();
  EXPECT_LT(limited.speed, full.speed);
  EXPECT_LT(limited.pkg_power_w, full.pkg_power_w);
  EXPECT_LT(limited.flops_rate, full.flops_rate);
}

TEST_F(SocketModelTest, DemandWeightsMustSumToOne) {
  PhaseDemand d = demand(0.5, 0.4, 0.9, 0.9);
  d.w_fixed = 0.5;  // now sums to 1.4
  EXPECT_THROW(socket_.set_demand(d), std::invalid_argument);
}

TEST_F(SocketModelTest, NegativeWeightsRejected) {
  PhaseDemand d = demand(0.5, 0.4, 0.9, 0.9);
  d.w_cpu = -0.1;
  d.w_fixed = 0.7;
  EXPECT_THROW(socket_.set_demand(d), std::invalid_argument);
}

TEST_F(SocketModelTest, AccumulateIntegratesGroundTruth) {
  socket_.set_demand(demand(0.6, 0.3, 0.9, 0.8));
  const auto inst = socket_.evaluate();
  socket_.accumulate(inst, 2.0);
  EXPECT_NEAR(socket_.pkg_energy_j(), inst.pkg_power_w * 2.0, 1e-9);
  EXPECT_NEAR(socket_.dram_energy_j(), inst.dram_power_w * 2.0, 1e-9);
  EXPECT_NEAR(socket_.flops_total(), inst.flops_rate * 2.0, 1.0);
  EXPECT_NEAR(socket_.bytes_total(), inst.bytes_rate * 2.0, 1.0);
}

TEST_F(SocketModelTest, AperfMperfTrackClocks) {
  socket_.set_demand(demand(0.9, 0.05, 1.0, 0.2));
  socket_.set_core_freq_limit_mhz(2100.0);
  const auto inst = socket_.evaluate();
  socket_.accumulate(inst, 1.0);
  // APERF counts actual cycles (2.1 GHz), MPERF base cycles (2.1 GHz
  // nominal on the 6130): ratio = fc / base.
  const double ratio = static_cast<double>(socket_.aperf_cycles()) /
                       static_cast<double>(socket_.mperf_cycles());
  EXPECT_NEAR(ratio, 2100.0 / cfg_.core_base_mhz, 1e-6);
}

TEST_F(SocketModelTest, PackagePowerAtMatchesEvaluate) {
  socket_.set_demand(demand(0.7, 0.2, 0.95, 0.6));
  socket_.set_core_freq_limit_mhz(2300.0);
  const auto inst = socket_.evaluate();
  EXPECT_NEAR(socket_.package_power_at(2300.0), inst.pkg_power_w, 1e-9);
}

TEST_F(SocketModelTest, CoreMhzForPowerRespectsCurrentUncore) {
  socket_.set_demand(demand(0.9, 0.05, 1.0, 0.3));
  const double f_full = socket_.core_mhz_for_power(100.0);
  socket_.set_uncore_window_mhz(1200.0, 1200.0);
  const double f_low_uncore = socket_.core_mhz_for_power(100.0);
  // Lower uncore leaves more budget for the cores.
  EXPECT_GT(f_low_uncore, f_full);
}

}  // namespace
}  // namespace dufp::hw
