#include "hwmodel/machine_model.h"

#include <gtest/gtest.h>

namespace dufp::hw {
namespace {

TEST(MachineModelTest, DefaultIsYeti2) {
  const MachineConfig cfg;
  EXPECT_EQ(cfg.sockets, 4);
  EXPECT_EQ(cfg.socket.cores, 16);
  EXPECT_EQ(cfg.name, "yeti-2");
  MachineModel m(cfg);
  EXPECT_EQ(m.socket_count(), 4);
}

TEST(MachineModelTest, SocketsHaveDistinctIds) {
  MachineModel m{MachineConfig{}};
  for (int i = 0; i < m.socket_count(); ++i) {
    EXPECT_EQ(m.socket(i).socket_id(), i);
  }
}

TEST(MachineModelTest, OutOfRangeSocketThrows) {
  MachineModel m{MachineConfig{}};
  EXPECT_THROW(m.socket(4), std::invalid_argument);
  EXPECT_THROW(m.socket(-1), std::invalid_argument);
}

TEST(MachineModelTest, ZeroSocketsRejected) {
  MachineConfig cfg;
  cfg.sockets = 0;
  EXPECT_THROW(MachineModel{cfg}, std::invalid_argument);
}

TEST(MachineModelTest, TotalsSumOverSockets) {
  MachineConfig cfg;
  cfg.sockets = 2;
  MachineModel m(cfg);

  PhaseDemand d;
  d.w_cpu = 0.8;
  d.w_mem = 0.1;
  d.w_unc = 0.0;
  d.w_fixed = 0.1;
  d.cpu_activity = 1.0;
  d.mem_activity = 0.5;
  d.flops_rate_ref = 10e9;
  d.bytes_rate_ref = 5e9;

  for (int i = 0; i < 2; ++i) {
    m.socket(i).set_demand(d);
    m.socket(i).accumulate(m.socket(i).evaluate(), 1.0);
  }
  const double per_socket = m.socket(0).evaluate().pkg_power_w;
  EXPECT_NEAR(m.total_pkg_power_w(), 2.0 * per_socket, 1e-9);
  EXPECT_NEAR(m.total_pkg_energy_j(), 2.0 * per_socket, 1e-9);
  EXPECT_GT(m.total_dram_power_w(), 0.0);
  EXPECT_NEAR(m.total_dram_energy_j(),
              2.0 * m.socket(0).evaluate().dram_power_w, 1e-9);
}

TEST(MachineModelTest, SocketsAreIndependent) {
  MachineConfig cfg;
  cfg.sockets = 2;
  MachineModel m(cfg);
  m.socket(0).set_core_freq_limit_mhz(1500.0);
  EXPECT_DOUBLE_EQ(m.socket(0).core_freq_limit_mhz(), 1500.0);
  EXPECT_DOUBLE_EQ(m.socket(1).core_freq_limit_mhz(), 2800.0);
}

}  // namespace
}  // namespace dufp::hw
