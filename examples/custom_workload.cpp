// Custom workload: build an application model from a config file (or
// generate a random one) and run it under DUF / DUFP — how a user would
// study their own application's phase behaviour with this library.
//
// Usage:
//   custom_workload                         # random workload
//   custom_workload my_workload.conf 10     # from config, 10 % tolerance
//
// Config format (one phase per `phase.<n>.*` group, executed round-robin
// `loops` times):
//   loops = 20
//   phase.0.name     = stream
//   phase.0.seconds  = 0.8
//   phase.0.gflops   = 6.0
//   phase.0.oi       = 0.08
//   phase.0.w_cpu    = 0.1
//   phase.0.w_mem    = 0.8
//   phase.0.w_unc    = 0.04
//   phase.0.cpu_act  = 0.8
//   phase.0.mem_act  = 1.0
//   phase.1.name     = kernel
//   ...
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/config.h"
#include "common/rng.h"
#include "common/table.h"
#include "harness/experiment.h"
#include "harness/runner.h"
#include "workloads/generator.h"

using namespace dufp;

namespace {

workloads::WorkloadProfile from_config(const Config& cfg) {
  workloads::WorkloadProfile w("custom", "user-defined workload");
  std::vector<std::string> names;
  for (int i = 0;; ++i) {
    const std::string prefix = "phase." + std::to_string(i) + ".";
    if (!cfg.has(prefix + "name")) break;
    workloads::PhaseSpec p;
    p.name = cfg.get_string(prefix + "name", "");
    p.nominal_seconds = cfg.get_double(prefix + "seconds", 1.0);
    p.gflops_ref = cfg.get_double(prefix + "gflops", 10.0);
    p.oi = cfg.get_double(prefix + "oi", 1.0);
    p.w_cpu = cfg.get_double(prefix + "w_cpu", 0.5);
    p.w_mem = cfg.get_double(prefix + "w_mem", 0.3);
    p.w_unc = cfg.get_double(prefix + "w_unc", 0.1);
    p.w_fixed = 1.0 - p.w_cpu - p.w_mem - p.w_unc;
    p.cpu_activity = cfg.get_double(prefix + "cpu_act", 0.9);
    p.mem_activity = cfg.get_double(prefix + "mem_act", 0.8);
    w.add_phase(p);
    names.push_back(p.name);
  }
  if (names.empty()) {
    throw std::runtime_error("config defines no phases (phase.0.name = ...)");
  }
  w.loop(static_cast<int>(cfg.get_int("loops", 20)), names);
  return w;
}

workloads::WorkloadProfile random_profile() {
  Rng rng(2024);
  workloads::GeneratorSpec spec;
  spec.phase_count = 4;
  spec.sequence_length = 40;
  spec.min_phase_seconds = 0.3;
  spec.max_phase_seconds = 1.5;
  return workloads::generate_workload(spec, rng, "random");
}

}  // namespace

int main(int argc, char** argv) {
  const double tol = (argc > 2 ? std::atof(argv[2]) : 10.0) / 100.0;

  workloads::WorkloadProfile prof;
  try {
    prof = argc > 1 ? from_config(Config::load(argv[1])) : random_profile();
    prof.validate();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::printf("Workload '%s': %zu phases, %zu steps, %.1f s nominal\n\n",
              prof.name().c_str(), prof.phases().size(),
              prof.sequence().size(), prof.nominal_total_seconds());
  TextTable phases({"phase", "seconds", "GFLOP/s", "oi", "w_cpu", "w_mem",
                    "w_unc"});
  for (const auto& p : prof.phases()) {
    phases.add_row(p.name, {p.nominal_seconds, p.gflops_ref, p.oi, p.w_cpu,
                            p.w_mem, p.w_unc});
  }
  phases.print(std::cout);

  harness::RunConfig cfg = harness::default_run_config(prof);
  cfg.seed = 23;
  const int reps = 3;

  cfg.mode = harness::PolicyMode::none;
  const auto def = harness::run_repeated(cfg, reps);
  cfg.mode = harness::PolicyMode::duf;
  cfg.tolerated_slowdown = tol;
  const auto duf = harness::run_repeated(cfg, reps);
  cfg.mode = harness::PolicyMode::dufp;
  const auto dufp = harness::run_repeated(cfg, reps);

  std::printf("\nResults at %.0f %% tolerated slowdown:\n", tol * 100.0);
  TextTable t({"config", "time (s)", "slowdown %", "power (W)",
               "savings %", "energy change %"});
  auto add = [&](const char* label, const harness::RepeatedResult& r) {
    t.add_row(label,
              {r.exec_seconds.mean,
               harness::percent_over(r.exec_seconds.mean,
                                     def.exec_seconds.mean),
               r.avg_pkg_power_w.mean,
               -harness::percent_over(r.avg_pkg_power_w.mean,
                                      def.avg_pkg_power_w.mean),
               harness::percent_over(r.total_energy_j.mean,
                                     def.total_energy_j.mean)});
  };
  add("default", def);
  add("DUF", duf);
  add("DUFP", dufp);
  t.print(std::cout);
  return 0;
}
