// Machine-budget demo: distribute a machine-wide power budget across
// sockets running *different* applications — the GEOPM/DAPS family of
// related work (Sec. VI), built on this library's zones and MSR layer.
//
// Two sockets run HPL (compute-hungry) and two run CG (cap-tolerant)
// under a machine budget below 4 x 125 W.  Compared policies:
//   equal-split: every socket gets budget/4, statically;
//   balancer:    shares follow each socket's frequency depression.
//
// Usage: budget_balancer_demo [budget_w]   (default: 420)
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "common/table.h"
#include "core/budget_balancer.h"
#include "powercap/zone.h"
#include "sim/simulation.h"
#include "workloads/profiles.h"

using namespace dufp;

namespace {

struct Outcome {
  double hpl_finish_s = 0.0;
  double cg_finish_s = 0.0;
  double avg_power_w = 0.0;
};

Outcome run(double budget_w, bool balanced) {
  hw::MachineConfig machine;  // 4 sockets
  sim::SimulationOptions opts;
  opts.seed = 77;
  std::vector<const workloads::WorkloadProfile*> apps{
      &workloads::profile(workloads::AppId::hpl),
      &workloads::profile(workloads::AppId::hpl),
      &workloads::profile(workloads::AppId::cg),
      &workloads::profile(workloads::AppId::cg)};
  sim::Simulation s(machine, apps, opts);

  std::vector<std::unique_ptr<powercap::PackageZone>> zones;
  std::vector<powercap::PackageZone*> zone_ptrs;
  std::vector<const msr::MsrDevice*> msrs;
  for (int i = 0; i < s.socket_count(); ++i) {
    zones.push_back(std::make_unique<powercap::PackageZone>(s.msr(i), i));
    zone_ptrs.push_back(zones.back().get());
    msrs.push_back(&s.msr(i));
  }

  std::unique_ptr<core::BudgetBalancer> balancer;
  if (balanced) {
    core::BalancerConfig cfg;
    cfg.machine_budget_w = budget_w;
    balancer = std::make_unique<core::BudgetBalancer>(
        cfg, zone_ptrs, msrs, machine.socket.core_max_mhz,
        machine.socket.core_base_mhz);
    auto* b = balancer.get();
    s.schedule_periodic(SimTime::from_millis(200),
                        [b](SimTime now) { b->on_interval(now); });
  } else {
    const double each = budget_w / s.socket_count();
    for (auto* z : zone_ptrs) {
      z->set_power_limit_w(powercap::ConstraintId::long_term, each);
      z->set_power_limit_w(powercap::ConstraintId::short_term, each);
    }
  }

  // Step manually so per-application finish times can be recorded.
  Outcome out;
  bool more = true;
  while (more) {
    more = s.step();
    const double t = s.now().seconds();
    if (out.hpl_finish_s == 0.0 && s.workload(0).finished() &&
        s.workload(1).finished()) {
      out.hpl_finish_s = t;
    }
    if (out.cg_finish_s == 0.0 && s.workload(2).finished() &&
        s.workload(3).finished()) {
      out.cg_finish_s = t;
    }
  }
  double energy = 0.0;
  for (int i = 0; i < s.socket_count(); ++i) {
    energy += s.socket(i).pkg_energy_j();
  }
  out.avg_power_w = energy / s.now().seconds();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const double budget = argc > 1 ? std::atof(argv[1]) : 420.0;
  std::printf(
      "Machine budget %.0f W over 4 sockets (2x HPL + 2x CG); hardware\n"
      "default would be 4 x 125 = 500 W.\n\n", budget);

  const auto equal = run(budget, false);
  const auto bal = run(budget, true);

  TextTable t({"policy", "HPL finish (s)", "CG finish (s)",
               "avg power (W)"});
  t.add_row("equal split",
            {equal.hpl_finish_s, equal.cg_finish_s, equal.avg_power_w});
  t.add_row("balancer", {bal.hpl_finish_s, bal.cg_finish_s, bal.avg_power_w});
  t.print(std::cout);

  std::printf(
      "\nThe balancer steers watts toward whichever sockets are most\n"
      "frequency-starved at each moment: the compute-hungry HPL pair\n"
      "while both applications run, then the CG pair once HPL completes\n"
      "and its sockets idle.  Same total budget, better turnaround for\n"
      "the starved application — the \"complementary\"\n"
      "budget-distribution layer the paper positions DUFP under\n"
      "(Sec. VI).\n");
  return 0;
}
