// Trace replay demo: "measure" an application by tracing a simulated run
// at the controller's own cadence, rebuild a workload model from that
// trace alone (workloads/trace_replay), and check that DUFP behaves the
// same on the replayed model as on the original — the workflow a user
// would follow to study their *own* application with this library.
//
// Usage: trace_replay_demo [app]   (default: FT)
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "harness/experiment.h"
#include "harness/runner.h"
#include "sim/trace.h"
#include "workloads/profiles.h"
#include "workloads/trace_replay.h"

using namespace dufp;

int main(int argc, char** argv) {
  const std::string app_name = argc > 1 ? argv[1] : "FT";
  const auto app = workloads::app_by_name(app_name);
  const auto& original = workloads::profile(app);

  // 1. "Measure": default-configuration run, sampled every 200 ms.
  std::printf("Tracing one default run of %s at 200 ms resolution...\n",
              original.name().c_str());
  harness::RunConfig cfg = harness::default_run_config(original);
  cfg.machine.sockets = 1;
  cfg.seed = 71;
  sim::VectorTraceSink sink(/*decimation=*/200);  // one record per 200 ms
  cfg.trace = &sink;
  harness::run_once(cfg);

  std::vector<workloads::TraceSample> trace;
  for (const auto& e : sink.entries()) {
    workloads::TraceSample s;
    s.seconds = 0.2;
    s.gflops = e.sockets[0].flops_grate;
    // Reconstruct traffic from power is noisy; use the recorded speed and
    // the dram power residual instead — here we take the direct route a
    // real profiler would: the bandwidth counter (dram power is its
    // affine image in this model).
    s.gbps = (e.sockets[0].dram_power_w - 9.0) / 0.16;
    if (s.gbps < 0.1) s.gbps = 0.1;
    s.cpu_activity = 0.9;
    s.mem_activity = s.gbps > 40.0 ? 1.0 : 0.5;
    trace.push_back(s);
  }
  std::printf("  %zu samples captured\n", trace.size());

  // 2. Rebuild a model from the trace alone.
  const auto replayed = workloads::profile_from_trace(
      trace, {}, original.name() + "-replayed");
  std::printf("  replay model: %zu distinct phases, %zu steps, %.1f s\n\n",
              replayed.phases().size(), replayed.sequence().size(),
              replayed.nominal_total_seconds());

  // 3. Compare DUFP on the original vs the replayed model.
  auto evaluate = [](const workloads::WorkloadProfile& prof) {
    harness::RunConfig c = harness::default_run_config(prof);
    c.machine.sockets = 1;
    c.seed = 72;
    const auto def = harness::run_repeated(c, 3);
    c.mode = harness::PolicyMode::dufp;
    c.tolerated_slowdown = 0.10;
    const auto dufp = harness::run_repeated(c, 3);
    return std::pair<double, double>{
        harness::percent_over(dufp.exec_seconds.mean, def.exec_seconds.mean),
        -harness::percent_over(dufp.avg_pkg_power_w.mean,
                               def.avg_pkg_power_w.mean)};
  };

  const auto orig = evaluate(original);
  const auto repl = evaluate(replayed);

  TextTable t({"model", "DUFP slowdown %", "DUFP power savings %"});
  t.add_row("original profile", {orig.first, orig.second});
  t.add_row("replayed from trace", {repl.first, repl.second});
  t.print(std::cout);

  std::printf(
      "\nIf the two rows agree, the 200 ms observables are sufficient to\n"
      "predict how DUFP will treat an application — which is the premise\n"
      "of the whole approach.\n");
  return 0;
}
