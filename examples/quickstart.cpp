// Quickstart: run one application on the simulated 4-socket yeti-2 under
// (a) the default configuration, (b) DUF, and (c) DUFP at a chosen
// tolerated slowdown, and compare time / power / energy — the minimal
// end-to-end use of the public API.
//
// Usage: quickstart [app] [tolerance_pct]   (defaults: CG 10)
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "harness/experiment.h"
#include "harness/runner.h"
#include "workloads/profiles.h"

using namespace dufp;

int main(int argc, char** argv) {
  const std::string app_name = argc > 1 ? argv[1] : "CG";
  const double tol_pct = argc > 2 ? std::atof(argv[2]) : 10.0;

  workloads::AppId app;
  try {
    app = workloads::app_by_name(app_name);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  const auto& prof = workloads::profile(app);
  std::printf("Application: %s — %s\n", prof.name().c_str(),
              prof.description().c_str());
  std::printf("Tolerated slowdown: %.0f %%\n\n", tol_pct);

  harness::RunConfig cfg = harness::default_run_config(prof);
  cfg.seed = 7;

  const int reps = 3;
  cfg.mode = harness::PolicyMode::none;
  const auto def = harness::run_repeated(cfg, reps);

  cfg.mode = harness::PolicyMode::duf;
  cfg.tolerated_slowdown = tol_pct / 100.0;
  const auto duf = harness::run_repeated(cfg, reps);

  cfg.mode = harness::PolicyMode::dufp;
  const auto dufp = harness::run_repeated(cfg, reps);

  TextTable t({"config", "time (s)", "slowdown %", "CPU power (W)",
               "CPU power savings %", "DRAM power (W)", "energy (kJ)",
               "energy change %"});
  auto row = [&](const char* name, const harness::RepeatedResult& r) {
    t.add_row(name,
              {r.exec_seconds.mean,
               harness::percent_over(r.exec_seconds.mean,
                                     def.exec_seconds.mean),
               r.avg_pkg_power_w.mean,
               -harness::percent_over(r.avg_pkg_power_w.mean,
                                      def.avg_pkg_power_w.mean),
               r.avg_dram_power_w.mean, r.total_energy_j.mean / 1000.0,
               harness::percent_over(r.total_energy_j.mean,
                                     def.total_energy_j.mean)});
  };
  row("default", def);
  row("DUF", duf);
  row("DUFP", dufp);
  t.print(std::cout);
  return 0;
}
