// Phase explorer: runs one application under DUF or DUFP and prints the
// controller's view interval by interval — measured FLOPS, operational
// intensity, phase classification, the programmed uncore frequency and
// power cap, and the actions taken.  The tool of choice for understanding
// why the controller did what it did on a given workload.
//
// Usage: phase_explorer [app] [tolerance_pct] [mode:duf|dufp] [seconds]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/agent.h"
#include "harness/experiment.h"
#include "harness/runner.h"
#include "perfmon/sim_counter_source.h"
#include "powercap/uncore_control.h"
#include "powercap/zone.h"
#include "sim/simulation.h"
#include "workloads/profiles.h"

using namespace dufp;

int main(int argc, char** argv) {
  const std::string app_name = argc > 1 ? argv[1] : "CG";
  const double tol_pct = argc > 2 ? std::atof(argv[2]) : 10.0;
  const std::string mode_str = argc > 3 ? argv[3] : "dufp";
  const double max_print_s = argc > 4 ? std::atof(argv[4]) : 15.0;

  const auto app = workloads::app_by_name(app_name);
  const auto& prof = workloads::profile(app);

  hw::MachineConfig machine;
  machine.sockets = 1;  // one socket is representative; all are symmetric
  sim::SimulationOptions opts;
  opts.seed = 11;
  sim::Simulation s(machine, prof, opts);

  powercap::PackageZone zone(s.msr(0), 0);
  powercap::UncoreControl uncore(s.msr(0));
  perfmon::SimCounterSource source(s.socket(0), s.msr(0));

  core::PolicyConfig policy;
  policy.tolerated_slowdown = tol_pct / 100.0;
  perfmon::SamplerOptions so;
  so.noise_sigma = 0.001;
  perfmon::IntervalSampler sampler(source, machine.socket.core_base_mhz,
                                   s.fork_rng(0x2000), so);
  const auto mode =
      mode_str == "duf" ? core::PolicyMode::duf : core::PolicyMode::dufp;
  core::Agent agent(mode, policy, zone, uncore, std::move(sampler));

  std::printf(
      "%7s %9s %8s %8s %7s %8s %8s %8s %7s\n", "t(s)", "GFLOP/s", "GB/s",
      "oi", "W", "MHz", "unc_tgt", "capL", "capS");

  core::AgentStats prev_stats;
  s.schedule_periodic(policy.interval, [&](SimTime now) {
    agent.on_interval(now);
    if (!agent.last_sample().has_value() || now.seconds() > max_print_s)
      return;
    const auto& smp = *agent.last_sample();
    const auto& st = agent.stats();
    std::string actions;
    if (st.uncore_decreases > prev_stats.uncore_decreases) actions += " unc-";
    if (st.uncore_increases > prev_stats.uncore_increases) actions += " unc+";
    if (st.uncore_resets > prev_stats.uncore_resets) actions += " uncR";
    if (st.cap_decreases > prev_stats.cap_decreases) actions += " cap-";
    if (st.cap_increases > prev_stats.cap_increases) actions += " cap+";
    if (st.cap_resets > prev_stats.cap_resets) actions += " capR";
    if (st.short_term_tightenings > prev_stats.short_term_tightenings)
      actions += " st:=lt";
    prev_stats = st;
    std::printf("%7.2f %9.2f %8.2f %8.3f %7.1f %8.0f %8.0f %8.1f %7.1f%s\n",
                now.seconds(), smp.flops_rate * 1e-9, smp.bytes_rate * 1e-9,
                smp.operational_intensity(), smp.pkg_power_w, smp.core_mhz,
                uncore.window_max_mhz(),
                zone.power_limit_w(powercap::ConstraintId::long_term),
                zone.power_limit_w(powercap::ConstraintId::short_term),
                actions.c_str());
  });

  const auto summary = s.run();
  std::printf(
      "\nrun: %.2f s, avg pkg %.1f W, avg dram %.1f W, energy %.1f kJ\n",
      summary.exec_seconds, summary.avg_pkg_power_w,
      summary.avg_dram_power_w, summary.total_energy_j() / 1000.0);
  const auto& st = agent.stats();
  std::printf(
      "agent: %llu intervals | uncore -%llu +%llu R%llu retry%llu | "
      "cap -%llu +%llu R%llu (overshootR %llu) st:=lt %llu\n",
      (unsigned long long)st.intervals,
      (unsigned long long)st.uncore_decreases,
      (unsigned long long)st.uncore_increases,
      (unsigned long long)st.uncore_resets,
      (unsigned long long)st.uncore_reset_retries,
      (unsigned long long)st.cap_decreases,
      (unsigned long long)st.cap_increases,
      (unsigned long long)st.cap_resets,
      (unsigned long long)st.cap_overshoot_resets,
      (unsigned long long)st.short_term_tightenings);
  return 0;
}
