// Capping study: static caps vs dynamic capping (DUFP) on one
// application — the paper's motivation (Sec. II) as an interactive tool.
// For each static cap in a sweep, and for DUFP at a chosen tolerance,
// prints time / power / energy against the default configuration, showing
// where the static-cap Pareto front sits and how DUFP lands near it
// without a hand-picked cap.
//
// Usage: capping_study [app] [tolerance_pct]   (defaults: CG 10)
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "harness/experiment.h"
#include "harness/runner.h"
#include "workloads/profiles.h"

using namespace dufp;

int main(int argc, char** argv) {
  const std::string app_name = argc > 1 ? argv[1] : "CG";
  const double tol_pct = argc > 2 ? std::atof(argv[2]) : 10.0;

  workloads::AppId app;
  try {
    app = workloads::app_by_name(app_name);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  const auto& prof = workloads::profile(app);
  std::printf("Capping study: %s (DUFP tolerance %.0f %%)\n\n",
              prof.name().c_str(), tol_pct);

  harness::RunConfig base = harness::default_run_config(prof);
  base.seed = 17;
  const int reps = 3;

  const auto def = harness::run_repeated(base, reps);

  TextTable t({"configuration", "time (s)", "slowdown %", "power (W)",
               "power savings %", "energy change %"});
  auto add = [&](const std::string& label,
                 const harness::RepeatedResult& r) {
    t.add_row(label,
              {r.exec_seconds.mean,
               harness::percent_over(r.exec_seconds.mean,
                                     def.exec_seconds.mean),
               r.avg_pkg_power_w.mean,
               -harness::percent_over(r.avg_pkg_power_w.mean,
                                      def.avg_pkg_power_w.mean),
               harness::percent_over(r.total_energy_j.mean,
                                     def.total_energy_j.mean)});
  };

  add("default", def);
  for (double cap : {115.0, 105.0, 95.0, 85.0, 75.0}) {
    harness::RunConfig cfg = base;
    cfg.static_cap_w = cap;
    add("static cap " + fmt_double(cap, 0) + " W",
        harness::run_repeated(cfg, reps));
  }
  {
    harness::RunConfig cfg = base;
    cfg.mode = harness::PolicyMode::dufp;
    cfg.tolerated_slowdown = tol_pct / 100.0;
    add("DUFP @ " + fmt_double(tol_pct, 0) + " %",
        harness::run_repeated(cfg, reps));
  }
  t.print(std::cout);

  std::printf(
      "\nReading: static caps trade performance for power obliviously to\n"
      "the application's phases; DUFP finds a similar power point while\n"
      "bounding the slowdown (the paper's motivation, Sec. II-A).\n");
  return 0;
}
