#include "faults/fault_plan.h"

#include <numeric>

#include "common/expect.h"

namespace dufp::faults {

std::string_view fault_class_name(FaultClass c) {
  switch (c) {
    case FaultClass::read_eio: return "read_eio";
    case FaultClass::write_eio: return "write_eio";
    case FaultClass::write_eperm: return "write_eperm";
    case FaultClass::bit_flip: return "bit_flip";
    case FaultClass::stale_sample: return "stale_sample";
    case FaultClass::dropped_sample: return "dropped_sample";
    case FaultClass::count_: break;
  }
  return "unknown";
}

std::uint64_t FaultStats::total() const {
  return std::accumulate(injected.begin(), injected.end(), std::uint64_t{0});
}

FaultOptions FaultOptions::storm(double rate, std::uint64_t seed) {
  FaultOptions o;
  o.enabled = true;
  o.seed = seed;
  o.read_eio = {rate, 2};
  o.write_eio = {rate, 2};
  o.write_eperm = {rate / 10.0, 200};  // rare but long denial outages
  o.bit_flip = {rate / 4.0, 1};
  o.stale_sample = {rate, 1};
  o.dropped_sample = {rate / 4.0, 1};
  o.force_energy_wrap = true;
  return o;
}

const FaultClassParams& FaultOptions::params(FaultClass c) const {
  switch (c) {
    case FaultClass::read_eio: return read_eio;
    case FaultClass::write_eio: return write_eio;
    case FaultClass::write_eperm: return write_eperm;
    case FaultClass::bit_flip: return bit_flip;
    case FaultClass::stale_sample: return stale_sample;
    case FaultClass::dropped_sample: return dropped_sample;
    case FaultClass::count_: break;
  }
  DUFP_ASSERT(false && "bad FaultClass");
  return read_eio;  // unreachable
}

std::vector<std::string> FaultOptions::validate() const {
  std::vector<std::string> problems;
  for (int i = 0; i < kFaultClassCount; ++i) {
    const auto c = static_cast<FaultClass>(i);
    const auto& p = params(c);
    const std::string name(fault_class_name(c));
    if (!(p.rate >= 0.0 && p.rate <= 1.0)) {
      problems.push_back(name + ".rate must be in [0, 1], got " +
                         std::to_string(p.rate));
    }
    if (p.burst < 1) {
      problems.push_back(name + ".burst must be >= 1, got " +
                         std::to_string(p.burst));
    }
  }
  if (force_energy_wrap && !(energy_wrap_lead_j > 0.0)) {
    problems.push_back("energy_wrap_lead_j must be > 0 when forcing wrap, got " +
                       std::to_string(energy_wrap_lead_j));
  }
  return problems;
}

bool FaultOptions::any_fault() const {
  for (int i = 0; i < kFaultClassCount; ++i) {
    if (params(static_cast<FaultClass>(i)).rate > 0.0) return true;
  }
  return locked_register != 0 || force_energy_wrap;
}

FaultPlan::FaultPlan(const FaultOptions& options, Rng rng)
    : options_(options), rng_(rng) {
  DUFP_EXPECT(options.validate().empty());
}

void FaultPlan::set_telemetry(telemetry::SocketTelemetry* telem) {
  telem_ = telem;
  if (telem_ == nullptr) return;
  auto& reg = telem_->registry();
  for (int i = 0; i < kFaultClassCount; ++i) {
    const auto c = static_cast<FaultClass>(i);
    reg.attach("dufp_faults_injected_total", "Faults injected, per class",
               {{"socket", std::to_string(telem_->socket())},
                {"class", std::string(fault_class_name(c))}},
               injected_[static_cast<std::size_t>(i)]);
  }
}

FaultStats FaultPlan::stats() const {
  FaultStats s;
  for (std::size_t i = 0; i < injected_.size(); ++i) {
    s.injected[i] = injected_[i].value();
  }
  return s;
}

void FaultPlan::injected(FaultClass c) {
  injected_[static_cast<std::size_t>(c)].inc();
  if (telem_ != nullptr) {
    // The decorators never see the sim clock; record_now() uses the run
    // clock the harness attached.
    telem_->record_now(telemetry::EventKind::fault_injected,
                       static_cast<std::uint16_t>(c));
  }
}

bool FaultPlan::fire(FaultClass c) {
  const auto idx = static_cast<std::size_t>(c);
  auto& remaining = burst_remaining_[idx];
  if (remaining > 0) {
    --remaining;
    injected(c);
    return true;
  }
  const auto& p = options_.params(c);
  // Zero-rate classes must not perturb the Rng stream: with all rates at
  // zero the plan draws nothing, which is what makes enabled-but-quiet
  // injection bit-identical to the no-injection baseline.
  if (p.rate <= 0.0) return false;
  if (rng_.next_double() >= p.rate) return false;
  remaining = p.burst - 1;
  injected(c);
  return true;
}

unsigned FaultPlan::flip_bit() {
  return static_cast<unsigned>(rng_.next_u64() & 63u);
}

}  // namespace dufp::faults
