// Fault-injecting decorator over any perfmon::CounterSource.
//
// Models the measurement-path failures of a PAPI/perf_event stack: dropped
// reads (the syscall fails), stale samples (multiplexing returns the value
// from the previous rotation), and — independently of the random classes —
// a forced early energy wraparound: the 32-bit RAPL counters are offset so
// they wrap within `energy_wrap_lead_j` joules instead of ~262 kJ, which
// lets short runs exercise the wrap-correction path that on hardware only
// fires every few hours.
//
// The random classes honour the same armed gate as FaultyMsrDevice; the
// wrap offset is a fixed deterministic re-labelling of the counter and is
// applied from the first read so baselines stay consistent.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "faults/fault_plan.h"
#include "perfmon/events.h"

namespace dufp::faults {

class FaultyCounterSource final : public perfmon::CounterSource {
 public:
  /// Decorates `inner`; both `inner` and `plan` must outlive this object.
  FaultyCounterSource(const perfmon::CounterSource& inner, FaultPlan& plan);

  // -- CounterSource --------------------------------------------------------
  std::uint64_t read(perfmon::Event e) const override;
  std::uint64_t wrap_range(perfmon::Event e) const override {
    return inner_.wrap_range(e);
  }

  void arm() { armed_ = true; }
  void set_armed(bool on) { armed_ = on; }
  bool armed() const { return armed_; }

 private:
  std::uint64_t true_value(perfmon::Event e) const;

  const perfmon::CounterSource& inner_;
  FaultPlan& plan_;
  bool armed_ = false;
  // read() is const on the interface, but staleness needs a memory of the
  // previous reading per event.
  mutable std::array<std::optional<std::uint64_t>, perfmon::kEventCount>
      last_read_{};
};

}  // namespace dufp::faults
