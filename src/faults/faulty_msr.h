// Fault-injecting decorator over any msr::MsrDevice.
//
// Sits between the control plane (zones, uncore/pstate controls, the DUFP
// agent) and the real backend, injecting the failure modes of the
// /dev/cpu/*/msr path: transient EIO on rdmsr/wrmsr, msr-safe EPERM write
// denials, single-bit read corruption, and a permanently locked register.
// Decisions come from a shared FaultPlan, so the pattern is deterministic
// for a fixed seed.
//
// The decorator starts DISARMED: construction-time wiring (zones decoding
// RAPL units, the agent snapshotting default limits) reads through it
// untouched.  The harness arms it only once the run starts, so faults hit
// the steady-state control loop — the part that must survive them.
#pragma once

#include <cstdint>

#include "faults/fault_plan.h"
#include "msr/device.h"

namespace dufp::faults {

class FaultyMsrDevice final : public msr::MsrDevice {
 public:
  /// Decorates `inner`; both `inner` and `plan` must outlive this object.
  FaultyMsrDevice(msr::MsrDevice& inner, FaultPlan& plan);

  // -- MsrDevice ------------------------------------------------------------
  std::uint64_t read(int cpu, std::uint32_t reg) const override;
  void write(int cpu, std::uint32_t reg, std::uint64_t value) override;
  int core_count() const override { return inner_.core_count(); }

  /// Starts injecting.  Before this, every operation passes through
  /// verbatim and no randomness is consumed.
  void arm() { armed_ = true; }
  void set_armed(bool on) { armed_ = on; }
  bool armed() const { return armed_; }

  msr::MsrDevice& inner() { return inner_; }

 private:
  msr::MsrDevice& inner_;
  FaultPlan& plan_;
  bool armed_ = false;
};

}  // namespace dufp::faults
