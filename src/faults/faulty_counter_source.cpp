#include "faults/faulty_counter_source.h"

#include <stdexcept>
#include <string>

namespace dufp::faults {

using perfmon::Event;

FaultyCounterSource::FaultyCounterSource(const perfmon::CounterSource& inner,
                                         FaultPlan& plan)
    : inner_(inner), plan_(plan) {}

std::uint64_t FaultyCounterSource::true_value(Event e) const {
  std::uint64_t v = inner_.read(e);
  const std::uint64_t range = inner_.wrap_range(e);
  if (plan_.options().force_energy_wrap && range != 0) {
    // Advance the wrapping counters so the next wrap is only
    // energy_wrap_lead_j joules away.  Energy counters count microjoules.
    const auto lead =
        static_cast<std::uint64_t>(plan_.options().energy_wrap_lead_j * 1e6);
    if (lead < range) v = (v + (range - lead)) % range;
  }
  return v;
}

std::uint64_t FaultyCounterSource::read(Event e) const {
  const auto idx = static_cast<std::size_t>(e);
  if (armed_) {
    if (plan_.fire(FaultClass::dropped_sample)) {
      throw std::runtime_error("injected dropped sample: " +
                               std::string(perfmon::event_name(e)));
    }
    if (last_read_[idx] && plan_.fire(FaultClass::stale_sample)) {
      return *last_read_[idx];  // previous reading, cache unchanged
    }
  }
  const std::uint64_t v = true_value(e);
  last_read_[idx] = v;
  return v;
}

}  // namespace dufp::faults
