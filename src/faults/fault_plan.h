// Seeded, deterministic fault injection for the hardware substrate.
//
// A FaultPlan is the single source of fault decisions for one socket's
// hardware-facing interfaces: the decorator backends (FaultyMsrDevice,
// FaultyCounterSource) ask it "does fault class X fire on this operation?"
// and it answers from an explicitly seeded Rng stream plus per-class burst
// state.  Everything is deterministic: the same FaultOptions seed against
// the same operation sequence injects the identical fault pattern, so
// figures and health counters reproduce bit-exactly under fault storms.
//
// Fault classes model the failure modes real DUFP deployments hit on the
// /dev/cpu/*/msr + powercap + PAPI paths: transient EIO on rdmsr/wrmsr,
// msr-safe EPERM denials (persistent while the allowlist is wrong, hence
// the long default burst), bit-flipped reads, stale multiplexed perf
// samples, dropped samples, and the 32-bit RAPL energy wraparound (forced
// early via FaultyCounterSource so a 60 s run exercises it).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "telemetry/telemetry.h"

namespace dufp::faults {

enum class FaultClass : int {
  read_eio = 0,     ///< transient MsrError on read
  write_eio,        ///< transient MsrError on write
  write_eperm,      ///< msr-safe style write denial (long bursts)
  bit_flip,         ///< read returns the true value with one bit flipped
  stale_sample,     ///< counter read returns the previous value
  dropped_sample,   ///< counter read fails outright
  count_            ///< sentinel
};

inline constexpr int kFaultClassCount = static_cast<int>(FaultClass::count_);

std::string_view fault_class_name(FaultClass c);

/// One fault class: `rate` is the per-operation trigger probability; once
/// triggered the fault stays active for `burst` consecutive operations of
/// that class (burst 1 = independent single-shot faults).
struct FaultClassParams {
  double rate = 0.0;
  int burst = 1;
};

/// Injection counts per class, for health reporting and determinism tests.
/// A value snapshot assembled by FaultPlan::stats() from counter-backed
/// instruments (shared with the telemetry registry when one is attached).
struct FaultStats {
  std::array<std::uint64_t, kFaultClassCount> injected{};

  std::uint64_t count(FaultClass c) const {
    return injected[static_cast<std::size_t>(c)];
  }
  std::uint64_t total() const;
};

struct FaultOptions {
  /// Master switch: when false the harness does not install the decorator
  /// backends at all.  When true with all rates zero the decorators are
  /// installed but pass every operation through untouched and draw no
  /// random numbers — bit-identical to the no-injection baseline (a
  /// tier-1 guarantee).
  bool enabled = false;

  /// Seed of the fault decision stream (DUFP_FAULT_SEED).  Independent of
  /// the run seed; the harness mixes in run seed and socket index so
  /// repetitions and sockets see different-but-reproducible storms.
  std::uint64_t seed = 0;

  FaultClassParams read_eio{};
  FaultClassParams write_eio{};
  FaultClassParams write_eperm{0.0, 400};  // msr-safe denials persist
  FaultClassParams bit_flip{};
  FaultClassParams stale_sample{};
  FaultClassParams dropped_sample{};

  /// Register whose writes always fault while injection is armed (models
  /// a locked register, e.g. kMsrPkgPowerLimit with the PL lock bit set
  /// by firmware).  0 = none.
  std::uint32_t locked_register = 0;

  /// Offsets the energy counters so the 32-bit RAPL wrap occurs after
  /// `energy_wrap_lead_j` joules instead of ~262 kJ, forcing the
  /// wraparound path to execute within any realistic run.
  bool force_energy_wrap = false;
  double energy_wrap_lead_j = 2.0;

  /// The storm preset used by benches and the fault-matrix tests: every
  /// transient class at `rate`, rarer hard failures, forced energy wrap.
  static FaultOptions storm(double rate, std::uint64_t seed);

  const FaultClassParams& params(FaultClass c) const;

  /// Every problem found (empty = valid): rates outside [0, 1], bursts
  /// < 1, non-positive wrap lead.
  std::vector<std::string> validate() const;

  /// True if any fault class or forced condition can actually fire.
  bool any_fault() const;
};

class FaultPlan {
 public:
  /// `rng` is the decision stream; derive it from FaultOptions::seed (the
  /// caller may mix in run seed / socket index via Rng::fork).
  FaultPlan(const FaultOptions& options, Rng rng);

  /// Decides whether fault class `c` fires on the current operation.
  /// Draws from the Rng only when the class rate is non-zero, so a
  /// zero-rate plan perturbs nothing.
  bool fire(FaultClass c);

  /// Bit position for a bit-flip fault (deterministic draw, 0..63).
  unsigned flip_bit();

  /// Attach the socket's telemetry view (nullptr = null sink, the
  /// default): registers per-class injection counters and records a
  /// fault_injected event per firing.  Telemetry never draws from the
  /// decision stream, so the injection pattern is unchanged.
  void set_telemetry(telemetry::SocketTelemetry* telem);

  const FaultOptions& options() const { return options_; }
  FaultStats stats() const;

 private:
  /// Counts one firing and records the flight-recorder event.
  void injected(FaultClass c);

  FaultOptions options_;
  Rng rng_;
  std::array<int, kFaultClassCount> burst_remaining_{};
  std::array<telemetry::Counter, kFaultClassCount> injected_;
  telemetry::SocketTelemetry* telem_ = nullptr;  ///< nullable
};

}  // namespace dufp::faults
