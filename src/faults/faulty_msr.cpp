#include "faults/faulty_msr.h"

namespace dufp::faults {

using msr::MsrError;

FaultyMsrDevice::FaultyMsrDevice(msr::MsrDevice& inner, FaultPlan& plan)
    : inner_(inner), plan_(plan) {}

std::uint64_t FaultyMsrDevice::read(int cpu, std::uint32_t reg) const {
  if (armed_) {
    if (plan_.fire(FaultClass::read_eio)) {
      throw MsrError(reg, "injected transient read failure (EIO)");
    }
    if (plan_.fire(FaultClass::bit_flip)) {
      return inner_.read(cpu, reg) ^ (1ULL << plan_.flip_bit());
    }
  }
  return inner_.read(cpu, reg);
}

void FaultyMsrDevice::write(int cpu, std::uint32_t reg, std::uint64_t value) {
  if (armed_) {
    if (reg != 0 && reg == plan_.options().locked_register) {
      throw MsrError(reg, "injected locked register (writes rejected)");
    }
    if (plan_.fire(FaultClass::write_eperm)) {
      throw MsrError(reg, "injected write denial (msr-safe EPERM)");
    }
    if (plan_.fire(FaultClass::write_eio)) {
      throw MsrError(reg, "injected transient write failure (EIO)");
    }
  }
  inner_.write(cpu, reg, value);
}

}  // namespace dufp::faults
