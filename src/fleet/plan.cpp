#include "fleet/plan.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "common/string_util.h"
#include "fleet/traffic.h"

namespace dufp::fleet {

namespace {

/// Float slack for the conservation check: allocators compute with the
/// same doubles we verify with, so anything beyond accumulated rounding
/// is a real violation.
constexpr double kSumSlack = 1e-6;
constexpr double kBoundSlack = 1e-9;

[[noreturn]] void contract_fail(const std::string& allocator_name,
                                const std::string& label,
                                const std::string& what) {
  throw std::logic_error(strf("fleet allocator \"%s\" violated its contract "
                              "at %s: %s",
                              allocator_name.c_str(), label.c_str(),
                              what.c_str()));
}

}  // namespace

std::vector<double> checked_allocate(
    FleetAllocator& alloc, const std::string& allocator_name,
    const std::string& label, double budget_w,
    const std::vector<ChildSignal>& children) {
  std::vector<double> out = alloc.allocate(budget_w, children);
  if (out.size() != children.size()) {
    contract_fail(allocator_name, label,
                  strf("returned %zu allocations for %zu children",
                       out.size(), children.size()));
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i] < children[i].min_w - kBoundSlack ||
        out[i] > children[i].max_w + kBoundSlack) {
      contract_fail(
          allocator_name, label,
          strf("child %zu granted %g W outside its bounds [%g, %g]", i,
               out[i], children[i].min_w, children[i].max_w));
    }
    sum += out[i];
  }
  if (sum > budget_w + kSumSlack) {
    contract_fail(allocator_name, label,
                  strf("children sum to %g W, above the %g W budget", sum,
                       budget_w));
  }
  return out;
}

AllocationPlan plan_allocations(const FleetSpec& spec) {
  {
    const auto problems = spec.validate();
    if (!problems.empty()) {
      std::string msg = "plan_allocations: invalid spec:";
      for (std::size_t i = 0; i < problems.size(); ++i) {
        msg += (i == 0 ? " " : "; ") + problems[i];
      }
      throw std::invalid_argument(msg);
    }
  }

  const FleetTopology& topo = spec.topology;
  const std::size_t racks = static_cast<std::size_t>(topo.racks);
  const std::size_t per_rack = static_cast<std::size_t>(topo.nodes_per_rack);
  const std::size_t nodes = topo.node_count();
  const double node_min =
      spec.min_cap_w * static_cast<double>(topo.sockets_per_node);
  const double node_max =
      spec.max_cap_w * static_cast<double>(topo.sockets_per_node);

  TrafficModel traffic({spec.traffic_profile, spec.traffic_seed});
  const auto& registry = FleetAllocatorRegistry::instance();
  const std::string alloc_name = registry.at(spec.allocator).name;

  // One allocator instance per inner tree node, so stateful smoothing
  // tracks *its* children across epochs.  Planning is sequential and in
  // fixed order, which keeps any such state deterministic.
  std::unique_ptr<FleetAllocator> cluster = registry.create(alloc_name);
  std::vector<std::unique_ptr<FleetAllocator>> rack_allocs;
  for (std::size_t r = 0; r < racks; ++r) {
    rack_allocs.push_back(registry.create(alloc_name));
  }

  AllocationPlan plan;
  plan.budget_w = spec.resolved_budget_w();
  plan.rack_w.assign(static_cast<std::size_t>(spec.epochs),
                     std::vector<double>(racks, 0.0));
  plan.node_w.assign(static_cast<std::size_t>(spec.epochs),
                     std::vector<double>(nodes, 0.0));
  plan.node_demand_w = plan.node_w;
  plan.node_intensity = plan.node_w;

  // Feedback carried between epochs: how starved each node was.
  std::vector<double> depression(nodes, 0.0);

  for (int e = 0; e < spec.epochs; ++e) {
    const auto ei = static_cast<std::size_t>(e);
    for (std::size_t n = 0; n < nodes; ++n) {
      const double intensity = traffic.intensity(n, e);
      plan.node_intensity[ei][n] = intensity;
      plan.node_demand_w[ei][n] =
          node_min + intensity * (node_max - node_min);
    }

    // Cluster -> racks.  A rack's signal aggregates its nodes: summed
    // demand and bounds, demand-weighted mean depression.
    std::vector<ChildSignal> rack_signals(racks);
    for (std::size_t r = 0; r < racks; ++r) {
      ChildSignal& sig = rack_signals[r];
      sig.min_w = node_min * static_cast<double>(per_rack);
      sig.max_w = node_max * static_cast<double>(per_rack);
      double weighted_depr = 0.0;
      for (std::size_t slot = 0; slot < per_rack; ++slot) {
        const std::size_t n = topo.node_index(static_cast<int>(r),
                                              static_cast<int>(slot));
        sig.demand_w += plan.node_demand_w[ei][n];
        weighted_depr += depression[n] * plan.node_demand_w[ei][n];
      }
      sig.depression =
          sig.demand_w > 0.0 ? weighted_depr / sig.demand_w : 0.0;
    }
    plan.rack_w[ei] = checked_allocate(*cluster, alloc_name, "cluster",
                                       plan.budget_w, rack_signals);

    // Rack -> nodes.
    for (std::size_t r = 0; r < racks; ++r) {
      std::vector<ChildSignal> node_signals(per_rack);
      for (std::size_t slot = 0; slot < per_rack; ++slot) {
        const std::size_t n = topo.node_index(static_cast<int>(r),
                                              static_cast<int>(slot));
        node_signals[slot] = {plan.node_demand_w[ei][n], node_min, node_max,
                              depression[n]};
      }
      const auto granted = checked_allocate(
          *rack_allocs[r], alloc_name,
          strf("rack %d", static_cast<int>(r)), plan.rack_w[ei][r],
          node_signals);
      for (std::size_t slot = 0; slot < per_rack; ++slot) {
        const std::size_t n = topo.node_index(static_cast<int>(r),
                                              static_cast<int>(slot));
        plan.node_w[ei][n] = granted[slot];
      }
    }

    // Analytic feedback for the next epoch: 1 - granted/demanded, so a
    // node that got everything it asked for reports 0 and a starved one
    // reports how short it fell.
    for (std::size_t n = 0; n < nodes; ++n) {
      const double demand = plan.node_demand_w[ei][n];
      depression[n] =
          demand > 0.0
              ? std::max(0.0, 1.0 - plan.node_w[ei][n] / demand)
              : 0.0;
    }
  }
  return plan;
}

}  // namespace dufp::fleet
