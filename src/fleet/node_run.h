// Phase B of a fleet run: one node's whole-run simulation under its
// precomputed per-epoch budget schedule.
//
// A node is an ordinary simulated machine (sockets_per_node sockets, the
// usual zones / uncore controls / per-socket DUFP agents from the policy
// registry) with two fleet-specific additions:
//   - a node-level core::BudgetBalancer splitting the node's budget
//     among its sockets every 200 ms, exactly as in the single-machine
//     experiments, and
//   - an epoch clock that walks the AllocationPlan's schedule, calling
//     set_machine_budget_w at each epoch boundary — the moving cap the
//     fleet allocators impose from above.
//
// The node's workload is synthetic: one phase per epoch ("e0", "e1",
// ...), each a scaled copy of the app's time-weighted mean phase whose
// demand follows the traffic intensity of that (node, epoch).  Phases
// map 1:1 onto epochs, so Simulation::phase_totals delivers per-epoch
// energy and wall time for free.
//
// run_fleet_node(spec, node, plan) is a pure function of its arguments
// (seeded with harness::job_seed(spec.seed, node)), which is what lets
// the shard layer treat node indices as portable job identities.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/json.h"
#include "fleet/plan.h"
#include "fleet/spec.h"
#include "sim/simulation.h"

namespace dufp::fleet {

/// One epoch of one node, as gathered into the fleet outputs.
struct EpochRecord {
  double alloc_w = 0.0;       ///< budget the plan granted this epoch
  double demand_w = 0.0;      ///< what the node asked for
  double intensity = 0.0;     ///< the traffic sample behind the demand
  double wall_seconds = 0.0;  ///< slowest socket's wall time in the epoch
  double pkg_energy_j = 0.0;  ///< summed over the node's sockets
  double dram_energy_j = 0.0;
};

/// Everything one node simulation reports upward.
struct FleetNodeResult {
  std::vector<EpochRecord> epochs;
  double exec_seconds = 0.0;   ///< node wall time (slowest socket)
  double pkg_energy_j = 0.0;
  double dram_energy_j = 0.0;
  /// Mean progress speed: nominal workload seconds per wall second
  /// (1.0 = unthrottled); the per-node sample Jain's fairness is
  /// computed over.
  double avg_speed = 0.0;
  std::uint64_t faults_injected = 0;
  std::uint64_t degradations = 0;

  double total_energy_j() const { return pkg_energy_j + dram_energy_j; }
};

/// Bit-exact JSON codec for the fleet wire (doubles travel as IEEE-754
/// hex, see harness/shard_codec.h for the convention).
json::Value encode_node_result(const FleetNodeResult& result);
FleetNodeResult decode_node_result(const json::Value& v);

/// Runs node `node` of the fleet under `plan`'s budget schedule.
/// `plan` must be plan_allocations(spec).  Throws std::invalid_argument
/// on a malformed spec or an out-of-range node.
///
/// `time_leap` toggles the engine's event-leaping fast path (on by
/// default, exact by construction); the switch exists so equivalence
/// tests can byte-compare leap-on against leap-off fleet results.
FleetNodeResult run_fleet_node(const FleetSpec& spec, std::size_t node,
                               const AllocationPlan& plan,
                               bool time_leap = true);

/// A node run wired but not yet executed: the simulation plus every
/// object run_fleet_node would have built around it (balancer, epoch
/// clock, agents, fault decorators), with injectors armed and the budget
/// schedule copied in — the spec/plan need not outlive the object.
/// Drive `simulation()` to completion (Simulation::run() or interleaved
/// through sim::MultiSim), then call finish() exactly once.
class PreparedFleetNode {
 public:
  PreparedFleetNode(PreparedFleetNode&&) noexcept;
  PreparedFleetNode& operator=(PreparedFleetNode&&) noexcept;
  ~PreparedFleetNode();

  sim::Simulation& simulation();

  /// Collects the FleetNodeResult run_fleet_node would have produced.
  /// Requires the simulation to have run to completion.
  FleetNodeResult finish();

 private:
  friend PreparedFleetNode prepare_fleet_node(const FleetSpec& spec,
                                              std::size_t node,
                                              const AllocationPlan& plan,
                                              bool time_leap);
  struct Impl;
  explicit PreparedFleetNode(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// Validates and wires one node run without executing it.
/// run_fleet_node(spec, node, plan, leap) ≡
/// { auto p = prepare_fleet_node(spec, node, plan, leap);
///   p.simulation().run(); return p.finish(); }.
PreparedFleetNode prepare_fleet_node(const FleetSpec& spec, std::size_t node,
                                     const AllocationPlan& plan,
                                     bool time_leap = true);

/// Lane-batched execution of a set of node jobs: results in input order,
/// each byte-identical to run_fleet_node(spec, nodes[i], plan).  Nodes
/// are processed in waves of `lanes` interleaved simulations
/// (0 = DUFP_LANES, default 8; 1 = sequential).
std::vector<FleetNodeResult> run_fleet_nodes(const FleetSpec& spec,
                                             const std::vector<std::size_t>& nodes,
                                             const AllocationPlan& plan,
                                             bool time_leap = true,
                                             int lanes = 0);

}  // namespace dufp::fleet
