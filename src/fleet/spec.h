// FleetSpec: the self-contained description of one fleet experiment —
// the budget tree shape, the allocator, the global cap, the traffic, and
// the per-node simulation parameters.  Exactly like harness::GridSpec,
// everything that influences results lives here (never in the
// environment), the canonical JSON is fingerprinted, and a flat job
// index (= node index, rack-major) is a portable identity: any process
// parsing the same spec computes the same allocation plan and runs the
// same node simulation for job i.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "fleet/topology.h"
#include "workloads/profiles.h"

namespace dufp::fleet {

/// Fleet wire format identities; versioned by
/// harness::kShardFormatVersion alongside the grid formats.
inline constexpr const char* kFleetSpecFormat = "dufp-fleet-spec";
inline constexpr const char* kFleetResultFormat = "dufp-fleet-result";
inline constexpr const char* kFleetRetryFormat = "dufp-fleet-retry";

struct FleetSpec {
  std::string name = "fleet";
  FleetTopology topology;

  /// FleetAllocatorRegistry name, canonical spelling; parsing
  /// canonicalizes case/alias spellings and rejects unknown names with
  /// the registry's known-names list.
  std::string allocator = "proportional";

  /// The cluster-wide cap.  The default 0 is a sentinel — "derive from
  /// the fleet", i.e. max_cap_w x socket-count, the uncapped fleet —
  /// mirroring core::BalancerConfig::machine_budget_w.
  double global_budget_w = 0.0;

  int epochs = 6;              ///< allocation epochs per run
  double epoch_seconds = 1.0;  ///< nominal wall seconds per epoch

  /// TrafficModel profile + seed driving per-(node, epoch) demand.
  std::string traffic_profile = "diurnal";
  std::uint64_t traffic_seed = 1;

  std::uint64_t seed = 1;  ///< base seed; node i runs with job_seed(seed, i)

  workloads::AppId app = workloads::AppId::cg;  ///< per-node application
  std::string policy = "DUFP";  ///< per-socket agent (core::PolicyRegistry)
  double tolerated_slowdown = 0.10;

  double min_cap_w = 65.0;   ///< per-socket floor (BalancerConfig default)
  double max_cap_w = 125.0;  ///< per-socket ceiling

  double fault_rate = 0.0;  ///< > 0 runs every node under a fault storm
  std::uint64_t fault_seed = 0;

  /// The derived cluster budget: global_budget_w, or the sentinel
  /// resolved to max_cap_w x socket_count.
  double resolved_budget_w() const;

  /// Canonical JSON (fixed key order, %.17g doubles); parse() of the
  /// output reproduces the spec exactly.
  json::Value to_json() const;
  std::string canonical_text() const;
  /// FNV-1a over canonical_text(); stamped into every fleet shard file.
  std::uint64_t fingerprint() const;

  static FleetSpec from_json(const json::Value& v);
  static FleetSpec parse(std::string_view text);
  static FleetSpec load(const std::string& path);

  /// The small reference fleet the quickstart and CI smoke use:
  /// 2 racks x 2 nodes x 4 sockets, 4 epochs.
  static FleetSpec reference();

  /// Every problem found (empty = valid), aggregated house style:
  /// topology bounds, allocator / traffic / policy resolved against
  /// their registries, budget >= the fleet-wide floor, cap ordering.
  std::vector<std::string> validate() const;
};

}  // namespace dufp::fleet
