#include "fleet/traffic.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.h"
#include "common/string_util.h"

namespace dufp::fleet {

namespace {

constexpr int kDiurnal = 0;
constexpr int kHeavyTail = 1;
constexpr int kFlat = 2;

/// Epochs per simulated "day" of the diurnal cycle.
constexpr double kDiurnalPeriodEpochs = 24.0;

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

const std::vector<std::string>& TrafficModel::profiles() {
  static const std::vector<std::string> kProfiles{"diurnal", "heavy-tail",
                                                  "flat"};
  return kProfiles;
}

std::string TrafficModel::known_profiles() {
  std::string out;
  for (const auto& p : profiles()) {
    if (!out.empty()) out += ", ";
    out += p;
  }
  return out;
}

bool TrafficModel::is_known(const std::string& profile) {
  const auto& known = profiles();
  return std::find(known.begin(), known.end(), profile) != known.end();
}

TrafficModel::TrafficModel(TrafficOptions options)
    : options_(std::move(options)) {
  if (options_.profile == "diurnal") {
    kind_ = kDiurnal;
  } else if (options_.profile == "heavy-tail") {
    kind_ = kHeavyTail;
  } else if (options_.profile == "flat") {
    kind_ = kFlat;
  } else {
    throw std::invalid_argument(
        strf("TrafficModel: unknown profile \"%s\" (known: %s)",
             options_.profile.c_str(), known_profiles().c_str()));
  }
}

double TrafficModel::intensity(std::size_t node, int epoch) const {
  // Per-node stream: stable node-level characteristics (diurnal phase
  // offset, burstiness) are drawn before any per-epoch noise, so they do
  // not depend on which epochs were evaluated or in what order.
  Rng node_rng = Rng(options_.seed).fork(static_cast<std::uint64_t>(node));
  // Per-(node, epoch) stream for the sample itself.
  Rng rng = Rng(options_.seed)
                .fork(static_cast<std::uint64_t>(node))
                .fork(0x9e1u + static_cast<std::uint64_t>(epoch));
  switch (kind_) {
    case kDiurnal: {
      // Day/night swing with a per-node phase offset (not every service
      // peaks at the same hour) plus small per-epoch noise.
      const double phase = node_rng.next_double();  // [0, 1) of a period
      const double angle = 2.0 * M_PI *
                           (static_cast<double>(epoch) / kDiurnalPeriodEpochs +
                            phase);
      const double swing = 0.5 * (1.0 + std::sin(angle));  // [0, 1]
      return clamp01(0.15 + 0.75 * swing + rng.gaussian(0.0, 0.03));
    }
    case kHeavyTail: {
      // Quiet floor punctured by Pareto bursts: most epochs idle along
      // near the floor, a heavy tail saturates the node.
      const double u = std::max(1e-9, rng.next_double());
      const double pareto = std::pow(u, -1.0 / 1.5);  // alpha = 1.5, xm = 1
      const double burst = (pareto - 1.0) / 9.0;      // 1..10 -> 0..1
      return clamp01(0.10 + burst);
    }
    default: {  // kFlat
      return clamp01(0.55 + rng.gaussian(0.0, 0.02));
    }
  }
}

}  // namespace dufp::fleet
