#include "fleet/allocator.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "common/string_util.h"

namespace dufp::fleet {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool entry_matches(const FleetAllocatorRegistry::Entry& entry,
                   std::string_view name) {
  if (iequals(entry.name, name)) return true;
  for (const auto& alias : entry.aliases) {
    if (iequals(alias, name)) return true;
  }
  return false;
}

}  // namespace

std::vector<double> clamp_to_budget(double budget_w,
                                    const std::vector<ChildSignal>& children,
                                    std::vector<double> alloc) {
  double sum = 0.0;
  double above_floor = 0.0;
  for (std::size_t i = 0; i < children.size(); ++i) {
    alloc[i] = std::clamp(alloc[i], children[i].min_w, children[i].max_w);
    sum += alloc[i];
    above_floor += alloc[i] - children[i].min_w;
  }
  if (sum > budget_w && above_floor > 0.0) {
    // Shrink only the share above each floor; floors are untouchable.
    const double floor_sum = sum - above_floor;
    const double scale =
        std::max(0.0, (budget_w - floor_sum) / above_floor);
    for (std::size_t i = 0; i < children.size(); ++i) {
      alloc[i] =
          children[i].min_w + (alloc[i] - children[i].min_w) * scale;
    }
  }
  return alloc;
}

namespace {

/// Baseline: every child gets the same slice of the budget regardless of
/// demand, clamped to its bounds.  The control arm of fleet_scaling.
class StaticEqualAllocator final : public FleetAllocator {
 public:
  std::vector<double> allocate(
      double budget_w, const std::vector<ChildSignal>& children) override {
    const double equal =
        budget_w / static_cast<double>(std::max<std::size_t>(1, children.size()));
    std::vector<double> alloc(children.size(), equal);
    return clamp_to_budget(budget_w, children, alloc);
  }
};

/// Port of core::BudgetBalancer's weighting to the tree: each child is
/// weighted by its last-epoch depression plus a base weight, the budget
/// above the floors is split proportionally, and allocations are smoothed
/// across epochs so a single bursty epoch does not whiplash the fleet.
class ProportionalDemandAllocator final : public FleetAllocator {
 public:
  std::vector<double> allocate(
      double budget_w, const std::vector<ChildSignal>& children) override {
    const std::size_t n = children.size();
    double floor_sum = 0.0;
    double weight_sum = 0.0;
    std::vector<double> weight(n);
    for (std::size_t i = 0; i < n; ++i) {
      floor_sum += children[i].min_w;
      weight[i] = children[i].depression + kBaseWeight;
      weight_sum += weight[i];
    }
    const double spare = budget_w - floor_sum;
    std::vector<double> target(n);
    for (std::size_t i = 0; i < n; ++i) {
      target[i] = std::clamp(
          children[i].min_w + spare * weight[i] / weight_sum,
          children[i].min_w, children[i].max_w);
    }
    if (last_.size() != n) {
      last_ = target;
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        last_[i] = last_[i] * (1.0 - kSmoothing) + target[i] * kSmoothing;
      }
    }
    // Smoothing mixes allocations computed against different bounds, so
    // repair feasibility before handing the split back.
    last_ = clamp_to_budget(budget_w, children, last_);
    return last_;
  }

 private:
  static constexpr double kSmoothing = 0.5;
  static constexpr double kBaseWeight = 0.1;

  std::vector<double> last_;
};

/// FastCap-style fair redistribution: grant every child its floor, then
/// water-fill the remainder in equal-share rounds — each round splits the
/// leftover equally among children still below min(demand, max), so
/// satisfied children's unused share flows to the starved ones.
class FastCapAllocator final : public FleetAllocator {
 public:
  std::vector<double> allocate(
      double budget_w, const std::vector<ChildSignal>& children) override {
    const std::size_t n = children.size();
    std::vector<double> alloc(n);
    std::vector<double> cap(n);  // per-child satiation point
    double remaining = budget_w;
    for (std::size_t i = 0; i < n; ++i) {
      alloc[i] = children[i].min_w;
      remaining -= alloc[i];
      cap[i] = std::clamp(children[i].demand_w, children[i].min_w,
                          children[i].max_w);
    }
    // Each round either satiates at least one child or distributes the
    // whole remainder, so n rounds always suffice.
    for (std::size_t round = 0; round < n && remaining > 1e-9; ++round) {
      std::size_t hungry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (alloc[i] < cap[i] - 1e-12) ++hungry;
      }
      if (hungry == 0) break;
      const double share = remaining / static_cast<double>(hungry);
      for (std::size_t i = 0; i < n; ++i) {
        if (alloc[i] < cap[i] - 1e-12) {
          const double grant = std::min(share, cap[i] - alloc[i]);
          alloc[i] += grant;
          remaining -= grant;
        }
      }
    }
    return clamp_to_budget(budget_w, children, alloc);
  }
};

}  // namespace

FleetAllocatorRegistry& FleetAllocatorRegistry::instance() {
  static FleetAllocatorRegistry registry = [] {
    FleetAllocatorRegistry r;
    register_builtin_allocators(r);
    return r;
  }();
  return registry;
}

void FleetAllocatorRegistry::add(Entry entry) {
  if (entry.name.empty()) {
    throw std::invalid_argument(
        "FleetAllocatorRegistry: entry must have a name");
  }
  if (!entry.factory) {
    throw std::invalid_argument(
        strf("FleetAllocatorRegistry: allocator \"%s\" has no factory",
             entry.name.c_str()));
  }
  std::vector<std::string_view> keys;
  keys.push_back(entry.name);
  for (const auto& alias : entry.aliases) keys.push_back(alias);
  for (const auto key : keys) {
    if (find(key) != nullptr) {
      throw std::invalid_argument(
          strf("FleetAllocatorRegistry: name \"%.*s\" is already registered",
               static_cast<int>(key.size()), key.data()));
    }
  }
  entries_.push_back(std::move(entry));
}

const FleetAllocatorRegistry::Entry* FleetAllocatorRegistry::find(
    std::string_view name) const {
  for (const auto& entry : entries_) {
    if (entry_matches(entry, name)) return &entry;
  }
  return nullptr;
}

const FleetAllocatorRegistry::Entry& FleetAllocatorRegistry::at(
    std::string_view name) const {
  const Entry* entry = find(name);
  if (entry == nullptr) {
    throw std::invalid_argument(
        strf("unknown fleet allocator \"%.*s\" (known: %s)",
             static_cast<int>(name.size()), name.data(),
             known_names().c_str()));
  }
  return *entry;
}

std::vector<std::string> FleetAllocatorRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry.name);
  return out;
}

std::string FleetAllocatorRegistry::known_names() const {
  std::string out;
  for (const auto& entry : entries_) {
    if (!out.empty()) out += ", ";
    out += entry.name;
  }
  return out;
}

std::unique_ptr<FleetAllocator> FleetAllocatorRegistry::create(
    std::string_view name) const {
  return at(name).factory();
}

void register_builtin_allocators(FleetAllocatorRegistry& registry) {
  registry.add({
      "static-equal",
      "Equal split of the budget regardless of demand (baseline)",
      {"equal", "static"},
      [] { return std::make_unique<StaticEqualAllocator>(); },
  });
  registry.add({
      "proportional",
      "Depression-weighted proportional split with cross-epoch smoothing "
      "(BudgetBalancer's weighting, lifted to the tree)",
      {"proportional-demand"},
      [] { return std::make_unique<ProportionalDemandAllocator>(); },
  });
  registry.add({
      "fastcap",
      "Max-min fair water-filling: floors first, then equal-share rounds "
      "among children still below their demand",
      {"fair"},
      [] { return std::make_unique<FastCapAllocator>(); },
  });
}

}  // namespace dufp::fleet
