// Pluggable fleet budget allocators: how an inner node of the budget
// tree (the cluster over its racks, a rack over its nodes) splits its
// power budget among its children each epoch.
//
// Mirrors the core::PolicyRegistry idiom exactly: a string-keyed
// registry is the single authority on which allocators exist and what
// they are called; every layer (FleetSpec validation, DUFP_FLEET_ALLOCATOR
// parsing, the fleet_scaling bench, the budget tree itself) resolves
// names here, so adding an allocator is one registration and zero switch
// statements (see DESIGN.md, "Adding a fleet allocator in under 50
// lines").
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace dufp::fleet {

/// What one child of a tree node reports upward before an epoch's split.
struct ChildSignal {
  double demand_w = 0.0;  ///< what the child wants this epoch
  double min_w = 0.0;     ///< hard floor of the child's allocation
  double max_w = 0.0;     ///< hard ceiling of the child's allocation
  /// How starved the child was last epoch: 1 - granted/demanded, in
  /// [0, 1] (0 on the first epoch and for fully satisfied children).
  double depression = 0.0;
};

/// One inner tree node's splitting strategy.  Instances may be stateful
/// (e.g. smoothing across epochs) — the budget tree creates one per
/// inner node and calls it once per epoch, in deterministic order.
class FleetAllocator {
 public:
  virtual ~FleetAllocator() = default;

  /// Splits `budget_w` among `children`.  The contract the budget tree
  /// enforces after every call (a violation is a std::logic_error — a
  /// broken allocator, never tolerable):
  ///   - out.size() == children.size()
  ///   - out[i] in [children[i].min_w, children[i].max_w]
  ///   - sum(out) <= budget_w (+ float slack)
  /// Callers guarantee budget_w >= sum of the children's min_w.
  virtual std::vector<double> allocate(
      double budget_w, const std::vector<ChildSignal>& children) = 0;
};

class FleetAllocatorRegistry {
 public:
  using Factory = std::function<std::unique_ptr<FleetAllocator>()>;

  struct Entry {
    /// Canonical name: display form, CSV cell, telemetry label and wire
    /// format all in one.  Lookups are case-insensitive.
    std::string name;
    std::string description;
    /// Alternate spellings ("fastcap" vs "fair"); matched like the name.
    std::vector<std::string> aliases;
    Factory factory;
  };

  /// The process-wide registry, preloaded with the built-in allocators
  /// in a fixed order.  Immutable after first use by convention — tests
  /// exercising add() build their own local instances.
  static FleetAllocatorRegistry& instance();

  FleetAllocatorRegistry() = default;

  /// Registers an allocator.  Throws std::invalid_argument when the name
  /// or an alias (case-insensitively) collides with an existing entry,
  /// or when the entry has no name or no factory.
  void add(Entry entry);

  /// Case-insensitive lookup by name or alias; nullptr when unknown.
  const Entry* find(std::string_view name) const;
  bool contains(std::string_view name) const { return find(name) != nullptr; }

  /// Like find(), but throws std::invalid_argument listing every
  /// registered name when the lookup fails.
  const Entry& at(std::string_view name) const;

  /// Canonical names in registration order.
  std::vector<std::string> names() const;

  /// "proportional, fastcap, ..." — embedded in lookup error messages.
  std::string known_names() const;

  /// Builds an allocator instance.  Throws like at() on unknown names.
  std::unique_ptr<FleetAllocator> create(std::string_view name) const;

 private:
  std::vector<Entry> entries_;
};

/// Built-in registrations; instance() calls this.  Exposed so tests can
/// populate a fresh local registry the same way.
void register_builtin_allocators(FleetAllocatorRegistry& registry);

/// Repair helper shared by allocators: clamps each entry into its
/// child's [min_w, max_w] and, if the clamped sum still exceeds
/// `budget_w`, scales every allocation's share above its floor down
/// uniformly.  The result always satisfies the allocate() contract.
std::vector<double> clamp_to_budget(double budget_w,
                                    const std::vector<ChildSignal>& children,
                                    std::vector<double> alloc);

}  // namespace dufp::fleet
