// Phase A of a fleet run: the allocation plan.
//
// Every per-epoch budget split is computed *up front* as a pure function
// of the FleetSpec — demand comes from the deterministic traffic model,
// and the feedback signal (last epoch's depression) from the analytic
// ratio of granted to demanded watts, never from simulation state.  That
// split is what makes the fleet shardable with zero coordination: every
// process derives the identical plan, then each node's simulation runs
// independently under its precomputed per-epoch cap schedule, so serial
// and sharded executions are byte-identical by construction.
//
// The conservation invariant is enforced here, in code: after every
// allocator call, children must sum to at most the parent's budget and
// each child must sit inside its [min, max] bounds — a violation throws
// std::logic_error naming the allocator and tree node, because a broken
// allocator must never silently mint watts.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fleet/allocator.h"
#include "fleet/spec.h"

namespace dufp::fleet {

/// The full per-epoch budget tree, cluster -> racks -> nodes.
/// All vectors are indexed [epoch][rack] / [epoch][node] (nodes
/// rack-major, see FleetTopology).
struct AllocationPlan {
  double budget_w = 0.0;  ///< resolved cluster budget (constant)
  std::vector<std::vector<double>> rack_w;
  std::vector<std::vector<double>> node_w;
  /// What each node asked for: min + intensity x (max - min) watts.
  std::vector<std::vector<double>> node_demand_w;
  /// The traffic intensity sample behind each demand, for the records.
  std::vector<std::vector<double>> node_intensity;
};

/// Runs `alloc.allocate(budget_w, children)` and enforces the
/// FleetAllocator contract (size, per-child bounds, sum <= budget).
/// Throws std::logic_error naming `label` (e.g. "cluster", "rack 1") on
/// any violation.
std::vector<double> checked_allocate(
    FleetAllocator& alloc, const std::string& allocator_name,
    const std::string& label, double budget_w,
    const std::vector<ChildSignal>& children);

/// Computes the whole plan: one allocator instance per inner tree node
/// (the cluster plus each rack — allocators may carry cross-epoch
/// smoothing state), epochs advanced in order, depression fed back from
/// the previous epoch's grant/demand ratio.  Pure function of the spec.
/// Throws std::invalid_argument on an invalid spec and std::logic_error
/// when an allocator violates its contract.
AllocationPlan plan_allocations(const FleetSpec& spec);

}  // namespace dufp::fleet
