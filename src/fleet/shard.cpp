#include "fleet/shard.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/string_util.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"

namespace dufp::fleet {

namespace {

using json::Value;

std::string g17(double v) { return strf("%.17g", v); }

}  // namespace

harness::WireIdentity fleet_wire_identity(const FleetSpec& spec) {
  harness::WireIdentity id;
  id.format = kFleetResultFormat;
  id.spec_name = spec.name;
  id.fingerprint_hex = strf(
      "%016llx", static_cast<unsigned long long>(spec.fingerprint()));
  id.job_count = spec.topology.node_count();
  const FleetTopology topo = spec.topology;
  id.job_label = [topo](std::size_t job) { return topo.node_label(job); };
  return id;
}

void run_fleet_shard(const FleetSpec& spec,
                     const harness::ShardRunOptions& options,
                     std::ostream& out) {
  const AllocationPlan plan = plan_allocations(spec);
  harness::run_shard_wire(
      fleet_wire_identity(spec), options,
      [&spec, &plan](const std::vector<std::size_t>& nodes) {
        // The worker's chunk runs lane-batched: byte-identical payloads,
        // one interleaved engine pass per wave of DUFP_LANES nodes.
        const std::vector<FleetNodeResult> results =
            run_fleet_nodes(spec, nodes, plan);
        std::vector<Value> payloads;
        payloads.reserve(results.size());
        for (const FleetNodeResult& r : results) {
          payloads.push_back(encode_node_result(r));
        }
        return payloads;
      },
      out);
}

FleetGatherReport gather_fleet_report(const FleetSpec& spec,
                                      const std::vector<std::string>& files,
                                      const harness::GatherOptions& options) {
  FleetGatherReport report;
  report.results.resize(spec.topology.node_count());
  const harness::WireGatherReport wire = harness::gather_wire(
      fleet_wire_identity(spec), files, options,
      [&report](std::size_t job, const Value& result) {
        report.results[job] = decode_node_result(result);
      });
  report.job_count = wire.job_count;
  report.have = wire.have;
  report.missing = wire.missing;
  report.records = wire.records;
  report.duplicates = wire.duplicates;
  report.notes = wire.notes;
  report.header_shards = wire.header_shards;
  return report;
}

// -- retry manifest ----------------------------------------------------------

json::Value FleetRetryManifest::to_json() const {
  Value o = Value::make_object();
  o.add("format", Value::make_string(kFleetRetryFormat));
  o.add("version", Value::make_i64(harness::kShardFormatVersion));
  o.add("spec", spec.to_json());
  o.add("spec_fingerprint",
        Value::make_string(strf("%016llx", static_cast<unsigned long long>(
                                               spec.fingerprint()))));
  Value arr = Value::make_array();
  for (const std::size_t j : missing) arr.push_back(Value::make_u64(j));
  o.add("missing_jobs", std::move(arr));
  return o;
}

std::string FleetRetryManifest::canonical_text() const {
  return to_json().dump();
}

FleetRetryManifest FleetRetryManifest::from_json(const json::Value& v) {
  if (v.at("format").as_string() != kFleetRetryFormat) {
    throw harness::ShardFormatError("FleetRetryManifest: not a " +
                                    std::string(kFleetRetryFormat) +
                                    " document");
  }
  if (v.at("version").as_i64() != harness::kShardFormatVersion) {
    throw harness::ShardFormatError(strf(
        "FleetRetryManifest: unsupported version %lld (this build speaks %d)",
        static_cast<long long>(v.at("version").as_i64()),
        harness::kShardFormatVersion));
  }
  FleetRetryManifest m;
  m.spec = FleetSpec::from_json(v.at("spec"));
  const std::string want = strf(
      "%016llx", static_cast<unsigned long long>(m.spec.fingerprint()));
  if (v.at("spec_fingerprint").as_string() != want) {
    throw harness::ShardFormatError(
        "FleetRetryManifest: embedded spec does not match its recorded "
        "fingerprint (manifest was edited or corrupted)");
  }
  const std::size_t jobs = m.spec.topology.node_count();
  for (const Value& j : v.at("missing_jobs").as_array()) {
    m.missing.push_back(j.as_u64());
  }
  if (m.missing.empty()) {
    throw harness::ShardFormatError(
        "FleetRetryManifest: missing_jobs is empty");
  }
  for (std::size_t i = 0; i < m.missing.size(); ++i) {
    if (m.missing[i] >= jobs ||
        (i > 0 && m.missing[i] <= m.missing[i - 1])) {
      throw harness::ShardFormatError(
          "FleetRetryManifest: missing_jobs must be strictly ascending and "
          "in range");
    }
  }
  return m;
}

FleetRetryManifest FleetRetryManifest::parse(std::string_view text) {
  return from_json(json::parse(text));
}

FleetRetryManifest FleetRetryManifest::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw std::runtime_error("FleetRetryManifest: cannot open " + path);
  }
  std::stringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

FleetRetryManifest make_fleet_retry_manifest(
    const FleetSpec& spec, const FleetGatherReport& report) {
  if (report.complete()) {
    throw std::logic_error(
        "make_fleet_retry_manifest: gather is complete, nothing to retry");
  }
  FleetRetryManifest m;
  m.spec = spec;
  m.missing = report.missing;
  return m;
}

// -- finalize ----------------------------------------------------------------

FleetOutputs finalize_fleet(const FleetSpec& spec,
                            const std::vector<FleetNodeResult>& results) {
  const std::size_t nodes = spec.topology.node_count();
  if (results.size() != nodes) {
    throw std::invalid_argument(
        strf("finalize_fleet: %zu results for a fleet of %zu nodes",
             results.size(), nodes));
  }
  for (std::size_t n = 0; n < nodes; ++n) {
    if (results[n].epochs.size() != static_cast<std::size_t>(spec.epochs)) {
      throw std::invalid_argument(
          strf("finalize_fleet: node %zu has %zu epoch records, spec has %d "
               "epochs",
               n, results[n].epochs.size(), spec.epochs));
    }
  }
  const AllocationPlan plan = plan_allocations(spec);
  const double tolerated_wall =
      spec.epoch_seconds * (1.0 + spec.tolerated_slowdown);

  FleetOutputs out;

  // -- allocation trace CSV -------------------------------------------------
  std::string csv =
      "epoch,rack,node,node_index,rack_alloc_w,node_alloc_w,demand_w,"
      "intensity,wall_s,pkg_energy_j,dram_energy_j,violation\n";
  std::size_t violations = 0;
  std::size_t epoch_cells = 0;
  for (int e = 0; e < spec.epochs; ++e) {
    const auto ei = static_cast<std::size_t>(e);
    for (std::size_t n = 0; n < nodes; ++n) {
      const EpochRecord& rec = results[n].epochs[ei];
      const bool violated = rec.wall_seconds > tolerated_wall;
      if (violated) ++violations;
      ++epoch_cells;
      const int rack = spec.topology.rack_of(n);
      csv += strf("%d,%d,%d,%zu,", e, rack, spec.topology.slot_of(n), n);
      csv += g17(plan.rack_w[ei][static_cast<std::size_t>(rack)]) + ",";
      csv += g17(rec.alloc_w) + "," + g17(rec.demand_w) + ",";
      csv += g17(rec.intensity) + "," + g17(rec.wall_seconds) + ",";
      csv += g17(rec.pkg_energy_j) + "," + g17(rec.dram_energy_j) + ",";
      csv += violated ? "1\n" : "0\n";
    }
  }
  out.allocation_csv = std::move(csv);

  // -- fleet scorecard ------------------------------------------------------
  double pkg_j = 0.0;
  double dram_j = 0.0;
  double speed_sum = 0.0;
  double speed_sq_sum = 0.0;
  std::uint64_t faults = 0;
  std::uint64_t degradations = 0;
  for (const FleetNodeResult& r : results) {
    pkg_j += r.pkg_energy_j;
    dram_j += r.dram_energy_j;
    speed_sum += r.avg_speed;
    speed_sq_sum += r.avg_speed * r.avg_speed;
    faults += r.faults_injected;
    degradations += r.degradations;
  }
  out.total_energy_j = pkg_j + dram_j;
  out.violation_rate =
      epoch_cells > 0
          ? static_cast<double>(violations) / static_cast<double>(epoch_cells)
          : 0.0;
  out.mean_speed = speed_sum / static_cast<double>(nodes);
  // Jain's fairness index over per-node progress speeds: 1 = perfectly
  // even, 1/n = one node gets everything.
  out.jain_fairness =
      speed_sq_sum > 0.0
          ? (speed_sum * speed_sum) /
                (static_cast<double>(nodes) * speed_sq_sum)
          : 0.0;

  out.summary_csv =
      "allocator,traffic,racks,nodes_per_rack,sockets_per_node,epochs,"
      "budget_w,total_energy_j,pkg_energy_j,dram_energy_j,violation_rate,"
      "jain_fairness,mean_speed,faults_injected,degradations\n";
  out.summary_csv += spec.allocator + "," + spec.traffic_profile + ",";
  out.summary_csv += strf("%d,%d,%d,%d,", spec.topology.racks,
                          spec.topology.nodes_per_rack,
                          spec.topology.sockets_per_node, spec.epochs);
  out.summary_csv += g17(plan.budget_w) + "," + g17(out.total_energy_j) +
                     "," + g17(pkg_j) + "," + g17(dram_j) + ",";
  out.summary_csv += g17(out.violation_rate) + "," +
                     g17(out.jain_fairness) + "," + g17(out.mean_speed) + ",";
  out.summary_csv += strf("%llu,%llu\n",
                          static_cast<unsigned long long>(faults),
                          static_cast<unsigned long long>(degradations));

  // -- telemetry plane ------------------------------------------------------
  // Built at finalize time from the plan and the gathered results (the
  // node simulations run telemetry-free), so the exposition is the same
  // bytes however the nodes were executed.
  telemetry::MetricsRegistry reg;
  const auto ei_last = static_cast<std::size_t>(spec.epochs - 1);
  reg.gauge("dufp_fleet_budget_watts", "Cluster-wide power budget",
            {{"allocator", spec.allocator}})
      .set(plan.budget_w);
  for (int r = 0; r < spec.topology.racks; ++r) {
    reg.gauge("dufp_fleet_rack_allocation_watts",
              "Rack budget in the final epoch",
              {{"rack", std::to_string(r)}})
        .set(plan.rack_w[ei_last][static_cast<std::size_t>(r)]);
  }
  telemetry::Histogram share = reg.histogram(
      "dufp_fleet_allocation_share",
      "Granted/demanded watts per (node, epoch)",
      {0.5, 0.7, 0.8, 0.9, 0.95, 1.0});
  telemetry::Histogram slowdown = reg.histogram(
      "dufp_fleet_epoch_slowdown",
      "Epoch wall time over nominal, minus one, per (node, epoch)",
      {0.0, 0.02, 0.05, 0.1, 0.2, 0.5});
  for (std::size_t n = 0; n < nodes; ++n) {
    reg.gauge("dufp_fleet_node_allocation_watts",
              "Node budget in the final epoch",
              {{"node", std::to_string(spec.topology.slot_of(n))},
               {"rack", std::to_string(spec.topology.rack_of(n))}})
        .set(plan.node_w[ei_last][n]);
    for (const EpochRecord& rec : results[n].epochs) {
      if (rec.demand_w > 0.0) share.observe(rec.alloc_w / rec.demand_w);
      slowdown.observe(rec.wall_seconds / spec.epoch_seconds - 1.0);
    }
  }
  reg.gauge("dufp_fleet_violation_rate",
            "Fraction of (node, epoch) cells over the tolerated slowdown")
      .set(out.violation_rate);
  reg.gauge("dufp_fleet_jain_fairness",
            "Jain's index over per-node progress speeds")
      .set(out.jain_fairness);
  reg.gauge("dufp_fleet_total_energy_joules",
            "Package + DRAM energy over the whole fleet")
      .set(out.total_energy_j);
  std::ostringstream prom;
  telemetry::write_prometheus(reg.collect(), prom);
  out.prometheus = prom.str();

  return out;
}

FleetOutputs run_fleet_serial(const FleetSpec& spec) {
  const AllocationPlan plan = plan_allocations(spec);
  std::vector<std::size_t> nodes(spec.topology.node_count());
  for (std::size_t n = 0; n < nodes.size(); ++n) nodes[n] = n;
  // Lane-batched node execution (sim::MultiSim): byte-identical to the
  // per-node loop this replaces, warm cell-edge tables across lanes.
  return finalize_fleet(spec, run_fleet_nodes(spec, nodes, plan));
}

harness::SupervisorReport supervise_fleet_run(
    const FleetSpec& spec, const harness::SupervisorOptions& options) {
  harness::SupervisedWork work;
  work.job_count = spec.topology.node_count();
  work.run = [&spec](const harness::ShardRunOptions& opts,
                     std::ostream& out) { run_fleet_shard(spec, opts, out); };
  return harness::supervise_work(work, options);
}

}  // namespace dufp::fleet
