#include "fleet/node_run.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "core/agent.h"
#include "core/budget_balancer.h"
#include "core/policy_registry.h"
#include "faults/fault_plan.h"
#include "faults/faulty_counter_source.h"
#include "faults/faulty_msr.h"
#include "harness/plan.h"
#include "msr/device.h"
#include "perfmon/sim_counter_source.h"
#include "powercap/pstate_control.h"
#include "powercap/uncore_control.h"
#include "powercap/zone.h"
#include "sim/simulation.h"
#include "workloads/profiles.h"

namespace dufp::fleet {

namespace {

using json::Value;

Value hex(double v) { return Value::make_string(json::double_to_hex(v)); }
double unhex(const Value& v) { return json::hex_to_double(v.as_string()); }

/// The time-weighted mean of an app's phase sequence: one PhaseSpec that
/// consumes the same FLOPs, bytes and actuator sensitivity per second as
/// the whole application does on average.  The epoch phases are scaled
/// copies of this.
workloads::PhaseSpec mean_phase(const workloads::WorkloadProfile& app) {
  workloads::PhaseSpec mean;
  mean.gflops_ref = 0.0;
  mean.oi = 0.0;
  mean.w_cpu = mean.w_mem = mean.w_unc = mean.w_fixed = 0.0;
  mean.cpu_activity = mean.mem_activity = 0.0;
  double total = 0.0;
  double bytes_rate = 0.0;
  for (const std::size_t idx : app.sequence()) {
    const workloads::PhaseSpec& p = app.phase(idx);
    const double w = p.nominal_seconds;
    total += w;
    mean.gflops_ref += w * p.gflops_ref;
    bytes_rate += w * p.bytes_rate_ref_gbps();
    mean.w_cpu += w * p.w_cpu;
    mean.w_mem += w * p.w_mem;
    mean.w_unc += w * p.w_unc;
    mean.w_fixed += w * p.w_fixed;
    mean.cpu_activity += w * p.cpu_activity;
    mean.mem_activity += w * p.mem_activity;
  }
  mean.gflops_ref /= total;
  bytes_rate /= total;
  // Mean OI is the ratio of the mean rates, not the mean of ratios —
  // that keeps total FLOPs and total bytes both faithful.
  mean.oi = mean.gflops_ref / bytes_rate;
  mean.w_cpu /= total;
  mean.w_mem /= total;
  mean.w_unc /= total;
  mean.w_fixed /= total;
  mean.cpu_activity /= total;
  mean.mem_activity /= total;
  // The convex combination sums to 1 only up to rounding; PhaseSpec
  // validates at 1e-6, so renormalize exactly.
  const double wsum = mean.w_cpu + mean.w_mem + mean.w_unc + mean.w_fixed;
  mean.w_cpu /= wsum;
  mean.w_mem /= wsum;
  mean.w_unc /= wsum;
  mean.w_fixed /= wsum;
  return mean;
}

/// One phase per epoch, each the mean phase scaled by that epoch's
/// traffic intensity: demand (FLOP rate) swings over [0.2x, 1.0x] and
/// the activity factors over [0.5x, 1.0x], so an idle epoch draws
/// noticeably less power but never models a fully powered-off node.
workloads::WorkloadProfile node_profile(const FleetSpec& spec,
                                        std::size_t node,
                                        const AllocationPlan& plan) {
  const workloads::WorkloadProfile& app = workloads::profile(spec.app);
  const workloads::PhaseSpec mean = mean_phase(app);
  workloads::WorkloadProfile out(
      strf("%s-fleet", app.name().c_str()),
      strf("%s scaled by fleet traffic, one phase per epoch",
           app.name().c_str()));
  for (int e = 0; e < spec.epochs; ++e) {
    const double intensity =
        plan.node_intensity[static_cast<std::size_t>(e)][node];
    workloads::PhaseSpec p = mean;
    p.name = strf("e%d", e);
    p.nominal_seconds = spec.epoch_seconds;
    p.gflops_ref = mean.gflops_ref * (0.2 + 0.8 * intensity);
    const double act = 0.5 + 0.5 * intensity;
    p.cpu_activity = mean.cpu_activity * act;
    p.mem_activity = mean.mem_activity * act;
    out.add_phase(p);
    out.then(p.name);
  }
  return out;
}

}  // namespace

json::Value encode_node_result(const FleetNodeResult& result) {
  Value o = Value::make_object();
  Value epochs = Value::make_array();
  for (const EpochRecord& e : result.epochs) {
    Value rec = Value::make_object();
    rec.add("alloc_w", hex(e.alloc_w));
    rec.add("demand_w", hex(e.demand_w));
    rec.add("intensity", hex(e.intensity));
    rec.add("wall_seconds", hex(e.wall_seconds));
    rec.add("pkg_energy_j", hex(e.pkg_energy_j));
    rec.add("dram_energy_j", hex(e.dram_energy_j));
    epochs.push_back(std::move(rec));
  }
  o.add("epochs", std::move(epochs));
  o.add("exec_seconds", hex(result.exec_seconds));
  o.add("pkg_energy_j", hex(result.pkg_energy_j));
  o.add("dram_energy_j", hex(result.dram_energy_j));
  o.add("avg_speed", hex(result.avg_speed));
  o.add("faults_injected", Value::make_u64(result.faults_injected));
  o.add("degradations", Value::make_u64(result.degradations));
  return o;
}

FleetNodeResult decode_node_result(const json::Value& v) {
  FleetNodeResult result;
  for (const Value& rec : v.at("epochs").as_array()) {
    EpochRecord e;
    e.alloc_w = unhex(rec.at("alloc_w"));
    e.demand_w = unhex(rec.at("demand_w"));
    e.intensity = unhex(rec.at("intensity"));
    e.wall_seconds = unhex(rec.at("wall_seconds"));
    e.pkg_energy_j = unhex(rec.at("pkg_energy_j"));
    e.dram_energy_j = unhex(rec.at("dram_energy_j"));
    result.epochs.push_back(e);
  }
  result.exec_seconds = unhex(v.at("exec_seconds"));
  result.pkg_energy_j = unhex(v.at("pkg_energy_j"));
  result.dram_energy_j = unhex(v.at("dram_energy_j"));
  result.avg_speed = unhex(v.at("avg_speed"));
  result.faults_injected = v.at("faults_injected").as_u64();
  result.degradations = v.at("degradations").as_u64();
  return result;
}

FleetNodeResult run_fleet_node(const FleetSpec& spec, std::size_t node,
                               const AllocationPlan& plan, bool time_leap) {
  {
    const auto problems = spec.validate();
    if (!problems.empty()) {
      std::string msg = "run_fleet_node: invalid spec:";
      for (std::size_t i = 0; i < problems.size(); ++i) {
        msg += (i == 0 ? " " : "; ") + problems[i];
      }
      throw std::invalid_argument(msg);
    }
  }
  if (node >= spec.topology.node_count()) {
    throw std::invalid_argument(
        strf("run_fleet_node: node %zu out of range (fleet has %zu nodes)",
             node, spec.topology.node_count()));
  }

  const int sockets = spec.topology.sockets_per_node;
  const double node_floor =
      spec.min_cap_w * static_cast<double>(sockets);

  hw::MachineConfig machine;
  machine.sockets = sockets;

  const workloads::WorkloadProfile profile = node_profile(spec, node, plan);

  sim::SimulationOptions sim_opts;
  sim_opts.seed = harness::job_seed(spec.seed, static_cast<int>(node));
  // Phases must map 1:1 onto epochs for the per-epoch accounting below,
  // so the per-entry duration jitter is off; run-to-run variation enters
  // through the traffic model and sampler noise instead.
  sim_opts.workload_jitter_sigma = 0.0;
  sim_opts.max_seconds = std::max(
      60.0, static_cast<double>(spec.epochs) * spec.epoch_seconds * 100.0);
  sim_opts.time_leap = time_leap;

  sim::Simulation s(machine, profile, sim_opts);
  const int n = s.socket_count();

  const bool inject = spec.fault_rate > 0.0;
  faults::FaultOptions fault_opts;
  if (inject) {
    fault_opts = faults::FaultOptions::storm(spec.fault_rate, spec.fault_seed);
  }

  // Wiring mirrors harness::run_once: optional fault decorators between
  // the control plane and the substrate, zones / uncore / counters per
  // socket, injectors armed only after construction-time reads.
  std::vector<std::unique_ptr<faults::FaultPlan>> plans;
  std::vector<std::unique_ptr<faults::FaultyMsrDevice>> fdevs;
  std::vector<std::unique_ptr<faults::FaultyCounterSource>> fsrcs;
  std::vector<std::unique_ptr<powercap::PackageZone>> zones;
  std::vector<std::unique_ptr<powercap::UncoreControl>> uncores;
  std::vector<std::unique_ptr<powercap::PstateControl>> pstates;
  std::vector<std::unique_ptr<perfmon::SimCounterSource>> sources;
  std::vector<std::unique_ptr<core::Agent>> agents;

  for (int i = 0; i < n; ++i) {
    msr::MsrDevice* dev = &s.msr(i);
    if (inject) {
      Rng base(fault_opts.seed);
      Rng per_run = base.fork(sim_opts.seed);
      plans.push_back(std::make_unique<faults::FaultPlan>(
          fault_opts, per_run.fork(static_cast<std::uint64_t>(i))));
      fdevs.push_back(
          std::make_unique<faults::FaultyMsrDevice>(s.msr(i), *plans.back()));
      dev = fdevs.back().get();  // still disarmed: wiring reads clean
    }
    zones.push_back(std::make_unique<powercap::PackageZone>(*dev, i));
    uncores.push_back(std::make_unique<powercap::UncoreControl>(*dev));
    sources.push_back(
        std::make_unique<perfmon::SimCounterSource>(s.socket(i), *dev));
    if (inject) {
      fsrcs.push_back(std::make_unique<faults::FaultyCounterSource>(
          *sources.back(), *plans.back()));
    }
  }

  // The node-level balancer splits the node budget among its sockets.
  // It reads the *clean* MSRs: its APERF/MPERF sampling models an
  // out-of-band management path (a BMC), and a faulted read escaping a
  // periodic callback would abort the run.
  core::BalancerConfig bal_cfg;
  bal_cfg.min_cap_w = spec.min_cap_w;
  bal_cfg.max_cap_w = spec.max_cap_w;
  bal_cfg.machine_budget_w =
      std::max(plan.node_w[0][node], node_floor);
  std::vector<powercap::PackageZone*> bal_zones;
  std::vector<const msr::MsrDevice*> bal_msrs;
  for (int i = 0; i < n; ++i) {
    bal_zones.push_back(zones[static_cast<std::size_t>(i)].get());
    bal_msrs.push_back(&s.msr(i));
  }
  core::BudgetBalancer balancer(bal_cfg, std::move(bal_zones),
                                std::move(bal_msrs),
                                machine.socket.core_max_mhz,
                                machine.socket.core_base_mhz);
  // Best effort under fault injection (same stance as run_once's
  // phase-cap listener): the balancer's cap writes go through the faulty
  // zones, and a faulted rebalance tick is skipped — the sockets keep
  // their previous caps until the next tick — rather than crashing the
  // node.
  s.schedule_periodic(SimTime::from_millis(200), [&balancer](SimTime now) {
    try {
      balancer.on_interval(now);
    } catch (const msr::MsrError&) {
    }
  });

  // The epoch clock: at each boundary, move the node's cap to the next
  // entry of the plan's schedule.  Once the schedule is exhausted (the
  // node overran its nominal wall time under throttling) the last budget
  // holds.  The max() guards the balancer's floor check against the
  // contract's 1e-9 bound slack.
  {
    auto epoch = std::make_shared<int>(0);
    const auto epochs = spec.epochs;
    const auto& node_w = plan.node_w;
    s.schedule_periodic(
        SimTime::from_seconds(spec.epoch_seconds),
        [epoch, epochs, &node_w, node, node_floor, &balancer](SimTime) {
          ++*epoch;
          if (*epoch < epochs) {
            balancer.set_machine_budget_w(std::max(
                node_w[static_cast<std::size_t>(*epoch)][node], node_floor));
          }
        });
  }

  // Per-socket agents, exactly as in run_once.
  const std::string policy_name =
      core::PolicyRegistry::instance().at(spec.policy).name;
  core::PolicyConfig policy;
  policy.tolerated_slowdown = spec.tolerated_slowdown;
  policy.min_cap_w = spec.min_cap_w;
  policy =
      core::PolicyRegistry::instance().apply_config_defaults(policy_name,
                                                             policy);
  for (int i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const perfmon::CounterSource& source =
        inject ? static_cast<const perfmon::CounterSource&>(*fsrcs[idx])
               : *sources[idx];
    perfmon::SamplerOptions so;
    so.noise_sigma = 0.001;
    perfmon::IntervalSampler sampler(
        source, machine.socket.core_base_mhz,
        s.fork_rng(0x2000 + static_cast<std::uint64_t>(i)), so);
    powercap::PstateControl* pstate = nullptr;
    if (policy.manage_core_frequency) {
      pstates.push_back(std::make_unique<powercap::PstateControl>(
          inject ? static_cast<msr::MsrDevice&>(*fdevs[idx]) : s.msr(i)));
      pstate = pstates.back().get();
    }
    agents.push_back(std::make_unique<core::Agent>(
        policy_name, policy, *zones[idx], *uncores[idx], std::move(sampler),
        pstate, nullptr));
    core::Agent* agent = agents.back().get();
    s.schedule_periodic(policy.interval,
                        [agent](SimTime now) { agent->on_interval(now); });
  }

  if (inject) {
    for (auto& d : fdevs) d->arm();
    for (auto& f : fsrcs) f->arm();
  }

  const sim::RunSummary summary = s.run();

  FleetNodeResult result;
  result.epochs.resize(static_cast<std::size_t>(spec.epochs));
  for (int e = 0; e < spec.epochs; ++e) {
    const auto ei = static_cast<std::size_t>(e);
    EpochRecord& rec = result.epochs[ei];
    rec.alloc_w = plan.node_w[ei][node];
    rec.demand_w = plan.node_demand_w[ei][node];
    rec.intensity = plan.node_intensity[ei][node];
  }
  for (int i = 0; i < n; ++i) {
    const auto& totals = s.phase_totals(i);
    for (int e = 0; e < spec.epochs; ++e) {
      const auto ei = static_cast<std::size_t>(e);
      EpochRecord& rec = result.epochs[ei];
      // Sockets run the epoch in parallel; the epoch is as slow as its
      // slowest socket.
      rec.wall_seconds = std::max(rec.wall_seconds, totals[ei].wall_seconds);
      rec.pkg_energy_j += totals[ei].pkg_energy_j;
      rec.dram_energy_j += totals[ei].dram_energy_j;
    }
  }
  result.exec_seconds = summary.exec_seconds;
  result.pkg_energy_j = summary.pkg_energy_j;
  result.dram_energy_j = summary.dram_energy_j;
  result.avg_speed = summary.exec_seconds > 0.0
                         ? profile.nominal_total_seconds() /
                               summary.exec_seconds
                         : 0.0;
  for (const auto& agent : agents) {
    result.degradations += agent->stats().health.degradations;
  }
  for (const auto& p : plans) {
    result.faults_injected += p->stats().total();
  }
  return result;
}

}  // namespace dufp::fleet
