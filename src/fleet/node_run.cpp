#include "fleet/node_run.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/expect.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "core/agent.h"
#include "core/budget_balancer.h"
#include "core/policy_registry.h"
#include "faults/fault_plan.h"
#include "faults/faulty_counter_source.h"
#include "faults/faulty_msr.h"
#include "harness/options.h"
#include "harness/plan.h"
#include "msr/device.h"
#include "sim/multi_sim.h"
#include "perfmon/sim_counter_source.h"
#include "powercap/pstate_control.h"
#include "powercap/uncore_control.h"
#include "powercap/zone.h"
#include "sim/simulation.h"
#include "workloads/profiles.h"

namespace dufp::fleet {

namespace {

using json::Value;

Value hex(double v) { return Value::make_string(json::double_to_hex(v)); }
double unhex(const Value& v) { return json::hex_to_double(v.as_string()); }

/// The time-weighted mean of an app's phase sequence: one PhaseSpec that
/// consumes the same FLOPs, bytes and actuator sensitivity per second as
/// the whole application does on average.  The epoch phases are scaled
/// copies of this.
workloads::PhaseSpec mean_phase(const workloads::WorkloadProfile& app) {
  workloads::PhaseSpec mean;
  mean.gflops_ref = 0.0;
  mean.oi = 0.0;
  mean.w_cpu = mean.w_mem = mean.w_unc = mean.w_fixed = 0.0;
  mean.cpu_activity = mean.mem_activity = 0.0;
  double total = 0.0;
  double bytes_rate = 0.0;
  for (const std::size_t idx : app.sequence()) {
    const workloads::PhaseSpec& p = app.phase(idx);
    const double w = p.nominal_seconds;
    total += w;
    mean.gflops_ref += w * p.gflops_ref;
    bytes_rate += w * p.bytes_rate_ref_gbps();
    mean.w_cpu += w * p.w_cpu;
    mean.w_mem += w * p.w_mem;
    mean.w_unc += w * p.w_unc;
    mean.w_fixed += w * p.w_fixed;
    mean.cpu_activity += w * p.cpu_activity;
    mean.mem_activity += w * p.mem_activity;
  }
  mean.gflops_ref /= total;
  bytes_rate /= total;
  // Mean OI is the ratio of the mean rates, not the mean of ratios —
  // that keeps total FLOPs and total bytes both faithful.
  mean.oi = mean.gflops_ref / bytes_rate;
  mean.w_cpu /= total;
  mean.w_mem /= total;
  mean.w_unc /= total;
  mean.w_fixed /= total;
  mean.cpu_activity /= total;
  mean.mem_activity /= total;
  // The convex combination sums to 1 only up to rounding; PhaseSpec
  // validates at 1e-6, so renormalize exactly.
  const double wsum = mean.w_cpu + mean.w_mem + mean.w_unc + mean.w_fixed;
  mean.w_cpu /= wsum;
  mean.w_mem /= wsum;
  mean.w_unc /= wsum;
  mean.w_fixed /= wsum;
  return mean;
}

/// One phase per epoch, each the mean phase scaled by that epoch's
/// traffic intensity: demand (FLOP rate) swings over [0.2x, 1.0x] and
/// the activity factors over [0.5x, 1.0x], so an idle epoch draws
/// noticeably less power but never models a fully powered-off node.
workloads::WorkloadProfile node_profile(const FleetSpec& spec,
                                        std::size_t node,
                                        const AllocationPlan& plan) {
  const workloads::WorkloadProfile& app = workloads::profile(spec.app);
  const workloads::PhaseSpec mean = mean_phase(app);
  workloads::WorkloadProfile out(
      strf("%s-fleet", app.name().c_str()),
      strf("%s scaled by fleet traffic, one phase per epoch",
           app.name().c_str()));
  for (int e = 0; e < spec.epochs; ++e) {
    const double intensity =
        plan.node_intensity[static_cast<std::size_t>(e)][node];
    workloads::PhaseSpec p = mean;
    p.name = strf("e%d", e);
    p.nominal_seconds = spec.epoch_seconds;
    p.gflops_ref = mean.gflops_ref * (0.2 + 0.8 * intensity);
    const double act = 0.5 + 0.5 * intensity;
    p.cpu_activity = mean.cpu_activity * act;
    p.mem_activity = mean.mem_activity * act;
    out.add_phase(p);
    out.then(p.name);
  }
  return out;
}

}  // namespace

json::Value encode_node_result(const FleetNodeResult& result) {
  Value o = Value::make_object();
  Value epochs = Value::make_array();
  for (const EpochRecord& e : result.epochs) {
    Value rec = Value::make_object();
    rec.add("alloc_w", hex(e.alloc_w));
    rec.add("demand_w", hex(e.demand_w));
    rec.add("intensity", hex(e.intensity));
    rec.add("wall_seconds", hex(e.wall_seconds));
    rec.add("pkg_energy_j", hex(e.pkg_energy_j));
    rec.add("dram_energy_j", hex(e.dram_energy_j));
    epochs.push_back(std::move(rec));
  }
  o.add("epochs", std::move(epochs));
  o.add("exec_seconds", hex(result.exec_seconds));
  o.add("pkg_energy_j", hex(result.pkg_energy_j));
  o.add("dram_energy_j", hex(result.dram_energy_j));
  o.add("avg_speed", hex(result.avg_speed));
  o.add("faults_injected", Value::make_u64(result.faults_injected));
  o.add("degradations", Value::make_u64(result.degradations));
  return o;
}

FleetNodeResult decode_node_result(const json::Value& v) {
  FleetNodeResult result;
  for (const Value& rec : v.at("epochs").as_array()) {
    EpochRecord e;
    e.alloc_w = unhex(rec.at("alloc_w"));
    e.demand_w = unhex(rec.at("demand_w"));
    e.intensity = unhex(rec.at("intensity"));
    e.wall_seconds = unhex(rec.at("wall_seconds"));
    e.pkg_energy_j = unhex(rec.at("pkg_energy_j"));
    e.dram_energy_j = unhex(rec.at("dram_energy_j"));
    result.epochs.push_back(e);
  }
  result.exec_seconds = unhex(v.at("exec_seconds"));
  result.pkg_energy_j = unhex(v.at("pkg_energy_j"));
  result.dram_energy_j = unhex(v.at("dram_energy_j"));
  result.avg_speed = unhex(v.at("avg_speed"));
  result.faults_injected = v.at("faults_injected").as_u64();
  result.degradations = v.at("degradations").as_u64();
  return result;
}

/// Everything a prepared node run owns.  Heap-held behind the pimpl so
/// every address captured during wiring (profile, balancer, zones, the
/// budget schedule) stays stable for the simulation's lifetime.
struct PreparedFleetNode::Impl {
  workloads::WorkloadProfile profile{"fleet-node-placeholder", ""};
  std::unique_ptr<sim::Simulation> sim;

  std::vector<std::unique_ptr<faults::FaultPlan>> plans;
  std::vector<std::unique_ptr<faults::FaultyMsrDevice>> fdevs;
  std::vector<std::unique_ptr<faults::FaultyCounterSource>> fsrcs;
  std::vector<std::unique_ptr<powercap::PackageZone>> zones;
  std::vector<std::unique_ptr<powercap::UncoreControl>> uncores;
  std::vector<std::unique_ptr<powercap::PstateControl>> pstates;
  std::vector<std::unique_ptr<perfmon::SimCounterSource>> sources;
  std::vector<std::unique_ptr<core::Agent>> agents;
  std::unique_ptr<core::BudgetBalancer> balancer;

  /// Per-epoch node budgets, already floored — the epoch clock reads
  /// these, so the AllocationPlan itself need not outlive prepare.
  std::vector<double> budgets;

  /// Result skeleton with the plan columns (alloc/demand/intensity)
  /// copied in at prepare time; finish() fills the simulated fields.
  FleetNodeResult result;
  int epochs = 0;
  bool finished = false;
};

PreparedFleetNode::PreparedFleetNode(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
PreparedFleetNode::PreparedFleetNode(PreparedFleetNode&&) noexcept = default;
PreparedFleetNode& PreparedFleetNode::operator=(PreparedFleetNode&&) noexcept =
    default;
PreparedFleetNode::~PreparedFleetNode() = default;

sim::Simulation& PreparedFleetNode::simulation() { return *impl_->sim; }

FleetNodeResult run_fleet_node(const FleetSpec& spec, std::size_t node,
                               const AllocationPlan& plan, bool time_leap) {
  PreparedFleetNode prepared = prepare_fleet_node(spec, node, plan, time_leap);
  prepared.simulation().run();
  return prepared.finish();
}

PreparedFleetNode prepare_fleet_node(const FleetSpec& spec, std::size_t node,
                                     const AllocationPlan& plan,
                                     bool time_leap) {
  {
    const auto problems = spec.validate();
    if (!problems.empty()) {
      std::string msg = "run_fleet_node: invalid spec:";
      for (std::size_t i = 0; i < problems.size(); ++i) {
        msg += (i == 0 ? " " : "; ") + problems[i];
      }
      throw std::invalid_argument(msg);
    }
  }
  if (node >= spec.topology.node_count()) {
    throw std::invalid_argument(
        strf("run_fleet_node: node %zu out of range (fleet has %zu nodes)",
             node, spec.topology.node_count()));
  }

  const int sockets = spec.topology.sockets_per_node;
  const double node_floor =
      spec.min_cap_w * static_cast<double>(sockets);

  hw::MachineConfig machine;
  machine.sockets = sockets;

  auto impl = std::make_unique<PreparedFleetNode::Impl>();
  impl->epochs = spec.epochs;
  impl->profile = node_profile(spec, node, plan);
  const workloads::WorkloadProfile& profile = impl->profile;

  sim::SimulationOptions sim_opts;
  sim_opts.seed = harness::job_seed(spec.seed, static_cast<int>(node));
  // Phases must map 1:1 onto epochs for the per-epoch accounting below,
  // so the per-entry duration jitter is off; run-to-run variation enters
  // through the traffic model and sampler noise instead.
  sim_opts.workload_jitter_sigma = 0.0;
  sim_opts.max_seconds = std::max(
      60.0, static_cast<double>(spec.epochs) * spec.epoch_seconds * 100.0);
  sim_opts.time_leap = time_leap;

  impl->sim = std::make_unique<sim::Simulation>(machine, profile, sim_opts);
  sim::Simulation& s = *impl->sim;
  const int n = s.socket_count();

  const bool inject = spec.fault_rate > 0.0;
  faults::FaultOptions fault_opts;
  if (inject) {
    fault_opts = faults::FaultOptions::storm(spec.fault_rate, spec.fault_seed);
  }

  // Wiring mirrors harness::prepare_run: optional fault decorators
  // between the control plane and the substrate, zones / uncore /
  // counters per socket, injectors armed only after construction-time
  // reads.  All owned by the Impl so their addresses survive the return.
  auto& plans = impl->plans;
  auto& fdevs = impl->fdevs;
  auto& fsrcs = impl->fsrcs;
  auto& zones = impl->zones;
  auto& uncores = impl->uncores;
  auto& pstates = impl->pstates;
  auto& sources = impl->sources;
  auto& agents = impl->agents;

  for (int i = 0; i < n; ++i) {
    msr::MsrDevice* dev = &s.msr(i);
    if (inject) {
      Rng base(fault_opts.seed);
      Rng per_run = base.fork(sim_opts.seed);
      plans.push_back(std::make_unique<faults::FaultPlan>(
          fault_opts, per_run.fork(static_cast<std::uint64_t>(i))));
      fdevs.push_back(
          std::make_unique<faults::FaultyMsrDevice>(s.msr(i), *plans.back()));
      dev = fdevs.back().get();  // still disarmed: wiring reads clean
    }
    zones.push_back(std::make_unique<powercap::PackageZone>(*dev, i));
    uncores.push_back(std::make_unique<powercap::UncoreControl>(*dev));
    sources.push_back(
        std::make_unique<perfmon::SimCounterSource>(s.socket(i), *dev));
    if (inject) {
      fsrcs.push_back(std::make_unique<faults::FaultyCounterSource>(
          *sources.back(), *plans.back()));
    }
  }

  // The node-level balancer splits the node budget among its sockets.
  // It reads the *clean* MSRs: its APERF/MPERF sampling models an
  // out-of-band management path (a BMC), and a faulted read escaping a
  // periodic callback would abort the run.
  // The budget schedule, already floored: the epoch clock reads this
  // copy, so neither the plan nor the spec must outlive prepare.  The
  // max() guards the balancer's floor check against the contract's 1e-9
  // bound slack.
  impl->budgets.reserve(static_cast<std::size_t>(spec.epochs));
  for (int e = 0; e < spec.epochs; ++e) {
    impl->budgets.push_back(
        std::max(plan.node_w[static_cast<std::size_t>(e)][node], node_floor));
  }

  core::BalancerConfig bal_cfg;
  bal_cfg.min_cap_w = spec.min_cap_w;
  bal_cfg.max_cap_w = spec.max_cap_w;
  bal_cfg.machine_budget_w = impl->budgets[0];
  std::vector<powercap::PackageZone*> bal_zones;
  std::vector<const msr::MsrDevice*> bal_msrs;
  for (int i = 0; i < n; ++i) {
    bal_zones.push_back(zones[static_cast<std::size_t>(i)].get());
    bal_msrs.push_back(&s.msr(i));
  }
  impl->balancer = std::make_unique<core::BudgetBalancer>(
      bal_cfg, std::move(bal_zones), std::move(bal_msrs),
      machine.socket.core_max_mhz, machine.socket.core_base_mhz);
  core::BudgetBalancer* balancer = impl->balancer.get();
  // Best effort under fault injection (same stance as run_once's
  // phase-cap listener): the balancer's cap writes go through the faulty
  // zones, and a faulted rebalance tick is skipped — the sockets keep
  // their previous caps until the next tick — rather than crashing the
  // node.
  s.schedule_periodic(SimTime::from_millis(200), [balancer](SimTime now) {
    try {
      balancer->on_interval(now);
    } catch (const msr::MsrError&) {
    }
  });

  // The epoch clock: at each boundary, move the node's cap to the next
  // entry of the schedule.  Once the schedule is exhausted (the node
  // overran its nominal wall time under throttling) the last budget
  // holds.
  {
    auto epoch = std::make_shared<int>(0);
    const std::vector<double>* budgets = &impl->budgets;
    s.schedule_periodic(SimTime::from_seconds(spec.epoch_seconds),
                        [epoch, budgets, balancer](SimTime) {
                          ++*epoch;
                          if (static_cast<std::size_t>(*epoch) <
                              budgets->size()) {
                            balancer->set_machine_budget_w(
                                (*budgets)[static_cast<std::size_t>(*epoch)]);
                          }
                        });
  }

  // Per-socket agents, exactly as in run_once.
  const std::string policy_name =
      core::PolicyRegistry::instance().at(spec.policy).name;
  core::PolicyConfig policy;
  policy.tolerated_slowdown = spec.tolerated_slowdown;
  policy.min_cap_w = spec.min_cap_w;
  policy =
      core::PolicyRegistry::instance().apply_config_defaults(policy_name,
                                                             policy);
  for (int i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const perfmon::CounterSource& source =
        inject ? static_cast<const perfmon::CounterSource&>(*fsrcs[idx])
               : *sources[idx];
    perfmon::SamplerOptions so;
    so.noise_sigma = 0.001;
    perfmon::IntervalSampler sampler(
        source, machine.socket.core_base_mhz,
        s.fork_rng(0x2000 + static_cast<std::uint64_t>(i)), so);
    powercap::PstateControl* pstate = nullptr;
    if (policy.manage_core_frequency) {
      pstates.push_back(std::make_unique<powercap::PstateControl>(
          inject ? static_cast<msr::MsrDevice&>(*fdevs[idx]) : s.msr(i)));
      pstate = pstates.back().get();
    }
    agents.push_back(std::make_unique<core::Agent>(
        policy_name, policy, *zones[idx], *uncores[idx], std::move(sampler),
        pstate, nullptr));
    core::Agent* agent = agents.back().get();
    s.schedule_periodic(policy.interval,
                        [agent](SimTime now) { agent->on_interval(now); });
  }

  if (inject) {
    for (auto& d : fdevs) d->arm();
    for (auto& f : fsrcs) f->arm();
  }

  // The plan columns the result reports verbatim, copied now so finish()
  // needs nothing beyond the Impl.
  impl->result.epochs.resize(static_cast<std::size_t>(spec.epochs));
  for (int e = 0; e < spec.epochs; ++e) {
    const auto ei = static_cast<std::size_t>(e);
    EpochRecord& rec = impl->result.epochs[ei];
    rec.alloc_w = plan.node_w[ei][node];
    rec.demand_w = plan.node_demand_w[ei][node];
    rec.intensity = plan.node_intensity[ei][node];
  }

  return PreparedFleetNode(std::move(impl));
}

FleetNodeResult PreparedFleetNode::finish() {
  Impl& impl = *impl_;
  DUFP_EXPECT(!impl.finished);
  impl.finished = true;
  sim::Simulation& s = *impl.sim;
  DUFP_EXPECT(s.finished());
  const sim::RunSummary summary = s.summarize();

  FleetNodeResult result = std::move(impl.result);
  const int n = s.socket_count();
  const auto epochs = static_cast<std::size_t>(impl.epochs);
  for (int i = 0; i < n; ++i) {
    const auto& totals = s.phase_totals(i);
    for (std::size_t ei = 0; ei < epochs; ++ei) {
      EpochRecord& rec = result.epochs[ei];
      // Sockets run the epoch in parallel; the epoch is as slow as its
      // slowest socket.
      rec.wall_seconds = std::max(rec.wall_seconds, totals[ei].wall_seconds);
      rec.pkg_energy_j += totals[ei].pkg_energy_j;
      rec.dram_energy_j += totals[ei].dram_energy_j;
    }
  }
  result.exec_seconds = summary.exec_seconds;
  result.pkg_energy_j = summary.pkg_energy_j;
  result.dram_energy_j = summary.dram_energy_j;
  result.avg_speed = summary.exec_seconds > 0.0
                         ? impl.profile.nominal_total_seconds() /
                               summary.exec_seconds
                         : 0.0;
  for (const auto& agent : impl.agents) {
    result.degradations += agent->stats().health.degradations;
  }
  for (const auto& p : impl.plans) {
    result.faults_injected += p->stats().total();
  }
  return result;
}

std::vector<FleetNodeResult> run_fleet_nodes(
    const FleetSpec& spec, const std::vector<std::size_t>& nodes,
    const AllocationPlan& plan, bool time_leap, int lanes) {
  const int width =
      lanes > 0 ? lanes : harness::BenchOptions::from_env().resolved_lanes();
  std::vector<FleetNodeResult> results;
  results.reserve(nodes.size());
  if (width <= 1) {
    for (const std::size_t node : nodes) {
      results.push_back(run_fleet_node(spec, node, plan, time_leap));
    }
    return results;
  }
  // Waves of `width` interleaved node simulations.  Each lane's outputs
  // are byte-identical to a standalone run (sim::MultiSim's contract),
  // and the shared cell cache keeps later waves warm.
  for (std::size_t begin = 0; begin < nodes.size();) {
    const std::size_t end =
        std::min(nodes.size(), begin + static_cast<std::size_t>(width));
    std::vector<PreparedFleetNode> wave;
    wave.reserve(end - begin);
    std::vector<sim::Simulation*> sims;
    sims.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      wave.push_back(prepare_fleet_node(spec, nodes[i], plan, time_leap));
      sims.push_back(&wave.back().simulation());
    }
    sim::MultiSim multi(std::move(sims));
    multi.run_all();
    for (auto& prepared : wave) results.push_back(prepared.finish());
    begin = end;
  }
  return results;
}

}  // namespace dufp::fleet
