#include "fleet/spec.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/string_util.h"
#include "core/policy_registry.h"
#include "fleet/allocator.h"
#include "fleet/traffic.h"
#include "harness/wire.h"

namespace dufp::fleet {

namespace {

using json::Value;

Value raw_double(double v) { return Value::make_raw_number(strf("%.17g", v)); }

}  // namespace

double FleetSpec::resolved_budget_w() const {
  if (global_budget_w > 0.0) return global_budget_w;
  return max_cap_w * static_cast<double>(topology.socket_count());
}

json::Value FleetSpec::to_json() const {
  Value o = Value::make_object();
  o.add("format", Value::make_string(kFleetSpecFormat));
  o.add("version", Value::make_i64(harness::kShardFormatVersion));
  o.add("name", Value::make_string(name));
  o.add("racks", Value::make_i64(topology.racks));
  o.add("nodes_per_rack", Value::make_i64(topology.nodes_per_rack));
  o.add("sockets_per_node", Value::make_i64(topology.sockets_per_node));
  o.add("allocator", Value::make_string(allocator));
  o.add("global_budget_w", raw_double(global_budget_w));
  o.add("epochs", Value::make_i64(epochs));
  o.add("epoch_seconds", raw_double(epoch_seconds));
  o.add("traffic", Value::make_string(traffic_profile));
  o.add("traffic_seed", Value::make_u64(traffic_seed));
  o.add("seed", Value::make_u64(seed));
  o.add("app", Value::make_string(workloads::app_name(app)));
  o.add("policy", Value::make_string(policy));
  o.add("tolerance", raw_double(tolerated_slowdown));
  o.add("min_cap_w", raw_double(min_cap_w));
  o.add("max_cap_w", raw_double(max_cap_w));
  o.add("fault_rate", raw_double(fault_rate));
  o.add("fault_seed", Value::make_u64(fault_seed));
  return o;
}

std::string FleetSpec::canonical_text() const { return to_json().dump(); }

std::uint64_t FleetSpec::fingerprint() const {
  return json::fnv1a(canonical_text());
}

FleetSpec FleetSpec::from_json(const json::Value& v) {
  if (v.at("format").as_string() != kFleetSpecFormat) {
    throw harness::ShardFormatError(
        "FleetSpec: not a " + std::string(kFleetSpecFormat) + " document");
  }
  if (v.at("version").as_i64() != harness::kShardFormatVersion) {
    throw harness::ShardFormatError(
        strf("FleetSpec: unsupported version %lld (this build speaks %d)",
             static_cast<long long>(v.at("version").as_i64()),
             harness::kShardFormatVersion));
  }
  FleetSpec spec;
  spec.name = v.at("name").as_string();
  spec.topology.racks = static_cast<int>(v.at("racks").as_i64());
  spec.topology.nodes_per_rack =
      static_cast<int>(v.at("nodes_per_rack").as_i64());
  spec.topology.sockets_per_node =
      static_cast<int>(v.at("sockets_per_node").as_i64());
  spec.allocator = v.at("allocator").as_string();
  spec.global_budget_w = v.at("global_budget_w").as_double();
  spec.epochs = static_cast<int>(v.at("epochs").as_i64());
  spec.epoch_seconds = v.at("epoch_seconds").as_double();
  spec.traffic_profile = v.at("traffic").as_string();
  spec.traffic_seed = v.at("traffic_seed").as_u64();
  spec.seed = v.at("seed").as_u64();
  spec.app = workloads::app_by_name(v.at("app").as_string());
  spec.policy = v.at("policy").as_string();
  spec.tolerated_slowdown = v.at("tolerance").as_double();
  spec.min_cap_w = v.at("min_cap_w").as_double();
  spec.max_cap_w = v.at("max_cap_w").as_double();
  spec.fault_rate = v.at("fault_rate").as_double();
  spec.fault_seed = v.at("fault_seed").as_u64();

  const auto problems = spec.validate();
  if (!problems.empty()) {
    std::string msg = "FleetSpec: invalid spec:";
    for (std::size_t i = 0; i < problems.size(); ++i) {
      msg += (i == 0 ? " " : "; ") + problems[i];
    }
    throw harness::ShardFormatError(msg);
  }
  // Canonicalize alias/case spellings so CSV labels, telemetry labels
  // and re-serialized specs all use the registry names.
  spec.allocator = FleetAllocatorRegistry::instance().at(spec.allocator).name;
  spec.policy = core::PolicyRegistry::instance().at(spec.policy).name;
  return spec;
}

FleetSpec FleetSpec::parse(std::string_view text) {
  return from_json(json::parse(text));
}

FleetSpec FleetSpec::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw std::runtime_error("FleetSpec: cannot open " + path);
  }
  std::stringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

FleetSpec FleetSpec::reference() {
  FleetSpec spec;
  spec.name = "fleet-reference";
  spec.topology = {2, 2, 4};
  spec.allocator = "proportional";
  spec.epochs = 4;
  spec.epoch_seconds = 1.0;
  // ~78% of the uncapped fleet: tight enough that the allocator's choices
  // matter, comfortably above the 16-socket floor.
  spec.global_budget_w = 1560.0;
  return spec;
}

std::vector<std::string> FleetSpec::validate() const {
  std::vector<std::string> problems;
  if (name.empty()) problems.push_back("name is empty");
  for (const auto& p : topology.validate()) problems.push_back(p);
  if (allocator.empty()) {
    problems.push_back("allocator is empty");
  } else if (!FleetAllocatorRegistry::instance().contains(allocator)) {
    problems.push_back(
        "unknown allocator \"" + allocator + "\" (known: " +
        FleetAllocatorRegistry::instance().known_names() + ")");
  }
  if (!TrafficModel::is_known(traffic_profile)) {
    problems.push_back("unknown traffic profile \"" + traffic_profile +
                       "\" (known: " + TrafficModel::known_profiles() + ")");
  }
  if (policy.empty()) {
    problems.push_back("policy is empty");
  } else if (!core::PolicyRegistry::instance().contains(policy)) {
    problems.push_back("unknown policy \"" + policy + "\" (known: " +
                       core::PolicyRegistry::instance().known_names() + ")");
  }
  if (epochs < 1) problems.push_back("epochs must be >= 1");
  if (!(epoch_seconds > 0.0)) {
    problems.push_back("epoch_seconds must be positive");
  }
  if (tolerated_slowdown < 0.0 || tolerated_slowdown > 1.0) {
    problems.push_back("tolerance must be in [0, 1]");
  }
  if (!(min_cap_w > 0.0)) problems.push_back("min_cap_w must be positive");
  if (min_cap_w > max_cap_w) {
    problems.push_back(strf("min_cap_w (%g) must be <= max_cap_w (%g)",
                            min_cap_w, max_cap_w));
  }
  if (global_budget_w < 0.0) {
    problems.push_back("global_budget_w must be >= 0 (0 = derive)");
  }
  const double floor =
      min_cap_w * static_cast<double>(topology.socket_count());
  if (global_budget_w > 0.0 && min_cap_w > 0.0 &&
      topology.validate().empty() && global_budget_w < floor) {
    problems.push_back(
        strf("global_budget_w (%g) must cover the fleet's %zu socket "
             "floors (>= %g W)",
             global_budget_w, topology.socket_count(), floor));
  }
  if (fault_rate < 0.0 || fault_rate > 1.0) {
    problems.push_back("fault_rate must be in [0, 1]");
  }
  return problems;
}

}  // namespace dufp::fleet
