// The fleet's budget tree shape: cluster -> racks -> nodes -> sockets.
//
// Nodes are flat-indexed rack-major (node = rack * nodes_per_rack + slot)
// so a node index is a portable identity across processes — the shard
// layer's job indices map 1:1 onto node indices and every layer (wire
// records, error messages, telemetry labels) derives rack/slot from the
// same arithmetic.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/string_util.h"

namespace dufp::fleet {

struct FleetTopology {
  int racks = 2;
  int nodes_per_rack = 2;
  int sockets_per_node = 4;

  std::size_t node_count() const {
    return static_cast<std::size_t>(racks) *
           static_cast<std::size_t>(nodes_per_rack);
  }
  std::size_t socket_count() const {
    return node_count() * static_cast<std::size_t>(sockets_per_node);
  }

  int rack_of(std::size_t node) const {
    return static_cast<int>(node / static_cast<std::size_t>(nodes_per_rack));
  }
  int slot_of(std::size_t node) const {
    return static_cast<int>(node % static_cast<std::size_t>(nodes_per_rack));
  }
  std::size_t node_index(int rack, int slot) const {
    return static_cast<std::size_t>(rack) *
               static_cast<std::size_t>(nodes_per_rack) +
           static_cast<std::size_t>(slot);
  }

  /// "rack 1 / node 3" — the attribution every error message and label
  /// uses for node `node` (the node id is the within-rack slot).
  std::string node_label(std::size_t node) const {
    return strf("rack %d / node %d", rack_of(node), slot_of(node));
  }

  /// Every problem found (empty = valid).
  std::vector<std::string> validate() const {
    std::vector<std::string> problems;
    if (racks < 1) problems.push_back("racks must be >= 1");
    if (nodes_per_rack < 1) problems.push_back("nodes_per_rack must be >= 1");
    if (sockets_per_node < 1) {
      problems.push_back("sockets_per_node must be >= 1");
    }
    return problems;
  }
};

}  // namespace dufp::fleet
