// Deterministic traffic generation: the per-(node, epoch) load intensity
// the fleet allocators chase.
//
// Intensity is a pure function of (profile, seed, node, epoch) — every
// sample draws from its own forked RNG stream, never from a shared
// sequential one — so any process can evaluate any subset of the fleet in
// any order and see identical demand.  That independence is what lets the
// shard layer fan node simulations out with zero coordination.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dufp::fleet {

struct TrafficOptions {
  /// One of TrafficModel::profiles(): "diurnal" (day/night sinusoid with
  /// per-node phase offsets), "heavy-tail" (Pareto bursts over a quiet
  /// floor), "flat" (constant mid-load with small noise).
  std::string profile = "diurnal";
  std::uint64_t seed = 1;
};

class TrafficModel {
 public:
  /// Throws std::invalid_argument listing the known profiles when
  /// `options.profile` is not one of them.
  explicit TrafficModel(TrafficOptions options);

  /// Load intensity in [0, 1] for `node` during `epoch`.  Pure function
  /// of (profile, seed, node, epoch).
  double intensity(std::size_t node, int epoch) const;

  const TrafficOptions& options() const { return options_; }

  /// Known profile names, registration order.
  static const std::vector<std::string>& profiles();

  /// "diurnal, heavy-tail, flat" — embedded in lookup error messages.
  static std::string known_profiles();

  static bool is_known(const std::string& profile);

 private:
  TrafficOptions options_;
  int kind_ = 0;
};

}  // namespace dufp::fleet
