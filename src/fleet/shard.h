// The fleet's binding of the payload-agnostic wire layer (harness/wire.h):
// a fleet job is one *node* simulation — run_fleet_node under the shared
// allocation plan — and the wire carries FleetNodeResult payloads with
// the same header keys, lease protocol, exactly-once gather and
// salvage/resume semantics the experiment grids use, so every operational
// tool (supervisor, retry manifests, `gather --partial`) works unchanged
// at fleet scale.
//
// Serial and sharded executions are byte-identical by construction:
// Phase A (plan_allocations) is a pure function of the spec that every
// process recomputes, and Phase B runs node jobs independently — there
// is no cross-node coordination to order.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "fleet/node_run.h"
#include "fleet/plan.h"
#include "fleet/spec.h"
#include "harness/supervisor.h"
#include "harness/wire.h"

namespace dufp::fleet {

/// The spec's wire identity: kFleetResultFormat, the spec name and
/// fingerprint, one job per node, and rack/node attribution for missing
/// jobs ("job 5 = rack 1 / node 1 (shard 0)").
harness::WireIdentity fleet_wire_identity(const FleetSpec& spec);

/// Executes this worker's share of the fleet's node jobs and streams the
/// versioned JSONL (header line + one line per node) to `out`.  The
/// allocation plan is recomputed in-process from the spec.
void run_fleet_shard(const FleetSpec& spec,
                     const harness::ShardRunOptions& options,
                     std::ostream& out);

/// Everything a fleet gather pass learned; results[j] is node j's result
/// iff have[j].
struct FleetGatherReport {
  std::size_t job_count = 0;
  std::vector<FleetNodeResult> results;
  std::vector<bool> have;
  std::vector<std::size_t> missing;  ///< sorted ascending
  std::size_t records = 0;
  std::size_t duplicates = 0;
  std::vector<harness::GatherNote> notes;
  int header_shards = 0;

  bool complete() const { return missing.empty(); }
};

/// Reads fleet wire files back into per-node results.  Same contract as
/// harness::gather_shards_report: strict mode throws at the first
/// problem, partial mode salvages; missing-job errors carry the
/// rack/node attribution from fleet_wire_identity.
FleetGatherReport gather_fleet_report(
    const FleetSpec& spec, const std::vector<std::string>& files,
    const harness::GatherOptions& options = {});

/// The fleet re-run contract, mirroring harness::RetryManifest: the full
/// spec (resume needs no side channel), its fingerprint (tamper guard),
/// and the sorted missing node list.
struct FleetRetryManifest {
  FleetSpec spec;
  std::vector<std::size_t> missing;  ///< sorted, unique, in range

  json::Value to_json() const;
  std::string canonical_text() const;
  static FleetRetryManifest from_json(const json::Value& v);
  static FleetRetryManifest parse(std::string_view text);
  static FleetRetryManifest load(const std::string& path);
};

/// The manifest for an incomplete gather.  Throws std::logic_error if
/// the report is complete.
FleetRetryManifest make_fleet_retry_manifest(const FleetSpec& spec,
                                             const FleetGatherReport& report);

/// Everything a gathered fleet produces, in deterministic bytes — the
/// byte surface the fleet determinism suite compares across serial /
/// sharded / supervised executions.
struct FleetOutputs {
  /// Per-(epoch, node) rows: the full allocation trace with demand,
  /// intensity, the rack's grant, wall time, energy and the violation
  /// flag (%.17g doubles).
  std::string allocation_csv;

  /// One row: the fleet-level scorecard (total energy, violation rate,
  /// Jain's fairness over per-node speeds, ...).
  std::string summary_csv;

  /// Prometheus exposition of the fleet telemetry plane: budget and
  /// per-rack / per-node allocation gauges plus allocation-share and
  /// epoch-slowdown histograms.
  std::string prometheus;

  // Headline numbers, for benches and tests.
  double total_energy_j = 0.0;
  double violation_rate = 0.0;  ///< violating (node, epoch) pairs / all
  double jain_fairness = 0.0;   ///< over per-node avg speeds, in (0, 1]
  double mean_speed = 0.0;      ///< mean per-node progress speed
};

/// Renders the deterministic outputs from gathered per-node results.
/// Pure function of (spec, results) — the plan is recomputed — so any
/// execution path that gathered the same results emits the same bytes.
FleetOutputs finalize_fleet(const FleetSpec& spec,
                            const std::vector<FleetNodeResult>& results);

/// Runs every node in-process and finalizes — the serial reference the
/// sharded paths must match byte for byte.
FleetOutputs run_fleet_serial(const FleetSpec& spec);

/// Supervised sharded execution (fork/reap/restart/poison, see
/// harness/supervisor.h) of the fleet's node jobs.
harness::SupervisorReport supervise_fleet_run(
    const FleetSpec& spec, const harness::SupervisorOptions& options);

}  // namespace dufp::fleet
