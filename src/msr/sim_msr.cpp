#include "msr/sim_msr.h"

#include <cstdio>

#include "common/expect.h"

namespace dufp::msr {

std::string MsrError::to_hex(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%x", v);
  return buf;
}

SimulatedMsr::SimulatedMsr(int core_count) : core_count_(core_count) {
  DUFP_EXPECT(core_count > 0);
}

const SimulatedMsr::Register& SimulatedMsr::find(std::uint32_t reg) const {
  const auto it = regs_.find(reg);
  if (it == regs_.end()) throw MsrError(reg, "not implemented");
  return it->second;
}

SimulatedMsr::Register& SimulatedMsr::find(std::uint32_t reg) {
  const auto it = regs_.find(reg);
  if (it == regs_.end()) throw MsrError(reg, "not implemented");
  return it->second;
}

std::uint64_t SimulatedMsr::read(int cpu, std::uint32_t reg) const {
  if (cpu < 0 || cpu >= core_count_) throw MsrError(reg, "bad cpu index");
  ++read_count_;
  const Register& r = find(reg);
  if (r.read_handler) return r.read_handler(cpu);
  return r.value;
}

void SimulatedMsr::write(int cpu, std::uint32_t reg, std::uint64_t value) {
  if (cpu < 0 || cpu >= core_count_) throw MsrError(reg, "bad cpu index");
  Register& r = find(reg);
  if (!r.writable) throw MsrError(reg, "write to read-only register");
  if (r.write_guard) r.write_guard(cpu, value);  // may veto by throwing
  ++write_count_;
  r.value = value;
  for (const auto& h : r.write_handlers) h(cpu, value);
}

void SimulatedMsr::define_register(std::uint32_t reg, std::uint64_t initial,
                                   bool writable) {
  Register r;
  r.value = initial;
  r.writable = writable;
  regs_[reg] = std::move(r);
}

void SimulatedMsr::define_dynamic(std::uint32_t reg, ReadHandler fn) {
  DUFP_EXPECT(fn != nullptr);
  Register r;
  r.writable = false;
  r.read_handler = std::move(fn);
  regs_[reg] = std::move(r);
}

void SimulatedMsr::on_write(std::uint32_t reg, WriteHandler fn) {
  DUFP_EXPECT(fn != nullptr);
  find(reg).write_handlers.push_back(std::move(fn));
}

void SimulatedMsr::set_write_guard(std::uint32_t reg, WriteHandler fn) {
  DUFP_EXPECT(fn != nullptr);
  find(reg).write_guard = std::move(fn);
}

std::uint64_t SimulatedMsr::peek(std::uint32_t reg) const {
  return find(reg).value;
}

void SimulatedMsr::poke(std::uint32_t reg, std::uint64_t value) {
  find(reg).value = value;
}

bool SimulatedMsr::is_defined(std::uint32_t reg) const {
  return regs_.count(reg) != 0;
}

}  // namespace dufp::msr
