#include "msr/registers.h"

#include <algorithm>
#include <cmath>

#include "common/expect.h"
#include "common/units.h"

namespace dufp::msr {
namespace {

constexpr std::uint64_t mask(unsigned bits) {
  return bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
}

std::uint64_t field_get(std::uint64_t raw, unsigned shift, unsigned bits) {
  return (raw >> shift) & mask(bits);
}

void field_set(std::uint64_t& raw, unsigned shift, unsigned bits,
               std::uint64_t value) {
  raw &= ~(mask(bits) << shift);
  raw |= (value & mask(bits)) << shift;
}

/// Clamps watts to the 15-bit power-limit field.
std::uint64_t watts_to_limit_units(double w, const RaplUnits& u) {
  const double units = w / u.watts_per_unit();
  const double clamped = std::clamp(units, 0.0, double(mask(15)));
  return static_cast<std::uint64_t>(clamped + 0.5);
}

}  // namespace

std::uint64_t encode_rapl_units(const RaplUnits& u) {
  DUFP_EXPECT(u.power_unit_bits <= 15);
  DUFP_EXPECT(u.energy_unit_bits <= 31);
  DUFP_EXPECT(u.time_unit_bits <= 15);
  std::uint64_t raw = 0;
  field_set(raw, 0, 4, u.power_unit_bits);
  field_set(raw, 8, 5, u.energy_unit_bits);
  field_set(raw, 16, 4, u.time_unit_bits);
  return raw;
}

RaplUnits decode_rapl_units(std::uint64_t raw) {
  RaplUnits u;
  u.power_unit_bits = static_cast<unsigned>(field_get(raw, 0, 4));
  u.energy_unit_bits = static_cast<unsigned>(field_get(raw, 8, 5));
  u.time_unit_bits = static_cast<unsigned>(field_get(raw, 16, 4));
  return u;
}

std::uint32_t encode_time_window(double seconds, const RaplUnits& u) {
  DUFP_EXPECT(seconds >= 0.0);
  const double tu = u.seconds_per_unit();
  // window = 2^Y * (1 + Z/4) * tu.  Search the 4 Z values for each Y and
  // keep the closest representable window; the field is tiny (128 combos)
  // so exhaustive search is the clearest correct implementation.
  std::uint32_t best_field = 0;
  double best_err = std::numeric_limits<double>::infinity();
  double pow2 = 1.0;  // exact 2^y, doubled per iteration (no libm call)
  for (std::uint32_t y = 0; y < 32; ++y, pow2 *= 2.0) {
    for (std::uint32_t z = 0; z < 4; ++z) {
      const double w = pow2 * (1.0 + static_cast<double>(z) / 4.0) * tu;
      const double err = std::abs(w - seconds);
      if (err < best_err) {
        best_err = err;
        best_field = y | (z << 5);
      }
    }
  }
  return best_field;
}

double decode_time_window(std::uint32_t field, const RaplUnits& u) {
  const std::uint32_t y = field & 0x1F;
  const std::uint32_t z = (field >> 5) & 0x3;
  return std::ldexp(1.0, static_cast<int>(y)) *
         (1.0 + static_cast<double>(z) / 4.0) * u.seconds_per_unit();
}

std::uint64_t encode_power_limit(const PowerLimit& pl, const RaplUnits& u) {
  std::uint64_t raw = 0;
  field_set(raw, 0, 15, watts_to_limit_units(pl.long_term_w, u));
  field_set(raw, 15, 1, pl.long_term_enabled ? 1 : 0);
  field_set(raw, 16, 1, pl.long_term_clamped ? 1 : 0);
  field_set(raw, 17, 7, encode_time_window(pl.long_term_window_s, u));
  field_set(raw, 32, 15, watts_to_limit_units(pl.short_term_w, u));
  field_set(raw, 47, 1, pl.short_term_enabled ? 1 : 0);
  field_set(raw, 48, 1, pl.short_term_clamped ? 1 : 0);
  field_set(raw, 49, 7, encode_time_window(pl.short_term_window_s, u));
  field_set(raw, 63, 1, pl.locked ? 1 : 0);
  return raw;
}

PowerLimit decode_power_limit(std::uint64_t raw, const RaplUnits& u) {
  PowerLimit pl;
  pl.long_term_w =
      static_cast<double>(field_get(raw, 0, 15)) * u.watts_per_unit();
  pl.long_term_enabled = field_get(raw, 15, 1) != 0;
  pl.long_term_clamped = field_get(raw, 16, 1) != 0;
  pl.long_term_window_s =
      decode_time_window(static_cast<std::uint32_t>(field_get(raw, 17, 7)), u);
  pl.short_term_w =
      static_cast<double>(field_get(raw, 32, 15)) * u.watts_per_unit();
  pl.short_term_enabled = field_get(raw, 47, 1) != 0;
  pl.short_term_clamped = field_get(raw, 48, 1) != 0;
  pl.short_term_window_s =
      decode_time_window(static_cast<std::uint32_t>(field_get(raw, 49, 7)), u);
  pl.locked = field_get(raw, 63, 1) != 0;
  return pl;
}

std::uint64_t encode_power_info(const PowerInfo& info, const RaplUnits& u) {
  std::uint64_t raw = 0;
  field_set(raw, 0, 15, watts_to_limit_units(info.tdp_w, u));
  field_set(raw, 16, 15, watts_to_limit_units(info.min_power_w, u));
  field_set(raw, 32, 15, watts_to_limit_units(info.max_power_w, u));
  return raw;
}

PowerInfo decode_power_info(std::uint64_t raw, const RaplUnits& u) {
  PowerInfo info;
  info.tdp_w = static_cast<double>(field_get(raw, 0, 15)) * u.watts_per_unit();
  info.min_power_w =
      static_cast<double>(field_get(raw, 16, 15)) * u.watts_per_unit();
  info.max_power_w =
      static_cast<double>(field_get(raw, 32, 15)) * u.watts_per_unit();
  return info;
}

double energy_counter_delta(std::uint32_t before, std::uint32_t after,
                            const RaplUnits& u) {
  const std::uint64_t delta =
      wrap_delta(before, after, /*wrap_range=*/1ULL << 32);
  return static_cast<double>(delta) * u.joules_per_unit();
}

std::uint64_t joules_to_energy_units(double joules, const RaplUnits& u) {
  DUFP_EXPECT(joules >= 0.0);
  return static_cast<std::uint64_t>(joules / u.joules_per_unit());
}

std::uint64_t encode_uncore_ratio_limit(const UncoreRatioLimit& l) {
  DUFP_EXPECT(l.max_ratio <= 127 && l.min_ratio <= 127);
  DUFP_EXPECT(l.min_ratio <= l.max_ratio);
  std::uint64_t raw = 0;
  field_set(raw, 0, 7, l.max_ratio);
  field_set(raw, 8, 7, l.min_ratio);
  return raw;
}

UncoreRatioLimit decode_uncore_ratio_limit(std::uint64_t raw) {
  UncoreRatioLimit l;
  l.max_ratio = static_cast<unsigned>(field_get(raw, 0, 7));
  l.min_ratio = static_cast<unsigned>(field_get(raw, 8, 7));
  return l;
}

std::uint64_t encode_perf_ctl(unsigned target_ratio) {
  DUFP_EXPECT(target_ratio <= 255);
  return static_cast<std::uint64_t>(target_ratio & 0xFF) << 8;
}

unsigned decode_perf_ctl(std::uint64_t raw) {
  return static_cast<unsigned>((raw >> 8) & 0xFF);
}

std::uint64_t encode_uncore_perf_status(unsigned current_ratio) {
  DUFP_EXPECT(current_ratio <= 127);
  return current_ratio & 0x7F;
}

unsigned decode_uncore_perf_status(std::uint64_t raw) {
  return static_cast<unsigned>(raw & 0x7F);
}

}  // namespace dufp::msr
