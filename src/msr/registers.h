// Intel MSR layouts used by RAPL power capping and uncore frequency
// scaling, bit-accurate to the Skylake-SP generation (Xeon Gold 6130, the
// paper's testbed).  Sources: Intel SDM vol. 4, and the layouts assumed by
// the `powercap` and `intel_uncore_frequency` Linux drivers.
//
// Everything here is pure encode/decode — no device access — so it is
// shared verbatim between the simulated backend and a real /dev/cpu MSR
// backend.
#pragma once

#include <cstdint>

namespace dufp::msr {

// ---------------------------------------------------------------------------
// Register addresses.
// ---------------------------------------------------------------------------
inline constexpr std::uint32_t kMsrRaplPowerUnit = 0x606;
inline constexpr std::uint32_t kMsrPkgPowerLimit = 0x610;
inline constexpr std::uint32_t kMsrPkgEnergyStatus = 0x611;
inline constexpr std::uint32_t kMsrPkgPowerInfo = 0x614;
inline constexpr std::uint32_t kMsrDramPowerLimit = 0x618;
inline constexpr std::uint32_t kMsrDramEnergyStatus = 0x619;
inline constexpr std::uint32_t kMsrUncoreRatioLimit = 0x620;
inline constexpr std::uint32_t kMsrUncorePerfStatus = 0x621;
inline constexpr std::uint32_t kIa32Mperf = 0xE7;
inline constexpr std::uint32_t kIa32Aperf = 0xE8;
inline constexpr std::uint32_t kIa32PerfCtl = 0x199;

// ---------------------------------------------------------------------------
// MSR_RAPL_POWER_UNIT (0x606)
//
//   bits  3:0  power unit:  1 / 2^PU watts
//   bits 12:8  energy unit: 1 / 2^EU joules
//   bits 19:16 time unit:   1 / 2^TU seconds
//
// Skylake-SP defaults: PU=3 (0.125 W), EU=14 (~61 uJ), TU=10 (~977 us).
// ---------------------------------------------------------------------------
struct RaplUnits {
  unsigned power_unit_bits = 3;
  unsigned energy_unit_bits = 14;
  unsigned time_unit_bits = 10;

  double watts_per_unit() const { return 1.0 / double(1u << power_unit_bits); }
  double joules_per_unit() const {
    return 1.0 / double(1u << energy_unit_bits);
  }
  double seconds_per_unit() const {
    return 1.0 / double(1u << time_unit_bits);
  }
};

std::uint64_t encode_rapl_units(const RaplUnits& u);
RaplUnits decode_rapl_units(std::uint64_t raw);

// ---------------------------------------------------------------------------
// RAPL time-window encoding (7-bit field inside the power-limit MSRs):
//
//   window = 2^Y * (1 + Z/4) * time_unit,   Y = bits 4:0, Z = bits 6:5
// ---------------------------------------------------------------------------

/// Encodes `seconds` into the closest representable 7-bit (Y,Z) field.
/// Values are clamped to the representable range.
std::uint32_t encode_time_window(double seconds, const RaplUnits& u);
double decode_time_window(std::uint32_t field, const RaplUnits& u);

// ---------------------------------------------------------------------------
// MSR_PKG_POWER_LIMIT (0x610)
//
//   bits 14:0   power limit #1 (long term), in power units
//   bit  15     enable #1
//   bit  16     clamp #1
//   bits 23:17  time window #1
//   bits 46:32  power limit #2 (short term)
//   bit  47     enable #2
//   bit  48     clamp #2
//   bits 55:49  time window #2
//   bit  63     lock
// ---------------------------------------------------------------------------
struct PowerLimit {
  double long_term_w = 0.0;
  double long_term_window_s = 0.0;
  bool long_term_enabled = false;
  bool long_term_clamped = false;

  double short_term_w = 0.0;
  double short_term_window_s = 0.0;
  bool short_term_enabled = false;
  bool short_term_clamped = false;

  bool locked = false;
};

std::uint64_t encode_power_limit(const PowerLimit& pl, const RaplUnits& u);
PowerLimit decode_power_limit(std::uint64_t raw, const RaplUnits& u);

// ---------------------------------------------------------------------------
// MSR_PKG_POWER_INFO (0x614)
//
//   bits 14:0   thermal spec power (TDP), power units
//   bits 30:16  minimum power
//   bits 46:32  maximum power
//   bits 53:48  maximum time window
// ---------------------------------------------------------------------------
struct PowerInfo {
  double tdp_w = 0.0;
  double min_power_w = 0.0;
  double max_power_w = 0.0;
};

std::uint64_t encode_power_info(const PowerInfo& info, const RaplUnits& u);
PowerInfo decode_power_info(std::uint64_t raw, const RaplUnits& u);

// ---------------------------------------------------------------------------
// Energy status counters (0x611 / 0x619): 32-bit, count energy units,
// wrap modulo 2^32.  `energy_counter_delta` handles the wrap.
// ---------------------------------------------------------------------------

/// Joules represented by a raw counter increment from `before` to `after`
/// (single-wrap assumption — valid when sampled at least every few
/// minutes, which a 200 ms controller trivially satisfies).
double energy_counter_delta(std::uint32_t before, std::uint32_t after,
                            const RaplUnits& u);

/// Converts joules into raw counter units (used by the simulated backend).
std::uint64_t joules_to_energy_units(double joules, const RaplUnits& u);

// ---------------------------------------------------------------------------
// MSR_UNCORE_RATIO_LIMIT (0x620)
//
//   bits 6:0   maximum uncore ratio (x 100 MHz)
//   bits 14:8  minimum uncore ratio (x 100 MHz)
// ---------------------------------------------------------------------------
struct UncoreRatioLimit {
  unsigned max_ratio = 24;  ///< 2.4 GHz
  unsigned min_ratio = 12;  ///< 1.2 GHz
};

std::uint64_t encode_uncore_ratio_limit(const UncoreRatioLimit& l);
UncoreRatioLimit decode_uncore_ratio_limit(std::uint64_t raw);

/// MSR_UNCORE_PERF_STATUS (0x621): bits 6:0 = current uncore ratio.
std::uint64_t encode_uncore_perf_status(unsigned current_ratio);
unsigned decode_uncore_perf_status(std::uint64_t raw);

/// Uncore ratio <-> MHz helpers (1 ratio unit = 100 MHz).
constexpr double uncore_ratio_to_mhz(unsigned ratio) { return ratio * 100.0; }
constexpr unsigned uncore_mhz_to_ratio(double mhz) {
  return static_cast<unsigned>(mhz / 100.0 + 0.5);
}

// ---------------------------------------------------------------------------
// IA32_PERF_CTL (0x199): bits 15:8 = target P-state ratio (x 100 MHz).
// Used by the DUFP-F extension (the paper's Sec. VII future work) to pin
// the core clock directly instead of relying on RAPL's internal DVFS.
// ---------------------------------------------------------------------------
std::uint64_t encode_perf_ctl(unsigned target_ratio);
unsigned decode_perf_ctl(std::uint64_t raw);

}  // namespace dufp::msr
