// MSR device abstraction.
//
// On real hardware this maps to /dev/cpu/<n>/msr pread/pwrite (root +
// CONFIG_X86_MSR); in this repository it is implemented by the
// register-accurate SimulatedMsr backend wired to the socket model.  All
// tooling above (powercap zones, uncore control, energy readers, the DUFP
// agent) talks only to this interface, so it would run unchanged against a
// real backend.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace dufp::msr {

/// Error for unknown registers, locked writes, or backend I/O failures.
class MsrError : public std::runtime_error {
 public:
  MsrError(std::uint32_t reg, const std::string& what)
      : std::runtime_error("MSR 0x" + to_hex(reg) + ": " + what), reg_(reg) {}

  std::uint32_t reg() const { return reg_; }

 private:
  static std::string to_hex(std::uint32_t v);
  std::uint32_t reg_;
};

/// One socket's MSR access point.  `cpu` is the core index *within the
/// socket* for core-scoped MSRs (APERF/MPERF); package-scoped MSRs ignore
/// it by convention (any core of the package returns the package value,
/// matching real RAPL semantics).
class MsrDevice {
 public:
  virtual ~MsrDevice() = default;

  virtual std::uint64_t read(int cpu, std::uint32_t reg) const = 0;
  virtual void write(int cpu, std::uint32_t reg, std::uint64_t value) = 0;

  /// Number of addressable cores behind this device.
  virtual int core_count() const = 0;
};

}  // namespace dufp::msr
