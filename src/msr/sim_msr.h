// Simulated per-socket MSR backend.
//
// Registers fall in three classes:
//   * plain storage   — value written is the value read back;
//   * dynamic reads   — a handler computes the value on demand (energy
//                       counters, APERF/MPERF, uncore perf status);
//   * observed writes — a handler is notified after the store (power
//                       limit, uncore ratio limit), which is how the RAPL
//                       engine and the socket model learn about actuation.
//
// Unknown registers fault with MsrError, like a real rdmsr/wrmsr #GP.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "msr/device.h"

namespace dufp::msr {

class SimulatedMsr final : public MsrDevice {
 public:
  using ReadHandler = std::function<std::uint64_t(int cpu)>;
  using WriteHandler = std::function<void(int cpu, std::uint64_t value)>;

  explicit SimulatedMsr(int core_count);

  // -- MsrDevice ------------------------------------------------------------
  std::uint64_t read(int cpu, std::uint32_t reg) const override;
  void write(int cpu, std::uint32_t reg, std::uint64_t value) override;
  int core_count() const override { return core_count_; }

  // -- simulation wiring ------------------------------------------------------

  /// Declares a package-scoped storage register with an initial value.
  void define_register(std::uint32_t reg, std::uint64_t initial,
                       bool writable = true);

  /// Declares a register whose reads are computed by `fn` (per cpu).
  void define_dynamic(std::uint32_t reg, ReadHandler fn);

  /// Attaches a post-write observer to a storage register (must already be
  /// defined).  Multiple observers compose in registration order.
  void on_write(std::uint32_t reg, WriteHandler fn);

  /// Attaches a pre-write guard (must already be defined): called with the
  /// candidate value *before* the store, and may veto the write by
  /// throwing MsrError — the register keeps its old value and no
  /// observers fire.  This is how the RAPL engine models the power-limit
  /// lock bit (writes to a locked 0x610 fault like wrmsr #GP).
  void set_write_guard(std::uint32_t reg, WriteHandler fn);

  /// Direct (non-faulting) access for the simulation side.
  std::uint64_t peek(std::uint32_t reg) const;
  void poke(std::uint32_t reg, std::uint64_t value);

  bool is_defined(std::uint32_t reg) const;

  /// Count of wrmsr operations, for overhead accounting and tests.
  std::uint64_t write_count() const { return write_count_; }
  std::uint64_t read_count() const { return read_count_; }

 private:
  struct Register {
    std::uint64_t value = 0;
    bool writable = true;
    ReadHandler read_handler;                 // optional
    WriteHandler write_guard;                 // optional, may veto by throwing
    std::vector<WriteHandler> write_handlers;  // optional
  };

  const Register& find(std::uint32_t reg) const;
  Register& find(std::uint32_t reg);

  int core_count_;
  std::map<std::uint32_t, Register> regs_;
  mutable std::uint64_t read_count_ = 0;
  std::uint64_t write_count_ = 0;
};

}  // namespace dufp::msr
