// What a workload phase asks of a socket at the reference operating point.
// Produced by the workload layer, consumed by the socket model each tick.
#pragma once

namespace dufp::hw {

/// Per-socket resource demand of the currently running phase, expressed at
/// the reference operating point (all-core turbo, max uncore, no cap).
///
/// The time-composition weights follow the classic leading-loads /
/// frequency-scaling decomposition: a fraction of execution time scales
/// with 1/f_core (w_cpu), a fraction with 1/bandwidth (w_mem), a fraction
/// with 1/f_uncore (w_unc: LLC-hit-latency-bound work — mesh and L3 clock
/// with the uncore), and a fraction is invariant (w_fixed: dependency
/// chains, synchronization).  They must sum to 1.
struct PhaseDemand {
  double w_cpu = 1.0;
  double w_mem = 0.0;
  double w_unc = 0.0;
  double w_fixed = 0.0;

  double flops_rate_ref = 0.0;  ///< FLOP/s per socket at reference point
  double bytes_rate_ref = 0.0;  ///< DRAM bytes/s per socket at reference

  double cpu_activity = 1.0;  ///< core dynamic-power activity factor [0,1]
  double mem_activity = 0.0;  ///< uncore dynamic-power activity factor [0,1]

  /// True when no application is running (simulation warm-up / drain).
  bool idle = false;

  /// Memberwise equality lets the socket model detect that a demand write
  /// is a no-op and keep its memoized evaluation.
  friend bool operator==(const PhaseDemand&, const PhaseDemand&) = default;

  static PhaseDemand make_idle() {
    PhaseDemand d;
    d.w_cpu = 0.0;
    d.w_unc = 0.0;
    d.w_fixed = 1.0;
    d.cpu_activity = 0.02;
    d.mem_activity = 0.02;
    d.idle = true;
    return d;
  }
};

/// Instantaneous socket state derived from demand + actuator settings.
struct SocketInstant {
  double core_mhz = 0.0;    ///< effective core clock (all cores)
  double uncore_mhz = 0.0;  ///< effective uncore clock
  double speed = 0.0;       ///< phase progress rate vs reference (<= ~1)
  double flops_rate = 0.0;  ///< observed FLOP/s
  double bytes_rate = 0.0;  ///< observed DRAM traffic, bytes/s
  double pkg_power_w = 0.0;
  double dram_power_w = 0.0;
};

}  // namespace dufp::hw
