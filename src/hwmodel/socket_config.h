// Static description of one simulated socket, with defaults matching the
// paper's testbed: Intel Xeon Gold 6130 (Skylake-SP), 16 cores, uncore
// 1.2-2.4 GHz, RAPL PKG 125 W long-term / 150 W short-term (Table I).
#pragma once

#include <string>

namespace dufp::hw {

/// Package power model:
///   P_pkg(fc, fu, demand) = static
///     + n_cores * (core_idle + core_dyn * cpu_activity * s(fc))
///     + uncore_base * (fu/fu_ref)^alpha_u + uncore_act * mem_activity
///
/// Core dynamic power follows the physical CV²f DVFS curve:
///   s(f) = (f/f_ref) * V(f)²,
///   V(f) = max(v_min_frac, 1 - v_slope * (1 - f/f_ref))  (relative to
///   the reference-point voltage).
/// The affine V(f) with a floor is flatter than a pure power law at low
/// clocks — deep power caps buy ever less power per lost megahertz, a big
/// part of why the paper floors the cap at 65 W (Sec. IV-A).
///
/// The frequency-scaled uncore term models mesh + LLC clocks (they gate
/// very little with traffic — which is what makes uncore scaling
/// profitable even for compute-bound codes like EP), while the
/// traffic-proportional term models the IMC and I/O PHYs, whose power
/// follows bandwidth rather than the uncore clock.
struct PowerModelParams {
  double static_w = 14.0;        ///< package-level leakage, fixed
  double core_idle_w = 0.45;     ///< per core: clock tree + L1/L2 floor
  double core_dyn_w = 3.9;       ///< per core at activity 1 and fc = f_ref
  double v_slope = 0.45;         ///< relative voltage slope along DVFS
  double v_min_frac = 0.72;      ///< voltage floor, relative to V(f_ref)
  double uncore_base_w = 34.0;   ///< uncore at fu_ref, zero traffic
  double uncore_act_w = 14.0;    ///< IMC/PHY power at mem_activity 1 (flat)
  double uncore_alpha = 1.4;     ///< uncore dynamic power exponent

  /// DRAM (per socket, reported through the RAPL DRAM domain):
  ///   P_dram = background + per_gbps * bandwidth
  double dram_background_w = 9.0;
  double dram_w_per_gbps = 0.16;
};

/// Memory subsystem response:
///   B(fu, fc) = B_peak * min(fu, fu_sat)/fu_sat * g(fc)
///   g(fc)     = clamp(conc_base + conc_slope * fc/f_ref, 0, 1)
///
/// Bandwidth rises ~linearly with uncore frequency until the DRAM channels
/// saturate (fu_sat), which is why DUF can shave the last 200 MHz of
/// uncore almost for free on bandwidth-bound codes but pays immediately
/// below saturation.  g() models lost memory-level parallelism at low core
/// frequency: with few in-flight demands per core, deep core throttling
/// (i.e. aggressive power caps) costs bandwidth — the reason the paper
/// floors the cap at 65 W (Sec. IV-A).
struct MemoryModelParams {
  double peak_bw_gbps = 96.0;  ///< 6 channels DDR4-2666, ~85% efficiency
  double fu_sat_mhz = 2200.0;  ///< uncore frequency saturating the channels
  double conc_base = 0.52;
  double conc_slope = 0.48;

  /// Hardware-prefetcher traffic factor: the IMC byte counters include
  /// speculative prefetch traffic, which shrinks as the uncore slows
  /// (prefetchers issue per uncore clock).  Observed traffic is scaled by
  ///   1 - prefetch_coeff * mem_activity^2 * (1 - fu/fu_ref).
  /// This makes measured bandwidth drop *faster* than FLOPS under uncore
  /// scaling on traffic-heavy phases — the asymmetry that trips DUF's
  /// bandwidth guard before its FLOPS guard, as on real Skylake.
  double prefetch_coeff = 0.2;
};

struct SocketConfig {
  std::string model_name = "Intel Xeon Gold 6130";
  int cores = 16;

  // Core DVFS domain.  With all 16 cores active the maximum sustained
  // frequency is the all-core turbo, 2.8 GHz on this part (paper Fig. 5);
  // nominal (base) frequency is 2.1 GHz, P-state floor 1.0 GHz.
  double core_min_mhz = 1000.0;
  double core_max_mhz = 2800.0;
  double core_base_mhz = 2100.0;
  double core_step_mhz = 100.0;

  // Uncore domain (Table I).
  double uncore_min_mhz = 1200.0;
  double uncore_max_mhz = 2400.0;
  double uncore_step_mhz = 100.0;

  // RAPL defaults (Table I): long-term = TDP = 125 W over ~1 s, short-term
  // = 150 W over ~10 ms.
  double tdp_w = 125.0;
  double long_term_default_w = 125.0;
  double long_term_window_s = 0.999424;  // 1 s quantized to RAPL units
  double short_term_default_w = 150.0;
  double short_term_window_s = 0.0097656;

  // Reference operating point for the perf/power models: all-core turbo
  // and maximum uncore.
  double f_ref_mhz() const { return core_max_mhz; }
  double fu_ref_mhz() const { return uncore_max_mhz; }

  PowerModelParams power;
  MemoryModelParams memory;
};

/// The paper's machine: Grid'5000 yeti-2, 4 sockets.
struct MachineConfig {
  std::string name = "yeti-2";
  int sockets = 4;
  SocketConfig socket;
};

}  // namespace dufp::hw
