// Performance response of a socket: achievable memory bandwidth as a
// function of uncore/core frequency, and phase progress speed under the
// three-component time decomposition (see hwmodel/demand.h).
#pragma once

#include "hwmodel/demand.h"
#include "hwmodel/socket_config.h"

namespace dufp::hw {

class PerfModel {
 public:
  PerfModel(const MemoryModelParams& params, double f_ref_mhz,
            double fu_ref_mhz);

  /// Achievable DRAM bandwidth (bytes/s) at the given operating point.
  double bandwidth_bps(double core_mhz, double uncore_mhz) const;

  /// Bandwidth at the reference point (normalization constant).
  double ref_bandwidth_bps() const { return ref_bw_bps_; }

  /// Progress speed of a phase relative to the reference point (1.0 =
  /// reference-speed; lower under throttling).  A phase that would take
  /// T_ref seconds at reference takes T_ref / speed at this point.
  double speed(double core_mhz, double uncore_mhz,
               const PhaseDemand& demand) const;

  /// Execution-time dilation = 1 / speed (convenience for tests).
  double dilation(double core_mhz, double uncore_mhz,
                  const PhaseDemand& demand) const;

  /// Prefetch-traffic scaling of the *observed* DRAM byte counters at the
  /// given uncore clock (1.0 at the reference point; see
  /// MemoryModelParams::prefetch_coeff).
  double traffic_factor(double uncore_mhz, const PhaseDemand& demand) const;

  const MemoryModelParams& params() const { return params_; }

 private:
  MemoryModelParams params_;
  double f_ref_mhz_;
  double fu_ref_mhz_;
  double ref_bw_bps_;
};

}  // namespace dufp::hw
