// Analytic package / DRAM power functions.  Pure: all state is passed in,
// which lets the RAPL firmware governor evaluate "what would power be at
// frequency f" when searching for the highest compliant P-state.
#pragma once

#include "hwmodel/demand.h"
#include "hwmodel/socket_config.h"

namespace dufp::hw {

class PowerModel {
 public:
  PowerModel(const PowerModelParams& params, int cores, double f_ref_mhz,
             double fu_ref_mhz);

  /// Package power at the given operating point under `demand`.
  double package_power_w(double core_mhz, double uncore_mhz,
                         const PhaseDemand& demand) const;

  /// DRAM domain power at the given achieved bandwidth.
  double dram_power_w(double bytes_per_second) const;

  /// Core-domain component only (used by tests and diagnostics).
  double core_power_w(double core_mhz, const PhaseDemand& demand) const;

  /// Uncore-domain component only.
  double uncore_power_w(double uncore_mhz, const PhaseDemand& demand) const;

  /// Analytic inverse of package_power_w in the core-frequency argument:
  /// the (unquantized) core clock at which package power equals
  /// `target_w`, given the uncore clock and demand.  Clamped to the
  /// reference clock when every frequency complies; returns 0 when none
  /// does.  Exactness matters: the firmware governor calls this every
  /// millisecond.
  double core_mhz_for_power(double target_w, double uncore_mhz,
                            const PhaseDemand& demand) const;

  const PowerModelParams& params() const { return params_; }

 private:
  PowerModelParams params_;
  int cores_;
  double f_ref_mhz_;
  double fu_ref_mhz_;
};

}  // namespace dufp::hw
