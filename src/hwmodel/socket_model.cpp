#include "hwmodel/socket_model.h"

#include <algorithm>
#include <cmath>

#include "common/expect.h"

namespace dufp::hw {

SocketModel::SocketModel(const SocketConfig& config, int socket_id)
    : config_(config),
      socket_id_(socket_id),
      power_model_(config.power, config.cores, config.f_ref_mhz(),
                   config.fu_ref_mhz()),
      perf_model_(config.memory, config.f_ref_mhz(), config.fu_ref_mhz()),
      core_freq_limit_mhz_(config.core_max_mhz),
      user_pstate_mhz_(config.core_max_mhz),
      uncore_min_mhz_(config.uncore_min_mhz),
      uncore_max_mhz_(config.uncore_max_mhz) {
  DUFP_EXPECT(socket_id >= 0);
  DUFP_EXPECT(config.cores > 0);
  DUFP_EXPECT(config.core_min_mhz < config.core_max_mhz);
  DUFP_EXPECT(config.uncore_min_mhz < config.uncore_max_mhz);
}

void SocketModel::set_uncore_window_mhz(double min_mhz, double max_mhz) {
  // Hardware normalizes a reversed window by honouring the max field.
  if (min_mhz > max_mhz) min_mhz = max_mhz;
  const double qmin = quantize_uncore_mhz(min_mhz);
  const double qmax = quantize_uncore_mhz(max_mhz);
  if (qmin != uncore_min_mhz_ || qmax != uncore_max_mhz_) {
    uncore_min_mhz_ = qmin;
    uncore_max_mhz_ = qmax;
    cache_valid_ = false;
    ++state_version_;
  }
}

void SocketModel::set_user_pstate_limit_mhz(double mhz) {
  const double q = quantize_core_mhz(mhz);
  if (q != user_pstate_mhz_) {
    user_pstate_mhz_ = q;
    cache_valid_ = false;
  }
}

double SocketModel::effective_core_mhz() const {
  // Intel P-state `performance` governor: request the all-core maximum;
  // the RAPL limit and an explicit IA32_PERF_CTL request pull it down.
  return std::min({config_.core_max_mhz, core_freq_limit_mhz_,
                   user_pstate_mhz_});
}

double SocketModel::effective_uncore_mhz() const {
  // Default Skylake UFS behaviour: uncore pegs at the window maximum
  // whenever there is work (the conservatism DUF exists to fix) and drops
  // to the window minimum when idle.
  const double requested =
      demand_.idle ? config_.uncore_min_mhz : config_.uncore_max_mhz;
  return std::clamp(requested, uncore_min_mhz_, uncore_max_mhz_);
}

SocketInstant SocketModel::evaluate_slow() const {
  for (const InstantWay& w : instant_ways_) {
    if (w.valid && w.core_limit == core_freq_limit_mhz_ &&
        w.user_pstate == user_pstate_mhz_ && w.version == state_version_) {
      cached_instant_ = w.instant;
      cache_valid_ = true;
      return cached_instant_;
    }
  }
  SocketInstant out;
  out.core_mhz = effective_core_mhz();
  out.uncore_mhz = effective_uncore_mhz();
  out.speed = perf_model_.speed(out.core_mhz, out.uncore_mhz, demand_);
  out.flops_rate = demand_.flops_rate_ref * out.speed;
  out.bytes_rate = demand_.bytes_rate_ref * out.speed *
                   perf_model_.traffic_factor(out.uncore_mhz, demand_);
  out.pkg_power_w =
      power_model_.package_power_w(out.core_mhz, out.uncore_mhz, demand_);
  out.dram_power_w = power_model_.dram_power_w(out.bytes_rate);
  cached_instant_ = out;
  cache_valid_ = true;
  InstantWay& way = instant_ways_[instant_rr_++ % kInstantWays];
  way.core_limit = core_freq_limit_mhz_;
  way.user_pstate = user_pstate_mhz_;
  way.version = state_version_;
  way.instant = out;
  way.valid = true;
  return out;
}

double SocketModel::package_power_at(double core_mhz) const {
  return power_model_.package_power_w(quantize_core_mhz(core_mhz),
                                      effective_uncore_mhz(), demand_);
}

double SocketModel::core_mhz_for_power(double target_w) const {
  // Exact-input memo: a hit replays the identical bisection result, so
  // the memo is invisible to the determinism contract.
  if (inverse_version_ == state_version_ && target_w == inverse_target_w_) {
    return inverse_result_mhz_;
  }
  const double mhz = power_model_.core_mhz_for_power(
      target_w, effective_uncore_mhz(), demand_);
  inverse_version_ = state_version_;
  inverse_target_w_ = target_w;
  inverse_result_mhz_ = mhz;
  return mhz;
}

}  // namespace dufp::hw
