// A multi-socket machine (yeti-2 by default): owns the per-socket models.
#pragma once

#include <memory>
#include <vector>

#include "common/expect.h"
#include "hwmodel/socket_config.h"
#include "hwmodel/socket_model.h"

namespace dufp::hw {

class MachineModel {
 public:
  explicit MachineModel(const MachineConfig& config);

  const MachineConfig& config() const { return config_; }
  int socket_count() const { return static_cast<int>(sockets_.size()); }

  // Inline: the engine resolves a socket once or more per socket-tick.
  SocketModel& socket(int i) {
    DUFP_EXPECT(i >= 0 && i < socket_count());
    return *sockets_[static_cast<std::size_t>(i)];
  }
  const SocketModel& socket(int i) const {
    DUFP_EXPECT(i >= 0 && i < socket_count());
    return *sockets_[static_cast<std::size_t>(i)];
  }

  /// Aggregate instantaneous package power across sockets (each socket
  /// evaluated at its current settings).
  double total_pkg_power_w() const;
  double total_dram_power_w() const;

  /// Aggregate accumulated energies.
  double total_pkg_energy_j() const;
  double total_dram_energy_j() const;

 private:
  MachineConfig config_;
  std::vector<std::unique_ptr<SocketModel>> sockets_;
};

}  // namespace dufp::hw
