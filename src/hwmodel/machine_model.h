// A multi-socket machine (yeti-2 by default): owns the per-socket models.
#pragma once

#include <memory>
#include <vector>

#include "hwmodel/socket_config.h"
#include "hwmodel/socket_model.h"

namespace dufp::hw {

class MachineModel {
 public:
  explicit MachineModel(const MachineConfig& config);

  const MachineConfig& config() const { return config_; }
  int socket_count() const { return static_cast<int>(sockets_.size()); }

  SocketModel& socket(int i);
  const SocketModel& socket(int i) const;

  /// Aggregate instantaneous package power across sockets (each socket
  /// evaluated at its current settings).
  double total_pkg_power_w() const;
  double total_dram_power_w() const;

  /// Aggregate accumulated energies.
  double total_pkg_energy_j() const;
  double total_dram_energy_j() const;

 private:
  MachineConfig config_;
  std::vector<std::unique_ptr<SocketModel>> sockets_;
};

}  // namespace dufp::hw
