#include "hwmodel/machine_model.h"

#include "common/expect.h"

namespace dufp::hw {

MachineModel::MachineModel(const MachineConfig& config) : config_(config) {
  DUFP_EXPECT(config.sockets > 0);
  sockets_.reserve(static_cast<std::size_t>(config.sockets));
  for (int i = 0; i < config.sockets; ++i) {
    sockets_.push_back(std::make_unique<SocketModel>(config.socket, i));
  }
}

double MachineModel::total_pkg_power_w() const {
  double sum = 0.0;
  for (const auto& s : sockets_) sum += s->evaluate().pkg_power_w;
  return sum;
}

double MachineModel::total_dram_power_w() const {
  double sum = 0.0;
  for (const auto& s : sockets_) sum += s->evaluate().dram_power_w;
  return sum;
}

double MachineModel::total_pkg_energy_j() const {
  double sum = 0.0;
  for (const auto& s : sockets_) sum += s->pkg_energy_j();
  return sum;
}

double MachineModel::total_dram_energy_j() const {
  double sum = 0.0;
  for (const auto& s : sockets_) sum += s->dram_energy_j();
  return sum;
}

}  // namespace dufp::hw
