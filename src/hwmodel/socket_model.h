// Stateful model of one socket: actuator settings (core frequency limit
// from the RAPL governor, uncore window from MSR 0x620), current workload
// demand, and ground-truth accumulators (energy, flops, bytes, cycles)
// that the RAPL counters and the PAPI-like layer read from.
#pragma once

#include <cstdint>

#include "hwmodel/demand.h"
#include "hwmodel/perf_model.h"
#include "hwmodel/power_model.h"
#include "hwmodel/socket_config.h"

namespace dufp::hw {

class SocketModel {
 public:
  SocketModel(const SocketConfig& config, int socket_id);

  int socket_id() const { return socket_id_; }
  const SocketConfig& config() const { return config_; }
  const PowerModel& power_model() const { return power_model_; }
  const PerfModel& perf_model() const { return perf_model_; }

  // -- actuators --------------------------------------------------------------

  /// RAPL firmware DVFS decision: the highest core frequency the package
  /// may run at.  Clamped to the P-state range and quantized to the step.
  void set_core_freq_limit_mhz(double mhz);
  double core_freq_limit_mhz() const { return core_freq_limit_mhz_; }

  /// Uncore window from MSR_UNCORE_RATIO_LIMIT (min <= max expected; a
  /// reversed window is normalized like the hardware does).
  void set_uncore_window_mhz(double min_mhz, double max_mhz);
  double uncore_window_min_mhz() const { return uncore_min_mhz_; }
  double uncore_window_max_mhz() const { return uncore_max_mhz_; }

  /// Software P-state request (IA32_PERF_CTL), independent of the RAPL
  /// limit; the effective clock is the minimum of both.
  void set_user_pstate_limit_mhz(double mhz);
  double user_pstate_limit_mhz() const { return user_pstate_mhz_; }

  // -- demand ------------------------------------------------------------------

  void set_demand(const PhaseDemand& demand);
  const PhaseDemand& demand() const { return demand_; }

  // -- evaluation ---------------------------------------------------------------

  /// Core clock actually applied: P-state governor is `performance`, so
  /// the request is the all-core max; RAPL's limit caps it.
  double effective_core_mhz() const;

  /// Uncore clock actually applied: the hardware UFS requests max under
  /// load (the conservative default behaviour the paper criticizes) and
  /// min when idle; the MSR window clamps it.
  double effective_uncore_mhz() const;

  /// Full instantaneous state at the current settings and demand.
  ///
  /// Memoized: the result is a pure function of the actuator settings and
  /// the demand, so it is recomputed only after one of them actually
  /// changes (the setters compare before invalidating).  The firmware
  /// governor rewrites its frequency limit every tick but rarely *changes*
  /// it, which makes this the single biggest win on the simulation hot
  /// path — and because the cached struct is returned bit-for-bit, the
  /// memoization is invisible to the determinism contract.
  SocketInstant evaluate() const;

  /// Package power if the core clock were `core_mhz` (current demand and
  /// uncore setting).  Used by the firmware governor's P-state search.
  double package_power_at(double core_mhz) const;

  /// Unquantized core clock at which package power would equal `target_w`
  /// (current demand and uncore setting); see
  /// PowerModel::core_mhz_for_power.
  ///
  /// Memoized on exact input equality: the RAPL governor calls this every
  /// tick with an allowance derived from its power windows, and in steady
  /// state (constant recorded power, constant demand) that allowance is
  /// bit-identical tick after tick — so the bisection (the single hottest
  /// computation in a simulation tick) runs only when something actually
  /// moved.
  double core_mhz_for_power(double target_w) const;

  // -- ground-truth accounting ---------------------------------------------------

  /// Integrates one time step (the simulation engine calls this once per
  /// tick with the instant it just evaluated).
  void accumulate(const SocketInstant& instant, double dt_s);

  double pkg_energy_j() const { return pkg_energy_j_; }
  double dram_energy_j() const { return dram_energy_j_; }
  double flops_total() const { return flops_total_; }
  double bytes_total() const { return bytes_total_; }

  /// APERF-style actual-cycles counter (all cores run at the same clock in
  /// this model, so one counter serves every core).
  std::uint64_t aperf_cycles() const {
    return static_cast<std::uint64_t>(aperf_cycles_);
  }
  /// MPERF-style reference-cycles counter (base clock).
  std::uint64_t mperf_cycles() const {
    return static_cast<std::uint64_t>(mperf_cycles_);
  }

  /// Quantizes a core frequency to the P-state grid (clamped to range).
  double quantize_core_mhz(double mhz) const;
  /// Quantizes an uncore frequency to the ratio grid (clamped to range).
  double quantize_uncore_mhz(double mhz) const;

 private:
  SocketConfig config_;
  int socket_id_;
  PowerModel power_model_;
  PerfModel perf_model_;

  double core_freq_limit_mhz_;
  double user_pstate_mhz_;
  double uncore_min_mhz_;
  double uncore_max_mhz_;
  PhaseDemand demand_ = PhaseDemand::make_idle();

  mutable SocketInstant cached_instant_{};
  mutable bool cache_valid_ = false;

  // Inverse-model memo: valid while inverse_version_ matches
  // state_version_ (bumped by any demand / uncore-window change — the
  // inputs core_mhz_for_power depends on besides target_w).
  mutable std::uint64_t state_version_ = 1;
  mutable std::uint64_t inverse_version_ = 0;
  mutable double inverse_target_w_ = 0.0;
  mutable double inverse_result_mhz_ = 0.0;

  double pkg_energy_j_ = 0.0;
  double dram_energy_j_ = 0.0;
  double flops_total_ = 0.0;
  double bytes_total_ = 0.0;
  double aperf_cycles_ = 0.0;
  double mperf_cycles_ = 0.0;
};

}  // namespace dufp::hw
