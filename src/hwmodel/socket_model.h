// Stateful model of one socket: actuator settings (core frequency limit
// from the RAPL governor, uncore window from MSR 0x620), current workload
// demand, and ground-truth accumulators (energy, flops, bytes, cycles)
// that the RAPL counters and the PAPI-like layer read from.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/expect.h"
#include "hwmodel/demand.h"
#include "hwmodel/perf_model.h"
#include "hwmodel/power_model.h"
#include "hwmodel/socket_config.h"

namespace dufp::hw {

class SocketModel {
 public:
  SocketModel(const SocketConfig& config, int socket_id);

  int socket_id() const { return socket_id_; }
  const SocketConfig& config() const { return config_; }
  const PowerModel& power_model() const { return power_model_; }
  const PerfModel& perf_model() const { return perf_model_; }

  // -- actuators --------------------------------------------------------------

  /// RAPL firmware DVFS decision: the highest core frequency the package
  /// may run at.  Clamped to the P-state range and quantized to the step.
  /// The governor re-asserts its limit every tick and it is a no-op
  /// almost every time, so the compare-before-invalidate lives here where
  /// the engine loop inlines it.
  void set_core_freq_limit_mhz(double mhz) {
    const double q = quantize_core_mhz(mhz);
    if (q != core_freq_limit_mhz_) {
      core_freq_limit_mhz_ = q;
      cache_valid_ = false;
    }
  }
  double core_freq_limit_mhz() const { return core_freq_limit_mhz_; }

  /// Uncore window from MSR_UNCORE_RATIO_LIMIT (min <= max expected; a
  /// reversed window is normalized like the hardware does).
  void set_uncore_window_mhz(double min_mhz, double max_mhz);
  double uncore_window_min_mhz() const { return uncore_min_mhz_; }
  double uncore_window_max_mhz() const { return uncore_max_mhz_; }

  /// Software P-state request (IA32_PERF_CTL), independent of the RAPL
  /// limit; the effective clock is the minimum of both.
  void set_user_pstate_limit_mhz(double mhz);
  double user_pstate_limit_mhz() const { return user_pstate_mhz_; }

  // -- demand ------------------------------------------------------------------

  /// Re-asserted every segment by the engine; a no-op unless the demand
  /// actually changed (inline for the same reason as the limit setter).
  void set_demand(const PhaseDemand& demand) {
    DUFP_EXPECT(demand.w_cpu >= 0.0 && demand.w_mem >= 0.0 &&
                demand.w_unc >= 0.0 && demand.w_fixed >= 0.0);
    const double sum =
        demand.w_cpu + demand.w_mem + demand.w_unc + demand.w_fixed;
    DUFP_EXPECT(std::abs(sum - 1.0) < 1e-6);
    if (!(demand == demand_)) {
      demand_ = demand;
      cache_valid_ = false;
      ++state_version_;
    }
  }
  const PhaseDemand& demand() const { return demand_; }

  // -- evaluation ---------------------------------------------------------------

  /// Core clock actually applied: P-state governor is `performance`, so
  /// the request is the all-core max; RAPL's limit caps it.
  double effective_core_mhz() const;

  /// Uncore clock actually applied: the hardware UFS requests max under
  /// load (the conservative default behaviour the paper criticizes) and
  /// min when idle; the MSR window clamps it.
  double effective_uncore_mhz() const;

  /// Full instantaneous state at the current settings and demand.
  ///
  /// Memoized: the result is a pure function of the actuator settings and
  /// the demand, so it is recomputed only after one of them actually
  /// changes (the setters compare before invalidating).  The firmware
  /// governor rewrites its frequency limit every tick but rarely *changes*
  /// it, which makes this the single biggest win on the simulation hot
  /// path — and because the cached struct is returned bit-for-bit, the
  /// memoization is invisible to the determinism contract.
  SocketInstant evaluate() const {
    if (cache_valid_) return cached_instant_;
    return evaluate_slow();
  }

  /// Package power if the core clock were `core_mhz` (current demand and
  /// uncore setting).  Used by the firmware governor's P-state search.
  double package_power_at(double core_mhz) const;

  /// Unquantized core clock at which package power would equal `target_w`
  /// (current demand and uncore setting); see
  /// PowerModel::core_mhz_for_power.
  ///
  /// Memoized on exact input equality: the RAPL governor calls this every
  /// tick with an allowance derived from its power windows, and in steady
  /// state (constant recorded power, constant demand) that allowance is
  /// bit-identical tick after tick — so the bisection (the single hottest
  /// computation in a simulation tick) runs only when something actually
  /// moved.
  double core_mhz_for_power(double target_w) const;

  /// Monotone counter bumped whenever demand or the uncore window — the
  /// inputs of core_mhz_for_power besides the target — actually change.
  /// Callers that cache anything derived from the power-to-frequency
  /// inverse (the governor's plan bands) key their caches on it.
  std::uint64_t state_version() const { return state_version_; }

  // -- ground-truth accounting ---------------------------------------------------

  /// Integrates one time step (the simulation engine calls this once per
  /// tick with the instant it just evaluated).
  void accumulate(const SocketInstant& instant, double dt_s) {
    DUFP_EXPECT(dt_s >= 0.0);
    pkg_energy_j_ += instant.pkg_power_w * dt_s;
    dram_energy_j_ += instant.dram_power_w * dt_s;
    flops_total_ += instant.flops_rate * dt_s;
    bytes_total_ += instant.bytes_rate * dt_s;
    aperf_cycles_ += instant.core_mhz * 1e6 * dt_s;
    mperf_cycles_ += config_.core_base_mhz * 1e6 * dt_s;
  }

  double pkg_energy_j() const { return pkg_energy_j_; }
  double dram_energy_j() const { return dram_energy_j_; }
  double flops_total() const { return flops_total_; }
  double bytes_total() const { return bytes_total_; }

  /// APERF-style actual-cycles counter (all cores run at the same clock in
  /// this model, so one counter serves every core).
  std::uint64_t aperf_cycles() const {
    return static_cast<std::uint64_t>(aperf_cycles_);
  }
  /// MPERF-style reference-cycles counter (base clock).
  std::uint64_t mperf_cycles() const {
    return static_cast<std::uint64_t>(mperf_cycles_);
  }

  /// Snapshot of the six ground-truth accumulators, in the order
  /// accumulate() updates them.  Engine support for the event-leaping
  /// fast path: the simulation gathers these into flat per-lane arrays,
  /// replays the exact per-tick additions externally for a whole gap, and
  /// restores the results — bit-identical to calling accumulate() once
  /// per tick because the additions are the same operations in the same
  /// order on the same values.
  struct Accumulators {
    double pkg_energy_j = 0.0;
    double dram_energy_j = 0.0;
    double flops_total = 0.0;
    double bytes_total = 0.0;
    double aperf_cycles = 0.0;
    double mperf_cycles = 0.0;
  };
  Accumulators accumulators() const {
    return {pkg_energy_j_, dram_energy_j_, flops_total_,
            bytes_total_,  aperf_cycles_,  mperf_cycles_};
  }
  /// Restores a snapshot advanced externally (see accumulators()).  Does
  /// not touch actuators, demand, or the evaluation memos.
  void restore_accumulators(const Accumulators& a) {
    pkg_energy_j_ = a.pkg_energy_j;
    dram_energy_j_ = a.dram_energy_j;
    flops_total_ = a.flops_total;
    bytes_total_ = a.bytes_total;
    aperf_cycles_ = a.aperf_cycles;
    mperf_cycles_ = a.mperf_cycles;
  }

  /// Quantizes a core frequency to the P-state grid (clamped to range).
  double quantize_core_mhz(double mhz) const {
    const double clamped =
        std::clamp(mhz, config_.core_min_mhz, config_.core_max_mhz);
    const double steps = std::round((clamped - config_.core_min_mhz) /
                                    config_.core_step_mhz);
    return config_.core_min_mhz + steps * config_.core_step_mhz;
  }
  /// Quantizes an uncore frequency to the ratio grid (clamped to range).
  double quantize_uncore_mhz(double mhz) const {
    const double clamped =
        std::clamp(mhz, config_.uncore_min_mhz, config_.uncore_max_mhz);
    const double steps = std::round((clamped - config_.uncore_min_mhz) /
                                    config_.uncore_step_mhz);
    return config_.uncore_min_mhz + steps * config_.uncore_step_mhz;
  }

 private:
  /// Cache-miss tail of evaluate(): victim-cache scan, then the full
  /// model evaluation.
  SocketInstant evaluate_slow() const;
  SocketConfig config_;
  int socket_id_;
  PowerModel power_model_;
  PerfModel perf_model_;

  double core_freq_limit_mhz_;
  double user_pstate_mhz_;
  double uncore_min_mhz_;
  double uncore_max_mhz_;
  PhaseDemand demand_ = PhaseDemand::make_idle();

  mutable SocketInstant cached_instant_{};
  mutable bool cache_valid_ = false;

  // Victim cache behind the single-entry memo: a RAPL governor hunting
  // between two neighbouring P-states alternates a small set of operating
  // points, and re-entering one should not pay a full model evaluation.
  // Keyed on everything evaluate() reads: the two frequency limits plus
  // the state version (which covers demand and the uncore window).  The
  // cached struct is returned bit-for-bit, so the extra ways are as
  // invisible to the determinism contract as the single-entry memo.
  struct InstantWay {
    double core_limit = 0.0;
    double user_pstate = 0.0;
    std::uint64_t version = 0;
    SocketInstant instant{};
    bool valid = false;
  };
  static constexpr std::size_t kInstantWays = 4;
  mutable InstantWay instant_ways_[kInstantWays];
  mutable std::uint8_t instant_rr_ = 0;

  // Inverse-model memo: valid while inverse_version_ matches
  // state_version_ (bumped by any demand / uncore-window change — the
  // inputs core_mhz_for_power depends on besides target_w).
  mutable std::uint64_t state_version_ = 1;
  mutable std::uint64_t inverse_version_ = 0;
  mutable double inverse_target_w_ = 0.0;
  mutable double inverse_result_mhz_ = 0.0;

  double pkg_energy_j_ = 0.0;
  double dram_energy_j_ = 0.0;
  double flops_total_ = 0.0;
  double bytes_total_ = 0.0;
  double aperf_cycles_ = 0.0;
  double mperf_cycles_ = 0.0;
};

}  // namespace dufp::hw
