#include "hwmodel/power_model.h"

#include <cmath>
#include <limits>

#include "common/expect.h"
#include "common/units.h"

namespace dufp::hw {

PowerModel::PowerModel(const PowerModelParams& params, int cores,
                       double f_ref_mhz, double fu_ref_mhz)
    : params_(params),
      cores_(cores),
      f_ref_mhz_(f_ref_mhz),
      fu_ref_mhz_(fu_ref_mhz) {
  DUFP_EXPECT(cores > 0);
  DUFP_EXPECT(f_ref_mhz > 0.0 && fu_ref_mhz > 0.0);
}

namespace {

/// Relative voltage at normalized frequency x = f / f_ref.
double rel_voltage(double x, const PowerModelParams& p) {
  const double v = 1.0 - p.v_slope * (1.0 - x);
  return v > p.v_min_frac ? v : p.v_min_frac;
}

/// CV²f dynamic-power scale, 1.0 at the reference frequency.
double dvfs_scale(double x, const PowerModelParams& p) {
  const double v = rel_voltage(x, p);
  return x * v * v;
}

}  // namespace

double PowerModel::core_power_w(double core_mhz,
                                const PhaseDemand& demand) const {
  DUFP_EXPECT(core_mhz > 0.0);
  const double dyn = params_.core_dyn_w * demand.cpu_activity *
                     dvfs_scale(core_mhz / f_ref_mhz_, params_);
  return static_cast<double>(cores_) * (params_.core_idle_w + dyn);
}

double PowerModel::uncore_power_w(double uncore_mhz,
                                  const PhaseDemand& demand) const {
  DUFP_EXPECT(uncore_mhz > 0.0);
  const double ratio = uncore_mhz / fu_ref_mhz_;
  return params_.uncore_base_w * std::pow(ratio, params_.uncore_alpha) +
         params_.uncore_act_w * demand.mem_activity;
}

double PowerModel::package_power_w(double core_mhz, double uncore_mhz,
                                   const PhaseDemand& demand) const {
  return params_.static_w + core_power_w(core_mhz, demand) +
         uncore_power_w(uncore_mhz, demand);
}

double PowerModel::core_mhz_for_power(double target_w, double uncore_mhz,
                                      const PhaseDemand& demand) const {
  const double fixed = params_.static_w +
                       static_cast<double>(cores_) * params_.core_idle_w +
                       uncore_power_w(uncore_mhz, demand);
  const double dyn_budget_w = target_w - fixed;
  const double dyn_at_ref =
      static_cast<double>(cores_) * params_.core_dyn_w * demand.cpu_activity;
  if (dyn_budget_w <= 0.0) return 0.0;
  if (dyn_at_ref <= 0.0) return f_ref_mhz_;
  const double target_scale = dyn_budget_w / dyn_at_ref;
  if (target_scale >= 1.0) {
    // Even the reference clock fits; clamp to it.
    return f_ref_mhz_;
  }

  // Invert s(x) = x * V(x)^2.  In the floor region s is linear; above it
  // s is a cubic in x — solve by bisection (monotone, ~40 iterations,
  // exact to 1e-10; still far cheaper than anything else in a tick).
  const double x_floor =
      1.0 - (1.0 - params_.v_min_frac) / params_.v_slope;
  const double s_floor =
      x_floor > 0.0 ? dvfs_scale(x_floor, params_) : 0.0;
  if (x_floor > 0.0 && target_scale <= s_floor) {
    const double x = x_floor * target_scale / s_floor;
    return x * f_ref_mhz_;
  }
  double lo = std::max(x_floor, 0.0);
  double hi = 1.0;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (dvfs_scale(mid, params_) > target_scale) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return 0.5 * (lo + hi) * f_ref_mhz_;
}

double PowerModel::dram_power_w(double bytes_per_second) const {
  DUFP_EXPECT(bytes_per_second >= 0.0);
  return params_.dram_background_w +
         params_.dram_w_per_gbps * bps_to_gbps(bytes_per_second);
}

}  // namespace dufp::hw
