#include "hwmodel/perf_model.h"

#include <algorithm>
#include <cmath>

#include "common/expect.h"

namespace dufp::hw {

PerfModel::PerfModel(const MemoryModelParams& params, double f_ref_mhz,
                     double fu_ref_mhz)
    : params_(params), f_ref_mhz_(f_ref_mhz), fu_ref_mhz_(fu_ref_mhz) {
  DUFP_EXPECT(f_ref_mhz > 0.0 && fu_ref_mhz > 0.0);
  DUFP_EXPECT(params_.peak_bw_gbps > 0.0);
  DUFP_EXPECT(params_.fu_sat_mhz > 0.0);
  ref_bw_bps_ = 0.0;  // placate uninitialized-member lints
  ref_bw_bps_ = bandwidth_bps(f_ref_mhz_, fu_ref_mhz_);
}

double PerfModel::bandwidth_bps(double core_mhz, double uncore_mhz) const {
  DUFP_EXPECT(core_mhz > 0.0 && uncore_mhz > 0.0);
  const double uncore_scale =
      std::min(uncore_mhz, params_.fu_sat_mhz) / params_.fu_sat_mhz;
  const double concurrency = std::clamp(
      params_.conc_base + params_.conc_slope * core_mhz / f_ref_mhz_, 0.0,
      1.0);
  return params_.peak_bw_gbps * 1e9 * uncore_scale * concurrency;
}

double PerfModel::speed(double core_mhz, double uncore_mhz,
                        const PhaseDemand& demand) const {
  return 1.0 / dilation(core_mhz, uncore_mhz, demand);
}

double PerfModel::traffic_factor(double uncore_mhz,
                                 const PhaseDemand& demand) const {
  DUFP_EXPECT(uncore_mhz > 0.0);
  const double shortfall = std::max(0.0, 1.0 - uncore_mhz / fu_ref_mhz_);
  const double act2 = demand.mem_activity * demand.mem_activity;
  return std::max(0.0, 1.0 - params_.prefetch_coeff * act2 * shortfall);
}

double PerfModel::dilation(double core_mhz, double uncore_mhz,
                           const PhaseDemand& demand) const {
  DUFP_EXPECT(core_mhz > 0.0 && uncore_mhz > 0.0);
  const double bw = bandwidth_bps(core_mhz, uncore_mhz);
  const double cpu_term = demand.w_cpu * (f_ref_mhz_ / core_mhz);
  const double mem_term = demand.w_mem * (ref_bw_bps_ / bw);
  const double unc_term = demand.w_unc * (fu_ref_mhz_ / uncore_mhz);
  return cpu_term + mem_term + unc_term + demand.w_fixed;
}

}  // namespace dufp::hw
