#include "telemetry/telemetry.h"

#include <stdexcept>
#include <utility>

#include "common/expect.h"

namespace dufp::telemetry {

std::vector<std::string> TelemetryConfig::validate() const {
  std::vector<std::string> problems;
  if (flight_capacity < 2) {
    problems.push_back("flight_capacity must be >= 2");
  }
  if (flight_capacity > (1u << 20)) {
    problems.push_back("flight_capacity must be <= 2^20");
  }
  if (max_dumps < 1) {
    problems.push_back("max_dumps must be >= 1");
  }
  return problems;
}

MetricsRegistry& SocketTelemetry::registry() { return owner_->registry(); }

void SocketTelemetry::record_now(EventKind kind, std::uint16_t code, double a,
                                 double b) {
  record(kind, owner_->now(), code, a, b);
}

void SocketTelemetry::fail_open(SimTime t) {
  record(EventKind::fail_open, t);
  owner_->add_dump(socket_, t, recorder_.snapshot());
}

Telemetry::Telemetry(const TelemetryConfig& config, int sockets)
    : config_(config) {
  const auto problems = config.validate();
  if (!problems.empty()) {
    std::string msg = "TelemetryConfig:";
    for (std::size_t i = 0; i < problems.size(); ++i) {
      msg += (i == 0 ? " " : "; ") + problems[i];
    }
    throw std::invalid_argument(msg);
  }
  DUFP_EXPECT(sockets >= 1);
  for (int i = 0; i < sockets; ++i) {
    // new rather than make_unique: the constructor is private to Telemetry.
    sockets_.emplace_back(new SocketTelemetry(this, i, config.flight_capacity));
  }
  registry_.attach("dufp_flight_dumps_total",
                   "Watchdog fail-open dumps captured", {}, dumps_taken_);
  registry_.attach("dufp_flight_dumps_suppressed_total",
                   "Dumps dropped because max_dumps was reached", {},
                   dumps_suppressed_);
}

SocketTelemetry& Telemetry::socket(int i) {
  DUFP_EXPECT(i >= 0 && i < socket_count());
  return *sockets_[static_cast<std::size_t>(i)];
}

void Telemetry::set_clock(std::function<SimTime()> now_fn) {
  now_fn_ = std::move(now_fn);
}

SimTime Telemetry::now() const {
  return now_fn_ ? now_fn_() : SimTime::zero();
}

void Telemetry::add_dump(int socket, SimTime at, std::vector<Event> events) {
  std::lock_guard<std::mutex> lock(dump_mu_);
  if (dumps_.size() >= config_.max_dumps) {
    dumps_suppressed_.inc();
    return;
  }
  dumps_taken_.inc();
  FlightDump d;
  d.socket = socket;
  d.at_us = at.micros();
  d.events = std::move(events);
  dumps_.push_back(std::move(d));
}

TelemetrySnapshot Telemetry::snapshot() const {
  TelemetrySnapshot snap;
  snap.metrics = registry_.collect();
  snap.events.reserve(sockets_.size());
  for (const auto& s : sockets_) {
    snap.events.push_back(s->recorder().snapshot());
  }
  {
    std::lock_guard<std::mutex> lock(dump_mu_);
    snap.dumps = dumps_;
  }
  return snap;
}

}  // namespace dufp::telemetry
