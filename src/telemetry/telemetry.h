// The per-run telemetry plane: one MetricsRegistry plus one flight
// recorder per socket, handed to the control-plane components as nullable
// SocketTelemetry views.
//
// Disabled is the default and the null sink: the harness passes nullptr,
// components skip event recording entirely, and their instruments stay
// stand-alone (counted but never exported) — all pre-existing outputs are
// bit-identical, the same discipline the faults subsystem established.
// Telemetry draws no random numbers and never changes a decision; runs
// are bit-identical with it on or off.
//
// A run's Telemetry object is confined to the worker thread executing the
// run (runs are the parallel unit of the experiment engine), matching the
// flight recorder's SPSC contract.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "telemetry/events.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"

namespace dufp::telemetry {

struct TelemetryConfig {
  /// Master switch: when false the harness passes null views around and
  /// nothing below this header is constructed.
  bool enabled = false;

  /// Flight-recorder events retained per socket (rounded up to a power
  /// of two).  256 events cover roughly the last 50-100 control
  /// intervals of an active agent.
  std::size_t flight_capacity = 256;

  /// Watchdog fail-open dumps retained per run; later dumps are counted
  /// but dropped (a flapping socket must not hoard memory).
  std::size_t max_dumps = 8;

  /// Every problem found (empty = valid).
  std::vector<std::string> validate() const;
};

/// Everything a run's telemetry produced, as plain values: metric samples,
/// each socket's final ring contents, and the fail-open dumps.  This is
/// what RunResult carries and what the exporters consume.
struct TelemetrySnapshot {
  std::vector<MetricSample> metrics;
  std::vector<std::vector<Event>> events;  ///< [socket], oldest -> newest
  std::vector<FlightDump> dumps;
};

class Telemetry;

/// One socket's view: where that socket's components record events and
/// register instruments.  Obtained from Telemetry::socket(); components
/// hold it as a nullable pointer (nullptr = telemetry disabled).
class SocketTelemetry {
 public:
  SocketTelemetry(const SocketTelemetry&) = delete;
  SocketTelemetry& operator=(const SocketTelemetry&) = delete;

  int socket() const { return socket_; }
  MetricsRegistry& registry();

  /// Record with an explicit sim-clock stamp (components that are handed
  /// the interval time use this).
  void record(EventKind kind, SimTime t, std::uint16_t code = 0,
              double a = 0.0, double b = 0.0) {
    Event e;
    e.t_us = t.micros();
    e.kind = kind;
    e.socket = static_cast<std::uint16_t>(socket_);
    e.code = code;
    e.a = a;
    e.b = b;
    recorder_.record(e);
  }

  /// Record stamped with the run clock the harness attached (zero when
  /// none was).  For components that never see the interval time, e.g.
  /// the fault decorators.
  void record_now(EventKind kind, std::uint16_t code = 0, double a = 0.0,
                  double b = 0.0);

  /// The watchdog fail-open hook: records the event, then captures the
  /// socket's recent history as a bounded dump.
  void fail_open(SimTime t);

  const FlightRecorder& recorder() const { return recorder_; }

 private:
  friend class Telemetry;
  SocketTelemetry(Telemetry* owner, int socket, std::size_t capacity)
      : owner_(owner), socket_(socket), recorder_(capacity) {}

  Telemetry* owner_;
  int socket_;
  FlightRecorder recorder_;
};

/// One per run.  Owns the registry, the per-socket recorders and the
/// dump list.
class Telemetry {
 public:
  /// Throws std::invalid_argument on an invalid config (the harness
  /// validates first; direct users get the same contract).
  Telemetry(const TelemetryConfig& config, int sockets);

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  int socket_count() const { return static_cast<int>(sockets_.size()); }
  SocketTelemetry& socket(int i);
  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }

  /// Attach the run clock used by record_now() (e.g. the simulation's).
  /// The callable must outlive this object.
  void set_clock(std::function<SimTime()> now_fn);
  SimTime now() const;

  const std::vector<FlightDump>& dumps() const { return dumps_; }
  std::uint64_t dumps_suppressed() const { return dumps_suppressed_.value(); }

  /// Collects everything into plain values (metrics sorted, rings copied
  /// oldest -> newest).  Call after the run has finished or from the
  /// producer thread.
  TelemetrySnapshot snapshot() const;

 private:
  friend class SocketTelemetry;
  void add_dump(int socket, SimTime at, std::vector<Event> events);

  TelemetryConfig config_;
  MetricsRegistry registry_;
  std::vector<std::unique_ptr<SocketTelemetry>> sockets_;  ///< stable addresses
  std::function<SimTime()> now_fn_;

  mutable std::mutex dump_mu_;
  std::vector<FlightDump> dumps_;
  Counter dumps_taken_;
  Counter dumps_suppressed_;
};

}  // namespace dufp::telemetry
