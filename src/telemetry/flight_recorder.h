// Per-socket flight recorder: a lock-free single-producer ring of the
// last N structured interval events.
//
// Contract (SPSC): exactly one producer thread calls record().  The
// publication cursor is release-stored after the slot is written, so a
// consumer that loads it with acquire sees every record up to the cursor.
// Because old slots are overwritten in place, snapshot() is exact when it
// runs on the producer thread (the watchdog dump path) or after the
// producer has stopped (post-run export) — the two places the harness
// calls it.  A concurrent snapshot detects writer overtake via the cursor
// and retries with a narrower window rather than returning torn records.
//
// record() is allocation-free and branch-light: one relaxed load, a
// 32-byte POD store, one release store — cheap enough for every control
// interval of every socket.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "telemetry/events.h"

namespace dufp::telemetry {

/// A bounded dump of one socket's recent history, taken when the socket
/// degraded (or on demand).  Value type: survives the run that made it.
struct FlightDump {
  int socket = 0;
  std::int64_t at_us = 0;      ///< sim time of the trigger
  std::vector<Event> events;   ///< oldest -> newest
};

class FlightRecorder {
 public:
  /// `capacity` is rounded up to a power of two, minimum 2.
  explicit FlightRecorder(std::size_t capacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Single producer only.  Overwrites the oldest record when full.
  void record(const Event& e) {
    const std::uint64_t seq = head_.load(std::memory_order_relaxed);
    slots_[static_cast<std::size_t>(seq) & mask_] = e;
    head_.store(seq + 1, std::memory_order_release);
  }

  /// Events currently held, oldest -> newest (at most capacity()).
  std::vector<Event> snapshot() const;

  /// Total events ever recorded (monotonic; exceeds capacity when the
  /// ring has wrapped).
  std::uint64_t recorded() const {
    return head_.load(std::memory_order_acquire);
  }

  std::size_t capacity() const { return slots_.size(); }

 private:
  std::vector<Event> slots_;
  std::size_t mask_;
  std::atomic<std::uint64_t> head_{0};  ///< next sequence number to write
};

}  // namespace dufp::telemetry
