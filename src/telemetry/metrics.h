// Metrics registry: counters, gauges and fixed-bucket histograms cheap
// enough for the agent hot path.
//
// Instruments are handles over shared atomic cells.  Updates are plain
// relaxed atomics — no locks, no allocation, no formatting — so a counter
// increment costs one fetch_add whether or not a registry is attached.
// Names and labels are interned once, at registration; the hot path never
// touches a string.
//
// The null-sink default: an instrument constructed stand-alone (the
// default constructor) owns a private cell.  It counts — components read
// their own health through it — but no exporter ever sees it.  Attaching
// the same instrument to a MetricsRegistry is what makes it observable;
// the cell is shared, so registry exposition and component-local views
// read the identical value (single source of truth).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dufp::telemetry {

/// Label key/value pairs, in registration order.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { counter, gauge, histogram };

std::string_view metric_type_name(MetricType t);

/// Monotonic counter.  Default-constructed counters own a private cell
/// (null sink); registry-attached counters share their cell with the
/// exposition path.
class Counter {
 public:
  Counter() : cell_(std::make_shared<std::atomic<std::uint64_t>>(0)) {}

  void inc(std::uint64_t n = 1) {
    cell_->fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return cell_->load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  std::shared_ptr<std::atomic<std::uint64_t>> cell_;
};

/// Last-written-value gauge.
class Gauge {
 public:
  Gauge() : cell_(std::make_shared<std::atomic<double>>(0.0)) {}

  void set(double v) { cell_->store(v, std::memory_order_relaxed); }
  void add(double v) { cell_->fetch_add(v, std::memory_order_relaxed); }
  double value() const { return cell_->load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::shared_ptr<std::atomic<double>> cell_;
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds;
/// one implicit +Inf bucket is appended.  Bucket selection is a linear
/// scan — bound lists are expected to stay small (< 20).
class Histogram {
 public:
  Histogram() : Histogram(std::vector<double>{}) {}
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) {
    Cells& c = *cells_;
    std::size_t i = 0;
    while (i < c.bounds.size() && v > c.bounds[i]) ++i;
    c.buckets[i].fetch_add(1, std::memory_order_relaxed);
    c.sum.fetch_add(v, std::memory_order_relaxed);
    c.count.fetch_add(1, std::memory_order_relaxed);
  }

  const std::vector<double>& bounds() const { return cells_->bounds; }
  /// Per-bucket counts (not cumulative), bounds().size() + 1 entries.
  std::vector<std::uint64_t> bucket_counts() const;
  double sum() const { return cells_->sum.load(std::memory_order_relaxed); }
  std::uint64_t count() const {
    return cells_->count.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  struct Cells {
    explicit Cells(std::vector<double> b)
        : bounds(std::move(b)), buckets(bounds.size() + 1) {}
    std::vector<double> bounds;
    std::vector<std::atomic<std::uint64_t>> buckets;
    std::atomic<double> sum{0.0};
    std::atomic<std::uint64_t> count{0};
  };
  std::shared_ptr<Cells> cells_;
};

/// One exported series, as read at collection time.  Value type — a
/// collected snapshot stays meaningful after the registry is gone.
struct MetricSample {
  MetricType type = MetricType::counter;
  std::string name;
  std::string help;
  LabelSet labels;
  double value = 0.0;  ///< counter (as double) or gauge

  // Histogram only:
  std::vector<double> bucket_bounds;
  std::vector<std::uint64_t> bucket_counts;  ///< per-bucket, not cumulative
  double sum = 0.0;
  std::uint64_t count = 0;
};

/// Owns the export list.  Registration interns the metric name and takes
/// a mutex; instrument updates never do.  One registry per run.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Create-and-attach convenience constructors.
  Counter counter(std::string_view name, std::string_view help,
                  LabelSet labels = {});
  Gauge gauge(std::string_view name, std::string_view help,
              LabelSet labels = {});
  Histogram histogram(std::string_view name, std::string_view help,
                      std::vector<double> bounds, LabelSet labels = {});

  /// Attach an existing instrument (the component keeps its handle; the
  /// registry shares the cell).  A duplicate (name, labels) series throws
  /// std::invalid_argument — Prometheus forbids duplicate series and a
  /// silent overwrite would hide the bug.
  void attach(std::string_view name, std::string_view help, LabelSet labels,
              const Counter& c);
  void attach(std::string_view name, std::string_view help, LabelSet labels,
              const Gauge& g);
  void attach(std::string_view name, std::string_view help, LabelSet labels,
              const Histogram& h);

  /// Number of registered series.
  std::size_t size() const;

  /// Reads every series.  Sorted by (name, labels) so output is
  /// deterministic regardless of registration order.
  std::vector<MetricSample> collect() const;

 private:
  struct Entry {
    MetricType type;
    const std::string* name;  ///< interned, stable
    std::string help;
    LabelSet labels;
    // Exactly one of these holds the live cell for `type`.
    Counter counter;
    Gauge gauge;
    Histogram histogram;
  };

  const std::string* intern(std::string_view name);
  void add_entry(Entry e);

  mutable std::mutex mu_;
  std::deque<std::string> names_;  ///< interned storage, stable addresses
  std::vector<Entry> entries_;
};

}  // namespace dufp::telemetry
