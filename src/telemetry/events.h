// The flight-recorder event taxonomy: every structured interval event the
// control plane can emit, as a fixed-size POD stamped with the sim clock.
// Keeping the record trivially copyable (32 bytes) is what lets the
// recorder ring stay allocation-free on the hot path and the dumps stay
// deterministic for a fixed seed.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/clock.h"

namespace dufp::telemetry {

enum class EventKind : std::uint8_t {
  sample_accepted = 0,  ///< a: flops_rate, b: pkg_power_w
  sample_rejected,      ///< validation failed; sampler re-baselines
  sample_read_failure,  ///< counter read threw; interval skipped
  actuation,            ///< code: ActuationOp, a: target value
  actuation_retry,      ///< code: ActuationOp
  actuation_failure,    ///< code: ActuationOp; dead after all retries
  fail_open,            ///< watchdog entered the fail-safe state
  reengage_probe,       ///< a: 1 = probe succeeded, 0 = failed
  reengaged,            ///< socket back under control
  balancer_realloc,     ///< a: new allocation (W), b: measured core MHz
  fault_injected,       ///< code: faults::FaultClass
  count_                ///< sentinel
};

inline constexpr int kEventKindCount = static_cast<int>(EventKind::count_);

std::string_view event_kind_name(EventKind k);

/// Which hardware path an actuation event drove (`code` for the
/// actuation / actuation_retry / actuation_failure kinds).
enum class ActuationOp : std::uint16_t {
  uncore = 0,      ///< uncore window / pin write
  cap_long = 1,    ///< long-term power limit
  cap_short = 2,   ///< short-term power limit
  time_window = 3, ///< RAPL constraint time window
  pstate = 4,      ///< core frequency request / release
  probe = 5,       ///< watchdog re-engagement probe write
};

std::string_view actuation_op_name(ActuationOp op);

/// One structured interval event.  `code` is kind-specific (see EventKind
/// comments); `a` / `b` are kind-specific payloads.
struct Event {
  std::int64_t t_us = 0;  ///< sim-clock stamp (SimTime::micros)
  EventKind kind = EventKind::sample_accepted;
  std::uint16_t socket = 0;
  std::uint16_t code = 0;
  double a = 0.0;
  double b = 0.0;
};

}  // namespace dufp::telemetry
