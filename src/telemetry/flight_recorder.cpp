#include "telemetry/flight_recorder.h"

#include <algorithm>

namespace dufp::telemetry {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : slots_(round_up_pow2(std::max<std::size_t>(capacity, 2))),
      mask_(slots_.size() - 1) {}

std::vector<Event> FlightRecorder::snapshot() const {
  const std::size_t cap = slots_.size();
  for (int attempt = 0; attempt < 8; ++attempt) {
    const std::uint64_t end = head_.load(std::memory_order_acquire);
    // Shrink the window on each retry so a fast writer cannot starve us.
    const std::uint64_t want =
        std::min<std::uint64_t>(end, cap >> attempt);
    const std::uint64_t begin = end - want;
    std::vector<Event> out;
    out.reserve(static_cast<std::size_t>(want));
    for (std::uint64_t seq = begin; seq < end; ++seq) {
      out.push_back(slots_[static_cast<std::size_t>(seq) & mask_]);
    }
    // Records in [begin, end) are intact iff the writer has not lapped
    // past begin + capacity while we copied.
    const std::uint64_t end2 = head_.load(std::memory_order_acquire);
    if (end2 <= begin + cap) return out;
  }
  return {};
}

}  // namespace dufp::telemetry
