// Exporters: turn a TelemetrySnapshot into the three formats the outside
// world reads — Prometheus text exposition (scrape / promtool), Chrome
// trace-event JSON (about:tracing, Perfetto), and JSONL (one event per
// line, for jq / pandas).  All writers are deterministic: metrics are
// pre-sorted by the registry, events are emitted in non-decreasing
// sim-time order.
#pragma once

#include <ostream>
#include <string>
#include <string_view>

#include "telemetry/telemetry.h"

namespace dufp::telemetry {

// -- Prometheus text exposition (version 0.0.4) -----------------------------

/// `# HELP` / `# TYPE` per metric name, one line per series; histograms
/// expand to `_bucket{le=...}` (cumulative), `_sum`, `_count`.
void write_prometheus(const std::vector<MetricSample>& metrics,
                      std::ostream& os);

/// Label-value escaping: backslash, double-quote and newline.
std::string prometheus_escape_label(std::string_view value);

/// True iff `name` matches the metric-name grammar
/// [a-zA-Z_:][a-zA-Z0-9_:]*.
bool valid_prometheus_name(std::string_view name);

/// Maps an arbitrary string onto the metric-name grammar (invalid
/// characters become '_'; a leading digit gains a '_' prefix).
std::string sanitize_prometheus_name(std::string_view name);

// -- Chrome trace-event JSON ------------------------------------------------

/// Writes `{"traceEvents":[...]}` with one instant event per recorded
/// event (tid = socket), timestamps in microseconds, sorted
/// non-decreasing, plus process/thread metadata records.  Loads in
/// about:tracing and Perfetto.
void write_chrome_trace(const TelemetrySnapshot& snap, std::ostream& os);

/// JSON string-body escaping (quotes, backslash, control characters).
std::string json_escape(std::string_view s);

// -- JSONL ------------------------------------------------------------------

/// One JSON object per line per event, time-ordered; dumps are flagged
/// with "dump":true and their trigger time.
void write_jsonl(const TelemetrySnapshot& snap, std::ostream& os);

// -- Flight-recorder dumps --------------------------------------------------

/// Human-readable rendering of one dump (one line per event).
void write_dump(const FlightDump& dump, std::ostream& os);

// -- Convenience ------------------------------------------------------------

/// Writes `<prefix>.prom`, `<prefix>.trace.json`, `<prefix>.jsonl` and
/// one `<prefix>.dump<K>.txt` per flight dump.  Returns the paths
/// written.  Throws std::runtime_error when a file cannot be opened.
std::vector<std::string> export_run(const TelemetrySnapshot& snap,
                                    const std::string& prefix);

}  // namespace dufp::telemetry
