#include "telemetry/export.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <stdexcept>

#include "common/string_util.h"

namespace dufp::telemetry {

namespace {

/// Deterministic number rendering shared by every exporter: integers
/// print without a fractional part, everything else with 9 significant
/// digits — stable across platforms for the golden tests.
std::string format_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) &&
      std::abs(v) < 9.007199254740992e15) {
    return strf("%.0f", v);
  }
  return strf("%.9g", v);
}

void write_series_line(std::ostream& os, const std::string& name,
                       const LabelSet& labels, const std::string& value,
                       const char* extra_key = nullptr,
                       const std::string& extra_value = {}) {
  os << name;
  const bool have_labels = !labels.empty() || extra_key != nullptr;
  if (have_labels) {
    os << '{';
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!first) os << ',';
      first = false;
      os << k << "=\"" << prometheus_escape_label(v) << '"';
    }
    if (extra_key != nullptr) {
      if (!first) os << ',';
      os << extra_key << "=\"" << prometheus_escape_label(extra_value) << '"';
    }
    os << '}';
  }
  os << ' ' << value << '\n';
}

/// All sockets' ring events merged into one non-decreasing time order.
/// std::stable_sort keeps same-timestamp events in socket-major recording
/// order, so output is deterministic.
std::vector<Event> merged_events(const TelemetrySnapshot& snap) {
  std::vector<Event> all;
  for (const auto& ring : snap.events) {
    all.insert(all.end(), ring.begin(), ring.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Event& a, const Event& b) {
                     return a.t_us < b.t_us;
                   });
  return all;
}

void write_event_json(std::ostream& os, const Event& e) {
  os << "{\"ts_us\":" << e.t_us << ",\"socket\":" << e.socket << ",\"kind\":\""
     << event_kind_name(e.kind) << "\",\"code\":" << e.code
     << ",\"a\":" << format_number(e.a) << ",\"b\":" << format_number(e.b)
     << '}';
}

}  // namespace

std::string prometheus_escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

bool valid_prometheus_name(std::string_view name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (const char c : name.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

std::string sanitize_prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out = "_" + out;
  return out;
}

void write_prometheus(const std::vector<MetricSample>& metrics,
                      std::ostream& os) {
  const std::string* last_name = nullptr;
  for (const MetricSample& m : metrics) {
    const std::string name = sanitize_prometheus_name(m.name);
    if (last_name == nullptr || *last_name != m.name) {
      if (!m.help.empty()) {
        // HELP text escaping: backslash and newline only (the format
        // keeps double quotes verbatim here, unlike label values).
        std::string help;
        for (const char c : m.help) {
          if (c == '\\') help += "\\\\";
          else if (c == '\n') help += "\\n";
          else help += c;
        }
        os << "# HELP " << name << ' ' << help << '\n';
      }
      os << "# TYPE " << name << ' ' << metric_type_name(m.type) << '\n';
    }
    last_name = &m.name;

    if (m.type == MetricType::histogram) {
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < m.bucket_counts.size(); ++i) {
        cumulative += m.bucket_counts[i];
        const std::string le = i < m.bucket_bounds.size()
                                   ? format_number(m.bucket_bounds[i])
                                   : std::string("+Inf");
        write_series_line(os, name + "_bucket", m.labels,
                          std::to_string(cumulative), "le", le);
      }
      write_series_line(os, name + "_sum", m.labels, format_number(m.sum));
      write_series_line(os, name + "_count", m.labels,
                        std::to_string(m.count));
    } else {
      write_series_line(os, name, m.labels, format_number(m.value));
    }
  }
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strf("\\u%04x", static_cast<unsigned>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_chrome_trace(const TelemetrySnapshot& snap, std::ostream& os) {
  os << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ',';
    first = false;
    os << '\n';
  };
  // Metadata: name one pseudo-thread per socket so Perfetto's track
  // labels read "socket N" instead of bare tids.
  for (std::size_t i = 0; i < snap.events.size(); ++i) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << i
       << ",\"args\":{\"name\":\"socket " << i << "\"}}";
  }
  for (const Event& e : merged_events(snap)) {
    sep();
    os << "{\"name\":\"" << event_kind_name(e.kind)
       << "\",\"cat\":\"dufp\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << e.t_us
       << ",\"pid\":0,\"tid\":" << e.socket << ",\"args\":{\"code\":" << e.code;
    if (e.kind == EventKind::actuation || e.kind == EventKind::actuation_retry ||
        e.kind == EventKind::actuation_failure) {
      os << ",\"op\":\""
         << actuation_op_name(static_cast<ActuationOp>(e.code)) << '"';
    }
    os << ",\"a\":" << format_number(e.a) << ",\"b\":" << format_number(e.b)
       << "}}";
  }
  os << "\n]}\n";
}

void write_jsonl(const TelemetrySnapshot& snap, std::ostream& os) {
  for (const Event& e : merged_events(snap)) {
    write_event_json(os, e);
    os << '\n';
  }
  for (const FlightDump& d : snap.dumps) {
    os << "{\"dump\":true,\"socket\":" << d.socket << ",\"at_us\":" << d.at_us
       << ",\"events\":" << d.events.size() << "}\n";
  }
}

void write_dump(const FlightDump& dump, std::ostream& os) {
  os << "flight dump: socket " << dump.socket << " at t="
     << strf("%.6f", static_cast<double>(dump.at_us) * 1e-6) << "s, "
     << dump.events.size() << " events (oldest first)\n";
  for (const Event& e : dump.events) {
    os << strf("  t=%12.6fs  %-20s",
               static_cast<double>(e.t_us) * 1e-6,
               std::string(event_kind_name(e.kind)).c_str());
    if (e.kind == EventKind::actuation || e.kind == EventKind::actuation_retry ||
        e.kind == EventKind::actuation_failure) {
      os << " op=" << actuation_op_name(static_cast<ActuationOp>(e.code));
    } else if (e.code != 0) {
      os << " code=" << e.code;
    }
    os << " a=" << format_number(e.a) << " b=" << format_number(e.b) << '\n';
  }
}

std::vector<std::string> export_run(const TelemetrySnapshot& snap,
                                    const std::string& prefix) {
  std::vector<std::string> written;
  auto open = [&](const std::string& path) {
    std::ofstream f(path, std::ios::trunc);
    if (!f) throw std::runtime_error("export_run: cannot open " + path);
    written.push_back(path);
    return f;
  };
  {
    auto f = open(prefix + ".prom");
    write_prometheus(snap.metrics, f);
  }
  {
    auto f = open(prefix + ".trace.json");
    write_chrome_trace(snap, f);
  }
  {
    auto f = open(prefix + ".jsonl");
    write_jsonl(snap, f);
  }
  for (std::size_t i = 0; i < snap.dumps.size(); ++i) {
    auto f = open(prefix + ".dump" + std::to_string(i) + ".txt");
    write_dump(snap.dumps[i], f);
  }
  return written;
}

}  // namespace dufp::telemetry
