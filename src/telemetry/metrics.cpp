#include "telemetry/metrics.h"

#include <algorithm>
#include <stdexcept>

#include "common/expect.h"

namespace dufp::telemetry {

std::string_view metric_type_name(MetricType t) {
  switch (t) {
    case MetricType::counter: return "counter";
    case MetricType::gauge: return "gauge";
    case MetricType::histogram: return "histogram";
  }
  return "unknown";
}

Histogram::Histogram(std::vector<double> bounds) {
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    DUFP_EXPECT(bounds[i] > bounds[i - 1]);  // ascending, no duplicates
  }
  cells_ = std::make_shared<Cells>(std::move(bounds));
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(cells_->buckets.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = cells_->buckets[i].load(std::memory_order_relaxed);
  }
  return out;
}

const std::string* MetricsRegistry::intern(std::string_view name) {
  for (const std::string& n : names_) {
    if (n == name) return &n;
  }
  names_.emplace_back(name);
  return &names_.back();
}

void MetricsRegistry::add_entry(Entry e) {
  for (const Entry& existing : entries_) {
    if (*existing.name == *e.name && existing.labels == e.labels) {
      throw std::invalid_argument("MetricsRegistry: duplicate series \"" +
                                  *e.name + "\"");
    }
  }
  entries_.push_back(std::move(e));
}

Counter MetricsRegistry::counter(std::string_view name, std::string_view help,
                                 LabelSet labels) {
  Counter c;
  attach(name, help, std::move(labels), c);
  return c;
}

Gauge MetricsRegistry::gauge(std::string_view name, std::string_view help,
                             LabelSet labels) {
  Gauge g;
  attach(name, help, std::move(labels), g);
  return g;
}

Histogram MetricsRegistry::histogram(std::string_view name,
                                     std::string_view help,
                                     std::vector<double> bounds,
                                     LabelSet labels) {
  Histogram h(std::move(bounds));
  attach(name, help, std::move(labels), h);
  return h;
}

void MetricsRegistry::attach(std::string_view name, std::string_view help,
                             LabelSet labels, const Counter& c) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry e{MetricType::counter, intern(name), std::string(help),
          std::move(labels), c, Gauge{}, Histogram{}};
  add_entry(std::move(e));
}

void MetricsRegistry::attach(std::string_view name, std::string_view help,
                             LabelSet labels, const Gauge& g) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry e{MetricType::gauge, intern(name), std::string(help),
          std::move(labels), Counter{}, g, Histogram{}};
  add_entry(std::move(e));
}

void MetricsRegistry::attach(std::string_view name, std::string_view help,
                             LabelSet labels, const Histogram& h) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry e{MetricType::histogram, intern(name), std::string(help),
          std::move(labels), Counter{}, Gauge{}, h};
  add_entry(std::move(e));
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::vector<MetricSample> MetricsRegistry::collect() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    MetricSample s;
    s.type = e.type;
    s.name = *e.name;
    s.help = e.help;
    s.labels = e.labels;
    switch (e.type) {
      case MetricType::counter:
        s.value = static_cast<double>(e.counter.value());
        break;
      case MetricType::gauge:
        s.value = e.gauge.value();
        break;
      case MetricType::histogram:
        s.bucket_bounds = e.histogram.bounds();
        s.bucket_counts = e.histogram.bucket_counts();
        s.sum = e.histogram.sum();
        s.count = e.histogram.count();
        break;
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return out;
}

}  // namespace dufp::telemetry
