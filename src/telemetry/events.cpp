#include "telemetry/events.h"

namespace dufp::telemetry {

std::string_view event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::sample_accepted: return "sample_accepted";
    case EventKind::sample_rejected: return "sample_rejected";
    case EventKind::sample_read_failure: return "sample_read_failure";
    case EventKind::actuation: return "actuation";
    case EventKind::actuation_retry: return "actuation_retry";
    case EventKind::actuation_failure: return "actuation_failure";
    case EventKind::fail_open: return "fail_open";
    case EventKind::reengage_probe: return "reengage_probe";
    case EventKind::reengaged: return "reengaged";
    case EventKind::balancer_realloc: return "balancer_realloc";
    case EventKind::fault_injected: return "fault_injected";
    case EventKind::count_: break;
  }
  return "unknown";
}

std::string_view actuation_op_name(ActuationOp op) {
  switch (op) {
    case ActuationOp::uncore: return "uncore";
    case ActuationOp::cap_long: return "cap_long";
    case ActuationOp::cap_short: return "cap_short";
    case ActuationOp::time_window: return "time_window";
    case ActuationOp::pstate: return "pstate";
    case ActuationOp::probe: return "probe";
  }
  return "unknown";
}

}  // namespace dufp::telemetry
