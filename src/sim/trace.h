// Per-tick tracing: how Fig. 5 (frequency traces) and the debugging
// examples observe the simulation's internals.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/csv.h"

namespace dufp::sim {

/// One socket's state at the end of a tick.  Floats keep full-run traces
/// compact (30k ticks x 4 sockets per run).
struct TickRecord {
  float core_mhz = 0.0f;
  float uncore_mhz = 0.0f;
  float pkg_power_w = 0.0f;
  float dram_power_w = 0.0f;
  float cap_long_w = 0.0f;
  float cap_short_w = 0.0f;
  float flops_grate = 0.0f;  ///< GFLOP/s
  float speed = 0.0f;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Called once per tick with one record per socket.
  virtual void on_tick(SimTime now, const std::vector<TickRecord>& sockets) = 0;
};

/// Keeps every Nth tick in memory (decimation 1 = everything).
class VectorTraceSink final : public TraceSink {
 public:
  explicit VectorTraceSink(int decimation = 1);

  void on_tick(SimTime now, const std::vector<TickRecord>& sockets) override;

  struct Entry {
    SimTime time;
    std::vector<TickRecord> sockets;
  };
  const std::vector<Entry>& entries() const { return entries_; }

  /// Time-series of one field for one socket (for plotting / asserts).
  std::vector<double> series(
      int socket, double (*field)(const TickRecord&)) const;

 private:
  int decimation_;
  long tick_index_ = 0;
  std::vector<Entry> entries_;
};

/// Streams records to CSV:
/// time_s,socket,core_mhz,uncore_mhz,pkg_w,dram_w,cap_long_w,cap_short_w,gflops,speed
class CsvTraceSink final : public TraceSink {
 public:
  CsvTraceSink(const std::string& path, int decimation = 1);

  void on_tick(SimTime now, const std::vector<TickRecord>& sockets) override;

 private:
  CsvWriter writer_;
  int decimation_;
  long tick_index_ = 0;
};

}  // namespace dufp::sim
