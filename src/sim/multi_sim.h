// Batched multi-run lane engine (DESIGN.md §7f): drives K *independent*
// simulations ("lanes") to completion through one interleaved engine
// loop, with each lane's outputs byte-identical to a standalone
// Simulation::run().
//
// Why interleave at all, when the lanes share nothing?  Three wins:
//   1. Shared warm state.  Lanes of the same machine config populate the
//      process-wide cell-edge cache (rapl::SharedCellCache) as they go;
//      interleaving means lane 2 hits the edges lane 1 pinned moments
//      ago while both are still mid-run — the dominant cold cost of a
//      grid disappears after its first lane.
//   2. Fused leap sweeps.  When several lanes sit at their bitwise fixed
//      points simultaneously, their SoA accumulator slabs — rebound into
//      one contiguous block per lane group — advance in a single flat
//      `acc[j] += inc[j]` pass per tick over K × 11 × sockets doubles,
//      instead of K separate short loops.
//   3. Whole-lane threading.  Lane groups are embarrassingly parallel
//      (no barriers, no shared mutable state beyond the mutex-guarded
//      shared cache), replacing the barrier-heavy socket-parallel
//      batching for throughput workloads.
//
// Determinism argument.  Each lane's sequence of engine decisions (leap
// gap, calm stretch, exact tick) is a pure function of lane-local state:
// compute_leap_gap / fast_stretch / step read only the lane's own clock,
// governor, workload and models.  The only cross-lane coupling is the
// shared cell cache, which memoizes a pure function — a hit returns the
// identical bits the local bisection would produce.  Any interleaving of
// lane advances therefore reproduces each lane's standalone execution
// exactly, including its BatchStats: a fused sweep still commits each
// lane's *own* full gap as one leap (min-gap fused pass + per-lane
// remainder), so even the stats entries match.  Finished or unstaged
// lanes keep their inc slab zeroed, so the fused sweep adds +0.0 into
// their dead acc storage — unobservable by construction.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/simulation.h"

namespace dufp::sim {

struct MultiSimOptions {
  /// Lane-group threads: lanes split into `threads` contiguous groups,
  /// each owned whole by one worker (1 = serial, the default).  Results
  /// are byte-identical for any value.
  int threads = 1;

  /// Fuse simultaneous tier-1 leaps across lanes of a group into one
  /// flat slab sweep.  Off = every lane leaps through its own
  /// execute_leap; identical bytes either way (the A/B knob for the
  /// identity tests).
  bool fuse_leaps = true;
};

class MultiSim {
 public:
  /// Lanes must be distinct, non-null, not yet run, and configured with
  /// socket_threads == 1 (the lane engine is the serial engine,
  /// interleaved).  The simulations are borrowed, not owned, and are
  /// rebound to the group slabs only for the duration of run_all().
  explicit MultiSim(std::vector<Simulation*> lanes,
                    const MultiSimOptions& options = {});

  /// Drives every lane to completion.  After it returns, summary(i)
  /// holds what lanes[i]->run() would have returned, and each lane's
  /// observable state (accounting, stats, telemetry feeds, trace stream)
  /// is byte-identical to a standalone run.
  void run_all();

  const RunSummary& summary(std::size_t i) const;
  std::size_t lane_count() const { return lanes_.size(); }

 private:
  void run_group(std::size_t begin, std::size_t end);

  std::vector<Simulation*> lanes_;
  MultiSimOptions options_;
  std::vector<RunSummary> summaries_;
  bool ran_ = false;
};

}  // namespace dufp::sim
