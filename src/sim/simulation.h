// The discrete-time engine: advances the machine in 1 ms ticks, coupling
// per-socket workload demand, the RAPL firmware governor, the socket
// power/performance models, and any attached controllers (scheduled as
// periodic callbacks, like the paper's 200 ms DUFP loop).
//
// Within a tick the engine integrates exactly across phase boundaries:
// when a workload phase ends mid-tick, the tick is split into segments so
// energy / flops / bytes accounting never smears one phase's rates into
// the next.
//
// Hot-path design (see DESIGN.md § Hot path & scaling): the steady-state
// tick performs no heap allocation — phase transitions are keyed by
// interned phase *indices* rather than name strings, per-tick scratch
// lives in members sized at construction, and periodic scheduling is a
// next-deadline countdown instead of a modulo scan.  With
// SimulationOptions::socket_threads > 1, run() steps independent sockets
// in parallel in batches sized so no controller callback and no workload
// completion can land inside a batch; the outputs are byte-identical to
// the serial engine.
//
// Event leaping (SimulationOptions::time_leap, see DESIGN.md §7b) runs
// in two tiers.  Tier 1 — the full leap: when every socket sits at a
// verified bitwise fixed point (governor windows uniform and sum-stable,
// control decision reproducing itself, demand mid-phase), run() leaps
// simulated time up to the next event — the minimum over the next
// periodic deadline, each socket's next sequence-entry boundary, the
// max_seconds watchdog — executing only the irreducible per-tick
// floating-point accumulations over flat structure-of-arrays lanes.
// Tier 2 — the calm-tick stretch: under an active power cap the governor
// windows drift (old samples evict) even while the applied frequency
// limit holds, so the fixed point rarely exists; the engine then runs a
// reduced per-tick loop that executes only the observable-feeding
// operations (window sum updates, the plan-band membership test standing
// in for the P-state search, the accumulator lanes) and falls back to
// the exact stepper per socket on any tick whose control decision would
// actually move the limit.  Both tiers perform the exact FP operations
// the stepped engine performs and skip only work that is provably
// unobservable, so every output stays byte-identical; event-dense
// stretches fall back to exact stepping automatically.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "hwmodel/machine_model.h"
#include "msr/sim_msr.h"
#include "rapl/rapl_engine.h"
#include "sim/trace.h"
#include "workloads/workload.h"

namespace dufp::sim {

struct SimulationOptions {
  SimDuration tick = SimTime::from_millis(1);

  /// Per-run seed: drives workload jitter and (through fork_rng) any
  /// measurement noise attached by agents.
  std::uint64_t seed = 42;

  /// Relative sigma of per-phase duration jitter (run-to-run variation).
  double workload_jitter_sigma = 0.008;

  rapl::GovernorParams governor;

  /// Hard stop: abort (throw) if the run exceeds this wall time — guards
  /// against a controller bug stalling progress forever.
  double max_seconds = 3600.0;

  /// Number of threads run() may use to step independent sockets in
  /// parallel (1 = serial, the default).  Results are byte-identical to
  /// the serial engine for any value; see Simulation::run().  Phase
  /// listeners then fire on worker threads and must confine themselves to
  /// the socket they are called for (the harness's phase-cap listener
  /// does).
  int socket_threads = 1;

  /// Event-leaping fast path (on by default): run() skips the control
  /// loop across provably event-free, fixed-point stretches and executes
  /// only the per-tick accumulator additions.  Byte-identical to stepping
  /// for every observable output — the knob exists for A/B identity tests
  /// and perf diagnosis, not because the results differ.
  bool time_leap = true;
};

/// How the engine spent its ticks.  Cheap enough to keep always-on; the
/// throughput benches and the batching/leaping regression tests read it
/// so hot-path behaviour is observable, not inferred.
///
/// The batch_* fields describe the socket-parallel engine (all zero after
/// a serial run); batches are bounded by the next periodic deadline, the
/// last-workload finish lower bound and kMaxBatchTicks — phase boundaries
/// never bound a batch (tick integration splits at them regardless of
/// batching).  The leap fields describe the event-leaping fast path in
/// either mode.  Invariant: leapt_ticks + stepped_ticks + batched_ticks
/// equals the total ticks simulated (serial fallback ticks inside
/// run_parallel count under both serial_ticks and stepped_ticks).
struct BatchStats {
  std::int64_t batches = 0;        ///< parallel batches executed
  std::int64_t batched_ticks = 0;  ///< ticks stepped inside those batches
  std::int64_t serial_ticks = 0;   ///< ticks stepped via the serial fallback
  std::int64_t max_batch = 0;      ///< largest single batch, in ticks

  std::int64_t leaps = 0;          ///< event leaps executed
  std::int64_t leapt_ticks = 0;    ///< ticks covered by those leaps
  std::int64_t stepped_ticks = 0;  ///< ticks through the exact stepper
  std::int64_t max_leap = 0;       ///< largest single leap, in ticks
  /// Events the exact path handled: periodic-callback firings plus tick
  /// segment splits (sequence-entry boundaries landing inside a tick).
  std::int64_t events_fired = 0;
};

/// Wall time and energy attributed to one phase of the workload on one
/// socket (exact: tick integration splits at phase boundaries).
struct PhaseTotals {
  double wall_seconds = 0.0;
  double pkg_energy_j = 0.0;
  double dram_energy_j = 0.0;
};

/// Whole-run results at machine scope (what the paper measures per run).
struct RunSummary {
  double exec_seconds = 0.0;      ///< wall time until the last socket finished
  double pkg_energy_j = 0.0;      ///< all sockets
  double dram_energy_j = 0.0;
  double avg_pkg_power_w = 0.0;   ///< pkg_energy / exec time
  double avg_dram_power_w = 0.0;
  double total_gflop = 0.0;
  double total_gbytes = 0.0;

  double total_energy_j() const { return pkg_energy_j + dram_energy_j; }
};

class Simulation {
 public:
  /// Sentinel phase index meaning "no phase" (workload finished).
  static constexpr std::size_t kNoPhase = static_cast<std::size_t>(-1);

  /// Symmetric machine: every socket runs its share of the same
  /// application (the paper's OpenMP setup).
  Simulation(const hw::MachineConfig& machine,
             const workloads::WorkloadProfile& app,
             const SimulationOptions& options = {});

  /// Asymmetric machine: one profile per socket (size must equal the
  /// socket count; profiles must outlive the simulation).  Used by the
  /// machine-level budget-distribution studies.
  Simulation(const hw::MachineConfig& machine,
             const std::vector<const workloads::WorkloadProfile*>& apps,
             const SimulationOptions& options = {});
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // -- wiring ---------------------------------------------------------------
  int socket_count() const;
  hw::SocketModel& socket(int i);
  msr::SimulatedMsr& msr(int i);
  rapl::RaplEngine& rapl(int i);
  workloads::WorkloadInstance& workload(int i);

  /// Current simulated time.  During a socket-parallel batch this returns
  /// the exact mid-batch time of the tick the calling worker thread is
  /// stepping, so timestamps observed from listeners (telemetry, fault
  /// events) match the serial engine bit for bit.
  SimTime now() const;

  /// Independent RNG stream derived from the run seed.
  Rng fork_rng(std::uint64_t tag);

  /// Registers a callback fired every `interval` of simulated time (after
  /// physics for the tick ending on the boundary).  Controllers attach
  /// through this.
  using PeriodicFn = std::function<void(SimTime)>;
  void schedule_periodic(SimDuration interval, PeriodicFn fn);

  /// Notified when socket `s` enters (`entered`=true) or leaves a phase.
  /// `phase_idx` indexes workload(s).profile().phases(); resolve to a name
  /// with workload(s).profile().phase_name(phase_idx) when needed.  Used
  /// by the partial-capping experiments (Fig. 1b/1c).
  ///
  /// Contract: with socket_threads > 1 the listener fires on the worker
  /// thread stepping socket `s`; it must only touch state belonging to
  /// that socket (its zone, its MSR device, per-socket buffers) or
  /// synchronize explicitly.
  using PhaseListener =
      std::function<void(int socket, std::size_t phase_idx, bool entered)>;
  void add_phase_listener(PhaseListener fn);

  /// Non-owning; pass nullptr to detach.
  void set_trace_sink(TraceSink* sink) { trace_ = sink; }

  /// Per-phase accounting for socket `i`, indexed like
  /// workload(i).profile().phases().
  const std::vector<PhaseTotals>& phase_totals(int i) const;

  // -- execution -------------------------------------------------------------

  /// Advances one tick (always serial).  Returns false once every
  /// socket's workload has finished (the final tick is still fully
  /// processed).
  bool step();

  /// Runs to completion and summarizes.  With socket_threads > 1 the
  /// sockets are stepped in parallel batches; every observable output
  /// (trace stream, accounting, per-socket listener/fault/telemetry
  /// streams) is byte-identical to the serial run.
  RunSummary run();

  /// One iteration of the serial run() loop: a full event leap, a
  /// calm-tick stretch, or one exact tick — whichever the engine state
  /// selects, exactly as run() would.  Returns false once every workload
  /// has finished (the final tick fully processed).  A driver calling
  /// advance_once() until false then summarize() reproduces run()
  /// byte-for-byte — the entry point the batched multi-run engine
  /// (MultiSim) interleaves independent simulations through.
  bool advance_once();

  /// The RunSummary of the current state (what run() returns at the
  /// end).  Pure reads; callable any time, meaningful once finished().
  RunSummary summarize() const;

  bool finished() const;

  /// How the engine spent its ticks so far: leap/step split in both
  /// modes, batch accounting when socket-parallel (batch_* fields zero
  /// after a serial run).  By value: folds the per-socket event counters
  /// maintained lock-free by parallel workers.
  BatchStats batch_stats() const;

  /// Number of ticks the engine could leap right now (0 when any socket
  /// is off its fixed point, an event is imminent, or time_leap is off).
  /// Diagnostic mirror of the internal next-event computation — the
  /// microbench times it against a plain tick, and tests use it to
  /// observe steadiness directly.
  std::int64_t leap_horizon() const { return compute_leap_gap(); }

 private:
  struct Periodic {
    SimDuration interval;
    std::int64_t next_due_us;  ///< absolute deadline of the next firing
    PeriodicFn fn;
  };

  void announce_initial_phases();
  void fire_phase_transitions(int socket, std::size_t before_idx);
  /// Physics + accounting for one socket on one tick; fills the given
  /// record.  `tick_s` is the tick length in seconds.
  void integrate_socket_tick(int s, double tick_s, TickRecord& record);
  /// Clock advance + periodic / trace / watchdog handling shared by the
  /// serial step and the batched replay.
  void finish_tick(const std::vector<TickRecord>& records);
  void run_parallel();
  /// Upper bound on ticks that can run before any periodic fires inside
  /// the batch or any unfinished workload can possibly finish.
  std::int64_t max_batch_ticks() const;
  /// Ticks until the next engine-external event: min over periodic
  /// deadlines (minus the firing tick, which the exact stepper owns) and
  /// the max_seconds watchdog.  Never negative.
  std::int64_t event_bound_ticks() const;
  /// Event-leap planner: verifies every socket sits at a bitwise fixed
  /// point and min-reduces the per-socket / global event bounds (next
  /// periodic deadline, next sequence-entry boundary, max_seconds) over
  /// flat arrays.  Returns the leapable tick count, or 0 when stepping is
  /// required (off fixed point, event within kMinLeapTicks, leap off).
  std::int64_t compute_leap_gap() const;
  /// Tier-2 fast path: runs up to the event horizon in calm ticks
  /// (governor plan provably unchanged, windows updated exactly, lanes
  /// accumulated), per-socket falling back to integrate_socket_tick on
  /// limit-moving ticks.  Returns false without advancing anything when
  /// the preconditions fail (event imminent, demand residue, leap off).
  bool fast_stretch();
  /// Loads socket `s`'s accumulator lanes and per-tick increments from
  /// `inst` into the SoA arrays, refreshes the cached trace row and the
  /// recorded tick power (stretch_v_).  Shared by both leap tiers; called
  /// again whenever the socket's instant can have changed.
  void gather_socket_lanes(int s, const hw::SocketInstant& inst);
  /// Writes socket `s`'s advanced lanes back into the socket model,
  /// phase totals and workload progress.
  void scatter_socket_lanes(int s);
  /// Executes a planned leap: gathers the per-socket accumulators into
  /// structure-of-arrays lanes, applies the exact per-tick additions for
  /// `gap` ticks in one vectorizable loop, scatters the results back and
  /// advances the clock (emitting the constant trace rows when a sink is
  /// attached).  Pre-sized members only — allocation-free.
  void execute_leap(std::int64_t gap);

  // -- multi-run lane engine hooks (used by MultiSim, see multi_sim.h) -----
  /// Number of doubles in this simulation's acc/inc lane slabs.
  std::size_t lane_slab_size() const {
    return static_cast<std::size_t>(socket_count()) * kLeapLanes;
  }
  /// Points the lane slabs at caller-owned storage of lane_slab_size()
  /// doubles each (nullptr rebinds the simulation's own vectors).  The
  /// engine treats the slabs as scratch — contents are re-gathered
  /// before every use — so rebinding mid-run is safe between
  /// advance_once() calls.  The inc slab is zeroed on rebind and
  /// restored to zero after every leap/stretch (the invariant MultiSim's
  /// fused sweep relies on: an unstaged lane contributes +0.0 adds into
  /// dead acc storage).
  void rebind_lane_storage(double* acc, double* inc);
  /// Stages a leap: gathers every socket's lanes (first phase of
  /// execute_leap).
  void stage_leap();
  /// Applies `ticks` per-tick additions over the staged slab (no clock,
  /// no trace — the untraced leap's inner loop).
  void spin_leap_lanes(std::int64_t ticks);
  /// Completes a staged leap of `gap` total ticks whose additions have
  /// all been applied: advances the clock, scatters, updates stats,
  /// restores the inc-slab zeros.
  void finish_leap(std::int64_t gap);
  /// Zeroes the inc slab (the unstaged-lane invariant).
  void clear_leap_inc();

  friend class MultiSim;

  SimulationOptions options_;
  Rng root_rng_;
  hw::MachineModel machine_;
  SimClock clock_;

  std::vector<std::unique_ptr<msr::SimulatedMsr>> msrs_;
  std::vector<std::unique_ptr<rapl::RaplEngine>> rapls_;
  std::vector<std::unique_ptr<workloads::WorkloadInstance>> workloads_;

  std::vector<Periodic> periodics_;
  std::vector<PhaseListener> phase_listeners_;
  TraceSink* trace_ = nullptr;

  std::vector<TickRecord> tick_records_;  // scratch, reused per tick
  std::vector<std::vector<PhaseTotals>> phase_totals_;  // [socket][phase]
  // Socket-major ([socket * batch + tick]) so concurrent workers never
  // write the same cache line; the replay loop gathers per-tick rows.
  std::vector<TickRecord> batch_records_;
  BatchStats batch_stats_;

  /// Structure-of-arrays leap lanes, sized at construction
  /// (kLeapLanes doubles per socket, socket-major).  `acc` holds the
  /// gathered accumulator values, `inc` the per-tick increment of each
  /// lane; the leap loop is then a single flat `acc[j] += inc[j]` pass
  /// per tick over all sockets — vectorizable, allocation-free, and
  /// executing exactly the additions the stepped engine would.
  static constexpr std::size_t kLeapLanes = 11;
  std::vector<double> leap_acc_;
  std::vector<double> leap_inc_;
  /// Active lane storage: the own vectors above by default, or a
  /// MultiSim-owned contiguous slab shared with sibling lanes (see
  /// rebind_lane_storage).  Every engine path goes through these.
  double* acc_ = nullptr;
  double* inc_ = nullptr;
  /// Per-socket recorded tick power during a calm stretch — the exact
  /// value the stepped path would feed record_power().
  std::vector<double> stretch_v_;
  /// Segment-split events observed per socket; kept per-socket so
  /// parallel workers update them without synchronization, folded into
  /// BatchStats::events_fired by batch_stats().
  std::vector<std::int64_t> segment_events_;
  bool started_ = false;
};

}  // namespace dufp::sim
