// The discrete-time engine: advances the machine in 1 ms ticks, coupling
// per-socket workload demand, the RAPL firmware governor, the socket
// power/performance models, and any attached controllers (scheduled as
// periodic callbacks, like the paper's 200 ms DUFP loop).
//
// Within a tick the engine integrates exactly across phase boundaries:
// when a workload phase ends mid-tick, the tick is split into segments so
// energy / flops / bytes accounting never smears one phase's rates into
// the next.
//
// Hot-path design (see DESIGN.md § Hot path & scaling): the steady-state
// tick performs no heap allocation — phase transitions are keyed by
// interned phase *indices* rather than name strings, per-tick scratch
// lives in members sized at construction, and periodic scheduling is a
// next-deadline countdown instead of a modulo scan.  With
// SimulationOptions::socket_threads > 1, run() steps independent sockets
// in parallel in batches sized so no controller callback and no workload
// completion can land inside a batch; the outputs are byte-identical to
// the serial engine.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "hwmodel/machine_model.h"
#include "msr/sim_msr.h"
#include "rapl/rapl_engine.h"
#include "sim/trace.h"
#include "workloads/workload.h"

namespace dufp::sim {

struct SimulationOptions {
  SimDuration tick = SimTime::from_millis(1);

  /// Per-run seed: drives workload jitter and (through fork_rng) any
  /// measurement noise attached by agents.
  std::uint64_t seed = 42;

  /// Relative sigma of per-phase duration jitter (run-to-run variation).
  double workload_jitter_sigma = 0.008;

  rapl::GovernorParams governor;

  /// Hard stop: abort (throw) if the run exceeds this wall time — guards
  /// against a controller bug stalling progress forever.
  double max_seconds = 3600.0;

  /// Number of threads run() may use to step independent sockets in
  /// parallel (1 = serial, the default).  Results are byte-identical to
  /// the serial engine for any value; see Simulation::run().  Phase
  /// listeners then fire on worker threads and must confine themselves to
  /// the socket they are called for (the harness's phase-cap listener
  /// does).
  int socket_threads = 1;
};

/// How the socket-parallel engine spent its ticks (all zero after a
/// serial run).  Cheap enough to keep always-on; the throughput benches
/// and the batching regression tests read it so batch-window behaviour is
/// observable, not inferred.  Batches are bounded by the next periodic
/// deadline, the last-workload finish lower bound and kMaxBatchTicks —
/// phase boundaries never bound a batch (tick integration splits at them
/// regardless of batching).
struct BatchStats {
  std::int64_t batches = 0;        ///< parallel batches executed
  std::int64_t batched_ticks = 0;  ///< ticks stepped inside those batches
  std::int64_t serial_ticks = 0;   ///< ticks stepped via the serial fallback
  std::int64_t max_batch = 0;      ///< largest single batch, in ticks
};

/// Wall time and energy attributed to one phase of the workload on one
/// socket (exact: tick integration splits at phase boundaries).
struct PhaseTotals {
  double wall_seconds = 0.0;
  double pkg_energy_j = 0.0;
  double dram_energy_j = 0.0;
};

/// Whole-run results at machine scope (what the paper measures per run).
struct RunSummary {
  double exec_seconds = 0.0;      ///< wall time until the last socket finished
  double pkg_energy_j = 0.0;      ///< all sockets
  double dram_energy_j = 0.0;
  double avg_pkg_power_w = 0.0;   ///< pkg_energy / exec time
  double avg_dram_power_w = 0.0;
  double total_gflop = 0.0;
  double total_gbytes = 0.0;

  double total_energy_j() const { return pkg_energy_j + dram_energy_j; }
};

class Simulation {
 public:
  /// Sentinel phase index meaning "no phase" (workload finished).
  static constexpr std::size_t kNoPhase = static_cast<std::size_t>(-1);

  /// Symmetric machine: every socket runs its share of the same
  /// application (the paper's OpenMP setup).
  Simulation(const hw::MachineConfig& machine,
             const workloads::WorkloadProfile& app,
             const SimulationOptions& options = {});

  /// Asymmetric machine: one profile per socket (size must equal the
  /// socket count; profiles must outlive the simulation).  Used by the
  /// machine-level budget-distribution studies.
  Simulation(const hw::MachineConfig& machine,
             const std::vector<const workloads::WorkloadProfile*>& apps,
             const SimulationOptions& options = {});
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // -- wiring ---------------------------------------------------------------
  int socket_count() const;
  hw::SocketModel& socket(int i);
  msr::SimulatedMsr& msr(int i);
  rapl::RaplEngine& rapl(int i);
  workloads::WorkloadInstance& workload(int i);

  /// Current simulated time.  During a socket-parallel batch this returns
  /// the exact mid-batch time of the tick the calling worker thread is
  /// stepping, so timestamps observed from listeners (telemetry, fault
  /// events) match the serial engine bit for bit.
  SimTime now() const;

  /// Independent RNG stream derived from the run seed.
  Rng fork_rng(std::uint64_t tag);

  /// Registers a callback fired every `interval` of simulated time (after
  /// physics for the tick ending on the boundary).  Controllers attach
  /// through this.
  using PeriodicFn = std::function<void(SimTime)>;
  void schedule_periodic(SimDuration interval, PeriodicFn fn);

  /// Notified when socket `s` enters (`entered`=true) or leaves a phase.
  /// `phase_idx` indexes workload(s).profile().phases(); resolve to a name
  /// with workload(s).profile().phase_name(phase_idx) when needed.  Used
  /// by the partial-capping experiments (Fig. 1b/1c).
  ///
  /// Contract: with socket_threads > 1 the listener fires on the worker
  /// thread stepping socket `s`; it must only touch state belonging to
  /// that socket (its zone, its MSR device, per-socket buffers) or
  /// synchronize explicitly.
  using PhaseListener =
      std::function<void(int socket, std::size_t phase_idx, bool entered)>;
  void add_phase_listener(PhaseListener fn);

  /// Non-owning; pass nullptr to detach.
  void set_trace_sink(TraceSink* sink) { trace_ = sink; }

  /// Per-phase accounting for socket `i`, indexed like
  /// workload(i).profile().phases().
  const std::vector<PhaseTotals>& phase_totals(int i) const;

  // -- execution -------------------------------------------------------------

  /// Advances one tick (always serial).  Returns false once every
  /// socket's workload has finished (the final tick is still fully
  /// processed).
  bool step();

  /// Runs to completion and summarizes.  With socket_threads > 1 the
  /// sockets are stepped in parallel batches; every observable output
  /// (trace stream, accounting, per-socket listener/fault/telemetry
  /// streams) is byte-identical to the serial run.
  RunSummary run();

  bool finished() const;

  /// Batch accounting of the socket-parallel engine (zeroes after a
  /// serial run).
  const BatchStats& batch_stats() const { return batch_stats_; }

 private:
  struct Periodic {
    SimDuration interval;
    std::int64_t next_due_us;  ///< absolute deadline of the next firing
    PeriodicFn fn;
  };

  void announce_initial_phases();
  void fire_phase_transitions(int socket, std::size_t before_idx);
  /// Physics + accounting for one socket on one tick; fills the given
  /// record.  `tick_s` is the tick length in seconds.
  void integrate_socket_tick(int s, double tick_s, TickRecord& record);
  /// Clock advance + periodic / trace / watchdog handling shared by the
  /// serial step and the batched replay.
  void finish_tick(const std::vector<TickRecord>& records);
  void run_parallel();
  /// Upper bound on ticks that can run before any periodic fires inside
  /// the batch or any unfinished workload can possibly finish.
  std::int64_t max_batch_ticks() const;

  SimulationOptions options_;
  Rng root_rng_;
  hw::MachineModel machine_;
  SimClock clock_;

  std::vector<std::unique_ptr<msr::SimulatedMsr>> msrs_;
  std::vector<std::unique_ptr<rapl::RaplEngine>> rapls_;
  std::vector<std::unique_ptr<workloads::WorkloadInstance>> workloads_;

  std::vector<Periodic> periodics_;
  std::vector<PhaseListener> phase_listeners_;
  TraceSink* trace_ = nullptr;

  std::vector<TickRecord> tick_records_;  // scratch, reused per tick
  std::vector<std::vector<PhaseTotals>> phase_totals_;  // [socket][phase]
  // Socket-major ([socket * batch + tick]) so concurrent workers never
  // write the same cache line; the replay loop gathers per-tick rows.
  std::vector<TickRecord> batch_records_;
  BatchStats batch_stats_;
  bool started_ = false;
};

}  // namespace dufp::sim
