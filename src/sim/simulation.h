// The discrete-time engine: advances the machine in 1 ms ticks, coupling
// per-socket workload demand, the RAPL firmware governor, the socket
// power/performance models, and any attached controllers (scheduled as
// periodic callbacks, like the paper's 200 ms DUFP loop).
//
// Within a tick the engine integrates exactly across phase boundaries:
// when a workload phase ends mid-tick, the tick is split into segments so
// energy / flops / bytes accounting never smears one phase's rates into
// the next.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "hwmodel/machine_model.h"
#include "msr/sim_msr.h"
#include "rapl/rapl_engine.h"
#include "sim/trace.h"
#include "workloads/workload.h"

namespace dufp::sim {

struct SimulationOptions {
  SimDuration tick = SimTime::from_millis(1);

  /// Per-run seed: drives workload jitter and (through fork_rng) any
  /// measurement noise attached by agents.
  std::uint64_t seed = 42;

  /// Relative sigma of per-phase duration jitter (run-to-run variation).
  double workload_jitter_sigma = 0.008;

  rapl::GovernorParams governor;

  /// Hard stop: abort (throw) if the run exceeds this wall time — guards
  /// against a controller bug stalling progress forever.
  double max_seconds = 3600.0;
};

/// Wall time and energy attributed to one phase of the workload on one
/// socket (exact: tick integration splits at phase boundaries).
struct PhaseTotals {
  double wall_seconds = 0.0;
  double pkg_energy_j = 0.0;
  double dram_energy_j = 0.0;
};

/// Whole-run results at machine scope (what the paper measures per run).
struct RunSummary {
  double exec_seconds = 0.0;      ///< wall time until the last socket finished
  double pkg_energy_j = 0.0;      ///< all sockets
  double dram_energy_j = 0.0;
  double avg_pkg_power_w = 0.0;   ///< pkg_energy / exec time
  double avg_dram_power_w = 0.0;
  double total_gflop = 0.0;
  double total_gbytes = 0.0;

  double total_energy_j() const { return pkg_energy_j + dram_energy_j; }
};

class Simulation {
 public:
  /// Symmetric machine: every socket runs its share of the same
  /// application (the paper's OpenMP setup).
  Simulation(const hw::MachineConfig& machine,
             const workloads::WorkloadProfile& app,
             const SimulationOptions& options = {});

  /// Asymmetric machine: one profile per socket (size must equal the
  /// socket count; profiles must outlive the simulation).  Used by the
  /// machine-level budget-distribution studies.
  Simulation(const hw::MachineConfig& machine,
             const std::vector<const workloads::WorkloadProfile*>& apps,
             const SimulationOptions& options = {});
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // -- wiring ---------------------------------------------------------------
  int socket_count() const;
  hw::SocketModel& socket(int i);
  msr::SimulatedMsr& msr(int i);
  rapl::RaplEngine& rapl(int i);
  workloads::WorkloadInstance& workload(int i);
  SimTime now() const { return clock_.now(); }

  /// Independent RNG stream derived from the run seed.
  Rng fork_rng(std::uint64_t tag);

  /// Registers a callback fired every `interval` of simulated time (after
  /// physics for the tick ending on the boundary).  Controllers attach
  /// through this.
  using PeriodicFn = std::function<void(SimTime)>;
  void schedule_periodic(SimDuration interval, PeriodicFn fn);

  /// Notified when socket `s` enters (`entered`=true) or finishes a phase.
  /// Used by the partial-capping experiments (Fig. 1b/1c).
  using PhaseListener =
      std::function<void(int socket, const std::string& phase, bool entered)>;
  void add_phase_listener(PhaseListener fn);

  /// Non-owning; pass nullptr to detach.
  void set_trace_sink(TraceSink* sink) { trace_ = sink; }

  /// Per-phase accounting for socket `i`, indexed like
  /// workload(i).profile().phases().
  const std::vector<PhaseTotals>& phase_totals(int i) const;

  // -- execution -------------------------------------------------------------

  /// Advances one tick.  Returns false once every socket's workload has
  /// finished (the final tick is still fully processed).
  bool step();

  /// Runs to completion and summarizes.
  RunSummary run();

  bool finished() const;

 private:
  void fire_phase_transitions(
      int socket, const std::string& before_phase, bool before_finished);

  SimulationOptions options_;
  Rng root_rng_;
  hw::MachineModel machine_;
  SimClock clock_;

  std::vector<std::unique_ptr<msr::SimulatedMsr>> msrs_;
  std::vector<std::unique_ptr<rapl::RaplEngine>> rapls_;
  std::vector<std::unique_ptr<workloads::WorkloadInstance>> workloads_;

  struct Periodic {
    SimDuration interval;
    PeriodicFn fn;
  };
  std::vector<Periodic> periodics_;
  std::vector<PhaseListener> phase_listeners_;
  TraceSink* trace_ = nullptr;

  std::vector<TickRecord> tick_records_;  // scratch, reused per tick
  std::vector<std::vector<PhaseTotals>> phase_totals_;  // [socket][phase]
  bool started_ = false;
};

}  // namespace dufp::sim
