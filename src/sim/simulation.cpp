#include "sim/simulation.h"

#include <algorithm>
#include <future>
#include <stdexcept>

#include "common/expect.h"
#include "common/thread_pool.h"
#include "common/units.h"

namespace dufp::sim {

namespace {

// Mid-batch time override for worker threads.  While a worker steps
// socket physics for tick k of a batch, the shared clock still reads the
// batch start time; anything that asks the simulation for "now" from
// inside that physics (telemetry timestamps on fault events, listener
// logging) must instead see the exact per-tick time the serial engine
// would have shown it.
thread_local bool tls_has_now = false;
thread_local SimTime tls_now{};

struct NowOverrideScope {
  NowOverrideScope() { tls_has_now = true; }
  ~NowOverrideScope() { tls_has_now = false; }
  NowOverrideScope(const NowOverrideScope&) = delete;
  NowOverrideScope& operator=(const NowOverrideScope&) = delete;
};

/// Upper bound on ticks per parallel batch: bounds the replay buffer and
/// keeps the serial replay loop cache-resident.
constexpr std::int64_t kMaxBatchTicks = 512;

/// Below this batch size the submit/barrier overhead outweighs the
/// parallel work; the engine falls back to serial step()s.
constexpr std::int64_t kMinBatchTicks = 4;

/// Safety factor on the workload progress-rate bound.  The perf model
/// guarantees speed <= 1/(sum of weights) and profile validation allows
/// the weights to sum to 1 +/- 1e-6, so actual speed can exceed 1.0 by up
/// to ~1e-6; 1.001 gives three orders of magnitude of slack.
constexpr double kSpeedBoundMargin = 1.001;

}  // namespace

Simulation::Simulation(const hw::MachineConfig& machine,
                       const workloads::WorkloadProfile& app,
                       const SimulationOptions& options)
    : Simulation(machine,
                 std::vector<const workloads::WorkloadProfile*>(
                     static_cast<std::size_t>(machine.sockets), &app),
                 options) {}

Simulation::Simulation(
    const hw::MachineConfig& machine,
    const std::vector<const workloads::WorkloadProfile*>& apps,
    const SimulationOptions& options)
    : options_(options), root_rng_(options.seed), machine_(machine) {
  DUFP_EXPECT(options.tick.micros() > 0);
  DUFP_EXPECT(options.max_seconds > 0.0);
  DUFP_EXPECT(options.socket_threads >= 1);
  DUFP_EXPECT(static_cast<int>(apps.size()) == machine_.socket_count());

  rapl::GovernorParams gov = options_.governor;
  gov.tick_s = options_.tick.seconds();

  const int n = machine_.socket_count();
  msrs_.reserve(static_cast<std::size_t>(n));
  rapls_.reserve(static_cast<std::size_t>(n));
  workloads_.reserve(static_cast<std::size_t>(n));
  phase_totals_.reserve(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    const auto* app = apps[static_cast<std::size_t>(s)];
    DUFP_EXPECT(app != nullptr);
    msrs_.push_back(std::make_unique<msr::SimulatedMsr>(
        machine_.config().socket.cores));
    rapls_.push_back(std::make_unique<rapl::RaplEngine>(machine_.socket(s),
                                                        *msrs_.back(), gov));
    // Each socket's share of the application gets its own jitter stream.
    workloads_.push_back(std::make_unique<workloads::WorkloadInstance>(
        *app, root_rng_.fork(0x1000 + static_cast<std::uint64_t>(s)),
        options_.workload_jitter_sigma));
    phase_totals_.emplace_back(app->phases().size());
  }
  tick_records_.resize(static_cast<std::size_t>(n));
}

const std::vector<PhaseTotals>& Simulation::phase_totals(int i) const {
  DUFP_EXPECT(i >= 0 && i < static_cast<int>(phase_totals_.size()));
  return phase_totals_[static_cast<std::size_t>(i)];
}

Simulation::~Simulation() = default;

int Simulation::socket_count() const { return machine_.socket_count(); }

hw::SocketModel& Simulation::socket(int i) { return machine_.socket(i); }

msr::SimulatedMsr& Simulation::msr(int i) {
  DUFP_EXPECT(i >= 0 && i < socket_count());
  return *msrs_[static_cast<std::size_t>(i)];
}

rapl::RaplEngine& Simulation::rapl(int i) {
  DUFP_EXPECT(i >= 0 && i < socket_count());
  return *rapls_[static_cast<std::size_t>(i)];
}

workloads::WorkloadInstance& Simulation::workload(int i) {
  DUFP_EXPECT(i >= 0 && i < socket_count());
  return *workloads_[static_cast<std::size_t>(i)];
}

SimTime Simulation::now() const {
  return tls_has_now ? tls_now : clock_.now();
}

Rng Simulation::fork_rng(std::uint64_t tag) { return root_rng_.fork(tag); }

void Simulation::schedule_periodic(SimDuration interval, PeriodicFn fn) {
  DUFP_EXPECT(interval.micros() > 0);
  DUFP_EXPECT(interval.micros() % options_.tick.micros() == 0);
  DUFP_EXPECT(fn != nullptr);
  // First firing: the next multiple of `interval` strictly after now
  // (identical to the historical `t % interval == 0` check, but O(1) per
  // tick instead of a modulo per periodic per tick).
  const std::int64_t next =
      (clock_.now().micros() / interval.micros() + 1) * interval.micros();
  periodics_.push_back(Periodic{interval, next, std::move(fn)});
}

void Simulation::add_phase_listener(PhaseListener fn) {
  DUFP_EXPECT(fn != nullptr);
  phase_listeners_.push_back(std::move(fn));
}

bool Simulation::finished() const {
  for (const auto& w : workloads_) {
    if (!w->finished()) return false;
  }
  return true;
}

void Simulation::fire_phase_transitions(int socket, std::size_t before_idx) {
  if (phase_listeners_.empty()) return;
  auto& w = *workloads_[static_cast<std::size_t>(socket)];
  // Phase names are unique within a profile, so index equality is name
  // equality: this is the pre-interning comparison without the string
  // copies.
  const std::size_t after_idx = w.finished() ? kNoPhase : w.current_phase_idx();
  if (before_idx == after_idx) return;
  for (const auto& l : phase_listeners_) {
    if (before_idx != kNoPhase) l(socket, before_idx, /*entered=*/false);
    if (after_idx != kNoPhase) l(socket, after_idx, /*entered=*/true);
  }
}

void Simulation::announce_initial_phases() {
  // Announce the initial phases so listeners see a consistent enter/exit
  // stream from the very first tick.
  for (int s = 0; s < socket_count(); ++s) {
    auto& w = *workloads_[static_cast<std::size_t>(s)];
    if (!w.finished()) {
      for (const auto& l : phase_listeners_) {
        l(s, w.current_phase_idx(), /*entered=*/true);
      }
    }
  }
}

void Simulation::integrate_socket_tick(int s, double tick_s,
                                       TickRecord& record) {
  const auto si = static_cast<std::size_t>(s);

  // 1. Firmware power-capping decision for this tick.
  rapls_[si]->tick();

  // 2. Integrate the tick, splitting at phase boundaries.
  auto& w = *workloads_[si];
  auto& sock = machine_.socket(s);
  double remaining = tick_s;
  double pkg_energy = 0.0;
  hw::SocketInstant last_instant{};
  // Bounded iteration: each segment either exhausts the tick or crosses
  // one sequence entry, and sequences are finite.
  while (remaining > 1e-12) {
    const bool was_finished = w.finished();
    const std::size_t phase_before =
        was_finished ? kNoPhase : w.current_phase_idx();
    sock.set_demand(w.current_demand());
    const hw::SocketInstant inst = sock.evaluate();
    last_instant = inst;

    double seg = remaining;
    if (!was_finished && inst.speed > 0.0) {
      const double to_phase_end = w.remaining_in_phase() / inst.speed;
      seg = std::min(seg, to_phase_end);
    }
    // Guard against a zero-length segment from numerical round-off.
    seg = std::max(seg, 1e-9);
    seg = std::min(seg, remaining);

    sock.accumulate(inst, seg);
    pkg_energy += inst.pkg_power_w * seg;
    if (!was_finished) {
      PhaseTotals& pt = phase_totals_[si][phase_before];
      pt.wall_seconds += seg;
      pt.pkg_energy_j += inst.pkg_power_w * seg;
      pt.dram_energy_j += inst.dram_power_w * seg;
      w.advance(inst.speed * seg);
      fire_phase_transitions(s, phase_before);
    }
    remaining -= seg;
  }

  record.core_mhz = static_cast<float>(last_instant.core_mhz);
  record.uncore_mhz = static_cast<float>(last_instant.uncore_mhz);
  record.pkg_power_w = static_cast<float>(pkg_energy / tick_s);
  record.dram_power_w = static_cast<float>(last_instant.dram_power_w);
  const auto& lim = rapls_[si]->governor().limit();
  record.cap_long_w = static_cast<float>(lim.long_term_w);
  record.cap_short_w = static_cast<float>(lim.short_term_w);
  record.flops_grate =
      static_cast<float>(flops_to_gflops(last_instant.flops_rate));
  record.speed = static_cast<float>(last_instant.speed);

  // 3. Feed the firmware's running-average window with the tick's
  //    time-averaged power (phase splits included).
  rapls_[si]->record(
      hw::SocketInstant{.core_mhz = 0, .uncore_mhz = 0, .speed = 0,
                        .flops_rate = 0, .bytes_rate = 0,
                        .pkg_power_w = pkg_energy / tick_s,
                        .dram_power_w = 0},
      tick_s);
}

void Simulation::finish_tick(const std::vector<TickRecord>& records) {
  // Advance the clock, then fire any periodic callbacks whose deadline is
  // the new time (controllers observe a completed interval).
  const SimTime t = clock_.advance(options_.tick);
  const std::int64_t t_us = t.micros();
  for (auto& p : periodics_) {
    if (t_us == p.next_due_us) {
      p.fn(t);
      p.next_due_us += p.interval.micros();
    }
  }

  if (trace_ != nullptr) trace_->on_tick(t, records);

  if (t.seconds() > options_.max_seconds) {
    throw std::runtime_error(
        "Simulation exceeded max_seconds — controller stalled progress?");
  }
}

bool Simulation::step() {
  if (!started_) {
    started_ = true;
    announce_initial_phases();
  }
  const double tick_s = options_.tick.seconds();
  for (int s = 0; s < socket_count(); ++s) {
    integrate_socket_tick(s, tick_s, tick_records_[static_cast<std::size_t>(s)]);
  }
  finish_tick(tick_records_);
  return !finished();
}

std::int64_t Simulation::max_batch_ticks() const {
  const std::int64_t tick_us = options_.tick.micros();
  const double tick_s = options_.tick.seconds();
  const std::int64_t now_us = clock_.now().micros();
  std::int64_t bound = kMaxBatchTicks;

  // No periodic may fire strictly inside a batch: controllers read state
  // from every socket, so they may only run at the barrier.
  for (const auto& p : periodics_) {
    bound = std::min(bound, (p.next_due_us - now_us) / tick_us);
  }

  // No batch may overrun the tick the *last* workload could possibly
  // finish on: the serial engine stops there, and running further would
  // integrate idle time the serial run never saw.  An *individual*
  // workload finishing inside a batch is harmless — its socket integrates
  // idle demand for the remaining ticks, exactly what the serial engine
  // does while the other sockets are still running — so the bound is the
  // MAX over unfinished workloads of their optimistic finish ticks, not
  // the min.  (Taking the min here used to degrade the whole
  // staggered-finish tail — per-entry duration jitter spreads the four
  // sockets' finishes over hundreds of ticks — into 1-3-tick batches and
  // serial fallback; dense-sequence profiles such as replayed traces
  // were hit hardest.)  Progress per tick is at most tick_s * (max
  // speed), and speed is bounded by 1/(weight sum) — see
  // kSpeedBoundMargin.  Phase boundaries never bound a batch: tick
  // integration splits at them regardless of batching, and listeners are
  // socket-confined by contract.
  std::int64_t finish_bound = 0;
  bool any_unfinished = false;
  for (const auto& w : workloads_) {
    if (w->finished()) continue;
    any_unfinished = true;
    const double min_ticks_to_finish =
        w->remaining_nominal_seconds() / (tick_s * kSpeedBoundMargin);
    finish_bound = std::max(finish_bound,
                            static_cast<std::int64_t>(min_ticks_to_finish));
  }
  // All finished: mirror the serial do-while, which still processes the
  // final tick serially.
  return any_unfinished ? std::min(bound, finish_bound) : 0;
}

void Simulation::run_parallel() {
  const int n = socket_count();
  const double tick_s = options_.tick.seconds();
  const std::int64_t tick_us = options_.tick.micros();
  ThreadPool pool(std::min(options_.socket_threads, n));

  if (!started_) {
    started_ = true;
    announce_initial_phases();
  }
  batch_records_.reserve(static_cast<std::size_t>(kMaxBatchTicks) *
                         static_cast<std::size_t>(n));
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<std::size_t>(n));

  for (;;) {
    const std::int64_t batch = max_batch_ticks();
    if (batch < kMinBatchTicks) {
      // Endgame (the last workload is about to finish) or a periodic is
      // due in a few ticks: the barrier overhead isn't worth it.
      ++batch_stats_.serial_ticks;
      step();
      if (finished()) return;
      continue;
    }
    ++batch_stats_.batches;
    batch_stats_.batched_ticks += batch;
    batch_stats_.max_batch = std::max(batch_stats_.max_batch, batch);

    // Physics for `batch` ticks of every socket, sockets in parallel.
    // Socket state is fully independent between barriers (per-socket
    // MSRs, governor, workload, model, listener targets), so each worker
    // replays the exact serial per-socket instruction stream.
    batch_records_.resize(static_cast<std::size_t>(batch) *
                          static_cast<std::size_t>(n));
    const std::int64_t t0_us = clock_.now().micros();
    futures.clear();
    for (int s = 0; s < n; ++s) {
      futures.push_back(pool.submit([this, s, batch, t0_us, tick_s,
                                     tick_us] {
        NowOverrideScope scope;
        TickRecord* rows =
            batch_records_.data() + static_cast<std::size_t>(s) *
                                        static_cast<std::size_t>(batch);
        for (std::int64_t k = 0; k < batch; ++k) {
          tls_now = SimTime{t0_us + k * tick_us};
          integrate_socket_tick(s, tick_s, rows[k]);
        }
      }));
    }
    for (auto& f : futures) f.get();  // barrier (rethrows worker errors)

    // Replay the batch's bookkeeping in serial tick order: clock,
    // periodic deadlines (by construction only the final tick of the
    // batch can be due), trace rows, watchdog.
    for (std::int64_t k = 0; k < batch; ++k) {
      for (int s = 0; s < n; ++s) {
        tick_records_[static_cast<std::size_t>(s)] =
            batch_records_[static_cast<std::size_t>(s) *
                               static_cast<std::size_t>(batch) +
                           static_cast<std::size_t>(k)];
      }
      finish_tick(tick_records_);
    }
    if (finished()) return;
  }
}

RunSummary Simulation::run() {
  if (options_.socket_threads > 1 && socket_count() > 1) {
    run_parallel();
  } else {
    while (step()) {
    }
  }
  RunSummary sum;
  sum.exec_seconds = clock_.now().seconds();
  sum.pkg_energy_j = machine_.total_pkg_energy_j();
  sum.dram_energy_j = machine_.total_dram_energy_j();
  sum.avg_pkg_power_w =
      sum.exec_seconds > 0.0 ? sum.pkg_energy_j / sum.exec_seconds : 0.0;
  sum.avg_dram_power_w =
      sum.exec_seconds > 0.0 ? sum.dram_energy_j / sum.exec_seconds : 0.0;
  double flop = 0.0;
  double bytes = 0.0;
  for (int s = 0; s < socket_count(); ++s) {
    flop += machine_.socket(s).flops_total();
    bytes += machine_.socket(s).bytes_total();
  }
  sum.total_gflop = flop * 1e-9;
  sum.total_gbytes = bytes * 1e-9;
  return sum;
}

}  // namespace dufp::sim
