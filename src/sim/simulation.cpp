#include "sim/simulation.h"

#include <algorithm>
#include <stdexcept>

#include "common/expect.h"
#include "common/units.h"

namespace dufp::sim {

Simulation::Simulation(const hw::MachineConfig& machine,
                       const workloads::WorkloadProfile& app,
                       const SimulationOptions& options)
    : Simulation(machine,
                 std::vector<const workloads::WorkloadProfile*>(
                     static_cast<std::size_t>(machine.sockets), &app),
                 options) {}

Simulation::Simulation(
    const hw::MachineConfig& machine,
    const std::vector<const workloads::WorkloadProfile*>& apps,
    const SimulationOptions& options)
    : options_(options), root_rng_(options.seed), machine_(machine) {
  DUFP_EXPECT(options.tick.micros() > 0);
  DUFP_EXPECT(options.max_seconds > 0.0);
  DUFP_EXPECT(static_cast<int>(apps.size()) == machine_.socket_count());

  rapl::GovernorParams gov = options_.governor;
  gov.tick_s = options_.tick.seconds();

  const int n = machine_.socket_count();
  msrs_.reserve(static_cast<std::size_t>(n));
  rapls_.reserve(static_cast<std::size_t>(n));
  workloads_.reserve(static_cast<std::size_t>(n));
  phase_totals_.reserve(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    const auto* app = apps[static_cast<std::size_t>(s)];
    DUFP_EXPECT(app != nullptr);
    msrs_.push_back(std::make_unique<msr::SimulatedMsr>(
        machine_.config().socket.cores));
    rapls_.push_back(std::make_unique<rapl::RaplEngine>(machine_.socket(s),
                                                        *msrs_.back(), gov));
    // Each socket's share of the application gets its own jitter stream.
    workloads_.push_back(std::make_unique<workloads::WorkloadInstance>(
        *app, root_rng_.fork(0x1000 + static_cast<std::uint64_t>(s)),
        options_.workload_jitter_sigma));
    phase_totals_.emplace_back(app->phases().size());
  }
  tick_records_.resize(static_cast<std::size_t>(n));
}

const std::vector<PhaseTotals>& Simulation::phase_totals(int i) const {
  DUFP_EXPECT(i >= 0 && i < static_cast<int>(phase_totals_.size()));
  return phase_totals_[static_cast<std::size_t>(i)];
}

Simulation::~Simulation() = default;

int Simulation::socket_count() const { return machine_.socket_count(); }

hw::SocketModel& Simulation::socket(int i) { return machine_.socket(i); }

msr::SimulatedMsr& Simulation::msr(int i) {
  DUFP_EXPECT(i >= 0 && i < socket_count());
  return *msrs_[static_cast<std::size_t>(i)];
}

rapl::RaplEngine& Simulation::rapl(int i) {
  DUFP_EXPECT(i >= 0 && i < socket_count());
  return *rapls_[static_cast<std::size_t>(i)];
}

workloads::WorkloadInstance& Simulation::workload(int i) {
  DUFP_EXPECT(i >= 0 && i < socket_count());
  return *workloads_[static_cast<std::size_t>(i)];
}

Rng Simulation::fork_rng(std::uint64_t tag) { return root_rng_.fork(tag); }

void Simulation::schedule_periodic(SimDuration interval, PeriodicFn fn) {
  DUFP_EXPECT(interval.micros() > 0);
  DUFP_EXPECT(interval.micros() % options_.tick.micros() == 0);
  DUFP_EXPECT(fn != nullptr);
  periodics_.push_back(Periodic{interval, std::move(fn)});
}

void Simulation::add_phase_listener(PhaseListener fn) {
  DUFP_EXPECT(fn != nullptr);
  phase_listeners_.push_back(std::move(fn));
}

bool Simulation::finished() const {
  for (const auto& w : workloads_) {
    if (!w->finished()) return false;
  }
  return true;
}

void Simulation::fire_phase_transitions(int socket,
                                        const std::string& before_phase,
                                        bool before_finished) {
  if (phase_listeners_.empty()) return;
  auto& w = *workloads_[static_cast<std::size_t>(socket)];
  const bool after_finished = w.finished();
  const std::string after_phase =
      after_finished ? std::string{} : w.current_phase().name;
  if (before_finished == after_finished && before_phase == after_phase) return;
  for (const auto& l : phase_listeners_) {
    if (!before_finished && !before_phase.empty()) {
      l(socket, before_phase, /*entered=*/false);
    }
    if (!after_finished && !after_phase.empty()) {
      l(socket, after_phase, /*entered=*/true);
    }
  }
}

bool Simulation::step() {
  const int n = socket_count();
  const double tick_s = options_.tick.seconds();

  // On the very first tick, announce the initial phases so listeners see a
  // consistent enter/exit stream.
  if (!started_) {
    started_ = true;
    for (int s = 0; s < n; ++s) {
      auto& w = *workloads_[static_cast<std::size_t>(s)];
      if (!w.finished()) {
        for (const auto& l : phase_listeners_) {
          l(s, w.current_phase().name, /*entered=*/true);
        }
      }
    }
  }

  // 1. Firmware power-capping decision for this tick.
  for (int s = 0; s < n; ++s) rapls_[static_cast<std::size_t>(s)]->tick();

  // 2. Integrate the tick, splitting at phase boundaries.
  std::vector<double> tick_pkg_energy(static_cast<std::size_t>(n), 0.0);
  for (int s = 0; s < n; ++s) {
    auto& w = *workloads_[static_cast<std::size_t>(s)];
    auto& sock = machine_.socket(s);
    double remaining = tick_s;
    hw::SocketInstant last_instant{};
    // Bounded iteration: each segment either exhausts the tick or crosses
    // one sequence entry, and sequences are finite.
    while (remaining > 1e-12) {
      const bool was_finished = w.finished();
      const std::string phase_before =
          was_finished ? std::string{} : w.current_phase().name;
      sock.set_demand(w.current_demand());
      const hw::SocketInstant inst = sock.evaluate();
      last_instant = inst;

      double seg = remaining;
      if (!was_finished && inst.speed > 0.0) {
        const double to_phase_end = w.remaining_in_phase() / inst.speed;
        seg = std::min(seg, to_phase_end);
      }
      // Guard against a zero-length segment from numerical round-off.
      seg = std::max(seg, 1e-9);
      seg = std::min(seg, remaining);

      sock.accumulate(inst, seg);
      tick_pkg_energy[static_cast<std::size_t>(s)] += inst.pkg_power_w * seg;
      if (!was_finished) {
        const std::size_t phase_idx =
            w.profile().sequence()[w.position()];
        PhaseTotals& pt =
            phase_totals_[static_cast<std::size_t>(s)][phase_idx];
        pt.wall_seconds += seg;
        pt.pkg_energy_j += inst.pkg_power_w * seg;
        pt.dram_energy_j += inst.dram_power_w * seg;
        w.advance(inst.speed * seg);
        fire_phase_transitions(s, phase_before, was_finished);
      }
      remaining -= seg;
    }

    TickRecord& r = tick_records_[static_cast<std::size_t>(s)];
    r.core_mhz = static_cast<float>(last_instant.core_mhz);
    r.uncore_mhz = static_cast<float>(last_instant.uncore_mhz);
    r.pkg_power_w = static_cast<float>(
        tick_pkg_energy[static_cast<std::size_t>(s)] / tick_s);
    r.dram_power_w = static_cast<float>(last_instant.dram_power_w);
    const auto& lim = rapls_[static_cast<std::size_t>(s)]->governor().limit();
    r.cap_long_w = static_cast<float>(lim.long_term_w);
    r.cap_short_w = static_cast<float>(lim.short_term_w);
    r.flops_grate = static_cast<float>(flops_to_gflops(last_instant.flops_rate));
    r.speed = static_cast<float>(last_instant.speed);
  }

  // 3. Feed the firmware's running-average windows with the tick's
  //    time-averaged power (phase splits included).
  for (int s = 0; s < n; ++s) {
    rapls_[static_cast<std::size_t>(s)]->record(
        hw::SocketInstant{
            .core_mhz = 0, .uncore_mhz = 0, .speed = 0, .flops_rate = 0,
            .bytes_rate = 0,
            .pkg_power_w = tick_pkg_energy[static_cast<std::size_t>(s)] /
                           tick_s,
            .dram_power_w = 0},
        tick_s);
  }

  // 4. Advance the clock, then fire any periodic callbacks landing on the
  //    new time (controllers observe a completed interval).
  const SimTime t = clock_.advance(options_.tick);
  for (const auto& p : periodics_) {
    if (t.micros() % p.interval.micros() == 0) p.fn(t);
  }

  if (trace_ != nullptr) trace_->on_tick(t, tick_records_);

  if (t.seconds() > options_.max_seconds) {
    throw std::runtime_error(
        "Simulation exceeded max_seconds — controller stalled progress?");
  }
  return !finished();
}

RunSummary Simulation::run() {
  while (step()) {
  }
  RunSummary sum;
  sum.exec_seconds = clock_.now().seconds();
  sum.pkg_energy_j = machine_.total_pkg_energy_j();
  sum.dram_energy_j = machine_.total_dram_energy_j();
  sum.avg_pkg_power_w =
      sum.exec_seconds > 0.0 ? sum.pkg_energy_j / sum.exec_seconds : 0.0;
  sum.avg_dram_power_w =
      sum.exec_seconds > 0.0 ? sum.dram_energy_j / sum.exec_seconds : 0.0;
  double flop = 0.0;
  double bytes = 0.0;
  for (int s = 0; s < socket_count(); ++s) {
    flop += machine_.socket(s).flops_total();
    bytes += machine_.socket(s).bytes_total();
  }
  sum.total_gflop = flop * 1e-9;
  sum.total_gbytes = bytes * 1e-9;
  return sum;
}

}  // namespace dufp::sim
