#include "sim/simulation.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <limits>
#include <stdexcept>

#include "common/expect.h"
#include "common/thread_pool.h"
#include "common/units.h"

namespace dufp::sim {

namespace {

// Mid-batch time override for worker threads.  While a worker steps
// socket physics for tick k of a batch, the shared clock still reads the
// batch start time; anything that asks the simulation for "now" from
// inside that physics (telemetry timestamps on fault events, listener
// logging) must instead see the exact per-tick time the serial engine
// would have shown it.
thread_local bool tls_has_now = false;
thread_local SimTime tls_now{};

struct NowOverrideScope {
  NowOverrideScope() { tls_has_now = true; }
  ~NowOverrideScope() { tls_has_now = false; }
  NowOverrideScope(const NowOverrideScope&) = delete;
  NowOverrideScope& operator=(const NowOverrideScope&) = delete;
};

/// Upper bound on ticks per parallel batch: bounds the replay buffer and
/// keeps the serial replay loop cache-resident.
constexpr std::int64_t kMaxBatchTicks = 512;

/// Below this batch size the submit/barrier overhead outweighs the
/// parallel work; the engine falls back to serial step()s.
constexpr std::int64_t kMinBatchTicks = 4;

/// Safety factor on the workload progress-rate bound.  The perf model
/// guarantees speed <= 1/(sum of weights) and profile validation allows
/// the weights to sum to 1 +/- 1e-6, so actual speed can exceed 1.0 by up
/// to ~1e-6; 1.001 gives three orders of magnitude of slack.
constexpr double kSpeedBoundMargin = 1.001;

/// Below this gap the leap planner's fixed-point verification plus the
/// gather/scatter costs about as much as just stepping the ticks.
constexpr std::int64_t kMinLeapTicks = 4;

/// Below this horizon the calm-stretch entry checks and gather/scatter
/// cost about as much as stepping the ticks exactly.
constexpr std::int64_t kMinFastTicks = 4;

/// Builds a trace row.  Shared by the exact stepper and the leap fast
/// path so both construct rows from identical expressions — part of the
/// byte-identity argument, not a convenience.
void fill_tick_record(const hw::SocketInstant& inst, double pkg_avg_w,
                      const msr::PowerLimit& lim, TickRecord& record) {
  record.core_mhz = static_cast<float>(inst.core_mhz);
  record.uncore_mhz = static_cast<float>(inst.uncore_mhz);
  record.pkg_power_w = static_cast<float>(pkg_avg_w);
  record.dram_power_w = static_cast<float>(inst.dram_power_w);
  record.cap_long_w = static_cast<float>(lim.long_term_w);
  record.cap_short_w = static_cast<float>(lim.short_term_w);
  record.flops_grate = static_cast<float>(flops_to_gflops(inst.flops_rate));
  record.speed = static_cast<float>(inst.speed);
}

}  // namespace

Simulation::Simulation(const hw::MachineConfig& machine,
                       const workloads::WorkloadProfile& app,
                       const SimulationOptions& options)
    : Simulation(machine,
                 std::vector<const workloads::WorkloadProfile*>(
                     static_cast<std::size_t>(machine.sockets), &app),
                 options) {}

Simulation::Simulation(
    const hw::MachineConfig& machine,
    const std::vector<const workloads::WorkloadProfile*>& apps,
    const SimulationOptions& options)
    : options_(options), root_rng_(options.seed), machine_(machine) {
  DUFP_EXPECT(options.tick.micros() > 0);
  DUFP_EXPECT(options.max_seconds > 0.0);
  DUFP_EXPECT(options.socket_threads >= 1);
  DUFP_EXPECT(static_cast<int>(apps.size()) == machine_.socket_count());

  rapl::GovernorParams gov = options_.governor;
  gov.tick_s = options_.tick.seconds();

  const int n = machine_.socket_count();
  msrs_.reserve(static_cast<std::size_t>(n));
  rapls_.reserve(static_cast<std::size_t>(n));
  workloads_.reserve(static_cast<std::size_t>(n));
  phase_totals_.reserve(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    const auto* app = apps[static_cast<std::size_t>(s)];
    DUFP_EXPECT(app != nullptr);
    msrs_.push_back(std::make_unique<msr::SimulatedMsr>(
        machine_.config().socket.cores));
    rapls_.push_back(std::make_unique<rapl::RaplEngine>(machine_.socket(s),
                                                        *msrs_.back(), gov));
    // Each socket's share of the application gets its own jitter stream.
    workloads_.push_back(std::make_unique<workloads::WorkloadInstance>(
        *app, root_rng_.fork(0x1000 + static_cast<std::uint64_t>(s)),
        options_.workload_jitter_sigma));
    phase_totals_.emplace_back(app->phases().size());
  }
  tick_records_.resize(static_cast<std::size_t>(n));
  // Leap lanes and event counters are sized once here so the steady-state
  // paths (exact tick and leap alike) stay allocation-free.
  leap_acc_.resize(static_cast<std::size_t>(n) * kLeapLanes, 0.0);
  leap_inc_.resize(static_cast<std::size_t>(n) * kLeapLanes, 0.0);
  acc_ = leap_acc_.data();
  inc_ = leap_inc_.data();
  stretch_v_.resize(static_cast<std::size_t>(n), 0.0);
  segment_events_.resize(static_cast<std::size_t>(n), 0);
}

const std::vector<PhaseTotals>& Simulation::phase_totals(int i) const {
  DUFP_EXPECT(i >= 0 && i < static_cast<int>(phase_totals_.size()));
  return phase_totals_[static_cast<std::size_t>(i)];
}

Simulation::~Simulation() = default;

int Simulation::socket_count() const { return machine_.socket_count(); }

hw::SocketModel& Simulation::socket(int i) { return machine_.socket(i); }

msr::SimulatedMsr& Simulation::msr(int i) {
  DUFP_EXPECT(i >= 0 && i < socket_count());
  return *msrs_[static_cast<std::size_t>(i)];
}

rapl::RaplEngine& Simulation::rapl(int i) {
  DUFP_EXPECT(i >= 0 && i < socket_count());
  return *rapls_[static_cast<std::size_t>(i)];
}

workloads::WorkloadInstance& Simulation::workload(int i) {
  DUFP_EXPECT(i >= 0 && i < socket_count());
  return *workloads_[static_cast<std::size_t>(i)];
}

SimTime Simulation::now() const {
  return tls_has_now ? tls_now : clock_.now();
}

Rng Simulation::fork_rng(std::uint64_t tag) { return root_rng_.fork(tag); }

void Simulation::schedule_periodic(SimDuration interval, PeriodicFn fn) {
  DUFP_EXPECT(interval.micros() > 0);
  DUFP_EXPECT(interval.micros() % options_.tick.micros() == 0);
  DUFP_EXPECT(fn != nullptr);
  // First firing: the next multiple of `interval` strictly after now
  // (identical to the historical `t % interval == 0` check, but O(1) per
  // tick instead of a modulo per periodic per tick).
  const std::int64_t next =
      (clock_.now().micros() / interval.micros() + 1) * interval.micros();
  periodics_.push_back(Periodic{interval, next, std::move(fn)});
}

void Simulation::add_phase_listener(PhaseListener fn) {
  DUFP_EXPECT(fn != nullptr);
  phase_listeners_.push_back(std::move(fn));
}

bool Simulation::finished() const {
  for (const auto& w : workloads_) {
    if (!w->finished()) return false;
  }
  return true;
}

void Simulation::fire_phase_transitions(int socket, std::size_t before_idx) {
  if (phase_listeners_.empty()) return;
  auto& w = *workloads_[static_cast<std::size_t>(socket)];
  // Phase names are unique within a profile, so index equality is name
  // equality: this is the pre-interning comparison without the string
  // copies.
  const std::size_t after_idx = w.finished() ? kNoPhase : w.current_phase_idx();
  if (before_idx == after_idx) return;
  for (const auto& l : phase_listeners_) {
    if (before_idx != kNoPhase) l(socket, before_idx, /*entered=*/false);
    if (after_idx != kNoPhase) l(socket, after_idx, /*entered=*/true);
  }
}

void Simulation::announce_initial_phases() {
  // Announce the initial phases so listeners see a consistent enter/exit
  // stream from the very first tick.
  for (int s = 0; s < socket_count(); ++s) {
    auto& w = *workloads_[static_cast<std::size_t>(s)];
    if (!w.finished()) {
      for (const auto& l : phase_listeners_) {
        l(s, w.current_phase_idx(), /*entered=*/true);
      }
    }
  }
}

void Simulation::integrate_socket_tick(int s, double tick_s,
                                       TickRecord& record) {
  const auto si = static_cast<std::size_t>(s);

  // 1. Firmware power-capping decision for this tick.
  rapls_[si]->tick();

  // 2. Integrate the tick, splitting at phase boundaries.
  auto& w = *workloads_[si];
  auto& sock = machine_.socket(s);
  double remaining = tick_s;
  double pkg_energy = 0.0;
  hw::SocketInstant last_instant{};
  std::int64_t segments = 0;
  // Bounded iteration: each segment either exhausts the tick or crosses
  // one sequence entry, and sequences are finite.
  while (remaining > 1e-12) {
    ++segments;
    const bool was_finished = w.finished();
    const std::size_t phase_before =
        was_finished ? kNoPhase : w.current_phase_idx();
    sock.set_demand(w.current_demand());
    const hw::SocketInstant inst = sock.evaluate();
    last_instant = inst;

    double seg = remaining;
    if (!was_finished && inst.speed > 0.0) {
      const double to_phase_end = w.remaining_in_phase() / inst.speed;
      seg = std::min(seg, to_phase_end);
    }
    // Guard against a zero-length segment from numerical round-off.
    seg = std::max(seg, 1e-9);
    seg = std::min(seg, remaining);

    sock.accumulate(inst, seg);
    pkg_energy += inst.pkg_power_w * seg;
    if (!was_finished) {
      PhaseTotals& pt = phase_totals_[si][phase_before];
      pt.wall_seconds += seg;
      pt.pkg_energy_j += inst.pkg_power_w * seg;
      pt.dram_energy_j += inst.dram_power_w * seg;
      w.advance(inst.speed * seg);
      fire_phase_transitions(s, phase_before);
    }
    remaining -= seg;
  }
  // A tick split into k segments crossed k-1 entry boundaries; the
  // counter is per-socket so parallel workers never share a write target.
  segment_events_[si] += segments - 1;

  // Trace rows exist for sinks alone; with none attached the record is
  // never read, so skip building it (floats only — no accumulator state).
  if (trace_ != nullptr) {
    fill_tick_record(last_instant, pkg_energy / tick_s,
                     rapls_[si]->governor().limit(), record);
  }

  // 3. Feed the firmware's running-average window with the tick's
  //    time-averaged power (phase splits included).
  rapls_[si]->record(
      hw::SocketInstant{.core_mhz = 0, .uncore_mhz = 0, .speed = 0,
                        .flops_rate = 0, .bytes_rate = 0,
                        .pkg_power_w = pkg_energy / tick_s,
                        .dram_power_w = 0},
      tick_s);
}

void Simulation::finish_tick(const std::vector<TickRecord>& records) {
  // Advance the clock, then fire any periodic callbacks whose deadline is
  // the new time (controllers observe a completed interval).
  const SimTime t = clock_.advance(options_.tick);
  const std::int64_t t_us = t.micros();
  for (auto& p : periodics_) {
    if (t_us == p.next_due_us) {
      p.fn(t);
      p.next_due_us += p.interval.micros();
      ++batch_stats_.events_fired;
    }
  }

  if (trace_ != nullptr) trace_->on_tick(t, records);

  if (t.seconds() > options_.max_seconds) {
    throw std::runtime_error(
        "Simulation exceeded max_seconds — controller stalled progress?");
  }
}

BatchStats Simulation::batch_stats() const {
  BatchStats out = batch_stats_;
  for (const std::int64_t c : segment_events_) out.events_fired += c;
  return out;
}

bool Simulation::step() {
  if (!started_) {
    started_ = true;
    announce_initial_phases();
  }
  ++batch_stats_.stepped_ticks;
  const double tick_s = options_.tick.seconds();
  for (int s = 0; s < socket_count(); ++s) {
    integrate_socket_tick(s, tick_s, tick_records_[static_cast<std::size_t>(s)]);
  }
  finish_tick(tick_records_);
  return !finished();
}

std::int64_t Simulation::max_batch_ticks() const {
  const std::int64_t tick_us = options_.tick.micros();
  const double tick_s = options_.tick.seconds();
  const std::int64_t now_us = clock_.now().micros();
  std::int64_t bound = kMaxBatchTicks;

  // No periodic may fire strictly inside a batch: controllers read state
  // from every socket, so they may only run at the barrier.
  for (const auto& p : periodics_) {
    bound = std::min(bound, (p.next_due_us - now_us) / tick_us);
  }

  // No batch may overrun the tick the *last* workload could possibly
  // finish on: the serial engine stops there, and running further would
  // integrate idle time the serial run never saw.  An *individual*
  // workload finishing inside a batch is harmless — its socket integrates
  // idle demand for the remaining ticks, exactly what the serial engine
  // does while the other sockets are still running — so the bound is the
  // MAX over unfinished workloads of their optimistic finish ticks, not
  // the min.  (Taking the min here used to degrade the whole
  // staggered-finish tail — per-entry duration jitter spreads the four
  // sockets' finishes over hundreds of ticks — into 1-3-tick batches and
  // serial fallback; dense-sequence profiles such as replayed traces
  // were hit hardest.)  Progress per tick is at most tick_s * (max
  // speed), and speed is bounded by 1/(weight sum) — see
  // kSpeedBoundMargin.  Phase boundaries never bound a batch: tick
  // integration splits at them regardless of batching, and listeners are
  // socket-confined by contract.
  std::int64_t finish_bound = 0;
  bool any_unfinished = false;
  for (const auto& w : workloads_) {
    if (w->finished()) continue;
    any_unfinished = true;
    const double min_ticks_to_finish =
        w->remaining_nominal_seconds() / (tick_s * kSpeedBoundMargin);
    finish_bound = std::max(finish_bound,
                            static_cast<std::int64_t>(min_ticks_to_finish));
  }
  // All finished: mirror the serial do-while, which still processes the
  // final tick serially.
  return any_unfinished ? std::min(bound, finish_bound) : 0;
}

std::int64_t Simulation::event_bound_ticks() const {
  const std::int64_t tick_us = options_.tick.micros();
  const std::int64_t now_us = clock_.now().micros();

  // Periodic deadlines sit on the tick grid (schedule_periodic requires
  // interval % tick == 0 and deadlines are multiples of the interval), so
  // the exact integer divide is the tick count to the deadline; stopping
  // one tick short leaves the firing to the exact stepper.
  std::int64_t gap = std::numeric_limits<std::int64_t>::max() / 2;
  for (const auto& p : periodics_) {
    gap = std::min(gap, (p.next_due_us - now_us) / tick_us - 1);
  }
  if (gap <= 0) return 0;

  // The watchdog compares t.seconds() > max_seconds after every tick; no
  // fast-path tick may cross it (the exact stepper owns the throw).
  const double limit_us = options_.max_seconds * 1e6;
  if (static_cast<double>(now_us) +
          static_cast<double>(gap) * static_cast<double>(tick_us) >
      limit_us) {
    std::int64_t g = static_cast<std::int64_t>(
        (limit_us - static_cast<double>(now_us)) /
        static_cast<double>(tick_us));
    while (g > 0 &&
           SimTime{now_us + g * tick_us}.seconds() > options_.max_seconds) {
      --g;
    }
    gap = std::min(gap, g);
  }
  return std::max<std::int64_t>(gap, 0);
}

std::int64_t Simulation::compute_leap_gap() const {
  if (!options_.time_leap || !started_) return 0;
  const int n = socket_count();

  // O(1) pre-gate: a full leap needs both governor windows uniform on
  // every socket.  Under an active cap that is rare (window contents
  // drift), so this check keeps the planner's cost negligible on runs
  // where the fixed point never forms — those are served by the tier-2
  // calm-tick stretch instead.
  for (int s = 0; s < n; ++s) {
    if (!rapls_[static_cast<std::size_t>(s)]->governor().windows_uniform()) {
      return 0;
    }
  }

  std::int64_t gap = event_bound_ticks();
  if (gap < kMinLeapTicks) return 0;
  const double tick_s = options_.tick.seconds();

  // Per-socket fixed-point verification + next-entry-boundary bound.
  bool any_unfinished = false;
  for (int s = 0; s < n; ++s) {
    const auto si = static_cast<std::size_t>(s);
    const auto& w = *workloads_[si];
    const auto& sock = machine_.socket(s);

    // The stepped tick would re-apply the current demand first; if that
    // write would change anything (entry crossed into a different phase
    // on the previous tick), the socket is not at a fixed point.
    if (!(w.current_demand() == sock.demand())) return 0;
    const hw::SocketInstant inst = sock.evaluate();

    // The power the stepped tick would record: pkg_energy accumulates
    // p * tick_s over the (single) segment and is divided back by tick_s.
    // Same expression here so the window fixed-point check sees the exact
    // bits record_power() would be fed.
    const double recorded_w = (inst.pkg_power_w * tick_s) / tick_s;
    if (!rapls_[si]->governor().steady_state(recorded_w)) return 0;

    if (!w.finished()) {
      any_unfinished = true;
      if (!(inst.speed > 0.0)) return 0;
      // Strictly-inside-the-entry bound: after G leapt ticks the entry's
      // consumed time grows by G per-tick additions of c; the margin
      // absorbs both the accumulated rounding of that sum and the
      // remaining/speed division in the stepper's segment split, so every
      // leapt tick stays a single full segment and the boundary tick is
      // handled exactly (same idiom as max_batch_ticks).
      const double c = inst.speed * tick_s;
      const double safe =
          std::floor((w.remaining_in_phase() - c) / (c * kSpeedBoundMargin)) -
          1.0;
      if (!(safe >= static_cast<double>(kMinLeapTicks))) return 0;
      gap = std::min(gap, static_cast<std::int64_t>(safe));
    }
  }
  // All workloads finished: the final tick(s) belong to the stepper, and
  // run() has already returned anyway.
  if (!any_unfinished) return 0;
  return gap >= kMinLeapTicks ? gap : 0;
}

void Simulation::gather_socket_lanes(int s, const hw::SocketInstant& inst) {
  // One slab of kLeapLanes accumulator lanes per socket.  Lane order
  // matches SocketModel::accumulate / the phase-totals block /
  // WorkloadInstance::advance in the stepped path; each lane's per-tick
  // increment is the exact value the stepper would add each tick, so a
  // flat add loop over the lanes replays the identical FP operations —
  // only the control loop around them (governor decision, demand rewrite,
  // segment split, periodic compares) is skipped.
  const auto si = static_cast<std::size_t>(s);
  const double tick_s = options_.tick.seconds();
  auto& w = *workloads_[si];
  auto& sock = machine_.socket(s);
  double* acc = acc_ + si * kLeapLanes;
  double* inc = inc_ + si * kLeapLanes;

  const auto a = sock.accumulators();
  acc[0] = a.pkg_energy_j;
  inc[0] = inst.pkg_power_w * tick_s;
  acc[1] = a.dram_energy_j;
  inc[1] = inst.dram_power_w * tick_s;
  acc[2] = a.flops_total;
  inc[2] = inst.flops_rate * tick_s;
  acc[3] = a.bytes_total;
  inc[3] = inst.bytes_rate * tick_s;
  acc[4] = a.aperf_cycles;
  inc[4] = inst.core_mhz * 1e6 * tick_s;
  acc[5] = a.mperf_cycles;
  inc[5] = sock.config().core_base_mhz * 1e6 * tick_s;

  if (!w.finished()) {
    const PhaseTotals& pt = phase_totals_[si][w.current_phase_idx()];
    acc[6] = pt.wall_seconds;
    inc[6] = tick_s;
    acc[7] = pt.pkg_energy_j;
    inc[7] = inst.pkg_power_w * tick_s;
    acc[8] = pt.dram_energy_j;
    inc[8] = inst.dram_power_w * tick_s;
    const double c = inst.speed * tick_s;
    acc[9] = w.consumed_total();
    inc[9] = c;
    acc[10] = w.consumed_in_current();
    inc[10] = c;
  } else {
    for (std::size_t j = 6; j < kLeapLanes; ++j) {
      acc[j] = 0.0;
      inc[j] = 0.0;
    }
  }

  // Cache the trace row: it is constant while the socket stays at this
  // instant (single-segment ticks at a fixed instant produce the same
  // record every tick), and both fast paths re-gather whenever the
  // instant can change.  Skipped when no sink is attached — the row is
  // only ever read by trace_->on_tick.
  if (trace_ != nullptr) {
    fill_tick_record(inst, (inst.pkg_power_w * tick_s) / tick_s,
                     rapls_[si]->governor().limit(), tick_records_[si]);
  }
  // The exact value the stepped path would feed record_power(): energy of
  // the tick's single segment divided back by the tick length.
  stretch_v_[si] = (inst.pkg_power_w * tick_s) / tick_s;
}

void Simulation::scatter_socket_lanes(int s) {
  const auto si = static_cast<std::size_t>(s);
  auto& w = *workloads_[si];
  auto& sock = machine_.socket(s);
  const double* acc = acc_ + si * kLeapLanes;
  sock.restore_accumulators({acc[0], acc[1], acc[2], acc[3], acc[4], acc[5]});
  if (!w.finished()) {
    PhaseTotals& pt = phase_totals_[si][w.current_phase_idx()];
    pt.wall_seconds = acc[6];
    pt.pkg_energy_j = acc[7];
    pt.dram_energy_j = acc[8];
    w.restore_progress(acc[10], acc[9]);
  }
}

void Simulation::rebind_lane_storage(double* acc, double* inc) {
  acc_ = acc != nullptr ? acc : leap_acc_.data();
  inc_ = inc != nullptr ? inc : leap_inc_.data();
  clear_leap_inc();
}

void Simulation::clear_leap_inc() {
  const std::size_t m = lane_slab_size();
  for (std::size_t j = 0; j < m; ++j) inc_[j] = 0.0;
}

void Simulation::stage_leap() {
  // Gather.  Every control-loop operation skipped inside the gap
  // (governor decision, window pushes, demand rewrite) is a verified
  // no-op at the fixed point compute_leap_gap established.
  const int n = socket_count();
  for (int s = 0; s < n; ++s) {
    gather_socket_lanes(s, machine_.socket(s).evaluate());
  }
}

void Simulation::spin_leap_lanes(std::int64_t ticks) {
  // Per-chain FP addition order is preserved (each lane is an
  // independent accumulator chain), so results are bit-identical to the
  // same number of stepped ticks; across lanes the loop vectorizes.
  double* __restrict acc = acc_;
  const double* __restrict inc = inc_;
  const std::size_t m = lane_slab_size();
  for (std::int64_t k = 0; k < ticks; ++k) {
    for (std::size_t j = 0; j < m; ++j) acc[j] += inc[j];
  }
}

void Simulation::finish_leap(std::int64_t gap) {
  clock_.advance(SimDuration{gap * options_.tick.micros()});
  const int n = socket_count();
  for (int s = 0; s < n; ++s) scatter_socket_lanes(s);
  clear_leap_inc();
  ++batch_stats_.leaps;
  batch_stats_.leapt_ticks += gap;
  batch_stats_.max_leap = std::max(batch_stats_.max_leap, gap);
}

void Simulation::execute_leap(std::int64_t gap) {
  stage_leap();

  if (trace_ == nullptr) {
    spin_leap_lanes(gap);
    finish_leap(gap);
    return;
  }

  // A sink observes every tick, so the clock advances tick-wise and the
  // (constant) rows are emitted per tick, exactly as finish_tick would;
  // periodics and the watchdog are bound-excluded.
  {
    double* __restrict acc = acc_;
    const double* __restrict inc = inc_;
    const std::size_t m = lane_slab_size();
    for (std::int64_t k = 0; k < gap; ++k) {
      for (std::size_t j = 0; j < m; ++j) acc[j] += inc[j];
      const SimTime t = clock_.advance(options_.tick);
      trace_->on_tick(t, tick_records_);
    }
  }

  // Scatter the advanced accumulators back.
  const int n = socket_count();
  for (int s = 0; s < n; ++s) scatter_socket_lanes(s);
  clear_leap_inc();

  ++batch_stats_.leaps;
  batch_stats_.leapt_ticks += gap;
  batch_stats_.max_leap = std::max(batch_stats_.max_leap, gap);
}

bool Simulation::fast_stretch() {
  if (!options_.time_leap || !started_) return false;
  std::int64_t horizon = event_bound_ticks();
  if (horizon < kMinFastTicks) return false;
  const int n = socket_count();
  const double tick_s = options_.tick.seconds();

  // Entry checks.  Unlike the full leap, the stretch tolerates drifting
  // governor windows and mid-stretch limit moves, so the only per-socket
  // preconditions are the ones every calm tick relies on: the demand the
  // stepper would re-apply is already applied (no entry crossed on the
  // previous tick), and no sequence-entry boundary can land inside the
  // stretch.  The boundary bound uses the *global* speed ceiling (speed
  // <= 1/(weight sum), see kSpeedBoundMargin) rather than the current
  // speed, so it survives limit flips that change the speed mid-stretch.
  bool any_unfinished = false;
  for (int s = 0; s < n; ++s) {
    const auto si = static_cast<std::size_t>(s);
    const auto& w = *workloads_[si];
    if (!(w.current_demand() == machine_.socket(s).demand())) return false;
    if (!w.finished()) {
      any_unfinished = true;
      const double safe =
          std::floor(w.remaining_in_phase() / (tick_s * kSpeedBoundMargin)) -
          1.0;
      if (!(safe >= static_cast<double>(kMinFastTicks))) return false;
      horizon = std::min(horizon, static_cast<std::int64_t>(safe));
    }
  }
  // All workloads finished: the final tick(s) belong to the stepper.
  if (!any_unfinished || horizon < kMinFastTicks) return false;

  for (int s = 0; s < n; ++s) {
    gather_socket_lanes(s, machine_.socket(s).evaluate());
  }

  // A contiguous run of all-calm ticks counts as one leap in the stats;
  // a tick where any socket's control decision moved the limit is an
  // exact (stepped) tick even though the calm sockets took the fast path.
  std::int64_t calm_run = 0;
  const auto close_run = [&] {
    if (calm_run > 0) {
      ++batch_stats_.leaps;
      batch_stats_.max_leap = std::max(batch_stats_.max_leap, calm_run);
      calm_run = 0;
    }
  };

  for (std::int64_t k = 0; k < horizon; ++k) {
    bool all_calm = true;
    for (int s = 0; s < n; ++s) {
      const auto si = static_cast<std::size_t>(s);
      if (rapls_[si]->governor().fast_calm_tick(stretch_v_[si])) {
        // Calm tick: the governor kept its limit (verified via the plan
        // band) and pushed the tick's power into its windows; what
        // remains of the stepped tick is the accumulator additions.
        double* __restrict acc = acc_ + si * kLeapLanes;
        const double* __restrict inc = inc_ + si * kLeapLanes;
        for (std::size_t j = 0; j < kLeapLanes; ++j) acc[j] += inc[j];
      } else {
        // Flip tick: the decision would move the limit.  Hand the socket
        // to the exact stepper for this tick (which applies the new
        // limit, splits segments if ever needed, fills the trace row),
        // then re-gather lanes at the new instant.
        all_calm = false;
        scatter_socket_lanes(s);
        integrate_socket_tick(s, tick_s, tick_records_[si]);
        gather_socket_lanes(s, machine_.socket(s).evaluate());
      }
    }
    if (all_calm) {
      ++batch_stats_.leapt_ticks;
      ++calm_run;
    } else {
      close_run();
      ++batch_stats_.stepped_ticks;
    }
    // Clock and trace advance tick-wise exactly as finish_tick would;
    // periodics and the watchdog cannot fire inside the horizon.
    const SimTime t = clock_.advance(options_.tick);
    if (trace_ != nullptr) trace_->on_tick(t, tick_records_);
  }
  close_run();

  for (int s = 0; s < n; ++s) scatter_socket_lanes(s);
  clear_leap_inc();
  return true;
}

void Simulation::run_parallel() {
  const int n = socket_count();
  const double tick_s = options_.tick.seconds();
  const std::int64_t tick_us = options_.tick.micros();
  ThreadPool pool(std::min(options_.socket_threads, n));

  if (!started_) {
    started_ = true;
    announce_initial_phases();
  }
  batch_records_.reserve(static_cast<std::size_t>(kMaxBatchTicks) *
                         static_cast<std::size_t>(n));
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<std::size_t>(n));

  for (;;) {
    // Event leap first: when every socket sits at a fixed point there is
    // no parallel work worth distributing — the leap covers the stretch
    // to the next event in one flat pass on the coordinating thread.
    const std::int64_t gap = compute_leap_gap();
    if (gap > 0) {
      execute_leap(gap);
      continue;  // a leap never finishes a workload
    }
    // Calm-tick stretch next: off the fixed point but between events, the
    // reduced serial loop is far cheaper per socket-tick than a parallel
    // batch of full ticks — the batcher only earns its barriers on
    // stretches dense with limit moves or segment splits.
    if (fast_stretch()) continue;  // a stretch never finishes a workload
    const std::int64_t batch = max_batch_ticks();
    if (batch < kMinBatchTicks) {
      // Endgame (the last workload is about to finish) or a periodic is
      // due in a few ticks: the barrier overhead isn't worth it.
      ++batch_stats_.serial_ticks;
      step();
      if (finished()) return;
      continue;
    }
    ++batch_stats_.batches;
    batch_stats_.batched_ticks += batch;
    batch_stats_.max_batch = std::max(batch_stats_.max_batch, batch);

    // Physics for `batch` ticks of every socket, sockets in parallel.
    // Socket state is fully independent between barriers (per-socket
    // MSRs, governor, workload, model, listener targets), so each worker
    // replays the exact serial per-socket instruction stream.
    batch_records_.resize(static_cast<std::size_t>(batch) *
                          static_cast<std::size_t>(n));
    const std::int64_t t0_us = clock_.now().micros();
    futures.clear();
    for (int s = 0; s < n; ++s) {
      futures.push_back(pool.submit([this, s, batch, t0_us, tick_s,
                                     tick_us] {
        NowOverrideScope scope;
        TickRecord* rows =
            batch_records_.data() + static_cast<std::size_t>(s) *
                                        static_cast<std::size_t>(batch);
        for (std::int64_t k = 0; k < batch; ++k) {
          tls_now = SimTime{t0_us + k * tick_us};
          integrate_socket_tick(s, tick_s, rows[k]);
        }
      }));
    }
    for (auto& f : futures) f.get();  // barrier (rethrows worker errors)

    // Replay the batch's bookkeeping in serial tick order: clock,
    // periodic deadlines (by construction only the final tick of the
    // batch can be due), trace rows, watchdog.
    for (std::int64_t k = 0; k < batch; ++k) {
      for (int s = 0; s < n; ++s) {
        tick_records_[static_cast<std::size_t>(s)] =
            batch_records_[static_cast<std::size_t>(s) *
                               static_cast<std::size_t>(batch) +
                           static_cast<std::size_t>(k)];
      }
      finish_tick(tick_records_);
    }
    if (finished()) return;
  }
}

bool Simulation::advance_once() {
  const std::int64_t gap = compute_leap_gap();
  if (gap > 0) {
    execute_leap(gap);
    return true;  // a leap never finishes a workload
  }
  if (fast_stretch()) return true;  // a stretch never finishes a workload
  return step();
}

RunSummary Simulation::run() {
  if (options_.socket_threads > 1 && socket_count() > 1) {
    run_parallel();
  } else {
    while (advance_once()) {
    }
  }
  return summarize();
}

RunSummary Simulation::summarize() const {
  RunSummary sum;
  sum.exec_seconds = clock_.now().seconds();
  sum.pkg_energy_j = machine_.total_pkg_energy_j();
  sum.dram_energy_j = machine_.total_dram_energy_j();
  sum.avg_pkg_power_w =
      sum.exec_seconds > 0.0 ? sum.pkg_energy_j / sum.exec_seconds : 0.0;
  sum.avg_dram_power_w =
      sum.exec_seconds > 0.0 ? sum.dram_energy_j / sum.exec_seconds : 0.0;
  double flop = 0.0;
  double bytes = 0.0;
  for (int s = 0; s < socket_count(); ++s) {
    flop += machine_.socket(s).flops_total();
    bytes += machine_.socket(s).bytes_total();
  }
  sum.total_gflop = flop * 1e-9;
  sum.total_gbytes = bytes * 1e-9;
  return sum;
}

}  // namespace dufp::sim
