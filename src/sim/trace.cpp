#include "sim/trace.h"

#include "common/expect.h"
#include "common/table.h"

namespace dufp::sim {

VectorTraceSink::VectorTraceSink(int decimation) : decimation_(decimation) {
  DUFP_EXPECT(decimation >= 1);
}

void VectorTraceSink::on_tick(SimTime now,
                              const std::vector<TickRecord>& sockets) {
  if (tick_index_++ % decimation_ == 0) {
    entries_.push_back(Entry{now, sockets});
  }
}

std::vector<double> VectorTraceSink::series(
    int socket, double (*field)(const TickRecord&)) const {
  std::vector<double> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) {
    DUFP_EXPECT(socket >= 0 &&
                socket < static_cast<int>(e.sockets.size()));
    out.push_back(field(e.sockets[static_cast<std::size_t>(socket)]));
  }
  return out;
}

CsvTraceSink::CsvTraceSink(const std::string& path, int decimation)
    : writer_(path), decimation_(decimation) {
  DUFP_EXPECT(decimation >= 1);
  writer_.write_row({"time_s", "socket", "core_mhz", "uncore_mhz", "pkg_w",
                     "dram_w", "cap_long_w", "cap_short_w", "gflops",
                     "speed"});
}

void CsvTraceSink::on_tick(SimTime now,
                           const std::vector<TickRecord>& sockets) {
  if (tick_index_++ % decimation_ != 0) return;
  for (std::size_t s = 0; s < sockets.size(); ++s) {
    const TickRecord& r = sockets[s];
    writer_.write_row(
        {fmt_double(now.seconds(), 3), std::to_string(s),
         fmt_double(r.core_mhz, 0), fmt_double(r.uncore_mhz, 0),
         fmt_double(r.pkg_power_w, 2), fmt_double(r.dram_power_w, 2),
         fmt_double(r.cap_long_w, 1), fmt_double(r.cap_short_w, 1),
         fmt_double(r.flops_grate, 2), fmt_double(r.speed, 4)});
  }
}

}  // namespace dufp::sim
