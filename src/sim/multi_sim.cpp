#include "sim/multi_sim.h"

#include <algorithm>
#include <future>
#include <limits>
#include <stdexcept>

#include "common/expect.h"
#include "common/thread_pool.h"

namespace dufp::sim {

MultiSim::MultiSim(std::vector<Simulation*> lanes,
                   const MultiSimOptions& options)
    : lanes_(std::move(lanes)), options_(options) {
  DUFP_EXPECT(options_.threads >= 1);
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    if (lanes_[i] == nullptr) {
      throw std::invalid_argument("MultiSim: null lane");
    }
    if (lanes_[i]->options_.socket_threads > 1) {
      throw std::invalid_argument(
          "MultiSim: lanes must use socket_threads == 1 (the lane engine "
          "is the serial engine, interleaved)");
    }
    for (std::size_t j = i + 1; j < lanes_.size(); ++j) {
      if (lanes_[i] == lanes_[j]) {
        throw std::invalid_argument("MultiSim: duplicate lane");
      }
    }
  }
  summaries_.resize(lanes_.size());
}

const RunSummary& MultiSim::summary(std::size_t i) const {
  DUFP_EXPECT(ran_);
  DUFP_EXPECT(i < summaries_.size());
  return summaries_[i];
}

void MultiSim::run_group(std::size_t begin, std::size_t end) {
  const std::size_t k = end - begin;

  // One contiguous acc/inc slab for the whole group, each lane rebound
  // to its slice; restored to the lanes' own storage on every exit path
  // (a watchdog throw must not leave dangling slab pointers behind).
  std::vector<std::size_t> offset(k, 0);
  std::size_t total = 0;
  for (std::size_t i = 0; i < k; ++i) {
    offset[i] = total;
    total += lanes_[begin + i]->lane_slab_size();
  }
  std::vector<double> acc(total, 0.0);
  std::vector<double> inc(total, 0.0);
  struct Unbind {
    MultiSim* ms;
    std::size_t begin, end;
    ~Unbind() {
      for (std::size_t i = begin; i < end; ++i) {
        ms->lanes_[i]->rebind_lane_storage(nullptr, nullptr);
      }
    }
  } unbind{this, begin, end};
  for (std::size_t i = 0; i < k; ++i) {
    lanes_[begin + i]->rebind_lane_storage(acc.data() + offset[i],
                                           inc.data() + offset[i]);
  }

  std::vector<std::size_t> active;
  active.reserve(k);
  for (std::size_t i = begin; i < end; ++i) {
    if (!lanes_[i]->finished()) {
      active.push_back(i);
    } else {
      summaries_[i] = lanes_[i]->summarize();
    }
  }
  std::vector<std::int64_t> gap(lanes_.size(), 0);
  std::vector<std::size_t> staged;
  staged.reserve(k);

  while (!active.empty()) {
    // Plan: each active lane's leap horizon, from lane-local state only.
    for (const std::size_t idx : active) {
      gap[idx] = lanes_[idx]->compute_leap_gap();
    }

    // Fused tier-1 sweep: every untraced lane whose planner granted a
    // leap stages its gather, then one flat pass advances all staged
    // slabs min-gap ticks together (unstaged lanes contribute zero adds
    // into dead storage — see rebind_lane_storage's inc invariant).
    // Each lane then spins its own remainder and commits its *full* gap
    // as one leap, so per-lane FP sequences and BatchStats entries match
    // a standalone execute_leap exactly.
    if (options_.fuse_leaps) {
      staged.clear();
      std::int64_t min_gap = std::numeric_limits<std::int64_t>::max();
      for (const std::size_t idx : active) {
        if (gap[idx] > 0 && lanes_[idx]->trace_ == nullptr) {
          staged.push_back(idx);
          min_gap = std::min(min_gap, gap[idx]);
        }
      }
      if (staged.size() >= 2) {
        for (const std::size_t idx : staged) lanes_[idx]->stage_leap();
        {
          double* __restrict a = acc.data();
          const double* __restrict ic = inc.data();
          for (std::int64_t t = 0; t < min_gap; ++t) {
            for (std::size_t j = 0; j < total; ++j) a[j] += ic[j];
          }
        }
        for (const std::size_t idx : staged) {
          lanes_[idx]->spin_leap_lanes(gap[idx] - min_gap);
          lanes_[idx]->finish_leap(gap[idx]);
          gap[idx] = -1;  // handled this round
        }
      }
    }

    // Per-lane actions for everything the fused sweep did not cover —
    // one run()-loop iteration each, in lane order.
    for (std::size_t i = 0; i < active.size();) {
      const std::size_t idx = active[i];
      Simulation& lane = *lanes_[idx];
      if (gap[idx] < 0) {  // fused-leapt above
        ++i;
        continue;
      }
      if (gap[idx] > 0) {
        lane.execute_leap(gap[idx]);
        ++i;
        continue;
      }
      if (lane.fast_stretch()) {
        ++i;
        continue;
      }
      if (!lane.step()) {
        // Lane finished; its inc slice stays zeroed (invariant), so
        // later fused sweeps add +0.0 into its dead acc storage.
        summaries_[idx] = lane.summarize();
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      }
      ++i;
    }
  }
}

void MultiSim::run_all() {
  DUFP_EXPECT(!ran_);
  ran_ = true;
  const std::size_t n = lanes_.size();
  if (n == 0) return;

  const std::size_t groups = std::min<std::size_t>(
      static_cast<std::size_t>(options_.threads), n);
  if (groups <= 1) {
    run_group(0, n);
    return;
  }

  // Contiguous whole-lane groups, one worker each: embarrassingly
  // parallel — no barriers, no shared mutable state beyond the
  // mutex-guarded shared cell cache.
  ThreadPool pool(static_cast<int>(groups));
  std::vector<std::future<void>> futures;
  futures.reserve(groups);
  const std::size_t base = n / groups;
  const std::size_t extra = n % groups;
  std::size_t begin = 0;
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t len = base + (g < extra ? 1 : 0);
    const std::size_t end = begin + len;
    futures.push_back(
        pool.submit([this, begin, end] { run_group(begin, end); }));
    begin = end;
  }
  for (auto& f : futures) f.get();  // rethrows the first group failure
}

}  // namespace dufp::sim
