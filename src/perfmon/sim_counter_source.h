// CounterSource implementation over the simulated substrate.  Energy and
// cycle counters are read through the MSR device — the same path the
// hardware stack would use — while FLOP and byte counts come from the
// socket model's ground truth (standing in for PAPI's core / uncore PMU
// events).
#pragma once

#include "hwmodel/socket_model.h"
#include "msr/device.h"
#include "msr/registers.h"
#include "perfmon/events.h"

namespace dufp::perfmon {

class SimCounterSource final : public CounterSource {
 public:
  SimCounterSource(const hw::SocketModel& socket, const msr::MsrDevice& dev);

  std::uint64_t read(Event e) const override;
  std::uint64_t wrap_range(Event e) const override;

 private:
  const hw::SocketModel& socket_;
  const msr::MsrDevice& dev_;
  msr::RaplUnits units_;
};

}  // namespace dufp::perfmon
