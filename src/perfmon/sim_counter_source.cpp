#include "perfmon/sim_counter_source.h"

#include "common/expect.h"

namespace dufp::perfmon {

using namespace dufp::msr;

SimCounterSource::SimCounterSource(const hw::SocketModel& socket,
                                   const msr::MsrDevice& dev)
    : socket_(socket), dev_(dev) {
  units_ = decode_rapl_units(dev_.read(0, kMsrRaplPowerUnit));
}

std::uint64_t SimCounterSource::read(Event e) const {
  switch (e) {
    case Event::fp_ops:
      return static_cast<std::uint64_t>(socket_.flops_total());
    case Event::dram_bytes:
      return static_cast<std::uint64_t>(socket_.bytes_total());
    case Event::pkg_energy_uj: {
      const std::uint64_t raw =
          dev_.read(0, kMsrPkgEnergyStatus) & 0xFFFFFFFFULL;
      return static_cast<std::uint64_t>(static_cast<double>(raw) *
                                        units_.joules_per_unit() * 1e6);
    }
    case Event::dram_energy_uj: {
      const std::uint64_t raw =
          dev_.read(0, kMsrDramEnergyStatus) & 0xFFFFFFFFULL;
      return static_cast<std::uint64_t>(static_cast<double>(raw) *
                                        units_.joules_per_unit() * 1e6);
    }
    case Event::aperf_cycles:
      return dev_.read(0, kIa32Aperf);
    case Event::mperf_cycles:
      return dev_.read(0, kIa32Mperf);
    case Event::count_:
      break;
  }
  DUFP_ASSERT(false);
  return 0;
}

std::uint64_t SimCounterSource::wrap_range(Event e) const {
  switch (e) {
    case Event::pkg_energy_uj:
    case Event::dram_energy_uj:
      return static_cast<std::uint64_t>(4294967296.0 *
                                        units_.joules_per_unit() * 1e6);
    default:
      return 0;
  }
}

}  // namespace dufp::perfmon
