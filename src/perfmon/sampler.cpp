#include "perfmon/sampler.h"

#include <algorithm>

#include "common/expect.h"

namespace dufp::perfmon {

IntervalSampler::IntervalSampler(const CounterSource& source,
                                 double core_base_mhz, Rng noise_rng,
                                 SamplerOptions options)
    : source_(source),
      core_base_mhz_(core_base_mhz),
      rng_(noise_rng),
      options_(options) {
  DUFP_EXPECT(core_base_mhz > 0.0);
  DUFP_EXPECT(options.noise_sigma >= 0.0);
}

void IntervalSampler::reset() { have_baseline_ = false; }

std::optional<Sample> IntervalSampler::sample(SimTime now) {
  std::array<std::uint64_t, kEventCount> raw{};
  for (int i = 0; i < kEventCount; ++i) {
    raw[static_cast<std::size_t>(i)] = source_.read(static_cast<Event>(i));
  }

  if (!have_baseline_) {
    have_baseline_ = true;
    last_time_ = now;
    last_raw_ = raw;
    return std::nullopt;
  }

  const double dt = (now - last_time_).seconds();
  DUFP_EXPECT(dt > 0.0);

  auto delta = [&](Event e) {
    const auto i = static_cast<std::size_t>(e);
    return static_cast<double>(
        counter_delta(last_raw_[i], raw[i], source_.wrap_range(e)));
  };
  auto noisy = [&](double v) {
    if (options_.noise_sigma <= 0.0) return v;
    // Truncate at +-4 sigma: real sampling error is bounded, and an
    // unbounded tail could produce a negative rate.
    const double eps = std::clamp(rng_.gaussian(0.0, options_.noise_sigma),
                                  -4.0 * options_.noise_sigma,
                                  4.0 * options_.noise_sigma);
    return v * (1.0 + eps);
  };

  Sample s;
  s.timestamp = now;
  s.interval_s = dt;
  s.flops_rate = noisy(delta(Event::fp_ops) / dt);
  s.bytes_rate = noisy(delta(Event::dram_bytes) / dt);
  s.pkg_power_w = noisy(delta(Event::pkg_energy_uj) * 1e-6 / dt);
  s.dram_power_w = noisy(delta(Event::dram_energy_uj) * 1e-6 / dt);

  const double aperf = delta(Event::aperf_cycles);
  const double mperf = delta(Event::mperf_cycles);
  s.core_mhz = mperf > 0.0 ? core_base_mhz_ * aperf / mperf : 0.0;

  last_time_ = now;
  last_raw_ = raw;
  return s;
}

}  // namespace dufp::perfmon
