#include "perfmon/sampler.h"

#include <algorithm>
#include <cmath>

#include "common/expect.h"

namespace dufp::perfmon {

IntervalSampler::IntervalSampler(const CounterSource& source,
                                 double core_base_mhz, Rng noise_rng,
                                 SamplerOptions options)
    : source_(source),
      core_base_mhz_(core_base_mhz),
      rng_(noise_rng),
      options_(options) {
  DUFP_EXPECT(core_base_mhz > 0.0);
  DUFP_EXPECT(options.noise_sigma >= 0.0);
}

void IntervalSampler::reset() { have_baseline_ = false; }

void IntervalSampler::set_telemetry(telemetry::SocketTelemetry* telem) {
  telem_ = telem;
  if (telem_ == nullptr) return;
  auto& reg = telem_->registry();
  const telemetry::LabelSet labels = {
      {"socket", std::to_string(telem_->socket())}};
  reg.attach("dufp_sampler_samples_total",
             "Samples accepted and handed to a controller", labels,
             samples_accepted_);
  reg.attach("dufp_sampler_read_failures_total",
             "Counter reads that threw; interval skipped, baseline kept",
             labels, read_failures_);
  reg.attach("dufp_sampler_rejected_total",
             "Samples that failed validation; re-baselined", labels,
             samples_rejected_);
}

std::optional<Sample> IntervalSampler::sample(SimTime now) {
  std::array<std::uint64_t, kEventCount> raw{};
  try {
    for (int i = 0; i < kEventCount; ++i) {
      raw[static_cast<std::size_t>(i)] = source_.read(static_cast<Event>(i));
    }
  } catch (const std::exception&) {
    // Counter read failed (e.g. a dropped PAPI sample).  Skip the interval
    // but keep the baseline: the counters are monotonic, so the next
    // successful read yields a delta spanning both intervals and no energy
    // or work is lost from the totals.
    read_failures_.inc();
    if (telem_ != nullptr) {
      telem_->record(telemetry::EventKind::sample_read_failure, now);
    }
    return std::nullopt;
  }

  if (!have_baseline_) {
    have_baseline_ = true;
    last_time_ = now;
    last_raw_ = raw;
    return std::nullopt;
  }

  const double dt = (now - last_time_).seconds();
  DUFP_EXPECT(dt > 0.0);

  auto result = build_sample(now, dt, raw);
  if (result) {
    samples_accepted_.inc();
    if (telem_ != nullptr) {
      telem_->record(telemetry::EventKind::sample_accepted, now, 0,
                     result->pkg_power_w, result->core_mhz);
    }
  } else {
    samples_rejected_.inc();
    if (telem_ != nullptr) {
      telem_->record(telemetry::EventKind::sample_rejected, now);
    }
  }
  // Advance the baseline either way.  After a rejection (corrupted read)
  // this intentionally re-baselines onto the suspect values: if they were
  // transient garbage the *next* interval is rejected too and re-baselines
  // onto good data, so recovery is bounded at two intervals instead of
  // rejecting forever against a poisoned baseline.
  last_time_ = now;
  last_raw_ = raw;
  return result;
}

std::optional<Sample> IntervalSampler::build_sample(
    SimTime now, double dt,
    const std::array<std::uint64_t, kEventCount>& raw) {
  // Raw-value sanity: a counter beyond its wrap modulus or a 64-bit
  // counter that went backwards can only be corruption (e.g. a flipped
  // high bit) — no rate derived from it can be trusted.
  for (int i = 0; i < kEventCount; ++i) {
    const auto e = static_cast<Event>(i);
    const auto idx = static_cast<std::size_t>(i);
    const std::uint64_t range = source_.wrap_range(e);
    if (range == 0) {
      if (raw[idx] < last_raw_[idx]) return std::nullopt;
    } else if (raw[idx] >= range || last_raw_[idx] >= range) {
      return std::nullopt;
    }
  }

  auto delta = [&](Event e) {
    const auto i = static_cast<std::size_t>(e);
    return static_cast<double>(
        counter_delta(last_raw_[i], raw[i], source_.wrap_range(e)));
  };
  auto noisy = [&](double v) {
    if (options_.noise_sigma <= 0.0) return v;
    // Truncate at +-4 sigma: real sampling error is bounded, and an
    // unbounded tail could produce a negative rate.
    const double eps = std::clamp(rng_.gaussian(0.0, options_.noise_sigma),
                                  -4.0 * options_.noise_sigma,
                                  4.0 * options_.noise_sigma);
    return v * (1.0 + eps);
  };

  Sample s;
  s.timestamp = now;
  s.interval_s = dt;
  s.flops_rate = noisy(delta(Event::fp_ops) / dt);
  s.bytes_rate = noisy(delta(Event::dram_bytes) / dt);
  s.pkg_power_w = noisy(delta(Event::pkg_energy_uj) * 1e-6 / dt);
  s.dram_power_w = noisy(delta(Event::dram_energy_uj) * 1e-6 / dt);

  const double aperf = delta(Event::aperf_cycles);
  const double mperf = delta(Event::mperf_cycles);
  s.core_mhz = mperf > 0.0 ? core_base_mhz_ * aperf / mperf : 0.0;

  // Derived-rate sanity: controllers divide by and ratchet on these, so a
  // NaN or negative rate must never escape.
  for (const double v : {s.flops_rate, s.bytes_rate, s.pkg_power_w,
                         s.dram_power_w, s.core_mhz}) {
    if (!std::isfinite(v) || v < 0.0) return std::nullopt;
  }
  if (!std::isfinite(s.operational_intensity())) return std::nullopt;

  return s;
}

}  // namespace dufp::perfmon
