#include "perfmon/events.h"

#include "common/expect.h"
#include "common/units.h"

namespace dufp::perfmon {

std::string_view event_name(Event e) {
  switch (e) {
    case Event::fp_ops: return "PAPI_DP_OPS";
    case Event::dram_bytes: return "DRAM_BYTES";
    case Event::pkg_energy_uj: return "rapl::PACKAGE_ENERGY";
    case Event::dram_energy_uj: return "rapl::DRAM_ENERGY";
    case Event::aperf_cycles: return "IA32_APERF";
    case Event::mperf_cycles: return "IA32_MPERF";
    case Event::count_: break;
  }
  return "UNKNOWN";
}

std::uint64_t counter_delta(std::uint64_t before, std::uint64_t after,
                            std::uint64_t wrap_range) {
  if (wrap_range == 0) {
    DUFP_EXPECT(after >= before);
    return after - before;
  }
  DUFP_EXPECT(before < wrap_range && after < wrap_range);
  return wrap_delta(before, after, wrap_range);
}

}  // namespace dufp::perfmon
