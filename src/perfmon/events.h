// Event identifiers for the measurement layer — the subset of PAPI presets
// / RAPL components DUF and DUFP consume (Sec. IV-C: "DUFP relies on PAPI
// for power, FLOPS/s and bandwidth measurements").
#pragma once

#include <cstdint>
#include <string_view>

namespace dufp::perfmon {

enum class Event : int {
  fp_ops = 0,         ///< double-precision FLOP count (PAPI_DP_OPS)
  dram_bytes,         ///< DRAM traffic in bytes (uncore IMC counters)
  pkg_energy_uj,      ///< package RAPL energy, microjoules (wraps)
  dram_energy_uj,     ///< DRAM RAPL energy, microjoules (wraps)
  aperf_cycles,       ///< IA32_APERF actual cycles
  mperf_cycles,       ///< IA32_MPERF reference cycles
  count_              ///< sentinel
};

inline constexpr int kEventCount = static_cast<int>(Event::count_);

std::string_view event_name(Event e);

/// A raw-counter provider.  The simulated implementation reads the socket
/// model's ground truth (through the RAPL MSRs where hardware would); a
/// hardware implementation would read PAPI / perf_event.
class CounterSource {
 public:
  virtual ~CounterSource() = default;

  /// Current raw value of `e` (monotonic modulo wrap).
  virtual std::uint64_t read(Event e) const = 0;

  /// Wrap modulus for `e`; 0 means the counter does not wrap in practice
  /// (64-bit).  Energy counters wrap at the RAPL 32-bit range.
  virtual std::uint64_t wrap_range(Event e) const = 0;
};

/// Delta between two raw readings honouring the wrap modulus.
std::uint64_t counter_delta(std::uint64_t before, std::uint64_t after,
                            std::uint64_t wrap_range);

}  // namespace dufp::perfmon
