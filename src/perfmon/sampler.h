// Interval sampling: turns raw monotonic counters into the per-interval
// rates DUF/DUFP consume (FLOPS/s, bandwidth, power, effective clock).
//
// A configurable multiplicative Gaussian error models PAPI sampling jitter
// (counter read skew, interrupt noise); the paper's controllers explicitly
// reason about "the considered measurement error" (Sec. III), so the
// substrate must produce some.
#pragma once

#include <array>
#include <optional>

#include "common/clock.h"
#include "common/rng.h"
#include "perfmon/events.h"
#include "telemetry/telemetry.h"

namespace dufp::perfmon {

/// One measurement interval, as seen by a controller.
struct Sample {
  SimTime timestamp{};     ///< end of the interval
  double interval_s = 0.0;

  double flops_rate = 0.0;   ///< FLOP/s
  double bytes_rate = 0.0;   ///< bytes/s
  double pkg_power_w = 0.0;
  double dram_power_w = 0.0;
  double core_mhz = 0.0;     ///< effective clock from APERF/MPERF

  /// Operational intensity = FLOPS/s / bytes/s (paper Fig. 2 caption).
  /// A starved denominator reports a huge OI, matching how a
  /// flops-per-byte ratio degenerates on traffic-free phases.
  double operational_intensity() const {
    constexpr double kMinBytesRate = 1.0;  // 1 B/s floor
    return flops_rate / (bytes_rate > kMinBytesRate ? bytes_rate : kMinBytesRate);
  }
};

struct SamplerOptions {
  /// Relative 1-sigma error applied to flops / bytes / energy deltas.
  double noise_sigma = 0.004;
};

/// Counters for the measurement failures the sampler absorbed instead of
/// letting them reach a controller.  A value snapshot assembled by
/// IntervalSampler::health() from its counter-backed instruments.
struct SamplerHealth {
  /// Counter reads that threw; the interval is skipped, the baseline kept
  /// (counters are monotonic, so the next delta spans both intervals).
  std::uint64_t read_failures = 0;
  /// Intervals whose raw values or derived rates failed validation
  /// (non-monotonic counters, out-of-range raws, NaN/negative rates); the
  /// sampler re-baselines so at most one further interval is lost.
  std::uint64_t samples_rejected = 0;
};

class IntervalSampler {
 public:
  IntervalSampler(const CounterSource& source, double core_base_mhz,
                  Rng noise_rng, SamplerOptions options = {});

  /// Reads all counters and produces the sample for the interval since the
  /// previous call.  The first call establishes the baseline and returns
  /// nullopt.  Also returns nullopt — never throws, never emits garbage —
  /// when the source fails or produces values that cannot be right; see
  /// SamplerHealth for the accounting.
  std::optional<Sample> sample(SimTime now);

  /// Forgets the baseline (next sample() re-establishes it).
  void reset();

  /// Attach the socket's telemetry view (nullptr = null sink, the
  /// default): registers the sampler's counters and enables
  /// sample_accepted / sample_rejected / sample_read_failure events.
  void set_telemetry(telemetry::SocketTelemetry* telem);

  SamplerHealth health() const {
    SamplerHealth h;
    h.read_failures = read_failures_.value();
    h.samples_rejected = samples_rejected_.value();
    return h;
  }

 private:
  std::optional<Sample> build_sample(
      SimTime now, double dt,
      const std::array<std::uint64_t, kEventCount>& raw);
  const CounterSource& source_;
  double core_base_mhz_;
  Rng rng_;
  SamplerOptions options_;
  bool have_baseline_ = false;
  SimTime last_time_{};
  std::array<std::uint64_t, kEventCount> last_raw_{};

  telemetry::SocketTelemetry* telem_ = nullptr;  ///< nullable
  telemetry::Counter samples_accepted_;
  telemetry::Counter read_failures_;
  telemetry::Counter samples_rejected_;
};

}  // namespace dufp::perfmon
