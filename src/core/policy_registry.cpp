#include "core/policy_registry.h"

#include <stdexcept>

#include "common/string_util.h"

namespace dufp::core {

namespace {

std::string key_of(std::string_view name) {
  return to_lower(trim(name));
}

}  // namespace

PolicyRegistry& PolicyRegistry::instance() {
  static PolicyRegistry* reg = [] {
    auto* r = new PolicyRegistry();
    register_legacy_policies(*r);
    register_zoo_policies(*r);
    return r;
  }();
  return *reg;
}

void PolicyRegistry::add(Entry entry) {
  if (entry.name.empty()) {
    throw std::invalid_argument("PolicyRegistry: entry has no name");
  }
  if (!entry.factory) {
    throw std::invalid_argument("PolicyRegistry: policy \"" + entry.name +
                                "\" has no factory");
  }
  auto collide = [this](const std::string& candidate) {
    const std::string key = key_of(candidate);
    for (const Entry& e : entries_) {
      if (key_of(e.name) == key) return true;
      for (const std::string& a : e.aliases) {
        if (key_of(a) == key) return true;
      }
    }
    return false;
  };
  if (collide(entry.name)) {
    throw std::invalid_argument("PolicyRegistry: duplicate policy name \"" +
                                entry.name + "\"");
  }
  for (const std::string& a : entry.aliases) {
    if (collide(a)) {
      throw std::invalid_argument("PolicyRegistry: alias \"" + a +
                                  "\" of policy \"" + entry.name +
                                  "\" collides with an existing entry");
    }
  }
  entries_.push_back(std::move(entry));
}

const PolicyRegistry::Entry* PolicyRegistry::find(
    std::string_view name) const {
  const std::string key = key_of(name);
  for (const Entry& e : entries_) {
    if (key_of(e.name) == key) return &e;
    for (const std::string& a : e.aliases) {
      if (key_of(a) == key) return &e;
    }
  }
  return nullptr;
}

const PolicyRegistry::Entry& PolicyRegistry::at(std::string_view name) const {
  if (const Entry* e = find(name)) return *e;
  throw std::invalid_argument("unknown policy \"" + std::string(name) +
                              "\" (known: " + known_names() + ")");
}

std::vector<std::string> PolicyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.name);
  return out;
}

std::string PolicyRegistry::known_names() const {
  std::string out;
  for (const Entry& e : entries_) {
    if (!out.empty()) out += ", ";
    out += e.name;
  }
  return out;
}

PolicyConfig PolicyRegistry::apply_config_defaults(std::string_view name,
                                                   PolicyConfig config) const {
  const Entry& e = at(name);
  if (e.config_defaults) e.config_defaults(config);
  return config;
}

std::unique_ptr<Policy> PolicyRegistry::create(std::string_view name,
                                               const PolicySetup& setup) const {
  return at(name).factory(setup);
}

}  // namespace dufp::core
