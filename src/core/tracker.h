// Phase tracking shared by the uncore and power-cap decision paths:
// classifies the current phase from operational intensity, detects phase
// changes (OI class flips and intra-phase FLOPS doubling), and maintains
// the per-phase FLOPS / bandwidth maxima the tolerance checks compare
// against.
#pragma once

#include "core/policy.h"
#include "perfmon/sampler.h"

namespace dufp::core {

enum class PhaseClass { memory, cpu };

class PhaseTracker {
 public:
  explicit PhaseTracker(const PolicyConfig& policy);

  struct Update {
    bool phase_change = false;
    PhaseClass phase_class = PhaseClass::memory;
    double oi = 0.0;

    /// Relative drops vs the ratcheted per-phase maxima, in [0, 1].
    /// 0 when the current sample *is* the maximum.
    double flops_drop = 0.0;
    double bw_drop = 0.0;

    bool highly_memory = false;  ///< oi < oi_highly_memory
    bool highly_cpu = false;     ///< oi > oi_highly_cpu
  };

  /// Feeds one measurement interval.
  Update update(const perfmon::Sample& sample);

  /// Forces a new phase (used when the controller resets on its own, e.g.
  /// after the overshoot guard, so stale maxima don't linger).
  void restart_phase();

  double max_flops() const { return max_flops_; }
  double max_bw() const { return max_bw_; }

 private:
  PhaseClass classify(double oi) const;

  PolicyConfig policy_;
  bool have_phase_ = false;
  PhaseClass phase_class_ = PhaseClass::memory;
  double max_flops_ = 0.0;
  double max_bw_ = 0.0;
};

}  // namespace dufp::core
