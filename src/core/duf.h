// DUF: dynamic uncore frequency scaling (André, Dulong, Guermouche,
// Trahay — the paper's prior tool, summarized in Sec. II-C).  Periodically
// compares the FLOPS/s *and memory bandwidth* of the current phase against
// the per-phase maxima; while both are within the tolerated slowdown the
// uncore frequency is stepped down, a violation steps it back up, a phase
// change resets it to the maximum.
#pragma once

#include "core/policy.h"
#include "core/tracker.h"

namespace dufp::core {

enum class UncoreAction { none, hold, decrease, increase, reset };

struct UncoreLimits {
  double min_mhz = 1200.0;
  double max_mhz = 2400.0;
};

class DufController {
 public:
  DufController(const PolicyConfig& policy, const UncoreLimits& limits);

  struct Decision {
    UncoreAction action = UncoreAction::none;
    double target_mhz = 0.0;  ///< frequency to pin (min = max = target)
  };

  /// One control interval.  `u` must come from the shared PhaseTracker fed
  /// with the same sample.
  Decision decide(const PhaseTracker::Update& u);

  double target_mhz() const { return target_mhz_; }

  /// True when the previous interval's action was an increase — the signal
  /// DUFP's interaction rule 1 consumes.
  bool last_action_was_increase() const {
    return last_action_ == UncoreAction::increase;
  }

  /// Forces the controller's notion of the target back to max (used by
  /// DUFP when it resets both actuators).
  void force_reset();

 private:
  PolicyConfig policy_;
  UncoreLimits limits_;
  double target_mhz_;
  UncoreAction last_action_ = UncoreAction::none;
  int cooldown_ = 0;
  int since_decrease_ = 1'000'000;  ///< intervals since my last decrease
  int consecutive_beyond_ = 0;
};

}  // namespace dufp::core
