// DNPC-style baseline (Sharma, Lan, Wu, Taylor — "A dynamic power capping
// library for HPC applications", CLUSTER'21), the closest related work
// the paper discusses (Sec. VI).
//
// DNPC adapts the package cap under a user-defined performance-
// degradation limit, but estimates degradation from a *linear
// frequency-performance model*: predicted slowdown = 1 − f/f_max.  The
// paper's critique — that this model is wrong for memory-intensive and
// vectorized codes — is exactly what the baseline bench demonstrates: on
// bandwidth-bound applications DNPC leaves most of the free capping
// headroom unused (the frequency drops, so it predicts slowdown that
// never materializes), while DUFP's FLOPS-based feedback takes it.
//
// Reimplemented from the published description; the original library does
// not support our (simulated) platform either.
#pragma once

#include "core/policy.h"
#include "perfmon/sampler.h"

namespace dufp::core {

struct DnpcLimits {
  double default_cap_w = 125.0;
  double min_cap_w = 65.0;
  /// Initial f_max hint of the frequency model; 0 = learn it from the
  /// highest clock observed (self-calibrating, like the original tool
  /// measuring an uncapped period first).
  double max_core_mhz = 0.0;
};

class DnpcController {
 public:
  DnpcController(const PolicyConfig& policy, const DnpcLimits& limits);

  struct Decision {
    /// Cap to program (both constraints), or 0 when unchanged.
    double cap_w = 0.0;
    bool changed = false;
  };

  /// One control period: estimate next-period degradation from the
  /// measured frequency and step the cap accordingly.
  Decision decide(const perfmon::Sample& sample);

  double cap_w() const { return cap_w_; }

  /// The linear model's degradation estimate for a given clock.
  double estimated_degradation(double core_mhz) const;

 private:
  PolicyConfig policy_;
  DnpcLimits limits_;
  double cap_w_;
  double observed_max_mhz_;
};

}  // namespace dufp::core
