// The policy zoo: controllers beyond the paper, expressible only now
// that the Agent dispatches through the Policy seam.
//
//  - performance / powersave / fixed-uncore — static governor baselines
//    in the spirit of "How to Increase Energy Efficiency with a Single
//    Linux Command" (PAPERS.md): no feedback, one configuration.
//  - cuttlefish — a Cuttlefish-style profiling-free online tuner: both
//    knobs (uncore frequency, package cap) tuned by alternating
//    coordinate descent against the observed FLOPS drop, violations
//    attributed to the knob that moved last, everything reset on a phase
//    change.
//  - profile-apply — profile-then-apply: the first visit of each phase
//    class runs a calibration descent to the tolerance boundary; later
//    visits re-apply the remembered settings immediately, paying the
//    search cost once.
//
// All zoo policies are deterministic (no RNG), stay inside the hardware
// envelope given by PolicySetup, and reuse the paper's PhaseTracker /
// classify_drop machinery so their tolerance semantics match DUF/DUFP.
#include <algorithm>
#include <cmath>
#include <memory>

#include "core/policy_registry.h"
#include "core/tracker.h"

namespace dufp::core {
namespace {

/// Static "performance" governor: leave the hardware at its boot
/// configuration (maximum uncore window, default caps).  The baseline
/// every savings number is implicitly measured against, now rankable in
/// the same tournament column as everything else.
class PerformancePolicy final : public Policy {
 public:
  explicit PerformancePolicy(const PolicySetup&) {}
  std::string_view name() const override { return "performance"; }
  PolicyDecision observe(const perfmon::Sample&) override { return {}; }
};

/// Static "powersave" governor: floor both knobs once — uncore window to
/// its minimum, package cap to the policy floor — then hold.  After a
/// watchdog re-engagement the policy is rebuilt, so the floor is
/// re-applied automatically.
class PowersavePolicy final : public Policy {
 public:
  explicit PowersavePolicy(const PolicySetup& s)
      : uncore_(s.uncore), caps_(s.caps) {}

  std::string_view name() const override { return "powersave"; }

  PolicyDecision observe(const perfmon::Sample&) override {
    PolicyDecision d;
    if (applied_) return d;
    applied_ = true;
    d.uncore.action = UncoreAction::decrease;
    d.uncore.target_mhz = uncore_.min_mhz;
    d.cap_action = CapAction::decrease;
    d.cap_long_w = caps_.min_cap_w;
    d.cap_short_w = caps_.min_cap_w;
    return d;
  }

 private:
  UncoreLimits uncore_;
  CapLimits caps_;
  bool applied_ = false;
};

/// Static mid-range uncore pin: the window fixed halfway between min and
/// max (rounded down to a whole uncore step), caps untouched.  The
/// single-Linux-command experiment for the uncore knob alone.
class FixedUncorePolicy final : public Policy {
 public:
  explicit FixedUncorePolicy(const PolicySetup& s) {
    const double step =
        s.config.uncore_step_mhz > 0.0 ? s.config.uncore_step_mhz : 100.0;
    const double mid =
        s.uncore.min_mhz + (s.uncore.max_mhz - s.uncore.min_mhz) * 0.5;
    const double stepped =
        s.uncore.max_mhz -
        std::floor((s.uncore.max_mhz - mid) / step + 1e-9) * step;
    target_mhz_ = std::clamp(stepped, s.uncore.min_mhz, s.uncore.max_mhz);
  }

  std::string_view name() const override { return "fixed-uncore"; }

  PolicyDecision observe(const perfmon::Sample&) override {
    PolicyDecision d;
    if (applied_) return d;
    applied_ = true;
    d.uncore.action = UncoreAction::decrease;
    d.uncore.target_mhz = target_mhz_;
    return d;
  }

 private:
  double target_mhz_ = 0.0;
  bool applied_ = false;
};

/// Cuttlefish-style profiling-free dual-knob tuner.  Coordinate descent:
/// while the measured FLOPS drop stays within the tolerated slowdown,
/// alternate single steps of the uncore and the cap downward; a
/// violation backs off the knob that moved last (the plausible culprit)
/// and puts it on cooldown; a phase change resets both knobs and
/// restarts the descent.  No calibration pass, no model — exactly the
/// knob-agnostic online search Cuttlefish runs for GPU clocks, mapped
/// onto the uncore/cap pair.
class CuttlefishPolicy final : public Policy {
 public:
  explicit CuttlefishPolicy(const PolicySetup& s)
      : cfg_(s.config),
        limits_(s.uncore),
        caps_(s.caps),
        tracker_(s.config),
        uncore_mhz_(s.uncore.max_mhz),
        cap_w_(s.caps.default_long_w) {}

  std::string_view name() const override { return "cuttlefish"; }

  PolicyDecision observe(const perfmon::Sample& sample) override {
    const auto u = tracker_.update(sample);
    PolicyDecision d;

    if (u.phase_change) {
      reset_state(d);
      return d;
    }

    const auto zone =
        classify_drop(u.flops_drop, cfg_.tolerated_slowdown, cfg_.epsilon);
    if (zone == ToleranceZone::beyond) {
      back_off(d);
      return d;
    }
    if (cooldown_ > 0) {
      --cooldown_;
      return d;
    }
    if (zone == ToleranceZone::within) descend(d);
    return d;
  }

 private:
  enum class Knob { uncore, cap };

  void reset_state(PolicyDecision& d) {
    d.phase_change = true;
    uncore_mhz_ = limits_.max_mhz;
    cap_w_ = caps_.default_long_w;
    d.uncore.action = UncoreAction::reset;
    d.uncore.target_mhz = limits_.max_mhz;
    d.cap_action = CapAction::reset;
    d.cap_reset = true;
    next_ = Knob::uncore;
    last_moved_ = Knob::uncore;
    moved_any_ = false;
    cooldown_ = 1;  // let the reset take effect before probing again
  }

  /// One downward step of the next knob in the rotation; skips to the
  /// other knob when the preferred one is already at its floor.
  void descend(PolicyDecision& d) {
    const bool uncore_floored = uncore_mhz_ <= limits_.min_mhz + 1e-9;
    const bool cap_floored = cap_w_ <= caps_.min_cap_w + 1e-9;
    Knob knob = next_;
    if (knob == Knob::uncore && uncore_floored) knob = Knob::cap;
    if (knob == Knob::cap && cap_floored) {
      if (uncore_floored) return;  // both bottomed out: hold
      knob = Knob::uncore;
    }
    if (knob == Knob::uncore) {
      uncore_mhz_ = std::max(uncore_mhz_ - cfg_.uncore_step_mhz,
                             limits_.min_mhz);
      d.uncore.action = UncoreAction::decrease;
      d.uncore.target_mhz = uncore_mhz_;
    } else {
      cap_w_ = std::max(cap_w_ - cfg_.cap_step_w, caps_.min_cap_w);
      d.cap_action = CapAction::decrease;
      d.cap_long_w = cap_w_;
      d.cap_short_w = cap_w_;
    }
    last_moved_ = knob;
    moved_any_ = true;
    next_ = knob == Knob::uncore ? Knob::cap : Knob::uncore;
  }

  /// Violation: undo one step of the knob that moved last and freeze the
  /// descent for a cooldown.  A violation before any move (the workload
  /// itself slowed down) is unattributable — hold and blame neither.
  void back_off(PolicyDecision& d) {
    if (!moved_any_) {
      d.blame = ViolationBlame::unattributed;
      cooldown_ = std::max(cooldown_, 1);
      return;
    }
    if (last_moved_ == Knob::uncore && uncore_mhz_ < limits_.max_mhz) {
      uncore_mhz_ = std::min(uncore_mhz_ + cfg_.uncore_step_mhz,
                             limits_.max_mhz);
      d.uncore.action = UncoreAction::increase;
      d.uncore.target_mhz = uncore_mhz_;
      d.blame = ViolationBlame::uncore;
      cooldown_ = cfg_.uncore_cooldown_intervals;
    } else if (cap_w_ < caps_.default_long_w) {
      cap_w_ = std::min(cap_w_ + cfg_.cap_step_w, caps_.default_long_w);
      d.cap_action = CapAction::increase;
      d.cap_long_w = cap_w_;
      d.cap_short_w = cap_w_;
      d.blame = ViolationBlame::cap;
      cooldown_ = cfg_.cap_cooldown_intervals;
    } else {
      d.blame = ViolationBlame::unattributed;
      cooldown_ = std::max(cooldown_, 1);
    }
    // Resume the rotation on the knob that was NOT blamed.
    next_ = d.blame == ViolationBlame::uncore ? Knob::cap : Knob::uncore;
  }

  PolicyConfig cfg_;
  UncoreLimits limits_;
  CapLimits caps_;
  PhaseTracker tracker_;

  double uncore_mhz_;
  double cap_w_;
  Knob next_ = Knob::uncore;
  Knob last_moved_ = Knob::uncore;
  bool moved_any_ = false;
  int cooldown_ = 0;
};

/// Profile-then-apply: per phase class (memory- vs cpu-intensive), the
/// first visit runs a calibration descent — uncore first, then the cap,
/// one step per interval while the drop stays within tolerance; the
/// boundary or a violation freezes the class's settings.  Every later
/// visit of the class re-applies the frozen pair in a single interval.
/// The online analogue of a profiling pass + static configuration, with
/// the calibration cost paid once per class instead of per run.
class ProfileApplyPolicy final : public Policy {
 public:
  explicit ProfileApplyPolicy(const PolicySetup& s)
      : cfg_(s.config),
        limits_(s.uncore),
        caps_(s.caps),
        tracker_(s.config),
        uncore_mhz_(s.uncore.max_mhz),
        cap_w_(s.caps.default_long_w) {}

  std::string_view name() const override { return "profile-apply"; }

  PolicyDecision observe(const perfmon::Sample& sample) override {
    const auto u = tracker_.update(sample);
    PolicyDecision d;
    ClassState& st = state_[u.phase_class == PhaseClass::cpu ? 1 : 0];

    if (u.phase_change) {
      d.phase_change = true;
      if (st.calibrated) {
        // Known class: jump straight to the frozen settings.
        apply_settings(d, st.uncore_mhz, st.cap_w);
      } else {
        // Unknown class: restart from the top and calibrate.
        apply_settings(d, limits_.max_mhz, caps_.default_long_w);
        settle_ = 1;
      }
      return d;
    }

    if (st.calibrated) return d;  // frozen: hold whatever is applied

    if (settle_ > 0) {
      --settle_;
      return d;
    }

    const auto zone =
        classify_drop(u.flops_drop, cfg_.tolerated_slowdown, cfg_.epsilon);
    if (zone == ToleranceZone::beyond) {
      // Overshot: undo the last calibration step and freeze there.
      if (calibrating_cap_ && cap_w_ < caps_.default_long_w) {
        cap_w_ = std::min(cap_w_ + cfg_.cap_step_w, caps_.default_long_w);
        d.cap_action = CapAction::increase;
        d.cap_long_w = cap_w_;
        d.cap_short_w = cap_w_;
        d.blame = ViolationBlame::cap;
      } else if (uncore_mhz_ < limits_.max_mhz) {
        uncore_mhz_ = std::min(uncore_mhz_ + cfg_.uncore_step_mhz,
                               limits_.max_mhz);
        d.uncore.action = UncoreAction::increase;
        d.uncore.target_mhz = uncore_mhz_;
        d.blame = ViolationBlame::uncore;
      }
      freeze(st);
      return d;
    }
    if (zone == ToleranceZone::boundary) {
      freeze(st);  // the boundary IS the calibration target
      return d;
    }

    // Within tolerance: keep descending — uncore to its floor first,
    // then the cap; both floored means the envelope is the limit.
    if (uncore_mhz_ > limits_.min_mhz + 1e-9 && !calibrating_cap_) {
      uncore_mhz_ = std::max(uncore_mhz_ - cfg_.uncore_step_mhz,
                             limits_.min_mhz);
      d.uncore.action = UncoreAction::decrease;
      d.uncore.target_mhz = uncore_mhz_;
    } else if (cap_w_ > caps_.min_cap_w + 1e-9) {
      calibrating_cap_ = true;
      cap_w_ = std::max(cap_w_ - cfg_.cap_step_w, caps_.min_cap_w);
      d.cap_action = CapAction::decrease;
      d.cap_long_w = cap_w_;
      d.cap_short_w = cap_w_;
    } else {
      freeze(st);
    }
    return d;
  }

 private:
  struct ClassState {
    bool calibrated = false;
    double uncore_mhz = 0.0;
    double cap_w = 0.0;
  };

  void apply_settings(PolicyDecision& d, double uncore_mhz, double cap_w) {
    uncore_mhz_ = uncore_mhz;
    cap_w_ = cap_w;
    calibrating_cap_ = false;
    if (uncore_mhz >= limits_.max_mhz - 1e-9) {
      d.uncore.action = UncoreAction::reset;
      d.uncore.target_mhz = limits_.max_mhz;
    } else {
      d.uncore.action = UncoreAction::decrease;
      d.uncore.target_mhz = uncore_mhz;
    }
    if (cap_w >= caps_.default_long_w - 1e-9) {
      d.cap_action = CapAction::reset;
      d.cap_reset = true;
    } else {
      d.cap_action = CapAction::decrease;
      d.cap_long_w = cap_w;
      d.cap_short_w = cap_w;
    }
  }

  void freeze(ClassState& st) {
    st.calibrated = true;
    st.uncore_mhz = uncore_mhz_;
    st.cap_w = cap_w_;
    calibrating_cap_ = false;
  }

  PolicyConfig cfg_;
  UncoreLimits limits_;
  CapLimits caps_;
  PhaseTracker tracker_;

  double uncore_mhz_;
  double cap_w_;
  bool calibrating_cap_ = false;
  int settle_ = 0;
  ClassState state_[2];  ///< [0] memory-intensive, [1] cpu-intensive
};

}  // namespace

void register_zoo_policies(PolicyRegistry& registry) {
  registry.add({
      "performance",
      "static governor baseline: boot configuration, no control",
      {},
      [](const PolicySetup& s) {
        return std::make_unique<PerformancePolicy>(s);
      },
      nullptr,
  });
  registry.add({
      "powersave",
      "static governor baseline: uncore window and cap floored once",
      {},
      [](const PolicySetup& s) { return std::make_unique<PowersavePolicy>(s); },
      nullptr,
  });
  registry.add({
      "fixed-uncore",
      "static mid-range uncore pin, caps untouched",
      {"fixed_uncore"},
      [](const PolicySetup& s) {
        return std::make_unique<FixedUncorePolicy>(s);
      },
      nullptr,
  });
  registry.add({
      "cuttlefish",
      "profiling-free dual-knob online tuner (coordinate descent)",
      {},
      [](const PolicySetup& s) {
        return std::make_unique<CuttlefishPolicy>(s);
      },
      nullptr,
  });
  registry.add({
      "profile-apply",
      "per-phase-class calibration descent, then fixed settings",
      {"profile_apply"},
      [](const PolicySetup& s) {
        return std::make_unique<ProfileApplyPolicy>(s);
      },
      nullptr,
  });
}

}  // namespace dufp::core
