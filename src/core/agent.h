// The per-socket runtime agent: owns the measurement sampler and the
// control policy, and actuates through the powercap zone (package power
// limits) and the uncore MSR — exactly the actuation paths the paper's
// tool uses (Sec. IV-C).  One Agent instance runs per user-specified
// socket, each fully independent, mirroring "one instance of DUFP is
// started on each user-specified socket" (Sec. III).
//
// The control logic lives behind the core::Policy seam (policy_api.h):
// the agent resolves a policy by registry name, feeds it one sample per
// interval, and executes the returned PolicyDecision through its retry /
// watchdog / telemetry machinery.  The agent is the only thing that
// touches hardware, so every policy — paper controller or zoo entry —
// gets identical robustness behaviour for free.
//
// The Agent is substrate-agnostic: it sees only CounterSource, Zone and
// MsrDevice interfaces, so the identical class would drive PAPI +
// powercap + /dev/cpu/*/msr on hardware.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "core/policy.h"
#include "core/policy_api.h"
#include "perfmon/sampler.h"
#include "powercap/pstate_control.h"
#include "powercap/uncore_control.h"
#include "powercap/zone.h"
#include "telemetry/telemetry.h"

namespace dufp::core {

/// Robustness accounting: what the agent absorbed, retried or gave up on.
/// All zero on a healthy substrate; deterministic for a fixed fault seed.
/// A value snapshot assembled by Agent::stats() from the agent's
/// counter-backed instruments — the counters are the single source of
/// truth, shared with the telemetry registry when one is attached.
struct AgentHealth {
  std::uint64_t actuation_retries = 0;    ///< failed attempts that were retried
  std::uint64_t actuation_failures = 0;   ///< operations dead after all retries
  std::uint64_t sample_read_failures = 0; ///< mirrors SamplerHealth
  std::uint64_t samples_rejected = 0;     ///< mirrors SamplerHealth
  std::uint64_t degradations = 0;         ///< watchdog fail-safe entries
  std::uint64_t reengage_failures = 0;    ///< re-engagement probes that failed
  std::uint64_t reengagements = 0;        ///< successful recoveries
  std::uint64_t intervals_degraded = 0;   ///< intervals spent degraded
};

struct AgentStats {
  std::uint64_t intervals = 0;

  std::uint64_t uncore_decreases = 0;
  std::uint64_t uncore_increases = 0;
  std::uint64_t uncore_resets = 0;

  std::uint64_t cap_decreases = 0;
  std::uint64_t cap_increases = 0;
  std::uint64_t cap_resets = 0;
  std::uint64_t cap_overshoot_resets = 0;
  std::uint64_t short_term_tightenings = 0;
  std::uint64_t uncore_reset_retries = 0;  ///< interaction rule 2 firings
  std::uint64_t pstate_pins = 0;           ///< DUFP-F frequency requests
  std::uint64_t pstate_releases = 0;

  AgentHealth health;
};

class Agent {
 public:
  /// Primary constructor.  `policy_name` is resolved (case-insensitively)
  /// in PolicyRegistry::instance(); std::invalid_argument on unknown
  /// names.  The registry entry's config_defaults are applied to `policy`
  /// first (e.g. DUFP-F forces manage_core_frequency), then the zone's
  /// current limits / windows are captured as the hardware defaults to
  /// restore on reset.  Whenever the effective config has
  /// manage_core_frequency set `pstate` is required, otherwise pass
  /// nullptr.  `telem` is the socket's telemetry view; nullptr (the
  /// default) is the null sink — instruments still count, but nothing is
  /// exported and no events are recorded.
  Agent(std::string_view policy_name, const PolicyConfig& policy,
        powercap::PackageZone& zone, powercap::UncoreControl& uncore,
        perfmon::IntervalSampler sampler,
        powercap::PstateControl* pstate = nullptr,
        telemetry::SocketTelemetry* telem = nullptr);

  /// Compatibility shim: maps the legacy enum onto its registry name via
  /// core::to_string.  `mode` must name a controller — PolicyMode::none
  /// is a harness-level value and is rejected.
  Agent(PolicyMode mode, const PolicyConfig& policy,
        powercap::PackageZone& zone, powercap::UncoreControl& uncore,
        perfmon::IntervalSampler sampler,
        powercap::PstateControl* pstate = nullptr,
        telemetry::SocketTelemetry* telem = nullptr);

  /// One control interval: sample, decide, actuate.  The first call only
  /// establishes the counter baseline.
  ///
  /// Never throws: hardware failures are retried (bounded by
  /// PolicyConfig::max_actuation_attempts), and after
  /// `watchdog_failure_threshold` consecutive failed intervals the agent
  /// degrades to the fail-safe state (default uncore window, default power
  /// limits, P-state released) and probes for re-engagement with
  /// exponential backoff.  See AgentHealth for the accounting.
  void on_interval(SimTime now);

  /// True while the watchdog has the socket in the fail-safe state.
  bool degraded() const { return degraded_; }

  /// Canonical registry name of the policy this agent runs.
  const std::string& policy_name() const { return policy_name_; }
  /// Value snapshot assembled from the counter-backed instruments (and
  /// the sampler's own health — the agent no longer mirrors it).
  AgentStats stats() const;
  const PolicyConfig& policy() const { return policy_; }

  /// Last sample observed (empty before the second interval).
  const std::optional<perfmon::Sample>& last_sample() const {
    return last_sample_;
  }

  double default_long_w() const { return default_long_w_; }
  double default_short_w() const { return default_short_w_; }

 private:
  void init_controllers();
  void run_interval(SimTime now);
  void apply_uncore(const DufController::Decision& d);
  void apply_cap(const PolicyDecision& d);
  bool restore_default_cap();

  /// Runs a hardware-facing operation with bounded immediate retries;
  /// counts retries/failures (tagged with the actuation op for the flight
  /// recorder) and flags the interval on terminal failure.
  template <typename F>
  bool try_op(telemetry::ActuationOp op, F&& f);

  /// Flight-recorder shorthand; no-op when telemetry is disabled.
  void rec(telemetry::EventKind kind, std::uint16_t code = 0, double a = 0.0,
           double b = 0.0) {
    if (telem_ != nullptr) telem_->record(kind, now_, code, a, b);
  }
  void register_instruments();

  void enter_degraded();
  void apply_failsafe();
  void degraded_interval();
  void reengage();

  std::string policy_name_;
  PolicyConfig policy_;
  powercap::PackageZone& zone_;
  powercap::UncoreControl& uncore_;
  powercap::PstateControl* pstate_;  ///< nullable (core-freq policies only)
  perfmon::IntervalSampler sampler_;

  double default_long_w_;
  double default_short_w_;
  std::uint64_t default_long_window_us_;
  std::uint64_t default_short_window_us_;
  double uncore_max_mhz_;
  double default_uncore_min_mhz_;
  double pstate_max_mhz_ = 0.0;

  // -- watchdog state -------------------------------------------------------
  bool degraded_ = false;
  bool failsafe_applied_ = false;   ///< the safe state actually reached hw
  int consecutive_failures_ = 0;
  int current_backoff_ = 0;         ///< intervals between re-engage probes
  int backoff_remaining_ = 0;
  bool interval_attempted_ = false; ///< any hardware op tried this interval
  bool interval_failed_ = false;    ///< ... and at least one died

  /// The control policy, built by init_controllers() from the captured
  /// hardware defaults; destroyed and rebuilt on watchdog re-engagement so
  /// stale phase baselines never survive an outage.
  std::unique_ptr<Policy> policy_impl_;

  // -- instruments ----------------------------------------------------------
  // Counter-backed single source of truth for AgentStats/AgentHealth;
  // register_instruments() shares these cells with the registry when a
  // telemetry view is attached.  cap_overshoot_resets has no instrument:
  // it is reserved accounting that nothing increments yet.
  telemetry::SocketTelemetry* telem_;  ///< nullable (telemetry disabled)
  SimTime now_{};                      ///< current interval's clock stamp
  telemetry::Counter intervals_ct_;
  telemetry::Counter uncore_decreases_;
  telemetry::Counter uncore_increases_;
  telemetry::Counter uncore_resets_;
  telemetry::Counter cap_decreases_;
  telemetry::Counter cap_increases_;
  telemetry::Counter cap_resets_;
  telemetry::Counter short_term_tightenings_;
  telemetry::Counter uncore_reset_retries_;
  telemetry::Counter pstate_pins_;
  telemetry::Counter pstate_releases_;
  telemetry::Counter actuation_retries_;
  telemetry::Counter actuation_failures_;
  telemetry::Counter degradations_;
  telemetry::Counter reengage_failures_;
  telemetry::Counter reengagements_;
  telemetry::Counter intervals_degraded_;
  telemetry::Gauge degraded_gauge_;
  telemetry::Histogram pkg_power_hist_;

  std::optional<perfmon::Sample> last_sample_;
};

}  // namespace dufp::core
