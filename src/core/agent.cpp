#include "core/agent.h"

#include <algorithm>

#include "common/expect.h"
#include "msr/device.h"

namespace dufp::core {

using powercap::ConstraintId;

Agent::Agent(PolicyMode mode, const PolicyConfig& policy,
             powercap::PackageZone& zone, powercap::UncoreControl& uncore,
             perfmon::IntervalSampler sampler,
             powercap::PstateControl* pstate)
    : mode_(mode),
      policy_(policy),
      zone_(zone),
      uncore_(uncore),
      pstate_(pstate),
      sampler_(std::move(sampler)),
      default_long_w_(zone.power_limit_w(ConstraintId::long_term)),
      default_short_w_(zone.power_limit_w(ConstraintId::short_term)),
      default_long_window_us_(zone.time_window_us(0)),
      default_short_window_us_(zone.time_window_us(1)),
      uncore_max_mhz_(uncore.window_max_mhz()),
      default_uncore_min_mhz_(uncore.window_min_mhz()) {
  DUFP_EXPECT(mode_ != PolicyMode::none);  // none = no agent at all
  if (mode_ == PolicyMode::dufpf) policy_.manage_core_frequency = true;

  DUFP_EXPECT(policy_.max_actuation_attempts >= 1);
  DUFP_EXPECT(policy_.watchdog_failure_threshold >= 1);
  DUFP_EXPECT(policy_.watchdog_backoff_intervals >= 1);
  DUFP_EXPECT(policy_.watchdog_backoff_max_intervals >=
              policy_.watchdog_backoff_intervals);

  DUFP_EXPECT(!policy_.manage_core_frequency || pstate_ != nullptr);
  if (pstate_ != nullptr) {
    // The current request at startup is the performance governor's
    // maximum — remembered as the release target.
    pstate_max_mhz_ = pstate_->requested_mhz();
  }

  init_controllers();
}

void Agent::init_controllers() {
  // Built from the captured hardware defaults, not live reads: this also
  // runs on re-engagement, when the live window is the fail-safe one.
  UncoreLimits ul;
  ul.min_mhz = default_uncore_min_mhz_;
  ul.max_mhz = uncore_max_mhz_;

  if (mode_ == PolicyMode::dufp || mode_ == PolicyMode::dufpf) {
    CapLimits cl;
    cl.default_long_w = default_long_w_;
    cl.default_short_w = default_short_w_;
    cl.min_cap_w = policy_.min_cap_w;
    dufp_.emplace(policy_, ul, cl);
  } else if (mode_ == PolicyMode::dnpc) {
    DnpcLimits dl;
    dl.default_cap_w = default_long_w_;
    dl.min_cap_w = policy_.min_cap_w;
    dnpc_.emplace(policy_, dl);
  } else {
    duf_tracker_.emplace(policy_);
    duf_.emplace(policy_, ul);
  }
}

template <typename F>
bool Agent::try_op(F&& op) {
  interval_attempted_ = true;
  for (int attempt = 0; attempt < policy_.max_actuation_attempts; ++attempt) {
    try {
      op();
      return true;
    } catch (const msr::MsrError&) {
      if (attempt + 1 < policy_.max_actuation_attempts) {
        ++stats_.health.actuation_retries;
      }
    }
  }
  ++stats_.health.actuation_failures;
  interval_failed_ = true;
  return false;
}

void Agent::apply_uncore(const DufController::Decision& d) {
  switch (d.action) {
    case UncoreAction::decrease:
      if (try_op([&] { uncore_.pin_mhz(d.target_mhz); }))
        ++stats_.uncore_decreases;
      break;
    case UncoreAction::increase:
      if (try_op([&] { uncore_.pin_mhz(d.target_mhz); }))
        ++stats_.uncore_increases;
      break;
    case UncoreAction::reset:
      if (try_op([&] { uncore_.pin_mhz(uncore_max_mhz_); }))
        ++stats_.uncore_resets;
      break;
    case UncoreAction::hold:
    case UncoreAction::none:
      break;
  }
}

bool Agent::restore_default_cap() {
  // Four independent stores; attempt all of them even if one dies, so a
  // partially-broken path still restores as much of the default as it can.
  bool ok = true;
  ok &= try_op([&] {
    zone_.set_power_limit_w(ConstraintId::long_term, default_long_w_);
  });
  ok &= try_op([&] {
    zone_.set_power_limit_w(ConstraintId::short_term, default_short_w_);
  });
  ok &= try_op([&] { zone_.set_time_window_us(0, default_long_window_us_); });
  ok &= try_op([&] { zone_.set_time_window_us(1, default_short_window_us_); });
  return ok;
}

void Agent::apply_cap(const DufpController::Decision& d) {
  if (d.tighten_short_term) {
    if (try_op([&] {
          zone_.set_power_limit_w(ConstraintId::short_term,
                                  zone_.power_limit_w(ConstraintId::long_term));
        })) {
      ++stats_.short_term_tightenings;
    }
  }

  switch (d.cap_action) {
    case CapAction::decrease:
    case CapAction::increase: {
      const bool ok = try_op([&] {
                        zone_.set_power_limit_w(ConstraintId::long_term,
                                                d.cap_long_w);
                      }) &
                      try_op([&] {
                        zone_.set_power_limit_w(ConstraintId::short_term,
                                                d.cap_short_w);
                      });
      if (ok) {
        (d.cap_action == CapAction::decrease ? stats_.cap_decreases
                                             : stats_.cap_increases)++;
      }
      break;
    }
    case CapAction::reset:
      if (restore_default_cap()) ++stats_.cap_resets;
      break;
    case CapAction::hold:
    case CapAction::none:
      break;
  }

  if (d.verify_uncore_reset) {
    // Interaction rule 2: after a joint reset the uncore may not have
    // reached its maximum (the cap's effect can still be visible); check
    // and re-pin once.
    try_op([&] {
      if (uncore_.current_mhz() < uncore_max_mhz_ - 1e-9) {
        ++stats_.uncore_reset_retries;
        uncore_.pin_mhz(uncore_max_mhz_);
      }
    });
  }

  // DUFP-F frequency management.
  if (pstate_ != nullptr) {
    if (d.pstate_release) {
      if (try_op([&] { pstate_->release(pstate_max_mhz_); }))
        ++stats_.pstate_releases;
    } else if (d.pstate_request_mhz > 0.0 &&
               d.pstate_request_mhz < pstate_max_mhz_) {
      if (try_op([&] { pstate_->set_mhz(d.pstate_request_mhz); }))
        ++stats_.pstate_pins;
    }
  }
}

void Agent::on_interval(SimTime now) {
  // Contract: never lets an exception escape.  A crashed agent would
  // strand the socket at whatever limits were last applied — strictly
  // worse than any degraded-but-safe behaviour.
  try {
    if (degraded_) {
      degraded_interval();
    } else {
      run_interval(now);
    }
  } catch (const std::exception&) {
    try {
      ++stats_.health.actuation_failures;
      ++consecutive_failures_;
      if (!degraded_ &&
          consecutive_failures_ >= policy_.watchdog_failure_threshold) {
        enter_degraded();
      }
    } catch (...) {
      // A degraded entry that itself faulted is retried next interval.
    }
  }
}

void Agent::run_interval(SimTime now) {
  interval_attempted_ = false;
  interval_failed_ = false;

  const auto maybe_sample = sampler_.sample(now);
  stats_.health.sample_read_failures = sampler_.health().read_failures;
  stats_.health.samples_rejected = sampler_.health().samples_rejected;
  if (!maybe_sample.has_value()) return;  // baseline / skipped interval
  const perfmon::Sample& sample = *maybe_sample;
  last_sample_ = sample;
  ++stats_.intervals;

  if (mode_ == PolicyMode::dufp || mode_ == PolicyMode::dufpf) {
    const auto d = dufp_->decide(sample);
    apply_uncore(d.uncore);
    apply_cap(d);
  } else if (mode_ == PolicyMode::dnpc) {
    const double before = dnpc_->cap_w();
    const auto d = dnpc_->decide(sample);
    if (d.changed) {
      const bool ok = try_op([&] {
                        zone_.set_power_limit_w(ConstraintId::long_term,
                                                d.cap_w);
                      }) &
                      try_op([&] {
                        zone_.set_power_limit_w(ConstraintId::short_term,
                                                d.cap_w);
                      });
      if (ok) (d.cap_w < before ? stats_.cap_decreases : stats_.cap_increases)++;
    }
  } else {
    const auto u = duf_tracker_->update(sample);
    apply_uncore(duf_->decide(u));
  }

  // Watchdog accounting: only intervals that actually touched hardware
  // move the consecutive-failure counter.  Pure holds leave it alone —
  // otherwise an EPERM outage interleaved with holds would never trip
  // the threshold.
  if (interval_failed_) {
    ++consecutive_failures_;
    if (consecutive_failures_ >= policy_.watchdog_failure_threshold) {
      enter_degraded();
    }
  } else if (interval_attempted_) {
    consecutive_failures_ = 0;
  }
}

void Agent::enter_degraded() {
  degraded_ = true;
  failsafe_applied_ = false;
  consecutive_failures_ = 0;
  ++stats_.health.degradations;
  current_backoff_ = policy_.watchdog_backoff_intervals;
  backoff_remaining_ = current_backoff_;
  apply_failsafe();
}

void Agent::apply_failsafe() {
  // Fail-safe OPEN: give the hardware back to its boot configuration so a
  // dead control path costs power savings, never performance.  Each
  // restoration is attempted independently — partial success still helps.
  bool ok = try_op([&] {
    uncore_.set_window_mhz(default_uncore_min_mhz_, uncore_max_mhz_);
  });
  ok &= restore_default_cap();
  if (pstate_ != nullptr) {
    ok &= try_op([&] { pstate_->release(pstate_max_mhz_); });
  }
  failsafe_applied_ = ok;
}

void Agent::degraded_interval() {
  ++stats_.health.intervals_degraded;
  if (!failsafe_applied_) {
    // The safe state never fully reached the hardware; keep trying — this
    // matters more than re-engagement.
    apply_failsafe();
  }
  if (backoff_remaining_ > 0) {
    --backoff_remaining_;
    return;
  }
  // Probe: one representative write through the full actuation path.
  const bool probe_ok = try_op([&] {
    zone_.set_power_limit_w(ConstraintId::long_term, default_long_w_);
  });
  if (probe_ok && failsafe_applied_) {
    reengage();
  } else {
    ++stats_.health.reengage_failures;
    current_backoff_ = std::min(current_backoff_ * 2,
                                policy_.watchdog_backoff_max_intervals);
    backoff_remaining_ = current_backoff_;
  }
}

void Agent::reengage() {
  degraded_ = false;
  consecutive_failures_ = 0;
  current_backoff_ = policy_.watchdog_backoff_intervals;
  ++stats_.health.reengagements;
  // Stale controller state (phase baselines, cooldowns, equilibrium
  // estimates) predates the outage; rebuild from the captured defaults
  // and re-baseline the sampler before the next decision.
  init_controllers();
  sampler_.reset();
}

}  // namespace dufp::core
