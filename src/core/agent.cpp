#include "core/agent.h"

#include <algorithm>

#include "common/expect.h"
#include "core/policy_registry.h"
#include "msr/device.h"

namespace dufp::core {

using powercap::ConstraintId;
using telemetry::ActuationOp;
using telemetry::EventKind;

namespace {
constexpr std::uint16_t op_code(ActuationOp op) {
  return static_cast<std::uint16_t>(op);
}

/// Legacy enum → registry name, with the historical contract that
/// PolicyMode::none never reaches an Agent.
std::string mode_policy_name(PolicyMode mode) {
  DUFP_EXPECT(mode != PolicyMode::none);  // none = no agent at all
  return to_string(mode);
}
}  // namespace

Agent::Agent(std::string_view policy_name, const PolicyConfig& policy,
             powercap::PackageZone& zone, powercap::UncoreControl& uncore,
             perfmon::IntervalSampler sampler,
             powercap::PstateControl* pstate,
             telemetry::SocketTelemetry* telem)
    // at() both validates the name and canonicalizes its spelling; the
    // entry's config_defaults land before any expectation reads policy_.
    : policy_name_(PolicyRegistry::instance().at(policy_name).name),
      policy_(
          PolicyRegistry::instance().apply_config_defaults(policy_name,
                                                           policy)),
      zone_(zone),
      uncore_(uncore),
      pstate_(pstate),
      sampler_(std::move(sampler)),
      default_long_w_(zone.power_limit_w(ConstraintId::long_term)),
      default_short_w_(zone.power_limit_w(ConstraintId::short_term)),
      default_long_window_us_(zone.time_window_us(0)),
      default_short_window_us_(zone.time_window_us(1)),
      uncore_max_mhz_(uncore.window_max_mhz()),
      default_uncore_min_mhz_(uncore.window_min_mhz()),
      telem_(telem),
      pkg_power_hist_({20, 40, 60, 80, 100, 120, 140, 160, 200}) {
  DUFP_EXPECT(policy_.max_actuation_attempts >= 1);
  DUFP_EXPECT(policy_.watchdog_failure_threshold >= 1);
  DUFP_EXPECT(policy_.watchdog_backoff_intervals >= 1);
  DUFP_EXPECT(policy_.watchdog_backoff_max_intervals >=
              policy_.watchdog_backoff_intervals);

  DUFP_EXPECT(!policy_.manage_core_frequency || pstate_ != nullptr);
  if (pstate_ != nullptr) {
    // The current request at startup is the performance governor's
    // maximum — remembered as the release target.
    pstate_max_mhz_ = pstate_->requested_mhz();
  }

  init_controllers();
  sampler_.set_telemetry(telem_);
  if (telem_ != nullptr) register_instruments();
}

Agent::Agent(PolicyMode mode, const PolicyConfig& policy,
             powercap::PackageZone& zone, powercap::UncoreControl& uncore,
             perfmon::IntervalSampler sampler,
             powercap::PstateControl* pstate,
             telemetry::SocketTelemetry* telem)
    : Agent(mode_policy_name(mode), policy, zone, uncore, std::move(sampler),
            pstate, telem) {}

void Agent::register_instruments() {
  auto& reg = telem_->registry();
  const telemetry::LabelSet labels = {
      {"socket", std::to_string(telem_->socket())},
      {"mode", policy_name_}};
  reg.attach("dufp_agent_intervals_total",
             "Control intervals that produced a decision", labels,
             intervals_ct_);
  reg.attach("dufp_agent_uncore_decreases_total",
             "Uncore window decreases applied", labels, uncore_decreases_);
  reg.attach("dufp_agent_uncore_increases_total",
             "Uncore window increases applied", labels, uncore_increases_);
  reg.attach("dufp_agent_uncore_resets_total",
             "Uncore window resets to the hardware maximum", labels,
             uncore_resets_);
  reg.attach("dufp_agent_cap_decreases_total", "Power-cap decreases applied",
             labels, cap_decreases_);
  reg.attach("dufp_agent_cap_increases_total", "Power-cap increases applied",
             labels, cap_increases_);
  reg.attach("dufp_agent_cap_resets_total",
             "Power caps restored to the hardware defaults", labels,
             cap_resets_);
  reg.attach("dufp_agent_short_term_tightenings_total",
             "Short-term constraint tightened onto the long-term cap", labels,
             short_term_tightenings_);
  reg.attach("dufp_agent_uncore_reset_retries_total",
             "Interaction rule 2 re-pins after a joint reset", labels,
             uncore_reset_retries_);
  reg.attach("dufp_agent_pstate_pins_total", "DUFP-F core frequency requests",
             labels, pstate_pins_);
  reg.attach("dufp_agent_pstate_releases_total",
             "DUFP-F core frequency releases", labels, pstate_releases_);
  reg.attach("dufp_agent_actuation_retries_total",
             "Failed hardware operations that were retried", labels,
             actuation_retries_);
  reg.attach("dufp_agent_actuation_failures_total",
             "Hardware operations dead after all retries", labels,
             actuation_failures_);
  reg.attach("dufp_agent_degradations_total", "Watchdog fail-safe entries",
             labels, degradations_);
  reg.attach("dufp_agent_reengage_failures_total",
             "Re-engagement probes that failed", labels, reengage_failures_);
  reg.attach("dufp_agent_reengagements_total",
             "Successful recoveries from the fail-safe state", labels,
             reengagements_);
  reg.attach("dufp_agent_intervals_degraded_total",
             "Intervals spent in the fail-safe state", labels,
             intervals_degraded_);
  reg.attach("dufp_agent_degraded", "1 while the watchdog holds the fail-safe",
             labels, degraded_gauge_);
  reg.attach("dufp_agent_pkg_power_watts",
             "Package power per accepted sample", labels, pkg_power_hist_);
}

AgentStats Agent::stats() const {
  AgentStats s;
  s.intervals = intervals_ct_.value();
  s.uncore_decreases = uncore_decreases_.value();
  s.uncore_increases = uncore_increases_.value();
  s.uncore_resets = uncore_resets_.value();
  s.cap_decreases = cap_decreases_.value();
  s.cap_increases = cap_increases_.value();
  s.cap_resets = cap_resets_.value();
  s.short_term_tightenings = short_term_tightenings_.value();
  s.uncore_reset_retries = uncore_reset_retries_.value();
  s.pstate_pins = pstate_pins_.value();
  s.pstate_releases = pstate_releases_.value();
  s.health.actuation_retries = actuation_retries_.value();
  s.health.actuation_failures = actuation_failures_.value();
  // Measurement health is the sampler's own; read it at the source
  // instead of mirroring it interval by interval.
  s.health.sample_read_failures = sampler_.health().read_failures;
  s.health.samples_rejected = sampler_.health().samples_rejected;
  s.health.degradations = degradations_.value();
  s.health.reengage_failures = reengage_failures_.value();
  s.health.reengagements = reengagements_.value();
  s.health.intervals_degraded = intervals_degraded_.value();
  return s;
}

void Agent::init_controllers() {
  // Built from the captured hardware defaults, not live reads: this also
  // runs on re-engagement, when the live window is the fail-safe one.
  PolicySetup setup;
  setup.config = policy_;
  setup.uncore.min_mhz = default_uncore_min_mhz_;
  setup.uncore.max_mhz = uncore_max_mhz_;
  setup.caps.default_long_w = default_long_w_;
  setup.caps.default_short_w = default_short_w_;
  setup.caps.min_cap_w = policy_.min_cap_w;
  policy_impl_ = PolicyRegistry::instance().create(policy_name_, setup);
}

template <typename F>
bool Agent::try_op(ActuationOp op, F&& f) {
  interval_attempted_ = true;
  for (int attempt = 0; attempt < policy_.max_actuation_attempts; ++attempt) {
    try {
      f();
      return true;
    } catch (const msr::MsrError&) {
      if (attempt + 1 < policy_.max_actuation_attempts) {
        actuation_retries_.inc();
        rec(EventKind::actuation_retry, op_code(op));
      }
    }
  }
  actuation_failures_.inc();
  rec(EventKind::actuation_failure, op_code(op));
  interval_failed_ = true;
  return false;
}

void Agent::apply_uncore(const DufController::Decision& d) {
  switch (d.action) {
    case UncoreAction::decrease:
      if (try_op(ActuationOp::uncore, [&] { uncore_.pin_mhz(d.target_mhz); })) {
        uncore_decreases_.inc();
        rec(EventKind::actuation, op_code(ActuationOp::uncore), d.target_mhz);
      }
      break;
    case UncoreAction::increase:
      if (try_op(ActuationOp::uncore, [&] { uncore_.pin_mhz(d.target_mhz); })) {
        uncore_increases_.inc();
        rec(EventKind::actuation, op_code(ActuationOp::uncore), d.target_mhz);
      }
      break;
    case UncoreAction::reset:
      if (try_op(ActuationOp::uncore,
                 [&] { uncore_.pin_mhz(uncore_max_mhz_); })) {
        uncore_resets_.inc();
        rec(EventKind::actuation, op_code(ActuationOp::uncore),
            uncore_max_mhz_);
      }
      break;
    case UncoreAction::hold:
    case UncoreAction::none:
      break;
  }
}

bool Agent::restore_default_cap() {
  // Four independent stores; attempt all of them even if one dies, so a
  // partially-broken path still restores as much of the default as it can.
  bool ok = true;
  ok &= try_op(ActuationOp::cap_long, [&] {
    zone_.set_power_limit_w(ConstraintId::long_term, default_long_w_);
  });
  ok &= try_op(ActuationOp::cap_short, [&] {
    zone_.set_power_limit_w(ConstraintId::short_term, default_short_w_);
  });
  ok &= try_op(ActuationOp::time_window,
               [&] { zone_.set_time_window_us(0, default_long_window_us_); });
  ok &= try_op(ActuationOp::time_window,
               [&] { zone_.set_time_window_us(1, default_short_window_us_); });
  return ok;
}

void Agent::apply_cap(const PolicyDecision& d) {
  if (d.tighten_short_term) {
    if (try_op(ActuationOp::cap_short, [&] {
          zone_.set_power_limit_w(ConstraintId::short_term,
                                  zone_.power_limit_w(ConstraintId::long_term));
        })) {
      short_term_tightenings_.inc();
      rec(EventKind::actuation, op_code(ActuationOp::cap_short),
          zone_.power_limit_w(ConstraintId::short_term));
    }
  }

  switch (d.cap_action) {
    case CapAction::decrease:
    case CapAction::increase: {
      const bool ok = try_op(ActuationOp::cap_long,
                             [&] {
                               zone_.set_power_limit_w(ConstraintId::long_term,
                                                       d.cap_long_w);
                             }) &
                      try_op(ActuationOp::cap_short, [&] {
                        zone_.set_power_limit_w(ConstraintId::short_term,
                                                d.cap_short_w);
                      });
      if (ok) {
        (d.cap_action == CapAction::decrease ? cap_decreases_
                                             : cap_increases_)
            .inc();
        rec(EventKind::actuation, op_code(ActuationOp::cap_long), d.cap_long_w,
            d.cap_short_w);
      }
      break;
    }
    case CapAction::reset:
      if (restore_default_cap()) {
        cap_resets_.inc();
        rec(EventKind::actuation, op_code(ActuationOp::cap_long),
            default_long_w_, default_short_w_);
      }
      break;
    case CapAction::hold:
    case CapAction::none:
      break;
  }

  if (d.verify_uncore_reset) {
    // Interaction rule 2: after a joint reset the uncore may not have
    // reached its maximum (the cap's effect can still be visible); check
    // and re-pin once.
    try_op(ActuationOp::uncore, [&] {
      if (uncore_.current_mhz() < uncore_max_mhz_ - 1e-9) {
        uncore_reset_retries_.inc();
        uncore_.pin_mhz(uncore_max_mhz_);
      }
    });
  }

  // Core-frequency management (DUFP-F and any policy whose effective
  // config sets manage_core_frequency).
  if (pstate_ != nullptr) {
    if (d.pstate_release) {
      if (try_op(ActuationOp::pstate,
                 [&] { pstate_->release(pstate_max_mhz_); })) {
        pstate_releases_.inc();
        rec(EventKind::actuation, op_code(ActuationOp::pstate),
            pstate_max_mhz_);
      }
    } else if (d.pstate_request_mhz > 0.0 &&
               d.pstate_request_mhz < pstate_max_mhz_) {
      if (try_op(ActuationOp::pstate,
                 [&] { pstate_->set_mhz(d.pstate_request_mhz); })) {
        pstate_pins_.inc();
        rec(EventKind::actuation, op_code(ActuationOp::pstate),
            d.pstate_request_mhz);
      }
    }
  }
}

void Agent::on_interval(SimTime now) {
  now_ = now;
  // Contract: never lets an exception escape.  A crashed agent would
  // strand the socket at whatever limits were last applied — strictly
  // worse than any degraded-but-safe behaviour.
  try {
    if (degraded_) {
      degraded_interval();
    } else {
      run_interval(now);
    }
  } catch (const std::exception&) {
    try {
      actuation_failures_.inc();
      ++consecutive_failures_;
      if (!degraded_ &&
          consecutive_failures_ >= policy_.watchdog_failure_threshold) {
        enter_degraded();
      }
    } catch (...) {
      // A degraded entry that itself faulted is retried next interval.
    }
  }
  degraded_gauge_.set(degraded_ ? 1.0 : 0.0);
}

void Agent::run_interval(SimTime now) {
  interval_attempted_ = false;
  interval_failed_ = false;

  const auto maybe_sample = sampler_.sample(now);
  if (!maybe_sample.has_value()) return;  // baseline / skipped interval
  const perfmon::Sample& sample = *maybe_sample;
  last_sample_ = sample;
  intervals_ct_.inc();
  pkg_power_hist_.observe(sample.pkg_power_w);

  // One path for every policy: observe, then actuate the intent in a
  // fixed field order (uncore first, then the cap group — identical to
  // the pre-redesign inline dispatch, which the goldens pin).
  const PolicyDecision d = policy_impl_->observe(sample);
  apply_uncore(d.uncore);
  apply_cap(d);

  // Lifecycle hooks fire after actuation, informational only.
  if (d.phase_change) policy_impl_->on_phase_change(sample);
  if (d.blame != ViolationBlame::none) policy_impl_->on_violation(d.blame);

  // Watchdog accounting: only intervals that actually touched hardware
  // move the consecutive-failure counter.  Pure holds leave it alone —
  // otherwise an EPERM outage interleaved with holds would never trip
  // the threshold.
  if (interval_failed_) {
    ++consecutive_failures_;
    if (consecutive_failures_ >= policy_.watchdog_failure_threshold) {
      enter_degraded();
    }
  } else if (interval_attempted_) {
    consecutive_failures_ = 0;
  }
}

void Agent::enter_degraded() {
  degraded_ = true;
  failsafe_applied_ = false;
  consecutive_failures_ = 0;
  degradations_.inc();
  // The policy instance will be rebuilt on re-engagement; tell it the
  // socket is going fail-safe first (last call it receives).
  if (policy_impl_ != nullptr) policy_impl_->on_watchdog_degraded();
  // Fail-open is the flight recorder's trigger: capture the socket's
  // recent history *before* the fail-safe restoration overwrites it.
  if (telem_ != nullptr) telem_->fail_open(now_);
  current_backoff_ = policy_.watchdog_backoff_intervals;
  backoff_remaining_ = current_backoff_;
  apply_failsafe();
}

void Agent::apply_failsafe() {
  // Fail-safe OPEN: give the hardware back to its boot configuration so a
  // dead control path costs power savings, never performance.  Each
  // restoration is attempted independently — partial success still helps.
  bool ok = try_op(ActuationOp::uncore, [&] {
    uncore_.set_window_mhz(default_uncore_min_mhz_, uncore_max_mhz_);
  });
  ok &= restore_default_cap();
  if (pstate_ != nullptr) {
    ok &= try_op(ActuationOp::pstate,
                 [&] { pstate_->release(pstate_max_mhz_); });
  }
  failsafe_applied_ = ok;
}

void Agent::degraded_interval() {
  intervals_degraded_.inc();
  if (!failsafe_applied_) {
    // The safe state never fully reached the hardware; keep trying — this
    // matters more than re-engagement.
    apply_failsafe();
  }
  if (backoff_remaining_ > 0) {
    --backoff_remaining_;
    return;
  }
  // Probe: one representative write through the full actuation path.
  rec(EventKind::reengage_probe, op_code(ActuationOp::probe), current_backoff_);
  const bool probe_ok = try_op(ActuationOp::probe, [&] {
    zone_.set_power_limit_w(ConstraintId::long_term, default_long_w_);
  });
  if (probe_ok && failsafe_applied_) {
    reengage();
  } else {
    reengage_failures_.inc();
    current_backoff_ = std::min(current_backoff_ * 2,
                                policy_.watchdog_backoff_max_intervals);
    backoff_remaining_ = current_backoff_;
  }
}

void Agent::reengage() {
  degraded_ = false;
  consecutive_failures_ = 0;
  current_backoff_ = policy_.watchdog_backoff_intervals;
  reengagements_.inc();
  rec(EventKind::reengaged);
  // Stale policy state (phase baselines, cooldowns, equilibrium
  // estimates) predates the outage; rebuild the policy instance from the
  // captured defaults and re-baseline the sampler before the next
  // decision.
  init_controllers();
  sampler_.reset();
}

}  // namespace dufp::core
