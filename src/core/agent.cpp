#include "core/agent.h"

#include "common/expect.h"

namespace dufp::core {

using powercap::ConstraintId;

Agent::Agent(PolicyMode mode, const PolicyConfig& policy,
             powercap::PackageZone& zone, powercap::UncoreControl& uncore,
             perfmon::IntervalSampler sampler,
             powercap::PstateControl* pstate)
    : mode_(mode),
      policy_(policy),
      zone_(zone),
      uncore_(uncore),
      pstate_(pstate),
      sampler_(std::move(sampler)),
      default_long_w_(zone.power_limit_w(ConstraintId::long_term)),
      default_short_w_(zone.power_limit_w(ConstraintId::short_term)),
      default_long_window_us_(zone.time_window_us(0)),
      default_short_window_us_(zone.time_window_us(1)),
      uncore_max_mhz_(uncore.window_max_mhz()) {
  DUFP_EXPECT(mode_ != PolicyMode::none);  // none = no agent at all
  if (mode_ == PolicyMode::dufpf) policy_.manage_core_frequency = true;

  UncoreLimits ul;
  ul.min_mhz = uncore.window_min_mhz();
  ul.max_mhz = uncore_max_mhz_;

  DUFP_EXPECT(!policy_.manage_core_frequency || pstate_ != nullptr);
  if (pstate_ != nullptr) {
    // The current request at startup is the performance governor's
    // maximum — remembered as the release target.
    pstate_max_mhz_ = pstate_->requested_mhz();
  }

  if (mode_ == PolicyMode::dufp || mode_ == PolicyMode::dufpf) {
    CapLimits cl;
    cl.default_long_w = default_long_w_;
    cl.default_short_w = default_short_w_;
    cl.min_cap_w = policy.min_cap_w;
    dufp_.emplace(policy_, ul, cl);
  } else if (mode_ == PolicyMode::dnpc) {
    DnpcLimits dl;
    dl.default_cap_w = default_long_w_;
    dl.min_cap_w = policy.min_cap_w;
    dnpc_.emplace(policy_, dl);
  } else {
    duf_tracker_.emplace(policy_);
    duf_.emplace(policy_, ul);
  }
}

void Agent::apply_uncore(const DufController::Decision& d) {
  switch (d.action) {
    case UncoreAction::decrease:
      ++stats_.uncore_decreases;
      uncore_.pin_mhz(d.target_mhz);
      break;
    case UncoreAction::increase:
      ++stats_.uncore_increases;
      uncore_.pin_mhz(d.target_mhz);
      break;
    case UncoreAction::reset:
      ++stats_.uncore_resets;
      uncore_.pin_mhz(uncore_max_mhz_);
      break;
    case UncoreAction::hold:
    case UncoreAction::none:
      break;
  }
}

void Agent::restore_default_cap() {
  zone_.set_power_limit_w(ConstraintId::long_term, default_long_w_);
  zone_.set_power_limit_w(ConstraintId::short_term, default_short_w_);
  zone_.set_time_window_us(0, default_long_window_us_);
  zone_.set_time_window_us(1, default_short_window_us_);
}

void Agent::apply_cap(const DufpController::Decision& d) {
  if (d.tighten_short_term) {
    ++stats_.short_term_tightenings;
    zone_.set_power_limit_w(ConstraintId::short_term,
                            zone_.power_limit_w(ConstraintId::long_term));
  }

  switch (d.cap_action) {
    case CapAction::decrease:
      ++stats_.cap_decreases;
      zone_.set_power_limit_w(ConstraintId::long_term, d.cap_long_w);
      zone_.set_power_limit_w(ConstraintId::short_term, d.cap_short_w);
      break;
    case CapAction::increase:
      ++stats_.cap_increases;
      zone_.set_power_limit_w(ConstraintId::long_term, d.cap_long_w);
      zone_.set_power_limit_w(ConstraintId::short_term, d.cap_short_w);
      break;
    case CapAction::reset:
      ++stats_.cap_resets;
      restore_default_cap();
      break;
    case CapAction::hold:
    case CapAction::none:
      break;
  }

  if (d.verify_uncore_reset) {
    // Interaction rule 2: after a joint reset the uncore may not have
    // reached its maximum (the cap's effect can still be visible); check
    // and re-pin once.
    if (uncore_.current_mhz() < uncore_max_mhz_ - 1e-9) {
      ++stats_.uncore_reset_retries;
      uncore_.pin_mhz(uncore_max_mhz_);
    }
  }

  // DUFP-F frequency management.
  if (pstate_ != nullptr) {
    if (d.pstate_release) {
      ++stats_.pstate_releases;
      pstate_->release(pstate_max_mhz_);
    } else if (d.pstate_request_mhz > 0.0 &&
               d.pstate_request_mhz < pstate_max_mhz_) {
      ++stats_.pstate_pins;
      pstate_->set_mhz(d.pstate_request_mhz);
    }
  }
}

void Agent::on_interval(SimTime now) {
  const auto maybe_sample = sampler_.sample(now);
  if (!maybe_sample.has_value()) return;  // baseline interval
  const perfmon::Sample& sample = *maybe_sample;
  last_sample_ = sample;
  ++stats_.intervals;

  if (mode_ == PolicyMode::dufp || mode_ == PolicyMode::dufpf) {
    const auto d = dufp_->decide(sample);
    apply_uncore(d.uncore);
    apply_cap(d);
  } else if (mode_ == PolicyMode::dnpc) {
    const double before = dnpc_->cap_w();
    const auto d = dnpc_->decide(sample);
    if (d.changed) {
      (d.cap_w < before ? stats_.cap_decreases : stats_.cap_increases)++;
      zone_.set_power_limit_w(powercap::ConstraintId::long_term, d.cap_w);
      zone_.set_power_limit_w(powercap::ConstraintId::short_term, d.cap_w);
    }
  } else {
    const auto u = duf_tracker_->update(sample);
    apply_uncore(duf_->decide(u));
  }
}

}  // namespace dufp::core
