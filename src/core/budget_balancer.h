// Machine-level power budget distribution across sockets — the
// GEOPM/DAPS family of the paper's related work (Sec. VI: "power budget
// allocation strategies across nodes ... complementary to DUFP").
//
// Given a machine-wide budget below the sum of the per-socket defaults,
// the balancer periodically redistributes it: each socket's share follows
// its *frequency depression* (how far its measured clock sits below the
// all-core maximum — read from APERF/MPERF), so throttled sockets receive
// budget that under-consuming sockets are not using.  Per-socket caps are
// written through the same powercap zones DUFP uses, which makes the
// balancer composable with it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "msr/device.h"
#include "powercap/zone.h"
#include "telemetry/telemetry.h"

namespace dufp::core {

struct BalancerConfig {
  /// Total budget across all sockets.  The default 0 is a sentinel:
  /// "derive from the machine", i.e. max_cap_w x socket-count — the
  /// uncapped machine — so a config built for any socket count starts
  /// valid instead of inheriting a 4-socket magic number.
  double machine_budget_w = 0.0;
  double min_cap_w = 65.0;   ///< per-socket floor
  double max_cap_w = 125.0;  ///< per-socket ceiling (hw default)
  /// Exponential smoothing of the allocation (0 = frozen, 1 = jumpy).
  double smoothing = 0.5;
  /// Extra weight floor so an idle socket keeps a live allocation.
  double base_weight = 0.1;

  /// `machine_budget_w` with the sentinel resolved for `sockets`.
  double resolved_budget_w(std::size_t sockets) const;

  /// Every problem found for a machine of `sockets` sockets (empty =
  /// valid), house aggregated-error style: min/max caps ordered, budget
  /// >= sockets x min_cap_w, smoothing in (0, 1], base_weight >= 0.
  std::vector<std::string> validate(std::size_t sockets) const;
};

class BudgetBalancer {
 public:
  /// `zones` and `msrs` are index-aligned per socket (non-owning; must
  /// outlive the balancer).  `core_max_mhz` / `core_base_mhz` describe
  /// the machine (frequency depression is measured against the former).
  BudgetBalancer(const BalancerConfig& config,
                 std::vector<powercap::PackageZone*> zones,
                 std::vector<const msr::MsrDevice*> msrs,
                 double core_max_mhz, double core_base_mhz);

  /// One balancing interval: measure per-socket clocks, recompute the
  /// split, program the caps.  The first call only establishes counter
  /// baselines.
  void on_interval(SimTime now);

  /// Current allocation (watts per socket).
  const std::vector<double>& allocation_w() const { return allocation_; }

  /// Rebudgets the machine mid-run (fleet-level reallocation moves the
  /// node budget between balancing intervals).  Existing allocations are
  /// kept and drift toward the new split under the usual smoothing.
  /// Throws std::invalid_argument when the new budget is below
  /// sockets x min_cap_w.
  void set_machine_budget_w(double budget_w);

  double machine_budget_w() const { return config_.machine_budget_w; }

  std::uint64_t intervals() const { return intervals_ct_.value(); }

  /// Attach the machine's telemetry plane (nullptr = null sink, the
  /// default): registers the interval counter and a per-socket allocation
  /// gauge, and records a balancer_realloc event on each socket's
  /// recorder per balancing interval.
  void set_telemetry(telemetry::Telemetry* telem);

 private:
  BalancerConfig config_;
  std::vector<powercap::PackageZone*> zones_;
  std::vector<const msr::MsrDevice*> msrs_;
  double core_max_mhz_;
  double core_base_mhz_;

  bool have_baseline_ = false;
  std::vector<std::uint64_t> last_aperf_;
  std::vector<std::uint64_t> last_mperf_;
  std::vector<double> allocation_;
  telemetry::Counter intervals_ct_;
  telemetry::Telemetry* telem_ = nullptr;  ///< nullable
  std::vector<telemetry::Gauge> alloc_gauges_;
};

}  // namespace dufp::core
