// String-keyed policy registry: the single authority on which control
// policies exist, what they are called, and how to build one.  Every
// layer resolves names through here — Agent construction, RunConfig
// validation, GridSpec parsing, DUFP_POLICIES env lists and the
// tournament bench — so adding a policy is one registration and zero
// switch statements (see DESIGN.md, "Adding a policy in under 50 lines").
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/policy_api.h"

namespace dufp::core {

class PolicyRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Policy>(const PolicySetup&)>;
  using ConfigHook = std::function<void(PolicyConfig&)>;

  struct Entry {
    /// Canonical name: display form, telemetry label, CSV cell and wire
    /// format all in one.  Lookups are case-insensitive.
    std::string name;
    std::string description;
    /// Alternate spellings ("dufp-f" vs "dufpf"); matched like the name.
    std::vector<std::string> aliases;
    Factory factory;
    /// Optional per-policy PolicyConfig overrides, applied before the
    /// factory runs (e.g. DUFP-F forces manage_core_frequency).  Callers
    /// that pre-build hardware for the agent (the runner's PstateControl)
    /// apply the same hook via apply_config_defaults.
    ConfigHook config_defaults;
  };

  /// The process-wide registry, preloaded with every built-in policy in a
  /// fixed order: the four paper controllers (DUF, DUFP, DUFP-F, DNPC)
  /// first, then the zoo.  Immutable after first use by convention —
  /// tests exercising add() build their own local instances.
  static PolicyRegistry& instance();

  PolicyRegistry() = default;

  /// Registers a policy.  Throws std::invalid_argument when the name or
  /// an alias (case-insensitively) collides with an existing entry, or
  /// when the entry has no name or no factory.
  void add(Entry entry);

  /// Case-insensitive lookup by name or alias; nullptr when unknown.
  const Entry* find(std::string_view name) const;
  bool contains(std::string_view name) const { return find(name) != nullptr; }

  /// Like find(), but throws std::invalid_argument listing every
  /// registered name when the lookup fails.
  const Entry& at(std::string_view name) const;

  /// Canonical names in registration order.
  std::vector<std::string> names() const;

  /// "DUF, DUFP, ..." — the list embedded in lookup error messages.
  std::string known_names() const;

  /// `config` with the named policy's config_defaults hook applied (a
  /// no-op for policies without one).  Throws like at() on unknown names.
  PolicyConfig apply_config_defaults(std::string_view name,
                                     PolicyConfig config) const;

  /// Builds a policy instance.  Throws like at() on unknown names.  Does
  /// NOT apply config_defaults — the Agent does that once, before
  /// capturing hardware state, so the factory sees the effective config.
  std::unique_ptr<Policy> create(std::string_view name,
                                 const PolicySetup& setup) const;

 private:
  std::vector<Entry> entries_;
};

/// Built-in registrations, split by provenance; instance() calls both.
/// Exposed so tests can populate a fresh local registry the same way.
void register_legacy_policies(PolicyRegistry& registry);
void register_zoo_policies(PolicyRegistry& registry);

}  // namespace dufp::core
