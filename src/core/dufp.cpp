#include "core/dufp.h"

#include <algorithm>

#include "common/expect.h"

namespace dufp::core {

DufpController::DufpController(const PolicyConfig& policy,
                               const UncoreLimits& uncore,
                               const CapLimits& caps)
    : policy_(policy),
      caps_(caps),
      tracker_(policy),
      duf_(policy, uncore),
      cap_long_w_(caps.default_long_w),
      cap_short_w_(caps.default_short_w) {
  DUFP_EXPECT(caps.min_cap_w > 0.0);
  DUFP_EXPECT(caps.min_cap_w < caps.default_long_w);
  DUFP_EXPECT(caps.default_long_w <= caps.default_short_w);
  DUFP_EXPECT(policy.cap_step_w > 0.0);
}

void DufpController::apply_reset_state(bool violation) {
  cap_long_w_ = caps_.default_long_w;
  cap_short_w_ = caps_.default_short_w;
  // Only violation-driven resets carry a probing cooldown; a reset caused
  // by a phase change must not stop the controller from immediately
  // exploring the new phase (FT's transposes last ~9 intervals — a
  // cooldown would consume most of the capping opportunity).
  cooldown_ = violation ? policy_.cap_cooldown_intervals : 0;
  pending_short_check_ = true;
  since_decrease_ = 1'000'000;
  consecutive_beyond_ = 0;
}

void DufpController::apply_decrease(Decision& d) {
  const double next =
      std::max(caps_.min_cap_w, cap_long_w_ - policy_.cap_step_w);
  if (next >= cap_long_w_ - 1e-9) {
    d.cap_action = CapAction::hold;  // already at the floor
    return;
  }
  cap_long_w_ = next;
  // Decreasing sets both constraints to the same value (Sec. III).
  cap_short_w_ = next;
  d.cap_action = CapAction::decrease;
  d.cap_long_w = cap_long_w_;
  d.cap_short_w = cap_short_w_;
  since_decrease_ = 0;
}

void DufpController::apply_increase(Decision& d) {
  const double next =
      std::min(caps_.default_long_w, cap_long_w_ + policy_.cap_step_w);
  if (next >= caps_.default_long_w - 1e-9) {
    // Reaching the default long-term value turns the increase into a full
    // reset (Sec. III).
    apply_reset_state(/*violation=*/true);
    d.cap_action = CapAction::reset;
    d.cap_reset = true;
    return;
  }
  cap_long_w_ = next;
  cap_short_w_ = next;
  d.cap_action = CapAction::increase;
  d.cap_long_w = cap_long_w_;
  d.cap_short_w = cap_short_w_;
  cooldown_ = policy_.cap_cooldown_intervals;
}

void DufpController::plan_pstate(Decision& d,
                                 const perfmon::Sample& sample) const {
  if (!policy_.manage_core_frequency) return;
  // Any reset or increase hands frequency control back to the hardware;
  // while the cap is active and the controller is steady, pin the clock
  // one step above the observed equilibrium so RAPL stops hunting.
  if (d.cap_action == CapAction::reset ||
      d.cap_action == CapAction::increase) {
    d.pstate_release = true;
    return;
  }
  const bool cap_active = cap_long_w_ < caps_.default_long_w - 1e-9;
  if (cap_active && d.cap_action == CapAction::hold &&
      sample.core_mhz > 0.0) {
    d.pstate_request_mhz = sample.core_mhz + policy_.pstate_headroom_mhz;
  }
}

DufpController::Decision DufpController::decide(
    const perfmon::Sample& sample) {
  Decision d;

  // Interaction rule 1 needs to know what the uncore controller did LAST
  // interval, so capture the flag before this interval's uncore decision.
  const bool uncore_increased_last = duf_.last_action_was_increase();

  const PhaseTracker::Update u = tracker_.update(sample);
  d.uncore = duf_.decide(u);

  // 1. Post-reset short-term adjustment.
  if (pending_short_check_) {
    pending_short_check_ = false;
    if (sample.pkg_power_w < cap_long_w_) {
      cap_short_w_ = cap_long_w_;
      d.tighten_short_term = true;
    }
  }

  // 2. Overshoot guard (Sec. IV-D): consumed power above the programmed
  //    cap means the cap is not being honoured — reset it.  The margin
  //    absorbs the sub-interval settling transient of a legitimate
  //    decrease (the firmware re-converges within a few milliseconds, so
  //    the 200 ms interval average overshoots by well under the margin).
  if (sample.pkg_power_w > cap_long_w_ + policy_.overshoot_margin_w) {
    apply_reset_state(/*violation=*/true);
    d.cap_action = CapAction::reset;
    d.cap_reset = true;
    prev_flops_ = sample.flops_rate;
    plan_pstate(d, sample);
    return d;
  }

  // 3. Phase change: reset the cap; interaction rule 2 asks the agent to
  //    verify the uncore really reached its maximum.
  if (u.phase_change) {
    apply_reset_state(/*violation=*/false);
    d.phase_change = true;
    d.cap_action = CapAction::reset;
    d.cap_reset = true;
    d.verify_uncore_reset = true;
    prev_flops_ = sample.flops_rate;
    plan_pstate(d, sample);
    return d;
  }

  // 4. Highly memory-intensive fast path: capping is free (Sec. II-A),
  //    so keep decreasing regardless of the FLOPS comparison.
  if (u.highly_memory) {
    apply_decrease(d);
    prev_flops_ = sample.flops_rate;
    plan_pstate(d, sample);
    return d;
  }

  const double tol = policy_.tolerated_slowdown;
  const double eps = policy_.epsilon;

  // 5. Tolerance comparison.  The cap path only consults bandwidth on
  //    highly CPU-intensive phases (Sec. III) — unlike the uncore path,
  //    which guards bandwidth everywhere.
  const ToleranceZone flops_zone = classify_drop(u.flops_drop, tol, eps);
  const bool bw_violated =
      u.highly_cpu &&
      classify_drop(u.bw_drop, tol, eps) == ToleranceZone::beyond;

  if (since_decrease_ < 1'000'000) ++since_decrease_;
  const bool beyond = flops_zone == ToleranceZone::beyond || bw_violated;
  consecutive_beyond_ = beyond ? consecutive_beyond_ + 1 : 0;

  if (beyond) {
    // Beyond the tolerated slowdown.  Highly CPU-intensive phases reset
    // outright (any sustained violation there is expensive); others step
    // the cap back up — but only when this controller's own probe
    // plausibly caused the drop, or the violation persists (violation
    // attribution, see PolicyConfig).
    if (u.highly_cpu) {
      apply_reset_state(/*violation=*/true);
      d.cap_action = CapAction::reset;
      d.cap_reset = true;
    } else if (since_decrease_ <= policy_.attribution_window_intervals ||
               consecutive_beyond_ >=
                   policy_.persistent_violation_intervals) {
      apply_increase(d);
    } else {
      d.cap_action = CapAction::hold;
    }
  } else if (flops_zone == ToleranceZone::boundary) {
    // Equivalent to the slowdown within the measurement error: steady.
    d.cap_action = CapAction::hold;
  } else if (uncore_increased_last && prev_flops_.has_value() &&
             sample.flops_rate <=
                 *prev_flops_ * (1.0 + policy_.improve_epsilon)) {
    // 6. Interaction rule 1: the uncore increase did not improve
    //    performance, so the cap is the limiting actuator — raise it.
    apply_increase(d);
  } else if (cooldown_ > 0) {
    --cooldown_;
    d.cap_action = CapAction::hold;
  } else {
    apply_decrease(d);
  }

  prev_flops_ = sample.flops_rate;
  plan_pstate(d, sample);
  return d;
}

}  // namespace dufp::core
