// DUFP: the paper's contribution (Sec. III, Fig. 2) — DUF's uncore
// algorithm plus dynamic package power capping under the same
// user-defined tolerated slowdown.
//
// Per interval, in order:
//   1. post-reset short-term check: one interval after a reset, if
//      consumed power is already below the cap, pull the short-term
//      constraint down to the long-term value;
//   2. overshoot guard: consumed power persistently above the long-term
//      cap (the cap "didn't take") resets the cap;
//   3. phase change (OI class flip or FLOPS doubling): reset the cap, and
//      re-reset the uncore if it failed to reach max (interaction rule 2);
//   4. highly-memory phases (OI < 0.02): decrease the cap regardless of
//      FLOPS — such phases tolerate low caps for free (Sec. II-A);
//   5. tolerance comparison against the phase max: within → decrease
//      (both constraints to the same value); at the boundary within the
//      measurement error → hold; beyond → increase, or *reset* for highly
//      CPU-intensive phases (OI > 100), which also reset when bandwidth
//      drops beyond the tolerance;
//   6. interaction rule 1: an uncore increase that did not improve
//      FLOPS/s makes DUFP raise the cap instead.
//
// A cap increase that brings the long-term constraint back to its default
// restores the full hardware default (both constraints and windows).
#pragma once

#include <optional>

#include "core/duf.h"
#include "core/policy.h"
#include "core/policy_api.h"
#include "core/tracker.h"
#include "perfmon/sampler.h"

namespace dufp::core {

class DufpController {
 public:
  DufpController(const PolicyConfig& policy, const UncoreLimits& uncore,
                 const CapLimits& caps);

  /// The controller's decision IS the generic policy intent — PolicyDecision
  /// was shaped after this controller's output (see policy_api.h), so the
  /// DUFP policy adapter passes it through untouched.
  using Decision = PolicyDecision;

  /// One control interval.
  Decision decide(const perfmon::Sample& sample);

  const DufController& duf() const { return duf_; }
  const PhaseTracker& tracker() const { return tracker_; }
  double cap_long_w() const { return cap_long_w_; }
  double cap_short_w() const { return cap_short_w_; }

 private:
  void plan_pstate(Decision& d, const perfmon::Sample& sample) const;
  void apply_reset_state(bool violation);
  void apply_decrease(Decision& d);
  void apply_increase(Decision& d);

  PolicyConfig policy_;
  CapLimits caps_;
  PhaseTracker tracker_;
  DufController duf_;

  // Controller's view of the programmed constraints.
  double cap_long_w_;
  double cap_short_w_;

  int cooldown_ = 0;
  // Startup behaves like the instant after a reset: the next interval
  // checks consumption against the cap and tightens the short-term
  // constraint if there is headroom (Sec. III).
  bool pending_short_check_ = true;
  std::optional<double> prev_flops_;
  int since_decrease_ = 1'000'000;  ///< intervals since my last decrease
  int consecutive_beyond_ = 0;
};

}  // namespace dufp::core
