// The pluggable policy seam: a controller is an object that observes one
// measurement interval and returns an actuation *intent* (PolicyDecision);
// the per-socket Agent owns the hardware paths (retries, watchdog,
// telemetry) and is the only thing that actuates.  Policies therefore
// never touch a Zone or MSR directly, which is what lets the Agent give
// every policy — the paper's controllers and the zoo alike — identical
// robustness machinery for free.
//
// The decision struct is deliberately the superset the legacy controllers
// already produced (DufpController::Decision is an alias of it), so the
// four paper policies port onto this interface with byte-identical
// actuation sequences; tests/perf/golden_policies_test.cpp pins that.
#pragma once

#include <string_view>

#include "core/duf.h"
#include "perfmon/sampler.h"

namespace dufp::core {

enum class CapAction { none, hold, decrease, increase, reset };

struct CapLimits {
  double default_long_w = 125.0;
  double default_short_w = 150.0;
  double min_cap_w = 65.0;
};

/// Which actuator a policy blames for a tolerance violation.  Purely
/// informational: the Agent forwards it to Policy::on_violation and never
/// acts on it, so legacy policies (which leave it `none`) are unaffected.
enum class ViolationBlame { none, uncore, cap, unattributed };

/// One interval's actuation intent.  Everything defaults to "touch
/// nothing": a default-constructed decision is a no-op, and the Agent
/// executes the fields in a fixed order (uncore, short-term tighten, cap,
/// uncore-reset verification, P-state) regardless of which policy
/// produced them.
struct PolicyDecision {
  DufController::Decision uncore;

  CapAction cap_action = CapAction::none;
  /// Valid for decrease / increase: the constraint values to program.
  double cap_long_w = 0.0;
  double cap_short_w = 0.0;
  /// reset: restore hardware defaults (both constraints and windows).
  bool cap_reset = false;
  /// Program short_term := long_term (DUFP step 1).
  bool tighten_short_term = false;
  /// Interaction rule 2: verify the uncore reached max and re-pin it.
  bool verify_uncore_reset = false;

  /// Explicit P-state request in MHz (0 = leave as is), or a release back
  /// to the maximum.  Ignored unless the Agent holds a PstateControl
  /// (policy config manage_core_frequency).
  double pstate_request_mhz = 0.0;
  bool pstate_release = false;

  // -- informational outputs (drive the hook calls below) -------------------
  bool phase_change = false;               ///< a phase boundary was detected
  ViolationBlame blame = ViolationBlame::none;
};

/// Everything a policy factory gets to build an instance: the effective
/// PolicyConfig (per-policy overrides already applied) and the hardware
/// envelope captured by the Agent at construction — uncore window range
/// and the default / minimum power caps to restore and floor against.
struct PolicySetup {
  PolicyConfig config;
  UncoreLimits uncore;
  CapLimits caps;
};

/// A per-socket control policy.  Lifecycle: constructed from a
/// PolicySetup by its registry factory; observe() called once per control
/// interval with the accepted sample; destroyed and rebuilt from the same
/// setup when the Agent's watchdog re-engages after an outage (stale
/// phase baselines must not survive a degradation).
class Policy {
 public:
  virtual ~Policy() = default;

  /// Canonical registry name ("DUF", "cuttlefish", ...); stable across
  /// the process, used for telemetry labels, CSV rows and wire formats.
  virtual std::string_view name() const = 0;

  /// One control interval: digest the sample, return the actuation
  /// intent.  Must not throw and must not touch hardware.
  virtual PolicyDecision observe(const perfmon::Sample& sample) = 0;

  // -- hooks -----------------------------------------------------------------
  // Called by the Agent *after* actuating a decision, in this order.
  // Defaults are no-ops so simple policies ignore the lifecycle entirely.

  /// The decision it just returned had phase_change set.
  virtual void on_phase_change(const perfmon::Sample& /*sample*/) {}

  /// The decision it just returned blamed an actuator for a violation.
  virtual void on_violation(ViolationBlame /*blame*/) {}

  /// The watchdog is about to degrade the socket to the fail-safe state;
  /// after re-engagement the policy is rebuilt from scratch, so this is
  /// the last call this instance receives.
  virtual void on_watchdog_degraded() {}
};

}  // namespace dufp::core
