// The four paper controllers behind the Policy interface.  These are
// thin adapters over the unchanged DUF / DUFP / DNPC controller classes:
// each observe() reproduces the exact decision path the pre-redesign
// Agent ran inline, so for a given sample stream the actuation sequence —
// and therefore every golden byte — is identical (pinned by
// tests/perf/golden_policies_test.cpp).
#include <memory>

#include "core/dnpc.h"
#include "core/dufp.h"
#include "core/policy_registry.h"
#include "core/tracker.h"

namespace dufp::core {
namespace {

/// DUF: uncore-only control; a shared tracker feeds the controller and
/// the cap is never touched (every cap field stays at its no-op default).
class DufPolicy final : public Policy {
 public:
  explicit DufPolicy(const PolicySetup& s)
      : tracker_(s.config), duf_(s.config, s.uncore) {}

  std::string_view name() const override { return "DUF"; }

  PolicyDecision observe(const perfmon::Sample& sample) override {
    const auto u = tracker_.update(sample);
    PolicyDecision d;
    d.uncore = duf_.decide(u);
    d.phase_change = u.phase_change;
    return d;
  }

 private:
  PhaseTracker tracker_;
  DufController duf_;
};

/// DUFP and DUFP-F: the full dual-knob controller.  Its Decision type is
/// an alias of PolicyDecision, so observe() is a pass-through.
class DufpPolicy final : public Policy {
 public:
  DufpPolicy(const PolicySetup& s, std::string_view name)
      : name_(name), dufp_(s.config, s.uncore, s.caps) {}

  std::string_view name() const override { return name_; }

  PolicyDecision observe(const perfmon::Sample& sample) override {
    return dufp_.decide(sample);
  }

 private:
  std::string_view name_;
  DufpController dufp_;
};

/// DNPC: the linear frequency-model baseline.  The controller reports a
/// new cap value; the adapter turns it into the same
/// long-then-short-constraint programming (direction derived from the
/// previous cap) the pre-redesign Agent performed inline.
class DnpcPolicy final : public Policy {
 public:
  explicit DnpcPolicy(const PolicySetup& s)
      : dnpc_(s.config, DnpcLimits{s.caps.default_long_w,
                                   s.config.min_cap_w,
                                   /*max_core_mhz=*/0.0}) {}

  std::string_view name() const override { return "DNPC"; }

  PolicyDecision observe(const perfmon::Sample& sample) override {
    const double before = dnpc_.cap_w();
    const auto r = dnpc_.decide(sample);
    PolicyDecision d;
    if (r.changed) {
      d.cap_action =
          r.cap_w < before ? CapAction::decrease : CapAction::increase;
      d.cap_long_w = r.cap_w;
      d.cap_short_w = r.cap_w;
    }
    return d;
  }

 private:
  DnpcController dnpc_;
};

}  // namespace

void register_legacy_policies(PolicyRegistry& registry) {
  registry.add({
      "DUF",
      "dynamic uncore frequency scaling only (the paper's prior tool)",
      {"duf"},
      [](const PolicySetup& s) { return std::make_unique<DufPolicy>(s); },
      nullptr,
  });
  registry.add({
      "DUFP",
      "uncore scaling + dynamic power capping (the paper's contribution)",
      {"dufp"},
      [](const PolicySetup& s) {
        return std::make_unique<DufpPolicy>(s, "DUFP");
      },
      nullptr,
  });
  registry.add({
      "DUFP-F",
      "DUFP + direct core-frequency management (Sec. VII extension)",
      {"dufpf", "dufp-f"},
      [](const PolicySetup& s) {
        return std::make_unique<DufpPolicy>(s, "DUFP-F");
      },
      // The F variant is DUFP with the P-state path switched on; forcing
      // the flag here replaces the enum special-cases the Agent and the
      // runner used to carry.
      [](PolicyConfig& c) { c.manage_core_frequency = true; },
  });
  registry.add({
      "DNPC",
      "frequency-model dynamic capping baseline (Sec. VI related work)",
      {"dnpc"},
      [](const PolicySetup& s) { return std::make_unique<DnpcPolicy>(s); },
      nullptr,
  });
}

}  // namespace dufp::core
