// Tunables of the DUF / DUFP control policies.  Defaults are the paper's
// values: 200 ms interval (Sec. IV-D), 5 W cap step and 100 MHz uncore
// step (Sec. IV-A), 65 W minimum cap (Sec. IV-A), OI thresholds 0.02 /
// 1 / 100 (Sec. III).
#pragma once

#include <string>
#include <string_view>

#include "common/clock.h"

namespace dufp::core {

/// The policy under which a run executes.  One enum for every layer:
/// `none` is a harness-level value (the paper's baseline — no agent is
/// instantiated); the others select the per-socket controller an Agent
/// runs.
enum class PolicyMode {
  none,   ///< default architecture configuration (harness-level baseline)
  duf,    ///< dynamic uncore frequency scaling only
  dufp,   ///< uncore + dynamic power capping (the paper's contribution)
  dufpf,  ///< DUFP + direct core-frequency management (Sec. VII extension)
  dnpc,   ///< frequency-model dynamic capping baseline (Sec. VI related work)
};

/// Display name used in figures: "default", "DUF", "DUFP", "DUFP-F",
/// "DNPC".
std::string to_string(PolicyMode m);

/// Parses a mode from its display name or enum spelling
/// (case-insensitive: "default"/"none", "duf", "dufp", "dufp-f"/"dufpf",
/// "dnpc").  Throws std::invalid_argument on unknown names.
PolicyMode policy_mode_from_string(std::string_view name);

struct PolicyConfig {
  /// User-specified tolerated slowdown (0.0 .. 1.0); the paper evaluates
  /// {0, 0.05, 0.10, 0.20}.
  double tolerated_slowdown = 0.05;

  /// Control / measurement interval.
  SimDuration interval = SimTime::from_millis(200);

  /// Measurement-error band: a FLOPS drop within `epsilon` of the
  /// tolerance boundary counts as "equivalent to the slowdown" and holds
  /// the actuator steady (Sec. III).
  double epsilon = 0.015;

  // -- operational-intensity phase classification (Sec. III) -------------------
  double oi_memory_class = 1.0;   ///< below: memory-intensive phase
  double oi_highly_memory = 0.02; ///< below: cap decreases are free
  double oi_highly_cpu = 100.0;   ///< above: violations reset the cap

  /// A FLOPS/s increase by this factor within a phase is a phase change.
  double flops_double_factor = 2.0;

  /// Bandwidth below this floor is measurement noise on an idle memory
  /// system (EP moves ~0.2 GB/s); relative "drops" of such traffic carry
  /// no information and are ignored by the bandwidth guards.
  double bw_floor_bytes_per_s = 2e9;

  // -- actuator steps and bounds ------------------------------------------------
  double cap_step_w = 5.0;
  double min_cap_w = 65.0;
  double uncore_step_mhz = 100.0;

  /// After backing an actuator off (violation), suppress further decreases
  /// of that actuator for this many intervals — damps the
  /// probe/violate/retreat oscillation around the tolerance boundary.
  /// Uncore steps move performance much further per step (100 MHz can
  /// cost 3-5 % on a bandwidth-bound phase) than 5 W cap steps, so the
  /// uncore re-probes more cautiously.
  int uncore_cooldown_intervals = 10;
  int cap_cooldown_intervals = 4;

  /// Consumed power above the long-term cap by more than this margin
  /// triggers a cap reset (Sec. IV-D: a fresh cap takes time to apply; a
  /// persistent overshoot means the cap is not being honoured).
  double overshoot_margin_w = 3.0;

  /// Interaction rule 1 (Sec. III): an uncore increase that failed to
  /// improve FLOPS by at least this relative amount makes DUFP raise the
  /// power cap instead.
  double improve_epsilon = 0.005;

  /// Violation attribution: an actuator backs off on a violation only if
  /// it moved down within this many intervals (its own probe plausibly
  /// caused the drop) — otherwise the *other* actuator is the limiter and
  /// backing off would sacrifice savings for nothing.  A violation that
  /// persists for `persistent_violation_intervals` consecutive intervals
  /// forces a back-off regardless (covers slow workload drift that never
  /// trips the phase-change detector).
  int attribution_window_intervals = 2;
  int persistent_violation_intervals = 4;

  // -- robustness / watchdog ----------------------------------------------
  /// Hardware-facing operations (MSR writes behind the zone / uncore /
  /// pstate controls) are attempted up to this many times per interval.
  /// Retries are immediate — at a 200 ms control period the interval
  /// itself is the backoff clock for transient EIO.
  int max_actuation_attempts = 3;

  /// Consecutive intervals whose actuation still failed after all retries
  /// before the watchdog gives up and degrades the socket: fail-safe open
  /// (uncore window restored to the hardware default, power limits and
  /// windows back to their boot values, any pinned P-state released), so a
  /// broken MSR path costs power savings, never performance or stability.
  int watchdog_failure_threshold = 3;

  /// Once degraded, wait this many intervals before probing the hardware
  /// again; each failed re-engagement doubles the wait, capped at
  /// `watchdog_backoff_max_intervals` (exponential backoff keeps a dead
  /// MSR path from being hammered 5x per second forever).
  int watchdog_backoff_intervals = 5;
  int watchdog_backoff_max_intervals = 80;

  /// DUFP-F extension (the paper's Sec. VII future work): when the cap is
  /// active and the workload steady, pin the core clock via IA32_PERF_CTL
  /// just above the observed equilibrium instead of letting RAPL's
  /// internal DVFS hunt around it.  Off by default — plain DUFP is the
  /// paper's tool.
  bool manage_core_frequency = false;
  /// Headroom above the observed clock when pinning (one P-state).
  double pstate_headroom_mhz = 100.0;
};

/// Where a measured performance drop sits relative to the tolerance,
/// accounting for the measurement-error band:
///   within   — clearly inside the budget: keep lowering;
///   boundary — "equivalent to the slowdown" (Sec. III): hold steady;
///   beyond   — violated: back off / reset.
/// At small tolerances the bands are floored by epsilon so measurement
/// noise alone can neither trigger back-offs nor block free decreases.
enum class ToleranceZone { within, boundary, beyond };

inline ToleranceZone classify_drop(double drop, double tol, double eps) {
  const double decrease_limit = tol - eps > eps * 0.5 ? tol - eps : eps * 0.5;
  const double violate_limit = tol > eps ? tol : eps;
  if (drop > violate_limit) return ToleranceZone::beyond;
  if (drop > decrease_limit) return ToleranceZone::boundary;
  return ToleranceZone::within;
}

}  // namespace dufp::core
