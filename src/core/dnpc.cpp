#include "core/dnpc.h"

#include <algorithm>

#include "common/expect.h"

namespace dufp::core {

DnpcController::DnpcController(const PolicyConfig& policy,
                               const DnpcLimits& limits)
    : policy_(policy),
      limits_(limits),
      cap_w_(limits.default_cap_w),
      observed_max_mhz_(limits.max_core_mhz) {
  DUFP_EXPECT(limits.min_cap_w > 0.0);
  DUFP_EXPECT(limits.min_cap_w < limits.default_cap_w);
  DUFP_EXPECT(limits.max_core_mhz >= 0.0);
}

double DnpcController::estimated_degradation(double core_mhz) const {
  if (core_mhz <= 0.0 || observed_max_mhz_ <= 0.0) return 0.0;
  const double ratio = std::min(core_mhz / observed_max_mhz_, 1.0);
  return 1.0 - ratio;
}

DnpcController::Decision DnpcController::decide(
    const perfmon::Sample& sample) {
  Decision d;
  observed_max_mhz_ = std::max(observed_max_mhz_, sample.core_mhz);
  const double est = estimated_degradation(sample.core_mhz);
  const double tol = policy_.tolerated_slowdown;
  const double eps = policy_.epsilon;

  double next = cap_w_;
  if (est > tol + eps) {
    // Predicted to exceed the limit next period: raise the cap.
    next = std::min(limits_.default_cap_w, cap_w_ + policy_.cap_step_w);
  } else if (est < tol - eps || tol < eps) {
    // Comfortably within the limit (or a zero limit, where only the
    // epsilon band is available): take more power.
    if (est <= std::max(tol, eps)) {
      next = std::max(limits_.min_cap_w, cap_w_ - policy_.cap_step_w);
    }
  }
  if (next != cap_w_) {
    cap_w_ = next;
    d.cap_w = next;
    d.changed = true;
  }
  return d;
}

}  // namespace dufp::core
