#include "core/tracker.h"

#include <algorithm>
#include <cmath>

#include "common/expect.h"

namespace dufp::core {

PhaseTracker::PhaseTracker(const PolicyConfig& policy) : policy_(policy) {
  DUFP_EXPECT(policy.oi_highly_memory < policy.oi_memory_class);
  DUFP_EXPECT(policy.oi_memory_class < policy.oi_highly_cpu);
  DUFP_EXPECT(policy.flops_double_factor > 1.0);
}

PhaseClass PhaseTracker::classify(double oi) const {
  return oi < policy_.oi_memory_class ? PhaseClass::memory : PhaseClass::cpu;
}

void PhaseTracker::restart_phase() {
  have_phase_ = false;
  max_flops_ = 0.0;
  max_bw_ = 0.0;
}

PhaseTracker::Update PhaseTracker::update(const perfmon::Sample& sample) {
  Update u;
  // Defense in depth behind the sampler's own validation: a garbage
  // sample (NaN/negative rates) must not poison the phase ratchets or
  // fabricate a phase change.  Report a neutral hold and wait for real
  // data.
  if (!std::isfinite(sample.flops_rate) || sample.flops_rate < 0.0 ||
      !std::isfinite(sample.bytes_rate) || sample.bytes_rate < 0.0 ||
      !std::isfinite(sample.operational_intensity())) {
    u.phase_class = have_phase_ ? phase_class_ : PhaseClass::cpu;
    u.oi = policy_.oi_memory_class;  // neutral: neither highly-memory nor -cpu
    return u;
  }
  u.oi = sample.operational_intensity();
  u.phase_class = classify(u.oi);
  u.highly_memory = u.oi < policy_.oi_highly_memory;
  u.highly_cpu = u.oi > policy_.oi_highly_cpu;

  const bool class_flip = have_phase_ && u.phase_class != phase_class_;
  const bool flops_jump =
      have_phase_ && max_flops_ > 0.0 &&
      sample.flops_rate > policy_.flops_double_factor * max_flops_;

  if (!have_phase_ || class_flip || flops_jump) {
    u.phase_change = have_phase_;  // the very first sample is not a change
    have_phase_ = true;
    phase_class_ = u.phase_class;
    max_flops_ = sample.flops_rate;
    max_bw_ = sample.bytes_rate;
    return u;
  }

  max_flops_ = std::max(max_flops_, sample.flops_rate);
  max_bw_ = std::max(max_bw_, sample.bytes_rate);
  u.flops_drop =
      max_flops_ > 0.0 ? 1.0 - sample.flops_rate / max_flops_ : 0.0;
  // Relative drops of negligible traffic are noise, not a signal.
  u.bw_drop = max_bw_ > policy_.bw_floor_bytes_per_s
                  ? 1.0 - sample.bytes_rate / max_bw_
                  : 0.0;
  u.flops_drop = std::clamp(u.flops_drop, 0.0, 1.0);
  u.bw_drop = std::clamp(u.bw_drop, 0.0, 1.0);
  return u;
}

}  // namespace dufp::core
