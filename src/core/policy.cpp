#include "core/policy.h"

#include <stdexcept>

#include "common/string_util.h"

namespace dufp::core {

std::string to_string(PolicyMode m) {
  switch (m) {
    case PolicyMode::none: return "default";
    case PolicyMode::duf: return "DUF";
    case PolicyMode::dufp: return "DUFP";
    case PolicyMode::dufpf: return "DUFP-F";
    case PolicyMode::dnpc: return "DNPC";
  }
  return "?";
}

PolicyMode policy_mode_from_string(std::string_view name) {
  const std::string s = to_lower(trim(name));
  if (s == "none" || s == "default") return PolicyMode::none;
  if (s == "duf") return PolicyMode::duf;
  if (s == "dufp") return PolicyMode::dufp;
  if (s == "dufp-f" || s == "dufpf") return PolicyMode::dufpf;
  if (s == "dnpc") return PolicyMode::dnpc;
  throw std::invalid_argument("unknown policy mode \"" + std::string(name) +
                              "\" (known: default, DUF, DUFP, DUFP-F, DNPC)");
}

}  // namespace dufp::core
