#include "core/budget_balancer.h"

#include <algorithm>
#include <stdexcept>

#include "common/string_util.h"
#include "msr/registers.h"

namespace dufp::core {

double BalancerConfig::resolved_budget_w(std::size_t sockets) const {
  if (machine_budget_w > 0.0) return machine_budget_w;
  return max_cap_w * static_cast<double>(sockets);
}

std::vector<std::string> BalancerConfig::validate(std::size_t sockets) const {
  std::vector<std::string> problems;
  if (sockets < 1) problems.push_back("socket count must be >= 1");
  if (machine_budget_w < 0.0) {
    problems.push_back("machine_budget_w must be >= 0 (0 = derive)");
  }
  if (!(min_cap_w > 0.0)) {
    problems.push_back("min_cap_w must be positive");
  }
  if (min_cap_w > max_cap_w) {
    problems.push_back(strf("min_cap_w (%g) must be <= max_cap_w (%g)",
                            min_cap_w, max_cap_w));
  }
  const double floor = min_cap_w * static_cast<double>(sockets);
  if (sockets >= 1 && machine_budget_w > 0.0 && min_cap_w > 0.0 &&
      resolved_budget_w(sockets) < floor) {
    problems.push_back(
        strf("machine_budget_w (%g) must cover %zu sockets' floors "
             "(>= %g W)",
             machine_budget_w, sockets, floor));
  }
  if (!(smoothing > 0.0 && smoothing <= 1.0)) {
    problems.push_back("smoothing must be in (0, 1]");
  }
  if (base_weight < 0.0) {
    problems.push_back("base_weight must be >= 0");
  }
  return problems;
}

namespace {

[[noreturn]] void throw_config(const std::vector<std::string>& problems) {
  std::string msg = "BalancerConfig:";
  for (std::size_t i = 0; i < problems.size(); ++i) {
    msg += (i == 0 ? " " : "; ") + problems[i];
  }
  throw std::invalid_argument(msg);
}

}  // namespace

BudgetBalancer::BudgetBalancer(const BalancerConfig& config,
                               std::vector<powercap::PackageZone*> zones,
                               std::vector<const msr::MsrDevice*> msrs,
                               double core_max_mhz, double core_base_mhz)
    : config_(config),
      zones_(std::move(zones)),
      msrs_(std::move(msrs)),
      core_max_mhz_(core_max_mhz),
      core_base_mhz_(core_base_mhz) {
  auto problems = config.validate(zones_.size());
  if (zones_.empty()) problems.push_back("zones must be non-empty");
  if (zones_.size() != msrs_.size()) {
    problems.push_back("zones and msrs must be index-aligned (same size)");
  }
  if (!(core_max_mhz > 0.0) || !(core_base_mhz > 0.0)) {
    problems.push_back("core_max_mhz and core_base_mhz must be positive");
  }
  if (!problems.empty()) throw_config(problems);
  config_.machine_budget_w = config.resolved_budget_w(zones_.size());

  const double equal =
      std::min(config_.max_cap_w,
               config_.machine_budget_w / static_cast<double>(zones_.size()));
  allocation_.assign(zones_.size(), equal);
  last_aperf_.assign(zones_.size(), 0);
  last_mperf_.assign(zones_.size(), 0);
}

void BudgetBalancer::set_machine_budget_w(double budget_w) {
  const double floor =
      config_.min_cap_w * static_cast<double>(zones_.size());
  if (budget_w < floor) {
    throw std::invalid_argument(
        strf("BudgetBalancer: new budget %g W is below the %zu sockets' "
             "floors (%g W)",
             budget_w, zones_.size(), floor));
  }
  config_.machine_budget_w = budget_w;
}

void BudgetBalancer::set_telemetry(telemetry::Telemetry* telem) {
  telem_ = telem;
  if (telem_ == nullptr) return;
  auto& reg = telem_->registry();
  reg.attach("dufp_balancer_intervals_total",
             "Balancing intervals that redistributed the budget", {},
             intervals_ct_);
  alloc_gauges_.resize(zones_.size());
  for (std::size_t i = 0; i < zones_.size(); ++i) {
    alloc_gauges_[i].set(allocation_[i]);
    reg.attach("dufp_balancer_allocation_watts",
               "Current per-socket share of the machine budget",
               {{"socket", std::to_string(i)}}, alloc_gauges_[i]);
  }
}

void BudgetBalancer::on_interval(SimTime now) {
  const std::size_t n = zones_.size();

  std::vector<double> freq_mhz(n, core_max_mhz_);
  for (std::size_t i = 0; i < n; ++i) {
    const auto aperf = msrs_[i]->read(0, msr::kIa32Aperf);
    const auto mperf = msrs_[i]->read(0, msr::kIa32Mperf);
    if (have_baseline_ && mperf > last_mperf_[i]) {
      const double da = static_cast<double>(aperf - last_aperf_[i]);
      const double dm = static_cast<double>(mperf - last_mperf_[i]);
      freq_mhz[i] = core_base_mhz_ * da / dm;
    }
    last_aperf_[i] = aperf;
    last_mperf_[i] = mperf;
  }
  if (!have_baseline_) {
    have_baseline_ = true;
    return;
  }
  intervals_ct_.inc();

  // Weight each socket by its frequency depression; the budget above the
  // per-socket floors is split proportionally.
  double weight_sum = 0.0;
  std::vector<double> weight(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double depression =
        std::max(0.0, (core_max_mhz_ - freq_mhz[i]) / core_max_mhz_);
    weight[i] = depression + config_.base_weight;
    weight_sum += weight[i];
  }

  const double spare =
      config_.machine_budget_w -
      config_.min_cap_w * static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    double target = config_.min_cap_w + spare * weight[i] / weight_sum;
    target = std::clamp(target, config_.min_cap_w, config_.max_cap_w);
    allocation_[i] = allocation_[i] * (1.0 - config_.smoothing) +
                     target * config_.smoothing;
    zones_[i]->set_power_limit_w(powercap::ConstraintId::long_term,
                                 allocation_[i]);
    zones_[i]->set_power_limit_w(powercap::ConstraintId::short_term,
                                 allocation_[i]);
    if (telem_ != nullptr) {
      alloc_gauges_[i].set(allocation_[i]);
      if (static_cast<int>(i) < telem_->socket_count()) {
        telem_->socket(static_cast<int>(i))
            .record(telemetry::EventKind::balancer_realloc, now, 0,
                    allocation_[i], target);
      }
    }
  }
}

}  // namespace dufp::core
