#include "core/budget_balancer.h"

#include <algorithm>

#include "common/expect.h"
#include "msr/registers.h"

namespace dufp::core {

BudgetBalancer::BudgetBalancer(const BalancerConfig& config,
                               std::vector<powercap::PackageZone*> zones,
                               std::vector<const msr::MsrDevice*> msrs,
                               double core_max_mhz, double core_base_mhz)
    : config_(config),
      zones_(std::move(zones)),
      msrs_(std::move(msrs)),
      core_max_mhz_(core_max_mhz),
      core_base_mhz_(core_base_mhz) {
  DUFP_EXPECT(!zones_.empty());
  DUFP_EXPECT(zones_.size() == msrs_.size());
  DUFP_EXPECT(core_max_mhz > 0.0 && core_base_mhz > 0.0);
  DUFP_EXPECT(config.min_cap_w > 0.0);
  DUFP_EXPECT(config.min_cap_w <= config.max_cap_w);
  DUFP_EXPECT(config.machine_budget_w >=
              config.min_cap_w * static_cast<double>(zones_.size()));
  DUFP_EXPECT(config.smoothing > 0.0 && config.smoothing <= 1.0);

  const double equal =
      std::min(config.max_cap_w,
               config.machine_budget_w / static_cast<double>(zones_.size()));
  allocation_.assign(zones_.size(), equal);
  last_aperf_.assign(zones_.size(), 0);
  last_mperf_.assign(zones_.size(), 0);
}

void BudgetBalancer::set_telemetry(telemetry::Telemetry* telem) {
  telem_ = telem;
  if (telem_ == nullptr) return;
  auto& reg = telem_->registry();
  reg.attach("dufp_balancer_intervals_total",
             "Balancing intervals that redistributed the budget", {},
             intervals_ct_);
  alloc_gauges_.resize(zones_.size());
  for (std::size_t i = 0; i < zones_.size(); ++i) {
    alloc_gauges_[i].set(allocation_[i]);
    reg.attach("dufp_balancer_allocation_watts",
               "Current per-socket share of the machine budget",
               {{"socket", std::to_string(i)}}, alloc_gauges_[i]);
  }
}

void BudgetBalancer::on_interval(SimTime now) {
  const std::size_t n = zones_.size();

  std::vector<double> freq_mhz(n, core_max_mhz_);
  for (std::size_t i = 0; i < n; ++i) {
    const auto aperf = msrs_[i]->read(0, msr::kIa32Aperf);
    const auto mperf = msrs_[i]->read(0, msr::kIa32Mperf);
    if (have_baseline_ && mperf > last_mperf_[i]) {
      const double da = static_cast<double>(aperf - last_aperf_[i]);
      const double dm = static_cast<double>(mperf - last_mperf_[i]);
      freq_mhz[i] = core_base_mhz_ * da / dm;
    }
    last_aperf_[i] = aperf;
    last_mperf_[i] = mperf;
  }
  if (!have_baseline_) {
    have_baseline_ = true;
    return;
  }
  intervals_ct_.inc();

  // Weight each socket by its frequency depression; the budget above the
  // per-socket floors is split proportionally.
  double weight_sum = 0.0;
  std::vector<double> weight(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double depression =
        std::max(0.0, (core_max_mhz_ - freq_mhz[i]) / core_max_mhz_);
    weight[i] = depression + config_.base_weight;
    weight_sum += weight[i];
  }

  const double spare =
      config_.machine_budget_w -
      config_.min_cap_w * static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    double target = config_.min_cap_w + spare * weight[i] / weight_sum;
    target = std::clamp(target, config_.min_cap_w, config_.max_cap_w);
    allocation_[i] = allocation_[i] * (1.0 - config_.smoothing) +
                     target * config_.smoothing;
    zones_[i]->set_power_limit_w(powercap::ConstraintId::long_term,
                                 allocation_[i]);
    zones_[i]->set_power_limit_w(powercap::ConstraintId::short_term,
                                 allocation_[i]);
    if (telem_ != nullptr) {
      alloc_gauges_[i].set(allocation_[i]);
      if (static_cast<int>(i) < telem_->socket_count()) {
        telem_->socket(static_cast<int>(i))
            .record(telemetry::EventKind::balancer_realloc, now, 0,
                    allocation_[i], target);
      }
    }
  }
}

}  // namespace dufp::core
