#include "core/duf.h"

#include <algorithm>

#include "common/expect.h"

namespace dufp::core {

DufController::DufController(const PolicyConfig& policy,
                             const UncoreLimits& limits)
    : policy_(policy), limits_(limits), target_mhz_(limits.max_mhz) {
  DUFP_EXPECT(limits.min_mhz > 0.0 && limits.min_mhz < limits.max_mhz);
  DUFP_EXPECT(policy.uncore_step_mhz > 0.0);
  DUFP_EXPECT(policy.tolerated_slowdown >= 0.0 &&
              policy.tolerated_slowdown < 1.0);
}

void DufController::force_reset() {
  target_mhz_ = limits_.max_mhz;
  last_action_ = UncoreAction::reset;
  cooldown_ = 0;
  since_decrease_ = 1'000'000;
  consecutive_beyond_ = 0;
}

DufController::Decision DufController::decide(const PhaseTracker::Update& u) {
  Decision d;

  if (u.phase_change) {
    force_reset();
    d.action = UncoreAction::reset;
    d.target_mhz = target_mhz_;
    return d;
  }

  // DUF applies the tolerance to bandwidth as well as FLOPS, for every
  // phase (Sec. III, first interaction bullet).
  const double drop = std::max(u.flops_drop, u.bw_drop);
  const ToleranceZone zone =
      classify_drop(drop, policy_.tolerated_slowdown, policy_.epsilon);

  if (since_decrease_ < 1'000'000) ++since_decrease_;
  consecutive_beyond_ =
      zone == ToleranceZone::beyond ? consecutive_beyond_ + 1 : 0;

  if (zone == ToleranceZone::beyond) {
    // Back off only when this controller's own recent probe plausibly
    // caused the violation, or the violation persists (see
    // PolicyConfig::attribution_window_intervals).  In a highly
    // CPU-intensive phase a FLOPS-only drop cannot be the uncore's doing
    // (the phase barely touches it) — unless it persists, leave the
    // response to the power-cap path.
    const bool bw_beyond =
        classify_drop(u.bw_drop, policy_.tolerated_slowdown,
                      policy_.epsilon) == ToleranceZone::beyond;
    const bool persistent =
        consecutive_beyond_ >= policy_.persistent_violation_intervals;
    const bool mine =
        since_decrease_ <= policy_.attribution_window_intervals &&
        !(u.highly_cpu && !bw_beyond);
    if ((mine || persistent) && target_mhz_ < limits_.max_mhz - 1e-9) {
      target_mhz_ =
          std::min(limits_.max_mhz, target_mhz_ + policy_.uncore_step_mhz);
      d.action = UncoreAction::increase;
      cooldown_ = policy_.uncore_cooldown_intervals;
    } else {
      d.action = UncoreAction::hold;
      if (mine || persistent) cooldown_ = policy_.uncore_cooldown_intervals;
    }
  } else if (zone == ToleranceZone::boundary) {
    // "Equivalent to the slowdown with respect to the measurement error":
    // keep steady.
    d.action = UncoreAction::hold;
  } else if (cooldown_ > 0) {
    --cooldown_;
    d.action = UncoreAction::hold;
  } else if (target_mhz_ > limits_.min_mhz + 1e-9) {
    target_mhz_ =
        std::max(limits_.min_mhz, target_mhz_ - policy_.uncore_step_mhz);
    d.action = UncoreAction::decrease;
    since_decrease_ = 0;
  } else {
    d.action = UncoreAction::hold;
  }

  last_action_ = d.action;
  d.target_mhz = target_mhz_;
  return d;
}

}  // namespace dufp::core
