// Environment-driven options shared by every bench / example binary.
//
// One struct replaces the scattered *_from_env() free functions so a
// bench reads its whole protocol in one place:
//
//   DUFP_REPS=N     runs per cell (default 10, the paper's protocol)
//   DUFP_SOCKETS=N  sockets simulated (default 4 = yeti-2)
//   DUFP_THREADS=N  worker threads for the experiment engine
//                   (default 0 = one per hardware thread; 1 = serial)
//   DUFP_QUIET=1    suppress progress notes on stderr
#pragma once

namespace dufp::harness {

struct BenchOptions {
  int repetitions = 10;  ///< DUFP_REPS
  int sockets = 4;       ///< DUFP_SOCKETS
  int threads = 0;       ///< DUFP_THREADS; 0 = auto (hardware concurrency)
  bool quiet = false;    ///< DUFP_QUIET

  /// Reads every knob from the environment; unset / malformed variables
  /// keep the defaults above.
  static BenchOptions from_env();

  /// `threads` with 0 resolved to the hardware thread count (>= 1).
  int resolved_threads() const;
};

}  // namespace dufp::harness
