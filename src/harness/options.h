// Environment-driven options shared by every bench / example binary.
//
// One struct replaces the scattered *_from_env() free functions so a
// bench reads its whole protocol in one place:
//
//   DUFP_REPS=N        runs per cell (default 10, the paper's protocol)
//   DUFP_SOCKETS=N     sockets simulated (default 4 = yeti-2)
//   DUFP_THREADS=N     worker threads for the experiment engine
//                      (default 0 = one per hardware thread; 1 = serial)
//   DUFP_QUIET=1       suppress progress notes on stderr
//   DUFP_FAULT_RATE=R  per-operation fault probability in [0, 1]; > 0
//                      runs the grid under FaultOptions::storm(R, seed)
//   DUFP_FAULT_SEED=S  seed of the fault decision stream (default 0)
//   DUFP_OUT_DIR=DIR   directory for every CSV / trace / telemetry file
//                      (default "out"; created on first use)
//   DUFP_TELEMETRY=1   run with the telemetry plane enabled and export
//                      Prometheus / Chrome-trace / JSONL alongside the CSVs
//   DUFP_POLICIES=A,B  comma-separated registry policy names for benches
//                      that take a policy list (the tournament); empty /
//                      unset = every registered policy.  Unknown or
//                      duplicate names are configuration errors.
//   DUFP_CHAOS=R       per-record probability in [0, 1] that a shard
//                      worker self-SIGKILLs (torn record + no cleanup) —
//                      the process-level analogue of DUFP_FAULT_RATE,
//                      exercising lease reclaim / salvage / resume
//   DUFP_CHAOS_SEED=S  seed of the chaos kill-decision stream (default 0)
//   DUFP_LANES=K       lane width for batched serial execution: how many
//                      independent runs interleave through one engine
//                      pass (harness::run_batch / sim::MultiSim).
//                      Default 0 = the built-in width (8); 1 = plain
//                      sequential run_once.  Results are byte-identical
//                      for every value.
//
// Fleet benches (bench/fleet_scaling, src/fleet) add:
//
//   DUFP_FLEET_RACKS=N        racks in the budget tree (default 2)
//   DUFP_FLEET_NODES=N        nodes per rack (default 2); sockets per
//                             node come from DUFP_SOCKETS
//   DUFP_FLEET_ALLOCATOR=A    fleet allocator registry name; unset =
//                             the bench's default (fleet_scaling ranks
//                             every registered allocator).  Unknown
//                             names are configuration errors listing
//                             the registered names, like DUFP_POLICIES.
//   DUFP_FLEET_BUDGET=W       cluster-wide budget in watts, >= 0
//                             (0 = derive max_cap x socket-count)
//   DUFP_FLEET_TRAFFIC=P      traffic profile (diurnal, heavy-tail, flat)
//   DUFP_FLEET_TRAFFIC_SEED=S traffic stream seed (default 1)
//
// Malformed values (non-numeric, trailing junk, out of range) are
// configuration errors: from_env() throws std::invalid_argument naming
// every bad variable rather than silently falling back to a default —
// a typo in DUFP_REPS must not quietly produce 10-rep paper numbers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dufp::harness {

struct BenchOptions {
  int repetitions = 10;       ///< DUFP_REPS, >= 1
  int sockets = 4;            ///< DUFP_SOCKETS, >= 1
  int threads = 0;            ///< DUFP_THREADS; 0 = auto (hardware threads)
  bool quiet = false;         ///< DUFP_QUIET
  double fault_rate = 0.0;    ///< DUFP_FAULT_RATE, in [0, 1]
  std::uint64_t fault_seed = 0;  ///< DUFP_FAULT_SEED
  std::string out_dir = "out";   ///< DUFP_OUT_DIR, non-empty
  bool telemetry = false;        ///< DUFP_TELEMETRY
  /// DUFP_POLICIES, canonical registry names in list order; empty =
  /// caller's default (the tournament runs every registered policy).
  std::vector<std::string> policies;
  double chaos_kill_rate = 0.0;     ///< DUFP_CHAOS, in [0, 1]
  std::uint64_t chaos_seed = 0;     ///< DUFP_CHAOS_SEED
  int lanes = 0;                    ///< DUFP_LANES; 0 = default width (8)

  int fleet_racks = 2;           ///< DUFP_FLEET_RACKS, >= 1
  int fleet_nodes_per_rack = 2;  ///< DUFP_FLEET_NODES, >= 1
  /// DUFP_FLEET_ALLOCATOR, canonical registry spelling; empty = caller's
  /// default (fleet_scaling ranks every registered allocator).
  std::string fleet_allocator;
  double fleet_budget_w = 0.0;   ///< DUFP_FLEET_BUDGET, >= 0 (0 = derive)
  std::string fleet_traffic_profile = "diurnal";  ///< DUFP_FLEET_TRAFFIC
  std::uint64_t fleet_traffic_seed = 1;  ///< DUFP_FLEET_TRAFFIC_SEED

  /// Reads every knob from the environment.  Unset variables keep the
  /// defaults above; set-but-malformed variables throw
  /// std::invalid_argument listing *all* problems found.
  static BenchOptions from_env();

  /// `threads` with 0 resolved to the hardware thread count (>= 1).
  int resolved_threads() const;

  /// `lanes` with 0 resolved to the default lane width (8).
  int resolved_lanes() const;

  /// `<out_dir>/<filename>`, creating out_dir (and parents) on demand —
  /// every bench output goes through this so DUFP_OUT_DIR redirects the
  /// whole run.  Throws std::runtime_error when the directory cannot be
  /// created.
  std::string out_path(const std::string& filename) const;
};

}  // namespace dufp::harness
