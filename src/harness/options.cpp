#include "harness/options.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "core/policy_registry.h"
#include "fleet/allocator.h"
#include "fleet/traffic.h"

namespace dufp::harness {

namespace {

// Strict parsers: the whole value must be consumed (no trailing junk), no
// overflow, and the result must satisfy the knob's range.  Each failure is
// recorded in `problems`; the caller aggregates them into one exception so
// a user fixing their environment sees every mistake at once.

void note(std::vector<std::string>& problems, const char* name,
          const char* value, const std::string& why) {
  problems.push_back(std::string(name) + "=\"" + value + "\": " + why);
}

void parse_int(const char* name, int& out, int min_value,
               std::vector<std::string>& problems) {
  const char* v = std::getenv(name);
  if (v == nullptr) return;
  errno = 0;
  char* end = nullptr;
  const long n = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') {
    note(problems, name, v, "not an integer");
  } else if (errno == ERANGE || n > 1000000000L || n < -1000000000L) {
    note(problems, name, v, "out of range");
  } else if (n < min_value) {
    note(problems, name, v, "must be >= " + std::to_string(min_value));
  } else {
    out = static_cast<int>(n);
  }
}

void parse_u64(const char* name, std::uint64_t& out,
               std::vector<std::string>& problems) {
  const char* v = std::getenv(name);
  if (v == nullptr) return;
  if (v[0] == '-') {  // strtoull silently negates; reject explicitly
    note(problems, name, v, "must be >= 0");
    return;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0') {
    note(problems, name, v, "not an integer");
  } else if (errno == ERANGE) {
    note(problems, name, v, "out of range");
  } else {
    out = static_cast<std::uint64_t>(n);
  }
}

void parse_unit_double(const char* name, double& out,
                       std::vector<std::string>& problems) {
  const char* v = std::getenv(name);
  if (v == nullptr) return;
  errno = 0;
  char* end = nullptr;
  const double d = std::strtod(v, &end);
  if (end == v || *end != '\0') {
    note(problems, name, v, "not a number");
  } else if (errno == ERANGE || !(d >= 0.0 && d <= 1.0)) {
    note(problems, name, v, "must be in [0, 1]");
  } else {
    out = d;
  }
}

/// DUFP_POLICIES: comma-separated registry names, stored canonically in
/// list order.  Mirrors GridSpec::validate(): every unknown / duplicate /
/// empty entry is its own problem, aggregated with the other knobs.
void parse_policies(const char* name, std::vector<std::string>& out,
                    std::vector<std::string>& problems) {
  const char* v = std::getenv(name);
  if (v == nullptr) return;
  const auto& registry = core::PolicyRegistry::instance();
  std::vector<std::string> canonical;
  bool ok = true;
  std::string_view rest = v;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view raw = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view()
                                           : rest.substr(comma + 1);
    const std::string token(trim(raw));
    if (token.empty()) {
      note(problems, name, v, "empty policy name in the list");
      ok = false;
      continue;
    }
    const auto* entry = registry.find(token);
    if (entry == nullptr) {
      note(problems, name, v,
           "unknown policy \"" + token + "\" (known: " +
               registry.known_names() + ")");
      ok = false;
      continue;
    }
    if (std::find(canonical.begin(), canonical.end(), entry->name) !=
        canonical.end()) {
      note(problems, name, v, "duplicate policy \"" + token + "\"");
      ok = false;
      continue;
    }
    canonical.push_back(entry->name);
  }
  if (canonical.empty() && ok) {
    note(problems, name, v, "must name at least one policy");
    ok = false;
  }
  if (ok) out = std::move(canonical);
}

void parse_nonneg_double(const char* name, double& out,
                         std::vector<std::string>& problems) {
  const char* v = std::getenv(name);
  if (v == nullptr) return;
  errno = 0;
  char* end = nullptr;
  const double d = std::strtod(v, &end);
  if (end == v || *end != '\0') {
    note(problems, name, v, "not a number");
  } else if (errno == ERANGE || !(d >= 0.0) || !std::isfinite(d)) {
    note(problems, name, v, "must be a finite number >= 0");
  } else {
    out = d;
  }
}

/// DUFP_FLEET_ALLOCATOR: one fleet allocator, stored canonically.
/// Unknown names list the registered ones, exactly like DUFP_POLICIES.
void parse_fleet_allocator(const char* name, std::string& out,
                           std::vector<std::string>& problems) {
  const char* v = std::getenv(name);
  if (v == nullptr) return;
  const std::string token(trim(v));
  if (token.empty()) {
    note(problems, name, v, "must name an allocator");
    return;
  }
  const auto& registry = fleet::FleetAllocatorRegistry::instance();
  const auto* entry = registry.find(token);
  if (entry == nullptr) {
    note(problems, name, v,
         "unknown fleet allocator \"" + token + "\" (known: " +
             registry.known_names() + ")");
    return;
  }
  out = entry->name;
}

void parse_traffic_profile(const char* name, std::string& out,
                           std::vector<std::string>& problems) {
  const char* v = std::getenv(name);
  if (v == nullptr) return;
  const std::string token(trim(v));
  if (!fleet::TrafficModel::is_known(token)) {
    note(problems, name, v,
         "unknown traffic profile \"" + token + "\" (known: " +
             fleet::TrafficModel::known_profiles() + ")");
    return;
  }
  out = token;
}

}  // namespace

BenchOptions BenchOptions::from_env() {
  BenchOptions o;
  std::vector<std::string> problems;
  parse_int("DUFP_REPS", o.repetitions, 1, problems);
  parse_int("DUFP_SOCKETS", o.sockets, 1, problems);
  parse_int("DUFP_THREADS", o.threads, 0, problems);
  parse_unit_double("DUFP_FAULT_RATE", o.fault_rate, problems);
  parse_u64("DUFP_FAULT_SEED", o.fault_seed, problems);
  parse_unit_double("DUFP_CHAOS", o.chaos_kill_rate, problems);
  parse_u64("DUFP_CHAOS_SEED", o.chaos_seed, problems);
  parse_int("DUFP_LANES", o.lanes, 0, problems);
  o.quiet = std::getenv("DUFP_QUIET") != nullptr;
  o.telemetry = std::getenv("DUFP_TELEMETRY") != nullptr;
  parse_policies("DUFP_POLICIES", o.policies, problems);
  parse_int("DUFP_FLEET_RACKS", o.fleet_racks, 1, problems);
  parse_int("DUFP_FLEET_NODES", o.fleet_nodes_per_rack, 1, problems);
  parse_fleet_allocator("DUFP_FLEET_ALLOCATOR", o.fleet_allocator, problems);
  parse_nonneg_double("DUFP_FLEET_BUDGET", o.fleet_budget_w, problems);
  parse_traffic_profile("DUFP_FLEET_TRAFFIC", o.fleet_traffic_profile,
                        problems);
  parse_u64("DUFP_FLEET_TRAFFIC_SEED", o.fleet_traffic_seed, problems);
  if (const char* v = std::getenv("DUFP_OUT_DIR")) {
    if (v[0] == '\0') {
      note(problems, "DUFP_OUT_DIR", v, "must be non-empty");
    } else {
      o.out_dir = v;
    }
  }
  if (!problems.empty()) {
    std::string msg = "BenchOptions: invalid environment:";
    for (const auto& p : problems) msg += "\n  " + p;
    throw std::invalid_argument(msg);
  }
  return o;
}

int BenchOptions::resolved_threads() const {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int BenchOptions::resolved_lanes() const {
  return lanes > 0 ? lanes : 8;
}

std::string BenchOptions::out_path(const std::string& filename) const {
  const std::filesystem::path dir(out_dir);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw std::runtime_error("cannot create output directory \"" + out_dir +
                             "\": " + ec.message());
  }
  return (dir / filename).string();
}

}  // namespace dufp::harness
