#include "harness/options.h"

#include <cstdlib>
#include <thread>

namespace dufp::harness {

namespace {

int int_from_env(const char* name, int fallback, int min_value) {
  if (const char* v = std::getenv(name)) {
    const int n = std::atoi(v);
    if (n >= min_value) return n;
  }
  return fallback;
}

}  // namespace

BenchOptions BenchOptions::from_env() {
  BenchOptions o;
  o.repetitions = int_from_env("DUFP_REPS", o.repetitions, 1);
  o.sockets = int_from_env("DUFP_SOCKETS", o.sockets, 1);
  o.threads = int_from_env("DUFP_THREADS", o.threads, 0);
  o.quiet = std::getenv("DUFP_QUIET") != nullptr;
  return o;
}

int BenchOptions::resolved_threads() const {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace dufp::harness
