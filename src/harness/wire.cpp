#include "harness/wire.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "common/string_util.h"

namespace dufp::harness {

namespace {

using json::Value;

[[noreturn]] void gather_fail(const std::string& file, int line,
                              const std::string& what) {
  throw std::runtime_error(
      strf("gather: %s:%d: %s", file.c_str(), line, what.c_str()));
}

[[noreturn]] void format_fail(const std::string& file, int line,
                              const std::string& what) {
  throw ShardFormatError(
      strf("gather: %s:%d: %s", file.c_str(), line, what.c_str()));
}

}  // namespace

// -- lease-based chunk claims ------------------------------------------------
//
// Lease record layout (fixed width so renew() can rewrite in place with
// one pwrite): "owner=<id>\nheartbeat=<20-digit counter>\n".

namespace {

std::string lease_record(const std::string& owner, std::uint64_t heartbeat) {
  return strf("owner=%s\nheartbeat=%020llu\n", owner.c_str(),
              static_cast<unsigned long long>(heartbeat));
}

/// Seconds since the file at `path` was last written, or nullopt when it
/// does not exist.  CLOCK_REALTIME on both sides: the mtime a shared
/// filesystem stamps is wall-clock, so the staleness comparison must be
/// too.
std::optional<double> file_age_seconds(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return std::nullopt;
  struct timespec now{};
  ::clock_gettime(CLOCK_REALTIME, &now);
  return (static_cast<double>(now.tv_sec) -
          static_cast<double>(st.st_mtim.tv_sec)) +
         (static_cast<double>(now.tv_nsec) -
          static_cast<double>(st.st_mtim.tv_nsec)) *
             1e-9;
}

}  // namespace

std::string FileChunkClaimer::claim_path(const std::string& dir, int chunk) {
  return dir + "/chunk" + std::to_string(chunk) + ".claim";
}
std::string FileChunkClaimer::done_path(const std::string& dir, int chunk) {
  return dir + "/chunk" + std::to_string(chunk) + ".done";
}
std::string FileChunkClaimer::poison_path(const std::string& dir, int chunk) {
  return dir + "/chunk" + std::to_string(chunk) + ".poison";
}

std::optional<FileChunkClaimer::LeaseInfo> FileChunkClaimer::read_lease(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  LeaseInfo info;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("owner=", 0) == 0) {
      info.owner = line.substr(6);
    } else if (line.rfind("heartbeat=", 0) == 0) {
      unsigned long long hb = 0;
      if (parse_u64(trim(line.substr(10)), hb)) info.heartbeat = hb;
    }
  }
  if (info.owner.empty()) return std::nullopt;
  return info;
}

FileChunkClaimer::FileChunkClaimer(std::string dir, LeaseOptions lease)
    : dir_(std::move(dir)),
      owner_(lease.owner.empty() ? "pid" + std::to_string(::getpid())
                                 : std::move(lease.owner)),
      ttl_seconds_(lease.ttl_seconds) {}

FileChunkClaimer::~FileChunkClaimer() {
  // Close fds only: held leases stay on disk, exactly as after a crash.
  // A clean shutdown that wants to hand chunks back calls release_all().
  for (const auto& [chunk, fd] : held_) ::close(fd);
}

bool FileChunkClaimer::try_claim(int chunk) {
  const std::string claim = claim_path(dir_, chunk);
  // A few bounded rounds: each loses only to concrete progress by
  // someone else (their create or their steal), so looping forever is
  // impossible — 8 rounds is already unreachable in practice.
  for (int round = 0; round < 8; ++round) {
    struct stat st{};
    if (::stat(done_path(dir_, chunk).c_str(), &st) == 0) return false;
    if (::stat(poison_path(dir_, chunk).c_str(), &st) == 0) {
      if (std::find(poisoned_seen_.begin(), poisoned_seen_.end(), chunk) ==
          poisoned_seen_.end()) {
        poisoned_seen_.push_back(chunk);
      }
      return false;
    }

    const int fd = ::open(claim.c_str(), O_CREAT | O_EXCL | O_RDWR, 0644);
    if (fd >= 0) {
      const std::string record = lease_record(owner_, ++heartbeat_);
      if (::pwrite(fd, record.data(), record.size(), 0) < 0) {
        ::close(fd);
        ::unlink(claim.c_str());
        throw std::runtime_error("FileChunkClaimer: cannot write " + claim +
                                 ": " + std::strerror(errno));
      }
      held_[chunk] = fd;
      return true;
    }
    if (errno != EEXIST) {
      throw std::runtime_error("FileChunkClaimer: cannot create " + claim +
                               ": " + std::strerror(errno));
    }

    // Someone holds the lease.  Fresh (or stealing disabled): back off.
    const auto age = file_age_seconds(claim);
    if (!age.has_value()) continue;  // vanished under us; retry the create
    if (ttl_seconds_ <= 0.0 || *age <= ttl_seconds_) return false;

    // Stale: steal by renaming the lease away.  rename(2) is atomic, so
    // of any racing stealers exactly one succeeds; the rest see ENOENT
    // and loop back to race for the create like everyone else.
    const std::string stale =
        claim + ".stale." + owner_ + "." + std::to_string(steal_seq_++);
    if (::rename(claim.c_str(), stale.c_str()) == 0) {
      ::unlink(stale.c_str());
      continue;  // now race for the O_EXCL create
    }
    if (errno == ENOENT) continue;  // another stealer won; race the create
    throw std::runtime_error("FileChunkClaimer: cannot steal " + claim +
                             ": " + std::strerror(errno));
  }
  return false;
}

void FileChunkClaimer::renew() {
  ++heartbeat_;
  for (const auto& [chunk, fd] : held_) {
    const std::string record = lease_record(owner_, heartbeat_);
    // pwrite on the kept-open fd touches *our* inode even if the lease
    // path was stolen out from under us — a thief's fresh lease is never
    // overwritten, and the write's mtime bump is the heartbeat signal.
    (void)::pwrite(fd, record.data(), record.size(), 0);
  }
}

bool FileChunkClaimer::still_owner(int chunk) {
  const auto it = held_.find(chunk);
  if (it == held_.end()) return false;
  struct stat ours{}, current{};
  if (::fstat(it->second, &ours) != 0) return false;
  if (::stat(claim_path(dir_, chunk).c_str(), &current) != 0) {
    return false;  // lease gone entirely (released or mid-steal)
  }
  return ours.st_dev == current.st_dev && ours.st_ino == current.st_ino;
}

bool FileChunkClaimer::complete(int chunk) {
  const auto it = held_.find(chunk);
  if (it == held_.end()) return false;
  if (!still_owner(chunk)) {
    // Stolen while we were stalled: the thief re-runs the chunk and will
    // record completion itself.  Dropping out here is what keeps the
    // at-most-one-live-owner guarantee useful.
    ::close(it->second);
    held_.erase(it);
    return false;
  }
  // Done marker first, then release: any observer ordering is safe —
  // done+claim reads as done, and creating an existing marker (a
  // re-delivered completion) is a no-op, making completions idempotent.
  const std::string done = done_path(dir_, chunk);
  const int fd = ::open(done.c_str(), O_CREAT | O_WRONLY, 0644);
  if (fd < 0) {
    throw std::runtime_error("FileChunkClaimer: cannot record " + done +
                             ": " + std::strerror(errno));
  }
  (void)::write(fd, owner_.data(), owner_.size());
  ::close(fd);
  ::close(it->second);
  held_.erase(it);
  ::unlink(claim_path(dir_, chunk).c_str());
  return true;
}

void FileChunkClaimer::release_all() {
  for (auto it = held_.begin(); it != held_.end();) {
    if (still_owner(it->first)) {
      ::unlink(claim_path(dir_, it->first).c_str());
    }
    ::close(it->second);
    it = held_.erase(it);
  }
}

// -- shard worker ------------------------------------------------------------

namespace {

/// Per-process emission state threaded through every chunk: the chaos
/// plan fires on the count of records this process has emitted, and the
/// claimer heartbeats between records so a long chunk never looks dead.
struct EmitContext {
  const ChaosPlan* chaos = nullptr;
  ChunkClaimer* claimer = nullptr;
  std::uint64_t position = 0;
};

void emit_records(const std::vector<std::size_t>& indices,
                  const std::vector<Value>& payloads, std::ostream& out,
                  EmitContext& ctx) {
  for (std::size_t i = 0; i < indices.size(); ++i) {
    Value line = Value::make_object();
    line.add("job", Value::make_u64(indices[i]));
    line.add("result", payloads[i]);
    const std::string record = line.dump();
    if (ctx.claimer != nullptr) ctx.claimer->renew();
    if (ctx.chaos != nullptr) {
      ctx.chaos->maybe_kill(ctx.position, out, record);  // may not return
    }
    out << record << '\n';
    ++ctx.position;
  }
  out.flush();  // one chunk's results survive a later worker crash
}

}  // namespace

void run_shard_wire(
    const WireIdentity& id, const ShardRunOptions& options,
    const std::function<std::vector<json::Value>(
        const std::vector<std::size_t>&)>& run,
    std::ostream& out) {
  if (options.chunk_size > 0 && options.claimer == nullptr) {
    throw std::invalid_argument("run_shard: dynamic mode needs a claimer");
  }
  const std::size_t jobs = id.job_count;

  // Resume mode: the universe of work shrinks to the manifest's missing
  // list; everything else (header, chunking, claiming) is unchanged, so
  // a resume output file is an ordinary shard file.
  std::vector<std::size_t> universe;
  if (options.job_filter != nullptr) {
    universe = *options.job_filter;
    for (std::size_t i = 0; i < universe.size(); ++i) {
      if (universe[i] >= jobs || (i > 0 && universe[i] <= universe[i - 1])) {
        throw std::invalid_argument(
            "run_shard: job filter must be strictly ascending and in range");
      }
    }
  } else {
    universe.resize(jobs);
    for (std::size_t i = 0; i < jobs; ++i) universe[i] = i;
  }

  const ChaosPlan chaos(options.chaos);
  EmitContext ctx;
  ctx.chaos = chaos.enabled() ? &chaos : nullptr;
  ctx.claimer = options.claimer;

  Value header = Value::make_object();
  header.add("format", Value::make_string(id.format));
  header.add("version", Value::make_i64(kShardFormatVersion));
  header.add("spec_name", Value::make_string(id.spec_name));
  header.add("spec_fingerprint", Value::make_string(id.fingerprint_hex));
  header.add("shard", Value::make_i64(options.shard));
  header.add("shards", Value::make_i64(options.shards));
  header.add("job_count", Value::make_u64(jobs));
  out << header.dump() << '\n';
  out.flush();  // the header survives even an immediate crash

  if (options.chunk_size > 0) {
    // Dynamic mode: claim fixed-size chunks (cut from the universe)
    // until none remain.  Workers race on the claimer; whichever worker
    // wins a chunk runs and emits it, so the union of all files covers
    // every job exactly once — unless a lease is stolen mid-chunk, in
    // which case the stalled owner detects the theft below and drops
    // its duplicate instead of emitting.
    const std::size_t size = static_cast<std::size_t>(options.chunk_size);
    const int chunks =
        static_cast<int>((universe.size() + size - 1) / size);
    for (int c = 0; c < chunks; ++c) {
      if (!options.claimer->try_claim(c)) continue;
      std::vector<std::size_t> indices;
      const std::size_t begin = static_cast<std::size_t>(c) * size;
      const std::size_t end = std::min(universe.size(), begin + size);
      for (std::size_t j = begin; j < end; ++j) {
        indices.push_back(universe[j]);
      }
      const auto payloads = run(indices);
      // The compute is the long steal window: a worker stalled past the
      // TTL re-checks ownership here and drops its duplicate (the thief
      // re-runs the chunk) instead of emitting records twice.
      if (!options.claimer->still_owner(c)) continue;
      emit_records(indices, payloads, out, ctx);
      options.claimer->complete(c);
    }
  } else {
    if (options.shards < 1 || options.shard < 0 ||
        options.shard >= options.shards) {
      throw std::invalid_argument(
          strf("run_shard: shard %d of %d is out of range", options.shard,
               options.shards));
    }
    std::vector<std::size_t> indices;
    for (std::size_t p = static_cast<std::size_t>(options.shard);
         p < universe.size(); p += static_cast<std::size_t>(options.shards)) {
      indices.push_back(universe[p]);
    }
    emit_records(indices, run(indices), out, ctx);
  }
}

// -- gather ------------------------------------------------------------------

namespace {

/// The strict missing-jobs error: every absent id (capped), each with
/// the static round-robin shard it would have belonged to — and, when
/// the identity can label jobs, *what* the job is ("rack 1 / node 3") —
/// so an operator can see at a glance which worker's file is absent or
/// short.
[[noreturn]] void fail_missing(const WireIdentity& id,
                               const std::vector<std::size_t>& missing,
                               std::size_t jobs, int header_shards) {
  constexpr std::size_t kListCap = 16;
  std::string list;
  for (std::size_t i = 0; i < missing.size() && i < kListCap; ++i) {
    if (i != 0) list += ", ";
    list += "job " + std::to_string(missing[i]);
    if (id.job_label) {
      list += " = " + id.job_label(missing[i]);
    }
    if (header_shards > 1) {
      list += strf(" (shard %d)",
                   static_cast<int>(missing[i] %
                                    static_cast<std::size_t>(header_shards)));
    }
  }
  if (missing.size() > kListCap) {
    list += strf(" ... and %zu more", missing.size() - kListCap);
  }
  throw std::runtime_error(
      strf("gather: %zu of %zu jobs missing from the input files: %s — a "
           "shard did not finish or its file was not passed in; `gather "
           "--partial` salvages what exists and writes a retry manifest",
           missing.size(), jobs, list.c_str()));
}

}  // namespace

WireGatherReport gather_wire(
    const WireIdentity& id, const std::vector<std::string>& files,
    const GatherOptions& options,
    const std::function<void(std::size_t, const json::Value&)>& store) {
  const std::size_t jobs = id.job_count;
  const bool partial = options.partial;

  WireGatherReport report;
  report.job_count = jobs;
  report.have.assign(jobs, false);
  // FNV-1a over each accepted record's canonical bytes: the duplicate
  // guard.  A re-delivered record (reclaimed chunk, retried resume) must
  // hash identically; a mismatch is a determinism violation in any mode.
  std::vector<std::uint64_t> record_hash(jobs, 0);

  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in.good()) {
      if (!partial) throw std::runtime_error("gather: cannot open " + file);
      report.notes.push_back({file, 0, "cannot open; skipped"});
      continue;
    }
    std::string text;
    int line_no = 0;
    bool saw_header = false;
    bool skip_file = false;
    while (!skip_file && std::getline(in, text)) {
      ++line_no;
      if (text.empty()) continue;
      Value line;
      try {
        line = json::parse(text);
      } catch (const std::exception& e) {
        // A truncated tail (torn record from a crashed worker) or a
        // corrupt middle line: in partial mode note it and keep
        // scanning — every complete record in the file is salvageable.
        if (!partial) gather_fail(file, line_no, e.what());
        report.notes.push_back(
            {file, line_no, strf("unparseable line skipped: %s", e.what())});
        continue;
      }
      if (!saw_header) {
        // The first line must be the header — a file that starts with a
        // job record was truncated at the front or is not a shard file.
        std::string header_problem;
        try {
          if (line.at("format").as_string() != id.format) {
            header_problem = "format is not " + id.format;
          } else if (line.at("version").as_i64() != kShardFormatVersion) {
            header_problem =
                strf("unsupported shard format version %lld",
                     static_cast<long long>(line.at("version").as_i64()));
          } else if (line.at("spec_fingerprint").as_string() !=
                     id.fingerprint_hex) {
            header_problem =
                "spec fingerprint mismatch (file was produced from a "
                "different spec than the one being gathered)";
          } else if (line.at("job_count").as_u64() != jobs) {
            header_problem = "job_count mismatch";
          }
        } catch (const std::exception& e) {
          header_problem = e.what();
        }
        if (!header_problem.empty()) {
          // Records under a wrong or unreadable header cannot be
          // trusted to belong to this spec: skip the whole file.
          if (!partial) format_fail(file, line_no, header_problem);
          report.notes.push_back(
              {file, line_no, header_problem + "; file skipped"});
          skip_file = true;
          continue;
        }
        if (const Value* shards = line.find("shards")) {
          try {
            const int n = static_cast<int>(shards->as_i64());
            report.header_shards = std::max(report.header_shards, n);
          } catch (const std::exception&) {
          }
        }
        saw_header = true;
        continue;
      }
      std::size_t job = 0;
      try {
        job = line.at("job").as_u64();
      } catch (const std::exception& e) {
        if (!partial) gather_fail(file, line_no, e.what());
        report.notes.push_back(
            {file, line_no, strf("undecodable record skipped: %s", e.what())});
        continue;
      }
      if (job >= jobs) {
        if (!partial) {
          gather_fail(file, line_no,
                      strf("job index %zu out of range (plan has %zu "
                           "jobs)",
                           job, jobs));
        }
        report.notes.push_back(
            {file, line_no,
             strf("job index %zu out of range; skipped", job)});
        continue;
      }
      const Value* result = line.find("result");
      if (result == nullptr) {
        if (!partial) {
          gather_fail(file, line_no, "record has no \"result\" field");
        }
        report.notes.push_back(
            {file, line_no, "record has no \"result\" field; skipped"});
        continue;
      }
      const std::uint64_t hash = json::fnv1a(result->dump());
      if (report.have[job]) {
        if (record_hash[job] != hash) {
          // Never tolerated: two different results for one job breaks
          // the determinism guarantee the whole layer exists to keep.
          gather_fail(file, line_no,
                      strf("job %zu gathered twice with DIFFERENT bytes — "
                           "determinism violation, refusing to merge",
                           job));
        }
        if (!partial) {
          gather_fail(file, line_no,
                      strf("job %zu already gathered (duplicate across the "
                           "input files)",
                           job));
        }
        ++report.duplicates;  // idempotent re-delivery (reclaimed chunk)
        continue;
      }
      try {
        store(job, *result);
      } catch (const std::exception& e) {
        if (!partial) gather_fail(file, line_no, e.what());
        report.notes.push_back(
            {file, line_no, strf("undecodable record skipped: %s", e.what())});
        continue;
      }
      report.have[job] = true;
      record_hash[job] = hash;
      ++report.records;
    }
    if (!saw_header && !skip_file) {
      if (!partial) {
        throw std::runtime_error("gather: " + file +
                                 ": empty file (missing header line)");
      }
      report.notes.push_back({file, 0, "no header line; file skipped"});
    }
  }

  for (std::size_t j = 0; j < jobs; ++j) {
    if (!report.have[j]) report.missing.push_back(j);
  }
  if (!partial && !report.missing.empty()) {
    fail_missing(id, report.missing, jobs, report.header_shards);
  }
  return report;
}

}  // namespace dufp::harness
