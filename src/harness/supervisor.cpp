#include "harness/supervisor.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <stdexcept>

#include "common/string_util.h"

namespace dufp::harness {

const char* to_string(WorkerExitClass c) {
  switch (c) {
    case WorkerExitClass::clean: return "clean";
    case WorkerExitClass::retryable: return "retryable";
    case WorkerExitClass::fatal: return "fatal";
  }
  return "?";
}

namespace {

double now_seconds() {
  struct timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

void sleep_seconds(double s) {
  struct timespec ts{};
  ts.tv_sec = static_cast<time_t>(s);
  ts.tv_nsec = static_cast<long>((s - static_cast<double>(ts.tv_sec)) * 1e9);
  ::nanosleep(&ts, nullptr);
}

bool path_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

/// The worker side of the documented exit-code contract
/// (cli/shard_worker.cpp defines the full set; workers use this subset).
constexpr int kExitClean = 0;
constexpr int kExitInternal = 1;
constexpr int kExitSpec = 3;
constexpr int kExitJob = 4;
constexpr int kExitIo = 5;

/// One supervised worker attempt's whole life, run inside the fork:
/// claim chunks, stream records to the `.partial` file, fsync and
/// atomically rename on success.  Exit code is the only channel back.
int worker_child_main(const SupervisedWork& work, const SupervisorOptions& sup,
                      int worker, int attempt, const std::string& partial,
                      const std::string& final_path) {
  try {
    LeaseOptions lease;
    lease.owner = strf("w%d.a%d", worker, attempt);
    lease.ttl_seconds = sup.lease_ttl_seconds;
    FileChunkClaimer claimer(sup.out_dir, lease);

    ShardRunOptions opts;
    opts.shard = worker;
    opts.shards = sup.workers;
    opts.threads = sup.threads;
    opts.chunk_size = sup.chunk_size;
    opts.claimer = &claimer;
    opts.job_filter = sup.job_filter;
    opts.chaos = sup.chaos;
    opts.chaos.worker = worker;
    opts.chaos.attempt = attempt;

    {
      std::ofstream out(partial, std::ios::binary);
      if (!out.good()) return kExitIo;
      try {
        work.run(opts, out);
      } catch (const ShardFormatError& e) {
        std::fprintf(stderr, "[worker %d.%d] %s\n", worker, attempt,
                     e.what());
        return kExitSpec;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[worker %d.%d] %s\n", worker, attempt,
                     e.what());
        return kExitJob;
      }
      if (!out.good()) return kExitIo;
    }
    // fsync + atomic rename: a visible `.jsonl` is always a complete,
    // header-checked file; anything torn stays honestly `.partial`.
    const int fd = ::open(partial.c_str(), O_RDONLY);
    if (fd < 0) return kExitIo;
    const bool synced = ::fsync(fd) == 0;
    ::close(fd);
    if (!synced) return kExitIo;
    if (::rename(partial.c_str(), final_path.c_str()) != 0) return kExitIo;
    return kExitClean;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[worker %d.%d] %s\n", worker, attempt, e.what());
    return kExitInternal;
  }
}

WorkerExitClass classify(int exit_code, int signal) {
  if (signal != 0) return WorkerExitClass::retryable;
  if (exit_code == kExitClean) return WorkerExitClass::clean;
  if (exit_code == 2 || exit_code == kExitSpec) return WorkerExitClass::fatal;
  return WorkerExitClass::retryable;  // job failure, I/O, internal
}

struct Slot {
  pid_t pid = -1;
  int attempts_done = 0;   ///< attempts fully reaped so far
  int current_attempt = 0;
  double started_at = 0.0;
  double respawn_at = 0.0;  ///< > 0: spawn pending at this time
  bool deadline_killed = false;
  bool finished = false;    ///< clean, fatal, or restart-exhausted
  std::string partial_path;
  std::string final_path;
};

}  // namespace

SupervisorReport supervise_work(const SupervisedWork& work,
                                const SupervisorOptions& options) {
  if (options.workers < 1) {
    throw std::invalid_argument("supervise_shard_run: workers must be >= 1");
  }
  if (options.chunk_size < 1) {
    throw std::invalid_argument(
        "supervise_shard_run: chunk_size must be >= 1 (supervised mode is "
        "dynamic)");
  }
  if (options.out_dir.empty() || !path_exists(options.out_dir)) {
    throw std::runtime_error(
        "supervise_shard_run: out_dir must exist: " + options.out_dir);
  }

  const std::size_t universe_size = options.job_filter != nullptr
                                        ? options.job_filter->size()
                                        : work.job_count;
  const int chunks = static_cast<int>(
      (universe_size + static_cast<std::size_t>(options.chunk_size) - 1) /
      static_cast<std::size_t>(options.chunk_size));

  SupervisorReport report;
  std::vector<Slot> slots(static_cast<std::size_t>(options.workers));
  std::map<int, int> blame;  ///< chunk -> deaths while holding its lease

  auto spawn = [&](int k) {
    Slot& slot = slots[static_cast<std::size_t>(k)];
    const int attempt = slot.attempts_done;
    slot.current_attempt = attempt;
    slot.partial_path =
        options.out_dir + strf("/w%d.a%d.jsonl.partial", k, attempt);
    slot.final_path = options.out_dir + strf("/w%d.a%d.jsonl", k, attempt);
    const pid_t pid = ::fork();
    if (pid < 0) {
      throw std::runtime_error(strf("supervise_shard_run: fork: %s",
                                    std::strerror(errno)));
    }
    if (pid == 0) {
      if (options.child_override) {
        ::_exit(options.child_override(k, attempt));
      }
      ::_exit(worker_child_main(work, options, k, attempt, slot.partial_path,
                                slot.final_path));
    }
    slot.pid = pid;
    slot.started_at = now_seconds();
    slot.respawn_at = 0.0;
    if (attempt > 0) ++report.restarts;
    if (!options.quiet) {
      std::fprintf(stderr, "[supervisor] spawned worker %d attempt %d (pid "
                           "%d)\n",
                   k, attempt, static_cast<int>(pid));
    }
  };

  /// A reaped worker is *known* dead: release its leases immediately
  /// instead of waiting out the TTL, blaming each held chunk — a chunk
  /// blamed `poison_threshold` times is quarantined with a marker no
  /// claimer will touch.
  auto release_and_blame = [&](const std::string& owner) {
    for (int c = 0; c < chunks; ++c) {
      const std::string claim =
          FileChunkClaimer::claim_path(options.out_dir, c);
      const auto lease = FileChunkClaimer::read_lease(claim);
      if (!lease.has_value() || lease->owner != owner) continue;
      const int deaths = ++blame[c];
      if (deaths >= options.poison_threshold) {
        const std::string poison =
            FileChunkClaimer::poison_path(options.out_dir, c);
        const int fd = ::open(poison.c_str(), O_CREAT | O_WRONLY, 0644);
        if (fd >= 0) {
          const std::string note = strf("deaths=%d owner=%s\n", deaths,
                                        owner.c_str());
          (void)::write(fd, note.data(), note.size());
          ::close(fd);
        }
        report.poisoned_chunks.push_back(c);
        if (!options.quiet) {
          std::fprintf(stderr, "[supervisor] chunk %d poisoned after %d "
                               "worker deaths\n",
                       c, deaths);
        }
      }
      ::unlink(claim.c_str());
      ++report.leases_released;
    }
  };

  for (int k = 0; k < options.workers; ++k) spawn(k);

  for (;;) {
    bool any_live = false;
    bool any_pending = false;
    const double now = now_seconds();

    for (int k = 0; k < options.workers; ++k) {
      Slot& slot = slots[static_cast<std::size_t>(k)];
      if (slot.pid >= 0) {
        int status = 0;
        const pid_t r = ::waitpid(slot.pid, &status, WNOHANG);
        if (r == 0) {
          // Still running: enforce the deadline.
          if (options.worker_deadline_seconds > 0.0 &&
              now - slot.started_at > options.worker_deadline_seconds &&
              !slot.deadline_killed) {
            ::kill(slot.pid, SIGKILL);
            slot.deadline_killed = true;
            ++report.deadline_kills;
          }
          any_live = true;
          continue;
        }
        // Reaped: classify and decide.
        WorkerAttempt attempt;
        attempt.worker = k;
        attempt.attempt = slot.current_attempt;
        attempt.deadline_killed = slot.deadline_killed;
        if (WIFEXITED(status)) {
          attempt.exit_code = WEXITSTATUS(status);
        } else if (WIFSIGNALED(status)) {
          attempt.signal = WTERMSIG(status);
        }
        attempt.exit_class = classify(attempt.exit_code, attempt.signal);
        attempt.output_file = path_exists(slot.final_path)
                                  ? slot.final_path
                                  : slot.partial_path;
        if (!options.quiet) {
          std::fprintf(
              stderr, "[supervisor] worker %d attempt %d: %s (code %d, "
                      "signal %d)\n",
              k, slot.current_attempt, to_string(attempt.exit_class),
              attempt.exit_code, attempt.signal);
        }
        report.attempts.push_back(attempt);
        slot.pid = -1;
        slot.deadline_killed = false;
        ++slot.attempts_done;

        if (attempt.exit_class == WorkerExitClass::clean) {
          slot.finished = true;
        } else if (attempt.exit_class == WorkerExitClass::fatal) {
          report.fatal = true;
          slot.finished = true;  // restarting a config error cannot help
        } else {
          release_and_blame(strf("w%d.a%d", k, slot.current_attempt));
          if (slot.attempts_done <= options.max_restarts) {
            const double backoff = std::min(
                options.backoff_max_seconds,
                options.backoff_base_seconds *
                    static_cast<double>(1 << std::min(slot.attempts_done - 1,
                                                      20)));
            slot.respawn_at = now + backoff;
            any_pending = true;
          } else {
            slot.finished = true;  // restart budget exhausted
          }
        }
        continue;
      }
      if (!slot.finished && slot.respawn_at > 0.0) {
        if (now >= slot.respawn_at) {
          spawn(k);
          any_live = true;
        } else {
          any_pending = true;
        }
      }
    }

    if (!any_live && !any_pending) break;
    sleep_seconds(0.002);
  }

  // Everything written (finals and torn partials) is salvage input.
  for (const WorkerAttempt& a : report.attempts) {
    if (path_exists(a.output_file)) {
      if (std::find(report.output_files.begin(), report.output_files.end(),
                    a.output_file) == report.output_files.end()) {
        report.output_files.push_back(a.output_file);
      }
    }
  }
  std::sort(report.poisoned_chunks.begin(), report.poisoned_chunks.end());

  report.all_chunks_done = true;
  for (int c = 0; c < chunks; ++c) {
    if (!path_exists(FileChunkClaimer::done_path(options.out_dir, c))) {
      report.all_chunks_done = false;
      break;
    }
  }
  return report;
}

SupervisorReport supervise_shard_run(const GridSpec& spec,
                                     const SupervisorOptions& options) {
  SupervisedWork work;
  work.job_count = build_plan(spec).plan.job_count();
  work.run = [&spec](const ShardRunOptions& opts, std::ostream& out) {
    run_shard(spec, opts, out);
  };
  return supervise_work(work, options);
}

}  // namespace dufp::harness
