// Sharded execution of experiment grids across processes (and machines).
//
// The contract has three pieces (see DESIGN.md § Sharded execution):
//
//  1. A GridSpec — a small JSON document naming the grid (apps, modes,
//     tolerances, repetitions, seed, machine size, faults, telemetry).
//     Every process builds the *same* ExperimentPlan from the spec
//     (build_plan is a pure function of it; no environment leaks in), so
//     job indices are portable identities: job i means the same
//     (config, derived seed) everywhere.  The canonical serialization is
//     fingerprinted (FNV-1a) and stamped into every result file.
//
//  2. Shard workers — each executes a subset of the job indices (static
//     round-robin, or dynamic chunk claiming for imbalanced grids) and
//     streams one JSONL line per job: a versioned header line, then
//     {"job":i,"result":{...}} records with every double as its IEEE-754
//     bit pattern (shard_codec).  Files are self-describing and
//     machine-portable; any file mover works.
//
//  3. A gatherer — validates headers/fingerprints, demands every job
//     exactly once across the input files (a truncated or duplicated
//     file is an error, never a silent partial merge), decodes results
//     by index, and finishes the plan.  Because job seeds are derived
//     (job_seed) and aggregation is index-ordered, the gathered
//     aggregates are bit-identical to a serial in-process run — the
//     tier-1 shard determinism suite byte-compares the Evaluation CSV
//     and telemetry exports across serial / 1-shard / N-shard /
//     dynamic-chunk executions.
//
// The payload-agnostic machinery (wire format, chunk leases, the
// exactly-once gather loop) lives in harness/wire.h; this header binds
// it to experiment grids.  src/fleet binds the same wire to fleet node
// simulations.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "harness/experiment.h"
#include "harness/plan.h"
#include "harness/wire.h"

namespace dufp::harness {

/// Shard file format identity; bump kShardFormatVersion (wire.h) on any
/// wire change.
inline constexpr const char* kShardResultFormat = "dufp-shard-result";
inline constexpr const char* kGridSpecFormat = "dufp-grid-spec";
inline constexpr const char* kRetryManifestFormat = "dufp-retry-manifest";

/// A self-contained description of one evaluation grid.  Everything that
/// influences results lives here — never in the environment — so two
/// processes parsing the same spec build identical plans.
struct GridSpec {
  std::string name = "grid";
  std::vector<workloads::AppId> apps;
  /// Registry policy names, canonical spelling.  Serialized under the
  /// JSON key "modes" (the wire name predates the policy registry and is
  /// pinned by the fingerprint); parsing canonicalizes case/alias
  /// spellings and rejects unknown or duplicate entries with one
  /// aggregated error.
  std::vector<std::string> policies;
  std::vector<double> tolerances;
  int repetitions = 3;
  std::uint64_t seed = 1;
  int sockets = 4;
  double fault_rate = 0.0;     ///< > 0 runs the whole grid under a storm
  std::uint64_t fault_seed = 0;
  bool telemetry = false;

  /// Canonical JSON (fixed key order, %.17g tolerances); parse() of the
  /// output reproduces the spec exactly.
  json::Value to_json() const;
  std::string canonical_text() const;
  /// FNV-1a over canonical_text(); stamped into every shard file.
  std::uint64_t fingerprint() const;

  static GridSpec from_json(const json::Value& v);
  static GridSpec parse(std::string_view text);
  static GridSpec load(const std::string& path);

  /// The reference grid the sharded bench and the quickstart use:
  /// 2 apps x (baseline + {DUF, DUFP} x {5%, 10%}) x 3 repetitions.
  static GridSpec reference();

  /// Every problem found (empty = valid).
  std::vector<std::string> validate() const;

  /// This spec's wire identity (format, name, fingerprint, job count)
  /// for run_shard_wire / gather_wire.
  WireIdentity wire_identity() const;
};

/// The spec's plan plus the per-app cell index needed to reassemble
/// Evaluations.  Deterministic pure function of the spec.
struct GridPlan {
  ExperimentPlan plan;
  std::vector<AppGridCells> index;
};
GridPlan build_plan(const GridSpec& spec);

/// Static round-robin assignment: the job indices owned by `shard` of
/// `shards` (j % shards == shard).  Round-robin, not contiguous blocks,
/// so repetitions of a long-running cell spread across shards.
std::vector<std::size_t> shard_jobs_static(std::size_t job_count, int shards,
                                           int shard);

/// Executes this worker's share of the spec's jobs and streams the
/// versioned JSONL (header line + one line per job) to `out`.
void run_shard(const GridSpec& spec, const ShardRunOptions& options,
               std::ostream& out);

/// Everything a gather pass learned.  complete() means every job was
/// recovered and the results can be finalized; otherwise `missing`
/// (sorted) is the exact re-run set for a retry manifest.
struct GatherReport {
  std::size_t job_count = 0;
  std::vector<RunResult> results;  ///< results[j] valid iff have[j]
  std::vector<bool> have;
  std::vector<std::size_t> missing;  ///< sorted ascending
  std::size_t records = 0;           ///< complete records decoded
  std::size_t duplicates = 0;        ///< idempotent re-deliveries dropped
  std::vector<GatherNote> notes;     ///< damage tolerated (partial mode)
  int header_shards = 0;  ///< `shards` from the first header (0 = none)

  bool complete() const { return missing.empty(); }
};

/// Reads shard JSONL files back into per-job results (indexed by job).
/// Strict mode (default) throws at the first problem: malformed JSON,
/// a wrong format/version/fingerprint header (ShardFormatError), an
/// out-of-range or duplicate job index, or jobs missing across the
/// whole input set — the missing error names every absent job id
/// (capped with an "... and N more") and the static round-robin shard
/// each would have belonged to.  Partial mode (see GatherOptions)
/// salvages instead of throwing.
GatherReport gather_shards_report(const GridSpec& spec,
                                  const std::vector<std::string>& files,
                                  const GatherOptions& options = {});

/// Strict gather: gather_shards_report with default options, unwrapped.
std::vector<RunResult> gather_shards(const GridSpec& spec,
                                     const std::vector<std::string>& files);

/// The re-run contract an incomplete gather emits: the full spec (so a
/// resume needs no side channel), its fingerprint (tamper guard), and
/// the sorted missing job list.  `dufp_shard_worker run --resume M`
/// executes exactly these jobs; gathering the original files plus the
/// resume output in partial mode then completes to bytes identical to
/// an unfailed run.
struct RetryManifest {
  GridSpec spec;
  std::vector<std::size_t> missing;  ///< sorted, unique, in range

  json::Value to_json() const;
  std::string canonical_text() const;
  static RetryManifest from_json(const json::Value& v);
  static RetryManifest parse(std::string_view text);
  static RetryManifest load(const std::string& path);
};

/// The manifest for an incomplete gather.  Throws std::logic_error if
/// the report is complete (there is nothing to retry).
RetryManifest make_retry_manifest(const GridSpec& spec,
                                  const GatherReport& report);

/// Everything a gathered grid produces, in deterministic bytes.
struct GridOutputs {
  std::vector<Evaluation> evaluations;

  /// Per-grid-point CSV (%.17g, health columns included) — the byte
  /// surface the shard determinism suite compares.
  std::string evaluation_csv;

  /// Job-labelled merge of every job's Prometheus exposition (samples
  /// stable-sorted by metric name, job order within a name); empty when
  /// the spec has telemetry off.
  std::string merged_prometheus;

  /// Job 0's full snapshot for telemetry::export_run (flight events and
  /// dumps are per-job artifacts; the merge covers metrics).
  std::optional<telemetry::TelemetrySnapshot> job0_telemetry;
};

/// Aggregates gathered per-job results exactly as a serial run would
/// (ExperimentPlan::finish_with) and renders the deterministic outputs.
GridOutputs finalize_grid(const GridSpec& spec,
                          std::vector<RunResult> results);

/// Runs the whole spec in-process (threads as given) and finalizes —
/// the serial reference the shard paths must match byte for byte.
GridOutputs run_grid_serial(const GridSpec& spec, int threads = 1);

/// The CSV in GridOutputs::evaluation_csv, exposed for reuse.
std::string evaluation_csv(const std::vector<Evaluation>& evals,
                           const std::vector<std::string>& policies,
                           const std::vector<double>& tolerances);
std::string evaluation_csv(const std::vector<Evaluation>& evals,
                           const std::vector<PolicyMode>& modes,
                           const std::vector<double>& tolerances);

}  // namespace dufp::harness
