// Sharded execution of experiment grids across processes (and machines).
//
// The contract has three pieces (see DESIGN.md § Sharded execution):
//
//  1. A GridSpec — a small JSON document naming the grid (apps, modes,
//     tolerances, repetitions, seed, machine size, faults, telemetry).
//     Every process builds the *same* ExperimentPlan from the spec
//     (build_plan is a pure function of it; no environment leaks in), so
//     job indices are portable identities: job i means the same
//     (config, derived seed) everywhere.  The canonical serialization is
//     fingerprinted (FNV-1a) and stamped into every result file.
//
//  2. Shard workers — each executes a subset of the job indices (static
//     round-robin, or dynamic chunk claiming for imbalanced grids) and
//     streams one JSONL line per job: a versioned header line, then
//     {"job":i,"result":{...}} records with every double as its IEEE-754
//     bit pattern (shard_codec).  Files are self-describing and
//     machine-portable; any file mover works.
//
//  3. A gatherer — validates headers/fingerprints, demands every job
//     exactly once across the input files (a truncated or duplicated
//     file is an error, never a silent partial merge), decodes results
//     by index, and finishes the plan.  Because job seeds are derived
//     (job_seed) and aggregation is index-ordered, the gathered
//     aggregates are bit-identical to a serial in-process run — the
//     tier-1 shard determinism suite byte-compares the Evaluation CSV
//     and telemetry exports across serial / 1-shard / N-shard /
//     dynamic-chunk executions.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/json.h"
#include "harness/chaos.h"
#include "harness/experiment.h"
#include "harness/plan.h"

namespace dufp::harness {

/// Shard file format identity; bump the version on any wire change.
inline constexpr const char* kShardResultFormat = "dufp-shard-result";
inline constexpr const char* kGridSpecFormat = "dufp-grid-spec";
inline constexpr const char* kRetryManifestFormat = "dufp-retry-manifest";
inline constexpr int kShardFormatVersion = 1;

/// Wire/format-contract violations: a file or document that is not what
/// the operation was told it is (wrong format, unsupported version,
/// fingerprint mismatch, invalid spec).  Distinguished from plain
/// std::runtime_error so the CLI can exit with its documented
/// spec-mismatch code.
class ShardFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A self-contained description of one evaluation grid.  Everything that
/// influences results lives here — never in the environment — so two
/// processes parsing the same spec build identical plans.
struct GridSpec {
  std::string name = "grid";
  std::vector<workloads::AppId> apps;
  /// Registry policy names, canonical spelling.  Serialized under the
  /// JSON key "modes" (the wire name predates the policy registry and is
  /// pinned by the fingerprint); parsing canonicalizes case/alias
  /// spellings and rejects unknown or duplicate entries with one
  /// aggregated error.
  std::vector<std::string> policies;
  std::vector<double> tolerances;
  int repetitions = 3;
  std::uint64_t seed = 1;
  int sockets = 4;
  double fault_rate = 0.0;     ///< > 0 runs the whole grid under a storm
  std::uint64_t fault_seed = 0;
  bool telemetry = false;

  /// Canonical JSON (fixed key order, %.17g tolerances); parse() of the
  /// output reproduces the spec exactly.
  json::Value to_json() const;
  std::string canonical_text() const;
  /// FNV-1a over canonical_text(); stamped into every shard file.
  std::uint64_t fingerprint() const;

  static GridSpec from_json(const json::Value& v);
  static GridSpec parse(std::string_view text);
  static GridSpec load(const std::string& path);

  /// The reference grid the sharded bench and the quickstart use:
  /// 2 apps x (baseline + {DUF, DUFP} x {5%, 10%}) x 3 repetitions.
  static GridSpec reference();

  /// Every problem found (empty = valid).
  std::vector<std::string> validate() const;
};

/// The spec's plan plus the per-app cell index needed to reassemble
/// Evaluations.  Deterministic pure function of the spec.
struct GridPlan {
  ExperimentPlan plan;
  std::vector<AppGridCells> index;
};
GridPlan build_plan(const GridSpec& spec);

/// Static round-robin assignment: the job indices owned by `shard` of
/// `shards` (j % shards == shard).  Round-robin, not contiguous blocks,
/// so repetitions of a long-running cell spread across shards.
std::vector<std::size_t> shard_jobs_static(std::size_t job_count, int shards,
                                           int shard);

/// Claims chunks of the job list for dynamic load balancing.  try_claim
/// must return true for at most one *live* owner per chunk across every
/// cooperating worker (workers may race); the lease hooks below let a
/// claimer recover chunks whose owner died.
class ChunkClaimer {
 public:
  virtual ~ChunkClaimer() = default;
  virtual bool try_claim(int chunk) = 0;

  /// Heartbeats every lease this claimer holds; called between result
  /// records so a long grid never looks dead.  No-op by default.
  virtual void renew() {}

  /// True while this claimer still owns `chunk`'s lease.  A worker that
  /// was stalled past the TTL may have had its lease stolen; it must
  /// check before emitting the chunk's records (the thief re-runs them).
  virtual bool still_owner(int /*chunk*/) { return true; }

  /// Marks `chunk` finished (its records are durably emitted) and
  /// releases the lease.  Returns false — and records nothing — when
  /// ownership was lost, so a stale worker can never clobber the
  /// thief's in-flight claim.  Completion records are idempotent:
  /// completing an already-completed chunk is a no-op.
  virtual bool complete(int chunk) {
    (void)chunk;
    return true;
  }
};

/// Lease policy of a FileChunkClaimer.
struct LeaseOptions {
  /// Unique id of this claimer (one per worker attempt).  Empty derives
  /// "pid<pid>" — fine for ad-hoc runs; supervisors pass stable ids so
  /// crash blame and chaos schedules are reproducible.
  std::string owner;

  /// A lease whose heartbeat is older than this is considered orphaned
  /// and may be stolen.  <= 0 disables stealing entirely (the PR-5
  /// permanent-claim behavior).
  double ttl_seconds = 30.0;
};

/// File-based lease claimer.  Chunk k's lease is `<dir>/chunk<k>.claim`,
/// created with O_CREAT|O_EXCL (POSIX-atomic, so concurrent workers
/// never double-claim) and carrying `owner=<id>` plus a monotonically
/// increasing heartbeat counter.  The owner keeps the fd open; renew()
/// rewrites the record in place, bumping both the counter and the file
/// mtime — the mtime is the cross-process staleness signal (any shared
/// filesystem dynamic mode already requires).
///
/// Steal protocol (at-most-one live owner, no locks):
///   1. A claimer finding an existing lease older than the TTL renames
///      it to a unique `.stale.<owner>.<n>` name.  rename(2) is atomic:
///      of any number of racing stealers, exactly one wins (the rest see
///      ENOENT) — the loser retries from the top.
///   2. The winner unlinks the stale lease and falls back to the normal
///      O_CREAT|O_EXCL create, which it may still lose to a fresh
///      claimer — ownership is only ever granted by winning the create.
///   3. The previous owner, if merely stalled rather than dead, detects
///      the theft by inode comparison (still_owner) and drops its
///      now-duplicate output instead of emitting it.
///
/// Completed chunks are recorded as `chunk<k>.done` markers (idempotent:
/// creating an existing marker is a no-op) and never reclaimable;
/// quarantined chunks as `chunk<k>.poison` (see ShardSupervisor), which
/// try_claim refuses so a job that kills its workers cannot take the
/// whole fleet down with it.
class FileChunkClaimer final : public ChunkClaimer {
 public:
  /// `dir` must exist and be shared by every cooperating worker.
  explicit FileChunkClaimer(std::string dir, LeaseOptions lease = {});
  ~FileChunkClaimer() override;  // closes fds; leases stay on disk

  bool try_claim(int chunk) override;
  void renew() override;
  bool still_owner(int chunk) override;
  bool complete(int chunk) override;

  /// Unlinks every lease this claimer still owns (clean handoff without
  /// completion, e.g. a worker told to shut down).  Stolen or completed
  /// chunks are skipped.
  void release_all();

  const std::string& owner() const { return owner_; }

  /// Chunks this claimer refused because a poison marker quarantines
  /// them (their jobs must be reported, not silently skipped).
  const std::vector<int>& poisoned_seen() const { return poisoned_seen_; }

  // Marker-file paths, shared with the supervisor and tests.
  static std::string claim_path(const std::string& dir, int chunk);
  static std::string done_path(const std::string& dir, int chunk);
  static std::string poison_path(const std::string& dir, int chunk);

  /// The lease record at `path`, if one can be read.
  struct LeaseInfo {
    std::string owner;
    std::uint64_t heartbeat = 0;
  };
  static std::optional<LeaseInfo> read_lease(const std::string& path);

 private:
  std::string dir_;
  std::string owner_;
  double ttl_seconds_;
  std::map<int, int> held_;  ///< chunk -> open lease fd
  int steal_seq_ = 0;        ///< uniquifies this claimer's steal renames
  std::uint64_t heartbeat_ = 0;
  std::vector<int> poisoned_seen_;
};

struct ShardRunOptions {
  int shard = 0;   ///< this worker's id in [0, shards)
  int shards = 1;  ///< total workers
  int threads = 1; ///< in-process thread pool width (DUFP_THREADS-style)

  /// > 0 switches from static round-robin to dynamic chunk claiming:
  /// the job list is cut into chunks of this size and workers claim
  /// chunks through `claimer` until none remain.  `shard`/`shards` then
  /// only label the output file.
  int chunk_size = 0;
  ChunkClaimer* claimer = nullptr;  ///< required when chunk_size > 0

  /// Resume mode: restrict this run to exactly these job indices (a
  /// retry manifest's missing list).  Static assignment round-robins
  /// over the list; dynamic mode cuts its chunks from it.  nullptr runs
  /// the whole plan.  Indices must be valid and strictly ascending.
  const std::vector<std::size_t>* job_filter = nullptr;

  /// Seeded self-SIGKILL injection (DUFP_CHAOS); kill_rate 0 = off.
  ChaosOptions chaos;
};

/// Executes this worker's share of the spec's jobs and streams the
/// versioned JSONL (header line + one line per job) to `out`.
void run_shard(const GridSpec& spec, const ShardRunOptions& options,
               std::ostream& out);

struct GatherOptions {
  /// Salvage mode: tolerate damaged input — truncated or corrupt lines
  /// are skipped (each noted with file:line), unreadable files are
  /// skipped whole, byte-identical duplicate records are dropped as
  /// idempotent re-deliveries (a reclaimed chunk legitimately re-emits
  /// its jobs) — and report what is missing instead of throwing.
  /// Duplicates whose bytes *differ* still throw in every mode: two
  /// different results for one job is a determinism violation, never
  /// damage.
  bool partial = false;
};

/// One piece of damage tolerated (partial mode) in an input file.
struct GatherNote {
  std::string file;
  int line = 0;  ///< 1-based; 0 = whole-file problem
  std::string what;
};

/// Everything a gather pass learned.  complete() means every job was
/// recovered and the results can be finalized; otherwise `missing`
/// (sorted) is the exact re-run set for a retry manifest.
struct GatherReport {
  std::size_t job_count = 0;
  std::vector<RunResult> results;  ///< results[j] valid iff have[j]
  std::vector<bool> have;
  std::vector<std::size_t> missing;  ///< sorted ascending
  std::size_t records = 0;           ///< complete records decoded
  std::size_t duplicates = 0;        ///< idempotent re-deliveries dropped
  std::vector<GatherNote> notes;     ///< damage tolerated (partial mode)
  int header_shards = 0;  ///< `shards` from the first header (0 = none)

  bool complete() const { return missing.empty(); }
};

/// Reads shard JSONL files back into per-job results (indexed by job).
/// Strict mode (default) throws at the first problem: malformed JSON,
/// a wrong format/version/fingerprint header (ShardFormatError), an
/// out-of-range or duplicate job index, or jobs missing across the
/// whole input set — the missing error names every absent job id
/// (capped with an "... and N more") and the static round-robin shard
/// each would have belonged to.  Partial mode (see GatherOptions)
/// salvages instead of throwing.
GatherReport gather_shards_report(const GridSpec& spec,
                                  const std::vector<std::string>& files,
                                  const GatherOptions& options = {});

/// Strict gather: gather_shards_report with default options, unwrapped.
std::vector<RunResult> gather_shards(const GridSpec& spec,
                                     const std::vector<std::string>& files);

/// The re-run contract an incomplete gather emits: the full spec (so a
/// resume needs no side channel), its fingerprint (tamper guard), and
/// the sorted missing job list.  `dufp_shard_worker run --resume M`
/// executes exactly these jobs; gathering the original files plus the
/// resume output in partial mode then completes to bytes identical to
/// an unfailed run.
struct RetryManifest {
  GridSpec spec;
  std::vector<std::size_t> missing;  ///< sorted, unique, in range

  json::Value to_json() const;
  std::string canonical_text() const;
  static RetryManifest from_json(const json::Value& v);
  static RetryManifest parse(std::string_view text);
  static RetryManifest load(const std::string& path);
};

/// The manifest for an incomplete gather.  Throws std::logic_error if
/// the report is complete (there is nothing to retry).
RetryManifest make_retry_manifest(const GridSpec& spec,
                                  const GatherReport& report);

/// Everything a gathered grid produces, in deterministic bytes.
struct GridOutputs {
  std::vector<Evaluation> evaluations;

  /// Per-grid-point CSV (%.17g, health columns included) — the byte
  /// surface the shard determinism suite compares.
  std::string evaluation_csv;

  /// Job-labelled merge of every job's Prometheus exposition (samples
  /// stable-sorted by metric name, job order within a name); empty when
  /// the spec has telemetry off.
  std::string merged_prometheus;

  /// Job 0's full snapshot for telemetry::export_run (flight events and
  /// dumps are per-job artifacts; the merge covers metrics).
  std::optional<telemetry::TelemetrySnapshot> job0_telemetry;
};

/// Aggregates gathered per-job results exactly as a serial run would
/// (ExperimentPlan::finish_with) and renders the deterministic outputs.
GridOutputs finalize_grid(const GridSpec& spec,
                          std::vector<RunResult> results);

/// Runs the whole spec in-process (threads as given) and finalizes —
/// the serial reference the shard paths must match byte for byte.
GridOutputs run_grid_serial(const GridSpec& spec, int threads = 1);

/// The CSV in GridOutputs::evaluation_csv, exposed for reuse.
std::string evaluation_csv(const std::vector<Evaluation>& evals,
                           const std::vector<std::string>& policies,
                           const std::vector<double>& tolerances);
std::string evaluation_csv(const std::vector<Evaluation>& evals,
                           const std::vector<PolicyMode>& modes,
                           const std::vector<double>& tolerances);

}  // namespace dufp::harness
